// Package repro's top-level benchmarks: one testing.B benchmark per table
// and figure in the paper's evaluation, measuring the real (wall-clock)
// cost of the reproduced code paths. The paper's *virtual-time* numbers —
// the ones compared against the published values — are produced by
// cmd/vbench (internal/experiments); these benchmarks establish that the
// implementation itself is efficient and allocation-sane.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/nameserver"
	"repro/internal/proto"
	"repro/internal/rig"
)

// benchRig boots a standard rig for benchmarks.
func benchRig(b *testing.B, cfg rig.Config) *rig.Rig {
	b.Helper()
	r, err := rig.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func startEcho(b *testing.B, h *kernel.Host) *kernel.Process {
	b.Helper()
	p, err := h.Spawn("echo", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkE1MessageTransaction measures the Figure 1 Send-Receive-Reply
// primitive (§3.1), same-host and cross-host.
func BenchmarkE1MessageTransaction(b *testing.B) {
	for _, remote := range []bool{false, true} {
		name := "local"
		if remote {
			name = "remote"
		}
		b.Run(name, func(b *testing.B) {
			r := benchRig(b, rig.DefaultConfig())
			host := r.WS[0].Host
			echoHost := host
			if remote {
				echoHost = r.FS1Host
			}
			echo := startEcho(b, echoHost)
			client, err := host.NewProcess("bench-client")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2ProgramLoad measures the §3.1 64 KB MoveTo program load.
func BenchmarkE2ProgramLoad(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	s := r.WS[0].Session
	buf := make([]byte, 64*1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LoadProgram("[bin]editor", buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3SequentialRead measures the §3.1 page-by-page streaming read.
func BenchmarkE3SequentialRead(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	const pages = 16
	payload := make([]byte, pages*512)
	if err := r.FS1.WriteFile("/users/mann/bench.dat", "mann", payload); err != nil {
		b.Fatal(err)
	}
	s := r.WS[0].Session
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := s.Open("[home]bench.dat", proto.ModeRead)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReadAll(); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1Open measures the §6 Open table: the four quadrants of
// {current context, via prefix} x {server local, server remote}.
func BenchmarkT1Open(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	ws := r.WS[0]
	s := ws.Session
	localFS, err := fileserver.Start(ws.Host, "local")
	if err != nil {
		b.Fatal(err)
	}
	if err := localFS.WriteFile("/f.txt", ws.User, []byte("x")); err != nil {
		b.Fatal(err)
	}
	if err := ws.Prefix.Define("local", localFS.RootPair()); err != nil {
		b.Fatal(err)
	}
	localCtx, err := s.MapContext("[local]")
	if err != nil {
		b.Fatal(err)
	}

	cases := []struct {
		name    string
		csname  string
		current core.ContextPair
	}{
		{"current_local", "f.txt", localCtx},
		{"current_remote", "welcome.txt", ws.HomeCtx},
		{"prefix_local", "[local]f.txt", core.ContextPair{}},
		{"prefix_remote", "[home]welcome.txt", core.ContextPair{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			if c.current != (core.ContextPair{}) {
				s.SetCurrent(c.current)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := s.Open(c.csname, proto.ModeRead)
				if err != nil {
					b.Fatal(err)
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF2PID measures the Figure 2 pid subfield operations.
func BenchmarkF2PID(b *testing.B) {
	b.ReportAllocs()
	var sink kernel.PID
	for i := 0; i < b.N; i++ {
		p := kernel.MakePID(3, uint16(i))
		if p.Host() == 3 && !p.IsGroup() {
			sink = p
		}
	}
	_ = sink
}

// BenchmarkF3Descriptor measures the Figure 3 typed description record
// encode/decode round trip.
func BenchmarkF3Descriptor(b *testing.B) {
	d := proto.Descriptor{
		Tag: proto.TagFile, ObjectID: 42, Size: 4096, Modified: 123456789,
		Perms: proto.PermRead | proto.PermWrite, Name: "naming.mss", Owner: "cheriton",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := d.AppendEncoded(nil)
		if _, _, err := proto.DecodeDescriptor(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF4ForestTraversal measures the Figure 4 cross-server name
// resolution: one request forwarded mid-interpretation from FS1 to FS2.
func BenchmarkF4ForestTraversal(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	s := r.WS[0].Session
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("[storage]/shared/archive/2026/paper.mss"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Directory measures the §5.6 comparison: reading a context
// directory versus querying each object, at N=100.
func BenchmarkA1Directory(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	s := r.WS[0].Session
	const n = 100
	for i := 0; i < n; i++ {
		if err := r.FS1.WriteFile(fmt.Sprintf("/users/mann/d/f%03d", i), "mann", []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("directory_read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			records, err := s.List("[home]d")
			if err != nil || len(records) != n {
				b.Fatalf("%d records, %v", len(records), err)
			}
		}
	})
	b.Run("enumerate_query", func(b *testing.B) {
		records, err := s.List("[home]d")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range records {
				if _, err := s.Query("[home]d/" + d.Name); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkA2Models measures the §2.2 efficiency comparison: V-model open
// versus centralized lookup-then-open.
func BenchmarkA2Models(b *testing.B) {
	cfg := rig.DefaultConfig()
	cfg.Baseline = true
	r := benchRig(b, cfg)
	s := r.WS[0].Session
	d, err := s.Query("[home]welcome.txt")
	if err != nil {
		b.Fatal(err)
	}
	nsProc, err := r.WS[0].Host.NewProcess("baseline-bench")
	if err != nil {
		b.Fatal(err)
	}
	nc := nameserver.NewClient(nsProc, r.NS.PID())
	const gname = "fs1:/users/mann/welcome.txt"
	if err := nc.Register(gname, r.FS1.PID(), d.ObjectID); err != nil {
		b.Fatal(err)
	}

	b.Run("distributed", func(b *testing.B) {
		s.SetCurrent(r.WS[0].HomeCtx)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := s.Open("welcome.txt", proto.ModeRead)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("centralized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			info, server, err := nc.Open(gname, proto.ModeRead)
			if err != nil {
				b.Fatal(err)
			}
			rel := &proto.Message{Op: proto.OpReleaseInstance}
			rel.F[0] = uint32(info.ID)
			if _, err := nsProc.Send(rel, server); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA6Multicast measures the §7 group-send name mapping against the
// prefix-server path.
func BenchmarkA6Multicast(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	s := r.WS[0].Session
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		b.Fatal(err)
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", []byte("replica")); err != nil {
		b.Fatal(err)
	}
	gid := r.Kernel.CreateGroup()
	if err := r.Kernel.JoinGroup(gid, r.FS1.PID()); err != nil {
		b.Fatal(err)
	}
	if err := r.Kernel.JoinGroup(gid, r.FS2.PID()); err != nil {
		b.Fatal(err)
	}
	proc := s.Proc()

	b.Run("via_prefix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query("[bin]hello"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("via_group", func(b *testing.B) {
		// Query, not open: a non-idempotent request multicast to a group
		// leaves orphaned state (an open instance) at every member that
		// loses the first-reply race — the practical caveat of §7-style
		// group contexts, demonstrated by TestGroupOpenLeaksAtLosers.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := &proto.Message{Op: proto.OpQueryObject}
			proto.SetCSName(req, uint32(core.CtxStdPrograms), "hello")
			reply, err := proc.Send(req, gid)
			if err != nil {
				b.Fatal(err)
			}
			if err := proto.ReplyError(reply.Op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5PrefixTable measures prefix definition and use — the
// operations behind the §6 space/speed observations.
func BenchmarkE5PrefixTable(b *testing.B) {
	r := benchRig(b, rig.DefaultConfig())
	ws := r.WS[0]
	b.Run("define", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Unique across benchmark reruns (b.N grows in rounds).
			defineSeq++
			if err := ws.Prefix.Define(fmt.Sprintf("p%08d", defineSeq), r.FS1.RootPair()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("use", func(b *testing.B) {
		s := ws.Session
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := s.Open("[home]welcome.txt", proto.ModeRead)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// defineSeq keeps prefix names unique across benchmark rounds.
var defineSeq int

// benchShardedWorkload drives the sharded closed-loop workload once per
// iteration on a fresh topology (setup excluded from the timer) and
// reports wall-clock requests per second. workers == 0 selects the
// sequential driver.
func benchShardedWorkload(b *testing.B, workers int) {
	cfg := rig.ShardConfig{Shards: 8, ClientsPerShard: 8, Requests: 25, Team: 1, Seed: 42}
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sw, err := rig.NewShardedWorkload(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var res *rig.WorkloadResult
		if workers == 0 {
			res = rig.RunWorkload(sw.Clients)
		} else {
			res = rig.RunWorkloadParallel(sw.Clients, workers)
		}
		b.StopTimer()
		total += res.Requests
		// Tear down the topology's server goroutines between iterations.
		for _, h := range sw.Hosts {
			h.Crash()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkWorkloadSequential is the single-threaded driver baseline for
// the wall-clock scaling comparison (EXPERIMENTS.md A13).
func BenchmarkWorkloadSequential(b *testing.B) { benchShardedWorkload(b, 0) }

// BenchmarkWorkloadParallel measures the parallel driver's wall-clock
// throughput at several worker-pool sizes over the same workload. The
// virtual-time results are identical to the sequential driver's (see
// TestParallelDriverEquivalence); only wall-clock time changes.
func BenchmarkWorkloadParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchShardedWorkload(b, w) })
	}
}
