// Diskless workstation workload: the paper's motivating scenario (§3) —
// a workstation with no disk loads its programs and reads its files from
// a network file server over the V IPC, at the performance §3.1 reports:
// a 64 KB program load in ≈338 ms and sequential file reads near the
// disk's 15 ms/page rate.
package main

import (
	"fmt"
	"log"

	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return err
	}
	ws := r.WS[0]
	s := ws.Session
	fmt.Printf("diskless workstation %q booted; all storage via %v\n\n",
		ws.Host.Name(), r.FS1.PID())

	// 1. Program load: the editor's 64 KB image moves from the file
	// server's memory buffers into workstation memory with MoveTo.
	image := make([]byte, 64*1024)
	start := s.Proc().Now()
	n, err := s.LoadProgram("[bin]editor", image)
	if err != nil {
		return err
	}
	loadTime := s.Proc().Now() - start
	fmt.Printf("program load: %d KB in %s (paper: 338 ms)\n", n/1024, vtime.Milliseconds(loadTime))

	// 2. Execute it through the program manager; the running program
	// becomes a named object in the programs-in-execution context.
	req := &proto.Message{Op: proto.OpExecProgram}
	proto.SetCSName(req, 0, "editor")
	reply, err := s.Proc().Send(req, ws.Exec.PID())
	if err != nil {
		return err
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		return err
	}
	fmt.Printf("executing: %s\n", reply.Segment)
	progs, err := s.List("[exec]")
	if err != nil {
		return err
	}
	for _, p := range progs {
		fmt.Printf("  [exec]%s (pid %#x)\n", p.Name, p.TypeSpecific[0])
	}

	// 3. Sequential file access: stream a large file page by page; the
	// server's read-ahead keeps the effective rate near the disk rate.
	const pages = 64
	payload := make([]byte, pages*512)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := r.FS1.WriteFile("/users/mann/trace.dat", "mann", payload); err != nil {
		return err
	}
	f, err := s.Open("[home]trace.dat", proto.ModeRead)
	if err != nil {
		return err
	}
	start = s.Proc().Now()
	data, err := f.ReadAll()
	if err != nil {
		return err
	}
	readTime := s.Proc().Now() - start
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nsequential read: %d pages, %s/page (disk 15 ms/page; paper 17.13 ms)\n",
		len(data)/512, vtime.Milliseconds(readTime/pages))

	// 4. The edited file is written back — write-behind, no disk stall.
	start = s.Proc().Now()
	if err := s.WriteFile("[home]trace.out", data[:4096]); err != nil {
		return err
	}
	fmt.Printf("write-back of 8 pages: %s (buffered at the server)\n",
		vtime.Milliseconds(s.Proc().Now()-start))

	fetches, busy := r.FS1.Disk().Stats()
	fmt.Printf("\nfile server disk: %d page fetches, %s busy\n", fetches, busy)
	return nil
}
