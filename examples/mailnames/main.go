// Extensibility: a pre-existing name space with externally-imposed syntax
// — computer mail addresses like "cheriton@su-score.ARPA" (§2.2) — served
// through the same name-handling protocol as files, terminals and print
// jobs, with no translation into low-level universal identifiers.
package main

import (
	"fmt"
	"log"

	"repro/internal/proto"
	"repro/internal/rig"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return err
	}
	s := r.WS[0].Session

	// The mail server's names are whole addresses: the '@' and the dots
	// mean nothing to the protocol — the server interprets its own names
	// (§5.4). The [mail] prefix is a dynamic binding, resolved by GetPid
	// at each use.
	fmt.Println("mailboxes (foreign name syntax, standard protocol):")
	boxes, err := s.List("[mail]")
	if err != nil {
		return err
	}
	for _, b := range boxes {
		fmt.Printf("  %-26s %d message(s)\n", b.Name, b.TypeSpecific[0])
	}

	// Delivery is just the uniform I/O protocol: open the mailbox by
	// name, write the message.
	deliver := func(addr, msg string) error {
		f, err := s.Open("[mail]"+addr, proto.ModeWrite)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(msg)); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := deliver("cheriton@su-score.ARPA", "ICDCS camera-ready is due"); err != nil {
		return err
	}
	if err := deliver("mann@v.stanford.edu", "prefix server benchmarks look great"); err != nil {
		return err
	}
	fmt.Println("\ndelivered two messages through Open/Write/Close")

	// Reading mail is the same uniform read path as reading a file.
	inbox, err := s.ReadFile("[mail]cheriton@su-score.ARPA")
	if err != nil {
		return err
	}
	fmt.Printf("\n[mail]cheriton@su-score.ARPA contains:\n%s", inbox)

	// And the uniform query operation describes a mailbox exactly as it
	// describes a file — the tag tells the application what it got.
	d, err := s.Query("[mail]mann@v.stanford.edu")
	if err != nil {
		return err
	}
	fmt.Printf("\nquery [mail]mann@v.stanford.edu: tag=%s, %d message(s), %d bytes\n",
		d.Tag, d.TypeSpecific[0], d.Size)

	// New mailboxes can be created by name, like any other object;
	// malformed addresses are rejected by the mail server's own
	// interpretation rules.
	f, err := s.Open("[mail]zwaenepoel@v.stanford.edu", proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("\ncreated mailbox zwaenepoel@v.stanford.edu by name")
	if _, err := s.Open("[mail]not-an-address", proto.ModeWrite|proto.ModeCreate); err != nil {
		fmt.Printf("creating %q fails: %v\n", "not-an-address", err)
	}
	return nil
}
