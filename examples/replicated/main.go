// Replicated contexts via multicast (§7 future work): the paper's
// proposal to replace GetPid-based service naming with group Send, so
// that "a single context could be implemented transparently by a group
// of servers working in cooperation". A program directory replicated on
// two file servers is addressed as one context by a group id — and keeps
// answering when one replica crashes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return err
	}
	ws := r.WS[0]
	s := ws.Session

	// Replicate the standard program directory on the second file server.
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return err
	}
	for _, prog := range []string{"hello", "editor"} {
		data, err := s.ReadFile("[bin]" + prog)
		if err != nil {
			return err
		}
		if err := r.FS2.WriteFile("/bin/"+prog, "system", data); err != nil {
			return err
		}
	}
	fmt.Println("replicated /bin onto fs2")

	// Form a storage group and bind a prefix straight to the group id:
	// the prefix server forwards by multicast; the first member replies.
	gid := r.Kernel.CreateGroup()
	if err := r.Kernel.JoinGroup(gid, r.FS1.PID()); err != nil {
		return err
	}
	if err := r.Kernel.JoinGroup(gid, r.FS2.PID()); err != nil {
		return err
	}
	if err := ws.Prefix.Define("gbin", core.ContextPair{Server: gid, Ctx: core.CtxStdPrograms}); err != nil {
		return err
	}
	fmt.Printf("group %v = {fs1 %v, fs2 %v}, prefix [gbin] bound to it\n\n",
		gid, r.FS1.PID(), r.FS2.PID())

	query := func(label string) error {
		start := s.Proc().Now()
		d, err := s.Query("[gbin]hello")
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		fmt.Printf("%-28s -> %s %q, %d bytes, in %s\n",
			label, d.Tag, d.Name, d.Size, vtime.Milliseconds(s.Proc().Now()-start))
		return nil
	}

	if err := query("query with both replicas"); err != nil {
		return err
	}

	// Crash one replica: the group name keeps resolving.
	r.FS1Host.Crash()
	fmt.Println("\n*** fs1 crashed ***")
	if err := query("query with fs1 down"); err != nil {
		return err
	}

	// The group id works directly too, without the prefix server: a
	// client can Send a CSname request to the group like to any process.
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxStdPrograms), "editor")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := s.Proc().Send(req, gid)
	if err != nil {
		return err
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		return err
	}
	owner := kernel.PID(proto.InstanceOwner(reply))
	fmt.Printf("\ndirect group open of editor served by %v (the survivor)\n", owner)
	rel := &proto.Message{Op: proto.OpReleaseInstance}
	rel.F[0] = reply.F[0]
	if _, err := s.Proc().Send(rel, owner); err != nil {
		return err
	}

	// Compare: a static prefix to the dead fs1 dangles, the dynamic [bin]
	// rebinds (to fs2, the surviving storage provider), and the group
	// binding never noticed.
	fmt.Println("\nbinding comparison with fs1 dead:")
	if _, err := s.Query("[storage]/bin/hello"); err != nil {
		fmt.Printf("  static [storage] (pid-bound): %v\n", err)
	}
	if d, err := s.Query("[bin]hello"); err == nil {
		fmt.Printf("  dynamic [bin] (GetPid per use): ok, %d bytes from the surviving server\n", d.Size)
	} else {
		fmt.Printf("  dynamic [bin]: %v\n", err)
	}
	if d, err := s.Query("[gbin]hello"); err == nil {
		fmt.Printf("  group [gbin] (multicast): ok, %d bytes, transparently\n", d.Size)
	}
	return nil
}
