package main

import (
	"io"
	"os"
	"testing"
)

// TestExampleRuns smoke-tests the example end to end on the virtual
// testbed, with its stdout captured (the printed walkthrough is the
// example's UI, not the test's).
func TestExampleRuns(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, r)
		done <- err
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}
