// Quickstart: boot the simulated V-System, define a context prefix, and
// use the uniform naming operations — open, read, write, query, list —
// against a network file server, all through the standard run-time
// library.
package main

import (
	"fmt"
	"log"

	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot the standard testbed: two file servers, a services machine,
	// and one workstation per user, each with its own context prefix
	// server.
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return err
	}
	s := r.WS[0].Session
	fmt.Printf("booted: user %q, current context %v\n\n", s.User(), s.Current())

	// Names starting with '[' route through the user's context prefix
	// server; everything else is interpreted in the current context.
	data, err := s.ReadFile("[home]welcome.txt")
	if err != nil {
		return err
	}
	fmt.Printf("[home]welcome.txt: %s", data)

	// Create a file, read it back.
	if err := s.WriteFile("[home]hello.txt", []byte("hello, distributed naming\n")); err != nil {
		return err
	}
	back, err := s.ReadFile("[home]hello.txt")
	if err != nil {
		return err
	}
	fmt.Printf("[home]hello.txt: %s", back)

	// Every object answers the uniform query operation with a typed
	// description record (Figure 3).
	d, err := s.Query("[home]hello.txt")
	if err != nil {
		return err
	}
	fmt.Printf("query: tag=%s size=%d perms=%03b\n\n", d.Tag, d.Size, d.Perms)

	// Define a new prefix for a context deep in the file server and use
	// it.
	pair, err := s.MapContext("[storage]/users/mann/notes")
	if err != nil {
		return err
	}
	if err := s.AddName("notes", pair); err != nil {
		return err
	}
	todo, err := s.ReadFile("[notes]todo.txt")
	if err != nil {
		return err
	}
	fmt.Printf("[notes]todo.txt:\n%s\n", todo)

	// Context directories: list any context as typed records (§5.6).
	records, err := s.List("[home]")
	if err != nil {
		return err
	}
	fmt.Println("[home] contains:")
	for _, rec := range records {
		fmt.Printf("  %-10s %-12s %d bytes\n", rec.Tag, rec.Name, rec.Size)
	}

	// Current context makes relative names cheap: chdir and open.
	if err := s.ChangeContext("[home]notes"); err != nil {
		return err
	}
	if _, err := s.Open("todo.txt", proto.ModeRead); err != nil {
		return err
	}
	name, err := s.CurrentName()
	if err != nil {
		return err
	}
	fmt.Printf("\ncurrent context is %q, virtual time elapsed %s\n",
		name, vtime.Milliseconds(s.Proc().Now()))
	return nil
}
