// Multi-user naming: each user has a private context prefix server, so
// the same character-string name can mean different things to different
// users (§5.8, §6), while the naming forest (Figure 4) is stitched
// together by cross-server links and per-user prefixes.
package main

import (
	"fmt"
	"log"

	"repro/internal/rig"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r, err := rig.New(rig.DefaultConfig()) // users: mann, cheriton
	if err != nil {
		return err
	}
	mann := r.WS[0].Session
	dave := r.WS[1].Session

	// The same name, interpreted per user: [home] is bound differently
	// in each user's prefix server.
	fmt.Println("the same name, two users:")
	for _, s := range []struct {
		who string
		get func() ([]byte, error)
	}{
		{"mann", func() ([]byte, error) { return mann.ReadFile("[home]welcome.txt") }},
		{"cheriton", func() ([]byte, error) { return dave.ReadFile("[home]welcome.txt") }},
	} {
		data, err := s.get()
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s [home]welcome.txt -> %s", s.who, data)
	}

	// Users tailor their own prefix tables without affecting each other.
	pair, err := mann.MapContext("[storage]/users/cheriton")
	if err != nil {
		return err
	}
	if err := mann.AddName("dave", pair); err != nil {
		return err
	}
	data, err := mann.ReadFile("[dave]welcome.txt")
	if err != nil {
		return err
	}
	fmt.Printf("\nmann defines a private [dave] prefix:\n  [dave]welcome.txt -> %s", data)
	if _, err := dave.ReadFile("[dave]welcome.txt"); err != nil {
		fmt.Printf("  cheriton has no [dave]: %v\n", err)
	}

	// Figure 4: one name crosses from FS1's tree into FS2's tree through
	// a directory entry that points at a remote context. The client sends
	// one request to FS1; FS1 forwards it mid-interpretation; FS2 replies
	// directly.
	fmt.Println("\ncrossing the naming forest (Figure 4):")
	paper, err := mann.ReadFile("[storage]/shared/archive/2026/paper.mss")
	if err != nil {
		return err
	}
	fmt.Printf("  [storage]/shared/archive/2026/paper.mss -> %s", paper)
	where, err := mann.MapContext("[storage]/shared/archive/2026")
	if err != nil {
		return err
	}
	fmt.Printf("  ...which actually lives at %v (FS2 is %v)\n", where, r.FS2.PID())

	// The inverse mapping names the current context, §6-style, with its
	// many-to-one caveats.
	if err := dave.ChangeContext("[storage]/shared/archive"); err != nil {
		return err
	}
	name, err := dave.CurrentName()
	if err != nil {
		return err
	}
	fmt.Printf("\ncheriton cd'd through FS1's link; pwd reconstructs %q\n", name)
	fmt.Println("(the name used was [storage]/shared/archive — the inverse mapping")
	fmt.Println(" returns *a* name for the context, not necessarily the one used, §6)")
	return nil
}
