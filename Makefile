# V-System distributed name interpretation — reproduction build targets.

GO ?= go

.PHONY: all check test race bench vet fmt experiments examples clean

all: vet test

# Full verification gate: static checks, the whole suite under the race
# detector, and the chaos-engine determinism guarantee (same schedule +
# seed must give byte-identical event logs and metrics).
check: vet
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'TestChaosScheduleDeterministic|TestA10Deterministic' ./internal/chaos/ ./internal/experiments/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

# Regenerate every paper table and figure (paper vs. measured).
experiments:
	$(GO) run ./cmd/vbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/diskless
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/mailnames
	$(GO) run ./examples/replicated

# The deliverable capture the repository ships with.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
