# V-System distributed name interpretation — reproduction build targets.

GO ?= go

# Wall-clock budget for each live fuzz target in `make fuzz`.
FUZZTIME ?= 10s

# Statement-coverage floor for `make cover`, raised when the
# observability suites (flight, namestat, sampled tracing, auto-tuner)
# landed. Raise it when coverage rises; never lower it to make a
# regression pass.
COVERAGE_FLOOR ?= 78.0

.PHONY: all check test race bench bench-json bench-wallclock bench-metrics bench-replica bench-shard bench-cache bench-zipf bench-obs golden-guard vet fmt fuzz cover experiments examples clean

all: vet test

# Full verification gate: static checks, the whole suite under the race
# detector, the server-team stress tests (many real client goroutines
# hammering one team per server package), the determinism guarantees
# (same schedule + seed must give byte-identical event logs, metrics,
# and A11 team-sweep results), the trace-driven invariant harness
# (golden canonical trace, trace determinism, per-server invariant
# tier, traced workload driver, trace-under-chaos), the metrics
# contract (zero virtual cost + byte-deterministic document), and the
# coverage floor.
check: vet
	$(GO) test -race ./...
	$(GO) test -race -run 'TestTeamStress' ./internal/...
	$(GO) test -race -count=2 -run 'TestChaosScheduleDeterministic|TestA10Deterministic|TestA11Deterministic' ./internal/chaos/ ./internal/experiments/
	$(GO) test -race -run 'TestCanonicalTraceGolden|TestCanonicalTraceDeterministic|TestA12Decomposition' ./internal/experiments/
	$(GO) test -race -run 'TestTraceInvariants' ./internal/...
	$(GO) test -race -run 'TestWorkloadDriverTrace|TestTraceUnderChaos' ./internal/rig/
	$(GO) test -race -run 'TestParallelDriverEquivalence' ./internal/rig/
	GOMAXPROCS=1 $(GO) test -race -run 'TestShardedEquivalence' ./internal/rig/
	$(GO) test -race -run 'TestShardedEquivalence|TestShardedUnderChaos|TestShardedPartitionMidFlight' ./internal/rig/
	$(GO) test -race -run 'TestShardedByteIdenticalToSeed|TestShardJSONDeterministic' ./internal/experiments/
	$(GO) test -race -run 'TestShardedLeaseEquivalence|TestInvalidationUnderChaos' ./internal/rig/
	$(GO) test -race -run 'TestLeaseExpiryBoundary|TestNegativeCache|TestLeaseSurvivesFlush' ./internal/client/
	$(GO) test -race -run 'TestTier' ./internal/ncache/
	$(GO) test -race -run 'TestA17Shape|TestCacheJSONDeterministic' ./internal/experiments/
	$(GO) test -race -run 'TestA18Shape|TestZipfJSONDeterministic' ./internal/experiments/
	$(GO) test -race -count=2 -run 'TestZipfDeterministic' ./internal/popgen/
	$(GO) test -race -run 'TestOpenLoopEquivalence' ./internal/rig/
	$(GO) test -run 'TestResolve10e5ZeroAlloc' -count=1 ./internal/nametree/
	$(GO) test -run 'TestSendZeroAllocUntraced' -count=1 ./internal/kernel/
	$(GO) test -race -run 'TestMetricsZeroCost|TestMetricsDeterministic|TestA14Shape' ./internal/experiments/
	$(GO) test -race -count=2 -run 'TestReplicaDeterministic' ./internal/rig/
	$(GO) test -race -run 'TestA15Availability|TestReplicaJSONDeterministic' ./internal/experiments/
	$(GO) test -race -run 'TestObsZeroCost|TestA19Shape|TestA19Render' ./internal/experiments/
	$(GO) test -race -count=2 -run 'TestObsJSONDeterministic' ./internal/experiments/
	$(GO) test -run 'TestRecordZeroAlloc' -count=1 ./internal/flight/
	$(GO) test -race -run 'TestSealDeterministicAcrossInterleavings' ./internal/flight/
	$(GO) test -race -run 'TestTopKRecallOnZipf|TestRatesEWMAConvergence' ./internal/namestat/
	$(GO) test -race -run 'TestSampled' ./internal/trace/
	$(GO) test -race -run 'TestAutoTuner' ./internal/prefix/
	$(MAKE) golden-guard
	$(MAKE) cover

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable per-experiment results (the perf trajectory).
bench-json:
	$(GO) run ./cmd/vbench -json BENCH_vbench.json > vbench_output.txt

# Wall-clock benchmark harness (EXPERIMENTS.md A13): hot-path ns/op and
# allocs/op plus sequential-vs-parallel driver throughput, written as a
# self-describing JSON document (records GOMAXPROCS and CPU count).
bench-wallclock:
	$(GO) run ./cmd/vbench -wallclock BENCH_wallclock.json

# Deterministic metrics document (EXPERIMENTS.md A14): per-(server,op)
# latency histograms, counters, per-tick series, and the chaos health
# report, byte-identical across runs.
bench-metrics:
	$(GO) run ./cmd/vbench -metrics BENCH_metrics.json

# Deterministic replication document (EXPERIMENTS.md A15): the A14
# chaos schedule against a consensus-replicated fs1 — client-observed
# availability, failover latency percentiles, and the group's event
# log, byte-identical across runs.
bench-replica:
	$(GO) run ./cmd/vbench -replica BENCH_replica.json

# Deterministic sharded-engine document (EXPERIMENTS.md A16): the
# conservative engine's shard-count sweep on the shared-prefix topology,
# each point verified deeply equal to the sequential driver, with the
# lookahead bound and the confined/shared operation mix. Byte-identical
# across runs (all virtual time; wall-clock scaling lives in
# bench-wallclock).
bench-shard:
	$(GO) run ./cmd/vbench -shard BENCH_shard.json

# Deterministic lease-coherence document (EXPERIMENTS.md A17): the
# lease-length hit-rate sweep across the cache hierarchy (with and
# without the intermediate tier), plus the crash and partition legs
# whose traces are checked against the lease staleness bound.
# Byte-identical across runs.
bench-cache:
	$(GO) run ./cmd/vbench -cache BENCH_cache.json

# Deterministic population-scale document (EXPERIMENTS.md A18): the
# radix-vs-flat index cost at 10³–10⁶ names, the open-loop Zipf
# throughput/latency sweep over population (flat and tiered, each point
# at or below the equivalence bound verified deeply equal to the
# sequential driver), the skew sweep, and the traced mid-run
# redefinition leg checked against the lease staleness bound.
# Byte-identical across runs. The 10⁶-name legs make this the slowest
# export (~40 s); it is exercised by golden-guard, not plain `go test`.
bench-zipf:
	$(GO) run ./cmd/vbench -zipf BENCH_zipf.json

# Deterministic observability document (EXPERIMENTS.md A19): top-k
# sketch recall vs exact Zipf counts, EWMA convergence, sampled-vs-full
# trace agreement on the A12 decomposition with the flight journal's
# event counts, and the lease auto-tuner against the fixed-lease sweep
# on the (hit rate, staleness) frontier. Byte-identical across runs.
bench-obs:
	$(GO) run ./cmd/vbench -obs BENCH_obs.json

# Byte-identity guard for the committed golden outputs: the wall-clock
# work must not perturb a single virtual-time result, trace span, or
# metrics quantile. Regenerating vbench_output.txt with the metrics
# registry installed doubles as the zero-virtual-cost gate.
# Regenerates each golden into a scratch dir and compares byte-for-byte.
golden-guard:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/vbench > $$tmp/vbench_output.txt && \
	cmp vbench_output.txt $$tmp/vbench_output.txt && \
	$(GO) run ./cmd/vbench -trace $$tmp/golden_trace.json >/dev/null && \
	cmp internal/experiments/testdata/golden_trace.json $$tmp/golden_trace.json && \
	$(GO) run ./cmd/vbench -metrics $$tmp/BENCH_metrics.json >/dev/null && \
	cmp BENCH_metrics.json $$tmp/BENCH_metrics.json && \
	$(GO) run ./cmd/vbench -replica $$tmp/BENCH_replica.json >/dev/null && \
	cmp BENCH_replica.json $$tmp/BENCH_replica.json && \
	$(GO) run ./cmd/vbench -shard $$tmp/BENCH_shard.json >/dev/null && \
	cmp BENCH_shard.json $$tmp/BENCH_shard.json && \
	$(GO) run ./cmd/vbench -cache $$tmp/BENCH_cache.json >/dev/null && \
	cmp BENCH_cache.json $$tmp/BENCH_cache.json && \
	$(GO) run ./cmd/vbench -zipf $$tmp/BENCH_zipf.json >/dev/null && \
	cmp BENCH_zipf.json $$tmp/BENCH_zipf.json && \
	$(GO) run ./cmd/vbench -obs $$tmp/BENCH_obs.json >/dev/null && \
	cmp BENCH_obs.json $$tmp/BENCH_obs.json && \
	echo "golden outputs byte-identical" && rm -rf $$tmp || \
	{ echo "golden outputs drifted from committed files"; rm -rf $$tmp; exit 1; }

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

# Live fuzzing of every decoder and name-handling routine that faces
# arbitrary bytes, FUZZTIME each. Seed corpora live under each
# package's testdata/fuzz/ and replay in plain `go test`. The quote in
# 'FuzzDecodeDescriptor matches the anchored name only (not
# FuzzDecodeDescriptors).
fuzz:
	$(GO) test -fuzz 'FuzzMatchName' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz 'FuzzParse' -fuzztime $(FUZZTIME) ./internal/prefix/
	$(GO) test -fuzz 'FuzzUnmarshal' -fuzztime $(FUZZTIME) ./internal/proto/
	$(GO) test -fuzz 'FuzzDecodeDescriptors' -fuzztime $(FUZZTIME) ./internal/proto/
	$(GO) test -fuzz 'FuzzDecodeDescriptor$$' -fuzztime $(FUZZTIME) ./internal/proto/
	$(GO) test -fuzz 'FuzzCSName' -fuzztime $(FUZZTIME) ./internal/proto/
	$(GO) test -fuzz 'FuzzCacheKey' -fuzztime $(FUZZTIME) ./internal/client/
	$(GO) test -fuzz 'FuzzNegativeCacheKey' -fuzztime $(FUZZTIME) ./internal/client/
	$(GO) test -fuzz 'FuzzModelPaths' -fuzztime $(FUZZTIME) ./internal/namemodel/
	$(GO) test -fuzz 'FuzzNametreeLookup' -fuzztime $(FUZZTIME) ./internal/nametree/
	$(GO) test -fuzz 'FuzzFlightRoundTrip' -fuzztime $(FUZZTIME) ./internal/flight/

# Statement coverage with a recorded floor: fails if total coverage
# drops below COVERAGE_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVERAGE_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
	{ echo "coverage $$total% fell below floor $(COVERAGE_FLOOR)%"; exit 1; }

# Regenerate every paper table and figure (paper vs. measured).
experiments:
	$(GO) run ./cmd/vbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/diskless
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/mailnames
	$(GO) run ./examples/replicated

# The deliverable capture the repository ships with.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
