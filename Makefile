# V-System distributed name interpretation — reproduction build targets.

GO ?= go

.PHONY: all check test race bench bench-json vet fmt experiments examples clean

all: vet test

# Full verification gate: static checks, the whole suite under the race
# detector, the server-team stress tests (many real client goroutines
# hammering one team per server package), and the determinism
# guarantees (same schedule + seed must give byte-identical event logs,
# metrics, and A11 team-sweep results).
check: vet
	$(GO) test -race ./...
	$(GO) test -race -run 'TestTeamStress' ./internal/...
	$(GO) test -race -count=2 -run 'TestChaosScheduleDeterministic|TestA10Deterministic|TestA11Deterministic' ./internal/chaos/ ./internal/experiments/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable per-experiment results (the perf trajectory).
bench-json:
	$(GO) run ./cmd/vbench -json BENCH_vbench.json > vbench_output.txt

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

# Regenerate every paper table and figure (paper vs. measured).
experiments:
	$(GO) run ./cmd/vbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/diskless
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/mailnames
	$(GO) run ./examples/replicated

# The deliverable capture the repository ships with.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
