// Command vbench regenerates every quantitative result in the paper's
// evaluation (§3.1, §6) and the ablations derived from its arguments
// (§2.2, §5.6, §7), printing paper-vs-measured tables.
//
// Usage:
//
//	vbench                       # run every experiment
//	vbench t1 a2                 # run selected experiments
//	vbench chaos                 # fault-injection sweep (alias for a10)
//	vbench -list                 # list experiment ids
//	vbench -json BENCH.json      # also write results as JSON
//	vbench -trace TRACE.json     # export the canonical single-client trace
//	vbench -metrics METRICS.json # export the A14 metrics document (deterministic)
//	vbench -replica REPLICA.json # export the A15 replication document (deterministic)
//	vbench -shard SHARD.json     # export the A16 sharded-engine document (deterministic)
//	vbench -cache CACHE.json     # export the A17 lease-coherence document (deterministic)
//	vbench -zipf ZIPF.json       # export the A18 population-scale document (deterministic)
//	vbench -obs OBS.json         # export the A19 observability document (deterministic)
//	vbench -zipf Z.json -trace T.json  # also export a sampled 10⁶-name population trace
//	vbench -wallclock W.json -engine sharded         # wall-clock run, one engine's rows
//	vbench -zipf Z.json -cpuprofile cpu.pprof        # any mode can be profiled
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	score := fs.Bool("score", false, "print the reproduction scorecard and exit")
	jsonPath := fs.String("json", "", "also write per-experiment results as JSON to this file")
	tracePath := fs.String("trace", "", "export the canonical single-client trace (span tree + wire frames) as JSON to this file")
	wallclockPath := fs.String("wallclock", "", "run the wall-clock benchmark harness (A13) and write its JSON to this file; skips the virtual-time experiments")
	engine := fs.String("engine", "all", "with -wallclock: restrict driver rows to one engine (sequential, lanes, sharded)")
	shardPath := fs.String("shard", "", "run the A16 sharded-engine sweep and write the deterministic shard document (BENCH_shard.json schema) to this file")
	cachePath := fs.String("cache", "", "run the A17 lease-coherence legs and write the deterministic cache document (BENCH_cache.json schema) to this file")
	zipfPath := fs.String("zipf", "", "run the A18 population-scale legs and write the deterministic zipf document (BENCH_zipf.json schema) to this file; with -trace, also export a sampled million-name population trace")
	obsPath := fs.String("obs", "", "run the A19 observability legs and write the deterministic obs document (BENCH_obs.json schema) to this file")
	popTrace := fs.Int("population", 1_000_000, "with -zipf and -trace together: population of the sampled trace export")
	metricsPath := fs.String("metrics", "", "run the A14 metrics legs and write the deterministic metrics document (BENCH_metrics.json schema) to this file")
	replicaPath := fs.String("replica", "", "run the A15 replicated chaos leg and write the deterministic replication document (BENCH_replica.json schema) to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	heapProfile := fs.String("heapprofile", "", "write a heap profile of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The profile flags cover every mode (the ISSUE-10 profiling loop
	// cares about -zipf and -obs specifically): CPU from here to exit,
	// heap after the last workload retires.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *heapProfile != "" {
		defer func() {
			f, err := os.Create(*heapProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vbench: heapprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vbench: heapprofile:", err)
			}
		}()
	}
	if *list {
		fmt.Fprintln(w, strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	if *score {
		checks, err := experiments.Scorecard()
		if err != nil {
			return err
		}
		experiments.PrintScorecard(w, checks)
		return nil
	}

	if *wallclockPath != "" {
		// Wall-clock results are machine-dependent by nature, so they are
		// kept out of the experiments registry (and out of the byte-pinned
		// vbench_output.txt): this mode runs only the A13 harness.
		doc, err := experiments.WallClock(*engine)
		if err != nil {
			return fmt.Errorf("wallclock: %w", err)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*wallclockPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *wallclockPath, err)
		}
		fmt.Fprintf(w, "wrote wall-clock benchmark results to %s (GOMAXPROCS=%d, %d CPUs)\n", *wallclockPath, doc.GOMAXPROCS, doc.NumCPU)
		for _, hp := range doc.HotPath {
			fmt.Fprintf(w, "  %-10s %6d ns/op  %4d B/op  %3d allocs/op  (baseline %d allocs/op)\n",
				hp.Name, hp.NsPerOp, hp.BytesPerOp, hp.AllocsPerOp, doc.Baseline.E1AllocsPerOp)
		}
		for _, d := range doc.Driver {
			label := d.Engine
			if d.Workers > 0 {
				label = fmt.Sprintf("%s/%d", d.Engine, d.Workers)
			}
			fmt.Fprintf(w, "  driver %-15s %-15s %9.0f req/s wall  (%.2fx vs sequential, makespan %s virtual)\n",
				d.Topology, label, d.ReqPerSec, d.SpeedupVsSeq, d.VirtualMakespan)
		}
		return nil
	}

	if *metricsPath != "" {
		data, err := experiments.MetricsJSON()
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := os.WriteFile(*metricsPath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *metricsPath, err)
		}
		fmt.Fprintf(w, "wrote metrics document to %s\n", *metricsPath)
		// -metrics alone exports the document without running every
		// experiment (mirrors -trace).
		if len(fs.Args()) == 0 && *tracePath == "" && *replicaPath == "" && *shardPath == "" && *cachePath == "" && *zipfPath == "" && *obsPath == "" {
			return nil
		}
	}

	if *replicaPath != "" {
		data, err := experiments.ReplicaJSON()
		if err != nil {
			return fmt.Errorf("replica: %w", err)
		}
		if err := os.WriteFile(*replicaPath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *replicaPath, err)
		}
		fmt.Fprintf(w, "wrote replication document to %s\n", *replicaPath)
		// -replica alone exports the document without running every
		// experiment (mirrors -metrics).
		if len(fs.Args()) == 0 && *tracePath == "" && *shardPath == "" && *cachePath == "" && *zipfPath == "" && *obsPath == "" {
			return nil
		}
	}

	if *shardPath != "" {
		data, err := experiments.ShardJSON()
		if err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		if err := os.WriteFile(*shardPath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *shardPath, err)
		}
		fmt.Fprintf(w, "wrote sharded-engine document to %s\n", *shardPath)
		// -shard alone exports the document without running every
		// experiment (mirrors -metrics).
		if len(fs.Args()) == 0 && *tracePath == "" && *cachePath == "" && *zipfPath == "" && *obsPath == "" {
			return nil
		}
	}

	if *cachePath != "" {
		data, err := experiments.CacheJSON()
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		if err := os.WriteFile(*cachePath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *cachePath, err)
		}
		fmt.Fprintf(w, "wrote lease-coherence document to %s\n", *cachePath)
		// -cache alone exports the document without running every
		// experiment (mirrors -metrics).
		if len(fs.Args()) == 0 && *tracePath == "" && *zipfPath == "" && *obsPath == "" {
			return nil
		}
	}

	if *zipfPath != "" {
		data, err := experiments.ZipfJSON()
		if err != nil {
			return fmt.Errorf("zipf: %w", err)
		}
		if err := os.WriteFile(*zipfPath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *zipfPath, err)
		}
		fmt.Fprintf(w, "wrote population-scale document to %s\n", *zipfPath)
		// -zipf alone exports the document without running every
		// experiment (mirrors -metrics). With -trace it continues into
		// the sampled population-trace export below.
		if len(fs.Args()) == 0 && *tracePath == "" && *obsPath == "" {
			return nil
		}
	}

	if *obsPath != "" {
		data, err := experiments.ObsJSON()
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		if err := os.WriteFile(*obsPath, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *obsPath, err)
		}
		fmt.Fprintf(w, "wrote observability document to %s\n", *obsPath)
		// -obs alone exports the document without running every
		// experiment (mirrors -metrics).
		if len(fs.Args()) == 0 && *tracePath == "" {
			return nil
		}
	}

	ids := fs.Args()
	if *tracePath != "" {
		if *zipfPath != "" {
			// Combined -zipf -trace: the population-scale acceptance run.
			// The full tracer is O(ops) and cannot hold a million-name
			// workload; the sampled tracer retains O(k) spans, so this
			// export completes at any population.
			data, pt, err := experiments.PopulationTrace(*popTrace)
			if err != nil {
				return fmt.Errorf("population trace: %w", err)
			}
			if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *tracePath, err)
			}
			fmt.Fprintf(w, "wrote sampled population trace to %s (%d names, %d ops, %d/%d roots retained, %d spans)\n",
				*tracePath, pt.Population, pt.TotalOps, pt.RootsRetained, pt.RootsSeen, pt.RetainedSpans)
		} else {
			data, err := experiments.CanonicalTrace()
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *tracePath, err)
			}
			fmt.Fprintf(w, "wrote canonical trace to %s\n", *tracePath)
		}
		// -trace alone exports the trace without running every experiment.
		if len(ids) == 0 {
			return nil
		}
	}
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	fmt.Fprintln(w, "V-System distributed name interpretation — paper reproduction")
	fmt.Fprintln(w, "(virtual-time measurements on the simulated 3 Mbit Ethernet testbed)")
	fmt.Fprintln(w)
	var results []experiments.Result
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		experiments.Print(w, res)
		results = append(results, res)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			return fmt.Errorf("write %s: %w", *jsonPath, err)
		}
	}
	return nil
}

// benchDoc is the -json output schema: the experiment results verbatim,
// wrapped with enough metadata to interpret the file on its own.
type benchDoc struct {
	Tool        string               `json:"tool"`
	Description string               `json:"description"`
	Results     []experiments.Result `json:"results"`
}

func writeJSON(path string, results []experiments.Result) error {
	doc := benchDoc{
		Tool:        "vbench",
		Description: "virtual-time measurements on the simulated 3 Mbit Ethernet testbed",
		Results:     results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
