package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVbenchList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e3", "e5", "t1", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("missing experiment id %q", id)
		}
	}
}

func TestVbenchChaosAlias(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"chaos"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"A10", "chaos sweep", "dynamic binding, invalidate-and-retry"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVbenchSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"e1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1", "2.56 ms", "paper", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVbenchUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"zz"}, &sb); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestVbenchScorecard(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-score"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "scorecard") || strings.Contains(out, "DEVIATES") {
		t.Fatalf("scorecard output:\n%s", out)
	}
}

// TestVbenchCacheGolden regenerates the A17 lease-coherence document
// through the CLI path and byte-compares it with the committed golden,
// so BENCH_cache.json drift is caught by plain `go test` as well as by
// `make golden-guard`.
func TestVbenchCacheGolden(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "BENCH_cache.json")
	var sb strings.Builder
	if err := run([]string{"-cache", tmp}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote lease-coherence document") {
		t.Fatalf("output:\n%s", sb.String())
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../../BENCH_cache.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("regenerated cache document differs from committed BENCH_cache.json; run `make bench-cache` if the change is intended")
	}
}
