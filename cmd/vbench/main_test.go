package main

import (
	"strings"
	"testing"
)

func TestVbenchList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e3", "e5", "t1", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("missing experiment id %q", id)
		}
	}
}

func TestVbenchChaosAlias(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"chaos"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"A10", "chaos sweep", "dynamic binding, invalidate-and-retry"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVbenchSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"e1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1", "2.56 ms", "paper", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVbenchUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"zz"}, &sb); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestVbenchScorecard(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-score"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "scorecard") || strings.Contains(out, "DEVIATES") {
		t.Fatalf("scorecard output:\n%s", out)
	}
}
