// Command listdir is the paper's single "list directory" command (§6): it
// lists the objects in any of several different kinds of contexts —
// disk files, context prefixes, virtual terminals, print jobs, TCP
// connections, mailboxes, and programs in execution — relying only on the
// typed description records every CSNH server returns.
//
// Usage:
//
//	listdir                  # tour every standard context
//	listdir '[home]' '[tty]' # list specific contexts
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/proto"
	"repro/internal/rig"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "listdir:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return err
	}
	ws := r.WS[0]
	s := ws.Session
	if err := seedDemoObjects(r, ws); err != nil {
		return err
	}

	contexts := args
	if len(contexts) == 0 {
		contexts = []string{
			"[home]", "[bin]", "[storage]/shared", "[storage2]/archive",
			"[tty]", "[print]", "[tcp]tcp", "[mail]", "[exec]",
		}
	}

	// The per-user prefix table itself is a context too.
	fmt.Fprintln(w, "context prefixes (the user's prefix server):")
	prefixes, err := s.ListPrefixes()
	if err != nil {
		return err
	}
	for _, d := range prefixes {
		printRecord(w, d)
	}
	fmt.Fprintln(w)

	for _, name := range contexts {
		fmt.Fprintf(w, "%s:\n", name)
		records, err := s.List(name)
		if err != nil {
			fmt.Fprintf(w, "  error: %v\n\n", err)
			continue
		}
		if len(records) == 0 {
			fmt.Fprintln(w, "  (empty)")
		}
		for _, d := range records {
			printRecord(w, d)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// printRecord renders one typed description record; the tag field selects
// the interpretation of the rest (§5.5, Figure 3).
func printRecord(w io.Writer, d proto.Descriptor) {
	switch d.Tag {
	case proto.TagFile:
		fmt.Fprintf(w, "  %-15s %-24s %6d bytes  owner=%s\n", d.Tag, d.Name, d.Size, d.Owner)
	case proto.TagDirectory:
		fmt.Fprintf(w, "  %-15s %-24s %6d entries\n", d.Tag, d.Name, d.Size)
	case proto.TagLink:
		fmt.Fprintf(w, "  %-15s %-24s -> (pid %#x, ctx %#x)\n", d.Tag, d.Name, d.TypeSpecific[0], d.TypeSpecific[1])
	case proto.TagContextPrefix:
		kind := "static"
		if d.ObjectID == 1 {
			kind = "dynamic"
		}
		fmt.Fprintf(w, "  %-15s [%-22s] %s -> (%#x, ctx %#x)\n", d.Tag, d.Name, kind, d.TypeSpecific[0], d.TypeSpecific[1])
	case proto.TagTerminal:
		fmt.Fprintf(w, "  %-15s %-24s %6d bytes on screen\n", d.Tag, d.Name, d.Size)
	case proto.TagPrintJob:
		fmt.Fprintf(w, "  %-15s %-24s %6d bytes, queue position %d\n", d.Tag, d.Name, d.Size, d.TypeSpecific[0])
	case proto.TagTCPConnection:
		fmt.Fprintf(w, "  %-15s %-24s sent=%d recv=%d\n", d.Tag, d.Name, d.TypeSpecific[0], d.TypeSpecific[1])
	case proto.TagProgram:
		fmt.Fprintf(w, "  %-15s %-24s pid=%#x image=%s\n", d.Tag, d.Name, d.TypeSpecific[0], d.Owner)
	case proto.TagMailbox:
		fmt.Fprintf(w, "  %-15s %-24s %d message(s)\n", d.Tag, d.Name, d.TypeSpecific[0])
	default:
		fmt.Fprintf(w, "  %-15s %-24s size=%d\n", d.Tag, d.Name, d.Size)
	}
}

// seedDemoObjects populates the transient-object servers so the tour has
// something to show.
func seedDemoObjects(r *rig.Rig, ws *rig.Workstation) error {
	s := ws.Session
	// A virtual terminal with output on it.
	term, err := s.Open("[tty]new", proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		return err
	}
	if _, err := term.Write([]byte("% ls [home]\n")); err != nil {
		return err
	}
	if err := term.Close(); err != nil {
		return err
	}
	// A queued print job.
	job, err := s.Open("[print]naming-paper.ps", proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		return err
	}
	if _, err := job.Write([]byte("%!PS naming paper")); err != nil {
		return err
	}
	if err := job.Close(); err != nil {
		return err
	}
	// An open TCP connection.
	conn, err := s.Open("[tcp]tcp/su-score.arpa:23", proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		return err
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		return err
	}
	if err := conn.Close(); err != nil {
		return err
	}
	// A program in execution.
	req := &proto.Message{Op: proto.OpExecProgram}
	proto.SetCSName(req, 0, "editor")
	reply, err := s.Proc().Send(req, ws.Exec.PID())
	if err != nil {
		return err
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		return err
	}
	// Mail in a mailbox.
	mb, err := s.Open("[mail]mann@v.stanford.edu", proto.ModeWrite)
	if err != nil {
		return err
	}
	if _, err := mb.Write([]byte("camera-ready due Friday")); err != nil {
		return err
	}
	return mb.Close()
}
