package main

import (
	"strings"
	"testing"
)

func TestListdirDefaultTour(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Every context type the paper's §6 list-directory command covers
	// appears with its typed rendering.
	for _, want := range []string{
		"context prefixes",
		"file", "welcome.txt",
		"directory",
		"link", "archive",
		"terminal", "vgt1",
		"print-job", "naming-paper.ps",
		"tcp-connection", "su-score.arpa:23",
		"mailbox", "mann@v.stanford.edu", "1 message(s)",
		"program", "editor.1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestListdirExplicitContexts(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"[bin]"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"hello", "editor", "compiler"} {
		if !strings.Contains(out, want) {
			t.Errorf("[bin] listing missing %q", want)
		}
	}
}

func TestListdirBadContextReportsError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"[nosuch]"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "error:") {
		t.Fatalf("expected an inline error, got:\n%s", sb.String())
	}
}
