// Command vstat is the live exposition surface for the virtual-time
// metrics registry: it boots the standard rig, drives a short canonical
// workload (optionally under the A14 crash/restart chaos schedule), and
// renders what the registry collected. Unlike `vbench -metrics` — whose
// JSON document is deterministic and golden-pinned — vstat is the
// operator's view: it includes volatile series (envelope-pool reuse)
// and renders per-tick snapshot diffs.
//
// Usage:
//
//	vstat               # registry snapshot after the canonical workload
//	vstat -chaos        # inject the FS1 crash/restart schedule first
//	vstat -health       # also render the health/SLO report
//	vstat -diff         # also render per-tick snapshot diffs
//	vstat -prom         # Prometheus-style text exposition instead of tables
//	vstat -flight       # also dump the flight recorder's event journal
//	vstat -top          # also render the prefix server's hot-name sketch
//	vstat -rates        # also render per-prefix churn estimates + lease counters
//
// The -flight/-top/-rates views run the workload through the lease
// cache (PROTOCOL.md §13) so grants, renewals and invalidations flow;
// the plain snapshot keeps the seed workload shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vstat:", err)
		os.Exit(1)
	}
}

// schedule is the A14 crash/restart schedule: two 500 ms FS1 outages.
func schedule() []chaos.Event {
	return []chaos.Event{
		{At: 300 * time.Millisecond, Action: chaos.Crash, Host: "fs1", Note: "first outage"},
		{At: 800 * time.Millisecond, Action: chaos.Restart, Host: "fs1"},
		{At: 1600 * time.Millisecond, Action: chaos.Crash, Host: "fs1", Note: "second outage"},
		{At: 2100 * time.Millisecond, Action: chaos.Restart, Host: "fs1"},
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vstat", flag.ContinueOnError)
	prom := fs.Bool("prom", false, "render the snapshot as Prometheus-style text exposition")
	health := fs.Bool("health", false, "render the health/SLO report")
	diff := fs.Bool("diff", false, "render per-tick snapshot diffs (the sampler's series)")
	withChaos := fs.Bool("chaos", false, "inject the FS1 crash/restart schedule during the workload")
	showFlight := fs.Bool("flight", false, "dump the flight recorder's sealed event journal")
	showTop := fs.Bool("top", false, "render the prefix server's hot-name sketch")
	showRates := fs.Bool("rates", false, "render per-prefix churn estimates and the client lease-cache counters")
	ops := fs.Int("ops", 150, "workload operations to drive")
	slo := fs.Float64("slo", 0.90, "availability SLO for -health")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy := client.DefaultRetryPolicy()
	cfg := rig.Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true, Retry: &policy}
	observing := *showFlight || *showTop || *showRates
	if observing {
		cfg.Lease = 200 * time.Millisecond
	}
	r, err := rig.New(cfg)
	if err != nil {
		return err
	}
	s := r.WS[0].Session
	if observing {
		if err := s.EnableLeaseCache(); err != nil {
			return err
		}
	}

	var eng *chaos.Engine
	pump := func(now vtime.Time) { r.Sampler.AdvanceTo(now) }
	if *withChaos {
		// The A14 failover topology: FS2 replicates the standard-programs
		// context; the client caches resolutions so outages are felt.
		if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
			return err
		}
		if err := r.FS2.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
			return err
		}
		s.EnableNameCache(true)
		eng = r.NewChaos(schedule())
		pump = func(now vtime.Time) {
			eng.AdvanceTo(now)
			r.Sampler.AdvanceTo(now)
		}
		s.SetRetryObserver(pump)
	}

	for i := 0; i < *ops; i++ {
		if *withChaos && i > 0 && i%25 == 0 {
			s.FlushNameCache()
		}
		pump(s.Proc().Now())
		var opErr error
		switch i % 3 {
		case 0:
			if f, err := s.Open("[bin]hello", proto.ModeRead); err == nil {
				opErr = f.Close()
			} else {
				opErr = err
			}
		case 1:
			_, opErr = s.ReadFile("[home]welcome.txt")
		default:
			_, opErr = s.Query("[home]notes/todo.txt")
		}
		_ = opErr // under chaos some operations legitimately fail
		s.Proc().ChargeCompute(10 * time.Millisecond)
	}
	horizon := s.Proc().Now()
	pump(horizon)

	snap := r.Metrics.Snapshot()
	if *prom {
		metrics.WritePrometheus(w, snap)
		return nil
	}

	fmt.Fprintf(w, "vstat: registry snapshot at %s virtual\n\n", vtime.Milliseconds(horizon))
	snap.WriteText(w)
	gets, news, _ := kernel.EnvPoolStats()
	if gets > 0 {
		fmt.Fprintf(w, "envelope pool: %d gets, %d allocs (%.1f%% reused)  (volatile)\n",
			gets, news, 100*(1-float64(news)/float64(gets)))
	}
	if *diff {
		fmt.Fprintf(w, "\nper-tick diffs (tick %s):\n", vtime.Milliseconds(r.Sampler.Tick()))
		metrics.WriteDiffs(w, r.Sampler.Samples())
	}
	if *health {
		fmt.Fprintln(w)
		metrics.Health(snap, r.Sampler.Samples(), horizon, *slo).WriteText(w)
	}
	if *showTop {
		fmt.Fprintf(w, "\nhot names (prefix server %s, space-saving top-k):\n", r.WS[0].User)
		items := r.WS[0].Prefix.TopNames()
		if len(items) == 0 {
			fmt.Fprintln(w, "  (no resolutions observed)")
		}
		for _, it := range items {
			fmt.Fprintf(w, "  %-24s %6d resolutions (overestimate ≤ %d)\n", it.Name, it.Count, it.Err)
		}
	}
	if *showRates {
		fmt.Fprintf(w, "\nper-prefix churn estimates (prefix server %s):\n", r.WS[0].User)
		items := r.WS[0].Prefix.NameRates()
		if len(items) == 0 {
			fmt.Fprintln(w, "  (no names observed)")
		}
		for _, it := range items {
			fmt.Fprintf(w, "  %-24s res %d (%d mHz)  redef %d (%d mHz)  renew %d (%d mHz)  fanout %d/1000  max stale %d µs\n",
				it.Name, it.Resolutions, it.ResRateMilliHz, it.Redefinitions, it.RedefRateMilliHz,
				it.Renewals, it.RenewRateMilliHz, it.FanoutMilli, it.MaxStaleUS)
		}
		st := s.LeaseCacheStats()
		fmt.Fprintf(w, "client lease cache: %d hits, %d misses, %d negative hits, %d renewals, %d invalidations, %d stale\n",
			st.Hits, st.Misses, st.NegativeHits, st.Renewals, st.Invalidations, st.Stale)
		for _, it := range s.LeaseNameRates() {
			fmt.Fprintf(w, "  %-24s max stale %d µs\n", it.Name, it.MaxStaleUS)
		}
	}
	if *showFlight {
		r.Flight.Seal(horizon)
		journal := r.Flight.Journal()
		fmt.Fprintf(w, "\nflight journal (%d events, %d dropped):\n", len(journal), r.Flight.Dropped())
		flight.WriteText(w, journal)
	}
	return nil
}
