package main

import (
	"strings"
	"testing"
)

func runVstat(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestVstatSnapshot(t *testing.T) {
	out := runVstat(t, "-ops", "30")
	for _, want := range []string{
		"vstat: registry snapshot at",
		"counters:",
		"kernel_sends_total",
		"histograms:",
		"send_latency{server=",
		"envelope pool:",
		"(volatile)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVstatProm(t *testing.T) {
	out := runVstat(t, "-ops", "30", "-prom")
	for _, want := range []string{
		"# TYPE kernel_sends_total counter",
		"send_latency",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestVstatChaosHealth(t *testing.T) {
	out := runVstat(t, "-chaos", "-health", "-diff")
	for _, want := range []string{
		"chaos_events_total{class=\"crash\"}",
		"server_up{host=\"fs1\"}",
		"300.00 ms=0",
		"800.00 ms=1",
		"health over",
		"outage",
		"per-tick diffs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos/health output missing %q:\n%s", want, out)
		}
	}
}
