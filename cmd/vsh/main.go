// Command vsh is a small V-System executive over the client run-time
// library: it boots the standard simulated rig and runs shell-style
// commands against the distributed name space — current context
// navigation, context-prefixed names, typed listings, program loading.
//
// Usage:
//
//	vsh -c 'ls [home]; cat welcome.txt; cd notes; pwd'
//	echo 'ls [bin]' | vsh
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsh:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("vsh", flag.ContinueOnError)
	script := fs.String("c", "", "semicolon-separated commands to run (default: read stdin)")
	user := fs.String("user", "mann", "workstation user")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := rig.DefaultConfig()
	if *user != "mann" && *user != "cheriton" {
		cfg.Users = append(cfg.Users, *user)
	}
	r, err := rig.New(cfg)
	if err != nil {
		return err
	}
	var ws *rig.Workstation
	for _, w := range r.WS {
		if w.User == *user {
			ws = w
		}
	}
	if ws == nil {
		return fmt.Errorf("no workstation for user %q", *user)
	}
	sh := &shell{ws: ws, out: stdout}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			if err := sh.exec(strings.TrimSpace(line)); err != nil {
				return err
			}
		}
		return nil
	}
	scanner := bufio.NewScanner(stdin)
	for scanner.Scan() {
		if err := sh.exec(strings.TrimSpace(scanner.Text())); err != nil {
			return err
		}
	}
	return scanner.Err()
}

type shell struct {
	ws  *rig.Workstation
	out io.Writer
}

// exec runs one command line; command errors are reported, not fatal.
func (sh *shell) exec(line string) error {
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	if err := sh.dispatch(cmd, args); err != nil {
		fmt.Fprintf(sh.out, "%s: %v\n", cmd, err)
	}
	return nil
}

func (sh *shell) dispatch(cmd string, args []string) error {
	s := sh.ws.Session
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("expected %d argument(s)", n)
		}
		return nil
	}
	switch cmd {
	case "help":
		fmt.Fprintln(sh.out, "commands: ls lsp cd pwd cat write rm unlink mv ln mkdir query chmod prefixes addprefix rmprefix load exec jobs print mail name pipe-send pipe-recv stats time help")
		return nil

	case "ls":
		name := ""
		if len(args) > 0 {
			name = args[0]
		}
		records, err := s.List(name)
		if err != nil {
			return err
		}
		for _, d := range records {
			fmt.Fprintf(sh.out, "%-16s %8d  %s\n", d.Tag, d.Size, d.Name)
		}
		return nil

	case "lsp":
		// Pattern-matched context directory (§5.6 extension).
		if err := need(2); err != nil {
			return err
		}
		records, err := s.ListPattern(args[0], args[1])
		if err != nil {
			return err
		}
		for _, d := range records {
			fmt.Fprintf(sh.out, "%-16s %8d  %s\n", d.Tag, d.Size, d.Name)
		}
		return nil

	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return s.MakeContext(args[0])

	case "unlink":
		if err := need(1); err != nil {
			return err
		}
		return s.Unlink(args[0])

	case "cd":
		if err := need(1); err != nil {
			return err
		}
		return s.ChangeContext(args[0])

	case "pwd":
		name, err := s.CurrentName()
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, name)
		return nil

	case "cat":
		if err := need(1); err != nil {
			return err
		}
		data, err := s.ReadFile(args[0])
		if err != nil {
			return err
		}
		_, err = sh.out.Write(data)
		return err

	case "write":
		if err := need(2); err != nil {
			return err
		}
		return s.WriteFile(args[0], []byte(strings.Join(args[1:], " ")+"\n"))

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return s.Remove(args[0])

	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return s.Rename(args[0], args[1])

	case "ln":
		if err := need(2); err != nil {
			return err
		}
		return s.Link(args[0], args[1])

	case "query":
		if err := need(1); err != nil {
			return err
		}
		d, err := s.Query(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%s  id=%d size=%d owner=%q perms=%03b\n", d.Tag, d.ObjectID, d.Size, d.Owner, d.Perms)
		return nil

	case "chmod":
		if err := need(2); err != nil {
			return err
		}
		d, err := s.Query(args[1])
		if err != nil {
			return err
		}
		var perms uint16
		if strings.ContainsRune(args[0], 'r') {
			perms |= proto.PermRead
		}
		if strings.ContainsRune(args[0], 'w') {
			perms |= proto.PermWrite
		}
		if strings.ContainsRune(args[0], 'x') {
			perms |= proto.PermExecute
		}
		d.Perms = perms
		return s.Modify(args[1], d)

	case "prefixes":
		records, err := s.ListPrefixes()
		if err != nil {
			return err
		}
		for _, d := range records {
			kind := "static "
			if d.ObjectID == 1 {
				kind = "dynamic"
			}
			fmt.Fprintf(sh.out, "[%s]\t%s -> (%#x, ctx %#x)\n", d.Name, kind, d.TypeSpecific[0], d.TypeSpecific[1])
		}
		return nil

	case "addprefix":
		if err := need(2); err != nil {
			return err
		}
		pair, err := s.MapContext(args[1])
		if err != nil {
			return err
		}
		return s.AddName(args[0], pair)

	case "rmprefix":
		if err := need(1); err != nil {
			return err
		}
		return s.DeleteName(args[0])

	case "load":
		if err := need(1); err != nil {
			return err
		}
		buf := make([]byte, 64*1024)
		start := s.Proc().Now()
		n, err := s.LoadProgram(args[0], buf)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "loaded %d bytes in %s (virtual)\n", n, vtime.Milliseconds(s.Proc().Now()-start))
		return nil

	case "exec":
		if err := need(1); err != nil {
			return err
		}
		progName, pid, err := s.Exec("[exec]" + args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "started %s (pid %v)\n", progName, pid)
		return nil

	case "jobs":
		records, err := s.List("[exec]")
		if err != nil {
			return err
		}
		for _, d := range records {
			fmt.Fprintf(sh.out, "%s (pid %#x, image %s)\n", d.Name, d.TypeSpecific[0], d.Owner)
		}
		return nil

	case "print":
		if err := need(2); err != nil {
			return err
		}
		f, err := s.Open("[print]"+args[0], proto.ModeWrite|proto.ModeCreate)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(strings.Join(args[1:], " "))); err != nil {
			f.Close()
			return err
		}
		return f.Close()

	case "mail":
		if err := need(2); err != nil {
			return err
		}
		f, err := s.Open("[mail]"+args[0], proto.ModeWrite)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(strings.Join(args[1:], " "))); err != nil {
			f.Close()
			return err
		}
		return f.Close()

	case "name":
		// §6: determine the "absolute" name of an open file — the
		// inverse mapping, with its documented imperfections.
		if err := need(1); err != nil {
			return err
		}
		f, err := s.Open(args[0], proto.ModeRead)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := f.InstanceName()
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "instance %d on %v was opened as %q\n", f.InstanceID(), f.Server(), n)
		return nil

	case "pipe-send":
		if err := need(2); err != nil {
			return err
		}
		f, err := s.Open("[pipe]"+args[0], proto.ModeWrite|proto.ModeCreate)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(strings.Join(args[1:], " "))); err != nil {
			f.Close()
			return err
		}
		return f.Close()

	case "pipe-recv":
		if err := need(1); err != nil {
			return err
		}
		f, err := s.Open("[pipe]"+args[0], proto.ModeRead)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, 512)
		n, err := f.ReadRetry(buf, 8)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%s\n", buf[:n])
		return nil

	case "stats":
		fmt.Fprintf(sh.out, "prefix server %v: %d prefixes defined\n",
			sh.ws.Prefix.PID(), len(sh.ws.Prefix.Bindings()))
		fmt.Fprintf(sh.out, "virtual time: %s\n", vtime.Milliseconds(s.Proc().Now()))
		// Live registry snapshot — the same renderer vstat uses, so the
		// shell and the exposition tool print the same numbers.
		s.Proc().Kernel().Metrics().Snapshot().WriteText(sh.out)
		if gets, news, _ := kernel.EnvPoolStats(); gets > 0 {
			fmt.Fprintf(sh.out, "envelope pool: %d gets, %d allocs (%.1f%% reused)  (volatile)\n",
				gets, news, 100*(1-float64(news)/float64(gets)))
		}
		return nil

	case "time":
		fmt.Fprintf(sh.out, "virtual time: %s\n", vtime.Milliseconds(s.Proc().Now()))
		return nil

	default:
		return fmt.Errorf("unknown command (try help)")
	}
}
