package main

import (
	"strings"
	"testing"
)

func runScript(t *testing.T, script string) string {
	t.Helper()
	var sb strings.Builder
	if err := run([]string{"-c", script}, strings.NewReader(""), &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestVshNavigation(t *testing.T) {
	out := runScript(t, "cat welcome.txt; cd notes; pwd; cat todo.txt")
	for _, want := range []string{
		"Welcome to the V-System, mann.",
		"/users/mann/notes",
		"naming paper",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVshFileLifecycle(t *testing.T) {
	out := runScript(t, "write memo.txt remember; cat memo.txt; mv memo.txt note.txt; ls; rm note.txt; ls")
	if !strings.Contains(out, "remember") {
		t.Fatalf("write/cat failed:\n%s", out)
	}
	if !strings.Contains(out, "note.txt") {
		t.Fatalf("mv/ls failed:\n%s", out)
	}
	// After rm, the final ls must not show note.txt.
	lastLs := out[strings.LastIndex(out, "note.txt"):]
	if strings.Count(out, "note.txt") > 2 || strings.Contains(lastLs[8:], "note.txt") {
		t.Logf("output:\n%s", out)
	}
}

func TestVshPrefixCommands(t *testing.T) {
	out := runScript(t, "prefixes; addprefix archive [storage2]/archive; cat [archive]2026/paper.mss; rmprefix archive; cat [archive]2026/paper.mss")
	if !strings.Contains(out, "[storage]") || !strings.Contains(out, "[bin]") {
		t.Fatalf("prefixes listing missing:\n%s", out)
	}
	if !strings.Contains(out, "Uniform Access") {
		t.Fatalf("read through added prefix failed:\n%s", out)
	}
	if !strings.Contains(out, "nonexistent name") {
		t.Fatalf("deleted prefix should fail:\n%s", out)
	}
}

func TestVshQueryAndChmod(t *testing.T) {
	out := runScript(t, "query welcome.txt; chmod r welcome.txt; query welcome.txt")
	if !strings.Contains(out, "file") || !strings.Contains(out, "perms=001") {
		t.Fatalf("query/chmod output:\n%s", out)
	}
}

func TestVshLoadAndExec(t *testing.T) {
	out := runScript(t, "load [bin]editor; exec hello; jobs")
	if !strings.Contains(out, "loaded 65536 bytes") {
		t.Fatalf("load output:\n%s", out)
	}
	if !strings.Contains(out, "started hello.") || !strings.Contains(out, "image hello") {
		t.Fatalf("exec/jobs output:\n%s", out)
	}
}

func TestVshPrintAndMail(t *testing.T) {
	out := runScript(t, "print doc.ps PostScript payload; ls [print]; mail mann@v.stanford.edu hello there; ls [mail]")
	if !strings.Contains(out, "doc.ps") {
		t.Fatalf("print queue missing job:\n%s", out)
	}
	if !strings.Contains(out, "mann@v.stanford.edu") {
		t.Fatalf("mail listing missing:\n%s", out)
	}
}

func TestVshErrorsAreNonFatal(t *testing.T) {
	out := runScript(t, "cat nosuchfile; pwd")
	if !strings.Contains(out, "nonexistent name") {
		t.Fatalf("error not reported:\n%s", out)
	}
	if !strings.Contains(out, "users/mann") {
		t.Fatalf("shell should continue after errors:\n%s", out)
	}
}

func TestVshSecondUser(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-user", "cheriton", "-c", "cat welcome.txt"}, strings.NewReader(""), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cheriton") {
		t.Fatalf("wrong user view:\n%s", sb.String())
	}
}

func TestVshStdinMode(t *testing.T) {
	var sb strings.Builder
	stdin := strings.NewReader("pwd\n# a comment\ncat welcome.txt\n")
	if err := run(nil, stdin, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Welcome to the V-System") {
		t.Fatalf("stdin script failed:\n%s", sb.String())
	}
}

func TestVshUnknownCommand(t *testing.T) {
	out := runScript(t, "frobnicate")
	if !strings.Contains(out, "unknown command") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestVshHelp(t *testing.T) {
	out := runScript(t, "help")
	if !strings.Contains(out, "commands:") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestVshMkdirAndPatternLs(t *testing.T) {
	out := runScript(t, "mkdir docs; write docs/a.mss x; write docs/b.txt y; lsp docs *.mss; cd docs; pwd")
	if !strings.Contains(out, "a.mss") {
		t.Fatalf("pattern ls missing match:\n%s", out)
	}
	if strings.Contains(out, "b.txt") {
		t.Fatalf("pattern ls leaked non-match:\n%s", out)
	}
	if !strings.Contains(out, "/users/mann/docs") {
		t.Fatalf("mkdir/cd failed:\n%s", out)
	}
}

func TestVshUnlink(t *testing.T) {
	out := runScript(t, "unlink [storage]/shared/archive; ls [storage]/shared; cat [storage2]/archive/2026/paper.mss")
	if !strings.Contains(out, "Uniform Access") {
		t.Fatalf("unlink must not touch the remote tree:\n%s", out)
	}
	if strings.Contains(out, "link") {
		t.Fatalf("link should be gone from the listing:\n%s", out)
	}
}

func TestVshPipes(t *testing.T) {
	out := runScript(t, "pipe-send results benchmark finished; pipe-recv results")
	if !strings.Contains(out, "benchmark finished") {
		t.Fatalf("pipe round trip failed:\n%s", out)
	}
}

func TestVshStats(t *testing.T) {
	out := runScript(t, "stats")
	if !strings.Contains(out, "prefixes defined") || !strings.Contains(out, "virtual time") {
		t.Fatalf("stats output:\n%s", out)
	}
}

func TestVshNameInverse(t *testing.T) {
	out := runScript(t, "name [home]welcome.txt")
	if !strings.Contains(out, "was opened as") || !strings.Contains(out, "welcome.txt") {
		t.Fatalf("name output:\n%s", out)
	}
}

func TestVshHardLink(t *testing.T) {
	out := runScript(t, "write one.txt shared; ln one.txt two.txt; cat two.txt; rm one.txt; cat two.txt; query two.txt")
	if strings.Count(out, "shared") < 2 {
		t.Fatalf("hard link behaviour wrong:\n%s", out)
	}
	if !strings.Contains(out, "file") {
		t.Fatalf("query output:\n%s", out)
	}
}
