// Package repro is a from-scratch Go reproduction of Cheriton & Mann,
// "Uniform Access to Distributed Name Interpretation in the V-System"
// (ICDCS 1984).
//
// The library lives under internal/: the simulated V kernel and Ethernet
// substrate, the name-handling protocol (the paper's contribution), the
// per-user context prefix server, the file / terminal / printer /
// Internet / mail / pipe / time servers it unifies, the centralized
// name-server baseline the paper argues against, and the client run-time
// routines. cmd/vbench regenerates every quantitative result in the
// paper; cmd/vsh and cmd/listdir are small drivers; examples/ holds five
// runnable walkthroughs.
//
// Start with README.md, DESIGN.md (system inventory and experiment
// index), PROTOCOL.md (wire formats), and EXPERIMENTS.md
// (paper-vs-measured with documented deviations).
//
// The benchmarks in bench_test.go measure the real wall-clock cost of
// the reproduced code paths; the paper-facing numbers come from the
// virtual-time harness (go run ./cmd/vbench).
package repro
