// Package replica is a Raft-style replication substrate layered purely on
// the kernel's Send/Receive/Reply transaction, so that a group of name
// servers can keep byte-identical state across host crashes (ISSUE 6;
// PROTOCOL.md §11). Nothing in the package uses real time or unseeded
// randomness: elections are driven by the group monitor from the virtual
// clock with seeded timeouts, and replication is synchronous on the
// serving path, which makes every run deterministic under the virtual
// clock and fully visible to the trace and metrics machinery.
//
// A Replica is one group member: a single kernel process whose receive
// loop dispatches the replication operations (0x0400 range) itself and
// hands every other message to the attached Service — the state-machine
// front (a replicated file server front, a replicated prefix table). The
// Group (group.go) owns membership, leader bookkeeping and election
// pacing.
package replica

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/trace"
)

// Role is a member's current consensus role.
type Role uint32

const (
	// RoleFollower accepts appends and votes.
	RoleFollower Role = iota + 1
	// RoleCandidate is standing in an election round.
	RoleCandidate
	// RoleLeader serves mutations and replicates the log.
	RoleLeader
)

// String names the role for diagnostics.
func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", uint32(r))
}

// Service is the replicated state machine attached to a member. Apply,
// Snapshot and Restore must be deterministic: two replicas applying the
// same command sequence from the same snapshot must reach byte-identical
// state.
type Service interface {
	// Serve handles one non-replication message delivered to the member
	// process and must complete the transaction (Reply or Forward). The
	// Replica is passed in so the service can route on leadership:
	// Propose mutations, forward or redirect the rest.
	Serve(p *kernel.Process, r *Replica, msg *proto.Message, from kernel.PID)
	// Apply executes one committed command and returns the reply for the
	// proposing client (followers discard it).
	Apply(p *kernel.Process, cmd []byte) *proto.Message
	// Snapshot encodes the applied state machine.
	Snapshot() []byte
	// Restore replaces the state machine with a snapshot.
	Restore(p *kernel.Process, data []byte) error
}

// snapChunk bounds one snapshot-install segment, comfortably below
// proto.MaxSegmentBytes.
const snapChunk = 48 * 1024

// Replica is one member of a replication group.
type Replica struct {
	proc *kernel.Process
	svc  Service

	mu       sync.Mutex
	gid      kernel.PID // kernel process group of the membership
	total    int        // full membership size (quorum denominator)
	term     uint32
	votedFor kernel.PID
	role     Role
	leader   kernel.PID // last known leader (may be dead)
	base     uint32     // last log index covered by the installed snapshot
	baseTerm uint32
	log      []entry // log[i] holds index base+1+i
	commit   uint32
	applied  uint32
	match    map[kernel.PID]uint32 // leader: highest index known replicated per peer
	snapBuf  []byte                // partial snapshot install
	exitErr  error
	exited   chan struct{}
}

// New builds a member around proc with svc as its state machine. The
// member joins a group via Group.Add/Rejoin (which calls Bind) and serves
// once Run is started.
func New(proc *kernel.Process, svc Service) *Replica {
	return &Replica{
		proc:   proc,
		svc:    svc,
		role:   RoleFollower,
		match:  make(map[kernel.PID]uint32),
		exited: make(chan struct{}),
	}
}

// Start creates the member process on host and serves it on its own
// goroutine. makeSvc builds the state machine around the new process
// (services typically need the process before they can exist).
func Start(host *kernel.Host, name string, makeSvc func(p *kernel.Process) Service) (*Replica, error) {
	proc, err := host.NewProcess(name)
	if err != nil {
		return nil, err
	}
	r := New(proc, makeSvc(proc))
	go r.Run()
	return r, nil
}

// Bind attaches the member to its group's kernel process group and fixes
// the quorum denominator. Called by the Group before the member serves.
func (r *Replica) Bind(gid kernel.PID, total int) {
	r.mu.Lock()
	r.gid = gid
	r.total = total
	r.mu.Unlock()
}

// PID returns the member process identifier.
func (r *Replica) PID() kernel.PID { return r.proc.PID() }

// Proc returns the member process.
func (r *Replica) Proc() *kernel.Process { return r.proc }

// Leading reports whether this member currently believes it is leader.
func (r *Replica) Leading() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role == RoleLeader
}

// LeaderHint returns the pid of the live leader this member knows of, or
// NilPID: its own pid when leading, the last announced leader if that
// process is still alive.
func (r *Replica) LeaderHint() kernel.PID {
	r.mu.Lock()
	lead := r.leader
	if r.role == RoleLeader {
		lead = r.proc.PID()
	}
	r.mu.Unlock()
	if lead != kernel.NilPID && r.proc.Kernel().ProcessAlive(lead) {
		return lead
	}
	return kernel.NilPID
}

// Exited closes when the member's receive loop stops (crash or destroy).
func (r *Replica) Exited() <-chan struct{} { return r.exited }

// Err reports why the member stopped serving, nil while running.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.exitErr
}

// Run serves the member until its process dies. Call on the member's own
// goroutine (or via Start).
func (r *Replica) Run() {
	p := r.proc
	for {
		msg, from, err := p.Receive()
		if err != nil {
			r.mu.Lock()
			r.exitErr = err
			r.mu.Unlock()
			close(r.exited)
			return
		}
		r.dispatch(p, msg, from)
	}
}

// dispatch charges the dispatch cost and routes one message: replication
// operations are handled internally, everything else goes to the Service.
func (r *Replica) dispatch(p *kernel.Process, msg *proto.Message, from kernel.PID) {
	p.ChargeCompute(p.Kernel().Model().ServerDispatchCost)
	var reply *proto.Message
	switch msg.Op {
	case proto.OpReplicaAppend:
		reply = r.handleAppend(p, msg)
	case proto.OpReplicaVote:
		reply = r.handleVote(msg)
	case proto.OpReplicaElect:
		reply = r.handleElect(p)
	case proto.OpReplicaSync:
		reply = r.handleSync(p, msg)
	case proto.OpReplicaSnapshot:
		reply = r.handleSnapshot(p, msg)
	case proto.OpReplicaPropose:
		reply = r.handlePropose(p, msg)
	case proto.OpReplicaStatus:
		reply = r.handleStatus()
	default:
		r.svc.Serve(p, r, msg, from)
		return
	}
	tr := p.Tracer()
	sp := tr.Start(p.PendingSpan(from), trace.KindServe, "replica:"+msg.Op.String(), p.Now(), p.TraceID())
	class := ""
	if reply.Op != proto.ReplyOK {
		class = "replica-" + reply.Op.String()
	}
	tr.Fail(sp, p.Now(), class)
	_ = p.Reply(reply, from)
}

// NotLeaderReply builds the standard redirect reply carrying this
// member's best live-leader hint.
func (r *Replica) NotLeaderReply() *proto.Message {
	rep := proto.NewReply(proto.ReplyNotLeader)
	proto.SetLeaderHint(rep, uint32(r.LeaderHint()))
	return rep
}

// lastIndexLocked returns the index of the last log entry.
func (r *Replica) lastIndexLocked() uint32 {
	return r.base + uint32(len(r.log))
}

// termAtLocked returns the term of the entry at idx, where idx may also
// be the snapshot base. The second result is false when idx is below the
// snapshot or beyond the log.
func (r *Replica) termAtLocked(idx uint32) (uint32, bool) {
	switch {
	case idx == 0:
		return 0, true
	case idx == r.base:
		return r.baseTerm, true
	case idx < r.base || idx > r.lastIndexLocked():
		return 0, false
	}
	return r.log[idx-r.base-1].Term, true
}

// livePeers returns the group's live members other than this one, in pid
// order (host creation order — the deterministic iteration order every
// replication round uses).
func (r *Replica) livePeers() []kernel.PID {
	r.mu.Lock()
	gid := r.gid
	r.mu.Unlock()
	if gid == kernel.NilPID {
		return nil
	}
	k := r.proc.Kernel()
	members, err := k.GroupMembers(gid)
	if err != nil {
		return nil
	}
	peers := members[:0]
	for _, pid := range members {
		if pid != r.proc.PID() && k.ProcessAlive(pid) {
			peers = append(peers, pid)
		}
	}
	return peers
}

// stepDown adopts a higher term observed from a peer.
func (r *Replica) stepDown(term uint32) {
	r.mu.Lock()
	if term > r.term {
		r.term = term
		r.votedFor = kernel.NilPID
	}
	r.role = RoleFollower
	r.mu.Unlock()
}

// handleAppend is the follower side of log replication: term and
// log-consistency checks, conflict truncation, append, and apply of
// newly committed entries. An empty-entry append is the leader's
// announcement/heartbeat.
func (r *Replica) handleAppend(p *kernel.Process, msg *proto.Message) *proto.Message {
	term, prevIdx, prevTerm := msg.F[0], msg.F[1], msg.F[2]
	commit, leader := msg.F[3], kernel.PID(msg.F[4])

	r.mu.Lock()
	if term < r.term {
		rep := proto.NewReply(proto.ReplyNoPermission)
		rep.F[0] = r.term
		r.mu.Unlock()
		return rep
	}
	if term > r.term {
		r.term = term
		r.votedFor = kernel.NilPID
	}
	r.role = RoleFollower
	r.leader = leader
	if prevIdx > r.lastIndexLocked() {
		rep := proto.NewReply(proto.ReplyRetry)
		rep.F[0], rep.F[1] = r.term, r.lastIndexLocked()
		r.mu.Unlock()
		return rep
	}
	if prevIdx > r.base {
		if t, ok := r.termAtLocked(prevIdx); !ok || t != prevTerm {
			rep := proto.NewReply(proto.ReplyRetry)
			rep.F[0], rep.F[1] = r.term, prevIdx-1
			r.mu.Unlock()
			return rep
		}
	}
	ents, err := decodeEntries(msg.Segment, int(msg.F[5]))
	if err != nil {
		rep := proto.NewReply(proto.ReplyBadArgs)
		rep.F[0] = r.term
		r.mu.Unlock()
		return rep
	}
	idx := prevIdx
	for _, e := range ents {
		idx++
		if idx <= r.base {
			continue // already covered by the installed snapshot
		}
		if idx <= r.lastIndexLocked() {
			if t, _ := r.termAtLocked(idx); t != e.Term {
				// Conflict: discard the divergent suffix, keep the new entry.
				r.log = append(r.log[:idx-r.base-1], e)
			}
			continue
		}
		r.log = append(r.log, e)
	}
	if commit > r.lastIndexLocked() {
		commit = r.lastIndexLocked()
	}
	if commit > r.commit {
		r.commit = commit
	}
	toApply := r.takeUnappliedLocked()
	rep := proto.NewReply(proto.ReplyOK)
	rep.F[0], rep.F[1] = r.term, r.lastIndexLocked()
	r.mu.Unlock()

	for _, e := range toApply {
		r.svc.Apply(p, e.Cmd)
	}
	return rep
}

// takeUnappliedLocked advances applied to commit and returns copies of
// the entries to run through the state machine (outside the lock).
func (r *Replica) takeUnappliedLocked() []entry {
	if r.applied >= r.commit {
		return nil
	}
	ents := make([]entry, 0, r.commit-r.applied)
	for idx := r.applied + 1; idx <= r.commit; idx++ {
		ents = append(ents, r.log[idx-r.base-1])
	}
	r.applied = r.commit
	return ents
}

// handleVote is the peer side of an election round: grant iff the
// candidate's term is current, this member has not voted for someone
// else this term, and the candidate's log is at least as up to date.
func (r *Replica) handleVote(msg *proto.Message) *proto.Message {
	term, cand := msg.F[0], kernel.PID(msg.F[1])
	lastIdx, lastTerm := msg.F[2], msg.F[3]
	r.mu.Lock()
	defer r.mu.Unlock()
	if term < r.term {
		rep := proto.NewReply(proto.ReplyNoPermission)
		rep.F[0] = r.term
		return rep
	}
	if term > r.term {
		r.term = term
		r.votedFor = kernel.NilPID
		r.role = RoleFollower
		r.leader = kernel.NilPID
	}
	myIdx := r.lastIndexLocked()
	myTerm, _ := r.termAtLocked(myIdx)
	upToDate := lastTerm > myTerm || (lastTerm == myTerm && lastIdx >= myIdx)
	if (r.votedFor == kernel.NilPID || r.votedFor == cand) && upToDate {
		r.votedFor = cand
		rep := proto.NewReply(proto.ReplyOK)
		rep.F[0] = r.term
		return rep
	}
	rep := proto.NewReply(proto.ReplyNoPermission)
	rep.F[0] = r.term
	return rep
}

// handleElect runs one synchronous election round on the monitor's
// instruction: bump the term, self-vote, request votes from live peers
// in member order, and on majority announce leadership with an empty
// append. Reply OK (won, F[0]=term) or Retry (lost).
func (r *Replica) handleElect(p *kernel.Process) *proto.Message {
	r.mu.Lock()
	r.term++
	r.votedFor = r.proc.PID()
	r.role = RoleCandidate
	term := r.term
	lastIdx := r.lastIndexLocked()
	lastTerm, _ := r.termAtLocked(lastIdx)
	total := r.total
	r.mu.Unlock()

	votes := 1
	for _, pid := range r.livePeers() {
		req := &proto.Message{Op: proto.OpReplicaVote}
		req.F[0], req.F[1] = term, uint32(r.proc.PID())
		req.F[2], req.F[3] = lastIdx, lastTerm
		rep, err := p.Send(req, pid)
		if err != nil {
			continue
		}
		if rep.Op == proto.ReplyOK {
			votes++
		} else if rep.F[0] > term {
			r.stepDown(rep.F[0])
			lost := proto.NewReply(proto.ReplyRetry)
			lost.F[0] = rep.F[0]
			return lost
		}
	}
	if votes*2 <= total {
		r.mu.Lock()
		r.role = RoleFollower
		r.mu.Unlock()
		lost := proto.NewReply(proto.ReplyRetry)
		lost.F[0] = term
		return lost
	}
	r.mu.Lock()
	won := r.term == term // a concurrent higher term would have deposed us
	if won {
		r.role = RoleLeader
		r.leader = r.proc.PID()
		r.match = make(map[kernel.PID]uint32)
	}
	r.mu.Unlock()
	if !won {
		lost := proto.NewReply(proto.ReplyRetry)
		lost.F[0] = term
		return lost
	}
	// Announce: an empty append brings live followers to this term, hands
	// them the leader pid, and syncs their commit state.
	for _, pid := range r.livePeers() {
		_ = r.replicateTo(p, pid, 0)
	}
	rep := proto.NewReply(proto.ReplyOK)
	rep.F[0], rep.F[1] = term, uint32(r.proc.PID())
	return rep
}

// replicateTo brings one follower's log up to the leader's last index:
// optimistic append from the recorded match point, walking back on
// conflict replies, installing a snapshot when the follower needs
// entries below the leader's snapshot base. commitOverride, when
// non-zero, is the commit index stamped on the append (the propose path
// commits the new entry on delivery; see PROTOCOL.md §11.3).
func (r *Replica) replicateTo(p *kernel.Process, pid kernel.PID, commitOverride uint32) error {
	for tries := 0; tries < 64; tries++ {
		r.mu.Lock()
		if r.role != RoleLeader {
			r.mu.Unlock()
			return proto.ErrNotLeader
		}
		last := r.lastIndexLocked()
		prev := last
		if m, ok := r.match[pid]; ok && m < prev {
			prev = m
		}
		if prev < r.base {
			r.mu.Unlock()
			return r.installSnapshot(p, pid)
		}
		prevTerm, _ := r.termAtLocked(prev)
		ents := make([]entry, last-prev)
		copy(ents, r.log[prev-r.base:])
		term, commit := r.term, r.commit
		if commitOverride > commit {
			commit = commitOverride
		}
		r.mu.Unlock()

		req := &proto.Message{Op: proto.OpReplicaAppend, Segment: encodeEntries(ents)}
		req.F[0], req.F[1], req.F[2] = term, prev, prevTerm
		req.F[3], req.F[4], req.F[5] = commit, uint32(r.proc.PID()), uint32(len(ents))
		rep, err := p.Send(req, pid)
		if err != nil {
			return err
		}
		switch rep.Op {
		case proto.ReplyOK:
			r.mu.Lock()
			r.match[pid] = rep.F[1]
			r.mu.Unlock()
			return nil
		case proto.ReplyRetry:
			hint := rep.F[1]
			if hint >= prev && prev > 0 {
				hint = prev - 1
			}
			r.mu.Lock()
			r.match[pid] = hint
			r.mu.Unlock()
		default: // stale term
			if rep.F[0] > term {
				r.stepDown(rep.F[0])
			}
			return proto.ErrNotLeader
		}
	}
	return fmt.Errorf("replica: could not converge follower %v", pid)
}

// Propose replicates cmd as the next log entry and applies it once a
// majority of the full membership holds it. The reply is the state
// machine's apply result. Replication is synchronous and in member
// order, so the round is deterministic. Callers must be running on the
// member's own process (the serving goroutine).
func (r *Replica) Propose(p *kernel.Process, cmd []byte) (*proto.Message, error) {
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		return nil, proto.ErrNotLeader
	}
	r.log = append(r.log, entry{Term: r.term, Cmd: cmd})
	idx := r.lastIndexLocked()
	total := r.total
	r.mu.Unlock()

	acks := 1
	for _, pid := range r.livePeers() {
		if err := r.replicateTo(p, pid, idx); err == nil {
			acks++
		} else if err == proto.ErrNotLeader {
			return nil, proto.ErrNotLeader
		}
	}
	if acks*2 <= total {
		// No quorum: the entry stays in the log uncommitted; a later
		// round (or a new leader) settles it. The client sees a
		// retryable timeout.
		return nil, fmt.Errorf("%w: replication quorum lost (%d/%d)", proto.ErrTimeout, acks, total)
	}
	r.mu.Lock()
	if idx > r.commit {
		r.commit = idx
	}
	toApply := r.takeUnappliedLocked()
	r.mu.Unlock()
	var reply *proto.Message
	for _, e := range toApply {
		reply = r.svc.Apply(p, e.Cmd)
	}
	if reply == nil {
		reply = proto.NewReply(proto.ReplyOK)
	}
	return reply, nil
}

// handlePropose serves an out-of-band proposal (boot seeding, monitor
// traffic). Non-leaders redirect with a leader hint.
func (r *Replica) handlePropose(p *kernel.Process, msg *proto.Message) *proto.Message {
	reply, err := r.Propose(p, msg.Segment)
	if err == proto.ErrNotLeader {
		return r.NotLeaderReply()
	}
	if err != nil {
		return proto.NewReply(proto.ErrorReply(err))
	}
	return reply
}

// handleSync serves the monitor's instruction to bring a rejoined member
// up to date: install a snapshot of the applied state, then append any
// tail entries.
func (r *Replica) handleSync(p *kernel.Process, msg *proto.Message) *proto.Message {
	r.mu.Lock()
	leading := r.role == RoleLeader
	r.mu.Unlock()
	if !leading {
		return r.NotLeaderReply()
	}
	pid := kernel.PID(msg.F[1])
	if err := r.installSnapshot(p, pid); err != nil {
		return proto.NewReply(proto.ErrorReply(err))
	}
	if err := r.replicateTo(p, pid, 0); err != nil {
		return proto.NewReply(proto.ErrorReply(err))
	}
	return proto.NewReply(proto.ReplyOK)
}

// installSnapshot ships the applied state machine to pid in chunks.
func (r *Replica) installSnapshot(p *kernel.Process, pid kernel.PID) error {
	r.mu.Lock()
	term := r.term
	included := r.applied
	includedTerm, _ := r.termAtLocked(included)
	r.mu.Unlock()
	data := r.svc.Snapshot()
	off := 0
	for {
		n := len(data) - off
		if n > snapChunk {
			n = snapChunk
		}
		req := &proto.Message{Op: proto.OpReplicaSnapshot, Segment: data[off : off+n]}
		req.F[0], req.F[1], req.F[2] = term, included, includedTerm
		req.F[3], req.F[4], req.F[5] = uint32(len(data)), uint32(r.proc.PID()), uint32(off)
		rep, err := p.Send(req, pid)
		if err != nil {
			return err
		}
		if rep.Op != proto.ReplyOK {
			if rep.F[0] > term {
				r.stepDown(rep.F[0])
			}
			return proto.ReplyError(rep.Op)
		}
		off += n
		if off >= len(data) {
			break
		}
	}
	r.mu.Lock()
	if r.match[pid] < included {
		r.match[pid] = included
	}
	r.mu.Unlock()
	return nil
}

// handleSnapshot is the follower side of snapshot install: accumulate
// chunks and, on the last one, restore the state machine and reset the
// log to the snapshot point.
func (r *Replica) handleSnapshot(p *kernel.Process, msg *proto.Message) *proto.Message {
	term, included, includedTerm := msg.F[0], msg.F[1], msg.F[2]
	total, leader, off := msg.F[3], kernel.PID(msg.F[4]), msg.F[5]
	r.mu.Lock()
	if term < r.term {
		rep := proto.NewReply(proto.ReplyNoPermission)
		rep.F[0] = r.term
		r.mu.Unlock()
		return rep
	}
	if term > r.term {
		r.term = term
		r.votedFor = kernel.NilPID
	}
	r.role = RoleFollower
	r.leader = leader
	if off == 0 {
		r.snapBuf = r.snapBuf[:0]
	}
	r.snapBuf = append(r.snapBuf, msg.Segment...)
	done := uint32(len(r.snapBuf)) >= total
	var data []byte
	if done {
		data = r.snapBuf
		r.snapBuf = nil
	}
	r.mu.Unlock()

	if done {
		if err := r.svc.Restore(p, data); err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		r.mu.Lock()
		r.base, r.baseTerm = included, includedTerm
		r.log = nil
		r.commit, r.applied = included, included
		r.mu.Unlock()
	}
	rep := proto.NewReply(proto.ReplyOK)
	rep.F[0] = term
	return rep
}

// handleStatus reports the member's consensus state for diagnostics.
func (r *Replica) handleStatus() *proto.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := proto.NewReply(proto.ReplyOK)
	rep.F[0], rep.F[1] = r.term, uint32(r.role)
	rep.F[2], rep.F[3] = r.commit, r.lastIndexLocked()
	rep.F[4] = uint32(r.leader)
	return rep
}

// Status is the decoded OpReplicaStatus reply.
type Status struct {
	Term    uint32
	Role    Role
	Commit  uint32
	LastIdx uint32
	Leader  kernel.PID
}

// QueryStatus asks member pid for its consensus state from process p.
func QueryStatus(p *kernel.Process, pid kernel.PID) (Status, error) {
	rep, err := p.Send(&proto.Message{Op: proto.OpReplicaStatus}, pid)
	if err != nil {
		return Status{}, err
	}
	if rep.Op != proto.ReplyOK {
		return Status{}, proto.ReplyError(rep.Op)
	}
	return Status{
		Term:    rep.F[0],
		Role:    Role(rep.F[1]),
		Commit:  rep.F[2],
		LastIdx: rep.F[3],
		Leader:  kernel.PID(rep.F[4]),
	}, nil
}
