package replica

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// Config parameterizes a replication group.
type Config struct {
	// Name labels the group in logs and process names.
	Name string
	// Seed drives the randomized-but-seeded election timeouts.
	Seed int64
	// TimeoutMin/TimeoutStep/TimeoutSteps quantize the election timeout:
	// a member's timeout is TimeoutMin + (draw mod TimeoutSteps) *
	// TimeoutStep. Quantization makes ties possible, which the
	// lowest-member-index rule then breaks deterministically. Zero values
	// default to 5ms / 5ms / 4.
	TimeoutMin   time.Duration
	TimeoutStep  time.Duration
	TimeoutSteps int
}

func (c Config) withDefaults() Config {
	if c.TimeoutMin <= 0 {
		c.TimeoutMin = 5 * time.Millisecond
	}
	if c.TimeoutStep <= 0 {
		c.TimeoutStep = 5 * time.Millisecond
	}
	if c.TimeoutSteps <= 0 {
		c.TimeoutSteps = 4
	}
	return c
}

// member is one slot of the membership. The slot's index is the member's
// priority (lower serves first); the Replica occupying it changes across
// crash/rejoin cycles.
type member struct {
	host string
	rep  *Replica
}

// Group owns a replication group's membership and election pacing. It
// runs no processes of its own except the monitor — a process on a
// stable host from which elections are triggered and boot/out-of-band
// proposals are sent. Like the chaos engine, the group has no clock: the
// workload pumps it with Pump(now), and crash/restart instants arrive
// through the chaos engine's hooks, so every election fires at a
// deterministic virtual time (PROTOCOL.md §11.4).
type Group struct {
	k   *kernel.Kernel
	cfg Config
	mon *kernel.Process
	gid kernel.PID

	mu         sync.Mutex
	members    []*member
	leaderIdx  int
	term       uint32
	leaderDown bool
	downAt     vtime.Time
	attempt    uint32
	events     []string
	failovers  []time.Duration
}

// NewGroup creates a group whose monitor lives on monHost — a host the
// fault schedule never takes down.
func NewGroup(monHost *kernel.Host, cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	mon, err := monHost.NewProcess("replica-mon[" + cfg.Name + "]")
	if err != nil {
		return nil, err
	}
	k := monHost.Kernel()
	return &Group{
		k:         k,
		cfg:       cfg,
		mon:       mon,
		gid:       k.CreateGroup(),
		leaderIdx: -1,
	}, nil
}

// GID returns the kernel process group holding the membership.
func (g *Group) GID() kernel.PID { return g.gid }

// Name returns the group's label.
func (g *Group) Name() string { return g.cfg.Name }

// Add appends a member slot during boot. Member order is priority
// order: slot 0 is the bootstrap leader and the slot leadership
// transfers back to on rejoin.
func (g *Group) Add(host string, rep *Replica) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append(g.members, &member{host: host, rep: rep})
	return g.k.JoinGroup(g.gid, rep.PID())
}

// Bootstrap fixes the quorum denominator, elects slot 0 leader and marks
// the initial role epochs at virtual time at. Call once after every Add.
func (g *Group) Bootstrap(at vtime.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		m.rep.Bind(g.gid, len(g.members))
	}
	g.mon.Clock().Observe(at)
	return g.electLocked(0, at, false)
}

// Leader returns the current leader's host name and member pid, or
// ("", NilPID) during a leaderless window.
func (g *Group) Leader() (string, kernel.PID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.leaderIdx < 0 {
		return "", kernel.NilPID
	}
	m := g.members[g.leaderIdx]
	return m.host, m.rep.PID()
}

// MemberPID returns the pid of the replica currently occupying slot i.
func (g *Group) MemberPID(i int) kernel.PID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[i].rep.PID()
}

// MemberReplica returns the replica currently occupying the slot of
// host, or nil.
func (g *Group) MemberReplica(host string) *Replica {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m.host == host {
			return m.rep
		}
	}
	return nil
}

// Hosts returns the member host names in slot order.
func (g *Group) Hosts() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	hosts := make([]string, len(g.members))
	for i, m := range g.members {
		hosts[i] = m.host
	}
	return hosts
}

// Events returns the group's event log: one line per election, crash
// notice, rejoin and transfer, with exact virtual timestamps. Two runs
// of the same schedule produce byte-identical logs.
func (g *Group) Events() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.events))
	copy(out, g.events)
	return out
}

// Failovers returns the crash-triggered failover latencies (leader down
// to successor elected), in occurrence order.
func (g *Group) Failovers() []time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]time.Duration, len(g.failovers))
	copy(out, g.failovers)
	return out
}

// NoteDown records that host crashed at the exact virtual time at (wired
// to the chaos engine's CrashHook). A crashed leader arms the election
// timer.
func (g *Group) NoteDown(host string, at vtime.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := g.slotLocked(host)
	if idx < 0 {
		return
	}
	g.markRole(host, metrics.RoleValueDown, at)
	if idx == g.leaderIdx {
		g.leaderIdx = -1
		g.leaderDown = true
		g.downAt = at
		g.attempt = 0
		g.logEvent(at, "leader-down", "host="+host)
	} else {
		g.logEvent(at, "member-down", "host="+host)
	}
}

// Pump drives the group's election timer from a workload clock: if the
// leader is down and the earliest seeded timeout has expired, the due
// member stands for election. Callers pump the chaos engine first, then
// every group, then the samplers — the fixed observer order that keeps
// runs deterministic (PROTOCOL.md §11.4).
func (g *Group) Pump(now vtime.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mon.Clock().Observe(now)
	if g.leaderIdx >= 0 {
		m := g.members[g.leaderIdx]
		if g.k.ProcessAlive(m.rep.PID()) {
			return
		}
		// Leader died without a CrashHook notice (direct host crash in a
		// test): detection time is this pump.
		g.leaderIdx = -1
		g.leaderDown = true
		g.downAt = now
		g.attempt = 0
		g.logEvent(now, "leader-down", "host="+m.host+" (detected)")
	}
	if !g.leaderDown {
		return
	}
	idx, due, ok := g.electionPlanLocked()
	if !ok || now < due {
		return
	}
	downAt := g.downAt
	if err := g.electLocked(idx, due, false); err == nil && g.leaderIdx == idx {
		g.failovers = append(g.failovers, g.mon.Now()-downAt)
	}
}

// electionPlanLocked picks the live member whose seeded timeout expires
// first; equal timeouts break toward the lowest slot index.
func (g *Group) electionPlanLocked() (idx int, due vtime.Time, ok bool) {
	idx = -1
	for i, m := range g.members {
		if m.rep == nil || !g.k.ProcessAlive(m.rep.PID()) {
			continue
		}
		d := g.downAt + electionTimeout(g.cfg, g.term+1+g.attempt, i)
		if idx == -1 || d < due {
			idx, due = i, d
		}
	}
	return idx, due, idx >= 0
}

// electionTimeout is the deterministic seeded draw: the same seed, term
// and slot always yield the same timeout, and the quantization makes
// cross-slot ties possible (broken by slot order). The FNV sum passes
// through a 64-bit avalanche finalizer before the modulus: FNV's low
// bits are nearly linear in the last input bytes, which would make
// adjacent slots anti-correlated mod a power-of-two step count and
// ties impossible.
func electionTimeout(cfg Config, term uint32, slot int) time.Duration {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(cfg.Seed >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(term >> (8 * i))
		buf[12+i] = byte(uint32(slot) >> (8 * i))
	}
	h.Write(buf[:])
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return cfg.TimeoutMin + time.Duration(x%uint64(cfg.TimeoutSteps))*cfg.TimeoutStep
}

// electLocked sends OpReplicaElect to slot idx at virtual time at and
// records the outcome. transfer marks a planned leadership transfer
// (rejoin rebalancing) rather than a crash failover.
func (g *Group) electLocked(idx int, at vtime.Time, transfer bool) error {
	m := g.members[idx]
	g.mon.Clock().Observe(at)
	rep, err := g.mon.Send(&proto.Message{Op: proto.OpReplicaElect}, m.rep.PID())
	if err != nil {
		g.attempt++
		g.downAt = g.mon.Now()
		g.logEvent(g.mon.Now(), "elect-failed", fmt.Sprintf("host=%s err=%v", m.host, err))
		return err
	}
	if rep.Op != proto.ReplyOK {
		g.attempt++
		g.downAt = g.mon.Now()
		g.term = rep.F[0]
		g.logEvent(g.mon.Now(), "elect-lost", fmt.Sprintf("host=%s term=%d", m.host, rep.F[0]))
		return nil
	}
	g.term = rep.F[0]
	g.leaderIdx = idx
	g.leaderDown = false
	g.attempt = 0
	now := g.mon.Now()
	kind := "leader"
	if transfer {
		kind = "transfer"
	}
	g.logEvent(now, kind, fmt.Sprintf("host=%s term=%d", m.host, g.term))
	g.markRole(m.host, metrics.RoleValueLeader, now)
	for i, o := range g.members {
		if i == idx || o.rep == nil || !g.k.ProcessAlive(o.rep.PID()) {
			continue
		}
		g.markRole(o.host, metrics.RoleValueFollower, now)
	}
	return nil
}

// Rejoin installs a fresh replica in host's slot at virtual time at
// (wired to the chaos engine's RestartedHook): swap the membership,
// snapshot-sync from the leader, and — when the rejoined slot outranks
// the current leader — transfer leadership back, so the steady-state
// leader is always the lowest live slot, matching the kernel's
// lowest-host GetPid selection (§4.2).
func (g *Group) Rejoin(host string, rep *Replica, at vtime.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := g.slotLocked(host)
	if idx < 0 {
		return fmt.Errorf("replica: host %s is not a member of group %s", host, g.cfg.Name)
	}
	m := g.members[idx]
	if m.rep != nil {
		_ = g.k.LeaveGroup(g.gid, m.rep.PID())
	}
	m.rep = rep
	rep.Bind(g.gid, len(g.members))
	if err := g.k.JoinGroup(g.gid, rep.PID()); err != nil {
		return err
	}
	g.mon.Clock().Observe(at)
	g.markRole(host, metrics.RoleValueFollower, at)
	g.logEvent(at, "rejoin", "host="+host)
	if g.leaderIdx < 0 {
		return nil
	}
	lead := g.members[g.leaderIdx]
	req := &proto.Message{Op: proto.OpReplicaSync}
	req.F[1] = uint32(rep.PID())
	srep, err := g.mon.Send(req, lead.rep.PID())
	if err != nil {
		g.logEvent(g.mon.Now(), "sync-failed", fmt.Sprintf("host=%s err=%v", host, err))
		return err
	}
	if srep.Op != proto.ReplyOK {
		g.logEvent(g.mon.Now(), "sync-failed", fmt.Sprintf("host=%s reply=%v", host, srep.Op))
		return proto.ReplyError(srep.Op)
	}
	g.logEvent(g.mon.Now(), "sync", "host="+host)
	if idx < g.leaderIdx {
		return g.electLocked(idx, g.mon.Now(), true)
	}
	return nil
}

// Propose submits a state-machine command from the monitor to the
// current leader — the boot-seeding and out-of-band mutation path.
func (g *Group) Propose(cmd []byte) (*proto.Message, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.leaderIdx < 0 {
		return nil, proto.ErrNotLeader
	}
	rep, err := g.mon.Send(&proto.Message{Op: proto.OpReplicaPropose, Segment: cmd}, g.members[g.leaderIdx].rep.PID())
	if err != nil {
		return nil, err
	}
	if rep.Op == proto.ReplyNotLeader {
		return nil, proto.ErrNotLeader
	}
	if err := proto.ReplyError(rep.Op); err != nil {
		return nil, err
	}
	return rep, nil
}

// Statuses queries every live member's consensus state in slot order.
func (g *Group) Statuses() []Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Status, len(g.members))
	for i, m := range g.members {
		if m.rep == nil || !g.k.ProcessAlive(m.rep.PID()) {
			continue
		}
		st, err := QueryStatus(g.mon, m.rep.PID())
		if err == nil {
			out[i] = st
		}
	}
	return out
}

func (g *Group) slotLocked(host string) int {
	for i, m := range g.members {
		if m.host == host {
			return i
		}
	}
	return -1
}

func (g *Group) markRole(host string, value int64, at vtime.Time) {
	reg := g.k.Metrics()
	if reg == nil {
		return
	}
	reg.Timeline(metrics.TimelineServerRole, metrics.Labels{Host: host}).Mark(at, value)
}

func (g *Group) logEvent(at vtime.Time, kind, detail string) {
	g.events = append(g.events, fmt.Sprintf("t=%08dus %-12s %s", at.Microseconds(), kind, detail))
}
