package replica

import (
	"encoding/binary"
	"fmt"
)

// Log entry wire format (PROTOCOL.md §11.2): each entry is
//
//	uvarint term | uvarint len(cmd) | cmd bytes
//
// concatenated in log order. The encoding is deterministic, so two
// replicas that apply the same append stream hold byte-identical logs.

type entry struct {
	Term uint32
	Cmd  []byte
}

func encodeEntries(ents []entry) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range ents {
		n := binary.PutUvarint(tmp[:], uint64(e.Term))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(len(e.Cmd)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, e.Cmd...)
	}
	return buf
}

func decodeEntries(buf []byte, count int) ([]entry, error) {
	ents := make([]entry, 0, count)
	for i := 0; i < count; i++ {
		term, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("replica: truncated entry %d term", i)
		}
		buf = buf[n:]
		ln, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < ln {
			return nil, fmt.Errorf("replica: truncated entry %d command", i)
		}
		buf = buf[n:]
		cmd := make([]byte, ln)
		copy(cmd, buf[:ln])
		buf = buf[ln:]
		ents = append(ents, entry{Term: uint32(term), Cmd: cmd})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("replica: %d trailing bytes after %d entries", len(buf), count)
	}
	return ents, nil
}
