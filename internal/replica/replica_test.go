package replica

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// nullSvc is a minimal state machine: it records applied commands and
// snapshots them verbatim.
type nullSvc struct {
	mu      sync.Mutex
	applied []string
}

func (s *nullSvc) Serve(p *kernel.Process, r *Replica, msg *proto.Message, from kernel.PID) {
	_ = p.Reply(proto.NewReply(proto.ReplyOK), from)
}

func (s *nullSvc) Apply(p *kernel.Process, cmd []byte) *proto.Message {
	s.mu.Lock()
	s.applied = append(s.applied, string(cmd))
	s.mu.Unlock()
	return proto.NewReply(proto.ReplyOK)
}

func (s *nullSvc) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return encodeEntries(entriesOf(s.applied))
}

func (s *nullSvc) Restore(p *kernel.Process, data []byte) error {
	// Length is unknown to the codec; recover it by decoding greedily.
	var cmds []string
	for n := 0; ; n++ {
		ents, err := decodeEntries(data, n)
		if err == nil {
			for _, e := range ents {
				cmds = append(cmds, string(e.Cmd))
			}
			break
		}
	}
	s.mu.Lock()
	s.applied = cmds
	s.mu.Unlock()
	return nil
}

func entriesOf(cmds []string) []entry {
	ents := make([]entry, len(cmds))
	for i, c := range cmds {
		ents[i] = entry{Term: 1, Cmd: []byte(c)}
	}
	return ents
}

func (s *nullSvc) appliedCopy() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.applied...)
}

// testGroup boots an n-member group with nullSvc state machines.
// Member i lives on host "m<i>"; the monitor lives on "mon".
func testGroup(t *testing.T, seed int64, n int) (*kernel.Kernel, *Group, []*kernel.Host, []*nullSvc) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), seed))
	mon := k.NewHost("mon")
	g, err := NewGroup(mon, Config{Name: "t", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]*kernel.Host, n)
	svcs := make([]*nullSvc, n)
	for i := 0; i < n; i++ {
		hosts[i] = k.NewHost(fmt.Sprintf("m%d", i))
		svc := &nullSvc{}
		rep, err := Start(hosts[i], fmt.Sprintf("rep%d", i), func(p *kernel.Process) Service { return svc })
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(hosts[i].Name(), rep); err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
	}
	if err := g.Bootstrap(0); err != nil {
		t.Fatal(err)
	}
	return k, g, hosts, svcs
}

// TestGroupProposeReplicates checks commit-on-delivery replication:
// a proposed command is applied on every member before the reply.
func TestGroupProposeReplicates(t *testing.T) {
	_, g, _, svcs := testGroup(t, 1, 3)
	if host, _ := g.Leader(); host != "m0" {
		t.Fatalf("bootstrap leader = %s, want m0 (slot 0)", host)
	}
	for i, cmd := range []string{"alpha", "beta"} {
		rep, err := g.Propose([]byte(cmd))
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if rep.Op != proto.ReplyOK {
			t.Fatalf("propose %d: reply %v", i, rep.Op)
		}
	}
	for i, svc := range svcs {
		got := svc.appliedCopy()
		if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
			t.Errorf("member %d applied %v, want [alpha beta]", i, got)
		}
	}
	for i, st := range g.Statuses() {
		if st.Commit != 2 || st.LastIdx != 2 {
			t.Errorf("member %d status %+v, want commit=2 last=2", i, st)
		}
	}
}

// TestElectionTieBreak pins the deterministic tie-break: when two live
// members draw the same quantized election timeout, the lowest slot
// stands first and wins. The seed is searched so the tie actually
// occurs at the term the failover election runs at.
func TestElectionTieBreak(t *testing.T) {
	// After Bootstrap the group is at term 1; the first failover election
	// plans with term+1 = 2.
	seed := int64(-1)
	for s := int64(0); s < 10000; s++ {
		cfg := Config{Seed: s}.withDefaults()
		if electionTimeout(cfg, 2, 1) == electionTimeout(cfg, 2, 2) {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed with a slot-1/slot-2 timeout tie in 10000 draws")
	}
	cfg := Config{Seed: seed}.withDefaults()
	tied := electionTimeout(cfg, 2, 1)

	_, g, hosts, _ := testGroup(t, seed, 3)
	downAt := vtime.Time(10 * time.Millisecond)
	hosts[0].Crash()
	g.NoteDown("m0", downAt)
	if host, _ := g.Leader(); host != "" {
		t.Fatalf("leader %s survived NoteDown", host)
	}
	// One pump just before the tied deadline must not elect; one at the
	// deadline elects the lowest tied slot.
	g.Pump(downAt + tied - time.Millisecond)
	if host, _ := g.Leader(); host != "" {
		t.Fatalf("election fired before the seeded timeout (leader %s)", host)
	}
	g.Pump(downAt + tied)
	host, _ := g.Leader()
	if host != "m1" {
		t.Fatalf("tie broke to %s, want m1 (lowest tied slot)", host)
	}
	// The recorded failover latency is the timeout plus the election
	// round's own virtual message time.
	fo := g.Failovers()
	if len(fo) != 1 || fo[0] < tied {
		t.Fatalf("failovers = %v, want one latency >= %v", fo, tied)
	}
}

// TestElectionTimeoutDeterministic: same seed, term and slot always
// draw the same timeout, and the draw stays within the quantized range.
func TestElectionTimeoutDeterministic(t *testing.T) {
	cfg := Config{Seed: 42}.withDefaults()
	for term := uint32(1); term < 8; term++ {
		for slot := 0; slot < 5; slot++ {
			d1 := electionTimeout(cfg, term, slot)
			d2 := electionTimeout(cfg, term, slot)
			if d1 != d2 {
				t.Fatalf("draw(%d,%d) unstable: %v vs %v", term, slot, d1, d2)
			}
			min := cfg.TimeoutMin
			max := cfg.TimeoutMin + time.Duration(cfg.TimeoutSteps-1)*cfg.TimeoutStep
			if d1 < min || d1 > max {
				t.Fatalf("draw(%d,%d) = %v outside [%v, %v]", term, slot, d1, min, max)
			}
		}
	}
}

// appendMsg builds an OpReplicaAppend the way replicateTo does.
func appendMsg(term, prevIdx, prevTerm, commit uint32, leader kernel.PID, ents []entry) *proto.Message {
	req := &proto.Message{Op: proto.OpReplicaAppend, Segment: encodeEntries(ents)}
	req.F[0], req.F[1], req.F[2] = term, prevIdx, prevTerm
	req.F[3], req.F[4], req.F[5] = commit, uint32(leader), uint32(len(ents))
	return req
}

// TestLogTruncationOnConflict drives a follower directly with a
// divergent append stream: a new-term append overlapping the old tail
// must truncate the conflicting suffix, adopt the leader's entries, and
// never apply the discarded ones.
func TestLogTruncationOnConflict(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("m0")
	svc := &nullSvc{}
	rep, err := Start(host, "rep0", func(p *kernel.Process) Service { return svc })
	if err != nil {
		t.Fatal(err)
	}
	lh := k.NewHost("fake-leader")
	lp, err := lh.NewProcess("leader")
	if err != nil {
		t.Fatal(err)
	}

	// Old leader at term 1: three entries, only the first committed.
	r1, err := lp.Send(appendMsg(1, 0, 0, 1, lp.PID(),
		[]entry{{1, []byte("a")}, {1, []byte("b")}, {1, []byte("c")}}), rep.PID())
	if err != nil || r1.Op != proto.ReplyOK || r1.F[1] != 3 {
		t.Fatalf("first append: %v %+v", err, r1)
	}

	// New leader at term 2 diverges after index 1 and commits through 3.
	r2, err := lp.Send(appendMsg(2, 1, 1, 3, lp.PID(),
		[]entry{{2, []byte("x")}, {2, []byte("y")}}), rep.PID())
	if err != nil || r2.Op != proto.ReplyOK || r2.F[1] != 3 {
		t.Fatalf("conflicting append: %v %+v", err, r2)
	}

	got := svc.appliedCopy()
	want := []string{"a", "x", "y"}
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v (divergent entries b/c leaked)", got, want)
		}
	}
	rep.mu.Lock()
	terms := make([]uint32, len(rep.log))
	for i, e := range rep.log {
		terms[i] = e.Term
	}
	rep.mu.Unlock()
	if len(terms) != 3 || terms[0] != 1 || terms[1] != 2 || terms[2] != 2 {
		t.Fatalf("log terms = %v, want [1 2 2]", terms)
	}

	// A stale-term append after the truncation must be refused.
	r3, err := lp.Send(appendMsg(1, 3, 2, 3, lp.PID(), nil), rep.PID())
	if err != nil || r3.Op != proto.ReplyNoPermission {
		t.Fatalf("stale append: err=%v op=%v, want NoPermission", err, r3.Op)
	}
}

// TestCrashRejoinSnapshotSync drives the full recovery cycle in one
// package-level scenario: leader host crash (detected by Pump, no
// explicit NoteDown), failover election, continued commits on the new
// leader, then a rejoin of a fresh empty member — snapshot install plus
// tail append must reconstruct the applied state, and the transfer
// election must hand leadership back to slot 0.
func TestCrashRejoinSnapshotSync(t *testing.T) {
	k, g, hosts, svcs := testGroup(t, 3, 3)
	if g.GID() == kernel.NilPID || g.Name() != "t" {
		t.Fatalf("group identity: gid=%v name=%q", g.GID(), g.Name())
	}
	if hs := g.Hosts(); len(hs) != 3 || hs[0] != "m0" {
		t.Fatalf("Hosts() = %v", hs)
	}
	for _, cmd := range []string{"a", "b", "c"} {
		if _, err := g.Propose([]byte(cmd)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash the leader host without a NoteDown: the next Pump must
	// detect the dead leader itself, then elect once a timeout expires.
	hosts[0].Crash()
	<-g.MemberReplica("m0").Exited()
	start := vtime.Time(10 * time.Millisecond)
	for d := start; d < start+50*time.Millisecond; d += time.Millisecond {
		g.Pump(d)
		if host, _ := g.Leader(); host != "" {
			break
		}
	}
	newLeader, _ := g.Leader()
	if newLeader == "" || newLeader == "m0" {
		t.Fatalf("failover leader = %q; events:\n%v", newLeader, g.Events())
	}

	// The new leader keeps committing while m0 is gone.
	if _, err := g.Propose([]byte("d")); err != nil {
		t.Fatal(err)
	}

	// A follower redirects out-of-band proposals with a leader hint.
	lead := g.MemberReplica(newLeader)
	var follower *Replica
	for _, h := range []string{"m1", "m2"} {
		if h != newLeader {
			follower = g.MemberReplica(h)
		}
	}
	if follower.Leading() || !lead.Leading() {
		t.Fatalf("Leading() flags wrong (leader %s)", newLeader)
	}
	probe, err := k.HostByName("mon").NewProcess("probe")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := probe.Send(&proto.Message{Op: proto.OpReplicaPropose, Segment: []byte("x")}, follower.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op != proto.ReplyNotLeader || kernel.PID(proto.LeaderHint(rep)) != lead.PID() {
		t.Fatalf("follower propose reply %v hint %d, want NotLeader hint %d",
			rep.Op, proto.LeaderHint(rep), lead.PID())
	}

	// Rejoin a fresh, empty member on the restarted host: snapshot
	// install + tail append rebuild its state machine, and leadership
	// transfers back to slot 0.
	hosts[0].Restart()
	svc := &nullSvc{}
	reborn, err := Start(hosts[0], "rep0b", func(p *kernel.Process) Service { return svc })
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Rejoin("m0", reborn, vtime.Time(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if host, pid := g.Leader(); host != "m0" || pid != reborn.PID() {
		t.Fatalf("post-rejoin leader = %s/%v, want m0/%v", host, pid, reborn.PID())
	}
	if g.MemberPID(0) != reborn.PID() || g.MemberReplica("m0") != reborn {
		t.Fatalf("slot 0 not updated to the reborn replica")
	}
	want := []string{"a", "b", "c", "d"}
	if got := svc.appliedCopy(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reborn member applied %v, want %v", got, want)
	}
	for i, old := range svcs[1:] {
		if got := old.appliedCopy(); !reflect.DeepEqual(got, want) {
			t.Fatalf("member %d applied %v, want %v", i+1, got, want)
		}
	}

	// The reborn leader commits new proposals to everyone.
	if _, err := g.Propose([]byte("e")); err != nil {
		t.Fatal(err)
	}
	for i, st := range g.Statuses() {
		if st.Commit != 5 {
			t.Fatalf("member %d commit = %d, want 5", i, st.Commit)
		}
		if err := g.MemberReplica(g.Hosts()[i]).Err(); err != nil {
			t.Fatalf("member %d Err() = %v", i, err)
		}
	}

	// The event log narrates the cycle in order.
	evs := strings.Join(g.Events(), "\n")
	for _, want := range []string{"leader-down", "rejoin", "sync", "transfer"} {
		if !strings.Contains(evs, want) {
			t.Fatalf("event log missing %q:\n%s", want, evs)
		}
	}
}
