package disk

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vtime"
)

func TestFetchIdleDisk(t *testing.T) {
	d := New(15 * time.Millisecond)
	if got := d.Fetch(100 * time.Millisecond); got != 115*time.Millisecond {
		t.Fatalf("Fetch = %v", got)
	}
}

func TestFetchSerializesOnArm(t *testing.T) {
	d := New(15 * time.Millisecond)
	first := d.Fetch(0)
	second := d.Fetch(0) // issued while the arm is busy
	if first != 15*time.Millisecond || second != 30*time.Millisecond {
		t.Fatalf("fetches = %v, %v", first, second)
	}
	// A request issued after the arm went idle starts immediately.
	third := d.Fetch(100 * time.Millisecond)
	if third != 115*time.Millisecond {
		t.Fatalf("third = %v", third)
	}
}

func TestStats(t *testing.T) {
	d := New(15 * time.Millisecond)
	d.Fetch(0)
	d.Fetch(0)
	n, busy := d.Stats()
	if n != 2 || busy != 30*time.Millisecond {
		t.Fatalf("stats = %d, %v", n, busy)
	}
	if d.PageTime() != 15*time.Millisecond {
		t.Fatalf("PageTime = %v", d.PageTime())
	}
}

func TestFetchMonotone(t *testing.T) {
	// Property: completion times never decrease, and each fetch takes at
	// least one page time after its issue time.
	f := func(issues []uint32) bool {
		d := New(15 * time.Millisecond)
		var prev vtime.Time
		for _, raw := range issues {
			at := vtime.Time(raw % 1000000)
			done := d.Fetch(at)
			if done < prev || done < at+15*time.Millisecond {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputBound(t *testing.T) {
	// Back-to-back fetches deliver exactly one page per page time.
	d := New(15 * time.Millisecond)
	var last vtime.Time
	for i := 0; i < 100; i++ {
		last = d.Fetch(0)
	}
	if last != 100*15*time.Millisecond {
		t.Fatalf("100 pages took %v", last)
	}
}
