// Package disk models the file server's disk in virtual time: a device
// that delivers one 512-byte page per fixed service time ("a disk
// delivering a 512 byte page every 15 milliseconds", §3.1), serialized on
// a single arm.
//
// The disk stores no data — file contents live in the in-memory volume —
// it only accounts for when a requested page becomes available.
package disk

import (
	"sync"
	"time"

	"repro/internal/vtime"
)

// Disk is one simulated disk. The zero value is not usable; construct
// with New.
type Disk struct {
	pageTime time.Duration

	mu       sync.Mutex
	idleAt   vtime.Time // when the arm finishes its current transfer
	fetches  uint64
	busyTime time.Duration
}

// New returns a disk with the given per-page service time.
func New(pageTime time.Duration) *Disk {
	return &Disk{pageTime: pageTime}
}

// PageTime returns the per-page service time.
func (d *Disk) PageTime() time.Duration { return d.pageTime }

// Fetch models a page read issued at virtual time `at`; it returns the
// virtual time the page is available. Requests serialize on the arm.
func (d *Disk) Fetch(at vtime.Time) vtime.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := at
	if d.idleAt > start {
		start = d.idleAt
	}
	done := start + d.pageTime
	d.idleAt = done
	d.fetches++
	d.busyTime += d.pageTime
	return done
}

// Stats returns the number of page fetches and total busy time so far.
func (d *Disk) Stats() (fetches uint64, busy time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fetches, d.busyTime
}
