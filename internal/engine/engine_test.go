package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/vtime"
)

const la = time.Millisecond // a positive lookahead for tests

// TestSharedCommitsInKeyOrder drives two lanes of Shared ops from real
// goroutines and asserts the commit order is the global key order, not
// the (deliberately perturbed) goroutine arrival order.
func TestSharedCommitsInKeyOrder(t *testing.T) {
	s := NewSync(2, la, Fences{})
	var mu sync.Mutex
	var order []Key
	run := func(id int, keys []Key, delay time.Duration) {
		for _, k := range keys {
			time.Sleep(delay) // perturb arrival order
			s.Gate(id, k, Shared)
			mu.Lock()
			order = append(order, k)
			mu.Unlock()
		}
		s.Done(id)
	}
	lane0 := []Key{{T: 1, Seq: 0}, {T: 3, Seq: 0}, {T: 5, Seq: 0}}
	lane1 := []Key{{T: 2, Seq: 1}, {T: 4, Seq: 1}, {T: 6, Seq: 1}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); run(0, lane0, 0) }()
	go func() { defer wg.Done(); run(1, lane1, 200*time.Microsecond) }()
	wg.Wait()
	want := []Key{{1, 0}, {2, 1}, {3, 0}, {4, 1}, {5, 0}, {6, 1}}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("commit order[%d] = %+v, want %+v (full: %+v)", i, order[i], k, order)
		}
	}
}

// TestConfinedRunsAhead asserts a Confined lane is not blocked by a
// Shared peer stuck far in its past.
func TestConfinedRunsAhead(t *testing.T) {
	s := NewSync(2, la, Fences{})
	// Lane 1 parks on an early shared op and never clears while lane 0
	// has not promised past it; lane 0 must still stream confined ops.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s.Gate(0, Key{T: vtime.Time(i + 1), Seq: 0}, Confined)
		}
		s.Done(0)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("confined lane blocked behind an idle peer")
	}
	s.Done(1)
}

// TestZeroLookaheadDemotesConfined asserts the soundness guard: with no
// positive lookahead, Confined gates behave as Shared and therefore wait
// for peers.
func TestZeroLookaheadDemotesConfined(t *testing.T) {
	s := NewSync(2, 0, Fences{})
	release := make(chan struct{})
	ran := make(chan struct{})
	go func() {
		s.Gate(0, Key{T: 10, Seq: 0}, Confined) // demoted: must wait for lane 1
		close(ran)
	}()
	select {
	case <-ran:
		t.Fatal("confined op ran without peer clearance despite zero lookahead")
	case <-time.After(50 * time.Millisecond):
	}
	go func() {
		s.Gate(1, Key{T: 20, Seq: 1}, Shared)
		<-release
		s.Done(1)
	}()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("demoted op never cleared after peer promised past it")
	}
	close(release)
	s.Done(0)
}

// TestFenceFiresAtQuiescentCut asserts a fence fires exactly once, after
// every op keyed before it and before every op keyed at or after it,
// with no op in flight.
func TestFenceFiresAtQuiescentCut(t *testing.T) {
	var mu sync.Mutex
	var log []string
	var running int
	fired := false
	fences := Fences{
		Next: func(after vtime.Time) (vtime.Time, bool) {
			if after < 50 {
				return 50, true
			}
			return 0, false
		},
		Fire: func(at vtime.Time) {
			mu.Lock()
			defer mu.Unlock()
			if running != 0 {
				t.Errorf("fence fired with %d ops in flight", running)
			}
			log = append(log, "fence@50")
			fired = true
		},
	}
	s := NewSync(2, la, fences)
	op := func(id int, k Key, cls Class) {
		s.Gate(id, k, cls)
		mu.Lock()
		running++
		if k.T >= 50 && !fired {
			t.Errorf("op %+v ran before the fence at 50", k)
		}
		if k.T < 50 && fired {
			t.Errorf("op %+v ran after the fence at 50", k)
		}
		mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		mu.Lock()
		running--
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, tt := range []vtime.Time{10, 30, 60, 80} {
			op(0, Key{T: tt, Seq: 0}, Confined)
		}
		s.Done(0)
	}()
	go func() {
		defer wg.Done()
		for _, tt := range []vtime.Time{20, 40, 55, 90} {
			op(1, Key{T: tt, Seq: 1}, Shared)
		}
		s.Done(1)
	}()
	wg.Wait()
	if len(log) != 1 {
		t.Fatalf("fence fired %d times, want 1", len(log))
	}
	if s.FencesFired() != 1 {
		t.Fatalf("FencesFired = %d, want 1", s.FencesFired())
	}
}

// TestFenceBeyondHorizonDoesNotFire asserts fences past every lane's
// last op never fire (matching a sequential run whose clock stops short
// of the schedule tail).
func TestFenceBeyondHorizonDoesNotFire(t *testing.T) {
	fences := Fences{
		Next: func(after vtime.Time) (vtime.Time, bool) {
			if after < 1000 {
				return 1000, true
			}
			return 0, false
		},
		Fire: func(at vtime.Time) { t.Errorf("fence at %v fired beyond the horizon", at) },
	}
	s := NewSync(1, la, fences)
	s.Gate(0, Key{T: 5, Seq: 0}, Shared)
	s.Done(0)
	if s.FencesFired() != 0 {
		t.Fatalf("FencesFired = %d, want 0", s.FencesFired())
	}
}

// TestGatePanicsOnRegressingKey pins the monotone-promise invariant.
func TestGatePanicsOnRegressingKey(t *testing.T) {
	s := NewSync(1, la, Fences{})
	s.Gate(0, Key{T: 10, Seq: 0}, Confined)
	defer func() {
		if recover() == nil {
			t.Fatal("Gate accepted a regressing key")
		}
	}()
	s.Gate(0, Key{T: 5, Seq: 0}, Confined)
}
