// Package engine is the conservative parallel-discrete-event
// synchronization layer for the sharded workload drivers (PROTOCOL.md
// §12).
//
// The virtual-time substrate has no literal event queue: execution-order
// authority lives in the workload drivers' pick-minimum-clock loops, and
// each driver lane (one per shard) already knows the exact virtual start
// time of its own next operation. That makes the classic null-message
// protocol degenerate in our favor: a lane's *promise* is simply the key
// of the operation it is about to run, which — because the pick-min loop
// makes in-lane keys non-decreasing — is an exact lower bound on all of
// the lane's future activity, not a lookahead-padded estimate.
//
// Operations are split into two classes:
//
//   - Shared operations touch execution-order-sensitive substrate state:
//     the netsim shared-wire ledger, the loss RNG, or a server process
//     another lane also talks to. Sequential runs mutate that state in
//     operation-start order, so Shared operations commit in global key
//     order: a lane may run one only when every peer has promised a
//     strictly later key. This serializes the shared suffix of the
//     workload exactly as the sequential driver would, which is what
//     makes sharded results deeply equal to sequential ones.
//
//   - Confined operations touch only lane-local state (co-resident
//     client/server traffic that never crosses the wire) plus
//     order-independent atomics (metrics counters, traffic stats). They
//     commute with everything outside their lane and run ahead freely,
//     bounded only by global fences. Their soundness rests on the wire
//     lookahead bound: with a positive minimum cross-host delay, any
//     operation that could affect another lane must pay the wire and is
//     classified Shared; if the cost model ever yielded a non-positive
//     lookahead the confined/shared partition would be meaningless, so
//     NewSync demotes every Confined gate to Shared in that case.
//
// Fences generalize the chaos → groups → sampler pump ordering
// (PROTOCOL.md §11.4) to concurrent engines: a fence at virtual time Tf
// fires exactly once, at a globally quiescent cut — every operation with
// key before Tf has completed and no operation with key at or after Tf
// has started — so crash/partition events and sampler ticks observe a
// deterministic state no matter how the Go scheduler interleaved the
// lanes.
package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Key orders operations globally: virtual start time first, then the
// client's position in the workload's client slice. Keys are unique
// across lanes (no two clients share a Seq), so ties never fall to
// goroutine arrival order — the same lowest-index tie-break the
// sequential driver uses decides them.
type Key struct {
	// T is the operation's virtual start time (the issuing client's
	// clock before think time is charged — the same instant the
	// sequential driver's pick-min loop compares).
	T vtime.Time
	// Seq is the issuing client's index in the workload client slice.
	Seq int
}

// Less is the strict global order on keys.
func (k Key) Less(o Key) bool {
	if k.T != o.T {
		return k.T < o.T
	}
	return k.Seq < o.Seq
}

// Class classifies one operation for the conservative protocol. The
// zero value is Shared — unclassified operations get the safe,
// fully-serialized treatment on any topology.
type Class int

const (
	// Shared operations commit in global key order.
	Shared Class = iota
	// Confined operations touch only lane-local substrate state and run
	// ahead without waiting for peers (fences still apply).
	Confined
)

// String names the class for logs and documents.
func (c Class) String() string {
	if c == Confined {
		return "confined"
	}
	return "shared"
}

// Fences supplies the global fence schedule. Next returns the earliest
// fence time strictly after `after` (ok=false when none remain); Fire
// executes the fence — pumping the chaos engine, the replica groups and
// the sampler, in that order — at the quiescent cut. Fire runs with the
// Sync lock held and must not call back into the Sync.
type Fences struct {
	Next func(after vtime.Time) (vtime.Time, bool)
	Fire func(at vtime.Time)
}

// Sync coordinates the lanes of one workload run. Each lane gates every
// operation through Gate and announces completion with Done.
type Sync struct {
	lookahead time.Duration
	fences    Fences

	mu      sync.Mutex
	cond    *sync.Cond
	promise []Key
	done    []bool
	// nextFence is the pending fence time when fencePending; fences fire
	// in Next order, each exactly once, always at a quiescent cut.
	nextFence    vtime.Time
	fencePending bool
	fired        int
}

// NewSync builds the coordinator for n lanes. lookahead is the
// substrate's minimum cross-lane delay (netsim.Network.Lookahead); a
// non-positive bound voids the confined-class soundness argument, so
// every Confined gate is then demoted to Shared.
func NewSync(n int, lookahead time.Duration, fences Fences) *Sync {
	s := &Sync{lookahead: lookahead, fences: fences,
		promise: make([]Key, n), done: make([]bool, n)}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.promise {
		// Below every real key (real Seq >= 0): a lane that has not gated
		// yet blocks every Shared peer, which is exactly the conservative
		// stance.
		s.promise[i] = Key{T: 0, Seq: -1}
	}
	if fences.Next != nil {
		if at, ok := fences.Next(-1); ok {
			s.nextFence, s.fencePending = at, true
		}
	}
	return s
}

// Lookahead returns the bound the Sync was built with.
func (s *Sync) Lookahead() time.Duration { return s.lookahead }

// FencesFired reports how many fences have fired.
func (s *Sync) FencesFired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Gate publishes lane id's next operation key as its promise and blocks
// until the operation may run: past every fence at or before the key's
// time, and — for Shared operations — until every unfinished peer has
// promised a strictly later key (so every earlier-keyed operation,
// anywhere, has completed, and no later-keyed Shared operation can have
// started). Keys must be non-decreasing per lane; the pick-min driver
// loop guarantees this, and Gate panics if a caller breaks it, because a
// regressing promise would silently void the conservative guarantee.
//
// Gate returns the total number of fences fired when it unblocks.
// Callers that classified the operation Confined from mutable substrate
// state (a cached route, a lease) compare it against FencesFired taken
// before classifying: a fence that fired in between may have invalidated
// the classification's evidence (a chaos redefinition revoking a lease
// turns a proven-local hit into a shared-wire revalidation), so the
// caller must re-prove the class and re-Gate as Shared if the proof no
// longer holds. Re-gating with the same key is legal — promises are
// non-decreasing, not strictly increasing.
func (s *Sync) Gate(id int, k Key, cls Class) int {
	if s.lookahead <= 0 {
		cls = Shared
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if k.Less(s.promise[id]) {
		panic(fmt.Sprintf("engine: lane %d promise regressed from %+v to %+v", id, s.promise[id], k))
	}
	s.promise[id] = k
	s.cond.Broadcast()
	for {
		s.fireDueFencesLocked()
		if s.fencePending && s.nextFence <= k.T {
			// A fence is pending at or before this op's start: wait for
			// the laggards to reach it so it fires at the quiescent cut.
			s.cond.Wait()
			continue
		}
		if cls == Shared && !s.clearLocked(id, k) {
			s.cond.Wait()
			continue
		}
		return s.fired
	}
}

// Done retires lane id: its promise becomes +infinity for peers'
// clearance checks. Fences that the retirement makes due fire here (or
// in a woken peer's Gate loop); fences beyond the last running lane's
// horizon never fire — the run ends like a sequential workload whose
// clock stopped short of the schedule tail (callers that want the tail
// call the chaos engine's Finish, as sequential workloads do).
func (s *Sync) Done(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done[id] = true
	s.fireDueFencesLocked()
	s.cond.Broadcast()
}

// clearLocked reports whether every unfinished peer of lane id has
// promised strictly past k.
func (s *Sync) clearLocked(id int, k Key) bool {
	for j := range s.promise {
		if j == id || s.done[j] {
			continue
		}
		if !k.Less(s.promise[j]) {
			return false
		}
	}
	return true
}

// fireDueFencesLocked fires every pending fence all unfinished lanes
// have promised past. The firing condition (min promise time >= fence
// time) can only hold while no operation is executing: a running
// operation's key is its lane's current promise, and it was gated past
// every fence at or before its own start — so Fire always observes the
// quiescent cut the determinism argument needs.
func (s *Sync) fireDueFencesLocked() {
	for s.fencePending {
		min, live := s.minPromiseLocked()
		if !live || min.T < s.nextFence {
			return
		}
		at := s.nextFence
		s.fencePending = false
		s.fired++
		if s.fences.Fire != nil {
			s.fences.Fire(at)
		}
		if s.fences.Next != nil {
			if nxt, ok := s.fences.Next(at); ok && nxt > at {
				s.nextFence, s.fencePending = nxt, true
			}
		}
		s.cond.Broadcast()
	}
}

// minPromiseLocked returns the minimum promise over unfinished lanes.
func (s *Sync) minPromiseLocked() (Key, bool) {
	var min Key
	live := false
	for j := range s.promise {
		if s.done[j] {
			continue
		}
		if !live || s.promise[j].Less(min) {
			min, live = s.promise[j], true
		}
	}
	return min, live
}
