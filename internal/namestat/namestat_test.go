package namestat

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/popgen"
)

func TestNilSketchesAreNoOps(t *testing.T) {
	var tk *TopK
	tk.Observe("x")
	if tk.Len() != 0 || tk.Total() != 0 || tk.Snapshot() != nil {
		t.Fatalf("nil TopK reported state")
	}
	var r *Rates
	r.ObserveResolution("x", time.Millisecond)
	r.ObserveRedefinition("x", time.Millisecond)
	r.ObserveRenewal("x", time.Millisecond)
	r.ObserveInvalidation("x", time.Millisecond, 3)
	r.ObserveStaleWindow("x", time.Millisecond)
	if r.Snapshot() != nil || r.RedefRateHz("x") != 0 || r.Redefinitions("x") != 0 || r.Dropped() != 0 {
		t.Fatalf("nil Rates reported state")
	}
	Publish(nil, "none", tk, r) // must not panic
}

func TestTopKExact(t *testing.T) {
	tk := NewTopK(8)
	for i := 0; i < 5; i++ {
		tk.Observe("a")
	}
	for i := 0; i < 3; i++ {
		tk.Observe("b")
	}
	tk.Observe("c")
	items := tk.Snapshot()
	if len(items) != 3 {
		t.Fatalf("Len = %d, want 3", len(items))
	}
	want := []Item{{Name: "a", Count: 5}, {Name: "b", Count: 3}, {Name: "c", Count: 1}}
	for i, w := range want {
		if items[i] != w {
			t.Fatalf("item %d = %+v, want %+v", i, items[i], w)
		}
	}
	if tk.Total() != 9 {
		t.Fatalf("Total = %d, want 9", tk.Total())
	}
}

func TestTopKReplacementBound(t *testing.T) {
	tk := NewTopK(2)
	tk.Observe("a")
	tk.Observe("a")
	tk.Observe("b")
	tk.Observe("c") // replaces b (the min): count 2, err 1
	items := tk.Snapshot()
	if len(items) != 2 || tk.Len() != 2 {
		t.Fatalf("sketch exceeded k: %+v", items)
	}
	var c Item
	for _, it := range items {
		if it.Name == "c" {
			c = it
		}
	}
	if c.Count != 2 || c.Err != 1 {
		t.Fatalf("replacement entry = %+v, want count 2 err 1", c)
	}
	// The space-saving guarantee: Count never undercounts.
	if c.Count-c.Err != 1 {
		t.Fatalf("lower bound = %d, want 1 true occurrence", c.Count-c.Err)
	}
}

// TestTopKRecallOnZipf is the property test against exact counts: on
// popgen-seeded Zipf draws, a k-sized sketch must (a) contain every
// name with true count > N/k — the space-saving guarantee — and (b)
// never report a count outside [true, true+err].
func TestTopKRecallOnZipf(t *testing.T) {
	const (
		population = 5000
		draws      = 50_000
		k          = 48
	)
	pop := popgen.NewPopulation(population, 0.99, 1)
	s := pop.Sampler(7)
	tk := NewTopK(k)
	exact := make(map[string]uint64)
	for i := 0; i < draws; i++ {
		name := pop.Names[s.NextRank()]
		exact[name]++
		tk.Observe(name)
	}
	items := tk.Snapshot()
	inSketch := make(map[string]Item, len(items))
	for _, it := range items {
		inSketch[it.Name] = it
	}
	guarantee := uint64(draws / k)
	for name, n := range exact {
		if n <= guarantee {
			continue
		}
		it, ok := inSketch[name]
		if !ok {
			t.Fatalf("name %q with true count %d > %d missing from sketch", name, n, guarantee)
		}
		if it.Count < n || it.Count > n+it.Err {
			t.Fatalf("name %q count %d (err %d) outside [%d, %d]", name, it.Count, it.Err, n, n+it.Err)
		}
	}
	for _, it := range items {
		if true_ := exact[it.Name]; it.Count < true_ || it.Count > true_+it.Err {
			t.Fatalf("sketch entry %+v violates bound (true %d)", it, true_)
		}
	}
	if tk.Total() != draws {
		t.Fatalf("Total = %d, want %d", tk.Total(), draws)
	}
}

func TestRatesEWMAConvergence(t *testing.T) {
	r := NewRates(8)
	// A steady 10 ms cadence must converge on 100 Hz exactly (every
	// instantaneous estimate equals the true rate).
	for i := 0; i <= 20; i++ {
		r.ObserveRedefinition("hot", time.Duration(i)*10*time.Millisecond)
	}
	if got := r.RedefRateHz("hot"); got < 99.9 || got > 100.1 {
		t.Fatalf("steady 100Hz estimated %.2f", got)
	}
	if r.Redefinitions("hot") != 21 {
		t.Fatalf("Redefinitions = %d, want 21", r.Redefinitions("hot"))
	}
	// A single event has no rate yet.
	r.ObserveRedefinition("cold", time.Second)
	if got := r.RedefRateHz("cold"); got != 0 {
		t.Fatalf("single event rate = %.2f, want 0", got)
	}
	// Rates hold (no decay) after events stop — the conservative
	// reading the tuner depends on.
	if got := r.RedefRateHz("hot"); got < 99.9 {
		t.Fatalf("rate decayed to %.2f with no new events", got)
	}
}

func TestRatesSnapshotAndBound(t *testing.T) {
	r := NewRates(2)
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	r.ObserveResolution("b", at(0))
	r.ObserveResolution("b", at(100))
	r.ObserveRenewal("b", at(0))
	r.ObserveRenewal("b", at(50))
	r.ObserveInvalidation("a", at(10), 4)
	r.ObserveInvalidation("a", at(20), 4)
	r.ObserveStaleWindow("a", 750*time.Microsecond)
	r.ObserveResolution("overflow", at(5)) // beyond bound: dropped
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	items := r.Snapshot()
	if len(items) != 2 || items[0].Name != "a" || items[1].Name != "b" {
		t.Fatalf("snapshot order wrong: %+v", items)
	}
	a, b := items[0], items[1]
	if a.Invalidations != 2 || a.FanoutMilli != 4000 || a.MaxStaleUS != 750 {
		t.Fatalf("a = %+v", a)
	}
	if b.Resolutions != 2 || b.ResRateMilliHz != 10_000 || b.RenewRateMilliHz != 20_000 {
		t.Fatalf("b = %+v", b)
	}
}

func TestPublishVolatile(t *testing.T) {
	reg := metrics.New()
	tk := NewTopK(4)
	tk.Observe("[home]")
	tk.Observe("[home]")
	r := NewRates(4)
	r.ObserveRedefinition("[home]", 0)
	r.ObserveRedefinition("[home]", 100*time.Millisecond)
	Publish(reg, "pfx", tk, r)
	snap := reg.Snapshot()
	var found, volatile int
	for _, g := range snap.Gauges {
		if g.Labels.Class == "namestat" {
			found++
			if g.Volatile {
				volatile++
			}
		}
	}
	if found == 0 {
		t.Fatalf("Publish registered no namestat gauges")
	}
	if volatile != found {
		t.Fatalf("%d of %d namestat gauges not volatile", found-volatile, found)
	}
	// Volatility keeps published analytics out of deterministic
	// documents — the goldens' byte-identity depends on this.
	for _, g := range snap.Deterministic().Gauges {
		if g.Labels.Class == "namestat" {
			t.Fatalf("namestat gauge %q leaked into deterministic snapshot", g.Name)
		}
	}
	var top int64
	for _, g := range snap.Gauges {
		if g.Name == "namestat_top_count" && g.Labels.Op == "[home]" {
			top = g.Value
		}
	}
	if top != 2 {
		t.Fatalf("published top count = %d, want 2", top)
	}
}

// TestConstructorClamps pins the defensive defaults: a non-positive k
// still yields a working one-slot sketch, and a non-positive rate bound
// falls back to DefaultRateBound.
func TestConstructorClamps(t *testing.T) {
	tk := NewTopK(0)
	tk.Observe("a")
	tk.Observe("a")
	tk.Observe("b") // evicts into the single slot
	items := tk.Snapshot()
	if len(items) != 1 {
		t.Fatalf("k=0 sketch holds %d items, want 1", len(items))
	}
	r := NewRates(-1)
	r.ObserveResolution("[x]", 0)
	if len(r.Snapshot()) != 1 {
		t.Fatalf("bound=-1 rates table rejected an observation")
	}
}
