// Package namestat is the name-space analytics layer: cardinality-
// bounded sketches that answer "which names are hot, and how fast is
// each one churning?" without holding per-name state for a 10⁶-name
// population.
//
// Two instruments:
//
//   - TopK, a space-saving sketch (Metwally et al.): at most k counters;
//     a hit increments its counter, a new name with the table full
//     replaces the minimum counter and inherits its count as the error
//     bound. Any name whose true count exceeds N/k is guaranteed
//     present, which is exactly the regime a Zipf-distributed workload
//     lives in.
//
//   - Rates, per-name event-driven EWMA estimators over virtual time:
//     resolution, redefinition and renewal rates (Hz), invalidation
//     fan-out, and the widest observed stale window. The map is bounded;
//     once full, estimators for new names are dropped and counted, so
//     the cost stays O(bound) regardless of population.
//
// Both are observers in the PROTOCOL.md §15 sense: observing charges no
// virtual time and is nil-safe, so record sites need no presence
// checks. Neither registers metrics instruments on its own — goldens
// like BENCH_metrics.json stay byte-identical with sketches installed —
// but Publish copies a snapshot into a metrics registry on demand for
// the Prometheus and vstat surfaces.
package namestat

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// TopK is a space-saving top-k sketch. All methods are nil-safe.
type TopK struct {
	mu     sync.Mutex
	k      int
	counts map[string]*topEntry
	total  uint64
}

type topEntry struct {
	count uint64
	err   uint64 // overestimate bound inherited at replacement
}

// Item is one sketch entry: Count overestimates the true count by at
// most Err.
type Item struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// NewTopK returns a sketch holding at most k names (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, counts: make(map[string]*topEntry, k)}
}

// Observe records one occurrence of name. O(1) on a hit, O(k) when a
// full sketch replaces its minimum entry.
func (t *TopK) Observe(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if e, ok := t.counts[name]; ok {
		e.count++
		return
	}
	if len(t.counts) < t.k {
		t.counts[name] = &topEntry{count: 1}
		return
	}
	// Replace the minimum entry; break count ties by name so the sketch
	// evolves identically regardless of map iteration order.
	var victim string
	var min *topEntry
	for n, e := range t.counts {
		if min == nil || e.count < min.count || (e.count == min.count && n < victim) {
			victim, min = n, e
		}
	}
	delete(t.counts, victim)
	t.counts[name] = &topEntry{count: min.count + 1, err: min.count}
}

// Total returns the number of observations ever made.
func (t *TopK) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns the number of names currently tracked.
func (t *TopK) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.counts)
}

// Snapshot returns the sketch sorted by count descending, ties by name
// ascending — a deterministic ranking.
func (t *TopK) Snapshot() []Item {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	items := make([]Item, 0, len(t.counts))
	for n, e := range t.counts {
		items = append(items, Item{Name: n, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Name < items[j].Name
	})
	return items
}

// ewmaAlpha weights the newest inter-event gap at 30%: a few
// observations converge the estimate, one outlier doesn't own it.
const ewmaAlpha = 0.3

// DefaultRateBound caps the number of names Rates tracks.
const DefaultRateBound = 64

// Rates holds per-name EWMA estimators. All methods are nil-safe.
type Rates struct {
	mu      sync.Mutex
	bound   int
	names   map[string]*rateEntry
	dropped uint64
}

type rateEntry struct {
	res, redef, renew ewma
	invalidations     uint64
	fanout            float64 // EWMA of per-invalidation holder fan-out
	maxStale          time.Duration
}

// ewma is one event-driven rate estimator: each event contributes an
// instantaneous rate 1/gap blended at ewmaAlpha. There is no decay
// between events — a name that stopped being redefined keeps its last
// estimate, which is the conservative reading a lease tuner wants.
type ewma struct {
	count  uint64
	last   time.Duration
	rateHz float64
}

func (e *ewma) observe(at time.Duration) {
	e.count++
	if e.count == 1 {
		e.last = at
		return
	}
	gap := at - e.last
	e.last = at
	if gap <= 0 {
		return
	}
	inst := float64(time.Second) / float64(gap)
	if e.count == 2 {
		e.rateHz = inst
		return
	}
	e.rateHz = ewmaAlpha*inst + (1-ewmaAlpha)*e.rateHz
}

// NewRates returns a rate table tracking at most bound names
// (DefaultRateBound when bound <= 0).
func NewRates(bound int) *Rates {
	if bound <= 0 {
		bound = DefaultRateBound
	}
	return &Rates{bound: bound, names: make(map[string]*rateEntry, bound)}
}

// entry returns the estimator for name, creating it if the table has
// room. A nil return means the bound was hit and the event is dropped.
func (r *Rates) entry(name string) *rateEntry {
	if e, ok := r.names[name]; ok {
		return e
	}
	if len(r.names) >= r.bound {
		r.dropped++
		return nil
	}
	e := &rateEntry{}
	r.names[name] = e
	return e
}

// ObserveResolution records one resolution of name at virtual time at.
func (r *Rates) ObserveResolution(name string, at time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e := r.entry(name); e != nil {
		e.res.observe(at)
	}
	r.mu.Unlock()
}

// ObserveRedefinition records a binding mutation of name at at.
func (r *Rates) ObserveRedefinition(name string, at time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e := r.entry(name); e != nil {
		e.redef.observe(at)
	}
	r.mu.Unlock()
}

// ObserveRenewal records a lease revalidation of name at at.
func (r *Rates) ObserveRenewal(name string, at time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e := r.entry(name); e != nil {
		e.renew.observe(at)
	}
	r.mu.Unlock()
}

// ObserveInvalidation records one invalidation barrier for name that
// notified fanout holders.
func (r *Rates) ObserveInvalidation(name string, at time.Duration, fanout int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e := r.entry(name); e != nil {
		e.invalidations++
		if e.invalidations == 1 {
			e.fanout = float64(fanout)
		} else {
			e.fanout = ewmaAlpha*float64(fanout) + (1-ewmaAlpha)*e.fanout
		}
	}
	r.mu.Unlock()
}

// ObserveStaleWindow records an observed stale window of the given
// width for name (a hit served after the binding had moved).
func (r *Rates) ObserveStaleWindow(name string, width time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e := r.entry(name); e != nil && width > e.maxStale {
		e.maxStale = width
	}
	r.mu.Unlock()
}

// RedefRateHz returns the redefinition-rate estimate for name (0 if the
// name is untracked or has seen fewer than two redefinitions).
func (r *Rates) RedefRateHz(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.names[name]; ok {
		return e.redef.rateHz
	}
	return 0
}

// Redefinitions returns how many redefinitions of name were observed.
func (r *Rates) Redefinitions(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.names[name]; ok {
		return e.redef.count
	}
	return 0
}

// Dropped returns the number of events dropped at the cardinality bound.
func (r *Rates) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// RateItem is the published estimator state for one name. Rates are in
// milli-Hz so they survive the registry's integer gauges exactly.
type RateItem struct {
	Name             string `json:"name"`
	Resolutions      uint64 `json:"resolutions"`
	Redefinitions    uint64 `json:"redefinitions"`
	Renewals         uint64 `json:"renewals"`
	Invalidations    uint64 `json:"invalidations"`
	ResRateMilliHz   int64  `json:"res_rate_mhz"`
	RedefRateMilliHz int64  `json:"redef_rate_mhz"`
	RenewRateMilliHz int64  `json:"renew_rate_mhz"`
	FanoutMilli      int64  `json:"fanout_milli"`
	MaxStaleUS       int64  `json:"max_stale_us"`
}

func milli(f float64) int64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int64(math.Round(f * 1000))
}

// Snapshot returns every tracked estimator sorted by name.
func (r *Rates) Snapshot() []RateItem {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	items := make([]RateItem, 0, len(r.names))
	for n, e := range r.names {
		items = append(items, RateItem{
			Name:             n,
			Resolutions:      e.res.count,
			Redefinitions:    e.redef.count,
			Renewals:         e.renew.count,
			Invalidations:    e.invalidations,
			ResRateMilliHz:   milli(e.res.rateHz),
			RedefRateMilliHz: milli(e.redef.rateHz),
			RenewRateMilliHz: milli(e.renew.rateHz),
			FanoutMilli:      milli(e.fanout),
			MaxStaleUS:       int64(e.maxStale / time.Microsecond),
		})
	}
	r.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].Name < items[j].Name })
	return items
}

// Publish copies the current sketch and estimator state into reg as
// volatile gauges (volatile so Snapshot.Deterministic() — and with it
// every golden document — is unaffected). server labels the publishing
// component; the observed name rides in the Op label.
func Publish(reg *metrics.Registry, server string, top *TopK, rates *Rates) {
	if reg == nil {
		return
	}
	for _, it := range top.Snapshot() {
		reg.VolatileGauge("namestat_top_count", metrics.Labels{Server: server, Op: it.Name, Class: "namestat"}).Set(int64(it.Count))
	}
	for _, it := range rates.Snapshot() {
		l := metrics.Labels{Server: server, Op: it.Name, Class: "namestat"}
		reg.VolatileGauge("namestat_res_rate_mhz", l).Set(it.ResRateMilliHz)
		reg.VolatileGauge("namestat_redef_rate_mhz", l).Set(it.RedefRateMilliHz)
		reg.VolatileGauge("namestat_renew_rate_mhz", l).Set(it.RenewRateMilliHz)
		reg.VolatileGauge("namestat_invalidation_fanout_milli", l).Set(it.FanoutMilli)
		reg.VolatileGauge("namestat_max_stale_us", l).Set(it.MaxStaleUS)
	}
}
