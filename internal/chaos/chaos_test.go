package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/vtime"
)

func newDomain(t *testing.T) *kernel.Kernel {
	t.Helper()
	return kernel.New(netsim.New(vtime.DefaultModel(), 1))
}

func TestEngineFiresInOrder(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("victim")

	// Deliberately unsorted schedule; the engine sorts by fire time.
	e := New(k, []Event{
		{At: 300 * time.Millisecond, Action: Restart, Host: "victim"},
		{At: 100 * time.Millisecond, Action: Crash, Host: "victim"},
		{At: 200 * time.Millisecond, Action: SetLoss, Rate: 0.5},
	})

	e.AdvanceTo(50 * time.Millisecond)
	if e.Fired() != 0 || !h.Alive() {
		t.Fatalf("nothing should fire before its time (fired=%d)", e.Fired())
	}

	e.AdvanceTo(150 * time.Millisecond)
	if e.Fired() != 1 || h.Alive() {
		t.Fatalf("crash should have fired (fired=%d alive=%v)", e.Fired(), h.Alive())
	}

	e.AdvanceTo(400 * time.Millisecond)
	if e.Fired() != 3 || !h.Alive() || k.Network().DropRate() != 0.5 {
		t.Fatalf("all events should have fired (fired=%d alive=%v rate=%v)",
			e.Fired(), h.Alive(), k.Network().DropRate())
	}

	log := e.Log()
	if len(log) != 3 || !strings.Contains(log[0], "crash") ||
		!strings.Contains(log[1], "set-loss") || !strings.Contains(log[2], "restart") {
		t.Fatalf("log = %q", log)
	}
}

func TestRestartHookRuns(t *testing.T) {
	k := newDomain(t)
	k.NewHost("fs")
	e := New(k, []Event{
		{At: 1 * time.Millisecond, Action: Crash, Host: "fs"},
		{At: 2 * time.Millisecond, Action: Restart, Host: "fs"},
	})
	var hooked []string
	e.RestartHook = func(host string) error {
		hooked = append(hooked, host)
		return nil
	}
	e.Finish()
	if !reflect.DeepEqual(hooked, []string{"fs"}) {
		t.Fatalf("hooked = %v", hooked)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{
		Duration:           3 * time.Second,
		Hosts:              []string{"fs1", "fs2"},
		MeanOutageEvery:    600 * time.Millisecond,
		OutageLength:       200 * time.Millisecond,
		MeanLossPulseEvery: 900 * time.Millisecond,
		LossPulseLength:    150 * time.Millisecond,
		LossRate:           0.3,
	}
	a, b := Generate(7, p), Generate(7, p)
	if len(a) == 0 {
		t.Fatal("profile should generate events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed must generate the same schedule:\n%v\n%v", a, b)
	}
	c := Generate(8, p)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should generate different schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v then %v", i, a[i-1].At, a[i].At)
		}
	}
}
