package chaos_test

// The determinism satellite: two runs of the same chaos schedule and
// seed over the same rig configuration must produce byte-identical event
// logs and identical session metrics. This is the virtual-time
// substrate's core guarantee, and the property `make check` protects.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/rig"
)

type chaosRun struct {
	log     string
	ok      int
	stats   client.ResilienceStats
	summary rig.ResilienceSummary
}

func runChaosOnce(t *testing.T) chaosRun {
	t.Helper()
	policy := client.DefaultRetryPolicy()
	r, err := rig.New(rig.Config{Users: []string{"mann"}, Seed: 7, Retry: &policy})
	if err != nil {
		t.Fatal(err)
	}
	s := r.WS[0].Session
	eng := r.NewChaos(chaos.Generate(99, chaos.Profile{
		Duration:           2 * time.Second,
		Hosts:              []string{"fs1"},
		MeanOutageEvery:    500 * time.Millisecond,
		OutageLength:       150 * time.Millisecond,
		MeanLossPulseEvery: 700 * time.Millisecond,
		LossPulseLength:    100 * time.Millisecond,
		LossRate:           0.25,
	}))
	// Faults scheduled during a backoff wait fire while the client waits.
	s.SetRetryObserver(eng.AdvanceTo)

	ok := 0
	for i := 0; i < 120; i++ {
		eng.AdvanceTo(s.Proc().Now())
		if _, err := s.ReadFile("[bin]hello"); err == nil {
			ok++
		}
		s.Proc().ChargeCompute(10 * time.Millisecond) // workload pacing
	}
	eng.Finish()
	return chaosRun{
		log:     strings.Join(eng.Log(), "\n"),
		ok:      ok,
		stats:   s.ResilienceStats(),
		summary: r.ResilienceSummary(),
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	a, b := runChaosOnce(t), runChaosOnce(t)
	if a.log != b.log {
		t.Fatalf("event logs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.log, b.log)
	}
	if a.ok != b.ok {
		t.Fatalf("success counts differ: %d vs %d", a.ok, b.ok)
	}
	if !reflect.DeepEqual(a.stats, b.stats) {
		t.Fatalf("session metrics differ:\n%+v\n%+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.summary, b.summary) {
		t.Fatalf("rig summaries differ:\n%+v\n%+v", a.summary, b.summary)
	}
	if a.log == "" {
		t.Fatal("schedule fired no events")
	}
	if a.stats.Ops == 0 {
		t.Fatal("workload recorded no operations")
	}
}
