// Package chaos is a deterministic fault-schedule engine for the
// simulated V domain.
//
// The paper's §2.2 reliability argument — distributed name interpretation
// keeps every object on a live server nameable, where a centralized name
// server is a single point of failure — is only demonstrable *during*
// faults. This package scripts faults as a declarative schedule of
// virtual-time events over the existing injection hooks (netsim frame
// loss and partitions, kernel host crash/restart) so that fault scenarios
// replay identically: the same schedule and seed produce byte-identical
// event logs and identical client-visible outcomes, run after run.
//
// The engine has no clock of its own. Workloads pump it by calling
// AdvanceTo with their session's virtual time — from the operation loop
// and, through the client's retry observer, from inside backoff waits, so
// a scripted restart becomes visible exactly when a waiting client's
// clock passes it.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// Action is the kind of fault (or repair) an event performs.
type Action int

const (
	// SetLoss sets the network frame-loss probability to Rate.
	SetLoss Action = iota
	// Partition moves Host into partition group Group.
	Partition
	// Heal returns every host to partition group 0.
	Heal
	// Crash takes Host down, destroying its processes and service table.
	Crash
	// Restart brings Host back up (empty tables; re-created servers get
	// new pids — the §4.2 rebinding scenario). The engine's RestartHook,
	// if set, then re-creates the host's servers.
	Restart
	// Custom runs the event's Do function.
	Custom
)

// String names the action for event logs.
func (a Action) String() string {
	switch a {
	case SetLoss:
		return "set-loss"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Event is one scheduled fault. Only the fields its Action reads are
// meaningful.
type Event struct {
	// At is the virtual time the event fires (first AdvanceTo at or past
	// it).
	At vtime.Time
	// Action selects what the event does.
	Action Action
	// Host names the target host (Partition, Crash, Restart).
	Host string
	// Group is the partition group (Partition).
	Group int
	// Rate is the frame-loss probability (SetLoss).
	Rate float64
	// Note is free text appended to the log line.
	Note string
	// Do is the body of a Custom event.
	Do func() error
}

// Engine fires a sorted schedule of events as virtual time passes.
type Engine struct {
	// RestartHook, if set, is called after a Restart event with the
	// host's name, to re-create the servers that lived there (the engine
	// can restart a host kernel, but only the rig knows what ran on it).
	RestartHook func(host string) error
	// CrashHook, if set, is called after a Crash event with the event's
	// exact virtual time — how a replication group's monitor learns the
	// leader-death instant deterministically (PROTOCOL.md §11.4).
	CrashHook func(host string, at vtime.Time)
	// RestartedHook, if set, is called after a Restart event (and after
	// RestartHook) with the event's exact virtual time; the replicated
	// rig re-creates and rejoins the host's replica here.
	RestartedHook func(host string, at vtime.Time) error

	k      *kernel.Kernel
	mu     sync.Mutex
	events []Event
	next   int
	log    []string
}

// New builds an engine over the domain's kernel. The schedule is copied
// and stably sorted by fire time, so equal-time events keep their given
// order.
func New(k *kernel.Kernel, events []Event) *Engine {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &Engine{k: k, events: sorted}
}

// AdvanceTo fires, in order, every not-yet-fired event whose time is at
// or before now. Callers pump it with their session's virtual clock; it
// is safe to call from several sessions, and each event fires exactly
// once.
func (e *Engine) AdvanceTo(now vtime.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.next < len(e.events) && e.events[e.next].At <= now {
		ev := e.events[e.next]
		e.next++
		e.fireLocked(ev)
	}
}

// Finish fires every remaining event regardless of time, so a schedule's
// log is complete even if the workload's clock stops short.
func (e *Engine) Finish() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.next < len(e.events) {
		ev := e.events[e.next]
		e.next++
		e.fireLocked(ev)
	}
}

// fireLocked executes one event and logs the outcome. Called with e.mu
// held.
func (e *Engine) fireLocked(ev Event) {
	// Event times are exact virtual timestamps, which makes the engine the
	// one place that can mark server up/down transitions deterministically
	// on the health timeline.
	reg := e.k.Metrics()
	reg.Counter("chaos_events_total", metrics.Labels{Class: ev.Action.String()}).Inc()
	var outcome string
	switch ev.Action {
	case SetLoss:
		e.k.Network().SetDropRate(ev.Rate)
		outcome = fmt.Sprintf("rate=%.2f", ev.Rate)
	case Partition:
		if h := e.k.HostByName(ev.Host); h != nil {
			e.k.Network().Partition(h.ID(), ev.Group)
			outcome = fmt.Sprintf("host=%s group=%d", ev.Host, ev.Group)
		} else {
			outcome = fmt.Sprintf("host=%s unknown", ev.Host)
		}
	case Heal:
		e.k.Network().Heal()
		outcome = "all groups -> 0"
	case Crash:
		if h := e.k.HostByName(ev.Host); h != nil {
			h.Crash()
			reg.Timeline(metrics.TimelineServerUp, metrics.Labels{Host: ev.Host}).Mark(ev.At, 0)
			outcome = "host=" + ev.Host
			if e.CrashHook != nil {
				e.CrashHook(ev.Host, ev.At)
			}
		} else {
			outcome = fmt.Sprintf("host=%s unknown", ev.Host)
		}
	case Restart:
		if h := e.k.HostByName(ev.Host); h != nil {
			h.Restart()
			reg.Timeline(metrics.TimelineServerUp, metrics.Labels{Host: ev.Host}).Mark(ev.At, 1)
			outcome = "host=" + ev.Host
			if e.RestartHook != nil {
				if err := e.RestartHook(ev.Host); err != nil {
					outcome += " hook-error=" + err.Error()
				}
			}
			if e.RestartedHook != nil {
				if err := e.RestartedHook(ev.Host, ev.At); err != nil {
					outcome += " hook-error=" + err.Error()
				}
			}
		} else {
			outcome = fmt.Sprintf("host=%s unknown", ev.Host)
		}
	case Custom:
		outcome = "ok"
		if ev.Do == nil {
			outcome = "no-op"
		} else if err := ev.Do(); err != nil {
			outcome = "error=" + err.Error()
		}
	default:
		outcome = "unknown action"
	}
	line := fmt.Sprintf("t=%08dus %-9s %s", ev.At.Microseconds(), ev.Action, outcome)
	if ev.Note != "" {
		line += " (" + ev.Note + ")"
	}
	e.log = append(e.log, line)
}

// Log returns a copy of the fired-event log, one line per event in fire
// order. Two runs of the same schedule produce byte-identical logs — the
// determinism the virtual-time substrate guarantees.
func (e *Engine) Log() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.log))
	copy(out, e.log)
	return out
}

// NextEventAt returns the fire time of the earliest event that has not
// fired yet, and whether one remains. The sharded workload drivers use
// it as a fence source (PROTOCOL.md §12): each pending event time
// becomes a global barrier, so the event fires at a deterministic
// quiescent cut instead of whenever some lane's pump happens past it.
func (e *Engine) NextEventAt() (vtime.Time, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.next >= len(e.events) {
		return 0, false
	}
	return e.events[e.next].At, true
}

// Fired returns how many events have fired so far.
func (e *Engine) Fired() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next
}

// Profile parameterizes the random-chaos generator: repeated host
// outages (crash, then restart after OutageLength) and frame-loss pulses
// (loss at LossRate for LossPulseLength, then clean), with the gaps
// jittered around their means.
type Profile struct {
	// Duration is the schedule's length; no event fires after it.
	Duration time.Duration
	// Hosts are the outage candidates, picked uniformly per outage.
	Hosts []string
	// MeanOutageEvery is the average gap between outage starts; zero
	// disables outages.
	MeanOutageEvery time.Duration
	// OutageLength is how long a crashed host stays down.
	OutageLength time.Duration
	// MeanLossPulseEvery is the average gap between loss pulses; zero
	// disables them.
	MeanLossPulseEvery time.Duration
	// LossPulseLength is how long a pulse lasts.
	LossPulseLength time.Duration
	// LossRate is the frame-loss probability during a pulse.
	LossRate float64
}

// Generate produces a schedule from a seed, deterministically: the same
// seed and profile always yield the same events. Gaps are jittered
// uniformly in [0.5, 1.5) of their mean.
func Generate(seed int64, p Profile) []Event {
	rng := rand.New(rand.NewSource(seed))
	jitter := func(mean time.Duration) time.Duration {
		return time.Duration(float64(mean) * (0.5 + rng.Float64()))
	}
	var events []Event
	if p.MeanOutageEvery > 0 && len(p.Hosts) > 0 {
		for t := jitter(p.MeanOutageEvery); t < p.Duration; t += jitter(p.MeanOutageEvery) {
			host := p.Hosts[rng.Intn(len(p.Hosts))]
			events = append(events,
				Event{At: t, Action: Crash, Host: host, Note: "scheduled outage"},
				Event{At: t + p.OutageLength, Action: Restart, Host: host, Note: "outage over"},
			)
		}
	}
	if p.MeanLossPulseEvery > 0 && p.LossRate > 0 {
		for t := jitter(p.MeanLossPulseEvery); t < p.Duration; t += jitter(p.MeanLossPulseEvery) {
			events = append(events,
				Event{At: t, Action: SetLoss, Rate: p.LossRate, Note: "loss pulse"},
				Event{At: t + p.LossPulseLength, Action: SetLoss, Rate: 0, Note: "pulse over"},
			)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
