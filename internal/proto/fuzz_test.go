package proto

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzUnmarshal: arbitrary bytes never panic the message decoder, and
// anything that decodes re-encodes to an equivalent message.
func FuzzUnmarshal(f *testing.F) {
	m := &Message{Op: OpCreateInstance, F: [6]uint32{1, 2, 3, 4, 5, 6}, Segment: []byte("name")}
	good, _ := m.Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderBytes))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := decoded.Marshal()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		again, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if again.Op != decoded.Op || again.F != decoded.F || !bytes.Equal(again.Segment, decoded.Segment) {
			t.Fatal("round trip not stable")
		}
	})
}

// FuzzDecodeDescriptors: arbitrary directory streams never panic, and
// valid streams round trip.
func FuzzDecodeDescriptors(f *testing.F) {
	d := Descriptor{Tag: TagFile, Name: "x", Owner: "y"}
	f.Add(d.AppendEncoded(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeDescriptors(data)
		if err != nil {
			return
		}
		re := EncodeDescriptors(records)
		if !bytes.Equal(re, data) {
			t.Fatalf("valid stream not canonical: %d bytes vs %d", len(re), len(data))
		}
	})
}

// FuzzDecodeDescriptor: arbitrary bytes at the single-record decoder.
// Whatever the input, it must not panic, every error must be ErrBadArgs
// (so servers answer a bad record with a protocol error, not a crash),
// and any record it accepts must re-encode to the exact bytes consumed
// — the canonical-form property directory listings rely on (§5.6).
func FuzzDecodeDescriptor(f *testing.F) {
	seed := Descriptor{
		Tag:          TagFile,
		Perms:        PermRead | PermWrite,
		ObjectID:     42,
		Size:         1 << 20,
		Modified:     123456789,
		TypeSpecific: [2]uint32{7, 9},
		Name:         "paper.mss",
		Owner:        "mann",
	}
	f.Add(seed.AppendEncoded(nil))
	f.Add(EncodeDescriptors([]Descriptor{seed, {Tag: TagLink, Name: "archive"}}))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, buf []byte) {
		d, n, err := DecodeDescriptor(buf)
		if err != nil {
			if !errors.Is(err, ErrBadArgs) {
				t.Fatalf("decode error %v is not ErrBadArgs", err)
			}
			return
		}
		if n <= 0 || n > len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if d.EncodedSize() != n {
			t.Fatalf("EncodedSize %d != consumed %d", d.EncodedSize(), n)
		}
		if got := d.AppendEncoded(nil); !bytes.Equal(got, buf[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, buf[:n])
		}
	})
}

// FuzzCSName: arbitrary header fields never panic the CSname accessors.
func FuzzCSName(f *testing.F) {
	f.Add(uint32(0), uint32(0), []byte("users/mann"))
	f.Add(uint32(5), uint32(100), []byte(""))
	f.Fuzz(func(t *testing.T, idx, nameLen uint32, segment []byte) {
		m := &Message{Op: OpQueryObject, Segment: segment}
		m.F[1] = idx
		m.F[2] = nameLen
		name, i, err := CSName(m)
		if err != nil {
			return
		}
		if i > len(name) {
			t.Fatalf("index %d beyond name %d", i, len(name))
		}
	})
}
