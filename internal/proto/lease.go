package proto

import "fmt"

// Lease-stamped resolution (PROTOCOL.md §13). A client that keeps a name
// cache may ask the prefix server to answer an OpMapContext directly and
// stamp the reply with a virtual-time lease: the cached pair is valid
// until the absolute expiry time, and the server promises to send an
// OpCacheInvalidate to the holder's callback process if the binding
// changes before then. Failure replies (ReplyNotFound) may carry the same
// stamp as a *negative* lease, authorizing the client to answer repeated
// lookups of the absent name locally until expiry or invalidation.
//
// Field usage (all free positions on OpMapContext and its replies):
//
//	request   Flags |= FlagLeaseRequest, F[3] = callback pid
//	reply     Flags |= FlagLeaseGrant, F[4]/F[5] = expiry (ns, high/low)
//
// The expiry rides F[4]/F[5] rather than F[1]/F[2] so the stamp coexists
// with the name-fault details of a failure reply (csname.go).
const (
	// FlagLeaseRequest marks an OpMapContext request asking for a
	// lease-stamped direct reply; F[3] carries the requester's
	// invalidation-callback pid.
	FlagLeaseRequest uint16 = 1 << 1
	// FlagLeaseGrant marks a reply carrying a lease expiry in F[4]/F[5].
	FlagLeaseGrant uint16 = 1 << 2
)

// SetLeaseRequest marks a CSname request as wanting a lease-stamped
// reply, naming the process that will receive OpCacheInvalidate
// callbacks.
func SetLeaseRequest(m *Message, callback uint32) {
	m.Flags |= FlagLeaseRequest
	m.F[3] = callback
}

// LeaseRequest reports whether the request asks for a lease, and the
// callback pid when it does.
func LeaseRequest(m *Message) (callback uint32, ok bool) {
	if m.Flags&FlagLeaseRequest == 0 {
		return 0, false
	}
	return m.F[3], true
}

// SetLeaseGrant stamps a reply with an absolute virtual-time lease
// expiry.
func SetLeaseGrant(m *Message, expire int64) {
	m.Flags |= FlagLeaseGrant
	m.F[4] = uint32(uint64(expire) >> 32)
	m.F[5] = uint32(uint64(expire))
}

// LeaseGrant extracts the lease expiry from a stamped reply.
func LeaseGrant(m *Message) (expire int64, ok bool) {
	if m.Flags&FlagLeaseGrant == 0 {
		return 0, false
	}
	return int64(uint64(m.F[4])<<32 | uint64(m.F[5])), true
}

// SetCacheInvalidate encodes an OpCacheInvalidate callback: the affected
// name in the segment, and the virtual time at which the granting server
// committed the change that invalidates it in F[4]/F[5].
func SetCacheInvalidate(m *Message, name string, commit int64) {
	m.Op = OpCacheInvalidate
	m.F[2] = uint32(len(name))
	m.F[4] = uint32(uint64(commit) >> 32)
	m.F[5] = uint32(uint64(commit))
	m.Segment = append(m.Segment[:0], name...)
}

// CacheInvalidate decodes an OpCacheInvalidate callback.
func CacheInvalidate(m *Message) (name string, commit int64, err error) {
	n := int(m.F[2])
	if n > len(m.Segment) {
		return "", 0, fmt.Errorf("%w: invalidate name length %d exceeds segment %d", ErrBadArgs, n, len(m.Segment))
	}
	return string(m.Segment[:n]), int64(uint64(m.F[4])<<32 | uint64(m.F[5])), nil
}
