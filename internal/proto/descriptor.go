package proto

import (
	"encoding/binary"
	"fmt"
)

// DescriptorTag identifies the type of object a description record
// describes. The tag is the first field of every record, specifying the
// format of the rest — the same variant-record technique used for request
// messages (§5.5). It also lets an application check that an object is of
// the type it expects.
type DescriptorTag uint16

const (
	TagFile DescriptorTag = iota + 1
	TagDirectory
	TagContextPrefix
	TagTerminal
	TagPrintJob
	TagTCPConnection
	TagProgram
	TagMailbox
	TagLink // a context pointer into another server's name space
	TagServiceBinding
	TagPipe
)

// String names the tag for directory listings.
func (t DescriptorTag) String() string {
	switch t {
	case TagFile:
		return "file"
	case TagDirectory:
		return "directory"
	case TagContextPrefix:
		return "context-prefix"
	case TagTerminal:
		return "terminal"
	case TagPrintJob:
		return "print-job"
	case TagTCPConnection:
		return "tcp-connection"
	case TagProgram:
		return "program"
	case TagMailbox:
		return "mailbox"
	case TagLink:
		return "link"
	case TagServiceBinding:
		return "service-binding"
	case TagPipe:
		return "pipe"
	default:
		return fmt.Sprintf("tag(%d)", uint16(t))
	}
}

// Permission bits in Descriptor.Perms.
const (
	PermRead uint16 = 1 << iota
	PermWrite
	PermExecute
)

// Descriptor is a typed object description record (Figure 3): a list of
// the object's attributes, of which its name is one. Query operations
// return one record; context directories are sequences of them; the
// modify operation overwrites one.
type Descriptor struct {
	Tag      DescriptorTag
	Perms    uint16
	ObjectID uint32 // server-internal low-level identifier (i-node number, instance id, ...)
	Size     uint32 // size in bytes, queue position, connection count — tag-specific
	Modified uint64 // virtual-time timestamp (nanoseconds since boot)
	// TypeSpecific carries two tag-defined words, e.g. the
	// (server-pid, context-id) target of a TagLink or TagContextPrefix.
	TypeSpecific [2]uint32
	Name         string
	Owner        string
}

const descriptorFixedBytes = 2 + 2 + 4 + 4 + 8 + 8 + 2 + 2

// EncodedSize returns the record's encoded size in bytes.
func (d *Descriptor) EncodedSize() int {
	return descriptorFixedBytes + len(d.Name) + len(d.Owner)
}

// AppendEncoded appends the record's wire encoding to buf.
func (d *Descriptor) AppendEncoded(buf []byte) []byte {
	var fixed [descriptorFixedBytes]byte
	binary.BigEndian.PutUint16(fixed[0:], uint16(d.Tag))
	binary.BigEndian.PutUint16(fixed[2:], d.Perms)
	binary.BigEndian.PutUint32(fixed[4:], d.ObjectID)
	binary.BigEndian.PutUint32(fixed[8:], d.Size)
	binary.BigEndian.PutUint64(fixed[12:], d.Modified)
	binary.BigEndian.PutUint32(fixed[20:], d.TypeSpecific[0])
	binary.BigEndian.PutUint32(fixed[24:], d.TypeSpecific[1])
	binary.BigEndian.PutUint16(fixed[28:], uint16(len(d.Name)))
	binary.BigEndian.PutUint16(fixed[30:], uint16(len(d.Owner)))
	buf = append(buf, fixed[:]...)
	buf = append(buf, d.Name...)
	buf = append(buf, d.Owner...)
	return buf
}

// DecodeDescriptor decodes one record from the front of buf, returning the
// record and the number of bytes consumed.
func DecodeDescriptor(buf []byte) (Descriptor, int, error) {
	if len(buf) < descriptorFixedBytes {
		return Descriptor{}, 0, fmt.Errorf("%w: descriptor truncated at %d bytes", ErrBadArgs, len(buf))
	}
	var d Descriptor
	d.Tag = DescriptorTag(binary.BigEndian.Uint16(buf[0:]))
	d.Perms = binary.BigEndian.Uint16(buf[2:])
	d.ObjectID = binary.BigEndian.Uint32(buf[4:])
	d.Size = binary.BigEndian.Uint32(buf[8:])
	d.Modified = binary.BigEndian.Uint64(buf[12:])
	d.TypeSpecific[0] = binary.BigEndian.Uint32(buf[20:])
	d.TypeSpecific[1] = binary.BigEndian.Uint32(buf[24:])
	nameLen := int(binary.BigEndian.Uint16(buf[28:]))
	ownerLen := int(binary.BigEndian.Uint16(buf[30:]))
	total := descriptorFixedBytes + nameLen + ownerLen
	if len(buf) < total {
		return Descriptor{}, 0, fmt.Errorf("%w: descriptor strings truncated", ErrBadArgs)
	}
	d.Name = string(buf[descriptorFixedBytes : descriptorFixedBytes+nameLen])
	d.Owner = string(buf[descriptorFixedBytes+nameLen : total])
	return d, total, nil
}

// EncodeDescriptors encodes a context directory: the concatenation of the
// records of the objects in a context (§5.6).
func EncodeDescriptors(list []Descriptor) []byte {
	n := 0
	for i := range list {
		n += list[i].EncodedSize()
	}
	buf := make([]byte, 0, n)
	for i := range list {
		buf = list[i].AppendEncoded(buf)
	}
	return buf
}

// DecodeDescriptors decodes a whole context directory stream.
func DecodeDescriptors(buf []byte) ([]Descriptor, error) {
	var out []Descriptor
	for len(buf) > 0 {
		d, n, err := DecodeDescriptor(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		buf = buf[n:]
	}
	return out, nil
}
