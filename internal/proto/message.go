// Package proto defines the V-System message standards (§3.2 of the
// paper): the fixed 32-byte request/reply message format with an optional
// appended segment, the operation and reply codes, the standard fields of
// CSname requests (§5.3), and the typed object-description records
// returned by query operations and context directories (Figure 3, §5.5-5.6).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderBytes is the size of the fixed message header on the wire: the V
// kernel's 32-byte message (operation code, flags, six 32-bit parameter
// words, and the segment length).
const HeaderBytes = 32

// MaxSegmentBytes bounds the appended segment of a single message; larger
// transfers use MoveTo/MoveFrom.
const MaxSegmentBytes = 1 << 16

// Code is a 16-bit operation code (in request messages) or reply code (in
// reply messages). It occupies the first field of every message and acts
// as the tag for the variant part, like a Pascal variant-record tag.
type Code uint16

// Message is a V message: a fixed header of an operation/reply code, a
// flags word, and six 32-bit parameter words, plus an optional byte
// segment appended to the message. The interpretation of F and Segment is
// specified by Op.
type Message struct {
	Op      Code
	Flags   uint16
	F       [6]uint32
	Segment []byte
}

// ErrShortMessage is returned when unmarshalling from a buffer smaller
// than the fixed header.
var ErrShortMessage = errors.New("proto: buffer shorter than message header")

// ErrSegmentTooLarge is returned when a segment exceeds MaxSegmentBytes.
var ErrSegmentTooLarge = errors.New("proto: segment too large")

// WireSize is the total size of the message on the wire.
func (m *Message) WireSize() int { return HeaderBytes + len(m.Segment) }

// Marshal encodes the message into wire format.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Segment) > MaxSegmentBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrSegmentTooLarge, len(m.Segment))
	}
	buf := make([]byte, HeaderBytes+len(m.Segment))
	binary.BigEndian.PutUint16(buf[0:], uint16(m.Op))
	binary.BigEndian.PutUint16(buf[2:], m.Flags)
	for i, f := range m.F {
		binary.BigEndian.PutUint32(buf[4+4*i:], f)
	}
	binary.BigEndian.PutUint32(buf[28:], uint32(len(m.Segment)))
	copy(buf[HeaderBytes:], m.Segment)
	return buf, nil
}

// Unmarshal decodes a message from wire format.
func Unmarshal(buf []byte) (*Message, error) {
	if len(buf) < HeaderBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortMessage, len(buf))
	}
	m := &Message{
		Op:    Code(binary.BigEndian.Uint16(buf[0:])),
		Flags: binary.BigEndian.Uint16(buf[2:]),
	}
	for i := range m.F {
		m.F[i] = binary.BigEndian.Uint32(buf[4+4*i:])
	}
	segLen := binary.BigEndian.Uint32(buf[28:])
	if segLen > MaxSegmentBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrSegmentTooLarge, segLen)
	}
	if int(segLen) > len(buf)-HeaderBytes {
		return nil, fmt.Errorf("%w: segment length %d exceeds buffer", ErrShortMessage, segLen)
	}
	if segLen > 0 {
		m.Segment = make([]byte, segLen)
		copy(m.Segment, buf[HeaderBytes:HeaderBytes+int(segLen)])
	}
	return m, nil
}

// Clone returns a deep copy of the message, used when a message is
// delivered to multiple group members.
func (m *Message) Clone() *Message {
	c := *m
	if m.Segment != nil {
		c.Segment = make([]byte, len(m.Segment))
		copy(c.Segment, m.Segment)
	}
	return &c
}

// NewReply builds a reply message with the given reply code. Reply
// messages reuse the message structure, with the reply code in the code
// field (§3.2).
func NewReply(code Code) *Message { return &Message{Op: code} }
