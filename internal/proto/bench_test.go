package proto

import "testing"

func BenchmarkMessageMarshal(b *testing.B) {
	m := &Message{Op: OpCreateInstance, F: [6]uint32{1, 2, 3, 4, 5, 6}, Segment: []byte("users/mann/naming.mss")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageUnmarshal(b *testing.B) {
	m := &Message{Op: OpCreateInstance, F: [6]uint32{1, 2, 3, 4, 5, 6}, Segment: []byte("users/mann/naming.mss")}
	buf, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescriptorEncode(b *testing.B) {
	d := Descriptor{Tag: TagFile, ObjectID: 7, Size: 4096, Name: "naming.mss", Owner: "cheriton"}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = d.AppendEncoded(buf[:0])
	}
}

func BenchmarkDirectoryStreamDecode(b *testing.B) {
	records := make([]Descriptor, 100)
	for i := range records {
		records[i] = Descriptor{Tag: TagFile, ObjectID: uint32(i), Name: "somefilename.txt"}
	}
	stream := EncodeDescriptors(records)
	b.ReportAllocs()
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDescriptors(stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetCSName(b *testing.B) {
	m := &Message{Op: OpQueryObject}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SetCSName(m, 3, "users/mann/naming.mss")
	}
}
