package proto

import "fmt"

// Standard CSname request field conventions (§5.3). Every CSname request
// carries, at fixed positions independent of the operation code:
//
//	F[0]  context identifier in which interpretation (re)starts
//	F[1]  index into the name at which interpretation is to begin
//	F[2]  length of the name in bytes
//	Segment[0:F[2]]  the name itself
//
// The server-pid half of the context is implicit: it is the process the
// message is sent (or forwarded) to. The remaining fields F[3..5] and any
// segment bytes past the name belong to the variant part of the request.
const (
	fieldContext = 0
	fieldIndex   = 1
	fieldNameLen = 2
)

// SetCSName initializes the standard CSname fields of a request: the full
// name in the segment, interpretation starting at index 0 in context ctx.
// Any existing variant segment data is discarded, but the segment's
// backing array is reused when it has capacity, so re-encoding a request
// into a recycled message does not allocate.
func SetCSName(m *Message, ctx uint32, name string) {
	m.F[fieldContext] = ctx
	m.F[fieldIndex] = 0
	m.F[fieldNameLen] = uint32(len(name))
	m.Segment = append(m.Segment[:0], name...)
}

// CSNameContext returns the context id field of a CSname request.
func CSNameContext(m *Message) uint32 { return m.F[fieldContext] }

// CSNameIndex returns the current interpretation index of a CSname
// request.
func CSNameIndex(m *Message) int { return int(m.F[fieldIndex]) }

// CSName returns the full name carried by the request and the index at
// which interpretation should continue. It fails if the standard fields
// are inconsistent with the segment.
func CSName(m *Message) (name string, index int, err error) {
	n := int(m.F[fieldNameLen])
	if n > len(m.Segment) {
		return "", 0, fmt.Errorf("%w: name length %d exceeds segment %d", ErrBadArgs, n, len(m.Segment))
	}
	idx := int(m.F[fieldIndex])
	if idx > n {
		return "", 0, fmt.Errorf("%w: name index %d exceeds name length %d", ErrBadArgs, idx, n)
	}
	return string(m.Segment[:n]), idx, nil
}

// RewriteCSName updates the interpretation state of a request before it is
// forwarded to the server implementing the next context (§5.4): the
// context id field is set to the new current context and the name index to
// the first byte not yet parsed.
func RewriteCSName(m *Message, ctx uint32, index int) {
	m.F[fieldContext] = ctx
	m.F[fieldIndex] = uint32(index)
}

// SetRenameNames encodes an OpRenameObject request: the old name occupies
// the standard name fields; the new name follows it in the segment, with
// its length in F[3]. Both names are interpreted by the receiving server.
func SetRenameNames(m *Message, ctx uint32, oldName, newName string) {
	SetCSName(m, ctx, oldName)
	m.F[3] = uint32(len(newName))
	m.Segment = append(m.Segment, newName...)
}

// RenameNewName extracts the new name from an OpRenameObject request.
func RenameNewName(m *Message) (string, error) {
	oldLen := int(m.F[fieldNameLen])
	newLen := int(m.F[3])
	if oldLen+newLen > len(m.Segment) {
		return "", fmt.Errorf("%w: rename names exceed segment", ErrBadArgs)
	}
	return string(m.Segment[oldLen : oldLen+newLen]), nil
}

// AddContextName target encodings. An added name may bind either to a
// static (server-pid, context-id) pair, or dynamically to a
// (service, well-known-context) pair that is re-resolved with GetPid each
// time the name is used (§6).
const (
	// FlagDynamicBinding marks an OpAddContextName request whose target
	// is a (service, well-known-context) pair rather than a concrete pid.
	FlagDynamicBinding uint16 = 1 << 0
)

// SetAddContextTarget encodes the static target of an OpAddContextName:
// F[3] = server pid, F[4] = context id on that server.
func SetAddContextTarget(m *Message, serverPid uint32, ctx uint32) {
	m.Flags &^= FlagDynamicBinding
	m.F[3] = serverPid
	m.F[4] = ctx
}

// SetAddContextDynamicTarget encodes the dynamic target of an
// OpAddContextName: F[3] = service code, F[4] = well-known context id.
func SetAddContextDynamicTarget(m *Message, service uint32, wellKnownCtx uint32) {
	m.Flags |= FlagDynamicBinding
	m.F[3] = service
	m.F[4] = wellKnownCtx
}

// AddContextTarget decodes an OpAddContextName target.
func AddContextTarget(m *Message) (dynamic bool, pidOrService uint32, ctx uint32) {
	return m.Flags&FlagDynamicBinding != 0, m.F[3], m.F[4]
}

// Name-fault reporting (extension; see DESIGN.md). The paper's §7 notes
// that when a lookup fails after a name has been forwarded through a
// series of servers, it is difficult to properly inform the user. Failure
// replies to CSname requests therefore carry where interpretation died:
//
//	F[1]  byte index of the failing component within the name
//	F[2]  pid of the server reporting the failure
//	Segment  the failing component
//
// A zero F[2] marks a failure reply without fault details.

// SetNameFault records fault details in a failure reply.
func SetNameFault(m *Message, index int, server uint32, component string) {
	m.F[1] = uint32(index)
	m.F[2] = server
	m.Segment = []byte(component)
}

// NameFault extracts fault details from a failure reply, reporting ok
// false when none were recorded.
func NameFault(m *Message) (index int, server uint32, component string, ok bool) {
	if m.Op == ReplyOK || m.F[2] == 0 {
		return 0, 0, "", false
	}
	return int(m.F[1]), m.F[2], string(m.Segment), true
}

// Instance open modes for OpCreateInstance, carried in F[3].
const (
	ModeRead      uint32 = 1 << 0
	ModeWrite     uint32 = 1 << 1
	ModeCreate    uint32 = 1 << 2 // create the object if the last component is unbound
	ModeAppend    uint32 = 1 << 3
	ModeDirectory uint32 = 1 << 4 // open the context directory of the named context (§5.6)
	ModeTruncate  uint32 = 1 << 5
)

// Context-directory pattern matching (the extension §5.6 proposes: have
// the server include only matching objects in the returned directory).
// The pattern follows the name in the segment of a directory-mode
// OpCreateInstance request, with its length in F[5].

// SetDirPattern appends a match pattern to a directory-open request. Call
// after SetCSName, which owns the front of the segment.
func SetDirPattern(m *Message, pattern string) {
	m.F[5] = uint32(len(pattern))
	m.Segment = append(m.Segment, pattern...)
}

// DirPattern extracts the match pattern from a directory-open request;
// empty means "all objects".
func DirPattern(m *Message) (string, error) {
	n := int(m.F[5])
	if n == 0 {
		return "", nil
	}
	nameLen := int(m.F[fieldNameLen])
	if nameLen+n > len(m.Segment) {
		return "", fmt.Errorf("%w: pattern exceeds segment", ErrBadArgs)
	}
	return string(m.Segment[nameLen : nameLen+n]), nil
}

// SetOpenMode stores the open mode of an OpCreateInstance request.
func SetOpenMode(m *Message, mode uint32) { m.F[3] = mode }

// OpenMode returns the open mode of an OpCreateInstance request.
func OpenMode(m *Message) uint32 { return m.F[3] }

// Program-execution environment (§6: "When a new program is executed, it
// is passed a process identifier and context identifier specifying its
// current context"). The variant part of OpExecProgram carries the
// invoker's naming state: F[3] = the prefix server pid, F[4] = the
// current context's server pid, F[5] = the current context id.

// SetExecEnvironment stores the invoker's naming state in an
// OpExecProgram request.
func SetExecEnvironment(m *Message, prefixServer, currentServer, currentCtx uint32) {
	m.F[3] = prefixServer
	m.F[4] = currentServer
	m.F[5] = currentCtx
}

// ExecEnvironment extracts the invoker's naming state.
func ExecEnvironment(m *Message) (prefixServer, currentServer, currentCtx uint32) {
	return m.F[3], m.F[4], m.F[5]
}

// InstanceInfo describes an open instance, carried in the reply to
// OpCreateInstance and OpQueryInstance.
type InstanceInfo struct {
	ID        uint16 // object instance identifier (§4.3)
	SizeBytes uint32
	BlockSize uint32
	Flags     uint32 // ModeRead/ModeWrite capabilities of the instance
}

// SetInstanceInfo stores instance parameters into a reply message:
// F[0]=id, F[1]=size, F[2]=block size, F[3]=flags.
func SetInstanceInfo(m *Message, info InstanceInfo) {
	m.F[0] = uint32(info.ID)
	m.F[1] = info.SizeBytes
	m.F[2] = info.BlockSize
	m.F[3] = info.Flags
}

// GetInstanceInfo extracts instance parameters from a reply message.
func GetInstanceInfo(m *Message) InstanceInfo {
	return InstanceInfo{
		ID:        uint16(m.F[0]),
		SizeBytes: m.F[1],
		BlockSize: m.F[2],
		Flags:     m.F[3],
	}
}

// SetInstanceOwner records (in F[4]) the pid of the server implementing a
// just-opened instance. The reply must carry it explicitly because an
// open may have been forwarded: the instance lives at the final server,
// not the one the client first sent to (§5.4).
func SetInstanceOwner(m *Message, pid uint32) { m.F[4] = pid }

// InstanceOwner returns the owning server pid from an open reply, or 0 if
// the server did not set one.
func InstanceOwner(m *Message) uint32 { return m.F[4] }

// SetMapContextReply stores the resolved (server-pid, context-id) pair in
// an OpMapContext reply: F[0]=context id, F[1]=server pid. The pid must be
// explicit in the reply because the replying server may not be the one the
// request was originally sent to (forwarding, §5.4).
func SetMapContextReply(m *Message, serverPid uint32, ctx uint32) {
	m.F[0] = ctx
	m.F[1] = serverPid
}

// GetMapContextReply extracts the resolved pair from an OpMapContext
// reply.
func GetMapContextReply(m *Message) (serverPid uint32, ctx uint32) {
	return m.F[1], m.F[0]
}
