package proto

import (
	"errors"
	"fmt"
)

// Reply codes occupy the range below 0x0100. ReplyOK is the standard
// success reply; the others are the standard system failure replies
// indicating why a request failed (§3.2).
const (
	ReplyOK Code = iota + 1
	ReplyNotFound
	ReplyIllegalRequest
	ReplyNoPermission
	ReplyBadContext
	ReplyNotAContext
	ReplyEndOfFile
	ReplyNoServerResources
	ReplyModeNotSupported
	ReplyBadArgs
	ReplyDeviceError
	ReplyTimeout
	ReplyNonexistentProcess
	ReplyDuplicateName
	ReplyNotEmpty
	ReplyRetry
	// ReplyNotLeader is returned by a replication-group member asked to
	// perform an operation only the group leader may serve. F[1] carries a
	// leader hint: the pid of the member the replier believes is leader,
	// or 0 when no live leader is known (§11 of PROTOCOL.md).
	ReplyNotLeader
)

// Request codes carrying a character-string name (CSname requests, §5.1).
// Every one of these uses the standard CSname fields (see csname.go) and
// can therefore be partially interpreted and forwarded by any CSNH server
// even if the server does not understand the operation itself (§5.3).
const (
	// OpMapContext maps a CSname that names a context to a
	// (server-pid, context-id) pair (§5.7).
	OpMapContext Code = iota + 0x0100
	// OpQueryObject returns the typed description record of the named
	// object (§5.5).
	OpQueryObject
	// OpModifyObject overwrites modifiable fields of the named object's
	// description with the record in the request (§5.5).
	OpModifyObject
	// OpRemoveObject deletes the named object.
	OpRemoveObject
	// OpRenameObject renames the named object; the new name follows the
	// old in the segment (see SetRenameNames).
	OpRenameObject
	// OpAddContextName defines a name for an existing context in another
	// server — optional, ordinarily implemented only by context prefix
	// servers (§5.7).
	OpAddContextName
	// OpDeleteContextName removes such a definition — optional.
	OpDeleteContextName
	// OpCreateInstance opens the named file-like object under the V I/O
	// protocol, returning an instance identifier (§3.2, §5.6).
	OpCreateInstance
	// OpLoadProgram transfers the named program image into the
	// requester's memory with MoveTo (§3.1).
	OpLoadProgram
	// OpExecProgram asks a program manager to execute the named program.
	OpExecProgram
	// OpLinkObject gives the named object an additional name on the same
	// server (the new name follows the old in the segment, as in
	// OpRenameObject) — the aliasing that makes the §6 inverse mapping
	// many-to-one.
	OpLinkObject
)

// Request codes that do not carry names.
const (
	// OpGetContextName maps a context id back to a CSname — the inverse
	// mapping (§5.7, §6).
	OpGetContextName Code = iota + 0x0200
	// OpGetInstanceName maps an object instance id back to a CSname.
	OpGetInstanceName
	// OpQueryInstance returns the instance parameters of an open
	// instance.
	OpQueryInstance
	// OpReadInstance reads one block of an open instance.
	OpReadInstance
	// OpWriteInstance writes one block of an open instance.
	OpWriteInstance
	// OpReleaseInstance closes an open instance.
	OpReleaseInstance
	// OpEcho replies with the request unchanged; used by the IPC timing
	// experiments.
	OpEcho
	// OpKillProgram terminates a program by object id (program manager).
	OpKillProgram
	// OpCacheInvalidate is the lease-callback message (see lease.go): a
	// granting server tells a cache holder that a name's binding changed.
	// The segment carries the name; F[4]/F[5] the commit time.
	OpCacheInvalidate
)

// Request codes of the baseline centralized name server (§2.1-2.2
// comparison; not part of the V model).
const (
	OpNSRegister Code = iota + 0x0300
	OpNSLookup
	OpNSUnregister
	OpNSList
	// OpOpenByUID opens an object by the low-level globally-unique
	// identifier a centralized name server hands out.
	OpOpenByUID
	// OpRemoveByUID deletes an object by low-level identifier (baseline
	// model only; the V model deletes by name at the owning server).
	OpRemoveByUID
)

// Request codes of the replication substrate (internal/replica): the
// Raft-style consensus messages that keep a group of name servers
// byte-identical. They ride the ordinary Send/Receive/Reply transaction,
// so they are costed, traced and metered like any other V message.
const (
	// OpReplicaAppend replicates log entries (and commit state) from the
	// leader to a follower; an empty-entry append is the leader's
	// announcement/heartbeat.
	OpReplicaAppend Code = iota + 0x0400
	// OpReplicaVote requests an election vote from a peer.
	OpReplicaVote
	// OpReplicaElect instructs a member (from the group monitor) to stand
	// for election; the member runs the vote rounds synchronously.
	OpReplicaElect
	// OpReplicaSync instructs the leader (from the group monitor) to
	// bring a rejoined member up to date via snapshot install.
	OpReplicaSync
	// OpReplicaSnapshot installs one chunk of a state-machine snapshot on
	// a follower.
	OpReplicaSnapshot
	// OpReplicaPropose submits a state-machine command to the leader for
	// replication; the reply is the command's apply result.
	OpReplicaPropose
	// OpReplicaStatus reports a member's term, role, commit index and
	// leader view (diagnostics and tests).
	OpReplicaStatus
)

// SetLeaderHint records a leader hint on a ReplyNotLeader message.
func SetLeaderHint(m *Message, pid uint32) { m.F[1] = pid }

// LeaderHint returns the leader hint of a ReplyNotLeader message, 0 when
// the replier knew no live leader.
func LeaderHint(m *Message) uint32 { return m.F[1] }

// IsReply reports whether c is a reply code.
func (c Code) IsReply() bool { return c < 0x0100 }

// IsCSNameOp reports whether c is a request that carries a CSname and so
// follows the standard CSname field conventions.
func (c Code) IsCSNameOp() bool {
	return c >= OpMapContext && c <= OpLinkObject
}

// String names the code for diagnostics.
func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Code(0x%04x)", uint16(c))
}

var codeNames = map[Code]string{
	ReplyOK:                 "OK",
	ReplyNotFound:           "NotFound",
	ReplyIllegalRequest:     "IllegalRequest",
	ReplyNoPermission:       "NoPermission",
	ReplyBadContext:         "BadContext",
	ReplyNotAContext:        "NotAContext",
	ReplyEndOfFile:          "EndOfFile",
	ReplyNoServerResources:  "NoServerResources",
	ReplyModeNotSupported:   "ModeNotSupported",
	ReplyBadArgs:            "BadArgs",
	ReplyDeviceError:        "DeviceError",
	ReplyTimeout:            "Timeout",
	ReplyNonexistentProcess: "NonexistentProcess",
	ReplyDuplicateName:      "DuplicateName",
	ReplyNotEmpty:           "NotEmpty",
	ReplyRetry:              "Retry",
	ReplyNotLeader:          "NotLeader",

	OpMapContext:        "MapContext",
	OpQueryObject:       "QueryObject",
	OpModifyObject:      "ModifyObject",
	OpRemoveObject:      "RemoveObject",
	OpRenameObject:      "RenameObject",
	OpAddContextName:    "AddContextName",
	OpDeleteContextName: "DeleteContextName",
	OpCreateInstance:    "CreateInstance",
	OpLoadProgram:       "LoadProgram",
	OpExecProgram:       "ExecProgram",
	OpLinkObject:        "LinkObject",

	OpGetContextName:  "GetContextName",
	OpGetInstanceName: "GetInstanceName",
	OpQueryInstance:   "QueryInstance",
	OpReadInstance:    "ReadInstance",
	OpWriteInstance:   "WriteInstance",
	OpReleaseInstance: "ReleaseInstance",
	OpEcho:            "Echo",
	OpKillProgram:     "KillProgram",
	OpCacheInvalidate: "CacheInvalidate",

	OpNSRegister:   "NSRegister",
	OpNSLookup:     "NSLookup",
	OpNSUnregister: "NSUnregister",
	OpNSList:       "NSList",
	OpOpenByUID:    "OpenByUID",
	OpRemoveByUID:  "RemoveByUID",

	OpReplicaAppend:   "ReplicaAppend",
	OpReplicaVote:     "ReplicaVote",
	OpReplicaElect:    "ReplicaElect",
	OpReplicaSync:     "ReplicaSync",
	OpReplicaSnapshot: "ReplicaSnapshot",
	OpReplicaPropose:  "ReplicaPropose",
	OpReplicaStatus:   "ReplicaStatus",
}

// Standard error values corresponding to the standard failure replies,
// matchable with errors.Is.
var (
	ErrNotFound           = errors.New("nonexistent name")
	ErrIllegalRequest     = errors.New("illegal request")
	ErrNoPermission       = errors.New("no permission")
	ErrBadContext         = errors.New("invalid context")
	ErrNotAContext        = errors.New("name does not specify a context")
	ErrEndOfFile          = errors.New("end of file")
	ErrNoServerResources  = errors.New("no server resources")
	ErrModeNotSupported   = errors.New("mode not supported")
	ErrBadArgs            = errors.New("bad arguments")
	ErrDeviceError        = errors.New("device error")
	ErrTimeout            = errors.New("timeout")
	ErrNonexistentProcess = errors.New("nonexistent process")
	ErrDuplicateName      = errors.New("duplicate name")
	ErrNotEmpty           = errors.New("context not empty")
	ErrRetry              = errors.New("retry")
	ErrNotLeader          = errors.New("not the replication-group leader")
)

var replyErrors = map[Code]error{
	ReplyNotFound:           ErrNotFound,
	ReplyIllegalRequest:     ErrIllegalRequest,
	ReplyNoPermission:       ErrNoPermission,
	ReplyBadContext:         ErrBadContext,
	ReplyNotAContext:        ErrNotAContext,
	ReplyEndOfFile:          ErrEndOfFile,
	ReplyNoServerResources:  ErrNoServerResources,
	ReplyModeNotSupported:   ErrModeNotSupported,
	ReplyBadArgs:            ErrBadArgs,
	ReplyDeviceError:        ErrDeviceError,
	ReplyTimeout:            ErrTimeout,
	ReplyNonexistentProcess: ErrNonexistentProcess,
	ReplyDuplicateName:      ErrDuplicateName,
	ReplyNotEmpty:           ErrNotEmpty,
	ReplyRetry:              ErrRetry,
	ReplyNotLeader:          ErrNotLeader,
}

// ReplyError maps a reply code to a standard error, or nil for ReplyOK.
// Unknown failure codes map to ErrIllegalRequest.
func ReplyError(c Code) error {
	if c == ReplyOK {
		return nil
	}
	if err, ok := replyErrors[c]; ok {
		return err
	}
	return fmt.Errorf("%w: unknown reply code %v", ErrIllegalRequest, c)
}

// ErrorReply maps a standard error back to its reply code; unrecognized
// errors map to ReplyIllegalRequest.
func ErrorReply(err error) Code {
	if err == nil {
		return ReplyOK
	}
	for code, e := range replyErrors {
		if errors.Is(err, e) {
			return code
		}
	}
	return ReplyIllegalRequest
}
