package proto

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageMarshalRoundTrip(t *testing.T) {
	m := &Message{
		Op:      OpCreateInstance,
		Flags:   0x0101,
		F:       [6]uint32{1, 2, 3, 4, 5, 6},
		Segment: []byte("users/mann/naming.mss"),
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.WireSize() {
		t.Fatalf("marshalled %d bytes, WireSize says %d", len(buf), m.WireSize())
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != m.Op || got.Flags != m.Flags || got.F != m.F || string(got.Segment) != string(m.Segment) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestMessageMarshalRoundTripProperty(t *testing.T) {
	f := func(op, flags uint16, fields [6]uint32, seg []byte) bool {
		if len(seg) > MaxSegmentBytes {
			seg = seg[:MaxSegmentBytes]
		}
		m := &Message{Op: Code(op), Flags: flags, F: fields, Segment: seg}
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return got.Op == m.Op && got.Flags == m.Flags && got.F == m.F &&
			string(got.Segment) == string(m.Segment)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageHeaderIs32Bytes(t *testing.T) {
	m := &Message{Op: OpEcho}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 32 {
		t.Fatalf("segmentless message = %d bytes on the wire, want the V kernel's 32", len(buf))
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short buffer err = %v", err)
	}
}

func TestUnmarshalTruncatedSegment(t *testing.T) {
	m := &Message{Op: OpEcho, Segment: []byte("hello")}
	buf, _ := m.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-2]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("truncated segment err = %v", err)
	}
}

func TestMarshalOversizeSegment(t *testing.T) {
	m := &Message{Op: OpEcho, Segment: make([]byte, MaxSegmentBytes+1)}
	if _, err := m.Marshal(); !errors.Is(err, ErrSegmentTooLarge) {
		t.Fatalf("oversize segment err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := &Message{Op: OpEcho, Segment: []byte("abc")}
	c := m.Clone()
	c.Segment[0] = 'z'
	if m.Segment[0] != 'a' {
		t.Fatal("Clone must copy the segment")
	}
}

func TestCSNameFields(t *testing.T) {
	m := &Message{Op: OpQueryObject}
	SetCSName(m, 7, "a/b/c")
	name, idx, err := CSName(m)
	if err != nil {
		t.Fatal(err)
	}
	if name != "a/b/c" || idx != 0 || CSNameContext(m) != 7 {
		t.Fatalf("got name=%q idx=%d ctx=%d", name, idx, CSNameContext(m))
	}
	RewriteCSName(m, 9, 2)
	name, idx, err = CSName(m)
	if err != nil {
		t.Fatal(err)
	}
	if name != "a/b/c" || idx != 2 || CSNameContext(m) != 9 {
		t.Fatalf("after rewrite: name=%q idx=%d ctx=%d", name, idx, CSNameContext(m))
	}
}

func TestCSNameBadFields(t *testing.T) {
	m := &Message{Op: OpQueryObject}
	SetCSName(m, 0, "abc")
	m.F[2] = 99 // length beyond segment
	if _, _, err := CSName(m); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("bad length err = %v", err)
	}
	SetCSName(m, 0, "abc")
	m.F[1] = 10 // index beyond length
	if _, _, err := CSName(m); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("bad index err = %v", err)
	}
}

func TestCSNameArbitraryBytes(t *testing.T) {
	// CSnames are byte sequences; arbitrary bytes including NUL and
	// non-ASCII must survive (§5.1).
	f := func(raw []byte) bool {
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		m := &Message{Op: OpQueryObject}
		SetCSName(m, 1, string(raw))
		name, _, err := CSName(m)
		return err == nil && name == string(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenameNames(t *testing.T) {
	m := &Message{Op: OpRenameObject}
	SetRenameNames(m, 3, "old/name", "new-name")
	oldName, _, err := CSName(m)
	if err != nil {
		t.Fatal(err)
	}
	newName, err := RenameNewName(m)
	if err != nil {
		t.Fatal(err)
	}
	if oldName != "old/name" || newName != "new-name" {
		t.Fatalf("got %q -> %q", oldName, newName)
	}
}

func TestRenameNewNameTruncated(t *testing.T) {
	m := &Message{Op: OpRenameObject}
	SetRenameNames(m, 3, "old", "new")
	m.F[3] = 50
	if _, err := RenameNewName(m); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("truncated rename err = %v", err)
	}
}

func TestAddContextTargets(t *testing.T) {
	m := &Message{Op: OpAddContextName}
	SetAddContextTarget(m, 0xAABBCCDD, 42)
	dyn, pid, ctx := AddContextTarget(m)
	if dyn || pid != 0xAABBCCDD || ctx != 42 {
		t.Fatalf("static target decoded as dyn=%v pid=%x ctx=%d", dyn, pid, ctx)
	}
	SetAddContextDynamicTarget(m, 5, 0xFFFF0002)
	dyn, svc, wctx := AddContextTarget(m)
	if !dyn || svc != 5 || wctx != 0xFFFF0002 {
		t.Fatalf("dynamic target decoded as dyn=%v svc=%d ctx=%x", dyn, svc, wctx)
	}
	// Re-setting static clears the dynamic flag.
	SetAddContextTarget(m, 1, 2)
	if dyn, _, _ := AddContextTarget(m); dyn {
		t.Fatal("static target must clear the dynamic flag")
	}
}

func TestInstanceInfoRoundTrip(t *testing.T) {
	f := func(id uint16, size, bs, flags uint32) bool {
		m := NewReply(ReplyOK)
		SetInstanceInfo(m, InstanceInfo{ID: id, SizeBytes: size, BlockSize: bs, Flags: flags})
		got := GetInstanceInfo(m)
		return got.ID == id && got.SizeBytes == size && got.BlockSize == bs && got.Flags == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapContextReplyRoundTrip(t *testing.T) {
	m := NewReply(ReplyOK)
	SetMapContextReply(m, 0x00020005, 77)
	pid, ctx := GetMapContextReply(m)
	if pid != 0x00020005 || ctx != 77 {
		t.Fatalf("got pid=%x ctx=%d", pid, ctx)
	}
}

func TestIsCSNameOp(t *testing.T) {
	for _, c := range []Code{OpMapContext, OpQueryObject, OpModifyObject, OpRemoveObject,
		OpRenameObject, OpAddContextName, OpDeleteContextName, OpCreateInstance,
		OpLoadProgram, OpExecProgram} {
		if !c.IsCSNameOp() {
			t.Errorf("%v should be a CSname op", c)
		}
	}
	for _, c := range []Code{OpReadInstance, OpEcho, OpGetContextName, ReplyOK, OpNSLookup} {
		if c.IsCSNameOp() {
			t.Errorf("%v should not be a CSname op", c)
		}
	}
}

func TestIsReply(t *testing.T) {
	if !ReplyNotFound.IsReply() || OpEcho.IsReply() {
		t.Fatal("IsReply misclassifies codes")
	}
}

func TestReplyErrorMapping(t *testing.T) {
	if ReplyError(ReplyOK) != nil {
		t.Fatal("ReplyOK must map to nil error")
	}
	if !errors.Is(ReplyError(ReplyNotFound), ErrNotFound) {
		t.Fatal("ReplyNotFound must map to ErrNotFound")
	}
	if err := ReplyError(Code(0xFF)); !errors.Is(err, ErrIllegalRequest) {
		t.Fatalf("unknown reply code err = %v", err)
	}
}

func TestErrorReplyInverse(t *testing.T) {
	// Property: ErrorReply inverts ReplyError for all standard codes.
	for code := range replyErrors {
		if got := ErrorReply(ReplyError(code)); got != code {
			t.Errorf("ErrorReply(ReplyError(%v)) = %v", code, got)
		}
	}
	if ErrorReply(nil) != ReplyOK {
		t.Fatal("ErrorReply(nil) must be ReplyOK")
	}
	if ErrorReply(errors.New("mystery")) != ReplyIllegalRequest {
		t.Fatal("unknown errors must map to ReplyIllegalRequest")
	}
}

func TestCodeString(t *testing.T) {
	if OpCreateInstance.String() != "CreateInstance" {
		t.Fatalf("String = %q", OpCreateInstance.String())
	}
	if !strings.Contains(Code(0x7777).String(), "7777") {
		t.Fatal("unknown codes should print their value")
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := Descriptor{
		Tag:          TagFile,
		Perms:        PermRead | PermWrite,
		ObjectID:     1234,
		Size:         4096,
		Modified:     987654321,
		TypeSpecific: [2]uint32{11, 22},
		Name:         "naming.mss",
		Owner:        "cheriton",
	}
	buf := d.AppendEncoded(nil)
	if len(buf) != d.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), d.EncodedSize())
	}
	got, n, err := DecodeDescriptor(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || got != d {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDescriptorRoundTripProperty(t *testing.T) {
	f := func(tag, perms uint16, id, size uint32, mod uint64, ts [2]uint32, name, owner string) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		if len(owner) > 1000 {
			owner = owner[:1000]
		}
		d := Descriptor{
			Tag: DescriptorTag(tag), Perms: perms, ObjectID: id, Size: size,
			Modified: mod, TypeSpecific: ts, Name: name, Owner: owner,
		}
		got, n, err := DecodeDescriptor(d.AppendEncoded(nil))
		return err == nil && n == d.EncodedSize() && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorStreamRoundTrip(t *testing.T) {
	list := []Descriptor{
		{Tag: TagFile, Name: "a"},
		{Tag: TagDirectory, Name: "subdir", Owner: "mann"},
		{Tag: TagLink, Name: "other", TypeSpecific: [2]uint32{0x10001, 3}},
	}
	got, err := DecodeDescriptors(EncodeDescriptors(list))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(list) {
		t.Fatalf("decoded %d records, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], list[i])
		}
	}
}

func TestDecodeDescriptorsEmpty(t *testing.T) {
	got, err := DecodeDescriptors(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %v", got, err)
	}
}

func TestDecodeDescriptorsCorrupt(t *testing.T) {
	d := Descriptor{Tag: TagFile, Name: "x"}
	buf := d.AppendEncoded(nil)
	if _, err := DecodeDescriptors(buf[:len(buf)-1]); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("corrupt stream err = %v", err)
	}
}

func TestDescriptorTagStrings(t *testing.T) {
	tags := []DescriptorTag{TagFile, TagDirectory, TagContextPrefix, TagTerminal,
		TagPrintJob, TagTCPConnection, TagProgram, TagMailbox, TagLink, TagServiceBinding}
	seen := make(map[string]bool, len(tags))
	for _, tag := range tags {
		s := tag.String()
		if s == "" || strings.HasPrefix(s, "tag(") {
			t.Errorf("tag %d has no name", tag)
		}
		if seen[s] {
			t.Errorf("duplicate tag name %q", s)
		}
		seen[s] = true
	}
	if DescriptorTag(999).String() != "tag(999)" {
		t.Fatal("unknown tags should print their value")
	}
}

func TestOpenModeRoundTrip(t *testing.T) {
	m := &Message{Op: OpCreateInstance}
	SetOpenMode(m, ModeRead|ModeCreate)
	if OpenMode(m) != ModeRead|ModeCreate {
		t.Fatal("open mode round trip failed")
	}
}
