package mailserver

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("services")
	s, err := Start(host)
	if err != nil {
		t.Fatal(err)
	}
	clientHost := k.NewHost("ws")
	client, err := clientHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Destroy() })
	return s, client
}

func TestValidAddress(t *testing.T) {
	good := []string{"cheriton@su-score.ARPA", "a@b", "mann@v.stanford.edu"}
	bad := []string{"", "noat", "@host", "user@", "two@@signs", "a@b@c"}
	for _, a := range good {
		if !ValidAddress(a) {
			t.Errorf("ValidAddress(%q) = false", a)
		}
	}
	for _, a := range bad {
		if ValidAddress(a) {
			t.Errorf("ValidAddress(%q) = true", a)
		}
	}
}

func TestValidAddressProperty(t *testing.T) {
	// Property: a valid address has exactly one '@' with non-empty sides.
	f := func(local, domain string) bool {
		local = strings.ReplaceAll(local, "@", "")
		domain = strings.ReplaceAll(domain, "@", "")
		addr := local + "@" + domain
		return ValidAddress(addr) == (local != "" && domain != "")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddMailboxValidation(t *testing.T) {
	s, _ := startRig(t)
	if err := s.AddMailbox("bad-address"); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
	if err := s.AddMailbox("a@b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMailbox("a@b"); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
}

func openBox(t *testing.T, client *kernel.Process, s *Server, addr string, mode uint32) *vio.File {
	t.Helper()
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), addr)
	proto.SetOpenMode(req, mode)
	reply, err := client.Send(req, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatalf("open %q: %v", addr, err)
	}
	return vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
}

func TestDeliverAndRead(t *testing.T) {
	s, client := startRig(t)
	if err := s.AddMailbox("mann@v"); err != nil {
		t.Fatal(err)
	}
	f := openBox(t, client, s, "mann@v", proto.ModeWrite)
	if _, err := f.Write([]byte("message one")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("message two")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := s.MessageCount("mann@v")
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	r := openBox(t, client, s, "mann@v", proto.ModeRead)
	got, err := r.ReadAll()
	if err != nil || string(got) != "message one\nmessage two\n" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestWholeAddressIsOneComponent(t *testing.T) {
	// The mail server interprets whole addresses; the dots inside are
	// opaque to the protocol (§5.4 lets servers interpret names any way
	// they choose).
	s, client := startRig(t)
	if err := s.AddMailbox("deep.name@many.dots.example"); err != nil {
		t.Fatal(err)
	}
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "deep.name@many.dots.example")
	reply, err := client.Send(q, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Tag != proto.TagMailbox || d.Name != "deep.name@many.dots.example" {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
}

func TestCreateOnOpen(t *testing.T) {
	s, client := startRig(t)
	f := openBox(t, client, s, "new@box", proto.ModeWrite|proto.ModeCreate)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MessageCount("new@box"); err != nil {
		t.Fatal(err)
	}
	// Creating with an invalid address fails.
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "invalid")
	proto.SetOpenMode(req, proto.ModeWrite|proto.ModeCreate)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyBadArgs {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}

func TestRemoveMailbox(t *testing.T) {
	s, client := startRig(t)
	if err := s.AddMailbox("gone@soon"); err != nil {
		t.Fatal(err)
	}
	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), "gone@soon")
	reply, err := client.Send(rm, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("remove = %v, %v", reply, err)
	}
	if _, err := s.MessageCount("gone@soon"); err == nil {
		t.Fatal("mailbox survived removal")
	}
}

func TestDirectorySortedByAddress(t *testing.T) {
	s, client := startRig(t)
	for _, a := range []string{"zeta@z", "alpha@a", "mid@m"} {
		if err := s.AddMailbox(a); err != nil {
			t.Fatal(err)
		}
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	f := vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil || len(records) != 3 {
		t.Fatalf("records = %v, %v", records, err)
	}
	want := []string{"alpha@a", "mid@m", "zeta@z"}
	for i := range want {
		if records[i].Name != want[i] {
			t.Fatalf("records[%d] = %q", i, records[i].Name)
		}
	}
}

func TestBadContextRejected(t *testing.T) {
	s, client := startRig(t)
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 42, "a@b")
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyBadContext {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}
