package mailserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// TestTeamStressMailServer delivers to per-client mailboxes from many
// concurrent client processes against one mail-server team.
func TestTeamStressMailServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	s, err := Start(k.NewHost("services"), core.WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}

	const clients, msgs = 5, 4
	for i := 0; i < clients; i++ {
		if err := s.AddMailbox(fmt.Sprintf("user%d@v", i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("ws%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			addr := fmt.Sprintf("user%d@v", i)
			for j := 0; j < msgs; j++ {
				req := &proto.Message{Op: proto.OpCreateInstance}
				proto.SetCSName(req, uint32(core.CtxDefault), addr)
				proto.SetOpenMode(req, proto.ModeWrite)
				reply, err := proc.Send(req, s.PID())
				if err != nil || proto.ReplyError(reply.Op) != nil {
					errs <- fmt.Errorf("client %d msg %d open: %v, %v", i, j, reply, err)
					return
				}
				f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
				if _, err := f.Write([]byte(fmt.Sprintf("note %d", j))); err != nil {
					errs <- fmt.Errorf("client %d msg %d write: %w", i, j, err)
					return
				}
				if err := f.Close(); err != nil {
					errs <- fmt.Errorf("client %d msg %d close: %w", i, j, err)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i := 0; i < clients; i++ {
		n, err := s.MessageCount(fmt.Sprintf("user%d@v", i))
		if err != nil || n != msgs {
			t.Fatalf("mailbox %d count = %d, %v", i, n, err)
		}
	}
}
