package mailserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
	"repro/internal/vio"
)

// TestTraceInvariantsMailServer delivers mail in a traced domain and
// checks the trace invariants and the team's handoff spans.
func TestTraceInvariantsMailServer(t *testing.T) {
	d := tracetest.New()
	s, err := Start(d.K.NewHost("services"), core.WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddMailbox("mann@v"); err != nil {
		t.Fatal(err)
	}
	proc, err := d.K.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	const msgs = 2
	for j := 0; j < msgs; j++ {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), "mann@v")
		proto.SetOpenMode(req, proto.ModeWrite)
		reply, err := proc.Send(req, s.PID())
		if err != nil || proto.ReplyError(reply.Op) != nil {
			t.Fatalf("msg %d open: %v, %v", j, reply, err)
		}
		f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
		if _, err := f.Write([]byte("traced note")); err != nil {
			t.Fatalf("msg %d write: %v", j, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("msg %d close: %v", j, err)
		}
	}
	if n, err := s.MessageCount("mann@v"); err != nil || n != msgs {
		t.Fatalf("mailbox count = %d, %v", n, err)
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, msgs*3)
	tracetest.Require(t, spans, trace.KindServe, msgs*3)
	tracetest.Require(t, spans, trace.KindReply, msgs*3)
	tracetest.Require(t, spans, trace.KindHandoff, msgs)
}
