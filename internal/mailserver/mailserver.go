// Package mailserver demonstrates the extensibility claim of the paper
// (§2.2): a pre-existing name space with externally-imposed syntax —
// computer mail addresses like "cheriton@su-score.ARPA" — integrated into
// the V-System by wrapping it in the name-handling protocol, without
// translating the names into low-level universal identifiers.
//
// Mail addresses are flat, opaque names in the server's single context:
// the '@' and dots inside them mean nothing to the protocol, and the
// server interprets whole addresses its own way, as §5.4 permits.
package mailserver

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// mailbox is one user's mailbox.
type mailbox struct {
	id       uint32
	address  string
	messages [][]byte
}

// store interprets mail addresses: a flat context whose component names
// are whole addresses. It rejects hierarchical interpretation — an
// address containing '/' is simply a different mailbox name.
type store struct {
	mu    sync.Mutex
	boxes map[string]*mailbox
	byID  map[uint32]*mailbox
	next  uint32
}

func (st *store) NormalizeContext(ctx core.ContextID) (core.ContextID, error) {
	if ctx != core.CtxDefault {
		return 0, fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	return ctx, nil
}

func (st *store) LookupComponent(_ core.ContextID, component string) (core.Entry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	mb, ok := st.boxes[component]
	if !ok {
		return core.Entry{}, fmt.Errorf("%q: %w", component, proto.ErrNotFound)
	}
	return core.ObjectEntry(proto.TagMailbox, mb.id), nil
}

// Server is the mail registry server.
type Server struct {
	srv  *core.Server
	proc *kernel.Process
	st   *store
	reg  *vio.Registry
}

// Start spawns a mail server on host. Options (e.g. core.WithTeam)
// configure the serving runtime.
func Start(host *kernel.Host, opts ...core.Option) (*Server, error) {
	proc, err := host.NewProcess("mail-server")
	if err != nil {
		return nil, err
	}
	s := &Server{
		proc: proc,
		st:   &store{boxes: make(map[string]*mailbox), byID: make(map[uint32]*mailbox)},
		reg:  vio.NewRegistry(),
	}
	s.srv = core.NewServer(proc, s.st, s, opts...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServiceMail, proc.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the server's single context.
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// AddMailbox registers an address. Addresses follow the foreign
// convention local-part@domain; the server validates only that shape.
func (s *Server) AddMailbox(address string) error {
	if !ValidAddress(address) {
		return fmt.Errorf("%w: %q is not a mail address", proto.ErrBadArgs, address)
	}
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	if _, dup := s.st.boxes[address]; dup {
		return fmt.Errorf("%q: %w", address, proto.ErrDuplicateName)
	}
	s.st.next++
	mb := &mailbox{id: s.st.next, address: address}
	s.st.boxes[address] = mb
	s.st.byID[mb.id] = mb
	return nil
}

// MessageCount returns how many messages address holds.
func (s *Server) MessageCount(address string) (int, error) {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	mb, ok := s.st.boxes[address]
	if !ok {
		return 0, fmt.Errorf("%q: %w", address, proto.ErrNotFound)
	}
	return len(mb.messages), nil
}

// ValidAddress checks the externally-imposed address syntax.
func ValidAddress(address string) bool {
	at := strings.IndexByte(address, '@')
	return at > 0 && at < len(address)-1 && strings.Count(address, "@") == 1
}

func describe(mb *mailbox) proto.Descriptor {
	size := 0
	for _, m := range mb.messages {
		size += len(m)
	}
	return proto.Descriptor{
		Tag:          proto.TagMailbox,
		ObjectID:     mb.id,
		Name:         mb.address,
		Size:         uint32(size),
		Perms:        proto.PermRead | proto.PermWrite,
		TypeSpecific: [2]uint32{uint32(len(mb.messages)), 0},
	}
}

// HandleNamed implements core.Handler.
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpCreateInstance:
		mode := proto.OpenMode(req.Msg)
		if mode&proto.ModeDirectory != 0 {
			if _, err := res.ContextOf(); err != nil {
				return core.ErrorReplyMsg(err)
			}
			pattern, err := proto.DirPattern(req.Msg)
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			return s.openDirectory(req.Proc(), res.Name, pattern)
		}
		if res.Entry == nil {
			if mode&proto.ModeCreate == 0 {
				return core.ErrorReplyMsg(proto.ErrNotFound)
			}
			if err := s.AddMailbox(res.Last); err != nil {
				return core.ErrorReplyMsg(err)
			}
			e, err := s.st.LookupComponent(core.CtxDefault, res.Last)
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			return s.openMailbox(e.Object.ID, res.Last)
		}
		return s.openMailbox(res.Entry.Object.ID, res.Last)

	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.st.mu.Lock()
		mb := s.st.byID[res.Entry.Object.ID]
		var d proto.Descriptor
		if mb != nil {
			d = describe(mb)
		}
		s.st.mu.Unlock()
		if mb == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().DescriptorFabricateCost)
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpRemoveObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.st.mu.Lock()
		mb := s.st.byID[res.Entry.Object.ID]
		if mb != nil {
			delete(s.st.boxes, mb.address)
			delete(s.st.byID, mb.id)
		}
		s.st.mu.Unlock()
		if mb == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		return core.OkReply()

	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	if reply := s.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	return core.ErrorReplyMsg(proto.ErrIllegalRequest)
}

// openMailbox opens a mailbox instance: reads return the concatenated
// messages (separated by newlines), writes deliver a new message.
func (s *Server) openMailbox(id uint32, name string) *proto.Message {
	s.st.mu.Lock()
	mb := s.st.byID[id]
	s.st.mu.Unlock()
	if mb == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	iid, err := s.reg.Open(&mailboxInstance{s: s, mb: mb}, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

func (s *Server) openDirectory(p *kernel.Process, name, pattern string) *proto.Message {
	s.st.mu.Lock()
	addrs := make([]string, 0, len(s.st.boxes))
	for a := range s.st.boxes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	records := make([]proto.Descriptor, 0, len(addrs))
	for _, a := range addrs {
		records = append(records, describe(s.st.boxes[a]))
	}
	s.st.mu.Unlock()
	records = core.FilterRecords(records, pattern)
	iid, err := s.reg.Open(vio.NewDirectoryInstance(records, nil), name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// mailboxInstance adapts a mailbox to the V I/O instance interface.
type mailboxInstance struct {
	s  *Server
	mb *mailbox
}

func (mi *mailboxInstance) flatten() []byte {
	var out []byte
	for _, m := range mi.mb.messages {
		out = append(out, m...)
		out = append(out, '\n')
	}
	return out
}

func (mi *mailboxInstance) Info() proto.InstanceInfo {
	mi.s.st.mu.Lock()
	defer mi.s.st.mu.Unlock()
	return proto.InstanceInfo{
		SizeBytes: uint32(len(mi.flatten())),
		BlockSize: vio.DefaultBlockSize,
		Flags:     proto.ModeRead | proto.ModeWrite,
	}
}

func (mi *mailboxInstance) ReadAt(_ *kernel.Process, off int64, buf []byte) (int, error) {
	mi.s.st.mu.Lock()
	defer mi.s.st.mu.Unlock()
	flat := mi.flatten()
	if off >= int64(len(flat)) {
		return 0, proto.ErrEndOfFile
	}
	return copy(buf, flat[off:]), nil
}

// WriteAt delivers one message per write, regardless of offset.
func (mi *mailboxInstance) WriteAt(_ *kernel.Process, _ int64, data []byte) (int, error) {
	mi.s.st.mu.Lock()
	defer mi.s.st.mu.Unlock()
	msg := make([]byte, len(data))
	copy(msg, data)
	mi.mb.messages = append(mi.mb.messages, msg)
	return len(data), nil
}

func (mi *mailboxInstance) Release() {}

var (
	_ vio.Instance      = (*mailboxInstance)(nil)
	_ core.Handler      = (*Server)(nil)
	_ core.ContextStore = (*store)(nil)
)
