package netsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vtime"
)

func newNet() *Network { return New(vtime.DefaultModel(), 1) }

func TestUnicastSameHostIsLocal(t *testing.T) {
	n := newNet()
	d, err := n.Unicast(3, 3, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := n.Model().LocalHop(32); d != want {
		t.Fatalf("same-host unicast = %v, want local hop %v", d, want)
	}
	if n.Stats().Packets != 0 {
		t.Fatal("same-host delivery must not touch the wire")
	}
}

func TestUnicastRemoteLatency(t *testing.T) {
	n := newNet()
	d, err := n.Unicast(1, 2, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := n.Model().RemoteHop(32); d != want {
		t.Fatalf("remote unicast = %v, want %v", d, want)
	}
	st := n.Stats()
	if st.Packets != 1 || st.Bytes != 32 {
		t.Fatalf("stats = %+v, want 1 packet / 32 bytes", st)
	}
}

func TestUnicastLargeTransferCountsPackets(t *testing.T) {
	n := newNet()
	if _, err := n.Unicast(1, 2, 64*1024, 0); err != nil {
		t.Fatal(err)
	}
	want := uint64((64*1024 + 511) / 512)
	if got := n.Stats().Packets; got != want {
		t.Fatalf("64 KB transfer counted %d packets, want %d", got, want)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	n := newNet()
	n.Partition(2, 1)
	if n.Reachable(1, 2) {
		t.Fatal("partitioned hosts must be unreachable")
	}
	if _, err := n.Unicast(1, 2, 32, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unicast across partition err = %v, want ErrUnreachable", err)
	}
	// Hosts within the same group still talk.
	n.Partition(5, 1)
	if _, err := n.Unicast(2, 5, 32, 0); err != nil {
		t.Fatalf("unicast within partition group failed: %v", err)
	}
	n.Heal()
	if !n.Reachable(1, 2) {
		t.Fatal("Heal must restore reachability")
	}
	if _, err := n.Unicast(1, 2, 32, 0); err != nil {
		t.Fatalf("unicast after heal failed: %v", err)
	}
}

func TestDropRateAddsRetransmitLatency(t *testing.T) {
	n := newNet()
	base, _ := n.Unicast(1, 2, 32, 0)
	n.SetDropRate(0.5)
	var slower int
	for i := 0; i < 200; i++ {
		d, err := n.Unicast(1, 2, 32, 0)
		if err != nil {
			continue // bounded retransmission may give up at 50% loss
		}
		if d > base {
			slower++
		}
	}
	if slower == 0 {
		t.Fatal("with 50% loss, some deliveries must pay retransmission latency")
	}
	if n.Stats().Drops == 0 {
		t.Fatal("drops must be counted")
	}
}

func TestDropRateOneAlwaysFails(t *testing.T) {
	n := newNet()
	n.SetDropRate(1.0)
	if _, err := n.Unicast(1, 2, 32, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("total loss should exhaust retransmissions, got %v", err)
	}
}

func TestDropRateClamped(t *testing.T) {
	n := newNet()
	n.SetDropRate(-3)
	if _, err := n.Unicast(1, 2, 32, 0); err != nil {
		t.Fatalf("negative drop rate must clamp to 0: %v", err)
	}
	n.SetDropRate(7)
	if _, err := n.Unicast(1, 2, 32, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatal("drop rate above 1 must clamp to 1 and fail")
	}
}

func TestBroadcastSingleFrame(t *testing.T) {
	n := newNet()
	d := n.Broadcast(1, 32, 0)
	if want := n.Model().RemoteHop(32); d != want {
		t.Fatalf("broadcast latency = %v, want %v", d, want)
	}
	st := n.Stats()
	if st.Broadcasts != 1 || st.Packets != 1 {
		t.Fatalf("stats = %+v, want one broadcast frame", st)
	}
}

func TestMulticastSingleFrame(t *testing.T) {
	n := newNet()
	_ = n.Multicast(4, 100, 0)
	if st := n.Stats(); st.Multicasts != 1 {
		t.Fatalf("stats = %+v, want one multicast frame", st)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []time.Duration {
		n := New(vtime.DefaultModel(), 42)
		n.SetDropRate(0.3)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d, err := n.Unicast(1, 2, 32, 0)
			if err != nil {
				d = -1
			}
			out = append(out, d)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different latency at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUnicastSymmetric(t *testing.T) {
	// Two fresh networks: latency is direction-independent (the shared
	// wire is stateful, so the comparison needs identical starting
	// states).
	f := func(x, y uint16, sz uint16) bool {
		a, errA := newNet().Unicast(HostID(x), HostID(y), int(sz), 0)
		b, errB := newNet().Unicast(HostID(y), HostID(x), int(sz), 0)
		return (errA == nil) == (errB == nil) && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireContention(t *testing.T) {
	// Two frames issued at the same instant: the second queues behind the
	// first for the wire; a frame issued after the wire is free does not.
	n := newNet()
	first, err := n.Unicast(1, 2, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.Unicast(3, 4, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Fatalf("concurrent frame should queue: %v then %v", first, second)
	}
	wire := n.Model().WireTime(512)
	if second != first+wire {
		t.Fatalf("queueing delay = %v, want one wire time %v", second-first, wire)
	}
	// Issued long after the wire went idle: no queueing.
	later, err := n.Unicast(5, 6, 512, vtime.Time(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if later != first {
		t.Fatalf("idle-wire latency = %v, want %v", later, first)
	}
}

func TestPartitionGroupsArePartition(t *testing.T) {
	// Property: reachability derived from groups is reflexive, symmetric,
	// and transitive.
	f := func(groups [8]uint8) bool {
		n := newNet()
		for h, g := range groups {
			n.Partition(HostID(h), int(g%3))
		}
		for a := 0; a < 8; a++ {
			if !n.Reachable(HostID(a), HostID(a)) {
				return false
			}
			for b := 0; b < 8; b++ {
				if n.Reachable(HostID(a), HostID(b)) != n.Reachable(HostID(b), HostID(a)) {
					return false
				}
				for c := 0; c < 8; c++ {
					if n.Reachable(HostID(a), HostID(b)) && n.Reachable(HostID(b), HostID(c)) &&
						!n.Reachable(HostID(a), HostID(c)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
