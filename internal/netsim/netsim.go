// Package netsim simulates the shared local-area network connecting the
// hosts of a V domain — the 3 Mbit Ethernet of the paper's testbed.
//
// The network computes virtual-time hop latencies from the calibrated cost
// model, tracks per-host traffic statistics, and supports the fault
// injection the experiments need: packet loss (which the V kernel masks by
// retransmission, at a latency cost) and network partitions (which make
// hosts mutually unreachable).
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// HostID identifies a host (a network station) in the simulated domain.
type HostID uint16

// ErrUnreachable is returned when two hosts are in different partitions or
// when retransmission gives up.
var ErrUnreachable = errors.New("netsim: host unreachable")

// maxRetransmits bounds kernel retransmission attempts before a send is
// reported as failed, mirroring the V kernel's bounded retry.
const maxRetransmits = 5

// HopDetail carries the cost breakdown of one delivered hop: how long
// the frame queued for the shared medium, how many packets it was
// fragmented into, and how many retransmissions masked injected loss.
type HopDetail struct {
	Queue       time.Duration
	Packets     int
	Retransmits int
}

// FrameEvent describes one frame (or fragmented packet burst) placed on
// the medium, for observers such as the tracing layer.
type FrameEvent struct {
	Src, Dst    HostID // Dst is 0 for broadcast and multicast
	Cast        string // "unicast", "broadcast" or "multicast"
	Bytes       int
	Packets     int
	Retransmits int
	At          vtime.Time
	Queue       time.Duration
	Latency     time.Duration
}

// FrameRecorder observes every frame the network carries. Implementations
// must not call back into the Network (they run with its lock held).
type FrameRecorder interface {
	RecordFrame(FrameEvent)
}

// Stats records cumulative traffic counters for the whole network.
type Stats struct {
	Packets     uint64 // frames successfully delivered
	Bytes       uint64 // payload bytes successfully delivered
	Broadcasts  uint64 // broadcast frames
	Multicasts  uint64 // multicast frames
	Drops       uint64 // frames lost and retransmitted
	WireBusyFor time.Duration
}

// statsCounters is the lock-free backing store for Stats: the wire path
// bumps counters with atomic adds so readers never serialize senders.
type statsCounters struct {
	packets    atomic.Uint64
	bytes      atomic.Uint64
	broadcasts atomic.Uint64
	multicasts atomic.Uint64
	drops      atomic.Uint64
	wireBusy   atomic.Int64 // nanoseconds of wire occupancy
}

func (c *statsCounters) load() Stats {
	return Stats{
		Packets:     c.packets.Load(),
		Bytes:       c.bytes.Load(),
		Broadcasts:  c.broadcasts.Load(),
		Multicasts:  c.multicasts.Load(),
		Drops:       c.drops.Load(),
		WireBusyFor: time.Duration(c.wireBusy.Load()),
	}
}

// Snapshot returns a torn-read-resistant copy of the counters: each
// field is loaded atomically, and the whole set is re-read until two
// consecutive passes agree (bounded, falling back to the last read
// under sustained traffic). Mid-run readers therefore never see, e.g.,
// a packet counted whose bytes are not.
func (c *statsCounters) Snapshot() Stats {
	prev := c.load()
	for i := 0; i < 3; i++ {
		cur := c.load()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// netMetrics is the pre-resolved instrument set the wire path records
// into when a metrics registry is installed.
type netMetrics struct {
	frames     *metrics.Counter
	bytes      *metrics.Counter
	broadcasts *metrics.Counter
	multicasts *metrics.Counter
	drops      *metrics.Counter
	queueWait  *metrics.Histogram
}

// Network is the simulated shared Ethernet. The zero value is not usable;
// construct with New.
type Network struct {
	model *vtime.CostModel

	// Counters, the loss probability and the partition map are read on
	// every hop; they are atomics / copy-on-write so the common read
	// never takes the wire mutex.
	stats    statsCounters
	metrics  atomic.Pointer[netMetrics]
	dropBits atomic.Uint64                  // math.Float64bits of the drop rate
	parts    atomic.Pointer[map[HostID]int] // host -> partition group; absent means group 0

	mu       sync.Mutex
	rng      *rand.Rand
	recorder FrameRecorder
	// wireFreeAt serializes the shared medium: a frame transmitted at
	// virtual time t occupies the wire from max(t, wireFreeAt) for its
	// wire time, so concurrent senders contend (CSMA-style, without
	// modelling collisions).
	wireFreeAt vtime.Time
}

// New returns a network using the given cost model and a deterministic RNG
// seed for loss injection.
func New(model *vtime.CostModel, seed int64) *Network {
	n := &Network{
		model: model,
		rng:   rand.New(rand.NewSource(seed)),
	}
	parts := make(map[HostID]int)
	n.parts.Store(&parts)
	return n
}

// Model returns the cost model the network charges against.
func (n *Network) Model() *vtime.CostModel { return n.model }

// Lookahead is the network's conservative-PDES lookahead bound: the
// minimum virtual delay of any cross-host message (PROTOCOL.md §12).
// Per-host engines use it to justify running host-confined work ahead of
// their peers — a peer quiet until time T cannot be heard from before
// T + Lookahead.
func (n *Network) Lookahead() time.Duration {
	return n.model.MinRemoteDelay()
}

// SetDropRate sets the probability that any individual frame is lost.
// Lost frames are masked by kernel retransmission at a latency cost.
func (n *Network) SetDropRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.dropBits.Store(math.Float64bits(p))
}

// DropRate returns the current frame-loss probability.
func (n *Network) DropRate() float64 {
	return math.Float64frombits(n.dropBits.Load())
}

// Partition places host h into partition group g. Hosts in different
// groups cannot exchange frames. All hosts start in group 0.
//
// Concurrency: the partition map is copy-on-write — writers copy under
// n.mu and publish atomically, readers (Reachable, on every hop) load
// the snapshot lock-free — so a partition event may fire while other
// engines' sends are in flight without a data race. Under the sharded
// driver the chaos engine additionally fires Partition only at a global
// fence (every lane quiescent), so *which* sends observe the new map is
// deterministic, not merely race-free.
func (n *Network) Partition(h HostID, g int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := *n.parts.Load()
	parts := make(map[HostID]int, len(old)+1)
	for k, v := range old {
		parts[k] = v
	}
	parts[h] = g
	n.parts.Store(&parts)
}

// Heal returns every host to partition group 0.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	parts := make(map[HostID]int)
	n.parts.Store(&parts)
}

// Reachable reports whether frames can currently flow between a and b.
func (n *Network) Reachable(a, b HostID) bool {
	parts := *n.parts.Load()
	return parts[a] == parts[b]
}

// SetRecorder installs an observer for every frame the network carries.
// A nil recorder disables recording.
func (n *Network) SetRecorder(r FrameRecorder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.recorder = r
}

// recordLocked reports a frame to the installed recorder, if any.
// Must be called with n.mu held.
func (n *Network) recordLocked(ev FrameEvent) {
	if n.recorder != nil {
		n.recorder.RecordFrame(ev)
	}
}

// Stats returns a stabilized snapshot of the cumulative traffic
// counters (see statsCounters.Snapshot).
func (n *Network) Stats() Stats {
	return n.stats.Snapshot()
}

// SetMetrics installs (or, with nil, removes) a metrics registry the
// wire path mirrors its counters into, adding a wire-queueing-delay
// histogram. Zero virtual cost, same contract as the frame recorder.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		n.metrics.Store(nil)
		return
	}
	n.metrics.Store(&netMetrics{
		frames:     reg.Counter("wire_frames_total", metrics.Labels{}),
		bytes:      reg.Counter("wire_bytes_total", metrics.Labels{}),
		broadcasts: reg.Counter("wire_broadcasts_total", metrics.Labels{}),
		multicasts: reg.Counter("wire_multicasts_total", metrics.Labels{}),
		drops:      reg.Counter("wire_drops_total", metrics.Labels{}),
		queueWait:  reg.Histogram("wire_queue_wait", metrics.Labels{}),
	})
}

// reserveWireLocked acquires the shared medium for a transfer of `bytes`
// issued at virtual time `at`, returning the queueing delay incurred
// (zero when the wire is idle). Must be called with n.mu held.
func (n *Network) reserveWireLocked(at vtime.Time, bytes int) time.Duration {
	occupancy := n.occupancy(bytes)
	start := at
	if n.wireFreeAt > start {
		start = n.wireFreeAt
	}
	n.wireFreeAt = start + occupancy
	n.stats.wireBusy.Add(int64(occupancy))
	return start - at
}

// occupancy is the total wire time of a transfer, split into frames.
func (n *Network) occupancy(bytes int) time.Duration {
	var d time.Duration
	for {
		chunk := bytes
		if chunk > n.model.MaxDataPerPacket {
			chunk = n.model.MaxDataPerPacket
		}
		d += n.model.WireTime(chunk)
		bytes -= chunk
		if bytes <= 0 {
			return d
		}
	}
}

// Unicast returns the virtual one-way latency of delivering a message of
// `bytes` payload bytes from host a to host b at virtual time `at`,
// including queueing for the shared wire and any retransmission delay
// from injected loss. Same-host delivery is a local hop and never touches
// the wire.
func (n *Network) Unicast(a, b HostID, bytes int, at vtime.Time) (time.Duration, error) {
	d, _, err := n.UnicastDetail(a, b, bytes, at)
	return d, err
}

// UnicastDetail is Unicast with the hop's cost breakdown exposed for
// observers. The simulation is identical (same RNG draws, same stats),
// so traced and untraced runs stay byte-identical in virtual time.
func (n *Network) UnicastDetail(a, b HostID, bytes int, at vtime.Time) (time.Duration, HopDetail, error) {
	if a == b {
		return n.model.LocalHop(bytes), HopDetail{}, nil
	}
	if !n.Reachable(a, b) {
		return 0, HopDetail{}, fmt.Errorf("%w: host %d and host %d are partitioned", ErrUnreachable, a, b)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	queue := n.reserveWireLocked(at, bytes)
	d := queue + n.model.RemoteHop(bytes)
	nm := n.metrics.Load()
	retries := 0
	dropRate := n.DropRate()
	for dropRate > 0 && n.rng.Float64() < dropRate {
		retries++
		n.stats.drops.Add(1)
		if nm != nil {
			nm.drops.Inc()
		}
		if retries > maxRetransmits {
			return 0, HopDetail{Queue: queue, Retransmits: retries - 1},
				fmt.Errorf("%w: %d retransmissions to host %d failed", ErrUnreachable, retries-1, b)
		}
		d += n.model.RetransmitTimeout + n.model.RemoteHop(bytes)
	}
	packets := packetsFor(bytes, n.model.MaxDataPerPacket)
	n.stats.packets.Add(uint64(packets))
	n.stats.bytes.Add(uint64(bytes))
	if nm != nil {
		nm.frames.Add(uint64(packets))
		nm.bytes.Add(uint64(bytes))
		nm.queueWait.Record(queue)
	}
	det := HopDetail{Queue: queue, Packets: packets, Retransmits: retries}
	n.recordLocked(FrameEvent{
		Src: a, Dst: b, Cast: "unicast",
		Bytes: bytes, Packets: packets, Retransmits: retries,
		At: at, Queue: queue, Latency: d,
	})
	return d, det, nil
}

// Broadcast returns the one-way latency of a broadcast frame from host a
// at virtual time `at`. A broadcast occupies the shared wire once, so its
// latency does not scale with the number of receivers.
func (n *Network) Broadcast(a HostID, bytes int, at vtime.Time) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.packets.Add(1)
	n.stats.broadcasts.Add(1)
	n.stats.bytes.Add(uint64(bytes))
	queue := n.reserveWireLocked(at, bytes)
	d := queue + n.model.RemoteHop(bytes)
	if nm := n.metrics.Load(); nm != nil {
		nm.frames.Inc()
		nm.broadcasts.Inc()
		nm.bytes.Add(uint64(bytes))
		nm.queueWait.Record(queue)
	}
	n.recordLocked(FrameEvent{
		Src: a, Cast: "broadcast", Bytes: bytes, Packets: 1,
		At: at, Queue: queue, Latency: d,
	})
	return d
}

// Multicast returns the one-way latency of a multicast frame from host a
// to a group at virtual time `at`. Like broadcast, one frame serves all
// receivers on the shared wire.
func (n *Network) Multicast(a HostID, bytes int, at vtime.Time) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.packets.Add(1)
	n.stats.multicasts.Add(1)
	n.stats.bytes.Add(uint64(bytes))
	queue := n.reserveWireLocked(at, bytes)
	d := queue + n.model.RemoteHop(bytes)
	if nm := n.metrics.Load(); nm != nil {
		nm.frames.Inc()
		nm.multicasts.Inc()
		nm.bytes.Add(uint64(bytes))
		nm.queueWait.Record(queue)
	}
	n.recordLocked(FrameEvent{
		Src: a, Cast: "multicast", Bytes: bytes, Packets: 1,
		At: at, Queue: queue, Latency: d,
	})
	return d
}

// InPartition reports the partition group of h.
func (n *Network) InPartition(h HostID) int {
	return (*n.parts.Load())[h]
}

// PacketsFor reports how many packets a payload of `bytes` fragments
// into given the model's per-packet data limit — the accounting the
// trace invariant checker verifies wire spans against.
func PacketsFor(bytes, perPacket int) int {
	return packetsFor(bytes, perPacket)
}

func packetsFor(bytes, perPacket int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + perPacket - 1) / perPacket
}
