package metrics

import (
	"fmt"
	"io"

	"repro/internal/vtime"
)

// The health report turns the raw registry state into the operator's
// view: per-server availability windows (from the exact-timestamp
// server_up timelines the chaos engine and kernel maintain), error
// budgets against an SLO target, and degradation intervals (sampler
// ticks in which clients saw failures or burned retries). Everything is
// derived from virtual time, so the report is deterministic and can be
// cross-checked against the trace invariant checker's view of the same
// run (a server-exit span must fall inside an outage window).

// TimelineServerUp is the timeline name carrying host up/down state
// (value 1 = up, 0 = down), labeled by Host.
const TimelineServerUp = "server_up"

// TimelineServerRole is the timeline name carrying a replicated host's
// consensus role next to server_up, labeled by Host. Values are
// RoleValueDown/Follower/Leader; the replication-group monitor marks it
// at the exact virtual times of crashes, elections and rejoins.
const TimelineServerRole = "server_role"

// Values of the TimelineServerRole timeline.
const (
	RoleValueDown     = 0
	RoleValueFollower = 1
	RoleValueLeader   = 2
)

// roleName renders a role timeline value.
func roleName(v int64) string {
	switch v {
	case RoleValueDown:
		return "down"
	case RoleValueFollower:
		return "follower"
	case RoleValueLeader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", v)
}

// Window is a half-open virtual-time interval [From, To).
type Window struct {
	From vtime.Time `json:"from_us"`
	To   vtime.Time `json:"to_us"`
}

// Duration returns the window length.
func (w Window) Duration() vtime.Time { return w.To - w.From }

// RoleWindow is one span of a host's consensus-role timeline: the host
// held Role from From until To (the horizon for the last window).
type RoleWindow struct {
	From vtime.Time `json:"from_us"`
	To   vtime.Time `json:"to_us"`
	Role string     `json:"role"`
}

// ServerHealth is one host's availability accounting over the horizon.
type ServerHealth struct {
	Host    string   `json:"host"`
	Up      bool     `json:"up"` // state at the horizon
	Outages []Window `json:"outages,omitempty"`
	// Roles are the host's consensus-role epochs (leader/follower/down),
	// present only for members of a replication group.
	Roles        []RoleWindow `json:"roles,omitempty"`
	DowntimeUS   int64        `json:"downtime_us"`
	Availability float64      `json:"availability"`
	SLOMet       bool         `json:"slo_met"`
	// ErrorBudgetLeft is the fraction of the SLO's allowed downtime not
	// yet consumed (negative when the budget is blown).
	ErrorBudgetLeft float64 `json:"error_budget_left"`
}

// HealthReport is the derived health/SLO document for one run.
type HealthReport struct {
	HorizonUS int64          `json:"horizon_us"`
	SLO       float64        `json:"slo"`
	Servers   []ServerHealth `json:"servers,omitempty"`
	// Degraded are the merged sampler windows in which clients observed
	// failures or retries (empty without a pumped sampler).
	Degraded []Window `json:"degraded,omitempty"`
}

// degradationSeries are the counter names whose per-tick deltas mark a
// tick as degraded from the client's point of view.
var degradationSeries = []string{
	"client_op_failures_total",
	"client_retries_total",
	"kernel_send_failures_total",
}

// Health builds the report from a registry snapshot and (optionally) a
// sampler's series, judged against an availability SLO over [0,
// horizon].
func Health(snap Snapshot, samples []Sample, horizon vtime.Time, slo float64) *HealthReport {
	rep := &HealthReport{HorizonUS: us(horizon), SLO: slo}
	roles := make(map[string][]RoleWindow)
	for _, tl := range snap.Timelines {
		if tl.Name == TimelineServerRole {
			roles[tl.Labels.Host] = roleWindows(tl, horizon)
		}
	}
	for _, tl := range snap.Timelines {
		if tl.Name != TimelineServerUp {
			continue
		}
		h := serverHealth(tl, horizon, slo)
		h.Roles = roles[tl.Labels.Host]
		delete(roles, tl.Labels.Host)
		rep.Servers = append(rep.Servers, h)
	}
	// Replication-group members that never crashed have a role timeline
	// but no server_up transitions; they still deserve a row, so the
	// report shows who served each leader epoch.
	for _, tl := range snap.Timelines {
		if tl.Name != TimelineServerRole {
			continue
		}
		rw, ok := roles[tl.Labels.Host]
		if !ok {
			continue
		}
		delete(roles, tl.Labels.Host)
		rep.Servers = append(rep.Servers, ServerHealth{
			Host: tl.Labels.Host, Up: true, Roles: rw,
			Availability: 1, SLOMet: true, ErrorBudgetLeft: 1,
		})
	}
	rep.Degraded = degradedWindows(samples)
	return rep
}

// roleWindows converts a role timeline's points into half-open epochs,
// the last one extending to the horizon. Adjacent same-role points
// merge.
func roleWindows(tl TimelineSeries, horizon vtime.Time) []RoleWindow {
	var out []RoleWindow
	for _, p := range tl.Points {
		name := roleName(p.Value)
		if n := len(out); n > 0 {
			out[n-1].To = p.At
			if out[n-1].Role == name {
				continue
			}
		}
		out = append(out, RoleWindow{From: p.At, To: horizon, Role: name})
	}
	if n := len(out); n > 0 {
		out[n-1].To = horizon
	}
	return out
}

func serverHealth(tl TimelineSeries, horizon vtime.Time, slo float64) ServerHealth {
	h := ServerHealth{Host: tl.Labels.Host, Up: true}
	var downSince vtime.Time
	down := false
	for _, p := range tl.Points {
		switch {
		case p.Value == 0 && !down:
			down, downSince = true, p.At
		case p.Value != 0 && down:
			down = false
			h.Outages = append(h.Outages, Window{From: downSince, To: p.At})
		}
	}
	if down {
		h.Outages = append(h.Outages, Window{From: downSince, To: horizon})
		h.Up = false
	}
	var downtime vtime.Time
	for _, o := range h.Outages {
		downtime += o.Duration()
	}
	h.DowntimeUS = us(downtime)
	if horizon > 0 {
		h.Availability = 1 - float64(downtime)/float64(horizon)
		budget := (1 - slo) * float64(horizon)
		if budget > 0 {
			h.ErrorBudgetLeft = 1 - float64(downtime)/budget
		} else if downtime == 0 {
			h.ErrorBudgetLeft = 1
		} else {
			h.ErrorBudgetLeft = -1
		}
		h.SLOMet = h.Availability >= slo
	} else {
		h.Availability = 1
		h.SLOMet = true
		h.ErrorBudgetLeft = 1
	}
	return h
}

// degradedWindows merges consecutive degraded ticks. A tick covering
// (prev.At, s.At] is degraded when any degradation series advanced in
// it.
func degradedWindows(samples []Sample) []Window {
	var out []Window
	prevTotals := map[string]uint64{}
	var prevAt vtime.Time
	for _, s := range samples {
		degraded := false
		for _, name := range degradationSeries {
			cur := s.Total(name)
			if cur > prevTotals[name] {
				degraded = true
			}
			prevTotals[name] = cur
		}
		if degraded {
			if n := len(out); n > 0 && out[n-1].To == prevAt {
				out[n-1].To = s.At
			} else {
				out = append(out, Window{From: prevAt, To: s.At})
			}
		}
		prevAt = s.At
	}
	return out
}

// WriteText renders the report for terminal surfaces (vstat, vsh).
func (r *HealthReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "health over %s (SLO %.2f%%)\n", vtime.Milliseconds(vtime.Time(r.HorizonUS)*1000), r.SLO*100)
	if len(r.Servers) == 0 {
		fmt.Fprintf(w, "  no server state transitions recorded (no faults)\n")
	}
	for _, s := range r.Servers {
		status := "met"
		if !s.SLOMet {
			status = "VIOLATED"
		}
		fmt.Fprintf(w, "  host %-8s availability %.4f  downtime %s  slo %s  budget left %+.2f\n",
			s.Host, s.Availability, vtime.Milliseconds(vtime.Time(s.DowntimeUS)*1000), status, s.ErrorBudgetLeft)
		for _, o := range s.Outages {
			fmt.Fprintf(w, "    outage %s -> %s (%s)\n",
				vtime.Milliseconds(o.From), vtime.Milliseconds(o.To), vtime.Milliseconds(o.Duration()))
		}
		for _, rw := range s.Roles {
			fmt.Fprintf(w, "    role %-8s %s -> %s\n",
				rw.Role, vtime.Milliseconds(rw.From), vtime.Milliseconds(rw.To))
		}
	}
	for _, d := range r.Degraded {
		fmt.Fprintf(w, "  degraded %s -> %s (client-visible failures/retries)\n",
			vtime.Milliseconds(d.From), vtime.Milliseconds(d.To))
	}
}
