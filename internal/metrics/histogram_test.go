package metrics

import (
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log-linear bucket layout:
// singleton buckets below 2*histSub, then 64 linear sub-buckets per
// power-of-two octave, with the documented index formula and clamping.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v   int64
		idx int
	}{
		{0, 0},
		{-5, 0}, // negatives clamp to 0
		{1, 1},
		{63, 63},
		{64, 64},   // first octave starts, still singleton (shift 0)
		{127, 127}, // last singleton
		{128, 128}, // shift 1: bucket [128,129]
		{129, 128},
		{130, 129},
		{255, 191},
		{256, 192}, // shift 2: bucket [256,259]
		{259, 192},
		{260, 193},
		{1 << 20, 14*64 + 64},        // 2^20 ns: shift 14, mantissa 64
		{1<<62 + 1, histBuckets - 1}, // overflow clamps to last bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
	}
	// Bounds must tile: every bucket's hi+1 is the next bucket's lo, and
	// the index formula must be the inverse of the bounds, monotone.
	prevHi := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d does not follow previous hi %d", i, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("bucket %d: hi %d < lo %d", i, hi, lo)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i && i != histBuckets-1 {
			t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, got, i)
		}
		// Relative width stays within 1/histSub above the linear range.
		if lo >= 2*histSub {
			if width := hi - lo + 1; float64(width)/float64(lo) > 1.0/histSub+1e-9 {
				t.Fatalf("bucket %d [%d,%d]: relative width %g too coarse", i, lo, hi, float64(hi-lo+1)/float64(lo))
			}
		}
		prevHi = hi
	}
}

// TestHistogramQuantiles pins the nearest-rank quantile math on an exact
// distribution (values 1..100 ns, all in singleton buckets).
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for v := 1; v <= 100; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d, want 5050", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", h.Min(), h.Max())
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}, {0.01, 1}} {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramDegenerateExact: when every observation is equal — the
// uncontended Figure 1 transaction — every quantile is the exact value,
// even when the value lands in a wide bucket. This is what lets A14
// print the paper's 2.56 ms at the median.
func TestHistogramDegenerateExact(t *testing.T) {
	h := NewHistogram()
	v := 2560 * time.Microsecond // 2.56 ms: a >1 µs-wide bucket
	lo, hi := bucketBounds(bucketIndex(int64(v)))
	if lo == hi {
		t.Fatalf("test value %v landed in a singleton bucket; pick a larger one", v)
	}
	for i := 0; i < 100; i++ {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %v, want exactly %v", q, got, v)
		}
	}
	if h.Mean() != v {
		t.Fatalf("Mean = %v, want %v", h.Mean(), v)
	}
}

// TestHistogramBucketMeanBound: mixed values within one bucket report
// the bucket mean, which stays inside the bucket's bounds.
func TestHistogramBucketMeanBound(t *testing.T) {
	h := NewHistogram()
	idx := bucketIndex(1 << 20)
	lo, hi := bucketBounds(idx)
	h.Record(time.Duration(lo))
	h.Record(time.Duration(hi))
	got := h.Quantile(0.5)
	if int64(got) < lo || int64(got) > hi {
		t.Fatalf("bucket-mean quantile %d outside bucket [%d,%d]", got, lo, hi)
	}
	if want := time.Duration((lo + hi) / 2); got != want {
		t.Fatalf("Quantile(0.5) = %v, want bucket mean %v", got, want)
	}
}
