// Package metrics is the virtual-time observability registry: atomic
// counters, gauges, fixed-bucket latency histograms and up/down state
// timelines keyed by a small label set. Like the tracer (PROTOCOL.md
// §9), every instrument charges zero virtual time — recording never
// touches a process clock, so a fully instrumented run is byte-identical
// to an uninstrumented one in every virtual-time result. The registry is
// safe for concurrent use from real goroutines: instrument lookup is a
// lock-free read of a copy-on-write map (the same idiom as the kernel's
// process tables), and the instruments themselves are plain atomics.
//
// Determinism contract: an instrument update is reproducible (safe to
// include in golden-pinned output) only when it is ordered before the
// workload driver's next step — i.e. it happens on the driving client's
// goroutine, or on a server goroutine before the reply that unblocks the
// client is delivered. Updates that depend on wall-clock behavior (GC,
// goroutine scheduling) are registered as *volatile* and excluded from
// deterministic documents; they still appear on live surfaces (vstat,
// vsh stats, the Prometheus writer).
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

// Labels is the fixed label set. It is a comparable value so it can key
// instrument maps directly without per-lookup allocation. Unused fields
// stay empty.
type Labels struct {
	Server string `json:"server,omitempty"` // serving process name, e.g. "fs1"
	Op     string `json:"op,omitempty"`     // protocol op, e.g. "CreateInstance"
	Host   string `json:"host,omitempty"`   // host name, e.g. "ws-mann"
	Class  string `json:"class,omitempty"`  // failure / event class
}

// less orders labels deterministically for snapshot output.
func (l Labels) less(o Labels) bool {
	if l.Server != o.Server {
		return l.Server < o.Server
	}
	if l.Op != o.Op {
		return l.Op < o.Op
	}
	if l.Host != o.Host {
		return l.Host < o.Host
	}
	return l.Class < o.Class
}

type instKey struct {
	name   string
	labels Labels
}

func (k instKey) less(o instKey) bool {
	if k.name != o.name {
		return k.name < o.name
	}
	return k.labels.less(o.labels)
}

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops so instrument sites need no registry-presence checks.
type Counter struct {
	v        atomic.Uint64
	volatile bool
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v        atomic.Int64
	volatile bool
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// StatePoint is one transition on a Timeline: at virtual time At the
// tracked state became Value.
type StatePoint struct {
	At    vtime.Time `json:"at_us"`
	Value int64      `json:"value"`
}

// Timeline records a small sequence of state transitions with exact
// virtual timestamps — used for host up/down state, from which the
// health report derives availability windows. The zero state (before the
// first point) is implicitly "up" (1).
type Timeline struct {
	mu     sync.Mutex
	points []StatePoint
}

// Mark appends a transition. Consecutive equal values collapse.
func (t *Timeline) Mark(at vtime.Time, value int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.points); n > 0 && t.points[n-1].Value == value {
		return
	}
	t.points = append(t.points, StatePoint{At: at, Value: value})
}

// Points returns a copy of the transitions in record order.
func (t *Timeline) Points() []StatePoint {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StatePoint, len(t.points))
	copy(out, t.points)
	return out
}

// Registry holds the instruments. Lookup is lock-free on the hit path;
// creation copies the map under a mutex (instrument sets are tiny and
// stabilize after the first request of each kind).
type Registry struct {
	mu        sync.Mutex
	counters  atomic.Pointer[map[instKey]*Counter]
	gauges    atomic.Pointer[map[instKey]*Gauge]
	hists     atomic.Pointer[map[instKey]*Histogram]
	timelines atomic.Pointer[map[instKey]*Timeline]
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	k := instKey{name, l}
	if m := r.counters.Load(); m != nil {
		if c, ok := (*m)[k]; ok {
			return c
		}
	}
	return r.makeCounter(k, false)
}

// VolatileCounter is Counter for wall-clock-dependent series (e.g. pool
// reuse): shown live, excluded from deterministic documents.
func (r *Registry) VolatileCounter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	k := instKey{name, l}
	if m := r.counters.Load(); m != nil {
		if c, ok := (*m)[k]; ok {
			return c
		}
	}
	return r.makeCounter(k, true)
}

func (r *Registry) makeCounter(k instKey, volatile bool) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.counters.Load()
	if old != nil {
		if c, ok := (*old)[k]; ok {
			return c
		}
	}
	c := &Counter{volatile: volatile}
	next := copyMap(old)
	next[k] = c
	r.counters.Store(&next)
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	return r.gauge(name, l, false)
}

// VolatileGauge is Gauge for wall-clock-dependent values (e.g. live
// mailbox depth).
func (r *Registry) VolatileGauge(name string, l Labels) *Gauge {
	return r.gauge(name, l, true)
}

func (r *Registry) gauge(name string, l Labels, volatile bool) *Gauge {
	if r == nil {
		return nil
	}
	k := instKey{name, l}
	if m := r.gauges.Load(); m != nil {
		if g, ok := (*m)[k]; ok {
			return g
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.gauges.Load()
	if old != nil {
		if g, ok := (*old)[k]; ok {
			return g
		}
	}
	g := &Gauge{volatile: volatile}
	next := copyMap(old)
	next[k] = g
	r.gauges.Store(&next)
	return g
}

// Histogram returns (creating if needed) the named latency histogram.
func (r *Registry) Histogram(name string, l Labels) *Histogram {
	if r == nil {
		return nil
	}
	k := instKey{name, l}
	if m := r.hists.Load(); m != nil {
		if h, ok := (*m)[k]; ok {
			return h
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.hists.Load()
	if old != nil {
		if h, ok := (*old)[k]; ok {
			return h
		}
	}
	h := NewHistogram()
	next := copyMap(old)
	next[k] = h
	r.hists.Store(&next)
	return h
}

// Timeline returns (creating if needed) the named state timeline.
func (r *Registry) Timeline(name string, l Labels) *Timeline {
	if r == nil {
		return nil
	}
	k := instKey{name, l}
	if m := r.timelines.Load(); m != nil {
		if t, ok := (*m)[k]; ok {
			return t
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.timelines.Load()
	if old != nil {
		if t, ok := (*old)[k]; ok {
			return t
		}
	}
	t := &Timeline{}
	next := copyMap(old)
	next[k] = t
	r.timelines.Store(&next)
	return t
}

func copyMap[V any](old *map[instKey]V) map[instKey]V {
	next := make(map[instKey]V, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	return next
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name     string `json:"name"`
	Labels   Labels `json:"labels"`
	Value    uint64 `json:"value"`
	Volatile bool   `json:"-"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name     string `json:"name"`
	Labels   Labels `json:"labels"`
	Value    int64  `json:"value"`
	Volatile bool   `json:"-"`
}

// HistPoint is one histogram in a snapshot. Durations are microseconds
// of virtual time (exact: every cost model constant is a whole number of
// microseconds).
type HistPoint struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels"`
	Count  uint64 `json:"count"`
	SumUS  int64  `json:"sum_us"`
	P50US  int64  `json:"p50_us"`
	P90US  int64  `json:"p90_us"`
	P99US  int64  `json:"p99_us"`
	MaxUS  int64  `json:"max_us"`
	// Exemplars link buckets to retained trace span ids (exemplar.go).
	// Span ids are interleaving-dependent, so they are excluded from the
	// JSON rendering — deterministic documents stay byte-identical.
	Exemplars []Exemplar `json:"-"`
}

// TimelineSeries is one state timeline in a snapshot.
type TimelineSeries struct {
	Name   string       `json:"name"`
	Labels Labels       `json:"labels"`
	Points []StatePoint `json:"points"`
}

// Snapshot is a consistent-enough, deterministically ordered view of the
// registry: instruments sorted by (name, labels). Each instrument value
// is read atomically; the set as a whole is not a global atomic cut,
// which is fine for the sequential driver (no update is in flight when
// the driver samples) and for live surfaces (which only need freshness).
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistPoint      `json:"histograms,omitempty"`
	Timelines  []TimelineSeries `json:"timelines,omitempty"`
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if m := r.counters.Load(); m != nil {
		for k, c := range *m {
			s.Counters = append(s.Counters, CounterPoint{Name: k.name, Labels: k.labels, Value: c.Value(), Volatile: c.volatile})
		}
		sort.Slice(s.Counters, func(i, j int) bool {
			return instKey{s.Counters[i].Name, s.Counters[i].Labels}.less(instKey{s.Counters[j].Name, s.Counters[j].Labels})
		})
	}
	if m := r.gauges.Load(); m != nil {
		for k, g := range *m {
			s.Gauges = append(s.Gauges, GaugePoint{Name: k.name, Labels: k.labels, Value: g.Value(), Volatile: g.volatile})
		}
		sort.Slice(s.Gauges, func(i, j int) bool {
			return instKey{s.Gauges[i].Name, s.Gauges[i].Labels}.less(instKey{s.Gauges[j].Name, s.Gauges[j].Labels})
		})
	}
	if m := r.hists.Load(); m != nil {
		for k, h := range *m {
			s.Histograms = append(s.Histograms, HistPoint{
				Name:      k.name,
				Labels:    k.labels,
				Count:     h.Count(),
				SumUS:     us(h.Sum()),
				P50US:     us(h.Quantile(0.50)),
				P90US:     us(h.Quantile(0.90)),
				P99US:     us(h.Quantile(0.99)),
				MaxUS:     us(h.Max()),
				Exemplars: h.Exemplars(),
			})
		}
		sort.Slice(s.Histograms, func(i, j int) bool {
			return instKey{s.Histograms[i].Name, s.Histograms[i].Labels}.less(instKey{s.Histograms[j].Name, s.Histograms[j].Labels})
		})
	}
	if m := r.timelines.Load(); m != nil {
		for k, t := range *m {
			s.Timelines = append(s.Timelines, TimelineSeries{Name: k.name, Labels: k.labels, Points: t.Points()})
		}
		sort.Slice(s.Timelines, func(i, j int) bool {
			return instKey{s.Timelines[i].Name, s.Timelines[i].Labels}.less(instKey{s.Timelines[j].Name, s.Timelines[j].Labels})
		})
	}
	return s
}

// Deterministic strips volatile instruments, leaving only series that
// are reproducible across runs (safe to golden-pin).
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{Histograms: s.Histograms, Timelines: s.Timelines}
	for _, c := range s.Counters {
		if !c.Volatile {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !g.Volatile {
			out.Gauges = append(out.Gauges, g)
		}
	}
	return out
}

// CounterTotal sums every counter with the given name across labels.
func (s Snapshot) CounterTotal(name string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// GaugeTotal sums every gauge with the given name across labels.
func (s Snapshot) GaugeTotal(name string) int64 {
	var total int64
	for _, g := range s.Gauges {
		if g.Name == name {
			total += g.Value
		}
	}
	return total
}

// us converts a virtual duration to whole microseconds.
func us(d vtime.Time) int64 { return int64(d / 1000) }
