package metrics

import (
	"fmt"
	"io"

	"repro/internal/vtime"
)

// WriteText renders a snapshot for terminal surfaces (vstat, the vsh
// stats builtin): counters and gauges as aligned name{labels}=value
// lines, histograms with their quantiles in the paper's milliseconds
// unit. Both surfaces call this one renderer so they print the same
// numbers. Volatile instruments are included — live surfaces want
// freshness, not reproducibility — and tagged so a reader knows not to
// compare them across runs.
func (s Snapshot) WriteText(w io.Writer) {
	nameW := 0
	measure := func(name string, l Labels) string {
		id := name + promLabels(l, "")
		if len(id) > nameW {
			nameW = len(id)
		}
		return id
	}
	counterIDs := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		counterIDs[i] = measure(c.Name, c.Labels)
	}
	gaugeIDs := make([]string, len(s.Gauges))
	for i, g := range s.Gauges {
		gaugeIDs[i] = measure(g.Name, g.Labels)
	}
	histIDs := make([]string, len(s.Histograms))
	for i, h := range s.Histograms {
		histIDs[i] = measure(h.Name, h.Labels)
	}
	tlIDs := make([]string, len(s.Timelines))
	for i, t := range s.Timelines {
		tlIDs[i] = measure(t.Name, t.Labels)
	}

	vol := func(v bool) string {
		if v {
			return "  (volatile)"
		}
		return ""
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for i, c := range s.Counters {
			fmt.Fprintf(w, "  %-*s %12d%s\n", nameW, counterIDs[i], c.Value, vol(c.Volatile))
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for i, g := range s.Gauges {
			fmt.Fprintf(w, "  %-*s %12d%s\n", nameW, gaugeIDs[i], g.Value, vol(g.Volatile))
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		fmt.Fprintf(w, "  %-*s %8s  %10s  %10s  %10s  %10s\n",
			nameW, "", "count", "p50", "p90", "p99", "max")
		for i, h := range s.Histograms {
			fmt.Fprintf(w, "  %-*s %8d  %10s  %10s  %10s  %10s\n",
				nameW, histIDs[i], h.Count, usText(h.P50US), usText(h.P90US), usText(h.P99US), usText(h.MaxUS))
		}
	}
	if len(s.Timelines) > 0 {
		fmt.Fprintln(w, "timelines:")
		for i, t := range s.Timelines {
			fmt.Fprintf(w, "  %-*s", nameW, tlIDs[i])
			for _, p := range t.Points {
				fmt.Fprintf(w, "  %s=%d", vtime.Milliseconds(p.At), p.Value)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteDiffs renders the sampler's per-tick snapshot diffs: for each
// tick, every counter that advanced since the previous one, as
// "name{labels} +delta" entries — the terminal view of the time-series
// the sampler collects.
func WriteDiffs(w io.Writer, samples []Sample) {
	prev := map[string]uint64{}
	for _, s := range samples {
		var line []string
		for _, c := range s.Counters {
			id := c.Name + promLabels(c.Labels, "")
			if d := c.Value - prev[id]; d > 0 {
				line = append(line, fmt.Sprintf("%s +%d", id, d))
			}
			prev[id] = c.Value
		}
		fmt.Fprintf(w, "t=%-12s", vtime.Milliseconds(s.At))
		if len(line) == 0 {
			fmt.Fprint(w, "  (idle)")
		}
		for _, e := range line {
			fmt.Fprintf(w, "  %s", e)
		}
		fmt.Fprintln(w)
	}
}

// usText renders a microsecond quantity as milliseconds.
func usText(u int64) string { return vtime.Milliseconds(vtime.Time(u) * 1000) }
