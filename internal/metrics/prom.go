package metrics

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, histograms as
// summaries (quantile series plus _count and _sum). Values are virtual
// nanoseconds for latency series. Output order is the snapshot's
// deterministic instrument order. Volatile instruments are included —
// this is a live surface, not a golden one.
func WritePrometheus(w io.Writer, s Snapshot) {
	lastType := ""
	for _, c := range s.Counters {
		if lastType != "counter/"+c.Name {
			fmt.Fprintf(w, "# TYPE %s counter\n", c.Name)
			lastType = "counter/" + c.Name
		}
		fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels, ""), c.Value)
	}
	for _, g := range s.Gauges {
		if lastType != "gauge/"+g.Name {
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name)
			lastType = "gauge/" + g.Name
		}
		fmt.Fprintf(w, "%s%s %d\n", g.Name, promLabels(g.Labels, ""), g.Value)
	}
	for _, h := range s.Histograms {
		if lastType != "summary/"+h.Name {
			fmt.Fprintf(w, "# TYPE %s summary\n", h.Name)
			lastType = "summary/" + h.Name
		}
		fmt.Fprintf(w, "%s%s %d\n", h.Name, promLabels(h.Labels, `quantile="0.5"`), h.P50US*1000)
		fmt.Fprintf(w, "%s%s %d\n", h.Name, promLabels(h.Labels, `quantile="0.9"`), h.P90US*1000)
		fmt.Fprintf(w, "%s%s %d\n", h.Name, promLabels(h.Labels, `quantile="0.99"`), h.P99US*1000)
		fmt.Fprintf(w, "%s_sum%s %d\n", h.Name, promLabels(h.Labels, ""), h.SumUS*1000)
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels, ""), h.Count)
	}
	for _, tl := range s.Timelines {
		if lastType != "gauge/"+tl.Name {
			fmt.Fprintf(w, "# TYPE %s gauge\n", tl.Name)
			lastType = "gauge/" + tl.Name
		}
		value := int64(1) // implicit initial state: up
		if n := len(tl.Points); n > 0 {
			value = tl.Points[n-1].Value
		}
		fmt.Fprintf(w, "%s%s %d\n", tl.Name, promLabels(tl.Labels, ""), value)
	}
}

// promLabels renders a label set (plus an optional pre-rendered extra
// pair) in exposition syntax, empty when there are no labels.
func promLabels(l Labels, extra string) string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	add("server", l.Server)
	add("op", l.Op)
	add("host", l.Host)
	add("class", l.Class)
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
