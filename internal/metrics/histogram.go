package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/vtime"
)

// The histogram is HDR-style log-linear: values below 2^histSubBits
// nanoseconds land in singleton buckets, and every power-of-two octave
// above that is split into histSub linear sub-buckets, bounding the
// relative bucket width at 1/histSub (≈1.6%). With histMaxShift octaves
// the table covers latencies up to ~2^(histSubBits+1+histMaxShift) ns
// (≈38 virtual minutes); larger values clamp into the last bucket.
//
// Alongside each bucket's count the histogram keeps the bucket's value
// *sum*, so a quantile is reported as the mean of the bucket holding the
// target rank rather than a bucket boundary. For a degenerate
// distribution (every sample equal — e.g. the uncontended Figure 1
// transaction) the quantile is therefore exact, and in general the error
// is bounded by the bucket width.
const (
	histSubBits  = 6
	histSub      = 1 << histSubBits // 64 sub-buckets per octave
	histMaxShift = 34
	histBuckets  = (histMaxShift + 2) * histSub // 2304
)

// Histogram is a fixed-bucket latency histogram with atomic recording.
// Use NewHistogram (or Registry.Histogram); the zero value is not valid.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sums   [histBuckets]atomic.Int64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
	ex     exemplars
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	shift := bits.Len64(u) - 1 - histSubBits
	idx := shift*histSub + int(u>>uint(shift))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketBounds returns the inclusive value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx)
	}
	shift := idx/histSub - 1
	m := int64(idx - shift*histSub) // in [histSub, 2*histSub)
	return m << uint(shift), (m+1)<<uint(shift) - 1
}

// Record adds one latency observation. Zero virtual cost; safe from any
// goroutine.
func (h *Histogram) Record(d vtime.Time) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	h.counts[idx].Add(1)
	h.sums[idx].Add(v)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() vtime.Time {
	if h == nil {
		return 0
	}
	return vtime.Time(h.sum.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() vtime.Time {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return vtime.Time(h.max.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() vtime.Time {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return vtime.Time(h.min.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() vtime.Time {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return vtime.Time(h.sum.Load() / int64(n))
}

// Quantile returns the q-quantile (0 < q ≤ 1) by the nearest-rank
// method: the mean of the bucket containing rank ⌈q·n⌉. q=1 returns the
// exact maximum.
func (h *Histogram) Quantile(q float64) vtime.Time {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return vtime.Time(h.sums[i].Load() / int64(c))
		}
	}
	return h.Max()
}
