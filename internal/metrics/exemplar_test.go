package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestExemplarRecordAndFetch(t *testing.T) {
	h := NewHistogram()
	var nilH *Histogram
	nilH.Exemplar(time.Millisecond, 1) // nil-safe
	if nilH.Exemplars() != nil {
		t.Fatalf("nil histogram returned exemplars")
	}
	h.Record(2 * time.Millisecond)
	h.Exemplar(2*time.Millisecond, 41)
	h.Record(700 * time.Millisecond)
	h.Exemplar(700*time.Millisecond, 97)
	h.Exemplar(0, 0) // span 0: ignored
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("Exemplars = %+v, want 2 slots", ex)
	}
	var spans []uint64
	for _, e := range ex {
		spans = append(spans, e.Span)
		if e.ValueUS < e.BucketLoUS || e.ValueUS > e.BucketHiUS {
			t.Fatalf("exemplar value %d outside bucket [%d, %d]", e.ValueUS, e.BucketLoUS, e.BucketHiUS)
		}
	}
	if (spans[0] != 41 && spans[1] != 41) || (spans[0] != 97 && spans[1] != 97) {
		t.Fatalf("exemplar spans = %v, want 41 and 97", spans)
	}
	// Same octave: newest observation wins the slot.
	h.Exemplar(1800*time.Microsecond, 55)
	for _, e := range h.Exemplars() {
		if e.Span == 41 {
			t.Fatalf("stale exemplar survived overwrite: %+v", e)
		}
	}
}

func TestExemplarsExcludedFromJSON(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat", Labels{Server: "fs1"})
	h.Record(time.Millisecond)
	h.Exemplar(time.Millisecond, 7)
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 || len(snap.Histograms[0].Exemplars) != 1 {
		t.Fatalf("snapshot lost exemplars: %+v", snap.Histograms)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "xemplar") || strings.Contains(string(data), "span") {
		t.Fatalf("exemplars leaked into JSON: %s", data)
	}
}
