package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/vtime"
)

func textFixture() (*Registry, *Sampler) {
	reg := New()
	s := NewSampler(reg, 50*time.Millisecond)
	reg.Counter("ops_total", Labels{Server: "fs1"}).Inc()
	s.AdvanceTo(60 * time.Millisecond)
	reg.Counter("ops_total", Labels{Server: "fs1"}).Add(2)
	reg.VolatileCounter("scratch_total", Labels{}).Inc()
	reg.Gauge("inflight", Labels{}).Set(3)
	reg.VolatileGauge("pool_size", Labels{}).Set(7)
	reg.Histogram("latency", Labels{Server: "fs1", Op: "Read"}).Record(vtime.Time(2560 * time.Microsecond))
	reg.Timeline("server_up", Labels{Host: "fs1"}).Mark(100*time.Millisecond, 0)
	s.AdvanceTo(120 * time.Millisecond)
	return reg, s
}

func TestWriteTextRendersEveryKind(t *testing.T) {
	reg, _ := textFixture()
	var sb strings.Builder
	reg.Snapshot().WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"counters:",
		`ops_total{server="fs1"}`,
		"scratch_total",
		"(volatile)",
		"gauges:",
		"inflight",
		"histograms:",
		`latency{server="fs1",op="Read"}`,
		"2.56 ms",
		"timelines:",
		`server_up{host="fs1"}`,
		"100.00 ms=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDiffsPerTickDeltas(t *testing.T) {
	_, s := textFixture()
	if s.Tick() != 50*time.Millisecond {
		t.Fatalf("tick = %v", s.Tick())
	}
	var sb strings.Builder
	WriteDiffs(&sb, s.Samples())
	out := sb.String()
	// First tick saw one increment, second the +2 and the volatile +1.
	for _, want := range []string{
		`t=50.00 ms`,
		`ops_total{server="fs1"} +1`,
		`t=100.00 ms`,
		`ops_total{server="fs1"} +2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteDiffs missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDiffsIdleTick(t *testing.T) {
	reg := New()
	s := NewSampler(reg, 50*time.Millisecond)
	s.AdvanceTo(60 * time.Millisecond)
	var sb strings.Builder
	WriteDiffs(&sb, s.Samples())
	if !strings.Contains(sb.String(), "(idle)") {
		t.Fatalf("idle tick not marked:\n%s", sb.String())
	}
}

func TestSamplerPoolSource(t *testing.T) {
	reg := New()
	s := NewSampler(reg, 50*time.Millisecond)
	s.SetPoolSource(func() (uint64, uint64) { return 10, 3 })
	s.AdvanceTo(60 * time.Millisecond)
	samples := s.Samples()
	if len(samples) != 1 || samples[0].PoolGets != 10 || samples[0].PoolNews != 3 {
		t.Fatalf("samples = %+v", samples)
	}
}
