package metrics

import (
	"sync/atomic"

	"repro/internal/vtime"
)

// Exemplar links one histogram bucket to a retained trace span: the
// last observation that landed in the bucket while a tracer was active,
// with the span id of the operation that produced it. Exemplars are the
// bridge from an aggregate ("p99 is 4.1 ms") to a concrete retained
// span tree ("span 83021 is one such operation") — the role OpenMetrics
// exemplars play for Prometheus histograms.
//
// Exemplars ride outside the deterministic surface: span ids depend on
// goroutine interleaving under the concurrent drivers, so HistPoint
// carries them with `json:"-"` and no golden document includes them.
type Exemplar struct {
	// BucketLoUS/BucketHiUS are the bucket's value range, microseconds.
	BucketLoUS int64 `json:"-"`
	BucketHiUS int64 `json:"-"`
	// ValueUS is the exemplar observation, microseconds.
	ValueUS int64 `json:"-"`
	// Span is the trace span id of the operation observed.
	Span uint64 `json:"-"`
}

// exemplarSlots bounds per-histogram exemplar storage: one slot per
// octave (plus the sub-histSub singleton range), far coarser than the
// 2304 buckets but enough to land one exemplar near the median and one
// near the tail.
const exemplarSlots = histMaxShift + 2

// exemplars is the per-histogram store. Each slot packs (value, span)
// behind its own pair of atomics; a torn pair can momentarily mix two
// observations' value and span, which for a diagnostic pointer is an
// accepted cost of staying lock-free on the hot path.
type exemplars struct {
	values [exemplarSlots]atomic.Int64
	spans  [exemplarSlots]atomic.Uint64
	marks  [exemplarSlots]atomic.Uint32 // slot has data
}

// slotIndex maps a bucket index to its exemplar slot (the octave).
func slotIndex(bucketIdx int) int {
	s := bucketIdx / histSub
	if s >= exemplarSlots {
		return exemplarSlots - 1
	}
	return s
}

// Exemplar records one observation with the trace span that produced
// it. Call alongside Record when a span id is at hand; zero virtual
// cost, lock-free, nil-safe.
func (h *Histogram) Exemplar(d vtime.Time, span uint64) {
	if h == nil || span == 0 {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	slot := slotIndex(bucketIndex(v))
	h.ex.values[slot].Store(v)
	h.ex.spans[slot].Store(span)
	h.ex.marks[slot].Store(1)
}

// Exemplars returns the populated exemplar slots in value order.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := 0; i < exemplarSlots; i++ {
		if h.ex.marks[i].Load() == 0 {
			continue
		}
		v := h.ex.values[i].Load()
		lo, hi := bucketBounds(bucketIndex(v))
		out = append(out, Exemplar{
			BucketLoUS: lo / 1000,
			BucketHiUS: hi / 1000,
			ValueUS:    v / 1000,
			Span:       h.ex.spans[i].Load(),
		})
	}
	return out
}
