package metrics

import (
	"sync"
	"time"

	"repro/internal/vtime"
)

// Sample is one sampler tick: the registry's counters and gauges as of
// virtual time At. Histograms and timelines are not carried per tick
// (they accumulate monotonically; the final snapshot has them), keeping
// the series compact. PoolGets/PoolNews carry the process-global
// envelope-pool totals when a pool source is wired; they depend on GC
// behavior and are therefore volatile — live surfaces render the reuse
// rate, deterministic documents must drop these fields.
type Sample struct {
	At       vtime.Time     `json:"at_us"`
	Counters []CounterPoint `json:"counters,omitempty"`
	Gauges   []GaugePoint   `json:"gauges,omitempty"`
	PoolGets uint64         `json:"-"`
	PoolNews uint64         `json:"-"`
}

// Total sums the sample's counters with the given name across labels.
func (s Sample) Total(name string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// Sampler snapshots a registry on a fixed virtual-time tick. It has no
// clock of its own: like the chaos engine, it is pumped with AdvanceTo
// from whatever loop is driving virtual time (the workload driver's
// per-op hook, an experiment loop, or a retry observer), and emits one
// sample per tick boundary crossed. Under the sequential driver the
// registry is quiescent at every pump point, so the samples — and any
// document built from them — are deterministic.
type Sampler struct {
	reg  *Registry
	tick vtime.Time
	pool func() (gets, news uint64)

	mu      sync.Mutex
	next    int64 // index of the next tick to emit (first tick at 1*tick)
	samples []Sample
}

// NewSampler returns a sampler taking one snapshot every tick of virtual
// time, starting at t=tick.
func NewSampler(reg *Registry, tick vtime.Time) *Sampler {
	if tick <= 0 {
		tick = 50 * time.Millisecond
	}
	return &Sampler{reg: reg, tick: tick, next: 1}
}

// Tick returns the sampling interval.
func (s *Sampler) Tick() vtime.Time {
	if s == nil {
		return 0
	}
	return s.tick
}

// SetPoolSource wires a volatile envelope-pool reader (gets, news)
// captured alongside each sample.
func (s *Sampler) SetPoolSource(src func() (gets, news uint64)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool = src
}

// NextAt returns the virtual time of the next tick boundary the sampler
// would emit — the fence source the sharded workload drivers merge with
// the chaos schedule so samples are taken at deterministic quiescent
// cuts (PROTOCOL.md §12). Nil-safe (returns 0).
func (s *Sampler) NextAt() vtime.Time {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return vtime.Time(s.next) * s.tick
}

// AdvanceTo emits one sample per tick boundary at or before now that has
// not been emitted yet. Nil-safe.
func (s *Sampler) AdvanceTo(now vtime.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for at := vtime.Time(s.next) * s.tick; at <= now; at = vtime.Time(s.next) * s.tick {
		snap := s.reg.Snapshot()
		sample := Sample{At: at, Counters: snap.Counters, Gauges: snap.Gauges}
		if s.pool != nil {
			sample.PoolGets, sample.PoolNews = s.pool()
		}
		s.samples = append(s.samples, sample)
		s.next++
	}
}

// Samples returns the emitted samples in tick order.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// SeriesPoint is one tick of a derived time-series: the delta of a
// counter total between consecutive samples (Value), or a gauge reading
// at the tick (for gauge-derived series).
type SeriesPoint struct {
	At    vtime.Time `json:"at_us"`
	Value int64      `json:"value"`
}

// CounterSeries derives the per-tick delta series of a counter name
// (summed across labels) from a sample sequence.
func CounterSeries(samples []Sample, name string) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(samples))
	var prev uint64
	for _, s := range samples {
		cur := s.Total(name)
		out = append(out, SeriesPoint{At: s.At, Value: int64(cur - prev)})
		prev = cur
	}
	return out
}
