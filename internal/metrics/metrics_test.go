package metrics

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshotOrderAndTotals(t *testing.T) {
	r := New()
	r.Counter("ops_total", Labels{Server: "fs2"}).Add(3)
	r.Counter("ops_total", Labels{Server: "fs1"}).Inc()
	r.Counter("aaa_total", Labels{}).Add(7)
	r.VolatileCounter("pool_total", Labels{}).Add(9)
	r.Gauge("inflight", Labels{}).Set(2)
	r.Histogram("lat", Labels{Server: "fs1", Op: "Echo"}).Record(2560 * time.Microsecond)
	r.Timeline(TimelineServerUp, Labels{Host: "fs1"}).Mark(100*time.Millisecond, 0)

	s := r.Snapshot()
	var names []string
	for _, c := range s.Counters {
		names = append(names, c.Name+"/"+c.Labels.Server)
	}
	want := []string{"aaa_total/", "ops_total/fs1", "ops_total/fs2", "pool_total/"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("counter order = %v, want %v", names, want)
	}
	if got := s.CounterTotal("ops_total"); got != 4 {
		t.Fatalf("CounterTotal(ops_total) = %d, want 4", got)
	}
	if got := s.GaugeTotal("inflight"); got != 2 {
		t.Fatalf("GaugeTotal(inflight) = %d, want 2", got)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].P50US != 2560 {
		t.Fatalf("histogram snapshot = %+v, want p50 2560us", s.Histograms)
	}

	det := s.Deterministic()
	for _, c := range det.Counters {
		if c.Name == "pool_total" {
			t.Fatalf("volatile counter survived Deterministic(): %+v", det.Counters)
		}
	}
	if len(det.Counters) != len(s.Counters)-1 {
		t.Fatalf("Deterministic dropped wrong count: %d vs %d", len(det.Counters), len(s.Counters))
	}

	// Nil registry and nil instruments are no-ops throughout.
	var nr *Registry
	nr.Counter("x", Labels{}).Inc()
	nr.Gauge("x", Labels{}).Add(1)
	nr.Histogram("x", Labels{}).Record(1)
	nr.Timeline("x", Labels{}).Mark(0, 0)
	if got := nr.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}
}

func TestSamplerTicks(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", Labels{})
	s := NewSampler(r, 10*time.Millisecond)
	s.AdvanceTo(5 * time.Millisecond) // before first tick
	if len(s.Samples()) != 0 {
		t.Fatalf("sample emitted before first tick")
	}
	c.Add(4)
	s.AdvanceTo(10 * time.Millisecond) // exactly on tick
	c.Add(6)
	s.AdvanceTo(35 * time.Millisecond) // crosses ticks 20 and 30
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("got %d samples, want 3", len(got))
	}
	wantAt := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	wantTotals := []uint64{4, 10, 10}
	for i, sm := range got {
		if sm.At != wantAt[i] || sm.Total("ops_total") != wantTotals[i] {
			t.Fatalf("sample %d = at %v total %d, want at %v total %d",
				i, sm.At, sm.Total("ops_total"), wantAt[i], wantTotals[i])
		}
	}
	series := CounterSeries(got, "ops_total")
	if series[0].Value != 4 || series[1].Value != 6 || series[2].Value != 0 {
		t.Fatalf("delta series wrong: %+v", series)
	}
}

func TestHealthReportWindows(t *testing.T) {
	r := New()
	tl := r.Timeline(TimelineServerUp, Labels{Host: "fs1"})
	tl.Mark(200*time.Millisecond, 0)
	tl.Mark(300*time.Millisecond, 1)
	tl.Mark(900*time.Millisecond, 0) // still down at horizon

	samples := []Sample{
		{At: 100 * time.Millisecond, Counters: []CounterPoint{{Name: "client_retries_total", Value: 0}}},
		{At: 200 * time.Millisecond, Counters: []CounterPoint{{Name: "client_retries_total", Value: 0}}},
		{At: 300 * time.Millisecond, Counters: []CounterPoint{{Name: "client_retries_total", Value: 5}}},
		{At: 400 * time.Millisecond, Counters: []CounterPoint{{Name: "client_retries_total", Value: 7}}},
		{At: 500 * time.Millisecond, Counters: []CounterPoint{{Name: "client_retries_total", Value: 7}}},
	}
	rep := Health(r.Snapshot(), samples, time.Second, 0.9)
	if len(rep.Servers) != 1 {
		t.Fatalf("got %d servers, want 1", len(rep.Servers))
	}
	sh := rep.Servers[0]
	wantOutages := []Window{
		{From: 200 * time.Millisecond, To: 300 * time.Millisecond},
		{From: 900 * time.Millisecond, To: time.Second},
	}
	if !reflect.DeepEqual(sh.Outages, wantOutages) {
		t.Fatalf("outages = %+v, want %+v", sh.Outages, wantOutages)
	}
	if sh.Up {
		t.Fatalf("server marked up at horizon despite open outage")
	}
	if sh.DowntimeUS != 200_000 {
		t.Fatalf("downtime = %dus, want 200000", sh.DowntimeUS)
	}
	if sh.Availability != 0.8 || sh.SLOMet {
		t.Fatalf("availability %v sloMet %v, want 0.8 / violated", sh.Availability, sh.SLOMet)
	}
	// 10% budget over 1s = 100ms allowed; 200ms used => budget -1.0.
	if diff := sh.ErrorBudgetLeft + 1.0; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("error budget = %v, want -1.0", sh.ErrorBudgetLeft)
	}
	wantDegraded := []Window{{From: 200 * time.Millisecond, To: 400 * time.Millisecond}}
	if !reflect.DeepEqual(rep.Degraded, wantDegraded) {
		t.Fatalf("degraded = %+v, want %+v", rep.Degraded, wantDegraded)
	}
	var buf strings.Builder
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "VIOLATED") || !strings.Contains(buf.String(), "outage") {
		t.Fatalf("text report missing expected lines:\n%s", buf.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("ops_total", Labels{Server: "fs1", Op: "Echo"}).Add(2)
	r.Gauge("inflight", Labels{}).Set(1)
	r.Histogram("lat", Labels{Server: "fs1"}).Record(2560 * time.Microsecond)
	r.Timeline(TimelineServerUp, Labels{Host: "fs1"}).Mark(time.Millisecond, 0)
	var buf strings.Builder
	WritePrometheus(&buf, r.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{server="fs1",op="Echo"} 2`,
		"# TYPE inflight gauge",
		"inflight 1",
		"# TYPE lat summary",
		`lat{server="fs1",quantile="0.5"} 2560000`,
		`lat_count{server="fs1"} 1`,
		`server_up{host="fs1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestSamplerNextAt pins the fence-source probe: NextAt reports the
// first unemitted tick boundary, advances past emitted boundaries, and
// is nil-safe — the contract the engine's merged fence schedule relies
// on (PROTOCOL.md §12.4).
func TestSamplerNextAt(t *testing.T) {
	reg := New()
	s := NewSampler(reg, 10*time.Millisecond)
	if got := s.NextAt(); got != 10*time.Millisecond {
		t.Fatalf("fresh NextAt = %v, want 10ms", got)
	}
	s.AdvanceTo(25 * time.Millisecond)
	if got := s.NextAt(); got != 30*time.Millisecond {
		t.Fatalf("NextAt after AdvanceTo(25ms) = %v, want 30ms", got)
	}
	var nilS *Sampler
	if nilS.NextAt() != 0 || nilS.Tick() != 0 {
		t.Fatal("nil sampler probes must return 0")
	}
	if def := NewSampler(reg, 0); def.Tick() != 50*time.Millisecond {
		t.Fatalf("default tick = %v, want 50ms", def.Tick())
	}
}
