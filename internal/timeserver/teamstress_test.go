package timeserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/vtime"
)

// TestTeamStressTimeServer issues GetTime from many concurrent client
// processes against one time-server team.
func TestTeamStressTimeServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	if _, err := Start(k.NewHost("services"), core.WithTeam(3)); err != nil {
		t.Fatal(err)
	}

	const clients, trials = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("ws%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			var last uint64
			for j := 0; j < trials; j++ {
				now, err := GetTime(proc)
				if err != nil {
					errs <- fmt.Errorf("client %d trial %d: %w", i, j, err)
					return
				}
				if now <= last {
					errs <- fmt.Errorf("client %d trial %d: time went %d -> %d", i, j, last, now)
					return
				}
				last = now
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
