// Package timeserver implements the V-System time service (§4.2): the
// paper's example of a simple service for which clients typically
// translate from service to real server pid on each operation, rather
// than caching the binding.
//
// The server answers OpQueryInstance-style time requests with the
// domain's virtual time. It also exposes its single "clock" object under
// the name-handling protocol, so even the time is a nameable, queryable
// object.
package timeserver

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
)

// Server is the time server.
type Server struct {
	srv   *core.Server
	proc  *kernel.Process
	store *core.MapStore
}

// clockObjectID is the id of the single clock object.
const clockObjectID = 1

// Start spawns a time server on host and registers the time service.
// Options (e.g. core.WithTeam) configure the serving runtime.
func Start(host *kernel.Host, opts ...core.Option) (*Server, error) {
	proc, err := host.NewProcess("time-server")
	if err != nil {
		return nil, err
	}
	s := &Server{proc: proc, store: core.NewMapStore()}
	if err := s.store.Bind(core.CtxDefault, "clock",
		core.ObjectEntry(proto.TagServiceBinding, clockObjectID)); err != nil {
		return nil, err
	}
	s.srv = core.NewServer(proc, s.store, s, opts...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServiceTime, proc.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the server's single context.
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// HandleNamed implements core.Handler: the clock object answers query.
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		now := req.Proc().Now()
		d := proto.Descriptor{
			Tag:      proto.TagServiceBinding,
			ObjectID: clockObjectID,
			Name:     "clock",
			Modified: uint64(now),
			Size:     uint32(now / 1e9), // whole virtual seconds since boot
		}
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply
	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler: OpEcho doubles as "get time" for the
// simple per-operation clients §4.2 describes — the reply's F[0]/F[1]
// carry the server's virtual time.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	switch req.Msg.Op {
	case proto.OpEcho:
		reply := core.OkReply()
		now := uint64(req.Proc().Now())
		reply.F[0] = uint32(now >> 32)
		reply.F[1] = uint32(now)
		return reply
	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// GetTime is the client stub the paper sketches: GetPid(time service) on
// each call, then one transaction.
func GetTime(proc *kernel.Process) (uint64, error) {
	pid, err := proc.GetPid(kernel.ServiceTime, kernel.ScopeBoth)
	if err != nil {
		return 0, err
	}
	reply, err := core.Transact(proc, pid, &proto.Message{Op: proto.OpEcho})
	if err != nil {
		return 0, err
	}
	return uint64(reply.F[0])<<32 | uint64(reply.F[1]), nil
}

var _ core.Handler = (*Server)(nil)
