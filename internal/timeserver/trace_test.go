package timeserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
)

// TestTraceInvariantsTimeServer runs GetTime transactions against a
// time-server team in a traced domain and checks the trace invariants
// plus the expected span anatomy.
func TestTraceInvariantsTimeServer(t *testing.T) {
	d := tracetest.New()
	if _, err := Start(d.K.NewHost("services"), core.WithTeam(2)); err != nil {
		t.Fatal(err)
	}
	proc, err := d.K.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	const trials = 4
	for j := 0; j < trials; j++ {
		if _, err := GetTime(proc); err != nil {
			t.Fatalf("trial %d: %v", j, err)
		}
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, trials)
	tracetest.Require(t, spans, trace.KindServe, trials)
	tracetest.Require(t, spans, trace.KindReply, trials)
	tracetest.Require(t, spans, trace.KindHandoff, trials)
	tracetest.Require(t, spans, trace.KindWire, trials*2)
}
