package timeserver

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("services")
	s, err := Start(host)
	if err != nil {
		t.Fatal(err)
	}
	clientHost := k.NewHost("ws")
	client, err := clientHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Destroy() })
	return s, client
}

func TestGetTimeBindsPerUse(t *testing.T) {
	s, client := startRig(t)
	t1, err := GetTime(client)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GetTime(client)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= t1 {
		t.Fatalf("time must advance: %d then %d", t1, t2)
	}
	// Per-use binding survives server re-creation (§4.2).
	host := s.proc.Host()
	s.proc.Destroy()
	s2, err := Start(host)
	if err != nil {
		t.Fatal(err)
	}
	if s2.PID() == s.PID() {
		t.Fatal("new server should have a new pid")
	}
	if _, err := GetTime(client); err != nil {
		t.Fatalf("GetTime after re-creation: %v", err)
	}
}

func TestGetTimeNoService(t *testing.T) {
	_, client := startRig(t)
	// A domain without the service registered.
	k2 := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	h := k2.NewHost("lonely")
	p, err := h.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GetTime(p); !errors.Is(err, kernel.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	_ = client
}

func TestClockIsNameableObject(t *testing.T) {
	s, client := startRig(t)
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(core.CtxDefault), "clock")
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Name != "clock" || d.Tag != proto.TagServiceBinding {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
	// Unknown names are unbound.
	req2 := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req2, uint32(core.CtxDefault), "sundial")
	if reply, err := client.Send(req2, s.PID()); err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}
