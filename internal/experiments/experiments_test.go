package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) Result {
	t.Helper()
	res, err := Run(id)
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id = %q", res.ID)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("experiment %s produced no rows", id)
	}
	return res
}

// parseMs extracts the float from a "12.34 ms" measurement.
func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, " ms"), 64)
	if err != nil {
		t.Fatalf("cannot parse measurement %q: %v", s, err)
	}
	return v
}

func TestIDsCanonicalOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != 23 {
		t.Fatalf("ids = %v", ids)
	}
	if ids[0] != "e1" || ids[len(ids)-1] != "a19" {
		t.Fatalf("order = %v", ids)
	}
	for i, id := range ids[:4] {
		if id != []string{"e1", "e2", "e3", "e5"}[i] {
			t.Fatalf("order = %v", ids)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("zz"); err == nil {
		t.Fatal("unknown id must fail")
	}
}

func TestE1Shape(t *testing.T) {
	res := runExp(t, "e1")
	remote := parseMs(t, res.Rows[0].Measured)
	remote10 := parseMs(t, res.Rows[1].Measured)
	local := parseMs(t, res.Rows[2].Measured)
	if remote10 >= remote {
		t.Fatalf("10 Mbit transaction (%v) must be faster than 3 Mbit (%v)", remote10, remote)
	}
	// The headline calibration: 2.56 ms ±2%.
	if remote < 2.51 || remote > 2.61 {
		t.Fatalf("remote transaction = %v ms, want ≈2.56", remote)
	}
	if local >= remote {
		t.Fatalf("local %v must beat remote %v", local, remote)
	}
}

func TestE2Shape(t *testing.T) {
	res := runExp(t, "e2")
	load := parseMs(t, res.Rows[0].Measured)
	// Paper: 338 ms; allow ±10%.
	if load < 304 || load > 372 {
		t.Fatalf("64 KB load = %v ms, want ≈338", load)
	}
}

func TestE3Shape(t *testing.T) {
	res := runExp(t, "e3")
	withRA := parseMs(t, res.Rows[0].Measured)
	withoutRA := parseMs(t, res.Rows[1].Measured)
	// The disk rate bounds below; the paper's 17.13 lies between our two
	// modes.
	if withRA < 15.0 || withRA > 17.2 {
		t.Fatalf("read-ahead per page = %v ms", withRA)
	}
	if withoutRA <= withRA {
		t.Fatal("read-ahead must help")
	}
	if withRA > 17.13 || withoutRA < 17.13 {
		t.Fatalf("paper's 17.13 ms should lie between %v and %v", withRA, withoutRA)
	}
}

func TestT1Shape(t *testing.T) {
	res := runExp(t, "t1")
	vals := make(map[string]float64, len(res.Rows))
	for _, r := range res.Rows {
		vals[r.Label] = parseMs(t, r.Measured)
	}
	cl := vals["current context, server local"]
	cr := vals["current context, server remote"]
	pl := vals["via prefix, server local"]
	pr := vals["via prefix, server remote"]
	if !(cl < cr && cr < pr && cl < pl) {
		t.Fatalf("ordering violated: %v", vals)
	}
	dLocal := vals["prefix overhead (local column)"]
	dRemote := vals["prefix overhead (remote column)"]
	diff := dLocal - dRemote
	if diff < 0 {
		diff = -diff
	}
	// The paper's key invariant: the overhead is identical within
	// experimental error (they saw 3.94 vs 3.99).
	if diff > 0.15 {
		t.Fatalf("prefix overheads differ: %v vs %v", dLocal, dRemote)
	}
	if dLocal < 3.0 || dLocal > 4.8 {
		t.Fatalf("prefix overhead = %v ms, paper ≈3.94", dLocal)
	}
	// Quadrants within ±35% of the paper's values.
	for label, paper := range map[string]float64{
		"current context, server local":  1.21,
		"current context, server remote": 3.70,
		"via prefix, server local":       5.14,
		"via prefix, server remote":      7.69,
	} {
		got := vals[label]
		if got < paper*0.65 || got > paper*1.35 {
			t.Errorf("%s = %v ms, paper %v (±35%%)", label, got, paper)
		}
	}
}

func TestE5Shape(t *testing.T) {
	res := runExp(t, "e5")
	if !strings.Contains(res.Rows[0].Measured, "B") {
		t.Fatalf("table size row = %+v", res.Rows[0])
	}
}

func TestA1Shape(t *testing.T) {
	res := runExp(t, "a1")
	// Pairs of rows per N: directory read must beat enumerate+query, and
	// the advantage must grow with N.
	var prevRatio float64
	for i := 0; i+1 < len(res.Rows); i += 2 {
		dir := parseMs(t, res.Rows[i].Measured)
		enum := parseMs(t, res.Rows[i+1].Measured)
		if enum <= dir {
			t.Fatalf("enumerate (%v) must cost more than directory read (%v)", enum, dir)
		}
		ratio := enum / dir
		if ratio < prevRatio {
			t.Fatalf("advantage should grow with N: %v then %v", prevRatio, ratio)
		}
		prevRatio = ratio
	}
}

func TestA2Shape(t *testing.T) {
	res := runExp(t, "a2")
	dist := parseMs(t, res.Rows[0].Measured)
	cent := parseMs(t, res.Rows[1].Measured)
	if cent <= dist {
		t.Fatalf("centralized (%v) must cost more than distributed (%v)", cent, dist)
	}
}

func TestA3Shape(t *testing.T) {
	res := runExp(t, "a3")
	if !strings.HasPrefix(res.Rows[0].Measured, "7 ") {
		t.Fatalf("centralized dangling = %q, want 7", res.Rows[0].Measured)
	}
	if !strings.HasPrefix(res.Rows[1].Measured, "0 ") {
		t.Fatalf("V dangling = %q, want 0", res.Rows[1].Measured)
	}
}

func TestA4Shape(t *testing.T) {
	res := runExp(t, "a4")
	if res.Rows[0].Measured != "0/10" {
		t.Fatalf("centralized availability = %q", res.Rows[0].Measured)
	}
	if res.Rows[1].Measured != "10/10" {
		t.Fatalf("V availability = %q", res.Rows[1].Measured)
	}
}

func TestA5Shape(t *testing.T) {
	res := runExp(t, "a5")
	if res.Rows[0].Measured != "recovers" {
		t.Fatalf("dynamic binding = %q", res.Rows[0].Measured)
	}
	if !strings.HasPrefix(res.Rows[1].Measured, "dangles") {
		t.Fatalf("static binding = %q", res.Rows[1].Measured)
	}
}

func TestA6Shape(t *testing.T) {
	res := runExp(t, "a6")
	viaPrefix := parseMs(t, res.Rows[0].Measured)
	viaGroup := parseMs(t, res.Rows[1].Measured)
	if viaGroup >= viaPrefix {
		t.Fatalf("multicast (%v) should beat prefix indirection (%v)", viaGroup, viaPrefix)
	}
	if res.Rows[2].Measured != "succeeds" {
		t.Fatalf("replica failover = %q", res.Rows[2].Measured)
	}
}

func TestPrintRendersAllRows(t *testing.T) {
	res := Result{
		ID: "t1", Title: "demo", Source: "§6",
		Rows: []Row{{Label: "a", Paper: "1 ms", Measured: "2 ms", Note: "n"}},
	}
	var sb strings.Builder
	Print(&sb, res)
	out := sb.String()
	for _, want := range []string{"T1", "demo", "§6", "a", "1 ms", "2 ms", "n", "paper", "measured"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestA7Shape(t *testing.T) {
	res := runExp(t, "a7")
	full := parseMs(t, res.Rows[0].Measured)
	filtered := parseMs(t, res.Rows[1].Measured)
	if filtered >= full {
		t.Fatalf("pattern read (%v) must beat the full read (%v)", filtered, full)
	}
	if !strings.HasSuffix(res.Rows[2].Measured, "%") {
		t.Fatalf("savings row = %q", res.Rows[2].Measured)
	}
}

func TestA8Shape(t *testing.T) {
	res := runExp(t, "a8")
	plain := parseMs(t, res.Rows[0].Measured)
	cached := parseMs(t, res.Rows[1].Measured)
	if cached >= plain {
		t.Fatalf("cached (%v) must beat uncached (%v) on reuse", cached, plain)
	}
	if res.Rows[2].Measured != "0/20 opens fail" {
		t.Fatalf("no-cache availability = %q", res.Rows[2].Measured)
	}
	if res.Rows[3].Measured != "20/20 opens fail" {
		t.Fatalf("naive cache inconsistency = %q", res.Rows[3].Measured)
	}
	if !strings.HasPrefix(res.Rows[4].Measured, "0/20 fail") {
		t.Fatalf("retry cache = %q", res.Rows[4].Measured)
	}
}

func TestA9Shape(t *testing.T) {
	res := runExp(t, "a9")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Per-load latency grows with N; goodput plateaus (4-client aggregate
	// within 2x of the single-client rate rather than scaling 4x).
	var times []float64
	for _, r := range res.Rows {
		times = append(times, parseMs(t, r.Measured))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("saturation: per-load time must grow with N: %v", times)
		}
	}
	if times[3] < 4*times[0] {
		t.Fatalf("8 concurrent loads (%v ms) should be at least ~4x one load (%v ms)", times[3], times[0])
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Serial experiments are pure virtual time: two runs must produce
	// byte-identical rows. (A9 is excluded: it is genuinely concurrent
	// and documented as approximately reproducible.)
	for _, id := range []string{"e1", "e3", "t1", "a2"} {
		first := runExp(t, id)
		second := runExp(t, id)
		if len(first.Rows) != len(second.Rows) {
			t.Fatalf("%s: row counts differ", id)
		}
		for i := range first.Rows {
			if first.Rows[i] != second.Rows[i] {
				t.Fatalf("%s row %d differs:\n%+v\n%+v", id, i, first.Rows[i], second.Rows[i])
			}
		}
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results for %d ids", len(results), len(IDs()))
	}
	var sb strings.Builder
	for _, res := range results {
		Print(&sb, res)
	}
	if !strings.Contains(sb.String(), "2.56 ms") {
		t.Fatal("rendered output missing the E1 anchor")
	}
}

func TestScorecardAllReproduced(t *testing.T) {
	checks, err := Scorecard()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 9 {
		t.Fatalf("scorecard has %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Upholds {
			t.Errorf("claim %q deviates: paper %s, measured %s", c.Claim, c.Paper, c.Got)
		}
	}
	var sb strings.Builder
	PrintScorecard(&sb, checks)
	if !strings.Contains(sb.String(), "REPRODUCED") {
		t.Fatal("rendering broken")
	}
}

// parseFracs parses an A10 measured cell like "0.66 / 0.39 / 0.24 ok"
// into the three per-rate success fractions.
func parseFracs(t *testing.T, s string) [3]float64 {
	t.Helper()
	parts := strings.Split(strings.TrimSuffix(s, " ok"), " / ")
	if len(parts) != 3 {
		t.Fatalf("cannot parse fractions %q", s)
	}
	var out [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			t.Fatalf("cannot parse fractions %q: %v", s, err)
		}
		out[i] = v
	}
	return out
}

func TestA10Shape(t *testing.T) {
	res := runExp(t, "a10")
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Rows 0-2 static, 3-5 dynamic; index 1 is the default fault rate.
	staticNone := parseFracs(t, res.Rows[0].Measured)
	dynRetry := parseFracs(t, res.Rows[5].Measured)
	if dynRetry[1] < 0.9 {
		t.Fatalf("dynamic + invalidate-and-retry must stay >= 0.9 at the default fault rate, got %v", dynRetry[1])
	}
	if staticNone[1] > dynRetry[1]-0.2 {
		t.Fatalf("static binding should degrade measurably: static %v vs dynamic %v", staticNone[1], dynRetry[1])
	}
	// More faults must not improve static availability.
	if staticNone[2] > staticNone[0] {
		t.Fatalf("static success should fall with fault rate: %v", staticNone)
	}
	// The recovery-work row exists and reflects engaged machinery.
	if !strings.Contains(res.Rows[6].Measured, "rebinds") {
		t.Fatalf("recovery row = %q", res.Rows[6].Measured)
	}
}

func TestA10Deterministic(t *testing.T) {
	first, second := runExp(t, "a10"), runExp(t, "a10")
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range first.Rows {
		if first.Rows[i] != second.Rows[i] {
			t.Fatalf("row %d differs:\n%+v\n%+v", i, first.Rows[i], second.Rows[i])
		}
	}
}
