package experiments

// A18 measures population-scale resolution (PROTOCOL.md §14): the
// prefix table grown from the paper's dozen bindings to 10³–10⁶ names,
// driven by an open-loop Zipf workload instead of the closed think
// loops every earlier experiment used. Four legs:
//
//   - an index cost model: the mean per-lookup descent cost of the
//     compressed radix index against the flat sorted-table binary
//     search it replaced, counted in deterministic virtual steps over
//     a fixed Zipf sample at each population size, plus the index's
//     byte footprint (the paper's table was 2.6 KB; 10⁶ names is not);
//   - a population sweep at fixed skew, flat and tiered: open-loop
//     throughput and p50/p99 resolution latency as the table grows,
//     with the small points run through both the sequential driver and
//     the conservative engine and deep-compared — per-op latencies
//     included — and the large points engine-only (the equivalence
//     argument does not change with table size, only boot cost does);
//   - a skew sweep at fixed population: how popularity concentration
//     moves the hit rate and the tail;
//   - a traced leg with a mid-run redefinition of the hottest name,
//     fired at a quiescent cut: the recorded trace must satisfy the
//     lease staleness invariant (trace.Check #7) with zero stale
//     windows, since every holder is reachable.
//
// Everything here is virtual time: the documents are byte-identical
// across runs and pinned by golden-guard.

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/nametree"
	"repro/internal/popgen"
	"repro/internal/rig"
	"repro/internal/trace"
)

// a18 shapes. The workload shape is fixed across every leg; only the
// population (and, in the skew sweep, the skew) varies.
const (
	a18Shards          = 4
	a18ClientsPerShard = 2
	a18Arrivals        = 150
	a18Interarrival    = 2 * time.Millisecond
	a18Lease           = 80 * time.Millisecond
	a18Seed            = 11
	a18Skew            = 0.99
	a18PopSeed         = 1
	// a18EquivMax bounds the populations double-run through both
	// drivers: above it the legs are engine-only.
	a18EquivMax = 10_000
	// a18IndexSample is the Zipf draw count behind each index cost row.
	a18IndexSample = 2_000
)

// a18Scale selects the leg sizes: the full scale feeds vbench and the
// golden documents; the test scale keeps the race-mode gates off the
// multi-second 10⁵–10⁶ boots (golden-guard still regenerates and
// compares the full document on every make check).
type a18Scale struct {
	pops     []int
	skewPop  int
	tracePop int
}

var (
	a18FullScale = a18Scale{pops: []int{1_000, 10_000, 100_000, 1_000_000}, skewPop: 100_000, tracePop: 10_000}
	a18TestScale = a18Scale{pops: []int{1_000, 10_000}, skewPop: 10_000, tracePop: 10_000}
)

// a18SkewSweep is the skew sweep at skewPop names.
var a18SkewSweep = []float64{0.5, 0.99, 1.3}

// ZipfIndexPoint is one index cost row in BENCH_zipf.json: the radix
// descent against the flat binary search over the same table, in
// deterministic steps (node visits vs string comparisons) averaged over
// one fixed Zipf sample. Virtual cost, not wall clock: wall-clock
// behavior of the same structures lives in the nametree benchmarks.
type ZipfIndexPoint struct {
	Population   int     `json:"population"`
	RadixSteps   float64 `json:"radix_steps"`
	FlatCompares float64 `json:"flat_compares"`
	// Speedup is FlatCompares / RadixSteps.
	Speedup float64 `json:"speedup"`
	// IndexBytes is the radix index's key storage (shared prefixes
	// stored once) plus one 8-byte rank entry per name.
	IndexBytes int `json:"index_bytes"`
}

// ZipfRun is one workload point in BENCH_zipf.json.
type ZipfRun struct {
	Population      int     `json:"population"`
	Skew            float64 `json:"skew"`
	CacheTier       bool    `json:"cache_tier"`
	Shards          int     `json:"shards"`
	ClientsPerShard int     `json:"clients_per_shard"`
	Arrivals        int     `json:"arrivals_per_client"`
	InterarrivalUS  int64   `json:"interarrival_us"`
	LeaseUS         int64   `json:"lease_us"`
	Seed            int64   `json:"seed"`

	TotalRequests int   `json:"total_requests"`
	Errors        int   `json:"errors"`
	SpanUS        int64 `json:"open_loop_span_us"`
	// ThroughputRPS is completed arrivals over the open-loop span.
	ThroughputRPS float64 `json:"throughput_rps"`
	// P50US/P99US are open-loop latency percentiles: virtual completion
	// minus scheduled arrival, queueing included.
	P50US int64 `json:"p50_us"`
	P99US int64 `json:"p99_us"`

	ClientHits     int     `json:"client_hits"`
	ClientMisses   int     `json:"client_misses"`
	ClientRenewals int     `json:"client_renewals"`
	ClientHitRate  float64 `json:"client_hit_rate"`
	TierHits       int     `json:"tier_hits,omitempty"`
	TierMisses     int     `json:"tier_misses,omitempty"`
	PrefixGrants   int     `json:"prefix_grants"`
	// TableBytes is the authoritative prefix server's table footprint.
	TableBytes int `json:"table_bytes"`

	// EquivalenceChecked records whether this point was double-run
	// through the sequential driver and the conservative engine;
	// EqualToSequential is the deep comparison (WorkloadResult and the
	// full per-op latency matrix) when it was.
	EquivalenceChecked bool `json:"equivalence_checked"`
	EqualToSequential  bool `json:"equal_to_sequential,omitempty"`
}

// ZipfTrace is the traced redefinition leg in BENCH_zipf.json.
type ZipfTrace struct {
	Population int      `json:"population"`
	LeaseUS    int64    `json:"lease_us"`
	Schedule   []string `json:"schedule"`

	TotalRequests int `json:"total_requests"`
	Completed     int `json:"completed"`
	Errors        int `json:"errors"`
	// Invalidations counts client lease entries dropped by callback
	// when the hottest name was redefined mid-run.
	Invalidations int `json:"invalidations"`

	TraceClean   bool `json:"trace_clean"`
	StaleWindows int  `json:"stale_windows"`
}

// ZipfDoc is the BENCH_zipf.json schema.
type ZipfDoc struct {
	Tool        string `json:"tool"`
	Description string `json:"description"`

	Index     []ZipfIndexPoint `json:"index"`
	Sweep     []ZipfRun        `json:"sweep"`
	SkewSweep []ZipfRun        `json:"skew_sweep"`
	Trace     ZipfTrace        `json:"trace"`
}

// a18Index prices one population's lookups under both index shapes:
// the same fixed Zipf sample resolved through a compressed radix tree
// (counting node visits) and through binary search over the flat
// sorted name table (counting string comparisons) — the structure the
// prefix server used before the radix index replaced it.
func a18Index(pop *popgen.Population) ZipfIndexPoint {
	tree := nametree.New[int]()
	for r, name := range pop.Names {
		tree.Insert(name, r)
	}
	sorted := append([]string(nil), pop.Names...)
	sort.Strings(sorted)

	s := pop.Sampler(a18IndexStream)
	radix, flat := 0, 0
	for i := 0; i < a18IndexSample; i++ {
		name := pop.Names[s.NextRank()]
		_, ok, steps := tree.GetSteps(name)
		if !ok {
			panic("a18: population name missing from index")
		}
		radix += steps
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			flat++
			if sorted[mid] < name {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	}
	pt := ZipfIndexPoint{
		Population:   len(pop.Names),
		RadixSteps:   float64(radix) / a18IndexSample,
		FlatCompares: float64(flat) / a18IndexSample,
		IndexBytes:   tree.KeyBytes() + tree.Len()*8,
	}
	pt.Speedup = pt.FlatCompares / pt.RadixSteps
	return pt
}

// a18IndexStream is the sampler stream behind the index sample —
// distinct from every client stream (those are 1..nclients).
const a18IndexStream = 1 << 20

// a18Config is the common workload shape over a shared population.
func a18Config(pop *popgen.Population, skew float64, tier bool) rig.ZipfConfig {
	return rig.ZipfConfig{
		Population:      len(pop.Names),
		Skew:            skew,
		Pop:             pop,
		PopSeed:         a18PopSeed,
		Shards:          a18Shards,
		ClientsPerShard: a18ClientsPerShard,
		Arrivals:        a18Arrivals,
		Interarrival:    a18Interarrival,
		Lease:           a18Lease,
		CacheTier:       tier,
		Seed:            a18Seed,
	}
}

// a18Run executes one workload point. Populations at or below
// a18EquivMax are double-run (sequential and engine) and deep-compared
// including the per-op latency matrix; larger ones run engine-only.
func a18Run(pop *popgen.Population, skew float64, tier bool) (ZipfRun, error) {
	cfg := a18Config(pop, skew, tier)
	run := ZipfRun{
		Population:      cfg.Population,
		Skew:            skew,
		CacheTier:       tier,
		Shards:          a18Shards,
		ClientsPerShard: a18ClientsPerShard,
		Arrivals:        a18Arrivals,
		InterarrivalUS:  a18Interarrival.Microseconds(),
		LeaseUS:         a18Lease.Microseconds(),
		Seed:            a18Seed,
	}

	var seqRes *rig.WorkloadResult
	var seqLat [][]time.Duration
	if cfg.Population <= a18EquivMax {
		seqTop, err := rig.NewZipfWorkload(cfg)
		if err != nil {
			return run, err
		}
		seqRes = rig.RunWorkload(seqTop.Clients)
		seqLat = seqTop.Latencies
	}

	zw, err := rig.NewZipfWorkload(cfg)
	if err != nil {
		return run, err
	}
	res := rig.RunWorkloadEngine(zw.Clients, rig.EngineOptions{})
	if seqRes != nil {
		run.EquivalenceChecked = true
		run.EqualToSequential = reflect.DeepEqual(seqRes, res) &&
			reflect.DeepEqual(seqLat, zw.Latencies)
	}

	run.TotalRequests = res.Requests
	for _, st := range res.Clients {
		run.Errors += st.Errors
	}
	first, last := zw.OpenLoopSpan()
	span := last - first
	run.SpanUS = span.Microseconds()
	if span > 0 {
		run.ThroughputRPS = float64(res.Requests) / span.Seconds()
	}
	p50, p99 := a18Percentiles(zw.Latencies)
	run.P50US = p50.Microseconds()
	run.P99US = p99.Microseconds()

	for _, s := range zw.Sessions() {
		st := s.LeaseCacheStats()
		run.ClientHits += st.Hits
		run.ClientMisses += st.Misses
		run.ClientRenewals += st.Renewals
	}
	if lookups := run.ClientHits + run.ClientMisses + run.ClientRenewals; lookups > 0 {
		run.ClientHitRate = float64(run.ClientHits) / float64(lookups)
	}
	if tier {
		ts := zw.Tier.Stats()
		run.TierHits = int(ts.Hits)
		run.TierMisses = int(ts.Misses)
	}
	run.PrefixGrants = int(zw.Prefix.LeaseStats().Grants)
	run.TableBytes = zw.Prefix.TableBytes()
	return run, nil
}

// a18Percentiles flattens the latency matrix and reads p50/p99.
func a18Percentiles(lat [][]time.Duration) (p50, p99 time.Duration) {
	var all []time.Duration
	for _, row := range lat {
		all = append(all, row...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all[len(all)*50/100], all[len(all)*99/100]
}

// a18Trace runs the traced leg: the open-loop workload with the
// hottest name redefined at a quiescent cut mid-run. The callback
// barrier reaches every holder, so the trace must be clean under the
// lease staleness invariant with zero stale windows.
func a18Trace(tracePop int) (ZipfTrace, error) {
	leg := ZipfTrace{Population: tracePop, LeaseUS: a18Lease.Microseconds()}
	pop := popgen.NewPopulation(tracePop, a18Skew, a18PopSeed)
	cfg := a18Config(pop, a18Skew, false)
	cfg.Trace = true
	zw, err := rig.NewZipfWorkload(cfg)
	if err != nil {
		return leg, err
	}
	hot := pop.Names[0]
	redefine := func() error {
		proc, err := zw.PrefixHost.NewProcess("admin")
		if err != nil {
			return err
		}
		adm := client.New(proc, zw.Prefix.PID(), zw.Shards[0].RootPair(), "admin")
		if err := adm.DeleteName(hot); err != nil {
			return err
		}
		return adm.AddName(hot, zw.Shards[0].RootPair())
	}
	eng := chaos.New(zw.Kernel, []chaos.Event{
		{At: 100 * time.Millisecond, Action: chaos.Custom, Note: "redefine hottest name", Do: redefine},
	})
	res := rig.RunWorkloadEngine(zw.Clients, rig.EngineOptions{Fences: rig.ChaosFences(eng)})

	leg.Schedule = eng.Log()
	leg.TotalRequests = res.Requests
	for _, c := range res.Clients {
		leg.Completed += c.Completed
		leg.Errors += c.Errors
	}
	for _, s := range zw.Sessions() {
		leg.Invalidations += s.LeaseCacheStats().Invalidations
	}
	spans := zw.Tracer.Snapshot()
	leg.TraceClean = trace.Check(spans, trace.CheckOptions{LeaseBound: a18Lease}) == nil
	leg.StaleWindows = len(trace.StaleWindows(spans))
	return leg, nil
}

// a18Collect runs every leg at the given scale, producing both the
// JSON document and the experiment rows from the same data.
func a18Collect(scale a18Scale) (*ZipfDoc, []Row, error) {
	doc := &ZipfDoc{
		Tool:        "vbench -zipf",
		Description: "population-scale resolution: radix-vs-flat index cost, open-loop Zipf throughput and latency percentiles over population and skew, and the traced mid-run redefinition leg",
	}
	var rows []Row

	pops := make(map[int]*popgen.Population, len(scale.pops))
	for _, n := range scale.pops {
		pop := popgen.NewPopulation(n, a18Skew, a18PopSeed)
		pops[n] = pop
		pt := a18Index(pop)
		if pt.Population >= 100_000 && pt.Speedup <= 1 {
			return nil, nil, fmt.Errorf("a18 index n=%d: radix not faster than flat search (%.2f vs %.2f steps)",
				n, pt.RadixSteps, pt.FlatCompares)
		}
		if pt.RadixSteps > pt.FlatCompares {
			return nil, nil, fmt.Errorf("a18 index n=%d: radix slower than flat search (%.2f vs %.2f steps)",
				n, pt.RadixSteps, pt.FlatCompares)
		}
		doc.Index = append(doc.Index, pt)
		rows = append(rows, Row{
			Label:    fmt.Sprintf("index cost n=%d", n),
			Paper:    "-",
			Measured: fmt.Sprintf("%.2f vs %.2f steps", pt.RadixSteps, pt.FlatCompares),
			Note: fmt.Sprintf("radix descent vs flat binary search, %.1fx; index %d KB",
				pt.Speedup, pt.IndexBytes/1024),
		})
	}

	for _, tier := range []bool{false, true} {
		for _, n := range scale.pops {
			run, err := a18Run(pops[n], a18Skew, tier)
			if err != nil {
				return nil, nil, fmt.Errorf("a18 n=%d tier=%v: %w", n, tier, err)
			}
			if run.EquivalenceChecked && !run.EqualToSequential {
				return nil, nil, fmt.Errorf("a18 n=%d tier=%v: engine result differs from sequential", n, tier)
			}
			if run.Errors != 0 {
				return nil, nil, fmt.Errorf("a18 n=%d tier=%v: %d arrivals failed", n, tier, run.Errors)
			}
			doc.Sweep = append(doc.Sweep, run)
			equiv := "engine-only"
			if run.EquivalenceChecked {
				equiv = "≡ sequential"
			}
			rows = append(rows, Row{
				Label:    fmt.Sprintf("n=%d tier=%v", n, tier),
				Paper:    "-",
				Measured: fmt.Sprintf("%.0f req/s, p99 %s", run.ThroughputRPS, ms(time.Duration(run.P99US)*time.Microsecond)),
				Note: fmt.Sprintf("p50 %s; %.1f%% client hits; table %d KB; %s",
					ms(time.Duration(run.P50US)*time.Microsecond), 100*run.ClientHitRate, run.TableBytes/1024, equiv),
			})
		}
	}

	skewPop := pops[scale.skewPop]
	for _, skew := range a18SkewSweep {
		pop := skewPop
		if pop == nil || pop.Skew != skew {
			pop = popgen.NewPopulation(scale.skewPop, skew, a18PopSeed)
		}
		run, err := a18Run(pop, skew, false)
		if err != nil {
			return nil, nil, fmt.Errorf("a18 skew=%v: %w", skew, err)
		}
		if run.EquivalenceChecked && !run.EqualToSequential {
			return nil, nil, fmt.Errorf("a18 skew=%v: engine result differs from sequential", skew)
		}
		if run.Errors != 0 {
			return nil, nil, fmt.Errorf("a18 skew=%v: %d arrivals failed", skew, run.Errors)
		}
		doc.SkewSweep = append(doc.SkewSweep, run)
		rows = append(rows, Row{
			Label:    fmt.Sprintf("skew=%.2f n=%d", skew, scale.skewPop),
			Paper:    "-",
			Measured: fmt.Sprintf("%.1f%% client hits", 100*run.ClientHitRate),
			Note: fmt.Sprintf("p50 %s, p99 %s; %d upstream grants",
				ms(time.Duration(run.P50US)*time.Microsecond), ms(time.Duration(run.P99US)*time.Microsecond), run.PrefixGrants),
		})
	}

	tr, err := a18Trace(scale.tracePop)
	if err != nil {
		return nil, nil, fmt.Errorf("a18 trace leg: %w", err)
	}
	if !tr.TraceClean {
		return nil, nil, fmt.Errorf("a18 trace leg: trace violates the lease staleness invariant")
	}
	if tr.StaleWindows != 0 {
		return nil, nil, fmt.Errorf("a18 trace leg: %d stale windows despite reachable holders", tr.StaleWindows)
	}
	if tr.Invalidations == 0 {
		return nil, nil, fmt.Errorf("a18 trace leg: redefinition invalidated no holder")
	}
	doc.Trace = tr
	rows = append(rows, Row{
		Label:    fmt.Sprintf("trace leg: redefine hottest of %d", tr.Population),
		Paper:    "-",
		Measured: "0 stale windows",
		Note: fmt.Sprintf("trace-checked (bound %s); %d holders invalidated",
			ms(a18Lease), tr.Invalidations),
	})
	return doc, rows, nil
}

// A18 reports the population-scale legs: the radix index's descent cost
// against the flat search it replaced, and open-loop throughput and
// latency percentiles as the table grows to 10⁶ names.
func A18() (Result, error) {
	_, rows, err := a18Collect(a18FullScale)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "a18",
		Title:  "population-scale resolution: radix index and open-loop Zipf load",
		Source: "PROTOCOL.md §14; §6's 2.6 KB table grown to a user population",
		Rows:   rows,
	}, nil
}

// ZipfJSON renders the BENCH_zipf.json document, byte-identical across
// runs.
func ZipfJSON() ([]byte, error) {
	doc, _, err := a18Collect(a18FullScale)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// a18SectionGuard asserts at test time that the A18 registry entry
// appends after every pre-existing experiment id (vbench_output.txt's
// earlier sections must stay byte-identical when A18 lands).
func a18SectionGuard() bool {
	return sectionGuard("a18")
}
