package experiments

// A15 reruns A14's chaos leg — the identical crash/restart schedule,
// workload, pacing and seed — against the consensus-replicated rig
// (Config.Replicas = 3, PROTOCOL.md §11). In A14 the fs1 host IS the
// fs1 service: the health report's availability is the service's. With
// replication the host still takes both scheduled outages, but
// the service fails over — the client's only exposure is the
// stale-cache send to the dead leader front plus the short leaderless
// window, and every operation succeeds. Everything is virtual time, so
// BENCH_replica.json is byte-deterministic.

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

// a15RetryPolicy is the fast recovery policy replicated runs use:
// elections complete within tens of virtual milliseconds, so short
// backoffs keep the leaderless window — the only client-visible
// downtime — small. A14's default policy (50 ms base) would park the
// client past whole elections.
func a15RetryPolicy() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
}

// ReplicaDoc is the BENCH_replica.json schema.
type ReplicaDoc struct {
	Tool        string `json:"tool"`
	Description string `json:"description"`

	OpsTotal  int `json:"ops_total"`
	OpsFailed int `json:"ops_failed"`

	// Availability is client-observed: 1 − backoff-downtime/horizon.
	Availability float64 `json:"availability"`
	// HostAvailability is the fs1 host's share of the horizon spent up —
	// replication does nothing for the host, only for the service.
	HostAvailability float64 `json:"host_availability"`
	DowntimeUS       int64   `json:"downtime_us"`
	HorizonUS        int64   `json:"horizon_us"`

	FailoverP50US int64   `json:"failover_p50_us"`
	FailoverP99US int64   `json:"failover_p99_us"`
	FailoversUS   []int64 `json:"failovers_us"`

	// Events is the replication group's event log: elections, crash
	// notices, rejoins, snapshot syncs and leadership transfers, with
	// exact virtual timestamps. Byte-identical across runs.
	Events []string `json:"events"`

	Counters []metrics.CounterPoint `json:"counters,omitempty"`
	Health   *metrics.HealthReport  `json:"health,omitempty"`
}

// a15Collect runs the replicated chaos leg once, producing both the
// JSON document and the experiment rows from the same data.
func a15Collect() (*ReplicaDoc, []Row, error) {
	policy := a15RetryPolicy()
	r, err := rig.New(rig.Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true, Retry: &policy, Replicas: 3})
	if err != nil {
		return nil, nil, err
	}
	s := r.WS[0].Session
	// Keep the workload byte-for-byte A14's: FS2 still carries the
	// standard-programs replica (it just never gets the traffic now —
	// the group's own standbys are closer in GetPid order).
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return nil, nil, err
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
		return nil, nil, err
	}
	s.EnableNameCache(true)
	eng := r.NewChaos(a14ChaosSchedule())
	pump := func(now vtime.Time) {
		eng.AdvanceTo(now)
		r.PumpGroups(now)
		r.Sampler.AdvanceTo(now)
	}
	s.SetRetryObserver(pump)

	const ops = 150
	ok := 0
	for i := 0; i < ops; i++ {
		if i > 0 && i%25 == 0 {
			s.FlushNameCache()
		}
		pump(s.Proc().Now())
		if f, err := s.Open("[bin]hello", proto.ModeRead); err == nil {
			if err := f.Close(); err == nil {
				ok++
			}
		}
		s.Proc().ChargeCompute(10 * time.Millisecond)
	}
	horizon := s.Proc().Now()
	pump(horizon)

	sum := r.ResilienceSummary()
	snap := r.Metrics.Snapshot().Deterministic()
	health := metrics.Health(snap, r.Sampler.Samples(), horizon, 0.90)
	var fs1 *metrics.ServerHealth
	for i := range health.Servers {
		if health.Servers[i].Host == "fs1" {
			fs1 = &health.Servers[i]
		}
	}
	if fs1 == nil {
		return nil, nil, fmt.Errorf("a15: health report has no fs1 entry")
	}

	doc := &ReplicaDoc{
		Tool:        "vbench -replica",
		Description: "consensus-replicated fs1 under the A14 crash/restart schedule: client-observed availability and failover latency",
		OpsTotal:    ops,
		OpsFailed:   ops - ok,
		DowntimeUS:  sum.Client.Downtime.Microseconds(),
		HorizonUS:   horizon.Microseconds(),
		Events:      r.FSR.Group.Events(),
		Counters: counterPoints(snap, "chaos_events_total", "client_ops_total",
			"client_op_failures_total", "client_retries_total", "client_rebinds_total",
			"client_failovers_total", "kernel_send_failures_total"),
		Health:           health,
		HostAvailability: fs1.Availability,
	}
	doc.Availability = 1 - float64(doc.DowntimeUS)/float64(doc.HorizonUS)
	fos := r.FSR.Group.Failovers()
	for _, d := range fos {
		doc.FailoversUS = append(doc.FailoversUS, d.Microseconds())
	}
	if n := len(doc.FailoversUS); n > 0 {
		sorted := append([]int64(nil), doc.FailoversUS...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		doc.FailoverP50US = sorted[n/2]
		doc.FailoverP99US = sorted[n-1]
	}

	rows := []Row{
		{Label: "client-observed availability", Paper: "-",
			Measured: fmt.Sprintf("%.3f", doc.Availability),
			Note:     "1 − backoff downtime/horizon; the unreplicated A14 service measured 0.667"},
		{Label: "operation success under chaos", Paper: "-",
			Measured: fmt.Sprintf("%d/%d", ok, ops),
			Note:     "every op retried through to a live leader; A14 succeeded 1.00 only via the FS2 copy"},
		{Label: "failover latency, p50 / p99", Paper: "-",
			Measured: usms(doc.FailoverP50US) + " / " + usms(doc.FailoverP99US),
			Note:     fmt.Sprintf("%d crash-triggered elections (seeded timeouts + election round)", len(doc.FailoversUS))},
		{Label: "fs1 host availability", Paper: "-",
			Measured: fmt.Sprintf("%.3f", doc.HostAvailability),
			Note:     "the host still takes both scheduled outages — the service no longer cares"},
	}
	return doc, rows, nil
}

// A15 reports the replicated name service's availability under the A14
// fault schedule.
func A15() (Result, error) {
	doc, rows, err := a15Collect()
	if err != nil {
		return Result{}, err
	}
	if doc.OpsFailed != 0 {
		return Result{}, fmt.Errorf("a15: %d/%d operations failed under replication", doc.OpsFailed, doc.OpsTotal)
	}
	return Result{
		ID:     "a15",
		Title:  "replication: consensus-replicated fs1 under the A14 fault schedule",
		Source: "§4.2 rebinding generalized: no single host owns a name",
		Rows:   rows,
	}, nil
}

// ReplicaJSON renders the BENCH_replica.json document, byte-identical
// across runs.
func ReplicaJSON() ([]byte, error) {
	doc, _, err := a15Collect()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
