package experiments

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/rig"
)

// a11TeamSizes is the file-server team-size sweep A11 measures.
var a11TeamSizes = []int{1, 2, 4, 8}

// A11 workload shape. Two phases per team size:
//
//   - A cache-hit phase: eight clients repeatedly query an object at the
//     end of a deep path. Interpreting the name costs the file server
//     real per-request compute (name parse + one context lookup per
//     component + descriptor fabrication) and touches no shared device,
//     so it is the work a team genuinely parallelizes: with one serving
//     process the lookups serialize on its clock; with a team they
//     overlap on the workers' clocks.
//   - A cold-stream phase: four clients each stream previously-untouched
//     files, every page a disk fetch. The single disk arm serializes
//     these at 15 ms/page no matter how many workers wait on it — the
//     honest floor the cold rows document.
//
// The clients run co-resident with the file server and use names
// relative to its root context. That keeps the measurement about the
// serving structure itself: routing the requests through the shared
// Ethernet would couple every client through netsim's conservative
// in-order wire ledger (see the A9 note), and routing them through the
// prefix server would bottleneck on its 3.5 ms rewrite cost instead of
// the file server under test.
const (
	a11HotClients  = 8
	a11HotRequests = 25
	a11HotPath     = "deep/a/b/c/d/e/f/hot.dat"

	a11ColdClients  = 4
	a11ColdRequests = 6
	a11ColdBytes    = 2 * 1024 // 4 disk pages per cold file
)

// a11Stats is one phase's aggregate outcome.
type a11Stats struct {
	throughput  float64
	meanLatency float64 // milliseconds
}

func a11Phase(res *rig.WorkloadResult) a11Stats {
	var total rig.ClientStats
	for _, st := range res.Clients {
		total.Completed += st.Completed
		total.TotalLatency += st.TotalLatency
	}
	return a11Stats{
		throughput:  res.Throughput(),
		meanLatency: float64(total.MeanLatency().Microseconds()) / 1000,
	}
}

// a11Driver runs one A11 phase's workload. It defaults to the sequential
// reference driver; the sharded golden-guard test swaps in the
// conservative engine to prove team=1 output stays byte-identical to the
// seed when every client rides its own engine lane.
var a11Driver = rig.RunWorkload

// a11Session creates a client session on the file server's own host with
// the server's root as current context.
func a11Session(r *rig.Rig, name string) (*client.Session, error) {
	proc, err := r.FS1Host.NewProcess(name)
	if err != nil {
		return nil, err
	}
	return client.New(proc, r.WS[0].Prefix.PID(), r.FS1.RootPair(), "bench"), nil
}

// a11Run boots a fresh rig with the given file-server team size, drives
// both phases, and returns their stats.
func a11Run(team int) (hot, cold a11Stats, err error) {
	cfg := rig.DefaultConfig()
	cfg.Users = []string{"mann"}
	cfg.FileServerTeam = team
	// Tracing is free in virtual time, so running every sweep point
	// through the invariant checker costs the measurement nothing.
	cfg.Trace = true
	r, err := rig.New(cfg)
	if err != nil {
		return hot, cold, err
	}
	if _, err := r.FS1.MkdirAll("/deep/a/b/c/d/e/f", "system"); err != nil {
		return hot, cold, err
	}
	if err := r.FS1.WriteFile("/"+a11HotPath, "system", make([]byte, 512)); err != nil {
		return hot, cold, err
	}
	// Boot-time writes do not populate the buffer cache, so each cold
	// file's first (and only) read hits the disk.
	for i := 0; i < a11ColdClients; i++ {
		for j := 0; j < a11ColdRequests; j++ {
			path := fmt.Sprintf("/bench/cold%d/r%d.dat", i, j)
			if err := r.FS1.WriteFile(path, "system", make([]byte, a11ColdBytes)); err != nil {
				return hot, cold, err
			}
		}
	}

	hotClients := make([]*rig.WorkloadClient, 0, a11HotClients)
	for i := 0; i < a11HotClients; i++ {
		sess, err := a11Session(r, fmt.Sprintf("hot%d", i))
		if err != nil {
			return hot, cold, err
		}
		hotClients = append(hotClients, &rig.WorkloadClient{
			Session:  sess,
			Requests: a11HotRequests,
			Op: func(s *client.Session, iter int) error {
				_, err := s.Query(a11HotPath)
				return err
			},
		})
	}
	hotRes := a11Driver(hotClients)
	if err := a11Check(hotRes, "cache-hit"); err != nil {
		return hot, cold, err
	}
	if err := r.CheckTrace(); err != nil {
		return hot, cold, fmt.Errorf("cache-hit phase trace: %w", err)
	}

	coldClients := make([]*rig.WorkloadClient, 0, a11ColdClients)
	for i := 0; i < a11ColdClients; i++ {
		sess, err := a11Session(r, fmt.Sprintf("cold%d", i))
		if err != nil {
			return hot, cold, err
		}
		idx := i
		coldClients = append(coldClients, &rig.WorkloadClient{
			Session:  sess,
			Requests: a11ColdRequests,
			Op: func(s *client.Session, iter int) error {
				_, err := s.ReadFile(fmt.Sprintf("bench/cold%d/r%d.dat", idx, iter))
				return err
			},
		})
	}
	coldRes := a11Driver(coldClients)
	if err := a11Check(coldRes, "cold-stream"); err != nil {
		return hot, cold, err
	}
	if err := r.CheckTrace(); err != nil {
		return hot, cold, fmt.Errorf("cold-stream phase trace: %w", err)
	}
	return a11Phase(hotRes), a11Phase(coldRes), nil
}

func a11Check(res *rig.WorkloadResult, phase string) error {
	for i, st := range res.Clients {
		if st.Errors > 0 {
			return fmt.Errorf("a11 %s phase: client %d: %d requests failed", phase, i, st.Errors)
		}
	}
	return nil
}

// A11 measures the server-team refactor: file-server throughput and
// latency under concurrent clients as the team size grows. §3.1
// describes V servers as "implemented as a team of processes" so a
// receptionist can hand a request to a helper and keep receiving; the
// serving runtime reproduces that structure (core.Team, kernel Forward
// handoff at local-hop cost). The paper gives no team-size scaling
// figures, so the paper column carries the qualitative claims: lookup
// compute no longer serializes behind one process, while the single disk
// arm stays the floor for disk-bound streams.
func A11() (Result, error) {
	res := Result{
		ID:     "a11",
		Title:  "server teams: file-server throughput vs. team size",
		Source: "§3.1 (multi-process server teams)",
	}
	var baseHot, baseCold a11Stats
	for _, team := range a11TeamSizes {
		hot, cold, err := a11Run(team)
		if err != nil {
			return Result{}, err
		}
		if team == 1 {
			baseHot, baseCold = hot, cold
		}
		res.Rows = append(res.Rows,
			Row{
				Label:    fmt.Sprintf("team=%d cache-hit queries", team),
				Paper:    a11PaperHot(team),
				Measured: fmt.Sprintf("%.0f req/s, %.2f ms mean", hot.throughput, hot.meanLatency),
				Note:     fmt.Sprintf("%d clients, %.1fx vs team=1", a11HotClients, hot.throughput/baseHot.throughput),
			},
			Row{
				Label:    fmt.Sprintf("team=%d cold streams", team),
				Paper:    a11PaperCold(team),
				Measured: fmt.Sprintf("%.0f req/s, %.2f ms mean", cold.throughput, cold.meanLatency),
				Note:     fmt.Sprintf("%d clients, %.1fx vs team=1", a11ColdClients, cold.throughput/baseCold.throughput),
			},
		)
	}
	return res, nil
}

func a11PaperHot(team int) string {
	if team == 1 {
		return "serializes"
	}
	return "overlaps"
}

func a11PaperCold(team int) string {
	if team == 1 {
		return "disk-bound"
	}
	return "disk arm floor"
}
