package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/prefix"
	"repro/internal/vtime"
)

// A9 measures shared-Ethernet saturation: N diskless workstations load
// 64 KB programs concurrently, each from its own file server, so only
// the 3 Mbit wire couples them. §3.1's single-load figure (338 ms,
// within 13% of the maximum packet write rate) already implies the
// medium is the ceiling; this experiment shows per-load latency growing
// with N while aggregate goodput plateaus.
//
// Approximation note: netsim's wire ledger serializes whole transfers in
// request order rather than interleaving packets, so contention is
// modelled conservatively — the plateau lands at the single-stream
// pipeline rate (~1.5 Mbit/s goodput) rather than the ~2.7 Mbit/s a
// packet-interleaved medium would reach. The qualitative result
// (saturation; ~linear per-load slowdown) is the point. Reservation
// order also depends on goroutine scheduling, so per-run numbers vary
// slightly.
func A9() (Result, error) {
	const imageBytes = 64 * 1024

	run := func(n int) (worst time.Duration, aggregateMbit, utilization float64, err error) {
		model := vtime.DefaultModel()
		net := netsim.New(model, 1)
		k := kernel.New(net)

		type pair struct {
			sess *client.Session
		}
		pairs := make([]pair, 0, n)
		for i := 0; i < n; i++ {
			fsHost := k.NewHost(fmt.Sprintf("fs%d", i))
			fs, err := fileserver.Start(fsHost, fmt.Sprintf("fs%d", i))
			if err != nil {
				return 0, 0, 0, err
			}
			if err := fs.WriteFile("/bin/editor", "system", make([]byte, imageBytes)); err != nil {
				return 0, 0, 0, err
			}
			wsHost := k.NewHost(fmt.Sprintf("ws%d", i))
			ps, err := prefix.Start(wsHost, fmt.Sprintf("user%d", i))
			if err != nil {
				return 0, 0, 0, err
			}
			binCtx, err := fs.MkdirAll("/bin", "system")
			if err != nil {
				return 0, 0, 0, err
			}
			if err := ps.Define("bin", pairOf(fs.PID(), binCtx)); err != nil {
				return 0, 0, 0, err
			}
			proc, err := wsHost.NewProcess("loader")
			if err != nil {
				return 0, 0, 0, err
			}
			pairs = append(pairs, pair{sess: client.New(proc, ps.PID(), pairOf(fs.PID(), 0), "")})
		}

		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			fail error
		)
		for _, p := range pairs {
			wg.Add(1)
			go func(s *client.Session) {
				defer wg.Done()
				buf := make([]byte, imageBytes)
				start := s.Proc().Now()
				if _, err := s.LoadProgram("[bin]editor", buf); err != nil {
					mu.Lock()
					fail = err
					mu.Unlock()
					return
				}
				elapsed := s.Proc().Now() - start
				mu.Lock()
				if elapsed > worst {
					worst = elapsed
				}
				mu.Unlock()
			}(p.sess)
		}
		wg.Wait()
		if fail != nil {
			return 0, 0, 0, fail
		}
		totalBits := float64(n) * imageBytes * 8
		aggregateMbit = totalBits / (float64(worst) / float64(time.Second)) / 1e6
		utilization = float64(net.Stats().WireBusyFor) / float64(worst)
		return worst, aggregateMbit, utilization, nil
	}

	var rows []Row
	for _, n := range []int{1, 2, 4, 8} {
		worst, mbit, util, err := run(n)
		if err != nil {
			return Result{}, err
		}
		paper := "-"
		if n == 1 {
			paper = "338 ms"
		}
		rows = append(rows, Row{
			Label:    fmt.Sprintf("%d concurrent 64 KB loads", n),
			Paper:    paper,
			Measured: ms(worst),
			Note:     fmt.Sprintf("aggregate goodput %.2f Mbit/s, wire %.0f%% busy", mbit, util*100),
		})
	}
	return Result{
		ID:     "a9",
		Title:  "shared-Ethernet saturation under concurrent program loads",
		Source: "§3.1 (the wire-rate ceiling behind the 338 ms / 13% figures)",
		Rows:   rows,
	}, nil
}

// pairOf builds a context pair from raw parts.
func pairOf(server kernel.PID, ctx core.ContextID) core.ContextPair {
	return core.ContextPair{Server: server, Ctx: ctx}
}
