package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

// E1 reproduces the §3.1 / Figure 1 IPC measurement: the time for a
// Send-Receive-Reply sequence with 32-byte messages between two processes,
// on the same and on separate hosts.
func E1() (Result, error) {
	remote3, local3, err := e1Measure(nil)
	if err != nil {
		return Result{}, err
	}
	remote10, _, err := e1Measure(vtime.Model10Mbit())
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "e1",
		Title:  "Send-Receive-Reply message transaction, 32-byte messages",
		Source: "§3.1, Figure 1",
		Rows: []Row{
			{Label: "separate hosts (3 Mbit Ethernet)", Paper: "2.56 ms", Measured: ms(remote3),
				Note: "100-trial average"},
			{Label: "separate hosts (10 Mbit Ethernet)", Paper: "-", Measured: ms(remote10),
				Note: "CPU-bound: the faster wire barely helps"},
			{Label: "same host", Paper: "-", Measured: ms(local3),
				Note: "paper reports only the remote case"},
		},
	}, nil
}

// e1Measure runs the E1 workload under the given model (nil = default).
func e1Measure(model *vtime.CostModel) (remote, local time.Duration, err error) {
	cfg := rig.DefaultConfig()
	cfg.Model = model
	r, err := rig.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	ws := r.WS[0]

	startEcho := func(h *kernel.Host) (*kernel.Process, error) {
		return h.Spawn("echo", func(p *kernel.Process) {
			for {
				msg, from, err := p.Receive()
				if err != nil {
					return
				}
				reply := *msg
				reply.Op = proto.ReplyOK
				if err := p.Reply(&reply, from); err != nil {
					return
				}
			}
		})
	}
	echoRemote, err := startEcho(r.FS1Host)
	if err != nil {
		return 0, 0, err
	}
	echoLocal, err := startEcho(ws.Host)
	if err != nil {
		return 0, 0, err
	}
	clientProc, err := ws.Host.NewProcess("e1-client")
	if err != nil {
		return 0, 0, err
	}

	transaction := func(dst kernel.PID) (time.Duration, error) {
		const trials = 100
		start := clientProc.Now()
		for i := 0; i < trials; i++ {
			if _, err := clientProc.Send(&proto.Message{Op: proto.OpEcho}, dst); err != nil {
				return 0, err
			}
		}
		return (clientProc.Now() - start) / trials, nil
	}
	if remote, err = transaction(echoRemote.PID()); err != nil {
		return 0, 0, err
	}
	if local, err = transaction(echoLocal.PID()); err != nil {
		return 0, 0, err
	}
	return remote, local, nil
}

// E2 reproduces the §3.1 program-load measurement: 64 KB moved by MoveTo
// from a file server's memory into a diskless workstation, and its
// distance from the maximum packet write rate.
func E2() (Result, error) {
	load := func(model *vtime.CostModel) (time.Duration, float64, error) {
		cfg := rig.DefaultConfig()
		cfg.Model = model
		r, err := rig.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		s := r.WS[0].Session
		buf := make([]byte, 64*1024)
		start := s.Proc().Now()
		n, err := s.LoadProgram("[bin]editor", buf)
		if err != nil {
			return 0, 0, err
		}
		elapsed := s.Proc().Now() - start
		if n != len(buf) {
			return 0, 0, fmt.Errorf("loaded %d bytes, want %d", n, len(buf))
		}
		// Compare with the driver-floor rate as the paper does.
		floor := r.Model.RemoteHopFloor(len(buf))
		overhead := float64(elapsed-floor) / float64(floor) * 100
		return elapsed, overhead, nil
	}

	elapsed3, overhead3, err := load(nil)
	if err != nil {
		return Result{}, err
	}
	elapsed10, _, err := load(vtime.Model10Mbit())
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID:     "e2",
		Title:  "64 KB program load via MoveTo (program text in server memory)",
		Source: "§3.1",
		Rows: []Row{
			{Label: "64 KB load time (3 Mbit)", Paper: "338 ms", Measured: ms(elapsed3),
				Note: "request + 128-packet MoveTo + reply"},
			{Label: "64 KB load time (10 Mbit)", Paper: "-", Measured: ms(elapsed10),
				Note: "wire-bound: the faster wire pays off"},
			{Label: "over max packet write rate", Paper: "within 13%", Measured: fmt.Sprintf("%.1f%%", overhead3),
				Note: "floor = driver cost + wire time"},
		},
	}, nil
}

// E3 reproduces the §3.1 sequential file access measurement: reading a
// file in 512-byte pages from a disk that delivers a page every 15 ms,
// with and without server read-ahead.
func E3() (Result, error) {
	run := func(readAhead bool) (time.Duration, error) {
		cfg := rig.DefaultConfig()
		cfg.ReadAhead = readAhead
		r, err := rig.New(cfg)
		if err != nil {
			return 0, err
		}
		const pages = 128
		payload := make([]byte, pages*512)
		if err := r.FS1.WriteFile("/users/mann/big.dat", "mann", payload); err != nil {
			return 0, err
		}
		s := r.WS[0].Session
		f, err := s.Open("[home]big.dat", proto.ModeRead)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		start := s.Proc().Now()
		data, err := f.ReadAll()
		if err != nil {
			return 0, err
		}
		if len(data) != pages*512 {
			return 0, fmt.Errorf("read %d bytes", len(data))
		}
		return (s.Proc().Now() - start) / pages, nil
	}

	with, err := run(true)
	if err != nil {
		return Result{}, err
	}
	without, err := run(false)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "e3",
		Title:  "sequential file read, 512-byte pages, 15 ms/page disk",
		Source: "§3.1",
		Rows: []Row{
			{Label: "per page, server read-ahead", Paper: "17.13 ms", Measured: ms(with),
				Note: "disk-rate bound; transfer overlapped"},
			{Label: "per page, no read-ahead", Paper: "-", Measured: ms(without),
				Note: "disk + full request round trip"},
		},
	}, nil
}

// T1 reproduces the §6 Open latency table: current context vs. context
// prefix, file server local vs. remote, and the prefix overhead that is
// identical in both columns because the prefix server is always local.
func T1() (Result, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	ws := r.WS[0]
	s := ws.Session

	// A local file server process on the workstation (§3: adding a local
	// server requires no other changes).
	localFS, err := fileserver.Start(ws.Host, "local")
	if err != nil {
		return Result{}, err
	}
	if err := localFS.WriteFile("/f.txt", ws.User, []byte("local file")); err != nil {
		return Result{}, err
	}
	if err := ws.Prefix.Define("local", localFS.RootPair()); err != nil {
		return Result{}, err
	}

	const trials = 50
	open := func(name string, current core.ContextPair) (time.Duration, error) {
		if current != (core.ContextPair{}) {
			s.SetCurrent(current)
		}
		start := s.Proc().Now()
		for i := 0; i < trials; i++ {
			f, err := s.Open(name, proto.ModeRead)
			if err != nil {
				return 0, fmt.Errorf("open %q: %w", name, err)
			}
			if err := f.Close(); err != nil {
				return 0, err
			}
		}
		// Each trial includes one Open and one Release; subtract the
		// Release transactions, which the paper's Open figure excludes.
		total := s.Proc().Now() - start
		return total / trials, nil
	}

	localCtx, err := s.MapContext("[local]")
	if err != nil {
		return Result{}, err
	}
	// Measure the close cost to subtract it.
	f, err := s.Open("[local]f.txt", proto.ModeRead)
	if err != nil {
		return Result{}, err
	}
	c0 := s.Proc().Now()
	if err := f.Close(); err != nil {
		return Result{}, err
	}
	closeLocal := s.Proc().Now() - c0
	f2, err := s.Open("[home]welcome.txt", proto.ModeRead)
	if err != nil {
		return Result{}, err
	}
	c1 := s.Proc().Now()
	if err := f2.Close(); err != nil {
		return Result{}, err
	}
	closeRemote := s.Proc().Now() - c1

	curLocal, err := open("f.txt", localCtx)
	if err != nil {
		return Result{}, err
	}
	curRemote, err := open("welcome.txt", ws.HomeCtx)
	if err != nil {
		return Result{}, err
	}
	pfxLocal, err := open("[local]f.txt", core.ContextPair{})
	if err != nil {
		return Result{}, err
	}
	pfxRemote, err := open("[home]welcome.txt", core.ContextPair{})
	if err != nil {
		return Result{}, err
	}
	curLocal -= closeLocal
	pfxLocal -= closeLocal
	curRemote -= closeRemote
	pfxRemote -= closeRemote

	return Result{
		ID:     "t1",
		Title:  "Open latency: current context vs. context prefix, local vs. remote server",
		Source: "§6",
		Rows: []Row{
			{Label: "current context, server local", Paper: "1.21 ms", Measured: ms(curLocal)},
			{Label: "current context, server remote", Paper: "3.70 ms", Measured: ms(curRemote)},
			{Label: "via prefix, server local", Paper: "5.14 ms", Measured: ms(pfxLocal)},
			{Label: "via prefix, server remote", Paper: "7.69 ms", Measured: ms(pfxRemote)},
			{Label: "prefix overhead (local column)", Paper: "3.94 ms", Measured: ms(pfxLocal - curLocal),
				Note: "prefix server processing, always local"},
			{Label: "prefix overhead (remote column)", Paper: "3.99 ms", Measured: ms(pfxRemote - curRemote),
				Note: "identical within experimental error"},
		},
	}, nil
}

// E5 reproduces the §6 space-cost observation: the context prefix server
// is small. The paper reports 4.5 KB of MC68000 code and 2.6 KB of data;
// we report the prefix table's in-memory size at the standard
// configuration and its growth per entry.
func E5() (Result, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	ws := r.WS[0]
	base := ws.Prefix.TableBytes()
	baseCount := len(ws.Prefix.Bindings())

	// Grow the table to measure per-entry cost.
	const extra = 64
	for i := 0; i < extra; i++ {
		if err := ws.Prefix.Define(fmt.Sprintf("extra%02d", i), r.FS1.RootPair()); err != nil {
			return Result{}, err
		}
	}
	grown := ws.Prefix.TableBytes()
	perEntry := (grown - base) / extra

	return Result{
		ID:     "e5",
		Title:  "context prefix server space cost",
		Source: "§6",
		Rows: []Row{
			{Label: "prefix table data", Paper: "2.6 KB", Measured: fmt.Sprintf("%d B (%d prefixes)", base, baseCount),
				Note: "paper's figure is mostly reserved directory space"},
			{Label: "per additional prefix", Paper: "-", Measured: fmt.Sprintf("%d B", perEntry)},
			{Label: "server code", Paper: "4.5 KB (MC68000)", Measured: "n/a",
				Note: "Go binaries are not comparable; see EXPERIMENTS.md"},
		},
	}, nil
}
