package experiments

import (
	"bytes"
	"testing"
)

// TestA15Availability gates the PR's headline claim: under the A14
// crash/restart schedule a replicated fs1 keeps client-observed
// availability at ~1.0 with zero failed operations, even though the
// fs1 host itself spends both outage windows down.
func TestA15Availability(t *testing.T) {
	doc, _, err := a15Collect()
	if err != nil {
		t.Fatal(err)
	}
	if doc.OpsFailed != 0 {
		t.Fatalf("OpsFailed = %d, want 0", doc.OpsFailed)
	}
	if doc.Availability < 0.99 {
		t.Fatalf("availability = %.4f, want >= 0.99", doc.Availability)
	}
	if doc.HostAvailability >= 0.99 {
		t.Fatalf("host availability = %.4f — chaos did not actually take the host down", doc.HostAvailability)
	}
	if len(doc.FailoversUS) == 0 {
		t.Fatalf("no failovers recorded; events:\n%v", doc.Events)
	}
	if doc.FailoverP99US < doc.FailoverP50US {
		t.Fatalf("p99 %d < p50 %d", doc.FailoverP99US, doc.FailoverP50US)
	}
}

// TestReplicaJSONDeterministic pins the bench-replica golden: two full
// runs of the replicated chaos leg must render byte-identical JSON.
func TestReplicaJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos legs")
	}
	d1, err := ReplicaJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ReplicaJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("BENCH_replica.json differs between runs:\n%s\n---\n%s", d1, d2)
	}
}
