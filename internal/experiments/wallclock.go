// Wall-clock benchmark harness (EXPERIMENTS.md A13). Unlike every other
// file in this package, nothing here reads virtual time as a result: it
// measures how fast the *implementation* executes on the host machine —
// the send/receive/reply hot path's real latency and allocation count,
// and the workload driver's wall-clock throughput, sequential vs
// parallel. The output is a self-describing JSON document (see
// cmd/vbench -wallclock) that records GOMAXPROCS and the CPU count, so a
// flat parallel-speedup curve on a single-core machine reads as what it
// is rather than as a regression.
//
// The pre-PR baseline numbers embedded below were recorded with the same
// harness shape (go test -bench, -benchmem, GOMAXPROCS=1) at the commit
// before the parallel-driver/allocation work, and are the regression
// reference `make check`'s gate compares against.
package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
)

// HotPathResult is one measured micro-benchmark: the Figure 1
// send-receive-reply transaction with tracing disabled.
type HotPathResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	SendAllocs  float64 `json:"steady_state_send_allocs"` // testing.AllocsPerRun of one Send
}

// DriverResult is one measured workload-driver run.
type DriverResult struct {
	Mode         string  `json:"mode"` // "sequential" or "parallel"
	Workers      int     `json:"workers,omitempty"`
	Requests     int     `json:"requests"`
	WallNs       int64   `json:"wall_ns"`
	ReqPerSec    float64 `json:"req_per_sec"`
	SpeedupVsSeq float64 `json:"speedup_vs_sequential"`
	// VirtualMakespan must be identical across every run of this table —
	// the drivers differ only in wall-clock execution.
	VirtualMakespan string `json:"virtual_makespan"`
}

// WallClockBaseline records the pre-PR numbers this PR is gated against.
type WallClockBaseline struct {
	Commit          string  `json:"commit"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	E1LocalNsPerOp  int64   `json:"e1_local_ns_per_op"`
	E1RemoteNsPerOp int64   `json:"e1_remote_ns_per_op"`
	E1BytesPerOp    int64   `json:"e1_bytes_per_op"`
	E1AllocsPerOp   int64   `json:"e1_allocs_per_op"`
	DriverReqPerSec float64 `json:"driver_req_per_sec"`
	VirtualMakespan string  `json:"driver_virtual_makespan"`
}

// WallClockDoc is the BENCH_wallclock.json schema.
type WallClockDoc struct {
	Tool        string            `json:"tool"`
	Description string            `json:"description"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"num_cpu"`
	Baseline    WallClockBaseline `json:"baseline_pre_pr"`
	HotPath     []HotPathResult   `json:"hot_path"`
	Driver      []DriverResult    `json:"driver"`
}

// wallClockBaseline is the recorded pre-PR reference (commit 2345bb5,
// GOMAXPROCS=1 container): BenchmarkE1MessageTransaction with -benchmem,
// and the sequential driver over the same 8x8x25 sharded workload this
// harness runs.
var wallClockBaseline = WallClockBaseline{
	Commit:          "2345bb5",
	GOMAXPROCS:      1,
	E1LocalNsPerOp:  3353,
	E1RemoteNsPerOp: 2565,
	E1BytesPerOp:    448,
	E1AllocsPerOp:   11,
	DriverReqPerSec: 104000,
	VirtualMakespan: "262.03995ms",
}

// wallClockShards is the driver workload shape: 8 substrate-disjoint
// shards x 8 clients x 25 deep queries = 1600 requests.
var wallClockShards = rig.ShardConfig{
	Shards: 8, ClientsPerShard: 8, Requests: 25, Team: 1, Seed: 42,
}

// WallClock runs the wall-clock harness and returns the document.
func WallClock() (*WallClockDoc, error) {
	doc := &WallClockDoc{
		Tool:        "vbench -wallclock",
		Description: "wall-clock (real time) performance of the implementation; virtual-time results are unaffected and identical across all driver modes",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Baseline:    wallClockBaseline,
	}
	for _, remote := range []bool{false, true} {
		hp, err := benchHotPath(remote)
		if err != nil {
			return nil, err
		}
		doc.HotPath = append(doc.HotPath, hp)
	}
	seq, err := benchDriver(0, 0)
	if err != nil {
		return nil, err
	}
	doc.Driver = append(doc.Driver, seq)
	for _, w := range []int{1, 2, 4, 8} {
		par, err := benchDriver(w, seq.ReqPerSec)
		if err != nil {
			return nil, err
		}
		doc.Driver = append(doc.Driver, par)
	}
	return doc, nil
}

// benchHotPath measures the untraced send-receive-reply transaction,
// same-host or cross-host, mirroring BenchmarkE1MessageTransaction.
func benchHotPath(remote bool) (HotPathResult, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return HotPathResult{}, err
	}
	host := r.WS[0].Host
	echoHost := host
	name := "e1/local"
	if remote {
		echoHost = r.FS1Host
		name = "e1/remote"
	}
	echo, err := echoHost.Spawn("echo", func(p *kernel.Process) {
		var reply proto.Message
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply = *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		return HotPathResult{}, err
	}
	cl, err := host.NewProcess("bench-client")
	if err != nil {
		return HotPathResult{}, err
	}
	req := &proto.Message{Op: proto.OpEcho}
	send := func() error {
		_, err := cl.Send(req, echo.PID())
		return err
	}
	for i := 0; i < 64; i++ { // warm the envelope pool
		if err := send(); err != nil {
			return HotPathResult{}, err
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := send(); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := testing.AllocsPerRun(200, func() {
		if err := send(); err != nil {
			panic(err)
		}
	})
	return HotPathResult{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		SendAllocs:  allocs,
	}, nil
}

// benchDriver times one run of the sharded workload under the selected
// driver (workers == 0 means the sequential driver), averaging over a
// few fresh topologies.
func benchDriver(workers int, seqReqPerSec float64) (DriverResult, error) {
	const rounds = 5
	var elapsed time.Duration
	var requests int
	var makespan time.Duration
	for i := 0; i < rounds; i++ {
		sw, err := rig.NewShardedWorkload(wallClockShards)
		if err != nil {
			return DriverResult{}, err
		}
		start := time.Now()
		var res *rig.WorkloadResult
		if workers == 0 {
			res = rig.RunWorkload(sw.Clients)
		} else {
			res = rig.RunWorkloadParallel(sw.Clients, workers)
		}
		elapsed += time.Since(start)
		requests += res.Requests
		if i == 0 {
			makespan = res.Makespan
		} else if res.Makespan != makespan {
			return DriverResult{}, fmt.Errorf("driver workers=%d: virtual makespan varied across runs: %v vs %v", workers, res.Makespan, makespan)
		}
		for _, h := range sw.Hosts {
			h.Crash()
		}
	}
	out := DriverResult{
		Mode:            "sequential",
		Workers:         workers,
		Requests:        requests / rounds,
		WallNs:          int64(elapsed) / rounds,
		ReqPerSec:       float64(requests) / elapsed.Seconds(),
		VirtualMakespan: makespan.String(),
	}
	if workers > 0 {
		out.Mode = "parallel"
		out.SpeedupVsSeq = out.ReqPerSec / seqReqPerSec
	} else {
		out.SpeedupVsSeq = 1
	}
	return out, nil
}
