// Wall-clock benchmark harness (EXPERIMENTS.md A13). Unlike every other
// file in this package, nothing here reads virtual time as a result: it
// measures how fast the *implementation* executes on the host machine —
// the send/receive/reply hot path's real latency and allocation count,
// and the workload driver's wall-clock throughput, sequential vs
// parallel. The output is a self-describing JSON document (see
// cmd/vbench -wallclock) that records GOMAXPROCS and the CPU count, so a
// flat parallel-speedup curve on a single-core machine reads as what it
// is rather than as a regression.
//
// The pre-PR baseline numbers embedded below were recorded with the same
// harness shape (go test -bench, -benchmem, GOMAXPROCS=1) at the commit
// before the parallel-driver/allocation work, and are the regression
// reference `make check`'s gate compares against.
package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
)

// HotPathResult is one measured micro-benchmark: the Figure 1
// send-receive-reply transaction with tracing disabled.
type HotPathResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	SendAllocs  float64 `json:"steady_state_send_allocs"` // testing.AllocsPerRun of one Send
}

// DriverResult is one measured workload-driver run.
type DriverResult struct {
	// Engine selects the driver: "sequential" (the reference pick-min
	// loop), "lanes" (PR 4's semaphore driver, disjoint topologies only),
	// or "sharded" (the conservative engine, PROTOCOL.md §12).
	Engine string `json:"engine"`
	// Topology is "disjoint-shards" (no cross-lane substrate) or
	// "shared-prefix" (central prefix server every cache miss crosses).
	Topology string `json:"topology"`
	// Workers is the lanes driver's goroutine cap, or the GOMAXPROCS the
	// sharded engine ran under; 0 for the sequential driver.
	Workers int `json:"workers,omitempty"`
	// Shards is the topology's shard count (= engine lane count).
	Shards   int   `json:"shards"`
	Requests int   `json:"requests"`
	WallNs   int64 `json:"wall_ns"`
	// EventsPerEngine is each per-lane engine's completed operation
	// count (sharded engine only) — deterministic, summing to Requests.
	EventsPerEngine []int   `json:"events_per_engine,omitempty"`
	ReqPerSec       float64 `json:"req_per_sec"`
	SpeedupVsSeq    float64 `json:"speedup_vs_sequential"`
	// VirtualMakespan must be identical across every run on the same
	// topology — the drivers differ only in wall-clock execution.
	VirtualMakespan string `json:"virtual_makespan"`
}

// WallClockBaseline records the pre-PR numbers this PR is gated against.
type WallClockBaseline struct {
	Commit          string  `json:"commit"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	E1LocalNsPerOp  int64   `json:"e1_local_ns_per_op"`
	E1RemoteNsPerOp int64   `json:"e1_remote_ns_per_op"`
	E1BytesPerOp    int64   `json:"e1_bytes_per_op"`
	E1AllocsPerOp   int64   `json:"e1_allocs_per_op"`
	DriverReqPerSec float64 `json:"driver_req_per_sec"`
	VirtualMakespan string  `json:"driver_virtual_makespan"`
}

// WallClockDoc is the BENCH_wallclock.json schema. SchemaVersion 2
// added the engine/topology columns and the shared-prefix rows; the v1
// baseline block is preserved verbatim as the regression reference.
type WallClockDoc struct {
	Tool          string `json:"tool"`
	SchemaVersion int    `json:"schema_version"`
	Description   string `json:"description"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
	// Note explains a flat speedup column when the host cannot show one.
	Note     string            `json:"note,omitempty"`
	Baseline WallClockBaseline `json:"baseline_pre_pr"`
	HotPath  []HotPathResult   `json:"hot_path"`
	Driver   []DriverResult    `json:"driver"`
}

// wallClockBaseline is the recorded pre-PR reference (commit 2345bb5,
// GOMAXPROCS=1 container): BenchmarkE1MessageTransaction with -benchmem,
// and the sequential driver over the same 8x8x25 sharded workload this
// harness runs.
var wallClockBaseline = WallClockBaseline{
	Commit:          "2345bb5",
	GOMAXPROCS:      1,
	E1LocalNsPerOp:  3353,
	E1RemoteNsPerOp: 2565,
	E1BytesPerOp:    448,
	E1AllocsPerOp:   11,
	DriverReqPerSec: 104000,
	VirtualMakespan: "262.03995ms",
}

// wallClockShards is the disjoint driver workload shape: 8
// substrate-disjoint shards x 8 clients x 25 deep queries = 1600
// requests.
var wallClockShards = rig.ShardConfig{
	Shards: 8, ClientsPerShard: 8, Requests: 25, Team: 1, Seed: 42,
}

// wallClockShared is the shared-prefix driver workload shape: the same
// 8x8x25 = 1600 requests, but with every shard's prefix bound on one
// central prefix server and caches flushed every 6 queries, so the
// lanes periodically contend on shared substrate. PR 4's lanes driver
// cannot run this topology at all; only the sharded engine can go wide
// on it.
var wallClockShared = rig.SharedPrefixConfig{
	Shards: 8, ClientsPerShard: 8, Requests: 25, Seed: 42, FlushEvery: 6,
}

// wallClockWorkers is the width sweep for the parallel drivers.
var wallClockWorkers = []int{1, 2, 4, 8}

// WallClockEngines are the -engine selector values ("" and "all" run
// every engine).
var WallClockEngines = []string{"sequential", "lanes", "sharded"}

// WallClock runs the wall-clock harness and returns the document.
// engine restricts the driver table to one engine's rows ("" or "all"
// runs everything); the sequential reference always runs, since it
// anchors every speedup column.
func WallClock(engine string) (*WallClockDoc, error) {
	switch engine {
	case "", "all", "sequential", "lanes", "sharded":
	default:
		return nil, fmt.Errorf("wallclock: unknown engine %q (have sequential, lanes, sharded)", engine)
	}
	want := func(e string) bool { return engine == "" || engine == "all" || engine == e }
	doc := &WallClockDoc{
		Tool:          "vbench -wallclock",
		SchemaVersion: 2,
		Description:   "wall-clock (real time) performance of the implementation; virtual-time results are unaffected and identical across all driver engines on the same topology",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Baseline:      wallClockBaseline,
	}
	if doc.NumCPU == 1 {
		doc.Note = "single-CPU host: concurrent lanes time-slice one core, so wall-clock speedup stays ~1.0x by construction; the sharded engine's correctness (virtual results identical to sequential) is what these rows certify here, and speedup > 1.0 requires num_cpu > 1"
	}
	for _, remote := range []bool{false, true} {
		hp, err := benchHotPath(remote)
		if err != nil {
			return nil, err
		}
		doc.HotPath = append(doc.HotPath, hp)
	}
	for _, topology := range []string{"disjoint-shards", "shared-prefix"} {
		seq, err := benchDriver(driverSpec{topology: topology, engine: "sequential"}, 0)
		if err != nil {
			return nil, err
		}
		// The sequential reference row is always emitted: it anchors the
		// speedup column whichever engine was selected.
		doc.Driver = append(doc.Driver, seq)
		if topology == "disjoint-shards" && want("lanes") {
			for _, w := range wallClockWorkers {
				par, err := benchDriver(driverSpec{topology: topology, engine: "lanes", workers: w}, seq.ReqPerSec)
				if err != nil {
					return nil, err
				}
				doc.Driver = append(doc.Driver, par)
			}
		}
		if want("sharded") {
			for _, w := range wallClockWorkers {
				par, err := benchDriver(driverSpec{topology: topology, engine: "sharded", workers: w}, seq.ReqPerSec)
				if err != nil {
					return nil, err
				}
				doc.Driver = append(doc.Driver, par)
			}
		}
		for _, d := range doc.Driver {
			if d.Topology == topology && d.VirtualMakespan != seq.VirtualMakespan {
				return nil, fmt.Errorf("wallclock: %s/%s makespan %s differs from sequential's %s",
					d.Topology, d.Engine, d.VirtualMakespan, seq.VirtualMakespan)
			}
		}
	}
	return doc, nil
}

// benchHotPath measures the untraced send-receive-reply transaction,
// same-host or cross-host, mirroring BenchmarkE1MessageTransaction.
func benchHotPath(remote bool) (HotPathResult, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return HotPathResult{}, err
	}
	host := r.WS[0].Host
	echoHost := host
	name := "e1/local"
	if remote {
		echoHost = r.FS1Host
		name = "e1/remote"
	}
	echo, err := echoHost.Spawn("echo", func(p *kernel.Process) {
		var reply proto.Message
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply = *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		return HotPathResult{}, err
	}
	cl, err := host.NewProcess("bench-client")
	if err != nil {
		return HotPathResult{}, err
	}
	req := &proto.Message{Op: proto.OpEcho}
	send := func() error {
		_, err := cl.Send(req, echo.PID())
		return err
	}
	for i := 0; i < 64; i++ { // warm the envelope pool
		if err := send(); err != nil {
			return HotPathResult{}, err
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := send(); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := testing.AllocsPerRun(200, func() {
		if err := send(); err != nil {
			panic(err)
		}
	})
	return HotPathResult{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		SendAllocs:  allocs,
	}, nil
}

// driverSpec selects one driver-table row: which topology to boot and
// which engine to push it through. workers caps the lanes driver's
// goroutines, or sets GOMAXPROCS for the sharded engine's run (the
// engine always runs one goroutine per lane; the OS-thread budget is
// the knob that maps lanes onto cores).
type driverSpec struct {
	topology string // "disjoint-shards" or "shared-prefix"
	engine   string // "sequential", "lanes" or "sharded"
	workers  int
}

// benchDriver times one driver-table row, averaging over a few fresh
// topologies.
func benchDriver(spec driverSpec, seqReqPerSec float64) (DriverResult, error) {
	const rounds = 5
	var elapsed time.Duration
	var requests int
	var makespan time.Duration
	var perLane []int
	for i := 0; i < rounds; i++ {
		var clients []*rig.WorkloadClient
		var hosts []*kernel.Host
		switch spec.topology {
		case "disjoint-shards":
			sw, err := rig.NewShardedWorkload(wallClockShards)
			if err != nil {
				return DriverResult{}, err
			}
			clients, hosts = sw.Clients, sw.Hosts
		case "shared-prefix":
			sw, err := rig.NewSharedPrefixWorkload(wallClockShared)
			if err != nil {
				return DriverResult{}, err
			}
			clients = sw.Clients
			hosts = append(append([]*kernel.Host{}, sw.Hosts...), sw.PrefixHost)
		default:
			return DriverResult{}, fmt.Errorf("driver: unknown topology %q", spec.topology)
		}
		start := time.Now()
		var res *rig.WorkloadResult
		switch spec.engine {
		case "sequential":
			res = rig.RunWorkload(clients)
		case "lanes":
			res = rig.RunWorkloadLanes(clients, spec.workers)
		case "sharded":
			prev := runtime.GOMAXPROCS(spec.workers)
			res = rig.RunWorkloadParallel(clients, 0)
			runtime.GOMAXPROCS(prev)
		default:
			return DriverResult{}, fmt.Errorf("driver: unknown engine %q", spec.engine)
		}
		elapsed += time.Since(start)
		requests += res.Requests
		if i == 0 {
			makespan = res.Makespan
			if spec.engine == "sharded" {
				perLane = laneEventCounts(clients, res)
			}
		} else if res.Makespan != makespan {
			return DriverResult{}, fmt.Errorf("driver %s/%s/%d: virtual makespan varied across runs: %v vs %v",
				spec.topology, spec.engine, spec.workers, res.Makespan, makespan)
		}
		for _, h := range hosts {
			h.Crash()
		}
	}
	out := DriverResult{
		Engine:          spec.engine,
		Topology:        spec.topology,
		Workers:         spec.workers,
		Shards:          wallClockShards.Shards,
		Requests:        requests / rounds,
		WallNs:          int64(elapsed) / rounds,
		EventsPerEngine: perLane,
		ReqPerSec:       float64(requests) / elapsed.Seconds(),
		VirtualMakespan: makespan.String(),
	}
	if spec.engine == "sequential" {
		out.SpeedupVsSeq = 1
	} else {
		out.SpeedupVsSeq = out.ReqPerSec / seqReqPerSec
	}
	return out, nil
}

// laneEventCounts sums completed operations per engine lane.
func laneEventCounts(clients []*rig.WorkloadClient, res *rig.WorkloadResult) []int {
	lanes := 0
	for _, c := range clients {
		if c.Lane+1 > lanes {
			lanes = c.Lane + 1
		}
	}
	counts := make([]int, lanes)
	for i, c := range clients {
		counts[c.Lane] += res.Clients[i].Completed
	}
	return counts
}
