// Package experiments regenerates every quantitative result in the paper
// (§3.1 and §6) plus the ablations DESIGN.md derives from the paper's
// arguments (§2.2, §5.6, §7). Each experiment boots a deterministic rig,
// drives the protocol through the public client library, reads virtual
// time off the process clocks, and reports paper-vs-measured rows.
//
// See EXPERIMENTS.md for the recorded outputs and the discussion of where
// measured values may legitimately deviate from the paper's.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/vtime"
)

// Row is one reported measurement.
type Row struct {
	Label    string `json:"label"`
	Paper    string `json:"paper"` // the paper's value, or "-" when the paper gives none
	Measured string `json:"measured"`
	Note     string `json:"note,omitempty"`
}

// Result is one experiment's output.
type Result struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Source string `json:"source"` // where in the paper the numbers come from
	Rows   []Row  `json:"rows"`
}

// Runner produces one experiment result.
type Runner func() (Result, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"e1":  E1,
	"e2":  E2,
	"e3":  E3,
	"t1":  T1,
	"e5":  E5,
	"a1":  A1,
	"a2":  A2,
	"a3":  A3,
	"a4":  A4,
	"a5":  A5,
	"a6":  A6,
	"a7":  A7,
	"a8":  A8,
	"a9":  A9,
	"a10": A10,
	"a11": A11,
	"a12": A12,
	"a14": A14,
	"a15": A15,
	"a16": A16,
	"a17": A17,
	"a18": A18,
	"a19": A19,
}

// sectionGuard reports whether experiment id is followed only by
// later-numbered a-series experiments in canonical order — the
// condition under which the byte-pinned vbench_output.txt sections
// preceding (and including) id cannot shift when new experiments land.
func sectionGuard(id string) bool {
	ids := IDs()
	pos := -1
	for i, have := range ids {
		if have == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	num, err := strconv.Atoi(id[1:])
	if err != nil {
		return false
	}
	for _, later := range ids[pos+1:] {
		if later[0] != 'a' {
			return false
		}
		n, err := strconv.Atoi(later[1:])
		if err != nil || n <= num {
			return false
		}
	}
	return true
}

// IDs returns the experiment ids in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Canonical order: E-series, T-series, A-series, numerically within
	// each series (so a10 follows a9).
	sort.Slice(ids, func(i, j int) bool {
		rank := func(s string) string {
			series := "2"
			switch s[0] {
			case 'e':
				series = "0"
			case 't':
				series = "1"
			}
			num := s[1:]
			for len(num) < 3 {
				num = "0" + num
			}
			return series + num
		}
		return rank(ids[i]) < rank(ids[j])
	})
	return ids
}

// Run executes one experiment by id. "chaos" is accepted as an alias
// for the A10 fault-injection sweep (`vbench chaos`).
func Run(id string) (Result, error) {
	id = strings.ToLower(id)
	if id == "chaos" {
		id = "a10"
	}
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r()
}

// RunAll executes every experiment in canonical order.
func RunAll() ([]Result, error) {
	var out []Result
	for _, id := range IDs() {
		res, err := Run(id)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Print renders a result as an aligned table.
func Print(w io.Writer, res Result) {
	fmt.Fprintf(w, "%s — %s (%s)\n", strings.ToUpper(res.ID), res.Title, res.Source)
	labelW, paperW, measW := len("measurement"), len("paper"), len("measured")
	for _, r := range res.Rows {
		labelW = max(labelW, len(r.Label))
		paperW = max(paperW, len(r.Paper))
		measW = max(measW, len(r.Measured))
	}
	line := func(a, b, c, d string) {
		fmt.Fprintf(w, "  %-*s  %*s  %*s  %s\n", labelW, a, paperW, b, measW, c, d)
	}
	line("measurement", "paper", "measured", "note")
	line(strings.Repeat("-", labelW), strings.Repeat("-", paperW), strings.Repeat("-", measW), "----")
	for _, r := range res.Rows {
		line(r.Label, r.Paper, r.Measured, r.Note)
	}
	fmt.Fprintln(w)
}

// ms renders a virtual duration in the paper's unit.
func ms(d time.Duration) string { return vtime.Milliseconds(d) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
