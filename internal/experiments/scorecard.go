package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Check is one scorecard line: a claim from the paper and whether this
// reproduction's measurement upholds it.
type Check struct {
	Claim   string
	Paper   string
	Got     string
	Upholds bool
}

// Scorecard runs the anchored experiments and grades the reproduction
// against the paper's published values and invariants: absolute anchors
// within tolerance, and the qualitative claims (orderings, equalities,
// who-wins) that carry the paper's argument.
func Scorecard() ([]Check, error) {
	var checks []Check

	rowMs := func(res Result, i int) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSuffix(res.Rows[i].Measured, " ms"), 64)
		if err != nil {
			return 0, fmt.Errorf("row %d of %s: %w", i, res.ID, err)
		}
		return v, nil
	}
	within := func(got, want, tolerance float64) bool {
		return math.Abs(got-want) <= want*tolerance
	}

	e1, err := E1()
	if err != nil {
		return nil, err
	}
	remote, err := rowMs(e1, 0)
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "32-byte remote message transaction", Paper: "2.56 ms",
		Got: fmt.Sprintf("%.2f ms", remote), Upholds: within(remote, 2.56, 0.02),
	})

	e2, err := E2()
	if err != nil {
		return nil, err
	}
	load, err := rowMs(e2, 0)
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "64 KB program load via MoveTo", Paper: "338 ms",
		Got: fmt.Sprintf("%.2f ms", load), Upholds: within(load, 338, 0.05),
	})

	e3, err := E3()
	if err != nil {
		return nil, err
	}
	withRA, err := rowMs(e3, 0)
	if err != nil {
		return nil, err
	}
	withoutRA, err := rowMs(e3, 1)
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "sequential read near the 15 ms/page disk rate", Paper: "17.13 ms/page",
		Got:     fmt.Sprintf("%.2f-%.2f ms/page envelope", withRA, withoutRA),
		Upholds: withRA <= 17.13 && 17.13 <= withoutRA,
	})

	t1, err := T1()
	if err != nil {
		return nil, err
	}
	var q [4]float64
	for i := 0; i < 4; i++ {
		if q[i], err = rowMs(t1, i); err != nil {
			return nil, err
		}
	}
	dLocal, err := rowMs(t1, 4)
	if err != nil {
		return nil, err
	}
	dRemote, err := rowMs(t1, 5)
	if err != nil {
		return nil, err
	}
	checks = append(checks,
		Check{
			Claim: "Open ordering: current<prefix, local<remote", Paper: "1.21 < 3.70 < 5.14* < 7.69",
			Got:     fmt.Sprintf("%.2f / %.2f / %.2f / %.2f", q[0], q[1], q[2], q[3]),
			Upholds: q[0] < q[1] && q[0] < q[2] && q[1] < q[3] && q[2] < q[3],
		},
		Check{
			Claim: "prefix overhead identical in both columns", Paper: "3.94 ≈ 3.99 ms",
			Got:     fmt.Sprintf("%.2f ≈ %.2f ms", dLocal, dRemote),
			Upholds: math.Abs(dLocal-dRemote) <= 0.15,
		})

	a2, err := A2()
	if err != nil {
		return nil, err
	}
	dist, err := rowMs(a2, 0)
	if err != nil {
		return nil, err
	}
	cent, err := rowMs(a2, 1)
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "centralized name server costs an extra interaction", Paper: "argued in §2.2",
		Got:     fmt.Sprintf("%.2fx the distributed cost", cent/dist),
		Upholds: cent > dist,
	})

	a3, err := A3()
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "crash-consistency: names die with objects", Paper: "0 dangling (§2.2)",
		Got:     a3.Rows[1].Measured + " (V) vs " + a3.Rows[0].Measured + " (centralized)",
		Upholds: strings.HasPrefix(a3.Rows[1].Measured, "0 "),
	})

	a4, err := A4()
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "no central naming failure point", Paper: "all reachable (§2.2)",
		Got:     a4.Rows[1].Measured + " (V) vs " + a4.Rows[0].Measured + " (centralized)",
		Upholds: a4.Rows[1].Measured == "10/10" && a4.Rows[0].Measured == "0/10",
	})

	a5, err := A5()
	if err != nil {
		return nil, err
	}
	checks = append(checks, Check{
		Claim: "dynamic service bindings rebind after crash", Paper: "GetPid per use (§6)",
		Got:     a5.Rows[0].Measured,
		Upholds: a5.Rows[0].Measured == "recovers",
	})

	hot1, _, err := a11Run(1)
	if err != nil {
		return nil, err
	}
	hot4, _, err := a11Run(4)
	if err != nil {
		return nil, err
	}
	ratio := hot4.throughput / hot1.throughput
	checks = append(checks, Check{
		Claim: "server team overlaps name interpretation", Paper: "team of processes (§3.1)",
		Got:     fmt.Sprintf("team=4 serves %.1fx team=1 throughput", ratio),
		Upholds: ratio >= 2,
	})

	return checks, nil
}

// PrintScorecard renders the scorecard.
func PrintScorecard(w interface{ Write([]byte) (int, error) }, checks []Check) {
	fmt.Fprintln(w, "reproduction scorecard")
	claimW, paperW, gotW := 0, 0, 0
	for _, c := range checks {
		claimW = max(claimW, len(c.Claim))
		paperW = max(paperW, len(c.Paper))
		gotW = max(gotW, len(c.Got))
	}
	for _, c := range checks {
		verdict := "REPRODUCED"
		if !c.Upholds {
			verdict = "DEVIATES"
		}
		fmt.Fprintf(w, "  %-*s  paper %-*s  measured %-*s  %s\n",
			claimW, c.Claim, paperW, c.Paper, gotW, c.Got, verdict)
	}
}
