// A12: trace-driven decomposition of the paper's remote message
// transaction, plus the canonical single-client trace `vbench -trace`
// exports. Where E1 reproduces the §3.1 / Figure 1 total (2.56 ms for a
// remote Send-Receive-Reply with 32-byte messages), A12 reads the same
// transaction's *trace* and splits the total into its wire, queueing,
// and serving components — each row is computed from span timestamps,
// not from the cost model directly, so the decomposition doubles as a
// check that the tracer's account of a transaction sums to the clock's.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// A12 traces one remote Send-Receive-Reply transaction (the E1 workload)
// and decomposes the paper's 2.56 ms total into request hop, server
// dwell, and reply hop, with the per-hop wire/driver/queueing breakdown
// read off the wire spans.
func A12() (Result, error) {
	model := vtime.DefaultModel()
	net := netsim.New(model, 1)
	k := kernel.New(net)
	tr := trace.New()
	k.SetTracer(tr)
	net.SetRecorder(tr)

	fsHost := k.NewHost("fileserver")
	wsHost := k.NewHost("ws-mann")
	echo, err := fsHost.Spawn("echo", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	clientProc, err := wsHost.NewProcess("a12-client")
	if err != nil {
		return Result{}, err
	}
	if _, err := clientProc.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
		return Result{}, err
	}

	spans := tr.Snapshot()
	if err := trace.Check(spans, trace.CheckOptions{Model: model}); err != nil {
		return Result{}, fmt.Errorf("a12: trace invariants: %w", err)
	}
	find := func(what string, pred func(s trace.Span) bool) (trace.Span, error) {
		for _, s := range spans {
			if pred(s) {
				return s, nil
			}
		}
		return trace.Span{}, fmt.Errorf("a12: no %s span in trace", what)
	}
	send, err := find("send", func(s trace.Span) bool { return s.Kind == trace.KindSend })
	if err != nil {
		return Result{}, err
	}
	reqWire, err := find("request wire", func(s trace.Span) bool {
		return s.Kind == trace.KindWire && s.Name == "request" && s.Parent == send.ID
	})
	if err != nil {
		return Result{}, err
	}
	rep, err := find("reply", func(s trace.Span) bool {
		return s.Kind == trace.KindReply && s.Parent == send.ID
	})
	if err != nil {
		return Result{}, err
	}
	repWire, err := find("reply wire", func(s trace.Span) bool {
		return s.Kind == trace.KindWire && s.Name == "reply" && s.Parent == rep.ID
	})
	if err != nil {
		return Result{}, err
	}

	dur := func(s trace.Span) time.Duration { return time.Duration(s.End - s.Start) }
	total := dur(send)
	reqHop := dur(reqWire)
	repHop := dur(repWire)
	dwell := time.Duration(repWire.Start - reqWire.End)
	queue := time.Duration(reqWire.Queue + repWire.Queue)
	wireTx := model.WireTime(reqWire.Bytes)
	fixed := model.RemoteDriverFloor + model.RemoteProtocolExtra
	if reqHop+dwell+repHop != total {
		return Result{}, fmt.Errorf("a12: decomposition %v + %v + %v does not sum to total %v",
			reqHop, dwell, repHop, total)
	}

	return Result{
		ID:     "a12",
		Title:  "trace decomposition of the remote message transaction",
		Source: "§3.1, Figure 1 (components read off the span tree)",
		Rows: []Row{
			{Label: "remote transaction (total)", Paper: "2.56 ms", Measured: ms(total),
				Note: "send span, 32-byte messages"},
			{Label: "request hop (client to server)", Paper: "-", Measured: ms(reqHop),
				Note: "request wire span"},
			{Label: "server dwell", Paper: "-", Measured: ms(dwell),
				Note: "reply wire start minus request wire end"},
			{Label: "reply hop (server to client)", Paper: "-", Measured: ms(repHop),
				Note: "reply wire span"},
			{Label: "wire transmission per hop", Paper: "-", Measured: ms(wireTx),
				Note: fmt.Sprintf("%d message bytes on the 3 Mbit wire", reqWire.Bytes)},
			{Label: "driver + protocol fixed per hop", Paper: "-", Measured: ms(fixed),
				Note: "per-packet latency floor"},
			{Label: "wire queueing (both hops)", Paper: "-", Measured: ms(queue),
				Note: "idle wire: no contention"},
		},
	}, nil
}

// CanonicalTrace boots the standard single-user rig with tracing on,
// performs one open/read/close of "[home]welcome.txt", checks the trace
// invariants, and returns the trace document as indented JSON. This is
// the trace `vbench -trace` exports and the golden-trace regression test
// pins byte-for-byte.
func CanonicalTrace() ([]byte, error) {
	cfg := rig.DefaultConfig()
	cfg.Users = []string{"mann"}
	cfg.Seed = 1
	cfg.Trace = true
	r, err := rig.New(cfg)
	if err != nil {
		return nil, err
	}
	s := r.WS[0].Session
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		return nil, fmt.Errorf("canonical trace: read: %w", err)
	}
	if err := r.CheckTrace(); err != nil {
		return nil, fmt.Errorf("canonical trace: invariants: %w", err)
	}
	return r.Tracer.JSON()
}
