package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/rig"
)

func TestA11TeamScaling(t *testing.T) {
	hot1, cold1, err := a11Run(1)
	if err != nil {
		t.Fatal(err)
	}
	hot4, cold4, err := a11Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// The cache-hit phase is pure per-request serving compute; a team of
	// four must overlap it well past 2x one serving process.
	if hot4.throughput < 2*hot1.throughput {
		t.Fatalf("team=4 hot throughput %.0f not > 2x team=1 %.0f",
			hot4.throughput, hot1.throughput)
	}
	if hot4.meanLatency >= hot1.meanLatency {
		t.Fatalf("team=4 hot latency %.2f ms not below team=1 %.2f ms",
			hot4.meanLatency, hot1.meanLatency)
	}
	// Cold streams are bound by the single disk arm: teams must not
	// pretend to scale them.
	ratio := cold4.throughput / cold1.throughput
	if ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("cold streams scaled %.2fx with team size; the disk arm should pin them", ratio)
	}
}

func TestA11Deterministic(t *testing.T) {
	h1, c1, err := a11Run(2)
	if err != nil {
		t.Fatal(err)
	}
	h2, c2, err := a11Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || c1 != c2 {
		t.Fatalf("a11 not deterministic:\nhot  %+v vs %+v\ncold %+v vs %+v", h1, h2, c1, c2)
	}
}

func TestA11Shape(t *testing.T) {
	res := runExp(t, "a11")
	if len(res.Rows) != 2*len(a11TeamSizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Rows[0].Label, "team=1") {
		t.Fatalf("first row = %+v", res.Rows[0])
	}
}

// TestTeamOneByteIdenticalToSeed pins the refactor's central promise:
// with the default team size of 1 the serving path reproduces the seed
// benchmark output byte for byte. Each checked experiment's rendered
// section must appear verbatim in the committed vbench_output.txt.
func TestTeamOneByteIdenticalToSeed(t *testing.T) {
	seed, err := os.ReadFile("../../vbench_output.txt")
	if err != nil {
		t.Skipf("no seed output: %v", err)
	}
	for _, id := range []string{"e1", "e3", "t1", "a2"} {
		res := runExp(t, id)
		var buf bytes.Buffer
		Print(&buf, res)
		if !bytes.Contains(seed, buf.Bytes()) {
			t.Errorf("experiment %s no longer renders its seed section byte-identically:\n%s", id, buf.String())
		}
	}
}

// TestShardedByteIdenticalToSeed is the conservative engine's
// golden-guard: A11's workloads rerun with every client on its own
// engine lane — all operations Shared, since the clients contend on one
// file server — must render the committed seed section byte for byte.
// Shared operations commit in global (virtual-time, slot) key order,
// which is exactly the sequential driver's pick-min order, so handing
// the engine a maximally sharded lane layout may not move a single
// byte of output.
func TestShardedByteIdenticalToSeed(t *testing.T) {
	seed, err := os.ReadFile("../../vbench_output.txt")
	if err != nil {
		t.Skipf("no seed output: %v", err)
	}
	prev := a11Driver
	defer func() { a11Driver = prev }()
	a11Driver = func(clients []*rig.WorkloadClient) *rig.WorkloadResult {
		for i, c := range clients {
			c.Lane = i
		}
		return rig.RunWorkloadParallel(clients, 0)
	}
	res := runExp(t, "a11")
	var buf bytes.Buffer
	Print(&buf, res)
	if !bytes.Contains(seed, buf.Bytes()) {
		t.Fatalf("sharded A11 no longer renders its seed section byte-identically:\n%s", buf.String())
	}
}
