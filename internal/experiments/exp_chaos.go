package experiments

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/rig"
)

// A10 sweeps injected fault rate against operation success fraction for
// the six combinations of {static, dynamic} prefix binding × {no cache,
// naive cache, invalidate-and-retry cache}, with the client recovery
// policy enabled throughout. The schedule crashes and re-creates FS1
// (new pid each restart) and pulses packet loss; FS2 carries a replica
// of the standard-programs context, so a dynamic binding can fail over
// via GetPid while a static binding keeps naming the dead pid — the
// §4.2 argument for late binding, measured as availability.
func A10() (Result, error) {
	// Light / default / heavy fault rates: mean time between FS1 outages.
	rates := []time.Duration{
		1600 * time.Millisecond,
		800 * time.Millisecond,
		400 * time.Millisecond,
	}

	variants := []struct {
		label  string
		static bool
		cache  string
	}{
		{"static binding, no cache", true, "none"},
		{"static binding, naive cache", true, "naive"},
		{"static binding, invalidate-and-retry", true, "retry"},
		{"dynamic binding, no cache", false, "none"},
		{"dynamic binding, naive cache", false, "naive"},
		{"dynamic binding, invalidate-and-retry", false, "retry"},
	}

	run := func(static bool, cache string, outageEvery time.Duration) (float64, rig.ResilienceSummary, error) {
		policy := client.DefaultRetryPolicy()
		r, err := rig.New(rig.Config{Users: []string{"mann"}, Seed: 1, Retry: &policy})
		if err != nil {
			return 0, rig.ResilienceSummary{}, err
		}
		s := r.WS[0].Session

		// FS2 replicates the standard-programs context so a rebinding
		// client has somewhere to go during an FS1 outage.
		if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
			return 0, rig.ResilienceSummary{}, err
		}
		if err := r.FS2.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
			return 0, rig.ResilienceSummary{}, err
		}

		name := "[bin]hello"
		if static {
			// A static binding captures FS1's (pid, ctx) at define time.
			if err := r.WS[0].Prefix.Define("sbin", r.BinCtx); err != nil {
				return 0, rig.ResilienceSummary{}, err
			}
			name = "[sbin]hello"
		}
		switch cache {
		case "naive":
			s.EnableNameCache(false)
		case "retry":
			s.EnableNameCache(true)
		}

		eng := r.NewChaos(chaos.Generate(2026, chaos.Profile{
			Duration:           3 * time.Second,
			Hosts:              []string{"fs1"},
			MeanOutageEvery:    outageEvery,
			OutageLength:       200 * time.Millisecond,
			MeanLossPulseEvery: 900 * time.Millisecond,
			LossPulseLength:    120 * time.Millisecond,
			LossRate:           0.9,
		}))
		// Faults scheduled during a backoff wait fire while the client waits.
		s.SetRetryObserver(eng.AdvanceTo)

		const ops = 150
		ok := 0
		for i := 0; i < ops; i++ {
			eng.AdvanceTo(s.Proc().Now())
			if f, err := s.Open(name, proto.ModeRead); err == nil {
				if err := f.Close(); err == nil {
					ok++
				}
			}
			s.Proc().ChargeCompute(10 * time.Millisecond) // workload pacing
		}
		return float64(ok) / ops, r.ResilienceSummary(), nil
	}

	var rows []Row
	var key rig.ResilienceSummary // dynamic + retry cache at the default rate
	for _, v := range variants {
		fracs := make([]string, len(rates))
		for i, rate := range rates {
			frac, sum, err := run(v.static, v.cache, rate)
			if err != nil {
				return Result{}, fmt.Errorf("%s @ %v: %w", v.label, rate, err)
			}
			fracs[i] = fmt.Sprintf("%.2f", frac)
			if !v.static && v.cache == "retry" && i == 1 {
				key = sum
			}
		}
		note := ""
		if v == variants[0] {
			note = "success fraction; mean outage every 1.6s / 0.8s / 0.4s"
		}
		rows = append(rows, Row{
			Label:    v.label,
			Paper:    "-",
			Measured: fmt.Sprintf("%s / %s / %s ok", fracs[0], fracs[1], fracs[2]),
			Note:     note,
		})
	}

	rows = append(rows,
		Row{Label: "recovery work (dynamic, retry cache)", Paper: "-",
			Measured: fmt.Sprintf("%d retries, %d rebinds, %d failovers",
				key.Client.Retries, uint64(key.Client.Rebinds)+key.Prefix.Rebinds, key.Client.Failovers),
			Note: "at the default fault rate"},
		Row{Label: "virtual downtime absorbed", Paper: "-",
			Measured: ms(key.Client.Downtime),
			Note:     "backoff charged to the client's virtual clock"},
	)

	return Result{
		ID:     "a10",
		Title:  "chaos sweep: fault rate vs. operation success",
		Source: "§4.2 (late binding + rebinding) under injected faults",
		Rows:   rows,
	}, nil
}
