package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The A18 gates run at a18TestScale: the same legs and assertions as
// the full document, minus the multi-second 10⁵–10⁶ boots — those are
// covered by golden-guard, which regenerates BENCH_zipf.json at full
// scale and compares it byte-for-byte against the committed file.

func a18TestDoc(t *testing.T) *ZipfDoc {
	t.Helper()
	doc, _, err := a18Collect(a18TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestA18Shape(t *testing.T) {
	if !a18SectionGuard() {
		t.Fatal("a18 must append after every pre-existing experiment id: vbench_output.txt's earlier sections must stay byte-identical")
	}
	if !a17SectionGuard() {
		t.Fatal("a17's sections shifted: only later-numbered a-series experiments may follow it")
	}
	_, rows, err := a18Collect(a18TestScale)
	if err != nil {
		t.Fatal(err)
	}
	want := len(a18TestScale.pops) + 2*len(a18TestScale.pops) + len(a18SkewSweep) + 1
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows[:len(a18TestScale.pops)] {
		if !strings.Contains(r.Note, "radix descent vs flat binary search") {
			t.Fatalf("index row lost its baseline: %+v", r)
		}
	}
	for _, r := range rows[len(a18TestScale.pops) : 3*len(a18TestScale.pops)] {
		if !strings.Contains(r.Note, "≡ sequential") && !strings.Contains(r.Note, "engine-only") {
			t.Fatalf("sweep row lost its driver marker: %+v", r)
		}
	}
	last := rows[len(rows)-1]
	if last.Measured != "0 stale windows" {
		t.Fatalf("trace row: %+v", last)
	}
}

func TestZipfJSONDeterministic(t *testing.T) {
	enc := func(doc *ZipfDoc) []byte {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	b1 := enc(a18TestDoc(t))
	b2 := enc(a18TestDoc(t))
	if !bytes.Equal(b1, b2) {
		t.Fatal("zipf document not byte-deterministic across runs")
	}

	var doc ZipfDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Index) != len(a18TestScale.pops) {
		t.Fatalf("index points = %d, want %d", len(doc.Index), len(a18TestScale.pops))
	}
	for _, pt := range doc.Index {
		if pt.RadixSteps <= 0 || pt.FlatCompares <= 0 {
			t.Fatalf("index point with non-positive cost: %+v", pt)
		}
		if pt.RadixSteps > pt.FlatCompares {
			t.Fatalf("radix costlier than the flat search it replaced: %+v", pt)
		}
		if pt.IndexBytes <= 0 {
			t.Fatalf("index point without footprint: %+v", pt)
		}
	}
	// Flat search cost must grow with the population; the radix descent
	// must not track it (that is the tentpole's claim).
	for i := 1; i < len(doc.Index); i++ {
		if doc.Index[i].FlatCompares <= doc.Index[i-1].FlatCompares {
			t.Fatalf("flat compares did not grow with the table: %+v", doc.Index)
		}
	}
	if len(doc.Sweep) != 2*len(a18TestScale.pops) {
		t.Fatalf("sweep points = %d, want %d", len(doc.Sweep), 2*len(a18TestScale.pops))
	}
	for _, run := range doc.Sweep {
		if run.Errors != 0 {
			t.Fatalf("n=%d tier=%v: %d errors", run.Population, run.CacheTier, run.Errors)
		}
		if run.Population <= a18EquivMax && (!run.EquivalenceChecked || !run.EqualToSequential) {
			t.Fatalf("n=%d tier=%v: equivalence not verified: %+v", run.Population, run.CacheTier, run)
		}
		if run.P50US <= 0 || run.P99US < run.P50US {
			t.Fatalf("n=%d tier=%v: bad percentiles p50=%d p99=%d", run.Population, run.CacheTier, run.P50US, run.P99US)
		}
		if run.ThroughputRPS <= 0 {
			t.Fatalf("n=%d tier=%v: no throughput", run.Population, run.CacheTier)
		}
		if run.ClientHitRate <= 0 || run.ClientHitRate > 1 {
			t.Fatalf("n=%d tier=%v: client hit rate %v", run.Population, run.CacheTier, run.ClientHitRate)
		}
		if run.TableBytes <= 0 || run.PrefixGrants == 0 {
			t.Fatalf("n=%d tier=%v: missing server-side readout: %+v", run.Population, run.CacheTier, run)
		}
		if !run.CacheTier && run.TierHits != 0 {
			t.Fatalf("n=%d: tierless run has tier hits: %+v", run.Population, run)
		}
	}
	// The table footprint must grow with the population.
	for i := 1; i < len(a18TestScale.pops); i++ {
		if doc.Sweep[i].TableBytes <= doc.Sweep[i-1].TableBytes {
			t.Fatalf("table bytes did not grow with the population: %+v", doc.Sweep)
		}
	}
	if len(doc.SkewSweep) != len(a18SkewSweep) {
		t.Fatalf("skew points = %d, want %d", len(doc.SkewSweep), len(a18SkewSweep))
	}
	// Heavier skew concentrates draws on fewer names, so the client
	// lease caches must hit more.
	for i := 1; i < len(doc.SkewSweep); i++ {
		if doc.SkewSweep[i].ClientHitRate <= doc.SkewSweep[i-1].ClientHitRate {
			t.Fatalf("hit rate did not rise with skew: %+v", doc.SkewSweep)
		}
	}
	tr := doc.Trace
	if !tr.TraceClean || tr.StaleWindows != 0 {
		t.Fatalf("trace leg not clean: %+v", tr)
	}
	if tr.Invalidations == 0 || len(tr.Schedule) == 0 {
		t.Fatalf("trace leg inert: %+v", tr)
	}
	if tr.Errors != 0 {
		t.Fatalf("trace leg: %d errors", tr.Errors)
	}
}
