package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsZeroCost pins the observability tentpole's central promise:
// the metrics registry charges zero virtual time. Every rig now boots
// with the registry installed, so if instrumentation leaked any cost
// into the clocks the paper-facing numbers would drift. Each checked
// experiment's rendered section must still appear verbatim in the
// committed seed vbench_output.txt (generated before the registry
// existed for e1/e3/t1, and with team=1 for a2).
func TestMetricsZeroCost(t *testing.T) {
	seed, err := os.ReadFile("../../vbench_output.txt")
	if err != nil {
		t.Skipf("no seed output: %v", err)
	}
	for _, id := range []string{"e1", "e3", "t1", "a2"} {
		res := runExp(t, id)
		var buf bytes.Buffer
		Print(&buf, res)
		if !bytes.Contains(seed, buf.Bytes()) {
			t.Errorf("with metrics installed, experiment %s no longer renders its seed section byte-identically:\n%s", id, buf.String())
		}
	}
}

// TestMetricsDeterministic pins the other half of the contract: the
// metrics document — counters, quantiles, per-tick series, and the
// chaos health report — is byte-identical across runs. Runs under
// -race in make check, so it also exercises the registry's concurrent
// update paths.
func TestMetricsDeterministic(t *testing.T) {
	first, err := MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	second, err := MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("metrics document differs between runs:\nrun1 %d bytes\nrun2 %d bytes", len(first), len(second))
	}
}

// TestA14Shape sanity-checks the document itself: the quantile fields
// the acceptance criteria call for, the paper's remote transaction at
// the distribution median, and a health report that felt both outages.
func TestA14Shape(t *testing.T) {
	data, err := MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc MetricsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Legs) != 2+len(a14TeamSizes) {
		t.Fatalf("legs = %d", len(doc.Legs))
	}

	uncontended := doc.Legs[0]
	var echo *metrics.HistPoint
	for i, h := range uncontended.Histograms {
		if h.Name == "send_latency" && h.Labels.Op == "Echo" {
			echo = &uncontended.Histograms[i]
		}
	}
	if echo == nil {
		t.Fatal("uncontended leg has no send_latency Echo histogram")
	}
	if echo.P50US == 0 || echo.P90US == 0 || echo.P99US == 0 {
		t.Fatalf("echo quantiles not populated: %+v", echo)
	}
	// The paper's 2.56 ms remote message transaction, reproduced as the
	// median of a measured distribution rather than a single trial.
	if got := usms(echo.P50US); got != "2.56 ms" {
		t.Fatalf("remote transaction median = %s, want 2.56 ms", got)
	}

	chaos := doc.Legs[len(doc.Legs)-1]
	if chaos.Health == nil {
		t.Fatal("chaos leg has no health report")
	}
	var fs1 *metrics.ServerHealth
	for i, sh := range chaos.Health.Servers {
		if sh.Host == "fs1" {
			fs1 = &chaos.Health.Servers[i]
		}
	}
	if fs1 == nil {
		t.Fatal("health report has no fs1 entry")
	}
	if len(fs1.Outages) != 2 {
		t.Fatalf("fs1 outages = %d, want 2 (crash/restart schedule has two)", len(fs1.Outages))
	}
	if fs1.Availability >= 1 {
		t.Fatalf("fs1 availability = %v, want < 1 under the outage schedule", fs1.Availability)
	}
	if len(chaos.Health.Degraded) == 0 {
		t.Fatal("no degraded windows recorded; the stale-cache workload should feel both outages")
	}
}

// TestA14Render checks the experiment's table rows carry the headline
// numbers (per-(server,op) quantiles and the chaos availability line).
func TestA14Render(t *testing.T) {
	res := runExp(t, "a14")
	var buf bytes.Buffer
	Print(&buf, res)
	out := buf.String()
	for _, want := range []string{"remote transaction, median", "2.56 ms", "availability under chaos", "degraded windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("a14 output missing %q:\n%s", want, out)
		}
	}
}
