package experiments

import (
	"fmt"

	"repro/internal/client"

	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/nameserver"
	"repro/internal/proto"
	"repro/internal/rig"
)

// A1 quantifies the §5.6 argument for context directories: reading one
// directory of N objects versus enumerating names and querying each
// object individually.
func A1() (Result, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	s := r.WS[0].Session

	var rows []Row
	for _, n := range []int{10, 100, 1000} {
		dir := fmt.Sprintf("/users/mann/many%d", n)
		for i := 0; i < n; i++ {
			if err := r.FS1.WriteFile(fmt.Sprintf("%s/f%04d", dir, i), "mann", []byte("x")); err != nil {
				return Result{}, err
			}
		}
		name := fmt.Sprintf("[home]many%d", n)

		start := s.Proc().Now()
		records, err := s.List(name)
		if err != nil {
			return Result{}, err
		}
		dirTime := s.Proc().Now() - start
		if len(records) != n {
			return Result{}, fmt.Errorf("directory read returned %d records, want %d", len(records), n)
		}

		// The alternative: use the name list, then query each object.
		start = s.Proc().Now()
		for _, d := range records {
			if _, err := s.Query(name + "/" + d.Name); err != nil {
				return Result{}, err
			}
		}
		queryTime := s.Proc().Now() - start

		rows = append(rows,
			Row{
				Label:    fmt.Sprintf("context directory read, N=%d", n),
				Paper:    "-",
				Measured: ms(dirTime),
				Note:     "one open + stream read",
			},
			Row{
				Label:    fmt.Sprintf("enumerate + query each, N=%d", n),
				Paper:    "-",
				Measured: ms(queryTime),
				Note:     fmt.Sprintf("%.1fx the directory read", float64(queryTime)/float64(dirTime)),
			})
	}
	return Result{
		ID:     "a1",
		Title:  "context directory vs. per-object query enumeration",
		Source: "§5.6 (the paper argues this qualitatively)",
		Rows:   rows,
	}, nil
}

// A2 quantifies the §2.2 efficiency argument: the centralized model pays
// one extra server interaction (the name server) on every reference.
func A2() (Result, error) {
	cfg := rig.DefaultConfig()
	cfg.Baseline = true
	r, err := rig.New(cfg)
	if err != nil {
		return Result{}, err
	}
	s := r.WS[0].Session

	// Register the file with the centralized name server.
	d, err := s.Query("[home]welcome.txt")
	if err != nil {
		return Result{}, err
	}
	nsProc, err := r.WS[0].Host.NewProcess("baseline-client")
	if err != nil {
		return Result{}, err
	}
	nc := nameserver.NewClient(nsProc, r.NS.PID())
	const gname = "fs1:/users/mann/welcome.txt"
	if err := nc.Register(gname, r.FS1.PID(), d.ObjectID); err != nil {
		return Result{}, err
	}

	const trials = 50
	// Distributed: open in the current context (the common case the V
	// design optimizes: no third party involved).
	s.SetCurrent(r.WS[0].HomeCtx)
	start := s.Proc().Now()
	for i := 0; i < trials; i++ {
		f, err := s.Open("welcome.txt", proto.ModeRead)
		if err != nil {
			return Result{}, err
		}
		if err := f.Close(); err != nil {
			return Result{}, err
		}
	}
	distributed := (s.Proc().Now() - start) / trials

	// Centralized: every open goes name server → owning server.
	start = nsProc.Now()
	for i := 0; i < trials; i++ {
		info, server, err := nc.Open(gname, proto.ModeRead)
		if err != nil {
			return Result{}, err
		}
		rel := &proto.Message{Op: proto.OpReleaseInstance}
		rel.F[0] = uint32(info.ID)
		if _, err := nsProc.Send(rel, server); err != nil {
			return Result{}, err
		}
	}
	centralized := (nsProc.Now() - start) / trials

	return Result{
		ID:     "a2",
		Title:  "open latency: distributed interpretation vs. centralized name server",
		Source: "§2.2 (efficiency)",
		Rows: []Row{
			{Label: "V model, current context", Paper: "-", Measured: ms(distributed),
				Note: "1 transaction to the object's server"},
			{Label: "centralized, lookup then open-by-UID", Paper: "-", Measured: ms(centralized),
				Note: "2 transactions; extra name-server hop"},
			{Label: "centralized / distributed", Paper: "-",
				Measured: fmt.Sprintf("%.2fx", float64(centralized)/float64(distributed)),
				Note:     "the per-reference cost §2.2 predicts"},
		},
	}, nil
}

// A3 reproduces the §2.2 consistency argument: a crash between deleting
// an object and updating the name server leaves the system inconsistent;
// the distributed model has no such window because the name dies with the
// object, at the same server.
func A3() (Result, error) {
	cfg := rig.DefaultConfig()
	cfg.Baseline = true
	r, err := rig.New(cfg)
	if err != nil {
		return Result{}, err
	}
	s := r.WS[0].Session

	const total, crashed = 20, 7
	nsProc, err := r.WS[0].Host.NewProcess("baseline-client")
	if err != nil {
		return Result{}, err
	}
	nc := nameserver.NewClient(nsProc, r.NS.PID())

	// Baseline: create and register files, then delete some with a crash
	// injected between the two servers' updates.
	for i := 0; i < total; i++ {
		path := fmt.Sprintf("/users/mann/ns%02d", i)
		if err := r.FS1.WriteFile(path, "mann", []byte("data")); err != nil {
			return Result{}, err
		}
		d, err := s.Query(fmt.Sprintf("[home]ns%02d", i))
		if err != nil {
			return Result{}, err
		}
		if err := nc.Register("fs1:"+path, r.FS1.PID(), d.ObjectID); err != nil {
			return Result{}, err
		}
	}
	for i := 0; i < total; i++ {
		crash := i < crashed
		if err := nc.Remove(fmt.Sprintf("fs1:/users/mann/ns%02d", i), crash); err != nil {
			return Result{}, err
		}
	}
	dangling, err := nc.Verify()
	if err != nil {
		return Result{}, err
	}

	// Distributed: the same deletions through the V model; a client crash
	// mid-delete either deletes name+object or neither — inject "crashes"
	// by simply observing there is no second step to miss.
	for i := 0; i < total; i++ {
		if err := s.WriteFile(fmt.Sprintf("[home]v%02d", i), []byte("data")); err != nil {
			return Result{}, err
		}
	}
	for i := 0; i < total; i++ {
		if err := s.Remove(fmt.Sprintf("[home]v%02d", i)); err != nil {
			return Result{}, err
		}
	}
	vDangling := 0
	for i := 0; i < total; i++ {
		if _, err := s.Query(fmt.Sprintf("[home]v%02d", i)); err == nil {
			vDangling++
		}
	}

	return Result{
		ID:     "a3",
		Title:  "dangling names after client crashes during delete",
		Source: "§2.2 (consistency)",
		Rows: []Row{
			{Label: fmt.Sprintf("centralized, %d/%d deletes crash mid-way", crashed, total),
				Paper: "inconsistent", Measured: fmt.Sprintf("%d dangling names", len(dangling)),
				Note: "name server still advertises dead objects"},
			{Label: "V model, same workload", Paper: "consistent",
				Measured: fmt.Sprintf("%d dangling names", vDangling),
				Note:     "name and object die in one server operation"},
		},
	}, nil
}

// A4 reproduces the §2.2 reliability argument: a name-server failure
// makes objects unreachable even though the servers holding them are up.
func A4() (Result, error) {
	cfg := rig.DefaultConfig()
	cfg.Baseline = true
	r, err := rig.New(cfg)
	if err != nil {
		return Result{}, err
	}
	s := r.WS[0].Session

	const total = 10
	nsProc, err := r.WS[0].Host.NewProcess("baseline-client")
	if err != nil {
		return Result{}, err
	}
	nc := nameserver.NewClient(nsProc, r.NS.PID())
	for i := 0; i < total; i++ {
		path := fmt.Sprintf("/users/mann/r%02d", i)
		if err := r.FS1.WriteFile(path, "mann", []byte("data")); err != nil {
			return Result{}, err
		}
		d, err := s.Query(fmt.Sprintf("[home]r%02d", i))
		if err != nil {
			return Result{}, err
		}
		if err := nc.Register("fs1:"+path, r.FS1.PID(), d.ObjectID); err != nil {
			return Result{}, err
		}
	}

	// Take the name server down. The file server stays up.
	r.NSHost.Crash()

	centralOK := 0
	for i := 0; i < total; i++ {
		if info, server, err := nc.Open(fmt.Sprintf("fs1:/users/mann/r%02d", i), proto.ModeRead); err == nil {
			centralOK++
			rel := &proto.Message{Op: proto.OpReleaseInstance}
			rel.F[0] = uint32(info.ID)
			if _, err := nsProc.Send(rel, server); err != nil {
				return Result{}, err
			}
		}
	}
	vOK := 0
	for i := 0; i < total; i++ {
		if data, err := s.ReadFile(fmt.Sprintf("[home]r%02d", i)); err == nil && len(data) > 0 {
			vOK++
		}
	}

	return Result{
		ID:     "a4",
		Title:  "objects reachable while the name service is down",
		Source: "§2.2 (reliability)",
		Rows: []Row{
			{Label: "centralized: opens that succeed", Paper: "0 (central failure point)",
				Measured: fmt.Sprintf("%d/%d", centralOK, total),
				Note:     "file server is up, but nothing can be named"},
			{Label: "V model: opens that succeed", Paper: "all (name lives with object)",
				Measured: fmt.Sprintf("%d/%d", vOK, total),
				Note:     "prefix server is per-user and local"},
		},
	}, nil
}

// A5 reproduces the §4.2/§6 rebinding scenario: the storage server
// crashes and is re-created with a different pid. Dynamic
// (service, well-known-context) prefix bindings rebind via GetPid;
// static (pid, context) bindings dangle.
func A5() (Result, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	ws := r.WS[0]
	s := ws.Session

	if err := s.AddName("staticbin", r.BinCtx); err != nil {
		return Result{}, err
	}
	if _, err := s.ReadFile("[bin]hello"); err != nil {
		return Result{}, err
	}
	if _, err := s.ReadFile("[staticbin]hello"); err != nil {
		return Result{}, err
	}

	oldPid := r.FS1.PID()
	r.FS1Host.Crash()
	r.FS1Host.Restart()
	fsNew, err := fileserver.Start(r.FS1Host, "fs1")
	if err != nil {
		return Result{}, err
	}
	if err := fsNew.Proc().SetPid(kernel.ServiceStorage, fsNew.PID(), kernel.ScopeBoth); err != nil {
		return Result{}, err
	}
	if err := fsNew.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return Result{}, err
	}
	if err := fsNew.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
		return Result{}, err
	}

	start := s.Proc().Now()
	_, dynErr := s.ReadFile("[bin]hello")
	rebindTime := s.Proc().Now() - start
	_, statErr := s.ReadFile("[staticbin]hello")

	dynRow := "recovers"
	if dynErr != nil {
		dynRow = "FAILS: " + dynErr.Error()
	}
	statRow := "dangles (nonexistent process)"
	if statErr == nil {
		statRow = "UNEXPECTEDLY works"
	}
	return Result{
		ID:     "a5",
		Title:  "service rebinding after server crash and re-creation (new pid)",
		Source: "§4.2, §6",
		Rows: []Row{
			{Label: fmt.Sprintf("dynamic [bin] binding (old pid %v → new %v)", oldPid, fsNew.PID()),
				Paper: "rebinds via GetPid", Measured: dynRow,
				Note: fmt.Sprintf("first use after restart: %s", ms(rebindTime))},
			{Label: "static [staticbin] binding", Paper: "dangles", Measured: statRow,
				Note: "pid-bound names die with the process"},
		},
	}, nil
}

// A6 explores the §7 future-work direction: a context implemented
// transparently by a group of servers, addressed with multicast Send,
// compared against reaching the same context through the prefix server.
func A6() (Result, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	ws := r.WS[0]
	s := ws.Session

	// Replicate the program directory on FS2 and form a storage group.
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return Result{}, err
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", []byte("hello replica")); err != nil {
		return Result{}, err
	}
	gid := r.Kernel.CreateGroup()
	if err := r.Kernel.JoinGroup(gid, r.FS1.PID()); err != nil {
		return Result{}, err
	}
	if err := r.Kernel.JoinGroup(gid, r.FS2.PID()); err != nil {
		return Result{}, err
	}

	const trials = 20
	// Via the prefix server (the present mechanism).
	start := s.Proc().Now()
	for i := 0; i < trials; i++ {
		f, err := s.Open("[bin]hello", proto.ModeRead)
		if err != nil {
			return Result{}, err
		}
		if err := f.Close(); err != nil {
			return Result{}, err
		}
	}
	viaPrefix := (s.Proc().Now() - start) / trials

	// Via multicast to the group: the client sends the CSname request to
	// the group id; the first member to reply wins.
	proc := s.Proc()
	start = proc.Now()
	for i := 0; i < trials; i++ {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxStdPrograms), "hello")
		proto.SetOpenMode(req, proto.ModeRead)
		reply, err := proc.Send(req, gid)
		if err != nil {
			return Result{}, err
		}
		if err := proto.ReplyError(reply.Op); err != nil {
			return Result{}, err
		}
		rel := &proto.Message{Op: proto.OpReleaseInstance}
		rel.F[0] = reply.F[0]
		owner := kernel.PID(proto.InstanceOwner(reply))
		if _, err := proc.Send(rel, owner); err != nil {
			return Result{}, err
		}
	}
	viaGroup := (proc.Now() - start) / trials

	// Availability: with FS1 down, the group still answers.
	r.FS1Host.Crash()
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxStdPrograms), "hello")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := proc.Send(req, gid)
	survived := err == nil && reply.Op == proto.ReplyOK

	return Result{
		ID:     "a6",
		Title:  "multicast group context vs. prefix-server indirection",
		Source: "§7 (future work: multicast Send for name mapping)",
		Rows: []Row{
			{Label: "open via [bin] prefix", Paper: "-", Measured: ms(viaPrefix),
				Note: "local hop + prefix processing + forward"},
			{Label: "open via group multicast", Paper: "-", Measured: ms(viaGroup),
				Note: "one multicast frame, first reply wins"},
			{Label: "group open with one replica down", Paper: "transparent", Measured: okString(survived),
				Note: "the surviving member answers"},
		},
	}, nil
}

func okString(ok bool) string {
	if ok {
		return "succeeds"
	}
	return "fails"
}

// A7 quantifies the §5.6 pattern-matching extension the paper says it was
// considering: server-side filtering saves collating and transmitting
// records the client does not want.
func A7() (Result, error) {
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	s := r.WS[0].Session

	const total, matching = 200, 10
	for i := 0; i < total; i++ {
		suffix := "dat"
		if i < matching {
			suffix = "mss"
		}
		path := fmt.Sprintf("/users/mann/big/f%03d.%s", i, suffix)
		if err := r.FS1.WriteFile(path, "mann", []byte("x")); err != nil {
			return Result{}, err
		}
	}

	start := s.Proc().Now()
	all, err := s.List("[home]big")
	if err != nil {
		return Result{}, err
	}
	fullTime := s.Proc().Now() - start

	start = s.Proc().Now()
	filtered, err := s.ListPattern("[home]big", "*.mss")
	if err != nil {
		return Result{}, err
	}
	filteredTime := s.Proc().Now() - start
	if len(all) != total || len(filtered) != matching {
		return Result{}, fmt.Errorf("listing sizes %d/%d", len(all), len(filtered))
	}

	fullBytes := len(proto.EncodeDescriptors(all))
	filteredBytes := len(proto.EncodeDescriptors(filtered))

	return Result{
		ID:     "a7",
		Title:  "pattern-matched context directories (10 of 200 objects wanted)",
		Source: "§5.6 (extension the paper proposes)",
		Rows: []Row{
			{Label: "full directory read", Paper: "-", Measured: ms(fullTime),
				Note: fmt.Sprintf("%d records, %d bytes", total, fullBytes)},
			{Label: "pattern *.mss read", Paper: "-", Measured: ms(filteredTime),
				Note: fmt.Sprintf("%d records, %d bytes", matching, filteredBytes)},
			{Label: "transfer saved", Paper: "-",
				Measured: fmt.Sprintf("%.1f%%", 100*(1-float64(filteredBytes)/float64(fullBytes))),
				Note:     "server filters before collation"},
		},
	}, nil
}

// A8 quantifies both halves of the §2.2 sentence "Caching the name in
// the client would introduce inconsistency problems and only benefit the
// few applications that reuse names": the latency won by a client-side
// prefix-resolution cache on reuse, and the stale-resolution failures it
// suffers when a server is re-created. Each variant runs in its own
// fresh rig so the per-process virtual clocks stay comparable.
func A8() (Result, error) {
	const trials = 20

	// variant builds a rig, applies the cache configuration, warms one
	// open, measures per-open latency, then crashes and re-creates the
	// storage server and counts failing opens.
	variant := func(configure func(*client.Session)) (per float64, failures int, stale int, err error) {
		r, err := rig.New(rig.DefaultConfig())
		if err != nil {
			return 0, 0, 0, err
		}
		s := r.WS[0].Session
		if configure != nil {
			configure(s)
		}
		// Warm: the first open pays any cache miss.
		if f, err := s.Open("[bin]hello", proto.ModeRead); err != nil {
			return 0, 0, 0, err
		} else if err := f.Close(); err != nil {
			return 0, 0, 0, err
		}
		start := s.Proc().Now()
		for i := 0; i < trials; i++ {
			f, err := s.Open("[bin]hello", proto.ModeRead)
			if err != nil {
				return 0, 0, 0, err
			}
			if err := f.Close(); err != nil {
				return 0, 0, 0, err
			}
		}
		per = float64(s.Proc().Now()-start) / float64(trials)

		// The storage server crashes and is re-created with a new pid.
		r.FS1Host.Crash()
		r.FS1Host.Restart()
		fsNew, err := fileserver.Start(r.FS1Host, "fs1")
		if err != nil {
			return 0, 0, 0, err
		}
		if err := fsNew.Proc().SetPid(kernel.ServiceStorage, fsNew.PID(), kernel.ScopeBoth); err != nil {
			return 0, 0, 0, err
		}
		if err := fsNew.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
			return 0, 0, 0, err
		}
		if err := fsNew.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
			return 0, 0, 0, err
		}
		for i := 0; i < trials; i++ {
			f, err := s.Open("[bin]hello", proto.ModeRead)
			if err != nil {
				failures++
				continue
			}
			if err := f.Close(); err != nil {
				return 0, 0, 0, err
			}
		}
		return per, failures, s.NameCacheStats().Stale, nil
	}

	plainPer, plainFail, _, err := variant(nil)
	if err != nil {
		return Result{}, err
	}
	naivePer, naiveFail, _, err := variant(func(s *client.Session) { s.EnableNameCache(false) })
	if err != nil {
		return Result{}, err
	}
	_, retryFail, retryStale, err := variant(func(s *client.Session) { s.EnableNameCache(true) })
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID:     "a8",
		Title:  "client-side name caching: benefit on reuse vs. inconsistency",
		Source: "§2.2 (the paper's argument against client caches)",
		Rows: []Row{
			{Label: "open via prefix server, per use", Paper: "-", Measured: msFloat(plainPer),
				Note: "dynamic [bin]: prefix processing + GetPid each use"},
			{Label: "open with cached resolution (warm)", Paper: "benefits name reuse", Measured: msFloat(naivePer),
				Note: fmt.Sprintf("%.1fx faster on reuse", plainPer/naivePer)},
			{Label: "after server re-creation, no cache", Paper: "-",
				Measured: fmt.Sprintf("%d/%d opens fail", plainFail, trials),
				Note:     "prefix server rebinds via GetPid"},
			{Label: "after server re-creation, naive cache", Paper: "inconsistency problems",
				Measured: fmt.Sprintf("%d/%d opens fail", naiveFail, trials),
				Note:     "stale (pid, ctx) until the cache is flushed"},
			{Label: "cache with invalidate-and-retry", Paper: "-",
				Measured: fmt.Sprintf("%d/%d fail, %d stale use(s) absorbed", retryFail, trials, retryStale),
				Note:     "pays a failed transaction per stale entry"},
		},
	}, nil
}

// clientSession aliases the client session type for the loop helper.
type clientSession = client.Session

// msFloat renders a float64 of virtual nanoseconds as milliseconds.
func msFloat(ns float64) string {
	return fmt.Sprintf("%.2f ms", ns/1e6)
}
