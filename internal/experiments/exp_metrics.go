package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

// A14 turns the paper's §3.1 point estimates into full latency
// distributions using the virtual-time metrics registry: the 2.56 ms
// remote transaction as a histogram median, the A11 team sweep as
// serve-latency percentiles, and an FS1 crash/restart schedule as a
// health/SLO report with availability windows and client-visible
// degradation intervals. Everything is virtual time, so the whole
// document (BENCH_metrics.json) is byte-deterministic.

// MetricsDoc is the BENCH_metrics.json schema: one leg per measurement,
// each carrying the deterministic registry state it produced.
type MetricsDoc struct {
	Tool        string       `json:"tool"`
	Description string       `json:"description"`
	Legs        []MetricsLeg `json:"legs"`
}

// MetricsLeg is one A14 measurement leg.
type MetricsLeg struct {
	Label      string                 `json:"label"`
	Histograms []metrics.HistPoint    `json:"histograms,omitempty"`
	Counters   []metrics.CounterPoint `json:"counters,omitempty"`
	// RequestsPerTick is the sampler-derived throughput series (counter
	// deltas per tick), present when the leg pumped the sampler.
	RequestsPerTick []metrics.SeriesPoint `json:"requests_per_tick,omitempty"`
	FailuresPerTick []metrics.SeriesPoint `json:"failures_per_tick,omitempty"`
	Health          *metrics.HealthReport `json:"health,omitempty"`
}

// a14TeamSizes is the serve-latency team sweep (a subset of A11's).
var a14TeamSizes = []int{1, 2, 4}

// usms renders a microsecond quantity in the paper's milliseconds unit.
func usms(u int64) string { return vtime.Milliseconds(vtime.Time(u) * 1000) }

// histPoints returns every histogram point with the given name.
func histPoints(snap metrics.Snapshot, name string) []metrics.HistPoint {
	var out []metrics.HistPoint
	for _, h := range snap.Histograms {
		if h.Name == name {
			out = append(out, h)
		}
	}
	return out
}

// findHist locates one histogram point by name and labels.
func findHist(snap metrics.Snapshot, name string, l metrics.Labels) (metrics.HistPoint, bool) {
	for _, h := range snap.Histograms {
		if h.Name == name && h.Labels == l {
			return h, true
		}
	}
	return metrics.HistPoint{}, false
}

// counterPoints returns the counters whose names appear in names, in
// snapshot (sorted) order.
func counterPoints(snap metrics.Snapshot, names ...string) []metrics.CounterPoint {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []metrics.CounterPoint
	for _, c := range snap.Counters {
		if want[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// a14Uncontended reruns the E1 remote transaction with the registry
// watching: one client, 100 32-byte Send-Receive-Reply transactions to
// an echo process on the file-server host. Every transaction costs the
// same, so the send_latency histogram is degenerate and its median is
// the paper's 2.56 ms exactly.
func a14Uncontended() (MetricsLeg, metrics.HistPoint, error) {
	var leg MetricsLeg
	r, err := rig.New(rig.Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true})
	if err != nil {
		return leg, metrics.HistPoint{}, err
	}
	echo, err := r.FS1Host.Spawn("echo", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		return leg, metrics.HistPoint{}, err
	}
	cli, err := r.WS[0].Host.NewProcess("a14-client")
	if err != nil {
		return leg, metrics.HistPoint{}, err
	}
	const trials = 100
	for i := 0; i < trials; i++ {
		if _, err := cli.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
			return leg, metrics.HistPoint{}, err
		}
	}
	snap := r.Metrics.Snapshot().Deterministic()
	p, ok := findHist(snap, "send_latency", metrics.Labels{Server: "echo", Op: proto.OpEcho.String()})
	if !ok {
		return leg, metrics.HistPoint{}, fmt.Errorf("a14: no send_latency{echo,%s} histogram", proto.OpEcho)
	}
	if p.Count != trials {
		return leg, metrics.HistPoint{}, fmt.Errorf("a14: send_latency count = %d, want %d", p.Count, trials)
	}
	leg = MetricsLeg{
		Label:      "uncontended remote transaction: 1 client, 100 x 32-byte echo, separate hosts",
		Histograms: histPoints(snap, "send_latency"),
		Counters: counterPoints(snap, "kernel_sends_total", "kernel_replies_total",
			"wire_frames_total", "wire_bytes_total"),
	}
	return leg, p, nil
}

// a14Team drives the A11 cache-hit phase (8 co-resident clients
// repeatedly querying a deep path) at the given file-server team size
// and returns the serve-latency distribution the registry collected.
func a14Team(team int) (MetricsLeg, metrics.HistPoint, error) {
	var leg MetricsLeg
	cfg := rig.DefaultConfig()
	cfg.Users = []string{"mann"}
	cfg.FileServerTeam = team
	r, err := rig.New(cfg)
	if err != nil {
		return leg, metrics.HistPoint{}, err
	}
	if _, err := r.FS1.MkdirAll("/deep/a/b/c/d/e/f", "system"); err != nil {
		return leg, metrics.HistPoint{}, err
	}
	if err := r.FS1.WriteFile("/"+a11HotPath, "system", make([]byte, 512)); err != nil {
		return leg, metrics.HistPoint{}, err
	}
	clients := make([]*rig.WorkloadClient, 0, a11HotClients)
	for i := 0; i < a11HotClients; i++ {
		sess, err := a11Session(r, fmt.Sprintf("hot%d", i))
		if err != nil {
			return leg, metrics.HistPoint{}, err
		}
		clients = append(clients, &rig.WorkloadClient{
			Session:  sess,
			Requests: a11HotRequests,
			Op: func(s *client.Session, iter int) error {
				_, err := s.Query(a11HotPath)
				return err
			},
			Tick: r.Sampler.AdvanceTo,
		})
	}
	res := rig.RunWorkload(clients)
	for i, st := range res.Clients {
		if st.Errors > 0 {
			return leg, metrics.HistPoint{}, fmt.Errorf("a14 team=%d: client %d: %d requests failed", team, i, st.Errors)
		}
	}
	snap := r.Metrics.Snapshot().Deterministic()
	// The client-observed transaction latency (send_latency) carries the
	// contention story: with one serving process requests queue behind its
	// clock, with a team they overlap. serve_latency (per-request service
	// time on the worker) stays flat by construction and is kept in the
	// document for that contrast.
	lbl := metrics.Labels{Server: r.FS1.Proc().Name(), Op: proto.OpQueryObject.String()}
	p, ok := findHist(snap, "send_latency", lbl)
	if !ok {
		return leg, metrics.HistPoint{}, fmt.Errorf("a14 team=%d: no send_latency histogram for %+v", team, lbl)
	}
	leg = MetricsLeg{
		Label:      fmt.Sprintf("contended queries: %d clients, file-server team=%d", a11HotClients, team),
		Histograms: append(histPoints(snap, "send_latency"), histPoints(snap, "serve_latency")...),
		Counters: counterPoints(snap, "server_requests_total", "server_handoffs_total",
			"kernel_forwards_total"),
		RequestsPerTick: metrics.CounterSeries(r.Sampler.Samples(), "server_requests_total"),
	}
	return leg, p, nil
}

// a14ChaosSchedule is the FS1 crash/restart schedule the health report
// is pinned against: two outages, 500 ms each.
func a14ChaosSchedule() []chaos.Event {
	return []chaos.Event{
		{At: 300 * time.Millisecond, Action: chaos.Crash, Host: "fs1", Note: "first outage"},
		{At: 800 * time.Millisecond, Action: chaos.Restart, Host: "fs1"},
		{At: 1600 * time.Millisecond, Action: chaos.Crash, Host: "fs1", Note: "second outage"},
		{At: 2100 * time.Millisecond, Action: chaos.Restart, Host: "fs1"},
	}
}

// a14Chaos runs the A10 failover workload (dynamic [bin] binding, FS2
// replica, recovery policy on) under the fixed crash/restart schedule
// and derives the health report: FS1's availability windows must match
// the schedule, and the degraded intervals must cover the outages the
// client actually felt. The client runs the invalidate-and-retry name
// cache and flushes it periodically (fresh program instances start with
// empty caches), so each FS1 outage catches a cached resolution stale —
// without the cache, the dynamic binding re-resolves per use and the
// client never touches the dead pid.
func a14Chaos() (MetricsLeg, float64, error) {
	var leg MetricsLeg
	policy := client.DefaultRetryPolicy()
	r, err := rig.New(rig.Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true, Retry: &policy})
	if err != nil {
		return leg, 0, err
	}
	s := r.WS[0].Session
	// FS2 replicates the standard-programs context so the dynamic binding
	// has somewhere to fail over to during an FS1 outage.
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return leg, 0, err
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
		return leg, 0, err
	}
	s.EnableNameCache(true)
	eng := r.NewChaos(a14ChaosSchedule())
	pump := func(now vtime.Time) {
		eng.AdvanceTo(now)
		r.Sampler.AdvanceTo(now)
	}
	// Faults and samples scheduled during a backoff fire while the client
	// waits, exactly as in A10.
	s.SetRetryObserver(pump)

	const ops = 150
	ok := 0
	for i := 0; i < ops; i++ {
		if i > 0 && i%25 == 0 {
			s.FlushNameCache()
		}
		pump(s.Proc().Now())
		if f, err := s.Open("[bin]hello", proto.ModeRead); err == nil {
			if err := f.Close(); err == nil {
				ok++
			}
		}
		s.Proc().ChargeCompute(10 * time.Millisecond) // workload pacing
	}
	horizon := s.Proc().Now()
	pump(horizon)

	snap := r.Metrics.Snapshot().Deterministic()
	health := metrics.Health(snap, r.Sampler.Samples(), horizon, 0.90)
	leg = MetricsLeg{
		Label:      "chaos: FS1 crash/restart schedule, dynamic binding + retry, FS2 replica",
		Histograms: histPoints(snap, "send_latency"),
		Counters: counterPoints(snap, "chaos_events_total", "client_ops_total",
			"client_op_failures_total", "client_retries_total", "client_rebinds_total",
			"client_failovers_total", "prefix_forwards_total", "prefix_rebinds_total",
			"prefix_dead_targets_total", "kernel_send_failures_total"),
		RequestsPerTick: metrics.CounterSeries(r.Sampler.Samples(), "client_ops_total"),
		FailuresPerTick: metrics.CounterSeries(r.Sampler.Samples(), "client_op_failures_total"),
		Health:          health,
	}
	return leg, float64(ok) / ops, nil
}

// a14Collect runs every leg once, producing both the JSON document and
// the experiment rows from the same data.
func a14Collect() (*MetricsDoc, []Row, error) {
	doc := &MetricsDoc{
		Tool:        "vbench -metrics",
		Description: "virtual-time metrics: latency distributions, team scaling, health under faults",
	}
	var rows []Row

	uleg, up, err := a14Uncontended()
	if err != nil {
		return nil, nil, err
	}
	doc.Legs = append(doc.Legs, uleg)
	rows = append(rows,
		Row{Label: "remote transaction, median", Paper: "2.56 ms", Measured: usms(up.P50US),
			Note: "send_latency{echo,Echo} over 100 transactions"},
		Row{Label: "remote transaction, p99 / max", Paper: "-",
			Measured: usms(up.P99US) + " / " + usms(up.MaxUS),
			Note:     "uncontended: the distribution is degenerate"},
	)

	for _, team := range a14TeamSizes {
		leg, p, err := a14Team(team)
		if err != nil {
			return nil, nil, err
		}
		doc.Legs = append(doc.Legs, leg)
		rows = append(rows, Row{
			Label:    fmt.Sprintf("team=%d query latency, p50 / p99", team),
			Paper:    a11PaperHot(team),
			Measured: usms(p.P50US) + " / " + usms(p.P99US),
			Note:     fmt.Sprintf("send_latency{fs1,QueryObject}, %d requests, 8 clients", p.Count),
		})
	}

	cleg, frac, err := a14Chaos()
	if err != nil {
		return nil, nil, err
	}
	doc.Legs = append(doc.Legs, cleg)
	var fs1 *metrics.ServerHealth
	for i := range cleg.Health.Servers {
		if cleg.Health.Servers[i].Host == "fs1" {
			fs1 = &cleg.Health.Servers[i]
		}
	}
	if fs1 == nil {
		return nil, nil, fmt.Errorf("a14: health report has no fs1 entry")
	}
	rows = append(rows,
		Row{Label: "fs1 availability under chaos", Paper: "-",
			Measured: fmt.Sprintf("%.3f", fs1.Availability),
			Note: fmt.Sprintf("%d outages, %d degraded windows, SLO %.0f%%",
				len(fs1.Outages), len(cleg.Health.Degraded), cleg.Health.SLO*100)},
		Row{Label: "operation success under chaos", Paper: "-",
			Measured: fmt.Sprintf("%.2f", frac),
			Note:     "dynamic binding + retry cache-free failover to FS2"},
	)
	return doc, rows, nil
}

// A14 reports the distribution view of the paper's latency tables.
func A14() (Result, error) {
	_, rows, err := a14Collect()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "a14",
		Title:  "metrics: latency distributions, team scaling, health under faults",
		Source: "§3.1 latencies as distributions; §4.2 faults as an SLO report",
		Rows:   rows,
	}, nil
}

// MetricsJSON renders the BENCH_metrics.json document: the A14 legs'
// deterministic registry state, byte-identical across runs.
func MetricsJSON() ([]byte, error) {
	doc, _, err := a14Collect()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
