package experiments

import "testing"

// TestWallClockHarness runs the A13 harness end to end and checks its
// structural invariants. The absolute numbers are machine-dependent and
// deliberately unasserted; what must hold anywhere is the shape — and
// that every driver mode reports the identical virtual makespan.
func TestWallClockHarness(t *testing.T) {
	doc, err := WallClock()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.HotPath) != 2 {
		t.Fatalf("hot path rows: got %d, want 2", len(doc.HotPath))
	}
	for _, hp := range doc.HotPath {
		if hp.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %d, want > 0", hp.Name, hp.NsPerOp)
		}
	}
	if len(doc.Driver) != 5 {
		t.Fatalf("driver rows: got %d, want 5", len(doc.Driver))
	}
	want := wallClockShards.Shards * wallClockShards.ClientsPerShard * wallClockShards.Requests
	for _, d := range doc.Driver {
		if d.Requests != want {
			t.Errorf("driver %s/%d: %d requests, want %d", d.Mode, d.Workers, d.Requests, want)
		}
		if d.VirtualMakespan != doc.Driver[0].VirtualMakespan {
			t.Errorf("driver %s/%d: virtual makespan %s differs from sequential's %s",
				d.Mode, d.Workers, d.VirtualMakespan, doc.Driver[0].VirtualMakespan)
		}
	}
	if doc.Baseline.E1AllocsPerOp != 11 {
		t.Errorf("recorded baseline allocs/op: got %d, want 11", doc.Baseline.E1AllocsPerOp)
	}
}
