package experiments

import "testing"

// TestWallClockHarness runs the A13 harness end to end and checks its
// structural invariants. The absolute numbers are machine-dependent and
// deliberately unasserted; what must hold anywhere is the shape — and
// that every driver engine reports the identical virtual makespan on
// its topology.
func TestWallClockHarness(t *testing.T) {
	doc, err := WallClock("all")
	if err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != 2 {
		t.Fatalf("schema version = %d, want 2", doc.SchemaVersion)
	}
	if len(doc.HotPath) != 2 {
		t.Fatalf("hot path rows: got %d, want 2", len(doc.HotPath))
	}
	for _, hp := range doc.HotPath {
		if hp.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %d, want > 0", hp.Name, hp.NsPerOp)
		}
	}
	// disjoint: sequential + 4 lanes + 4 sharded; shared-prefix:
	// sequential + 4 sharded (the lanes driver cannot run it).
	if len(doc.Driver) != 14 {
		t.Fatalf("driver rows: got %d, want 14", len(doc.Driver))
	}
	want := wallClockShards.Shards * wallClockShards.ClientsPerShard * wallClockShards.Requests
	makespans := map[string]string{}
	for _, d := range doc.Driver {
		if d.Requests != want {
			t.Errorf("driver %s/%s/%d: %d requests, want %d", d.Topology, d.Engine, d.Workers, d.Requests, want)
		}
		if d.Engine == "sequential" {
			makespans[d.Topology] = d.VirtualMakespan
		}
	}
	if makespans["disjoint-shards"] == makespans["shared-prefix"] {
		t.Errorf("both topologies report makespan %s; the shared wire should cost something", makespans["disjoint-shards"])
	}
	lanesRows, sharedTopoSharded := 0, 0
	for _, d := range doc.Driver {
		if d.VirtualMakespan != makespans[d.Topology] {
			t.Errorf("driver %s/%s/%d: virtual makespan %s differs from its topology's sequential %s",
				d.Topology, d.Engine, d.Workers, d.VirtualMakespan, makespans[d.Topology])
		}
		if d.Engine == "lanes" {
			lanesRows++
			if d.Topology != "disjoint-shards" {
				t.Errorf("lanes driver ran on %s; its disjointness precondition forbids that", d.Topology)
			}
		}
		if d.Engine == "sharded" {
			if len(d.EventsPerEngine) != d.Shards {
				t.Errorf("driver %s/sharded/%d: %d per-engine counts, want %d", d.Topology, d.Workers, len(d.EventsPerEngine), d.Shards)
			}
			sum := 0
			for _, n := range d.EventsPerEngine {
				sum += n
			}
			if sum != d.Requests {
				t.Errorf("driver %s/sharded/%d: per-engine events sum %d, want %d", d.Topology, d.Workers, sum, d.Requests)
			}
			if d.Topology == "shared-prefix" {
				sharedTopoSharded++
			}
		}
	}
	if lanesRows != 4 {
		t.Errorf("lanes rows: got %d, want 4", lanesRows)
	}
	if sharedTopoSharded != 4 {
		t.Errorf("shared-prefix sharded rows: got %d, want 4", sharedTopoSharded)
	}
	if doc.Baseline.E1AllocsPerOp != 11 {
		t.Errorf("recorded baseline allocs/op: got %d, want 11", doc.Baseline.E1AllocsPerOp)
	}
}

// TestWallClockEngineSelector checks the -engine filter keeps only the
// selected engine's rows plus the sequential reference.
func TestWallClockEngineSelector(t *testing.T) {
	doc, err := WallClock("lanes")
	if err != nil {
		t.Fatal(err)
	}
	// sequential on both topologies + 4 lanes rows on the disjoint one.
	if len(doc.Driver) != 6 {
		t.Fatalf("driver rows: got %d, want 6", len(doc.Driver))
	}
	for _, d := range doc.Driver {
		if d.Engine != "lanes" && d.Engine != "sequential" {
			t.Errorf("unexpected engine row %s under -engine lanes", d.Engine)
		}
	}
	if _, err := WallClock("warp"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
