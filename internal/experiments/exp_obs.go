package experiments

// A19 measures the population-scale observability layer (PROTOCOL.md
// §15) and the lease auto-tuner it enables. Four legs:
//
//   - a hot-name analytics leg: the space-saving top-k sketch is run
//     against exact counts on a Zipf draw stream — every name the
//     sketch guarantees (true count > draws/k) must be recalled, and
//     every estimate must sit inside [true, true+err];
//
//   - a churn-estimator leg: the event-driven EWMA is fed a fixed
//     cadence and must converge to the analytic rate exactly;
//
//   - a sampled-tracing leg: the A12 echo decomposition re-read from a
//     sampled tracer must agree with the full tracer span for span,
//     and the open-loop Zipf workload run under head sampling must
//     retain O(k) spans while the flight recorder journals the run's
//     naming events at zero virtual cost;
//
//   - an auto-tune leg: the A17 partition schedule, preceded by two
//     redefinitions that train the tuner, run under each fixed lease
//     of the A17 sweep and under the auto-tuner — the tuned run must
//     beat at least one fixed point on the (hit rate, widest stale
//     window) frontier, with every stale window bounded by the cap
//     (trace invariant #7 with max in place of the fixed length).
//
// Everything here is virtual time: BENCH_obs.json is byte-identical
// across runs and pinned by golden-guard.

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/namestat"
	"repro/internal/netsim"
	"repro/internal/popgen"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// a19 shapes.
const (
	// Top-k sketch leg.
	a19TopKPop     = 5_000
	a19TopKDraws   = 50_000
	a19TopKK       = 48
	a19TopKSkew    = 0.99
	a19TopKPopSeed = 1
	a19TopKStream  = 7
	// EWMA convergence leg.
	a19RateCadence = 10 * time.Millisecond
	a19RateEvents  = 64
	// Sampled Zipf leg.
	a19SamplePop       = 10_000
	a19SampleHeadEvery = 32
	// Auto-tune leg: the A17 chaos shape with the tuner's cap at the
	// top of the A17 sweep.
	a19TuneRequests = 150
	a19TuneCap      = 320 * time.Millisecond
)

// a19TuneFloors are the tuned points: each floor is one of the A17
// sweep's fixed leases, so every tuned run has a like-for-like fixed
// baseline on the frontier.
var a19TuneFloors = []time.Duration{20 * time.Millisecond, 80 * time.Millisecond}

// ObsTopK is the sketch-vs-exact leg of BENCH_obs.json.
type ObsTopK struct {
	Population int     `json:"population"`
	Draws      int     `json:"draws"`
	K          int     `json:"k"`
	Skew       float64 `json:"skew"`

	// Guaranteed is how many names the space-saving guarantee covers
	// (true count > draws/k); Recalled of them appeared in the sketch.
	Guaranteed int `json:"guaranteed"`
	Recalled   int `json:"recalled"`
	// WithinBound asserts every sketch estimate sat in [true, true+err].
	WithinBound bool `json:"within_bound"`
	// MaxOverestimate is the widest estimate-minus-true gap observed.
	MaxOverestimate int64 `json:"max_overestimate"`

	HottestName string `json:"hottest_name"`
	HottestEst  int64  `json:"hottest_est"`
	HottestTrue int64  `json:"hottest_true"`
}

// ObsRates is the EWMA convergence leg.
type ObsRates struct {
	CadenceUS   int64 `json:"cadence_us"`
	Events      int   `json:"events"`
	WantMilliHz int64 `json:"want_mhz"`
	GotMilliHz  int64 `json:"got_mhz"`
	Exact       bool  `json:"exact"`
}

// ObsDecomp is one A12-style echo decomposition read off a trace.
type ObsDecomp struct {
	TotalUS      int64 `json:"total_us"`
	RequestHopUS int64 `json:"request_hop_us"`
	DwellUS      int64 `json:"dwell_us"`
	ReplyHopUS   int64 `json:"reply_hop_us"`
}

// ObsSampling is the sampled-tracing leg.
type ObsSampling struct {
	// The echo decomposition under the full and the sampled tracer
	// (head 1/1: everything retained) must agree exactly.
	Full    ObsDecomp `json:"full"`
	Sampled ObsDecomp `json:"sampled"`
	Agrees  bool      `json:"agrees"`

	// The open-loop Zipf workload under head sampling.
	Population    int   `json:"population"`
	HeadEvery     int   `json:"head_every"`
	TotalOps      int   `json:"total_ops"`
	RootsSeen     int64 `json:"roots_seen"`
	RootsRetained int64 `json:"roots_retained"`
	RetainedSpans int   `json:"retained_spans"`
	TraceClean    bool  `json:"trace_clean"`
	// HottestInTopK asserts the population's true hottest name shows up
	// in the prefix server's hot-name sketch.
	HottestInTopK bool `json:"hottest_in_topk"`

	// Flight-recorder journal counts for the same run.
	FlightEvents      int64 `json:"flight_events"`
	FlightResolutions int64 `json:"flight_resolutions"`
	FlightRedefines   int64 `json:"flight_redefines"`
	FlightDropped     int64 `json:"flight_dropped"`
}

// ObsTuneRun is one policy point of the auto-tune leg.
type ObsTuneRun struct {
	Policy  string `json:"policy"` // "fixed" or "tuned"
	LeaseUS int64  `json:"lease_us"`
	CapUS   int64  `json:"cap_us,omitempty"`

	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Hits          int     `json:"hits"`
	Misses        int     `json:"misses"`
	Renewals      int     `json:"renewals"`
	Invalidations int     `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`

	StaleWindows  int   `json:"stale_windows"`
	WidestStaleUS int64 `json:"widest_stale_us"`
	BoundUS       int64 `json:"bound_us"`
	BoundHeld     bool  `json:"bound_held"`
	TraceClean    bool  `json:"trace_clean"`

	// Tuned lease lengths at the end of the run: the churned shard0
	// name must sit at the floor, the quiet shard1 name at the cap.
	TunedShard0US int64 `json:"tuned_shard0_us,omitempty"`
	TunedShard1US int64 `json:"tuned_shard1_us,omitempty"`

	FlightRedefines int64 `json:"flight_redefines"`
}

// ObsDoc is the BENCH_obs.json schema.
type ObsDoc struct {
	Tool        string `json:"tool"`
	Description string `json:"description"`

	TopK     ObsTopK      `json:"topk"`
	Rates    ObsRates     `json:"rates"`
	Sampling ObsSampling  `json:"sampling"`
	AutoTune []ObsTuneRun `json:"auto_tune"`
	// FrontierBeats counts the fixed points the tuned run dominates on
	// the (hit rate, widest stale window) frontier.
	FrontierBeats int `json:"frontier_beats"`
}

// a19TopK runs the sketch against exact counts on a deterministic Zipf
// draw stream.
func a19TopK() (ObsTopK, error) {
	leg := ObsTopK{
		Population: a19TopKPop,
		Draws:      a19TopKDraws,
		K:          a19TopKK,
		Skew:       a19TopKSkew,
	}
	pop := popgen.NewPopulation(a19TopKPop, a19TopKSkew, a19TopKPopSeed)
	s := pop.Sampler(a19TopKStream)
	sk := namestat.NewTopK(a19TopKK)
	exact := make(map[string]uint64, a19TopKPop)
	for i := 0; i < a19TopKDraws; i++ {
		name := pop.Names[s.NextRank()]
		sk.Observe(name)
		exact[name]++
	}

	items := sk.Snapshot()
	est := make(map[string]namestat.Item, len(items))
	for _, it := range items {
		est[it.Name] = it
	}

	threshold := uint64(a19TopKDraws / a19TopKK)
	leg.WithinBound = true
	for name, count := range exact {
		if count > threshold {
			leg.Guaranteed++
			if _, ok := est[name]; ok {
				leg.Recalled++
			}
		}
	}
	for _, it := range items {
		truth := exact[it.Name]
		if it.Count < truth || it.Count-it.Err > truth {
			leg.WithinBound = false
		}
		if over := int64(it.Count) - int64(truth); over > leg.MaxOverestimate {
			leg.MaxOverestimate = over
		}
	}
	hottest := pop.Names[0]
	leg.HottestName = hottest
	leg.HottestTrue = int64(exact[hottest])
	if it, ok := est[hottest]; ok {
		leg.HottestEst = int64(it.Count)
	}
	if leg.Recalled != leg.Guaranteed {
		return leg, fmt.Errorf("a19 topk: recalled %d of %d guaranteed names", leg.Recalled, leg.Guaranteed)
	}
	if !leg.WithinBound {
		return leg, fmt.Errorf("a19 topk: an estimate escaped [true, true+err]")
	}
	return leg, nil
}

// a19Rates feeds the estimator a fixed cadence and reads the rate back.
func a19Rates() (ObsRates, error) {
	leg := ObsRates{
		CadenceUS:   a19RateCadence.Microseconds(),
		Events:      a19RateEvents,
		WantMilliHz: int64(1000 / a19RateCadence.Seconds()),
	}
	r := namestat.NewRates(0)
	at := time.Duration(0)
	for i := 0; i < a19RateEvents; i++ {
		at += a19RateCadence
		r.ObserveResolution("[hot]", at)
	}
	for _, it := range r.Snapshot() {
		if it.Name == "[hot]" {
			leg.GotMilliHz = it.ResRateMilliHz
		}
	}
	leg.Exact = leg.GotMilliHz == leg.WantMilliHz
	if !leg.Exact {
		return leg, fmt.Errorf("a19 rates: EWMA converged to %d mHz, want %d", leg.GotMilliHz, leg.WantMilliHz)
	}
	return leg, nil
}

// a19Echo runs the A12 echo transaction under the given tracer mode and
// reads the decomposition off the span tree.
func a19Echo(sampled bool) (ObsDecomp, error) {
	var d ObsDecomp
	model := vtime.DefaultModel()
	net := netsim.New(model, 1)
	k := kernel.New(net)
	var tr *trace.Tracer
	if sampled {
		// Head 1/1: sampled-mode accounting with everything retained, so
		// the decomposition must match the full tracer's exactly.
		tr = trace.NewSampled(trace.SampleConfig{HeadEvery: 1})
	} else {
		tr = trace.New()
	}
	k.SetTracer(tr)
	net.SetRecorder(tr)

	fsHost := k.NewHost("fileserver")
	wsHost := k.NewHost("ws-mann")
	echo, err := fsHost.Spawn("echo", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		return d, err
	}
	clientProc, err := wsHost.NewProcess("a19-client")
	if err != nil {
		return d, err
	}
	if _, err := clientProc.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
		return d, err
	}

	spans := tr.Snapshot()
	find := func(what string, pred func(s trace.Span) bool) (trace.Span, error) {
		for _, s := range spans {
			if pred(s) {
				return s, nil
			}
		}
		return trace.Span{}, fmt.Errorf("a19: no %s span in trace (sampled=%v)", what, sampled)
	}
	send, err := find("send", func(s trace.Span) bool { return s.Kind == trace.KindSend })
	if err != nil {
		return d, err
	}
	reqWire, err := find("request wire", func(s trace.Span) bool {
		return s.Kind == trace.KindWire && s.Name == "request" && s.Parent == send.ID
	})
	if err != nil {
		return d, err
	}
	rep, err := find("reply", func(s trace.Span) bool {
		return s.Kind == trace.KindReply && s.Parent == send.ID
	})
	if err != nil {
		return d, err
	}
	repWire, err := find("reply wire", func(s trace.Span) bool {
		return s.Kind == trace.KindWire && s.Name == "reply" && s.Parent == rep.ID
	})
	if err != nil {
		return d, err
	}
	d.TotalUS = (send.End - send.Start) / 1e3
	d.RequestHopUS = (reqWire.End - reqWire.Start) / 1e3
	d.ReplyHopUS = (repWire.End - repWire.Start) / 1e3
	d.DwellUS = (repWire.Start - reqWire.End) / 1e3
	return d, nil
}

// a19Sampling runs both halves of the sampled-tracing leg.
func a19Sampling() (ObsSampling, error) {
	leg := ObsSampling{Population: a19SamplePop, HeadEvery: a19SampleHeadEvery}

	full, err := a19Echo(false)
	if err != nil {
		return leg, err
	}
	sampled, err := a19Echo(true)
	if err != nil {
		return leg, err
	}
	leg.Full, leg.Sampled = full, sampled
	leg.Agrees = full == sampled
	if !leg.Agrees {
		return leg, fmt.Errorf("a19 sampling: sampled decomposition %+v differs from full %+v", sampled, full)
	}

	// The open-loop Zipf workload, head-sampled, with the hottest name
	// redefined at a quiescent cut (the a18 traced-leg shape) and the
	// flight ring sealed at every fence.
	pop := popgen.NewPopulation(a19SamplePop, a18Skew, a18PopSeed)
	cfg := a18Config(pop, a18Skew, false)
	cfg.TraceSample = &trace.SampleConfig{HeadEvery: a19SampleHeadEvery}
	zw, err := rig.NewZipfWorkload(cfg)
	if err != nil {
		return leg, err
	}
	hot := pop.Names[0]
	redefine := func() error {
		proc, err := zw.PrefixHost.NewProcess("admin")
		if err != nil {
			return err
		}
		adm := client.New(proc, zw.Prefix.PID(), zw.Shards[0].RootPair(), "admin")
		if err := adm.DeleteName(hot); err != nil {
			return err
		}
		return adm.AddName(hot, zw.Shards[0].RootPair())
	}
	eng := chaos.New(zw.Kernel, []chaos.Event{
		{At: 100 * time.Millisecond, Action: chaos.Custom, Note: "redefine hottest name", Do: redefine},
	})
	fences := rig.SealFlightAtFences(rig.ChaosFences(eng), zw.Flight)
	res := rig.RunWorkloadEngine(zw.Clients, rig.EngineOptions{Fences: fences})

	leg.TotalOps = res.Requests
	leg.RootsSeen = int64(zw.Tracer.RootsSeen())
	leg.RootsRetained = int64(zw.Tracer.RootsRetained())
	spans := zw.Tracer.Snapshot()
	leg.RetainedSpans = len(spans)
	leg.TraceClean = trace.Check(spans, trace.CheckOptions{}) == nil
	for _, it := range zw.Prefix.TopNames() {
		if it.Name == hot {
			leg.HottestInTopK = true
		}
	}

	journal := zw.Flight.Journal()
	counts := flight.Counts(journal)
	leg.FlightEvents = int64(len(journal))
	leg.FlightResolutions = int64(counts[flight.KindResolution])
	leg.FlightRedefines = int64(counts[flight.KindRedefine])
	leg.FlightDropped = int64(zw.Flight.Dropped())

	if !leg.TraceClean {
		return leg, fmt.Errorf("a19 sampling: sampled trace violates the span invariants")
	}
	if leg.RootsRetained == 0 || leg.RetainedSpans == 0 {
		return leg, fmt.Errorf("a19 sampling: head sampling retained nothing")
	}
	if leg.RootsRetained*8 > leg.RootsSeen {
		return leg, fmt.Errorf("a19 sampling: retained %d of %d roots — not O(k)", leg.RootsRetained, leg.RootsSeen)
	}
	if !leg.HottestInTopK {
		return leg, fmt.Errorf("a19 sampling: hottest name missing from the prefix server's sketch")
	}
	if leg.FlightRedefines == 0 {
		return leg, fmt.Errorf("a19 sampling: redefinition missing from the flight journal")
	}
	return leg, nil
}

// a19Redefine is a17Redefine with the admin's clock advanced to the
// scheduled event time first. A fresh process starts at virtual zero
// and a partitioned server's clock stalls, so without the advance the
// redefinition would commit at the server's stalled clock (the A17
// behaviour) instead of at the schedule's — and the commit instant is
// exactly what the staleness frontier below is measured against.
func a19Redefine(sw *rig.SharedPrefixWorkload, at time.Duration) func() error {
	return func() error {
		proc, err := sw.PrefixHost.NewProcess("admin")
		if err != nil {
			return err
		}
		if wait := at - proc.Now(); wait > 0 {
			proc.ChargeCompute(wait)
		}
		adm := client.New(proc, sw.Prefix.PID(), sw.Shards[0].RootPair(), "admin")
		if err := adm.DeleteName("shard0"); err != nil {
			return err
		}
		return adm.AddName("shard0", sw.Shards[0].RootPair())
	}
}

// a19TuneSchedule is the A17 partition schedule preceded by two
// redefinitions of [shard0] that train the tuner: shard0's estimator
// goes hot (lease pinned to the floor) while the quiet shards grow
// toward the cap, before the partition makes the staleness trade bite.
func a19TuneSchedule(sw *rig.SharedPrefixWorkload) []chaos.Event {
	return []chaos.Event{
		{At: 60 * time.Millisecond, Action: chaos.Custom, Note: "redefine shard0 (train tuner)", Do: a19Redefine(sw, 60*time.Millisecond)},
		{At: 120 * time.Millisecond, Action: chaos.Custom, Note: "redefine shard0 again", Do: a19Redefine(sw, 120*time.Millisecond)},
		{At: 250 * time.Millisecond, Action: chaos.Partition, Host: "nexus", Group: 1, Note: "prefix host cut off"},
		{At: 300 * time.Millisecond, Action: chaos.Custom, Note: "redefine shard0 behind the partition", Do: a19Redefine(sw, 300*time.Millisecond)},
		{At: 450 * time.Millisecond, Action: chaos.Heal},
	}
}

// a19Tune runs one policy point: a fixed lease (cap 0) or the
// auto-tuner over [lease, cap].
func a19Tune(policy string, lease, cap time.Duration) (ObsTuneRun, error) {
	run := ObsTuneRun{
		Policy:   policy,
		LeaseUS:  lease.Microseconds(),
		Requests: a19TuneRequests,
	}
	if cap > 0 {
		run.CapUS = cap.Microseconds()
	}
	sw, err := rig.NewSharedPrefixWorkload(rig.SharedPrefixConfig{
		Shards:          a17Shards,
		ClientsPerShard: a17ClientsPerShard,
		Requests:        a19TuneRequests,
		Seed:            a17Seed,
		Lease:           lease,
		AutoTuneMax:     cap,
		Trace:           true,
	})
	if err != nil {
		return run, err
	}
	eng := chaos.New(sw.Kernel, a19TuneSchedule(sw))
	fences := rig.SealFlightAtFences(rig.ChaosFences(eng), sw.Flight)
	res := rig.RunWorkloadEngine(sw.Clients, rig.EngineOptions{Fences: fences})

	for _, c := range res.Clients {
		run.Errors += c.Errors
	}
	for _, c := range sw.Clients {
		st := c.Session.LeaseCacheStats()
		run.Hits += st.Hits
		run.Misses += st.Misses
		run.Renewals += st.Renewals
		run.Invalidations += st.Invalidations
	}
	if lookups := run.Hits + run.Misses + run.Renewals; lookups > 0 {
		run.HitRate = float64(run.Hits) / float64(lookups)
	}

	// Trace invariant #7: the staleness bound is the widest lease the
	// server can have granted — the cap when tuning, else the fixed
	// length.
	bound := lease
	if cap > 0 {
		bound = cap
	}
	run.BoundUS = bound.Microseconds()
	spans := sw.Tracer.Snapshot()
	run.TraceClean = trace.Check(spans, trace.CheckOptions{LeaseBound: bound}) == nil
	run.BoundHeld = true
	for _, w := range trace.StaleWindows(spans) {
		run.StaleWindows++
		if us := w.Window / 1e3; us > run.WidestStaleUS {
			run.WidestStaleUS = us
		}
		if time.Duration(w.Window) > bound {
			run.BoundHeld = false
		}
	}
	if cap > 0 {
		run.TunedShard0US = sw.Prefix.TunedLease("shard0").Microseconds()
		run.TunedShard1US = sw.Prefix.TunedLease("shard1").Microseconds()
	}
	run.FlightRedefines = int64(flight.Counts(sw.Flight.Journal())[flight.KindRedefine])

	if !run.TraceClean {
		return run, fmt.Errorf("a19 tune %s lease=%v: trace violates the staleness invariant", policy, lease)
	}
	if !run.BoundHeld {
		return run, fmt.Errorf("a19 tune %s lease=%v: a stale window exceeded the bound", policy, lease)
	}
	// Each chaos redefinition is a delete + a re-add, two invalidation
	// commits — so the three scheduled events journal six.
	if run.FlightRedefines != 6 {
		return run, fmt.Errorf("a19 tune %s lease=%v: journal has %d redefinitions, want 6", policy, lease, run.FlightRedefines)
	}
	return run, nil
}

// a19Collect runs every leg once, producing both the JSON document and
// the experiment rows from the same data.
func a19Collect() (*ObsDoc, []Row, error) {
	doc := &ObsDoc{
		Tool:        "vbench -obs",
		Description: "population-scale observability: top-k sketch vs exact counts, EWMA convergence, sampled tracing with the flight recorder, and the per-name lease auto-tuner against the fixed-lease sweep",
	}
	var rows []Row

	topk, err := a19TopK()
	if err != nil {
		return nil, nil, err
	}
	doc.TopK = topk
	rows = append(rows, Row{
		Label:    fmt.Sprintf("top-%d sketch on %d Zipf draws", topk.K, topk.Draws),
		Paper:    "-",
		Measured: fmt.Sprintf("%d/%d guaranteed names recalled", topk.Recalled, topk.Guaranteed),
		Note: fmt.Sprintf("all estimates in [true, true+err]; hottest %q est %d true %d",
			topk.HottestName, topk.HottestEst, topk.HottestTrue),
	})

	rates, err := a19Rates()
	if err != nil {
		return nil, nil, err
	}
	doc.Rates = rates
	rows = append(rows, Row{
		Label:    fmt.Sprintf("churn EWMA at %s cadence", ms(a19RateCadence)),
		Paper:    "-",
		Measured: fmt.Sprintf("%d mHz", rates.GotMilliHz),
		Note:     fmt.Sprintf("analytic %d mHz, converged exactly after %d events", rates.WantMilliHz, rates.Events),
	})

	sampling, err := a19Sampling()
	if err != nil {
		return nil, nil, err
	}
	doc.Sampling = sampling
	rows = append(rows, Row{
		Label:    "sampled vs full echo decomposition",
		Paper:    "-",
		Measured: "identical",
		Note: fmt.Sprintf("total %s = request %s + dwell %s + reply %s",
			ms(time.Duration(sampling.Full.TotalUS)*time.Microsecond),
			ms(time.Duration(sampling.Full.RequestHopUS)*time.Microsecond),
			ms(time.Duration(sampling.Full.DwellUS)*time.Microsecond),
			ms(time.Duration(sampling.Full.ReplyHopUS)*time.Microsecond)),
	})
	rows = append(rows, Row{
		Label:    fmt.Sprintf("head-1/%d sampling, %d-name Zipf run", sampling.HeadEvery, sampling.Population),
		Paper:    "-",
		Measured: fmt.Sprintf("%d of %d roots retained", sampling.RootsRetained, sampling.RootsSeen),
		Note: fmt.Sprintf("%d spans held; flight journal %d events (%d resolutions, %d redefines), %d dropped",
			sampling.RetainedSpans, sampling.FlightEvents, sampling.FlightResolutions,
			sampling.FlightRedefines, sampling.FlightDropped),
	})

	var fixed, tuned []ObsTuneRun
	for _, lease := range a17LeaseSweep {
		run, err := a19Tune("fixed", lease, 0)
		if err != nil {
			return nil, nil, err
		}
		fixed = append(fixed, run)
		doc.AutoTune = append(doc.AutoTune, run)
		rows = append(rows, Row{
			Label:    fmt.Sprintf("fixed lease %s under churn+partition", ms(lease)),
			Paper:    "-",
			Measured: fmt.Sprintf("%.1f%% hits", 100*run.HitRate),
			Note: fmt.Sprintf("%d stale windows (widest %s ≤ bound %s); %d renewals",
				run.StaleWindows, ms(time.Duration(run.WidestStaleUS)*time.Microsecond),
				ms(time.Duration(run.BoundUS)*time.Microsecond), run.Renewals),
		})
	}
	for _, floor := range a19TuneFloors {
		run, err := a19Tune("tuned", floor, a19TuneCap)
		if err != nil {
			return nil, nil, err
		}
		tuned = append(tuned, run)
		doc.AutoTune = append(doc.AutoTune, run)
		rows = append(rows, Row{
			Label:    fmt.Sprintf("auto-tuned [%s, %s]", ms(floor), ms(a19TuneCap)),
			Paper:    "-",
			Measured: fmt.Sprintf("%.1f%% hits", 100*run.HitRate),
			Note: fmt.Sprintf("%d stale windows (widest %s); churned shard0 at %s, quiet shard1 at %s",
				run.StaleWindows, ms(time.Duration(run.WidestStaleUS)*time.Microsecond),
				ms(time.Duration(run.TunedShard0US)*time.Microsecond),
				ms(time.Duration(run.TunedShard1US)*time.Microsecond)),
		})
	}

	for _, t := range tuned {
		for _, f := range fixed {
			noWorse := t.HitRate >= f.HitRate && t.WidestStaleUS <= f.WidestStaleUS
			strictly := t.HitRate > f.HitRate || t.WidestStaleUS < f.WidestStaleUS
			if noWorse && strictly {
				doc.FrontierBeats++
			}
		}
	}
	if doc.FrontierBeats == 0 {
		return nil, nil, fmt.Errorf("a19: no tuned run dominates a fixed lease on the (hit rate, staleness) frontier")
	}
	rows = append(rows, Row{
		Label:    "frontier: tuned vs fixed sweep",
		Paper:    "-",
		Measured: fmt.Sprintf("%d dominated (tuned, fixed) pairs", doc.FrontierBeats),
		Note:     "no worse on both axes, strictly better on one; every window ≤ invariant-#7 bound",
	})
	return doc, rows, nil
}

// A19 reports the observability legs: sketch fidelity, estimator
// convergence, sampled-trace agreement, and the auto-tuner beating the
// fixed-lease trade — each asserted, not eyeballed.
func A19() (Result, error) {
	_, rows, err := a19Collect()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "a19",
		Title:  "population-scale observability and the lease auto-tuner",
		Source: "PROTOCOL.md §15; §13 staleness bound with the cap in place of the fixed length",
		Rows:   rows,
	}, nil
}

// ObsJSON renders the BENCH_obs.json document, byte-identical across
// runs.
func ObsJSON() ([]byte, error) {
	doc, _, err := a19Collect()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// a19SectionGuard asserts at test time that the A19 registry entry is
// followed only by later experiments.
func a19SectionGuard() bool {
	return sectionGuard("a19")
}

// PopTrace summarizes a sampled population-scale trace export
// (`vbench -zipf Z.json -trace T.json`).
type PopTrace struct {
	Population    int   `json:"population"`
	HeadEvery     int   `json:"head_every"`
	TotalOps      int   `json:"total_ops"`
	RootsSeen     int64 `json:"roots_seen"`
	RootsRetained int64 `json:"roots_retained"`
	RetainedSpans int   `json:"retained_spans"`
}

// PopulationTrace runs the open-loop Zipf workload at the given
// population under head-1/32 sampling and returns the retained trace as
// JSON — the acceptance run the full tracer structurally cannot do: at
// 10⁶ names its span store is O(ops), while the sampled store is O(k)
// in the sampling budget. The retained subtrees still pass the span
// invariant checker.
func PopulationTrace(population int) ([]byte, PopTrace, error) {
	pt := PopTrace{Population: population, HeadEvery: a19SampleHeadEvery}
	pop := popgen.NewPopulation(population, a18Skew, a18PopSeed)
	cfg := a18Config(pop, a18Skew, false)
	cfg.TraceSample = &trace.SampleConfig{HeadEvery: a19SampleHeadEvery}
	zw, err := rig.NewZipfWorkload(cfg)
	if err != nil {
		return nil, pt, err
	}
	fences := rig.SealFlightAtFences(rig.ChaosFences(nil), zw.Flight)
	res := rig.RunWorkloadEngine(zw.Clients, rig.EngineOptions{Fences: fences})

	pt.TotalOps = res.Requests
	pt.RootsSeen = int64(zw.Tracer.RootsSeen())
	pt.RootsRetained = int64(zw.Tracer.RootsRetained())
	spans := zw.Tracer.Snapshot()
	pt.RetainedSpans = len(spans)
	if err := trace.Check(spans, trace.CheckOptions{}); err != nil {
		return nil, pt, fmt.Errorf("population trace: invariants: %w", err)
	}
	if pt.RootsRetained*8 > pt.RootsSeen {
		return nil, pt, fmt.Errorf("population trace: retained %d of %d roots — not O(k)", pt.RootsRetained, pt.RootsSeen)
	}
	data, err := zw.Tracer.JSON()
	if err != nil {
		return nil, pt, err
	}
	return data, pt, nil
}
