package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCanonicalTraceGolden pins the canonical single-client trace
// byte-for-byte. The trace is a full account of the resolution path —
// client op, prefix lookup, receptionist, worker, every wire frame — so
// any change to routing, the cost model, or the tracer shows up here.
// Regenerate deliberately with UPDATE_GOLDEN=1.
func TestCanonicalTraceGolden(t *testing.T) {
	got, err := CanonicalTrace()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical trace deviates from %s (%d bytes got, %d want); "+
			"if the change is intentional regenerate with UPDATE_GOLDEN=1",
			golden, len(got), len(want))
	}
}

// TestCanonicalTraceDeterministic proves tracing itself is deterministic:
// two independent boots of the same seed and workload must produce
// byte-identical trace documents — same span ids, same timestamps, same
// frame order.
func TestCanonicalTraceDeterministic(t *testing.T) {
	a, err := CanonicalTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and workload produced different traces")
	}
}

// TestCanonicalTraceValidJSON checks the export parses and has the
// expected document shape: a version, a populated span tree that starts
// at the client op, and wire frames.
func TestCanonicalTraceValidJSON(t *testing.T) {
	data, err := CanonicalTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
		Spans   []struct {
			ID     uint64 `json:"id"`
			Parent uint64 `json:"parent"`
			Kind   string `json:"kind"`
		} `json:"spans"`
		Frames []struct {
			Bytes int `json:"bytes"`
		} `json:"frames"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Version != 1 {
		t.Fatalf("version = %d, want 1", doc.Version)
	}
	if len(doc.Spans) == 0 || len(doc.Frames) == 0 {
		t.Fatalf("trace has %d spans, %d frames; want both non-empty", len(doc.Spans), len(doc.Frames))
	}
	if doc.Spans[0].Kind != "client-op" || doc.Spans[0].Parent != 0 {
		t.Fatalf("first span = %+v, want a root client-op", doc.Spans[0])
	}
	kinds := make(map[string]int)
	for _, s := range doc.Spans {
		kinds[s.Kind]++
	}
	// The resolution path must appear end to end: client op → send →
	// prefix serve + forward → file-server serve → reply, with the wire
	// hops recorded.
	for _, k := range []string{"client-op", "send", "serve", "forward", "reply", "wire"} {
		if kinds[k] == 0 {
			t.Errorf("canonical trace has no %q span (kinds: %v)", k, kinds)
		}
	}
}

// TestA12Decomposition checks A12's rows: the total must match E1's
// paper value and the note-level identity (request + dwell + reply =
// total) is enforced inside A12 itself, so here we check shape and the
// headline number.
func TestA12Decomposition(t *testing.T) {
	res, err := A12()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "a12" || len(res.Rows) != 7 {
		t.Fatalf("unexpected result shape: id=%q rows=%d", res.ID, len(res.Rows))
	}
	total := res.Rows[0]
	if total.Paper != "2.56 ms" {
		t.Fatalf("total row paper value = %q", total.Paper)
	}
	if total.Measured != total.Paper {
		t.Fatalf("measured total %q deviates from the paper's %q", total.Measured, total.Paper)
	}
	for _, row := range res.Rows {
		if !strings.HasSuffix(row.Measured, "ms") {
			t.Errorf("row %q measured %q is not a millisecond rendering", row.Label, row.Measured)
		}
	}
}
