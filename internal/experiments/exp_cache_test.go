package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestA17Shape(t *testing.T) {
	if !a17SectionGuard() {
		t.Fatal("a17 must be the last experiment id: vbench_output.txt's earlier sections must stay byte-identical")
	}
	res := runExp(t, "a17")
	want := 2*len(a17LeaseSweep) + 2 // sweep points + crash leg + partition leg
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows[:2*len(a17LeaseSweep)] {
		if !strings.Contains(r.Note, "≡ sequential") {
			t.Fatalf("sweep row lost its equivalence check: %+v", r)
		}
	}
	crash := res.Rows[len(res.Rows)-2]
	if crash.Measured != "0 stale windows" {
		t.Fatalf("crash leg row: %+v", crash)
	}
	part := res.Rows[len(res.Rows)-1]
	if !strings.Contains(part.Measured, "stale window") || !strings.Contains(part.Note, "≤") {
		t.Fatalf("partition leg row lost its bound: %+v", part)
	}
}

func TestCacheJSONDeterministic(t *testing.T) {
	b1, err := CacheJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := CacheJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("BENCH_cache.json not byte-deterministic across runs")
	}
	var doc CacheDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Sweep) != 2*len(a17LeaseSweep) {
		t.Fatalf("sweep points = %d, want %d", len(doc.Sweep), 2*len(a17LeaseSweep))
	}
	for _, run := range doc.Sweep {
		if !run.EqualToSequential {
			t.Fatalf("lease=%dus tier=%v: not equal to sequential", run.LeaseUS, run.CacheTier)
		}
		if run.Errors != 0 {
			t.Fatalf("lease=%dus tier=%v: %d errors", run.LeaseUS, run.CacheTier, run.Errors)
		}
		if run.ClientHitRate <= 0 || run.ClientHitRate > 1 {
			t.Fatalf("lease=%dus tier=%v: client hit rate %v", run.LeaseUS, run.CacheTier, run.ClientHitRate)
		}
		if run.CacheTier && (run.TierHits == 0 || run.TierHitRate <= 0) {
			t.Fatalf("lease=%dus: tier never hit: %+v", run.LeaseUS, run)
		}
		if !run.CacheTier && run.TierHits != 0 {
			t.Fatalf("lease=%dus: tierless run has tier hits: %+v", run.LeaseUS, run)
		}
		if run.PrefixGrants == 0 {
			t.Fatalf("lease=%dus tier=%v: no upstream grants", run.LeaseUS, run.CacheTier)
		}
	}
	// Longer leases must not lower the client hit rate, and the tier must
	// strictly amortize upstream grants at equal lease length.
	for i := 1; i < len(a17LeaseSweep); i++ {
		if doc.Sweep[i].ClientHitRate < doc.Sweep[i-1].ClientHitRate {
			t.Fatalf("hit rate fell as the lease grew: %+v", doc.Sweep[:i+1])
		}
	}
	for i, lease := range a17LeaseSweep {
		flat, tiered := doc.Sweep[i], doc.Sweep[i+len(a17LeaseSweep)]
		if tiered.PrefixGrants >= flat.PrefixGrants {
			t.Fatalf("lease=%v: tier did not amortize grants (%d vs %d)", lease, tiered.PrefixGrants, flat.PrefixGrants)
		}
	}
	if len(doc.Chaos) != 2 {
		t.Fatalf("chaos legs = %d, want 2", len(doc.Chaos))
	}
	crash, part := doc.Chaos[0], doc.Chaos[1]
	if crash.Kind != "crash" || part.Kind != "partition" {
		t.Fatalf("leg kinds: %q, %q", crash.Kind, part.Kind)
	}
	for _, leg := range doc.Chaos {
		if !leg.TraceClean {
			t.Fatalf("%s leg: trace not clean", leg.Kind)
		}
		if !leg.BoundHeld {
			t.Fatalf("%s leg: staleness bound violated", leg.Kind)
		}
		if len(leg.Schedule) == 0 {
			t.Fatalf("%s leg: no chaos events fired", leg.Kind)
		}
	}
	if crash.StaleWindows != 0 || crash.Errors == 0 || crash.Invalidations == 0 {
		t.Fatalf("crash leg: %+v", crash)
	}
	if part.StaleWindows == 0 || part.WidestStaleUS <= 0 {
		t.Fatalf("partition leg: %+v", part)
	}
}
