package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestObsZeroCost pins this tentpole's central promise, extending the
// TestMetricsZeroCost contract: the flight recorder and the namestat
// sketches are now installed on every rig boot, and they too must charge
// zero virtual time. Each checked experiment's rendered section must
// still appear verbatim in the committed seed vbench_output.txt.
func TestObsZeroCost(t *testing.T) {
	seed, err := os.ReadFile("../../vbench_output.txt")
	if err != nil {
		t.Skipf("no seed output: %v", err)
	}
	for _, id := range []string{"e1", "e3", "t1", "a2"} {
		res := runExp(t, id)
		var buf bytes.Buffer
		Print(&buf, res)
		if !bytes.Contains(seed, buf.Bytes()) {
			t.Errorf("with the flight recorder and sketches installed, experiment %s no longer renders its seed section byte-identically:\n%s", id, buf.String())
		}
	}
}

// TestObsJSONDeterministic pins the BENCH_obs.json golden's contract:
// the document is byte-identical across runs. Runs under -race in make
// check, so it also exercises the recorder's and the sketches'
// concurrent update paths end to end.
func TestObsJSONDeterministic(t *testing.T) {
	first, err := ObsJSON()
	if err != nil {
		t.Fatal(err)
	}
	second, err := ObsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("obs document differs between runs:\nrun1 %d bytes\nrun2 %d bytes", len(first), len(second))
	}
}

// TestA19Shape sanity-checks the document against the acceptance
// criteria: sketch recall at its guarantee, exact EWMA convergence,
// sampled-vs-full decomposition agreement with O(k) retention, a clean
// flight journal, and an auto-tuned point dominating at least one fixed
// lease from the A17 sweep.
func TestA19Shape(t *testing.T) {
	if !a19SectionGuard() {
		t.Fatal("a19 is no longer the last registry section; move its golden pin")
	}
	data, err := ObsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc ObsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}

	if doc.TopK.Recalled != doc.TopK.Guaranteed || doc.TopK.Guaranteed == 0 {
		t.Errorf("topk recall %d/%d guaranteed", doc.TopK.Recalled, doc.TopK.Guaranteed)
	}
	if !doc.TopK.WithinBound {
		t.Error("topk estimates escaped [true, true+err]")
	}
	if !doc.Rates.Exact {
		t.Errorf("EWMA did not converge exactly: got %d mHz want %d mHz", doc.Rates.GotMilliHz, doc.Rates.WantMilliHz)
	}

	s := doc.Sampling
	if !s.Agrees {
		t.Errorf("sampled decomposition disagrees with full: %+v vs %+v", s.Sampled, s.Full)
	}
	if !s.TraceClean {
		t.Error("sampled zipf trace failed invariant check")
	}
	// Per-lane head counters each retain a ceiling share, plus tail
	// anomalies — so not exactly seen/HeadEvery, but far below full.
	if s.RootsRetained == 0 || s.RootsRetained*8 > s.RootsSeen {
		t.Errorf("head sampling retained %d of %d roots at 1/%d", s.RootsRetained, s.RootsSeen, s.HeadEvery)
	}
	if s.FlightDropped != 0 {
		t.Errorf("flight journal dropped %d events", s.FlightDropped)
	}
	if s.FlightResolutions == 0 || s.FlightRedefines == 0 {
		t.Errorf("flight journal missing event classes: %d resolutions, %d redefines", s.FlightResolutions, s.FlightRedefines)
	}
	if !s.HottestInTopK {
		t.Error("population's hottest name absent from the prefix server's sketch")
	}

	if want := len(a17LeaseSweep) + len(a19TuneFloors); len(doc.AutoTune) != want {
		t.Fatalf("auto-tune runs = %d, want %d", len(doc.AutoTune), want)
	}
	for _, run := range doc.AutoTune {
		// Chaos redefinitions and the partition make some requests fail;
		// they must stay a small minority of the workload.
		total := run.Requests * a17Shards * a17ClientsPerShard
		if run.Errors*10 > total {
			t.Errorf("%s lease %dus: %d of %d requests errored", run.Policy, run.LeaseUS, run.Errors, total)
		}
		if !run.BoundHeld {
			t.Errorf("%s lease %dus: widest stale window %dus exceeds bound %dus", run.Policy, run.LeaseUS, run.WidestStaleUS, run.BoundUS)
		}
		if !run.TraceClean {
			t.Errorf("%s lease %dus: trace failed invariant check", run.Policy, run.LeaseUS)
		}
		if run.Policy == "tuned" {
			if run.TunedShard0US != run.LeaseUS {
				t.Errorf("churned shard0 lease settled at %dus, want floor %dus", run.TunedShard0US, run.LeaseUS)
			}
			if run.TunedShard1US != run.CapUS {
				t.Errorf("quiet shard1 lease settled at %dus, want cap %dus", run.TunedShard1US, run.CapUS)
			}
		}
	}
	if doc.FrontierBeats < 1 {
		t.Errorf("frontier beats = %d, want >= 1 (auto-tune must dominate a fixed lease)", doc.FrontierBeats)
	}
}

// TestPopulationTraceSmall runs the `vbench -zipf -trace` sampled
// export end to end at a small population: the retained trace must be
// valid JSON, pass the invariant checker (asserted inside
// PopulationTrace), and hold O(k) roots — the same acceptance contract
// the 10⁶-name run is pinned to, at test-suite scale.
func TestPopulationTraceSmall(t *testing.T) {
	data, pt, err := PopulationTrace(1000)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TotalOps == 0 || pt.RootsSeen == 0 {
		t.Fatalf("empty population run: %+v", pt)
	}
	if pt.RootsRetained == 0 || pt.RootsRetained*8 > pt.RootsSeen {
		t.Errorf("retained %d of %d roots at 1/%d — not O(k)", pt.RootsRetained, pt.RootsSeen, pt.HeadEvery)
	}
	if pt.RetainedSpans == 0 {
		t.Error("no spans retained")
	}
	var doc struct {
		Version int               `json:"version"`
		Spans   []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace export is not a JSON document: %v", err)
	}
	if len(doc.Spans) != pt.RetainedSpans {
		t.Errorf("export holds %d spans, summary says %d", len(doc.Spans), pt.RetainedSpans)
	}
}

// TestA19Render checks the experiment's table carries the headline rows.
func TestA19Render(t *testing.T) {
	res := runExp(t, "a19")
	var buf bytes.Buffer
	Print(&buf, res)
	out := buf.String()
	for _, want := range []string{"guaranteed names recalled", "identical", "flight journal", "auto-tuned", "frontier"} {
		if !strings.Contains(out, want) {
			t.Errorf("a19 output missing %q:\n%s", want, out)
		}
	}
}
