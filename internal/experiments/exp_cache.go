package experiments

// A17 measures the lease-coherent name-cache hierarchy (PROTOCOL.md
// §13): clients hold lease-stamped resolutions, the prefix server
// invalidates holders by callback barrier before a redefinition
// returns, and an optional intermediate cache tier amortizes upstream
// leases into bounded sub-leases. Three legs:
//
//   - a hit-rate sweep over lease length, with and without the tier,
//     each point run through both the sequential driver and the
//     conservative engine and deep-compared (the coherence protocol
//     must not perturb the equivalence guarantee A16 established);
//   - the A14 outage pattern (two crash/restart cycles of the shared
//     prefix host) with leases replacing the periodic blind flush,
//     plus a mid-run redefinition fired at a quiescent cut — the
//     recorded trace must satisfy the lease staleness invariant
//     (trace.Check #7);
//   - a partition leg: the prefix host is cut off and the name is
//     redefined while its lease holders are unreachable, so the
//     callback barrier reaches nobody and the stale windows the trace
//     records must be non-empty yet bounded by the lease length — the
//     degraded-mode guarantee the hierarchy exists for.
//
// Everything here is virtual time: the documents are byte-identical
// across runs and pinned by golden-guard.

import (
	"encoding/json"
	"fmt"
	"reflect"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/rig"
	"repro/internal/trace"
)

// a17 shapes. The sweep reuses the A16 topology; the chaos legs stretch
// the request quota so the run horizon covers the fault schedule (leases
// make the workload far cheaper than the flush-driven shape).
const (
	a17ClientsPerShard = 4
	a17Shards          = 4
	a17Requests        = 40
	a17Seed            = 7
	a17ChaosRequests   = 150
	a17ChaosLease      = 80 * time.Millisecond
)

// a17LeaseSweep is the lease-length sweep.
var a17LeaseSweep = []time.Duration{20 * time.Millisecond, 80 * time.Millisecond, 320 * time.Millisecond}

// CacheRun is one sweep point in BENCH_cache.json.
type CacheRun struct {
	LeaseUS         int64 `json:"lease_us"`
	CacheTier       bool  `json:"cache_tier"`
	Shards          int   `json:"shards"`
	ClientsPerShard int   `json:"clients_per_shard"`
	Requests        int   `json:"requests_per_client"`
	Seed            int64 `json:"seed"`

	TotalRequests int     `json:"total_requests"`
	Errors        int     `json:"errors"`
	MakespanUS    int64   `json:"makespan_us"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Per-tier cache counters: the client sessions' lease caches, the
	// intermediate tier (zero unless CacheTier), and the authoritative
	// prefix server's grant counters.
	ClientHits     int     `json:"client_hits"`
	ClientMisses   int     `json:"client_misses"`
	ClientRenewals int     `json:"client_renewals"`
	ClientHitRate  float64 `json:"client_hit_rate"`
	TierHits       int     `json:"tier_hits,omitempty"`
	TierMisses     int     `json:"tier_misses,omitempty"`
	TierForwards   int     `json:"tier_forwards,omitempty"`
	TierHitRate    float64 `json:"tier_hit_rate,omitempty"`
	PrefixGrants   int     `json:"prefix_grants"`

	// EqualToSequential records the deep comparison between the
	// conservative engine's WorkloadResult and the sequential driver's
	// on the identical topology.
	EqualToSequential bool `json:"equal_to_sequential"`
}

// CacheChaos is one fault leg in BENCH_cache.json.
type CacheChaos struct {
	Kind     string   `json:"kind"` // "crash" or "partition"
	LeaseUS  int64    `json:"lease_us"`
	Requests int      `json:"requests_per_client"`
	Schedule []string `json:"schedule"` // the fired chaos log, verbatim

	TotalRequests int `json:"total_requests"`
	Completed     int `json:"completed"`
	Errors        int `json:"errors"`
	// Invalidations counts client lease entries dropped by callback.
	Invalidations int `json:"invalidations"`

	// TraceClean records trace.Check with the lease staleness invariant
	// (#7) enabled; StaleWindows/WidestStaleUS summarize the windows in
	// which a read served a mapping after its redefinition committed,
	// and BoundHeld asserts the widest never exceeded the lease.
	TraceClean    bool  `json:"trace_clean"`
	StaleWindows  int   `json:"stale_windows"`
	WidestStaleUS int64 `json:"widest_stale_us"`
	BoundHeld     bool  `json:"bound_held"`
}

// CacheDoc is the BENCH_cache.json schema.
type CacheDoc struct {
	Tool        string `json:"tool"`
	Description string `json:"description"`

	Sweep []CacheRun   `json:"sweep"`
	Chaos []CacheChaos `json:"chaos"`
}

// a17Run executes one sweep point: the same leased topology built
// twice, run through the sequential driver and the conservative engine,
// compared, and read out per cache tier.
func a17Run(lease time.Duration, tier bool) (CacheRun, error) {
	cfg := rig.SharedPrefixConfig{
		Shards:          a17Shards,
		ClientsPerShard: a17ClientsPerShard,
		Requests:        a17Requests,
		Seed:            a17Seed,
		Lease:           lease,
		CacheTier:       tier,
	}
	run := CacheRun{
		LeaseUS:         lease.Microseconds(),
		CacheTier:       tier,
		Shards:          a17Shards,
		ClientsPerShard: a17ClientsPerShard,
		Requests:        a17Requests,
		Seed:            a17Seed,
	}

	seqTop, err := rig.NewSharedPrefixWorkload(cfg)
	if err != nil {
		return run, err
	}
	seq := rig.RunWorkload(seqTop.Clients)

	parTop, err := rig.NewSharedPrefixWorkload(cfg)
	if err != nil {
		return run, err
	}
	par := rig.RunWorkloadParallel(parTop.Clients, 0)

	run.EqualToSequential = reflect.DeepEqual(seq, par)
	run.TotalRequests = par.Requests
	run.MakespanUS = par.Makespan.Microseconds()
	run.ThroughputRPS = par.Throughput()
	for _, st := range par.Clients {
		run.Errors += st.Errors
	}
	for _, c := range parTop.Clients {
		st := c.Session.LeaseCacheStats()
		run.ClientHits += st.Hits
		run.ClientMisses += st.Misses
		run.ClientRenewals += st.Renewals
	}
	if lookups := run.ClientHits + run.ClientMisses + run.ClientRenewals; lookups > 0 {
		run.ClientHitRate = float64(run.ClientHits) / float64(lookups)
	}
	if tier {
		ts := parTop.Tier.Stats()
		run.TierHits = int(ts.Hits)
		run.TierMisses = int(ts.Misses)
		run.TierForwards = int(ts.Forwards)
		if lookups := ts.Hits + ts.Misses; lookups > 0 {
			run.TierHitRate = float64(ts.Hits) / float64(lookups)
		}
	}
	run.PrefixGrants = int(parTop.Prefix.LeaseStats().Grants)
	return run, nil
}

// a17Redefine deletes and re-adds [shard0] through an admin session on
// the prefix host — the mutation whose invalidation barrier (or, under
// partition, whose unreachable holders) the chaos legs measure. Run as
// a Custom chaos event, it executes at a quiescent cut, so it is
// deterministic under the concurrent engine.
func a17Redefine(sw *rig.SharedPrefixWorkload) func() error {
	return func() error {
		proc, err := sw.PrefixHost.NewProcess("admin")
		if err != nil {
			return err
		}
		adm := client.New(proc, sw.Prefix.PID(), sw.Shards[0].RootPair(), "admin")
		if err := adm.DeleteName("shard0"); err != nil {
			return err
		}
		return adm.AddName("shard0", sw.Shards[0].RootPair())
	}
}

// a17Chaos drives the leased topology through the conservative engine
// under a fault schedule, traced, and distills the run into a
// CacheChaos leg: determinism belongs to the engine tests; here the
// trace itself is the deliverable.
func a17Chaos(kind string, schedule func(sw *rig.SharedPrefixWorkload) []chaos.Event) (CacheChaos, error) {
	leg := CacheChaos{
		Kind:     kind,
		LeaseUS:  a17ChaosLease.Microseconds(),
		Requests: a17ChaosRequests,
	}
	sw, err := rig.NewSharedPrefixWorkload(rig.SharedPrefixConfig{
		Shards:          a17Shards,
		ClientsPerShard: a17ClientsPerShard,
		Requests:        a17ChaosRequests,
		Seed:            a17Seed,
		Lease:           a17ChaosLease,
		Trace:           true,
	})
	if err != nil {
		return leg, err
	}
	eng := chaos.New(sw.Kernel, schedule(sw))
	res := rig.RunWorkloadEngine(sw.Clients, rig.EngineOptions{Fences: rig.ChaosFences(eng)})

	leg.Schedule = eng.Log()
	leg.TotalRequests = res.Requests
	for _, c := range res.Clients {
		leg.Completed += c.Completed
		leg.Errors += c.Errors
	}
	for _, c := range sw.Clients {
		leg.Invalidations += c.Session.LeaseCacheStats().Invalidations
	}
	spans := sw.Tracer.Snapshot()
	leg.TraceClean = trace.Check(spans, trace.CheckOptions{LeaseBound: a17ChaosLease}) == nil
	leg.BoundHeld = true
	for _, w := range trace.StaleWindows(spans) {
		leg.StaleWindows++
		us := w.Window / 1e3
		if us > leg.WidestStaleUS {
			leg.WidestStaleUS = us
		}
		if time.Duration(w.Window) > a17ChaosLease {
			leg.BoundHeld = false
		}
	}
	return leg, nil
}

// a17CrashSchedule is the A14 outage pattern compressed to the
// lease-era horizon, with the redefinition fired between grants and the
// first outage: the callback barrier runs while every holder is
// reachable, so the trace must contain no stale window at all.
func a17CrashSchedule(sw *rig.SharedPrefixWorkload) []chaos.Event {
	return []chaos.Event{
		{At: 150 * time.Millisecond, Action: chaos.Custom, Note: "redefine shard0", Do: a17Redefine(sw)},
		{At: 300 * time.Millisecond, Action: chaos.Crash, Host: "nexus", Note: "first outage"},
		{At: 500 * time.Millisecond, Action: chaos.Restart, Host: "nexus"},
		{At: 700 * time.Millisecond, Action: chaos.Crash, Host: "nexus", Note: "second outage"},
		{At: 850 * time.Millisecond, Action: chaos.Restart, Host: "nexus"},
	}
}

// a17PartitionSchedule cuts the prefix host off and redefines [shard0]
// mid-partition: the admin session is co-resident with the server, so
// the mutation commits locally, but the callback barrier reaches no
// holder — every partitioned client keeps serving the old binding until
// its lease lapses. The stale windows must be non-empty (the callbacks
// demonstrably failed) yet bounded by the lease.
func a17PartitionSchedule(sw *rig.SharedPrefixWorkload) []chaos.Event {
	return []chaos.Event{
		{At: 250 * time.Millisecond, Action: chaos.Partition, Host: "nexus", Group: 1, Note: "prefix host cut off"},
		{At: 300 * time.Millisecond, Action: chaos.Custom, Note: "redefine shard0 behind the partition", Do: a17Redefine(sw)},
		{At: 450 * time.Millisecond, Action: chaos.Heal},
	}
}

// a17Collect runs every leg once, producing both the JSON document and
// the experiment rows from the same data.
func a17Collect() (*CacheDoc, []Row, error) {
	doc := &CacheDoc{
		Tool:        "vbench -cache",
		Description: "lease-coherent name-cache hierarchy: hit-rate sweep over lease length with and without the intermediate tier, plus crash and partition legs with the trace-checked staleness bound",
	}
	var rows []Row
	for _, tier := range []bool{false, true} {
		for _, lease := range a17LeaseSweep {
			run, err := a17Run(lease, tier)
			if err != nil {
				return nil, nil, fmt.Errorf("a17 lease=%v tier=%v: %w", lease, tier, err)
			}
			if !run.EqualToSequential {
				return nil, nil, fmt.Errorf("a17 lease=%v tier=%v: engine result differs from sequential", lease, tier)
			}
			if run.Errors != 0 {
				return nil, nil, fmt.Errorf("a17 lease=%v tier=%v: %d requests failed", lease, tier, run.Errors)
			}
			doc.Sweep = append(doc.Sweep, run)
			tierNote := "no tier"
			if tier {
				tierNote = fmt.Sprintf("tier %d/%d hits", run.TierHits, run.TierHits+run.TierMisses)
			}
			rows = append(rows, Row{
				Label:    fmt.Sprintf("lease=%s tier=%v", ms(lease), tier),
				Paper:    "-",
				Measured: fmt.Sprintf("%.1f%% client hits", 100*run.ClientHitRate),
				Note: fmt.Sprintf("≡ sequential; %d renewals; %s; %d upstream grants",
					run.ClientRenewals, tierNote, run.PrefixGrants),
			})
		}
	}

	crash, err := a17Chaos("crash", a17CrashSchedule)
	if err != nil {
		return nil, nil, fmt.Errorf("a17 crash leg: %w", err)
	}
	if !crash.TraceClean {
		return nil, nil, fmt.Errorf("a17 crash leg: trace violates the lease staleness invariant")
	}
	if crash.StaleWindows != 0 {
		return nil, nil, fmt.Errorf("a17 crash leg: %d stale windows despite reachable holders", crash.StaleWindows)
	}
	if crash.Invalidations == 0 {
		return nil, nil, fmt.Errorf("a17 crash leg: redefinition invalidated no holder")
	}
	if crash.Errors == 0 {
		return nil, nil, fmt.Errorf("a17 crash leg: outages were never client-visible")
	}
	doc.Chaos = append(doc.Chaos, crash)
	rows = append(rows, Row{
		Label:    "crash leg: redefine + A14 outages",
		Paper:    "-",
		Measured: "0 stale windows",
		Note: fmt.Sprintf("trace-checked (bound %s); %d holders invalidated; %d ops failed in outages",
			ms(a17ChaosLease), crash.Invalidations, crash.Errors),
	})

	part, err := a17Chaos("partition", a17PartitionSchedule)
	if err != nil {
		return nil, nil, fmt.Errorf("a17 partition leg: %w", err)
	}
	if !part.TraceClean {
		return nil, nil, fmt.Errorf("a17 partition leg: trace violates the lease staleness invariant")
	}
	if part.StaleWindows == 0 {
		return nil, nil, fmt.Errorf("a17 partition leg: no stale window — the partition never bit")
	}
	if !part.BoundHeld {
		return nil, nil, fmt.Errorf("a17 partition leg: a stale window exceeded the lease bound")
	}
	doc.Chaos = append(doc.Chaos, part)
	rows = append(rows, Row{
		Label:    "partition leg: redefine behind partition",
		Paper:    "-",
		Measured: fmt.Sprintf("widest stale window %s", ms(time.Duration(part.WidestStaleUS)*time.Microsecond)),
		Note: fmt.Sprintf("%d windows, all ≤ %s lease; callbacks reached no holder",
			part.StaleWindows, ms(a17ChaosLease)),
	})
	return doc, rows, nil
}

// A17 reports the lease-coherence legs: hit-rate amortization across
// the cache hierarchy, and the staleness bound holding through crashes
// and partitions — asserted by the trace checker, not eyeballed.
func A17() (Result, error) {
	_, rows, err := a17Collect()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "a17",
		Title:  "lease-coherent name caches: hit rates and the staleness bound under faults",
		Source: "PROTOCOL.md §13; §2.3 caches with leases in place of validate-on-use",
		Rows:   rows,
	}, nil
}

// CacheJSON renders the BENCH_cache.json document, byte-identical
// across runs.
func CacheJSON() ([]byte, error) {
	doc, _, err := a17Collect()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// a17SectionGuard asserts at test time that the A17 registry entry is
// followed only by later experiments (vbench_output.txt's sections up
// through A17 must stay byte-identical as new experiments land).
func a17SectionGuard() bool {
	return sectionGuard("a17")
}
