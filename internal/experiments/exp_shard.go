package experiments

// A16 measures the conservative sharded engine (PROTOCOL.md §12) on the
// shared-prefix topology — the shape PR 4's lane driver could not
// parallelize at all, because every client's cache misses cross one
// wire to one prefix server. The engine's whole claim is that going
// wide changes nothing observable: each sweep point runs the workload
// both ways and reports the virtual throughput only after checking the
// two results are deeply equal. Wall-clock scaling lives in
// BENCH_wallclock.json (vbench -wallclock -engine sharded); everything
// here is virtual time and therefore byte-deterministic.

import (
	"encoding/json"
	"fmt"
	"reflect"

	"repro/internal/rig"
	"repro/internal/vtime"
)

// a16Shape fixes the per-shard load; the sweep varies only the number
// of shards (= engine lanes).
const (
	a16ClientsPerShard = 4
	a16Requests        = 40
	a16FlushEvery      = 6
	a16Seed            = 7
)

// a16ShardCounts is the lane sweep.
var a16ShardCounts = []int{1, 2, 4, 8}

// ShardRun is one sweep point in BENCH_shard.json.
type ShardRun struct {
	Shards          int   `json:"shards"`
	ClientsPerShard int   `json:"clients_per_shard"`
	Requests        int   `json:"requests_per_client"`
	Team            int   `json:"team"`
	FlushEvery      int   `json:"flush_every"`
	Seed            int64 `json:"seed"`

	TotalRequests int     `json:"total_requests"`
	Errors        int     `json:"errors"`
	MakespanUS    int64   `json:"makespan_us"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// ConfinedOps counts cache-hit queries (lane-local hops the engine
	// runs ahead on); SharedOps counts cache misses through the central
	// prefix server (committed in global key order).
	ConfinedOps int `json:"confined_ops"`
	SharedOps   int `json:"shared_ops"`

	// PerLaneOps is the completed-operation count of each engine lane.
	PerLaneOps []int `json:"per_lane_ops"`

	// EqualToSequential records the result of re-running the identical
	// workload through the sequential reference driver and deep-comparing
	// the two WorkloadResults.
	EqualToSequential bool `json:"equal_to_sequential"`
}

// ShardDoc is the BENCH_shard.json schema.
type ShardDoc struct {
	Tool        string `json:"tool"`
	Description string `json:"description"`

	// Engine names the synchronization protocol (PROTOCOL.md §12).
	Engine string `json:"engine"`
	// LookaheadNS is the conservative lookahead bound: the cost model's
	// minimum remote delay (driver floor + protocol extra + minimum
	// frame's wire time).
	LookaheadNS int64 `json:"lookahead_ns"`

	Runs []ShardRun `json:"runs"`
}

// a16Run executes one sweep point: the same topology built twice, run
// once through the sequential reference driver and once through the
// conservative engine, then compared.
func a16Run(shards int) (ShardRun, error) {
	cfg := rig.SharedPrefixConfig{
		Shards:          shards,
		ClientsPerShard: a16ClientsPerShard,
		Requests:        a16Requests,
		Seed:            a16Seed,
		FlushEvery:      a16FlushEvery,
	}
	run := ShardRun{
		Shards:          shards,
		ClientsPerShard: a16ClientsPerShard,
		Requests:        a16Requests,
		Team:            1,
		FlushEvery:      a16FlushEvery,
		Seed:            a16Seed,
	}

	seqTop, err := rig.NewSharedPrefixWorkload(cfg)
	if err != nil {
		return run, err
	}
	seq := rig.RunWorkload(seqTop.Clients)

	parTop, err := rig.NewSharedPrefixWorkload(cfg)
	if err != nil {
		return run, err
	}
	par := rig.RunWorkloadParallel(parTop.Clients, 0)

	run.EqualToSequential = reflect.DeepEqual(seq, par)
	run.TotalRequests = par.Requests
	run.MakespanUS = par.Makespan.Microseconds()
	run.ThroughputRPS = par.Throughput()
	run.PerLaneOps = make([]int, shards)
	for i, st := range par.Clients {
		run.Errors += st.Errors
		run.PerLaneOps[parTop.Clients[i].Lane] += st.Completed
	}
	for _, c := range parTop.Clients {
		st := c.Session.NameCacheStats()
		run.ConfinedOps += st.Hits
		run.SharedOps += st.Misses
	}
	return run, nil
}

// a16Collect runs the sweep once, producing both the JSON document and
// the experiment rows from the same data.
func a16Collect() (*ShardDoc, []Row, error) {
	doc := &ShardDoc{
		Tool:        "vbench -shard",
		Description: "conservative sharded engine on the shared-prefix topology: per-lane engines with lookahead synchronization, verified deeply equal to the sequential driver",
		Engine:      "conservative (exact next-op promises, PROTOCOL.md §12)",
		LookaheadNS: vtime.DefaultModel().MinRemoteDelay().Nanoseconds(),
	}
	rows := []Row{{
		Label:    "conservative lookahead bound",
		Paper:    "-",
		Measured: ms(vtime.DefaultModel().MinRemoteDelay()),
		Note:     "min remote delay: driver floor + protocol extra + 64-byte frame",
	}}
	for _, shards := range a16ShardCounts {
		run, err := a16Run(shards)
		if err != nil {
			return nil, nil, fmt.Errorf("a16 shards=%d: %w", shards, err)
		}
		if !run.EqualToSequential {
			return nil, nil, fmt.Errorf("a16 shards=%d: engine result differs from sequential", shards)
		}
		if run.Errors != 0 {
			return nil, nil, fmt.Errorf("a16 shards=%d: %d requests failed", shards, run.Errors)
		}
		doc.Runs = append(doc.Runs, run)
		rows = append(rows, Row{
			Label:    fmt.Sprintf("shards=%d (%d lanes, %d clients)", shards, shards, shards*a16ClientsPerShard),
			Paper:    "-",
			Measured: fmt.Sprintf("%.0f req/s", run.ThroughputRPS),
			Note: fmt.Sprintf("≡ sequential; %d confined + %d shared ops; PR 4 lane driver: inapplicable",
				run.ConfinedOps, run.SharedOps),
		})
	}
	return doc, rows, nil
}

// A16 reports the sharded engine sweep. The virtual throughput column
// is identical whichever driver produces it — that identity is the
// measurement; wall-clock scaling (flat on 1-CPU runners, like PR 4's
// lane-driver curve) is reported separately by vbench -wallclock.
func A16() (Result, error) {
	_, rows, err := a16Collect()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "a16",
		Title:  "sharded engine: per-lane event engines with conservative lookahead",
		Source: "PROTOCOL.md §12; client name caches (§2.3) decide each op's class",
		Rows:   rows,
	}, nil
}

// ShardJSON renders the BENCH_shard.json document, byte-identical
// across runs.
func ShardJSON() ([]byte, error) {
	doc, _, err := a16Collect()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
