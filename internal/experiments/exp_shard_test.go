package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestA16Shape(t *testing.T) {
	res := runExp(t, "a16")
	if len(res.Rows) != 1+len(a16ShardCounts) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 1+len(a16ShardCounts))
	}
	if !strings.Contains(res.Rows[0].Label, "lookahead") {
		t.Fatalf("first row = %+v", res.Rows[0])
	}
	for _, r := range res.Rows[1:] {
		if !strings.Contains(r.Note, "≡ sequential") {
			t.Fatalf("sweep row lost its equivalence check: %+v", r)
		}
	}
}

func TestShardJSONDeterministic(t *testing.T) {
	b1, err := ShardJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ShardJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("BENCH_shard.json not byte-deterministic across runs")
	}
	var doc ShardDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.LookaheadNS <= 0 {
		t.Fatalf("lookahead_ns = %d", doc.LookaheadNS)
	}
	if len(doc.Runs) != len(a16ShardCounts) {
		t.Fatalf("runs = %d, want %d", len(doc.Runs), len(a16ShardCounts))
	}
	for _, run := range doc.Runs {
		if !run.EqualToSequential {
			t.Fatalf("shards=%d: not equal to sequential", run.Shards)
		}
		if run.ConfinedOps == 0 || run.SharedOps == 0 {
			t.Fatalf("shards=%d: degenerate class mix (confined=%d shared=%d)",
				run.Shards, run.ConfinedOps, run.SharedOps)
		}
		if run.Errors != 0 {
			t.Fatalf("shards=%d: %d errors", run.Shards, run.Errors)
		}
		want := run.Shards * run.ClientsPerShard * run.Requests
		if run.TotalRequests != want {
			t.Fatalf("shards=%d: total_requests = %d, want %d", run.Shards, run.TotalRequests, want)
		}
		lanes := 0
		for _, n := range run.PerLaneOps {
			lanes += n
		}
		if lanes != want {
			t.Fatalf("shards=%d: per-lane ops sum %d, want %d", run.Shards, lanes, want)
		}
	}
}
