// Package flight is the always-on flight recorder: a bounded
// ring-buffer journal of the structured events the naming plane emits —
// resolutions, lease grants and renewals, invalidation callbacks,
// redefinitions, forwards, failovers and engine fences. Like the tracer
// and the metrics registry (PROTOCOL.md §9, §15), the recorder is
// strictly an observer: recording never touches a process clock, so a
// run with the recorder installed is byte-identical to one without it
// in every virtual-time result.
//
// The recorder follows the same discipline as internal/metrics on the
// hot path: a fixed preallocated ring under one mutex, events recorded
// by value with string fields referencing strings the caller already
// holds — no per-event allocation — and every method nil-safe, so
// record sites need no presence checks. When the ring wraps, the oldest
// events are overwritten and counted as dropped; the journal is a
// bounded window onto recent activity, not an unbounded log.
//
// Under the conservative engine, record order across lanes is not
// deterministic — but the *set* of events between two globally
// quiescent cuts is. Seal, called at engine fences, drains the ring
// into the sealed journal in a canonical order (sorted by time, kind,
// name, process, detail), so the journal of a fenced run is
// deterministic even when the lanes genuinely overlapped.
package flight

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies a flight-recorder event.
type Kind uint8

// The event kinds of the naming plane (PROTOCOL.md §15).
const (
	// KindResolution is one prefix resolution served (hit or forward).
	KindResolution Kind = iota + 1
	// KindLeaseGrant is a lease stamp leaving a granting server
	// (detail "negative" marks a NotFound stamp).
	KindLeaseGrant
	// KindLeaseRenew is a client revalidating a lapsed lease.
	KindLeaseRenew
	// KindInvalidate is an invalidation applied at a holder (callback).
	KindInvalidate
	// KindRedefine is a binding mutation committing at the granting
	// server — the instant the staleness invariant keys on.
	KindRedefine
	// KindForward is a request rewritten and passed along a binding.
	KindForward
	// KindFailover is a recovery action: a stale leased route dropped,
	// a dead dynamic target, a rebind to a new implementor.
	KindFailover
	// KindFence is an engine fence: the quiescent cut at which the ring
	// was sealed.
	KindFence

	kindMax = KindFence
)

var kindNames = [...]string{
	KindResolution: "resolution",
	KindLeaseGrant: "lease-grant",
	KindLeaseRenew: "lease-renew",
	KindInvalidate: "invalidate",
	KindRedefine:   "redefine",
	KindForward:    "forward",
	KindFailover:   "failover",
	KindFence:      "fence",
}

// String names the kind.
func (k Kind) String() string {
	if k >= 1 && k <= kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one flight-recorder event. Fields are plain values: recording
// one into the ring copies three string headers and two words, and
// allocates nothing.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration `json:"at_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Name is the name or prefix involved (may be empty for fences).
	Name string `json:"name,omitempty"`
	// Proc is the recording process.
	Proc string `json:"proc,omitempty"`
	// Detail carries the event's classification ("negative", "stale",
	// "dead-target", ...). Empty for the common case.
	Detail string `json:"detail,omitempty"`
}

// less orders events canonically: by time, then kind, name, process and
// detail. Events equal under this order are interchangeable, which is
// what makes a sealed journal deterministic at quiescent cuts.
func (e Event) less(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	if e.Name != o.Name {
		return e.Name < o.Name
	}
	if e.Proc != o.Proc {
		return e.Proc < o.Proc
	}
	return e.Detail < o.Detail
}

// DefaultCapacity is the ring size used when New is given n <= 0.
const DefaultCapacity = 4096

// Recorder is the flight recorder. All methods are safe for concurrent
// use and all are no-ops on a nil receiver.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event // preallocated ring
	head    int     // next write slot
	n       int     // live events in the ring (≤ len(buf))
	total   uint64  // events ever recorded
	dropped uint64  // events overwritten before being sealed or read
	sealed  []Event // fence-drained journal, canonical order
	sealCap int     // bound on len(sealed); older sealed events drop
}

// New returns a recorder with the given ring capacity (DefaultCapacity
// when n <= 0). The sealed journal is bounded at 4× the ring.
func New(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, n), sealCap: 4 * n}
}

// Record appends one event to the ring, overwriting the oldest when
// full. Zero virtual cost, zero allocations.
func (r *Recorder) Record(at time.Duration, kind Kind, name, proc, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.head] = Event{At: at, Kind: kind, Name: name, Proc: proc, Detail: detail}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently buffered (ring + sealed).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n + len(r.sealed)
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns the number of events lost to ring wrap-around (plus
// sealed events evicted past the journal bound).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ringLocked copies the live ring contents in record order. Caller
// holds r.mu.
func (r *Recorder) ringLocked() []Event {
	out := make([]Event, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Seal drains the ring into the sealed journal in canonical order and
// records the fence itself, returning the number of events sealed.
// Called at engine fences — globally quiescent cuts — so the sealed
// batch is a deterministic set regardless of how the lanes interleaved.
func (r *Recorder) Seal(at time.Duration) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	batch := r.ringLocked()
	r.n, r.head = 0, 0
	sort.Slice(batch, func(i, j int) bool { return batch[i].less(batch[j]) })
	r.sealed = append(r.sealed, batch...)
	r.sealed = append(r.sealed, Event{At: at, Kind: KindFence, Proc: "engine"})
	r.total++
	if over := len(r.sealed) - r.sealCap; over > 0 {
		r.dropped += uint64(over)
		r.sealed = append(r.sealed[:0], r.sealed[over:]...)
	}
	return len(batch)
}

// Journal returns the recorder's contents: the sealed journal followed
// by the live ring tail, the tail in the same canonical order Seal
// would give it.
func (r *Recorder) Journal() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tail := r.ringLocked()
	sort.Slice(tail, func(i, j int) bool { return tail[i].less(tail[j]) })
	out := make([]Event, 0, len(r.sealed)+len(tail))
	out = append(out, r.sealed...)
	return append(out, tail...)
}

// Counts tallies the journal by kind (index = Kind).
func Counts(events []Event) [kindMax + 1]uint64 {
	var c [kindMax + 1]uint64
	for _, e := range events {
		if e.Kind >= 1 && e.Kind <= kindMax {
			c[e.Kind]++
		}
	}
	return c
}

// WriteText renders events one per line for vstat -flight and
// chaos-failure dumps.
func WriteText(w io.Writer, events []Event) {
	for _, e := range events {
		line := fmt.Sprintf("%12.3fms  %-11s", float64(e.At)/1e6, e.Kind)
		if e.Name != "" {
			line += "  " + e.Name
		}
		if e.Proc != "" {
			line += "  (" + e.Proc + ")"
		}
		if e.Detail != "" {
			line += "  [" + e.Detail + "]"
		}
		fmt.Fprintln(w, line)
	}
}

// The binary journal encoding: "FJ1" magic, uvarint count, then per
// event uvarint time (ns), one kind byte, and three length-prefixed
// strings. Compact enough to dump from a failing chaos test, simple
// enough to fuzz the round trip.
var magic = []byte{'F', 'J', '1'}

// Encode renders events in the binary journal encoding.
func Encode(events []Event) []byte {
	buf := append([]byte(nil), magic...)
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	for _, e := range events {
		buf = binary.AppendUvarint(buf, uint64(e.At))
		buf = append(buf, byte(e.Kind))
		for _, s := range []string{e.Name, e.Proc, e.Detail} {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// Decode parses a binary journal. It never panics on arbitrary input:
// malformed data returns an error.
func Decode(data []byte) ([]Event, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("flight: bad journal magic")
	}
	data = data[len(magic):]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("flight: bad journal count")
	}
	data = data[n:]
	if count > uint64(len(data)) { // each event costs ≥ 1 byte
		return nil, fmt.Errorf("flight: journal count %d exceeds payload", count)
	}
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		at, n := binary.Uvarint(data)
		if n <= 0 || at > uint64(1)<<62 {
			return nil, fmt.Errorf("flight: event %d: bad timestamp", i)
		}
		data = data[n:]
		if len(data) < 1 {
			return nil, fmt.Errorf("flight: event %d: truncated kind", i)
		}
		e := Event{At: time.Duration(at), Kind: Kind(data[0])}
		if e.Kind < 1 || e.Kind > kindMax {
			return nil, fmt.Errorf("flight: event %d: unknown kind %d", i, data[0])
		}
		data = data[1:]
		for f := 0; f < 3; f++ {
			l, n := binary.Uvarint(data)
			if n <= 0 || l > uint64(len(data)-n) {
				return nil, fmt.Errorf("flight: event %d: bad string length", i)
			}
			s := string(data[n : n+int(l)])
			data = data[n+int(l):]
			switch f {
			case 0:
				e.Name = s
			case 1:
				e.Proc = s
			default:
				e.Detail = s
			}
		}
		events = append(events, e)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("flight: %d trailing bytes after journal", len(data))
	}
	return events, nil
}

// failer is the slice of testing.T the dump hook needs.
type failer interface {
	Failed() bool
	Logf(format string, args ...any)
	Cleanup(func())
}

// DumpOnFailure registers a test cleanup that, if the test failed,
// writes the recorder's journal to the test log — the post-mortem the
// chaos suites attach so a failing schedule arrives with its flight
// record.
func DumpOnFailure(t failer, r *Recorder) {
	t.Cleanup(func() {
		if !t.Failed() || r == nil {
			return
		}
		events := r.Journal()
		var sb writerBuf
		WriteText(&sb, events)
		t.Logf("flight journal (%d events, %d dropped):\n%s", len(events), r.Dropped(), sb.b)
	})
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
