package flight

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(time.Millisecond, KindResolution, "[home]", "ws", "")
	if r.Seal(time.Millisecond) != 0 {
		t.Fatalf("nil Seal sealed events")
	}
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Journal() != nil {
		t.Fatalf("nil recorder reported state")
	}
}

func TestRecordAndJournalOrder(t *testing.T) {
	r := New(8)
	// Record out of canonical order.
	r.Record(3*time.Millisecond, KindForward, "[storage]", "fs1", "")
	r.Record(time.Millisecond, KindResolution, "[home]", "ws", "")
	r.Record(time.Millisecond, KindLeaseGrant, "[home]", "pfx", "negative")
	j := r.Journal()
	if len(j) != 3 {
		t.Fatalf("journal len = %d, want 3", len(j))
	}
	// Canonical order: 1ms resolution, 1ms lease-grant, 3ms forward.
	if j[0].Kind != KindResolution || j[1].Kind != KindLeaseGrant || j[2].Kind != KindForward {
		t.Fatalf("journal out of canonical order: %+v", j)
	}
	if got := r.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
}

func TestRingWrapDrops(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i)*time.Millisecond, KindResolution, "n", "p", "")
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	j := r.Journal()
	if len(j) != 4 {
		t.Fatalf("journal retains %d, want ring capacity 4", len(j))
	}
	// Survivors are the newest four.
	if j[0].At != 6*time.Millisecond || j[3].At != 9*time.Millisecond {
		t.Fatalf("wrong survivors after wrap: %+v", j)
	}
}

func TestSealDeterministicAcrossInterleavings(t *testing.T) {
	events := []Event{
		{At: 2 * time.Millisecond, Kind: KindRedefine, Name: "[home]", Proc: "pfx"},
		{At: time.Millisecond, Kind: KindResolution, Name: "[bin]", Proc: "ws1"},
		{At: time.Millisecond, Kind: KindResolution, Name: "[bin]", Proc: "ws0"},
		{At: 2 * time.Millisecond, Kind: KindInvalidate, Name: "[home]", Proc: "ws0"},
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	var want []Event
	for i, p := range perms {
		r := New(16)
		for _, idx := range p {
			e := events[idx]
			r.Record(e.At, e.Kind, e.Name, e.Proc, e.Detail)
		}
		if sealed := r.Seal(5 * time.Millisecond); sealed != len(events) {
			t.Fatalf("Seal sealed %d, want %d", sealed, len(events))
		}
		j := r.Journal()
		if i == 0 {
			want = j
			continue
		}
		if !reflect.DeepEqual(j, want) {
			t.Fatalf("perm %v journal diverged:\n got %+v\nwant %+v", p, j, want)
		}
	}
	// The fence marker itself lands in the journal.
	last := want[len(want)-1]
	if last.Kind != KindFence || last.At != 5*time.Millisecond {
		t.Fatalf("missing fence marker, got %+v", last)
	}
}

func TestSealedJournalBounded(t *testing.T) {
	r := New(4) // sealCap = 16
	for fence := 0; fence < 20; fence++ {
		for i := 0; i < 4; i++ {
			r.Record(time.Duration(fence)*time.Millisecond, KindResolution, "n", "p", "")
		}
		r.Seal(time.Duration(fence) * time.Millisecond)
	}
	if got := len(r.Journal()); got > 16 {
		t.Fatalf("sealed journal grew to %d, cap 16", got)
	}
	if r.Dropped() == 0 {
		t.Fatalf("expected sealed-journal evictions counted as drops")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindFence, Proc: "engine"},
		{At: 1234567, Kind: KindLeaseGrant, Name: "[home]mann", Proc: "prefix-0", Detail: "negative"},
		{At: time.Hour, Kind: KindFailover, Name: "[storage]x/y", Proc: "ws", Detail: "stale"},
	}
	got, err := Decode(Encode(events))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, events)
	}
	if _, err := Decode([]byte("not a journal")); err == nil {
		t.Fatalf("Decode accepted garbage")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatalf("Decode accepted empty input")
	}
}

func TestCountsAndWriteText(t *testing.T) {
	events := []Event{
		{At: time.Millisecond, Kind: KindResolution, Name: "[home]", Proc: "ws"},
		{At: 2 * time.Millisecond, Kind: KindResolution, Name: "[bin]", Proc: "ws"},
		{At: 3 * time.Millisecond, Kind: KindRedefine, Name: "[home]", Proc: "pfx", Detail: "rebind"},
	}
	c := Counts(events)
	if c[KindResolution] != 2 || c[KindRedefine] != 1 {
		t.Fatalf("Counts = %v", c)
	}
	var buf bytes.Buffer
	WriteText(&buf, events)
	out := buf.String()
	for _, want := range []string{"resolution", "redefine", "[home]", "(pfx)", "[rebind]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindLeaseRenew.String() != "lease-renew" || KindFence.String() != "fence" {
		t.Fatalf("Kind.String wrong: %s %s", KindLeaseRenew, KindFence)
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	r := New(1 << 10)
	name, proc := "[home]mann/notes", "ws-mann"
	allocs := testing.AllocsPerRun(200, func() {
		r.Record(time.Millisecond, KindResolution, name, proc, "")
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", allocs)
	}
}

func TestDumpOnFailure(t *testing.T) {
	r := New(8)
	r.Record(time.Millisecond, KindRedefine, "[home]", "pfx", "")
	ft := &fakeT{failed: true}
	DumpOnFailure(ft, r)
	for _, fn := range ft.cleanups {
		fn()
	}
	if len(ft.logs) != 1 || !strings.Contains(ft.logs[0], "redefine") {
		t.Fatalf("failure dump missing journal: %v", ft.logs)
	}
	// A passing test dumps nothing.
	ft2 := &fakeT{}
	DumpOnFailure(ft2, r)
	for _, fn := range ft2.cleanups {
		fn()
	}
	if len(ft2.logs) != 0 {
		t.Fatalf("passing test dumped journal")
	}
}

type fakeT struct {
	failed   bool
	logs     []string
	cleanups []func()
}

func (f *fakeT) Failed() bool      { return f.failed }
func (f *fakeT) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeT) Logf(format string, args ...any) {
	f.logs = append(f.logs, fmt.Sprintf(format, args...))
}

// FuzzFlightRoundTrip drives both directions of the journal codec:
// decoding arbitrary bytes must never panic, and anything that decodes
// must re-encode to an equivalent journal.
func FuzzFlightRoundTrip(f *testing.F) {
	f.Add(Encode(nil))
	f.Add(Encode([]Event{{At: time.Millisecond, Kind: KindResolution, Name: "[home]", Proc: "ws", Detail: ""}}))
	f.Add(Encode([]Event{
		{At: 0, Kind: KindFence, Proc: "engine"},
		{At: time.Second, Kind: KindInvalidate, Name: "[a]b", Proc: "p", Detail: "d"},
	}))
	f.Add([]byte("FJ1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(events))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count: %d != %d", len(again), len(events))
		}
		if !reflect.DeepEqual(again, events) {
			t.Fatalf("round trip diverged")
		}
	})
}

// TestDefaultsAndLen covers the constructor clamp and the Len probe:
// a non-positive capacity falls back to DefaultCapacity, and Len counts
// ring plus sealed events.
func TestDefaultsAndLen(t *testing.T) {
	r := New(0)
	if r.Len() != 0 {
		t.Fatalf("fresh recorder Len = %d, want 0", r.Len())
	}
	r.Record(1, KindResolution, "[a]x", "p", "")
	r.Record(2, KindRedefine, "[a]x", "p", "")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Seal(3)
	if r.Len() != 3 { // the cut itself journals a fence event
		t.Fatalf("Len after seal = %d, want 3", r.Len())
	}
	var nilRec *Recorder
	if nilRec.Len() != 0 {
		t.Fatal("nil recorder Len != 0")
	}
}
