package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance = %v, want 5ms", got)
	}
	if got := c.Advance(3 * time.Millisecond); got != 8*time.Millisecond {
		t.Fatalf("Advance = %v, want 8ms", got)
	}
}

func TestClockAdvanceNegativeIsNoop(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	if got := c.Advance(-4 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("Advance(-4ms) = %v, want clock unchanged at 10ms", got)
	}
}

func TestClockObserve(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	if got := c.Observe(4 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("Observe(earlier) = %v, want 10ms", got)
	}
	if got := c.Observe(25 * time.Millisecond); got != 25*time.Millisecond {
		t.Fatalf("Observe(later) = %v, want 25ms", got)
	}
}

func TestClockObserveAndAdvance(t *testing.T) {
	var c Clock
	c.Advance(2 * time.Millisecond)
	got := c.ObserveAndAdvance(7*time.Millisecond, 1*time.Millisecond)
	if got != 8*time.Millisecond {
		t.Fatalf("ObserveAndAdvance = %v, want 8ms", got)
	}
	got = c.ObserveAndAdvance(3*time.Millisecond, 1*time.Millisecond)
	if got != 9*time.Millisecond {
		t.Fatalf("ObserveAndAdvance(earlier, 1ms) = %v, want 9ms", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: no sequence of Advance/Observe calls ever moves a clock
	// backwards.
	f := func(steps []int64) bool {
		var c Clock
		prev := c.Now()
		for i, s := range steps {
			d := time.Duration(s % int64(time.Second))
			var now Time
			if i%2 == 0 {
				now = c.Advance(d)
			} else {
				now = c.Observe(Time(d))
			}
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockConcurrentSafety(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
				c.Observe(c.Now())
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got < 8*1000*time.Microsecond {
		t.Fatalf("concurrent advances lost updates: %v", got)
	}
}

// TestCalibrationRemoteTransaction pins the headline calibration: a 32-byte
// Send-Receive-Reply between processes on separate hosts costs two remote
// hops, which must land on the paper's measured 2.56 ms (±2%).
func TestCalibrationRemoteTransaction(t *testing.T) {
	m := DefaultModel()
	rtt := 2 * m.RemoteHop(32)
	paper := 2560 * time.Microsecond
	if diff := rtt - paper; diff < -paper/50 || diff > paper/50 {
		t.Fatalf("32-byte remote transaction = %v, want %v ±2%%", rtt, paper)
	}
}

// TestCalibrationProgramLoad pins the 64 KB MoveTo calibration: the paper
// measured 338 ms, within 13 percent of the maximum packet write rate.
func TestCalibrationProgramLoad(t *testing.T) {
	m := DefaultModel()
	moved := m.RemoteHop(64 * 1024)
	paper := 338 * time.Millisecond
	if diff := moved - paper; diff < -paper/20 || diff > paper/20 {
		t.Fatalf("64 KB MoveTo = %v, want %v ±5%%", moved, paper)
	}
	floor := m.RemoteHopFloor(64 * 1024)
	overhead := float64(moved-floor) / float64(floor)
	if overhead < 0.05 || overhead > 0.20 {
		t.Fatalf("MoveTo overhead over driver floor = %.1f%%, want near the paper's 13%%", overhead*100)
	}
}

func TestWireTimeMinimumFrame(t *testing.T) {
	m := DefaultModel()
	// A tiny payload still occupies a minimum-size Ethernet frame.
	if m.WireTime(1) != m.WireTime(4) {
		t.Fatalf("payloads below the minimum frame should cost the same wire time")
	}
	if m.WireTime(512) <= m.WireTime(64) {
		t.Fatalf("larger frames must cost more wire time")
	}
}

func TestRemoteHopPacketization(t *testing.T) {
	m := DefaultModel()
	one := m.RemoteHop(m.MaxDataPerPacket)
	two := m.RemoteHop(m.MaxDataPerPacket + 1)
	if two <= one {
		t.Fatalf("crossing the packet boundary must add a packet: %v vs %v", one, two)
	}
	// Exactly two full packets cost exactly twice one full packet.
	if got, want := m.RemoteHop(2*m.MaxDataPerPacket), 2*one; got != want {
		t.Fatalf("two full packets = %v, want %v", got, want)
	}
}

func TestRemoteHopMonotonicInSize(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.RemoteHop(x) <= m.RemoteHop(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalHopCheaperThanRemote(t *testing.T) {
	m := DefaultModel()
	for _, n := range []int{0, 32, 512, 4096} {
		if m.LocalHop(n) >= m.RemoteHop(n) {
			t.Fatalf("local hop (%d bytes) should be cheaper than remote", n)
		}
	}
}

func TestHopSelectsLocality(t *testing.T) {
	m := DefaultModel()
	if m.Hop(32, true) != m.LocalHop(32) {
		t.Fatal("Hop(same host) must equal LocalHop")
	}
	if m.Hop(32, false) != m.RemoteHop(32) {
		t.Fatal("Hop(remote) must equal RemoteHop")
	}
}

func TestRemoteHopFloorBelowHop(t *testing.T) {
	m := DefaultModel()
	f := func(n uint32) bool {
		b := int(n % (1 << 20))
		if b == 0 {
			b = 1
		}
		return m.RemoteHopFloor(b) < m.RemoteHop(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMillisecondsFormat(t *testing.T) {
	if got := Milliseconds(2560 * time.Microsecond); got != "2.56 ms" {
		t.Fatalf("Milliseconds = %q, want \"2.56 ms\"", got)
	}
	if got := Milliseconds(0); got != "0.00 ms" {
		t.Fatalf("Milliseconds(0) = %q", got)
	}
}

func TestNameParseLinear(t *testing.T) {
	m := DefaultModel()
	if m.NameParse(0) != 0 {
		t.Fatal("parsing an empty name costs nothing")
	}
	if m.NameParse(20) != 2*m.NameParse(10) {
		t.Fatal("name parse cost must be linear in length")
	}
}

func TestModel10MbitFasterWire(t *testing.T) {
	m3, m10 := DefaultModel(), Model10Mbit()
	if m10.RemoteHop(512) >= m3.RemoteHop(512) {
		t.Fatal("10 Mbit hops must be faster")
	}
	// Per-packet fixed costs are unchanged: small messages barely improve
	// (CPU-bound), bulk transfers improve a lot (wire-bound).
	smallGain := float64(m3.RemoteHop(32)) / float64(m10.RemoteHop(32))
	bulkGain := float64(m3.RemoteHop(64*1024)) / float64(m10.RemoteHop(64*1024))
	if smallGain > 1.25 {
		t.Fatalf("small-message gain %.2fx should be modest (CPU-bound)", smallGain)
	}
	if bulkGain < 1.5 {
		t.Fatalf("bulk gain %.2fx should be substantial (wire-bound)", bulkGain)
	}
}
