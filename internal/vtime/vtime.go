// Package vtime provides virtual clocks and the calibrated cost model used
// by the simulated V-System substrate.
//
// Every simulated process carries a Clock. Messages carry virtual
// timestamps: a message sent at virtual time t over a hop with latency d
// arrives at t+d, and the receiver's clock advances to at least the arrival
// time. Processing steps charge additional virtual time to the local clock.
// For the sequential request-response chains the paper's experiments
// measure, this timestamp-propagation scheme yields exact, deterministic
// virtual latencies independent of Go scheduling.
//
// The cost model constants are calibrated to the hardware the paper
// measured (10 MHz MC68000 SUN workstations on a 3 Mbit Ethernet) so that
// the simulated primitives land on the paper's §3.1 figures; see DESIGN.md
// §6 and EXPERIMENTS.md for the calibration derivation.
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp: the duration since the simulation booted.
type Time = time.Duration

// Clock is a monotonic virtual clock owned by one simulated process.
// The zero value is a clock at virtual time zero, ready to use.
//
// The clock is lock-free: a process reads and advances its own clock on
// every IPC primitive, so the hot path must not take a mutex. Advance
// uses a single atomic add (the owner is the only advancer); Observe and
// ObserveAndAdvance run a compare-and-swap max loop so concurrent
// observers can never move the clock backwards.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	return Time(c.now.Load())
}

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration is a no-op.
func (c *Clock) Advance(d time.Duration) Time {
	if d <= 0 {
		return Time(c.now.Load())
	}
	return Time(c.now.Add(int64(d)))
}

// Observe moves the clock forward to t if t is later than the current
// time, and returns the resulting time. It is used when a message stamped
// with arrival time t is delivered to this clock's owner.
func (c *Clock) Observe(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// ObserveAndAdvance is Observe(t) followed by Advance(d) as one atomic
// step, returning the resulting time.
func (c *Clock) ObserveAndAdvance(t Time, d time.Duration) Time {
	if d < 0 {
		d = 0
	}
	for {
		cur := c.now.Load()
		next := cur
		if int64(t) > next {
			next = int64(t)
		}
		next += int64(d)
		if c.now.CompareAndSwap(cur, next) {
			return Time(next)
		}
	}
}

// CostModel holds the calibrated virtual-time costs of the simulated
// substrate. All durations are virtual time.
type CostModel struct {
	// Network (3 Mbit Ethernet, per DESIGN.md §6).

	// WireByteTime is the time one byte occupies the wire, including
	// encoding overhead (8 bits at 3 Mbit/s plus framing slack).
	WireByteTime time.Duration
	// FrameOverheadBytes is added to every frame for preamble, Ethernet
	// header and CRC.
	FrameOverheadBytes int
	// MinFrameBytes is the minimum Ethernet frame size.
	MinFrameBytes int
	// RemoteDriverFloor is the unavoidable per-packet cost of pushing a
	// frame through the network interface on both hosts combined — the
	// "maximum speed at which a workstation can write packets" floor the
	// paper compares program loading against.
	RemoteDriverFloor time.Duration
	// RemoteProtocolExtra is the additional per-packet kernel IPC protocol
	// cost (address mapping, transaction bookkeeping, timers) beyond the
	// raw driver floor.
	RemoteProtocolExtra time.Duration
	// MaxDataPerPacket bounds the data bytes carried by one packet of a
	// MoveTo/MoveFrom bulk transfer.
	MaxDataPerPacket int

	// Local IPC.

	// LocalHopFixed is the fixed kernel cost of delivering a message
	// between two processes on the same host (one direction).
	LocalHopFixed time.Duration
	// LocalByteTime is the per-byte copy cost of a local delivery.
	LocalByteTime time.Duration

	// Processing.

	// ClientStubCost covers building a request message and processing the
	// reply in the client run-time stubs.
	ClientStubCost time.Duration
	// ServerDispatchCost covers receiving a request and dispatching on its
	// operation code in a server main loop.
	ServerDispatchCost time.Duration
	// NameParseByteCost is charged per byte of a character-string name
	// scanned by a server.
	NameParseByteCost time.Duration
	// ContextLookupCost is charged per component looked up in a context.
	ContextLookupCost time.Duration
	// PrefixRewriteCost is the context prefix server's per-request cost
	// beyond parsing and lookup: re-validating the standard CSname fields,
	// scanning its prefix table, rewriting the message, and setting up the
	// forward. Calibrated to the paper's measured ≈3.9 ms prefix overhead
	// on the 10 MHz MC68000 (§6).
	PrefixRewriteCost time.Duration
	// DescriptorFabricateCost is charged per object-description record a
	// server fabricates on demand (§5.6).
	DescriptorFabricateCost time.Duration
	// GetPidLocalCost is a local kernel service-table lookup.
	GetPidLocalCost time.Duration

	// Storage.

	// DiskPageTime is the service time for one page from the simulated
	// disk ("a disk delivering a 512 byte page every 15 milliseconds").
	DiskPageTime time.Duration
	// DiskPageSize is the disk page size in bytes.
	DiskPageSize int

	// Fault handling.

	// RetransmitTimeout is the kernel packet retransmission interval used
	// when the network drops a packet.
	RetransmitTimeout time.Duration
}

// DefaultModel returns the cost model calibrated to the paper's testbed.
// See DESIGN.md §6 for the derivation of each constant.
func DefaultModel() *CostModel {
	return &CostModel{
		WireByteTime:        2830 * time.Nanosecond, // ≈3 Mbit/s with framing slack
		FrameOverheadBytes:  26,
		MinFrameBytes:       64,
		RemoteDriverFloor:   800 * time.Microsecond,
		RemoteProtocolExtra: 300 * time.Microsecond,
		MaxDataPerPacket:    512,

		LocalHopFixed: 350 * time.Microsecond,
		LocalByteTime: 150 * time.Nanosecond,

		ClientStubCost:          120 * time.Microsecond,
		ServerDispatchCost:      80 * time.Microsecond,
		NameParseByteCost:       1500 * time.Nanosecond,
		ContextLookupCost:       130 * time.Microsecond,
		PrefixRewriteCost:       3500 * time.Microsecond,
		DescriptorFabricateCost: 150 * time.Microsecond,
		GetPidLocalCost:         50 * time.Microsecond,

		DiskPageTime: 15 * time.Millisecond,
		DiskPageSize: 512,

		RetransmitTimeout: 100 * time.Millisecond,
	}
}

// Model10Mbit returns the cost model for the testbed's 10 Mbit Ethernet
// segments (§3 mentions both 3 and 10 Mbit). Only the wire rate changes:
// the per-packet kernel and driver costs are CPU-bound on the 10 MHz
// workstations, which is why the paper's transaction times were dominated
// by processing, not wire time.
func Model10Mbit() *CostModel {
	m := DefaultModel()
	m.WireByteTime = 850 * time.Nanosecond // ≈10 Mbit/s with framing slack
	return m
}

// frameBytes returns the on-wire size of a frame carrying n payload bytes.
func (m *CostModel) frameBytes(n int) int {
	b := n + m.FrameOverheadBytes
	if b < m.MinFrameBytes {
		b = m.MinFrameBytes
	}
	return b
}

// WireTime returns the wire occupancy of a single frame carrying n payload
// bytes.
func (m *CostModel) WireTime(n int) time.Duration {
	return time.Duration(m.frameBytes(n)) * m.WireByteTime
}

// RemoteHop returns the one-way latency of a single message of n payload
// bytes between two hosts: per-packet fixed costs plus wire time. Messages
// larger than MaxDataPerPacket are charged as multiple packets.
func (m *CostModel) RemoteHop(n int) time.Duration {
	perPacketFixed := m.RemoteDriverFloor + m.RemoteProtocolExtra
	if n <= m.MaxDataPerPacket {
		return perPacketFixed + m.WireTime(n)
	}
	var d time.Duration
	for n > 0 {
		chunk := n
		if chunk > m.MaxDataPerPacket {
			chunk = m.MaxDataPerPacket
		}
		d += perPacketFixed + m.WireTime(chunk)
		n -= chunk
	}
	return d
}

// RemoteHopFloor is the one-way latency of the same transfer at the
// driver-floor rate, with no IPC protocol overhead — the reference rate
// the paper compares bulk transfers against.
func (m *CostModel) RemoteHopFloor(n int) time.Duration {
	var d time.Duration
	for {
		chunk := n
		if chunk > m.MaxDataPerPacket {
			chunk = m.MaxDataPerPacket
		}
		d += m.RemoteDriverFloor + m.WireTime(chunk)
		n -= chunk
		if n <= 0 {
			return d
		}
	}
}

// MinRemoteDelay is the smallest possible cross-host one-way latency
// under this model: the per-packet driver floor and protocol cost plus
// the wire occupancy of a minimum-size frame. No message between
// distinct hosts can arrive sooner, which makes it the conservative
// lookahead bound the sharded execution engine synchronizes on
// (PROTOCOL.md §12): a lane known to be quiet until virtual time T
// cannot affect any other host before T + MinRemoteDelay.
func (m *CostModel) MinRemoteDelay() time.Duration {
	return m.RemoteDriverFloor + m.RemoteProtocolExtra + m.WireTime(0)
}

// LocalHop returns the one-way latency of delivering a message of n bytes
// between two processes on the same host.
func (m *CostModel) LocalHop(n int) time.Duration {
	return m.LocalHopFixed + time.Duration(n)*m.LocalByteTime
}

// Hop returns the one-way latency for n payload bytes, local or remote.
func (m *CostModel) Hop(n int, sameHost bool) time.Duration {
	if sameHost {
		return m.LocalHop(n)
	}
	return m.RemoteHop(n)
}

// NameParse returns the cost of scanning n bytes of a CSname.
func (m *CostModel) NameParse(n int) time.Duration {
	return time.Duration(n) * m.NameParseByteCost
}

// Milliseconds renders a virtual duration as fractional milliseconds, the
// unit the paper reports.
func Milliseconds(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}
