package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// toyServer is a minimal CSNH server over a MapStore: objects are byte
// blobs opened as vio instances, contexts can be listed as context
// directories. It exists to exercise the protocol skeleton; the real
// servers live in their own packages.
type toyServer struct {
	srv   *Server
	store *MapStore
	reg   *vio.Registry

	mu      sync.Mutex
	objects map[uint32][]byte
	nextObj uint32
}

func startToyServer(t *testing.T, h *kernel.Host, name string) *toyServer {
	t.Helper()
	ts := &toyServer{
		store:   NewMapStore(),
		reg:     vio.NewRegistry(),
		objects: make(map[uint32][]byte),
	}
	proc, err := h.NewProcess(name)
	if err != nil {
		t.Fatal(err)
	}
	ts.srv = NewServer(proc, ts.store, ts)
	go ts.srv.Run()
	t.Cleanup(proc.Destroy)
	return ts
}

func (ts *toyServer) addObject(ctx ContextID, name string, content []byte) uint32 {
	ts.mu.Lock()
	ts.nextObj++
	id := ts.nextObj
	ts.objects[id] = content
	ts.mu.Unlock()
	if err := ts.store.Bind(ctx, name, ObjectEntry(proto.TagFile, id)); err != nil {
		panic(err)
	}
	return id
}

func (ts *toyServer) HandleNamed(req *Request, res *Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpQueryObject:
		if res.Entry == nil {
			return ErrorReplyMsg(proto.ErrNotFound)
		}
		if res.Entry.Object == nil {
			return ErrorReplyMsg(proto.ErrNotAContext)
		}
		ts.mu.Lock()
		content := ts.objects[res.Entry.Object.ID]
		ts.mu.Unlock()
		d := proto.Descriptor{
			Tag:      proto.TagFile,
			ObjectID: res.Entry.Object.ID,
			Size:     uint32(len(content)),
			Name:     res.Last,
		}
		reply := OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpCreateInstance:
		mode := proto.OpenMode(req.Msg)
		if mode&proto.ModeDirectory != 0 {
			ctx, ok := res.ResolvesToContext()
			if !ok {
				return ErrorReplyMsg(proto.ErrNotAContext)
			}
			names, err := ts.store.Names(ctx)
			if err != nil {
				return ErrorReplyMsg(err)
			}
			records := make([]proto.Descriptor, 0, len(names))
			for _, n := range names {
				e, err := ts.store.Lookup(ctx, n)
				if err != nil {
					continue
				}
				d := proto.Descriptor{Name: n}
				switch {
				case e.Object != nil:
					d.Tag = e.Object.Tag
					d.ObjectID = e.Object.ID
				case e.Local != nil:
					d.Tag = proto.TagDirectory
					d.ObjectID = uint32(*e.Local)
				case e.Remote != nil:
					d.Tag = proto.TagLink
					d.TypeSpecific = [2]uint32{uint32(e.Remote.Server), uint32(e.Remote.Ctx)}
				}
				records = append(records, d)
			}
			id, err := ts.reg.Open(vio.NewDirectoryInstance(records, nil), res.Name)
			if err != nil {
				return ErrorReplyMsg(err)
			}
			inst, _ := ts.reg.Get(id)
			info := inst.Info()
			info.ID = id
			reply := OkReply()
			proto.SetInstanceInfo(reply, info)
			return reply
		}
		if res.Entry == nil || res.Entry.Object == nil {
			return ErrorReplyMsg(proto.ErrNotFound)
		}
		ts.mu.Lock()
		content := ts.objects[res.Entry.Object.ID]
		ts.mu.Unlock()
		id, err := ts.reg.Open(vio.NewBytesInstance(content), res.Name)
		if err != nil {
			return ErrorReplyMsg(err)
		}
		inst, _ := ts.reg.Get(id)
		info := inst.Info()
		info.ID = id
		reply := OkReply()
		proto.SetInstanceInfo(reply, info)
		return reply

	case proto.OpRemoveObject:
		if res.Entry == nil {
			return ErrorReplyMsg(proto.ErrNotFound)
		}
		if err := ts.store.Unbind(res.Final, res.Last); err != nil {
			return ErrorReplyMsg(err)
		}
		return OkReply()

	default:
		return ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

func (ts *toyServer) HandleOp(req *Request) *proto.Message {
	if reply := ts.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	return ErrorReplyMsg(proto.ErrIllegalRequest)
}

func newClientProc(t *testing.T, h *kernel.Host) *kernel.Process {
	t.Helper()
	p, err := h.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Destroy)
	return p
}

func TestServerQueryObject(t *testing.T) {
	k := newDomain()
	h := k.NewHost("srv")
	ts := startToyServer(t, h, "toy")
	ts.addObject(CtxDefault, "hello.txt", []byte("hello world"))
	client := newClientProc(t, k.NewHost("ws"))

	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "hello.txt")
	reply, err := Transact(client, ts.srv.PID(), req)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tag != proto.TagFile || d.Name != "hello.txt" || d.Size != 11 {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestServerQueryMissing(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "nope")
	if _, err := Transact(client, ts.srv.PID(), req); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerOpenReadInstance(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	content := strings.Repeat("V-System naming! ", 100)
	ts.addObject(CtxDefault, "doc", []byte(content))
	client := newClientProc(t, k.NewHost("ws"))

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(CtxDefault), "doc")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := Transact(client, ts.srv.PID(), req)
	if err != nil {
		t.Fatal(err)
	}
	f := vio.NewFile(client, ts.srv.PID(), proto.GetInstanceInfo(reply))
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != content {
		t.Fatalf("read %d bytes, want %d", len(got), len(content))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if ts.reg.Count() != 0 {
		t.Fatal("instance not released")
	}
}

func TestServerInstanceNameInverse(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	ts.addObject(CtxDefault, "doc", []byte("x"))
	client := newClientProc(t, k.NewHost("ws"))

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(CtxDefault), "doc")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := Transact(client, ts.srv.PID(), req)
	if err != nil {
		t.Fatal(err)
	}
	f := vio.NewFile(client, ts.srv.PID(), proto.GetInstanceInfo(reply))
	name, err := f.InstanceName()
	if err != nil || name != "doc" {
		t.Fatalf("InstanceName = %q, %v", name, err)
	}
}

func TestServerContextDirectory(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	ts.store.AddContext(5)
	if err := ts.store.Bind(CtxDefault, "sub", ContextEntry(5)); err != nil {
		t.Fatal(err)
	}
	ts.addObject(CtxDefault, "a.txt", []byte("A"))
	ts.addObject(CtxDefault, "b.txt", []byte("BB"))
	client := newClientProc(t, k.NewHost("ws"))

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(CtxDefault), "")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
	reply, err := Transact(client, ts.srv.PID(), req)
	if err != nil {
		t.Fatal(err)
	}
	f := vio.NewFile(client, ts.srv.PID(), proto.GetInstanceInfo(reply))
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("directory has %d records, want 3", len(records))
	}
	byName := make(map[string]proto.Descriptor)
	for _, d := range records {
		byName[d.Name] = d
	}
	if byName["a.txt"].Tag != proto.TagFile || byName["sub"].Tag != proto.TagDirectory {
		t.Fatalf("records = %+v", byName)
	}
}

func TestServerMapContext(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	ts.store.AddContext(9)
	if err := ts.store.Bind(CtxDefault, "dir", ContextEntry(9)); err != nil {
		t.Fatal(err)
	}
	client := newClientProc(t, k.NewHost("ws"))

	pair, err := MapContext(client, ts.srv.Pair(CtxDefault), "dir")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Server != ts.srv.PID() || pair.Ctx != 9 {
		t.Fatalf("pair = %v", pair)
	}
}

func TestServerMapContextOnObjectFails(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	ts.addObject(CtxDefault, "obj", []byte("x"))
	client := newClientProc(t, k.NewHost("ws"))
	if _, err := MapContext(client, ts.srv.Pair(CtxDefault), "obj"); !errors.Is(err, proto.ErrNotAContext) {
		t.Fatalf("err = %v", err)
	}
}

// TestServerForwarding is the §5.4 mapping procedure across servers: a
// name that crosses into another server's tree is forwarded with rewritten
// context id and name index, and the final server replies directly to the
// client.
func TestServerForwarding(t *testing.T) {
	k := newDomain()
	tsA := startToyServer(t, k.NewHost("srvA"), "A")
	tsB := startToyServer(t, k.NewHost("srvB"), "B")

	tsB.store.AddContext(30)
	if err := tsB.store.Bind(CtxDefault, "deep", ContextEntry(30)); err != nil {
		t.Fatal(err)
	}
	tsB.addObject(30, "leaf.txt", []byte("payload on B"))
	// A's tree points into B's tree (Figure 4's curved arrow).
	if err := tsA.store.Bind(CtxDefault, "onB", RemoteEntry(tsB.srv.Pair(CtxDefault))); err != nil {
		t.Fatal(err)
	}

	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "onB/deep/leaf.txt")
	reply, err := Transact(client, tsA.srv.PID(), req)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "leaf.txt" || d.Size != uint32(len("payload on B")) {
		t.Fatalf("descriptor = %+v", d)
	}
}

// TestServerForwardedMapContext: mapping a name that lands on another
// server returns the *final* server's pid in the reply, which is why the
// reply carries the pid explicitly.
func TestServerForwardedMapContext(t *testing.T) {
	k := newDomain()
	tsA := startToyServer(t, k.NewHost("srvA"), "A")
	tsB := startToyServer(t, k.NewHost("srvB"), "B")
	tsB.store.AddContext(30)
	if err := tsB.store.Bind(CtxDefault, "deep", ContextEntry(30)); err != nil {
		t.Fatal(err)
	}
	if err := tsA.store.Bind(CtxDefault, "onB", RemoteEntry(tsB.srv.Pair(CtxDefault))); err != nil {
		t.Fatal(err)
	}

	client := newClientProc(t, k.NewHost("ws"))
	pair, err := MapContext(client, tsA.srv.Pair(CtxDefault), "onB/deep")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Server != tsB.srv.PID() || pair.Ctx != 30 {
		t.Fatalf("pair = %v, want server B ctx 30", pair)
	}
}

// TestServerForwardingUnknownOp: a CSNH server can forward a CSname
// request whose operation code it does not understand, because the
// standard fields suffice for interpretation (§5.3).
func TestServerForwardingUnknownOp(t *testing.T) {
	k := newDomain()
	tsA := startToyServer(t, k.NewHost("srvA"), "A")
	tsB := startToyServer(t, k.NewHost("srvB"), "B")
	tsB.addObject(CtxDefault, "obj", []byte("remote object"))
	if err := tsA.store.Bind(CtxDefault, "onB", RemoteEntry(tsB.srv.Pair(CtxDefault))); err != nil {
		t.Fatal(err)
	}
	client := newClientProc(t, k.NewHost("ws"))

	// RemoveObject is "unknown" to A in the sense that A never resolves
	// it locally here; it must still forward cleanly.
	req := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(req, uint32(CtxDefault), "onB/obj")
	if _, err := Transact(client, tsA.srv.PID(), req); err != nil {
		t.Fatal(err)
	}
	// The object is gone from B.
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(CtxDefault), "obj")
	if _, err := Transact(client, tsB.srv.PID(), q); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("object should have been removed on B: %v", err)
	}
}

func TestServerForwardChainThreeServers(t *testing.T) {
	k := newDomain()
	tsA := startToyServer(t, k.NewHost("a"), "A")
	tsB := startToyServer(t, k.NewHost("b"), "B")
	tsC := startToyServer(t, k.NewHost("c"), "C")
	tsC.addObject(CtxDefault, "leaf", []byte("three hops"))
	if err := tsB.store.Bind(CtxDefault, "toC", RemoteEntry(tsC.srv.Pair(CtxDefault))); err != nil {
		t.Fatal(err)
	}
	if err := tsA.store.Bind(CtxDefault, "toB", RemoteEntry(tsB.srv.Pair(CtxDefault))); err != nil {
		t.Fatal(err)
	}
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "toB/toC/leaf")
	reply, err := Transact(client, tsA.srv.PID(), req)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Name != "leaf" {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
}

func TestServerForwardToDeadServerFailsClient(t *testing.T) {
	k := newDomain()
	tsA := startToyServer(t, k.NewHost("a"), "A")
	deadPair := ContextPair{Server: kernel.MakePID(99, 1), Ctx: CtxDefault}
	if err := tsA.store.Bind(CtxDefault, "dangling", RemoteEntry(deadPair)); err != nil {
		t.Fatal(err)
	}
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "dangling/x")
	if _, err := Transact(client, tsA.srv.PID(), req); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerBadCSNameFields(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "abc")
	req.F[2] = 1000 // corrupt name length
	if _, err := Transact(client, ts.srv.PID(), req); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerIllegalOp(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.Code(0x4242)}
	if _, err := Transact(client, ts.srv.PID(), req); !errors.Is(err, proto.ErrIllegalRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransactMapsKernelErrors(t *testing.T) {
	k := newDomain()
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpEcho}
	if _, err := Transact(client, kernel.MakePID(9, 9), req); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestIsNotFoundHelper(t *testing.T) {
	if !IsNotFound(proto.ErrNotFound) || IsNotFound(proto.ErrBadContext) || IsNotFound(nil) {
		t.Fatal("IsNotFound misclassifies")
	}
}

func TestServerStats(t *testing.T) {
	k := newDomain()
	tsA := startToyServer(t, k.NewHost("srvA"), "A")
	tsB := startToyServer(t, k.NewHost("srvB"), "B")
	tsB.addObject(CtxDefault, "obj", []byte("x"))
	if err := tsA.store.Bind(CtxDefault, "onB", RemoteEntry(tsB.srv.Pair(CtxDefault))); err != nil {
		t.Fatal(err)
	}
	client := newClientProc(t, k.NewHost("ws"))

	// One forwarded query, one local failure, one non-name op.
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "onB/obj")
	if _, err := Transact(client, tsA.srv.PID(), req); err != nil {
		t.Fatal(err)
	}
	bad := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(bad, uint32(CtxDefault), "missing")
	if _, err := Transact(client, tsA.srv.PID(), bad); !errors.Is(err, proto.ErrNotFound) {
		t.Fatal(err)
	}
	if _, err := Transact(client, tsA.srv.PID(), &proto.Message{Op: proto.OpQueryInstance}); err == nil {
		t.Fatal("expected instance error")
	}

	a := tsA.srv.Stats()
	if a.Requests != 3 || a.CSNameRequests != 2 || a.Forwarded != 1 || a.Failures != 2 {
		t.Fatalf("A stats = %+v", a)
	}
	b := tsB.srv.Stats()
	if b.Requests != 1 || b.CSNameRequests != 1 || b.Forwarded != 0 || b.Failures != 0 {
		t.Fatalf("B stats = %+v", b)
	}
}
