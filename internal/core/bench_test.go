package core

import (
	"testing"

	"repro/internal/proto"
)

// BenchmarkInterpret measures the pure §5.4 name-mapping procedure,
// excluding IPC — the per-component lookup cost that the virtual-time
// ContextLookupCost constant stands in for.
func BenchmarkInterpret(b *testing.B) {
	s := buildStore()
	p := testProcQuick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, fwd, err := Interpret(s, p, "users/mann/naming.mss", 0, CtxDefault)
		if err != nil || fwd != nil || res.Entry == nil {
			b.Fatalf("res=%v fwd=%v err=%v", res, fwd, err)
		}
	}
}

func BenchmarkInterpretDeep(b *testing.B) {
	s := NewMapStore()
	ctx := CtxDefault
	name := ""
	for i := 0; i < 16; i++ {
		next := ContextID(1000 + i)
		s.AddContext(next)
		comp := string(rune('a' + i))
		if err := s.Bind(ctx, comp, ContextEntry(next)); err != nil {
			b.Fatal(err)
		}
		if name != "" {
			name += "/"
		}
		name += comp
		ctx = next
	}
	if err := s.Bind(ctx, "leaf", ObjectEntry(proto.TagFile, 1)); err != nil {
		b.Fatal(err)
	}
	name += "/leaf"
	p := testProcQuick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Interpret(s, p, name, 0, CtxDefault); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !MatchName("*@su-score.*", "cheriton@su-score.ARPA") {
			b.Fatal("no match")
		}
	}
}

func BenchmarkFilterRecords(b *testing.B) {
	records := make([]proto.Descriptor, 200)
	for i := range records {
		suffix := ".dat"
		if i%20 == 0 {
			suffix = ".mss"
		}
		records[i] = proto.Descriptor{Name: "file" + string(rune('a'+i%26)) + suffix}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch := make([]proto.Descriptor, len(records))
		copy(scratch, records)
		FilterRecords(scratch, "*.mss")
	}
}
