// Package core implements the paper's primary contribution: the V-System
// name-handling protocol (§5). It provides contexts, the standard
// name-mapping procedure with cross-server forwarding (§5.4), a server
// skeleton any character-string-name-handling (CSNH) server embeds, and
// context-directory support (§5.6).
//
// Name interpretation is distributed: each server implements the naming of
// the objects it provides, plugging its object model into the engine via
// the ContextStore interface. The engine imposes only the protocol's
// minimal restrictions — left-to-right interpretation is the convention
// for hierarchical servers, but a store is free to consume a whole name
// any way it likes (§5.4), as the mail server demonstrates.
package core

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/proto"
)

// ContextID is a numeric identifier for a context (a set of
// (name, object) tuples) within one server. Ordinary context identifiers
// are server-assigned and valid only as long as the server process exists
// (§5.2).
type ContextID uint32

// CtxDefault is the standard default context used when a server
// implements only one context, and the conventional root of hierarchical
// servers (§5.2).
const CtxDefault ContextID = 0

// Well-known context identifiers with fixed values, specifying generic
// name spaces (§5.2).
const (
	CtxHome        ContextID = 0xFFFF0001 // the user's home directory
	CtxStdPrograms ContextID = 0xFFFF0002 // the standard program directory
	CtxPublic      ContextID = 0xFFFF0003 // the server's public root
)

// IsWellKnown reports whether ctx is one of the fixed well-known ids.
func IsWellKnown(ctx ContextID) bool { return ctx >= 0xFFFF0000 }

// ContextPair fully specifies a context in the V-System: the process that
// interprets names in it, and the context identifier within that server
// (§5.2).
type ContextPair struct {
	Server kernel.PID
	Ctx    ContextID
}

// String renders the pair for diagnostics.
func (cp ContextPair) String() string {
	return fmt.Sprintf("(%v, ctx %#x)", cp.Server, uint32(cp.Ctx))
}

// ObjectRef is a server-internal reference to a terminal (non-context)
// object: its descriptor tag and low-level identifier.
type ObjectRef struct {
	Tag proto.DescriptorTag
	ID  uint32
}

// Entry is the result of looking one name component up in a context.
// Exactly one of the three fields is set.
type Entry struct {
	// Object is a terminal object implemented by this server.
	Object *ObjectRef
	// Local is a sub-context on this server.
	Local *ContextID
	// Remote is a context on another server; interpretation continues
	// there by forwarding the request (§5.4).
	Remote *ContextPair
}

// Kind describes which arm of the Entry is set, for diagnostics.
func (e Entry) Kind() string {
	switch {
	case e.Object != nil:
		return "object"
	case e.Local != nil:
		return "context"
	case e.Remote != nil:
		return "remote-context"
	default:
		return "empty"
	}
}

// ObjectEntry, ContextEntry and RemoteEntry build the three Entry arms.
func ObjectEntry(tag proto.DescriptorTag, id uint32) Entry {
	return Entry{Object: &ObjectRef{Tag: tag, ID: id}}
}

func ContextEntry(ctx ContextID) Entry { return Entry{Local: &ctx} }

func RemoteEntry(pair ContextPair) Entry { return Entry{Remote: &pair} }

// ContextStore is the object model a server plugs into the name-mapping
// engine: a mapping from (context, component) to entries.
type ContextStore interface {
	// NormalizeContext validates a context id from a request and maps
	// well-known ids (home directory, standard programs, ...) to the
	// concrete context that implements them. It returns
	// proto.ErrBadContext for identifiers this server does not implement.
	NormalizeContext(ctx ContextID) (ContextID, error)
	// LookupComponent looks one name component up in a context,
	// returning proto.ErrNotFound if the component is unbound and
	// proto.ErrBadContext if the context is invalid.
	LookupComponent(ctx ContextID, component string) (Entry, error)
}

// Resolution is the outcome of interpreting a CSname as far as this
// server: where interpretation ended and what the final component bound
// to.
type Resolution struct {
	// Name is the full name from the request, Index the position where
	// this server began interpreting.
	Name  string
	Index int
	// Final is the context in which the final component was (or would
	// be) interpreted.
	Final ContextID
	// Last is the final name component. It is empty when the name
	// resolved to the context Final itself (an empty name, or a name
	// ending in the separator).
	Last string
	// Entry is the binding of the final component; nil when the
	// component is unbound (the caller decides between create-on-open
	// and not-found) or when Last is empty.
	Entry *Entry
}

// ResolvesToContext reports whether the resolution denotes a context on
// this server rather than a terminal object, and returns it.
func (r *Resolution) ResolvesToContext() (ContextID, bool) {
	if r.Last == "" {
		return r.Final, true
	}
	if r.Entry != nil && r.Entry.Local != nil {
		return *r.Entry.Local, true
	}
	return 0, false
}

// ContextOf returns the context the resolution denotes, or the standard
// error distinguishing an unbound name (ErrNotFound) from a name bound
// to a non-context object (ErrNotAContext).
func (r *Resolution) ContextOf() (ContextID, error) {
	if ctx, ok := r.ResolvesToContext(); ok {
		return ctx, nil
	}
	if r.Entry == nil {
		return 0, proto.ErrNotFound
	}
	return 0, proto.ErrNotAContext
}

// Forward directs the caller to pass the request on to the server
// implementing the next context, with interpretation continuing at Index
// in Pair.Ctx (§5.4).
type Forward struct {
	Pair  ContextPair
	Index int
}

// Separator is the conventional component separator of hierarchical V
// name spaces. The protocol itself imposes no syntax beyond the context
// prefix brackets; separators are a server convention (§5.4).
const Separator = '/'

// NameError reports where name interpretation failed: the component, its
// byte index within the name, the context it was interpreted in, and the
// server that reported the failure. It addresses the paper's §7
// observation that failures after cross-server forwarding are hard to
// explain to the user.
type NameError struct {
	Component string
	Index     int
	Ctx       ContextID
	Server    kernel.PID
	Err       error
}

// Error implements error.
func (e *NameError) Error() string {
	where := ""
	if e.Server != kernel.NilPID {
		where = fmt.Sprintf(" by server %v", e.Server)
	}
	return fmt.Sprintf("%v: component %q (byte %d, context %#x)%s",
		e.Err, e.Component, e.Index, uint32(e.Ctx), where)
}

// Unwrap exposes the underlying standard error for errors.Is.
func (e *NameError) Unwrap() error { return e.Err }

// Interpret runs the standard name-mapping procedure (§5.4) over a
// hierarchical store: starting at index in the name and context ctx, each
// component is looked up in the current context; context bindings update
// the current context; a remote binding stops interpretation and requests
// a forward. Parsing and lookup costs are charged to proc's virtual
// clock.
//
// A leading separator resets interpretation to the server's default
// (root) context, as with absolute pathnames.
func Interpret(store ContextStore, proc *kernel.Process, name string, index int, ctx ContextID) (*Resolution, *Forward, error) {
	return interpret(store, proc, name, index, ctx, true)
}

// InterpretBinding is Interpret for operations on the *binding* of the
// final component rather than the entity it names (delete-context-name,
// §5.7): a final component bound to a remote context resolves here, to
// the local binding, instead of being forwarded to the remote server.
func InterpretBinding(store ContextStore, proc *kernel.Process, name string, index int, ctx ContextID) (*Resolution, *Forward, error) {
	return interpret(store, proc, name, index, ctx, false)
}

func interpret(store ContextStore, proc *kernel.Process, name string, index int, ctx ContextID, forwardFinal bool) (*Resolution, *Forward, error) {
	model := proc.Kernel().Model()
	if index < 0 || index > len(name) {
		return nil, nil, fmt.Errorf("%w: name index %d out of range", proto.ErrBadArgs, index)
	}
	proc.ChargeCompute(model.NameParse(len(name) - index))

	pos := index
	if pos < len(name) && name[pos] == Separator {
		ctx = CtxDefault
		for pos < len(name) && name[pos] == Separator {
			pos++
		}
	}
	cur, err := store.NormalizeContext(ctx)
	if err != nil {
		return nil, nil, err
	}

	res := &Resolution{Name: name, Index: index, Final: cur}
	for pos < len(name) {
		// Scan one component.
		end := pos
		for end < len(name) && name[end] != Separator {
			end++
		}
		component := name[pos:end]
		next := end
		for next < len(name) && name[next] == Separator {
			next++
		}
		last := next >= len(name)

		if component == "." || component == "" {
			pos = next
			continue
		}

		proc.ChargeCompute(model.ContextLookupCost)
		entry, err := store.LookupComponent(cur, component)
		switch {
		case err != nil && errorsIsNotFound(err):
			if last {
				// Unbound final component: the operation decides whether
				// this is an error or a creation site.
				res.Final = cur
				res.Last = component
				res.Entry = nil
				return res, nil, nil
			}
			return nil, nil, &NameError{Component: component, Index: pos, Ctx: cur, Err: proto.ErrNotFound}
		case err != nil:
			return nil, nil, err
		}

		if entry.Remote != nil && (forwardFinal || !last) {
			// Interpretation continues at another server: forward with
			// the index at the first character not yet parsed (§5.4).
			return nil, &Forward{Pair: *entry.Remote, Index: next}, nil
		}
		if last {
			res.Final = cur
			res.Last = component
			e := entry
			res.Entry = &e
			return res, nil, nil
		}
		if entry.Local == nil {
			return nil, nil, &NameError{Component: component, Index: pos, Ctx: cur, Err: proto.ErrNotAContext}
		}
		cur = *entry.Local
		res.Final = cur
		pos = next
	}
	// The name (or its remainder) named the context itself.
	res.Final = cur
	res.Last = ""
	res.Entry = nil
	return res, nil, nil
}

func errorsIsNotFound(err error) bool {
	return errors.Is(err, proto.ErrNotFound)
}

// MatchName reports whether a name matches a glob pattern: '*' matches
// any (possibly empty) run of bytes, '?' matches any single byte, and
// every other byte matches itself. It backs the §5.6 context-directory
// pattern extension. An empty pattern matches everything.
func MatchName(pattern, name string) bool {
	if pattern == "" {
		return true
	}
	// Iterative glob with single-star backtracking.
	var (
		p, n  int
		starP = -1
		starN int
	)
	for n < len(name) {
		switch {
		// The star case must come first: a '*' in the pattern is a
		// wildcard even when the name contains a literal '*' at the same
		// position.
		case p < len(pattern) && pattern[p] == '*':
			starP = p
			starN = n
			p++
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == name[n]):
			p++
			n++
		case starP >= 0:
			starN++
			p = starP + 1
			n = starN
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// FilterRecords returns the description records whose names match the
// pattern — the server-side filtering of the §5.6 extension, saving the
// collation and transmission of unwanted records.
func FilterRecords(records []proto.Descriptor, pattern string) []proto.Descriptor {
	if pattern == "" {
		return records
	}
	out := records[:0]
	for _, d := range records {
		if MatchName(pattern, d.Name) {
			out = append(out, d)
		}
	}
	return out
}
