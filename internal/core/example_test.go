package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// ExampleInterpret shows the §5.4 name-mapping procedure over a small
// hierarchical store, including the forwarding decision when a component
// points into another server's name space.
func ExampleInterpret() {
	store := core.NewMapStore()
	store.AddContext(10)
	_ = store.Bind(core.CtxDefault, "users", core.ContextEntry(10))
	_ = store.Bind(10, "naming.mss", core.ObjectEntry(proto.TagFile, 42))
	_ = store.Bind(core.CtxDefault, "elsewhere",
		core.RemoteEntry(core.ContextPair{Server: kernel.MakePID(5, 1), Ctx: 7}))

	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	proc, _ := k.NewHost("ws").NewProcess("interp")

	res, _, _ := core.Interpret(store, proc, "users/naming.mss", 0, core.CtxDefault)
	fmt.Printf("object %d in context %d\n", res.Entry.Object.ID, res.Final)

	_, fwd, _ := core.Interpret(store, proc, "elsewhere/far/away", 0, core.CtxDefault)
	fmt.Printf("forward to %v, resume at %q\n", fwd.Pair, "elsewhere/far/away"[fwd.Index:])

	// Output:
	// object 42 in context 10
	// forward to (pid(5.1), ctx 0x7), resume at "far/away"
}

// ExampleMatchName shows the §5.6 context-directory pattern matching.
func ExampleMatchName() {
	for _, name := range []string{"naming.mss", "ipc.mss", "todo.txt"} {
		fmt.Println(name, core.MatchName("*.mss", name))
	}
	// Output:
	// naming.mss true
	// ipc.mss true
	// todo.txt false
}
