package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/proto"
)

// MapStore is a reusable in-memory ContextStore for servers whose name
// spaces are simple tables: flat or shallow hierarchies of bindings, with
// well-known-context aliasing. Larger servers (the file server) implement
// ContextStore over their own structures instead.
type MapStore struct {
	mu       sync.RWMutex
	contexts map[ContextID]map[string]Entry
	aliases  map[ContextID]ContextID
}

// NewMapStore returns a store containing only the default (root) context.
func NewMapStore() *MapStore {
	return &MapStore{
		contexts: map[ContextID]map[string]Entry{CtxDefault: {}},
		aliases:  make(map[ContextID]ContextID),
	}
}

// AddContext creates an (empty) context with the given id.
func (s *MapStore) AddContext(ctx ContextID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.contexts[ctx]; !ok {
		s.contexts[ctx] = make(map[string]Entry)
	}
}

// Alias maps a well-known context id onto a concrete context of this
// server (§5.2).
func (s *MapStore) Alias(wellKnown, concrete ContextID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aliases[wellKnown] = concrete
}

// Bind defines name in ctx. It fails with proto.ErrDuplicateName if the
// name is already bound.
func (s *MapStore) Bind(ctx ContextID, name string, e Entry) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", proto.ErrBadArgs)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.contexts[s.resolveAliasLocked(ctx)]
	if !ok {
		return fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	if _, dup := c[name]; dup {
		return fmt.Errorf("%q: %w", name, proto.ErrDuplicateName)
	}
	c[name] = e
	return nil
}

// Rebind defines or replaces name in ctx.
func (s *MapStore) Rebind(ctx ContextID, name string, e Entry) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", proto.ErrBadArgs)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.contexts[s.resolveAliasLocked(ctx)]
	if !ok {
		return fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	c[name] = e
	return nil
}

// Unbind removes name from ctx.
func (s *MapStore) Unbind(ctx ContextID, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.contexts[s.resolveAliasLocked(ctx)]
	if !ok {
		return fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	if _, bound := c[name]; !bound {
		return fmt.Errorf("%q: %w", name, proto.ErrNotFound)
	}
	delete(c, name)
	return nil
}

// Names returns the sorted names bound in ctx.
func (s *MapStore) Names(ctx ContextID) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contexts[s.resolveAliasLocked(ctx)]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Lookup returns the binding of name in ctx.
func (s *MapStore) Lookup(ctx ContextID, name string) (Entry, error) {
	return s.LookupComponent(ctx, name)
}

func (s *MapStore) resolveAliasLocked(ctx ContextID) ContextID {
	if concrete, ok := s.aliases[ctx]; ok {
		return concrete
	}
	return ctx
}

// NormalizeContext implements ContextStore.
func (s *MapStore) NormalizeContext(ctx ContextID) (ContextID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.resolveAliasLocked(ctx)
	if _, ok := s.contexts[c]; !ok {
		return 0, fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	return c, nil
}

// LookupComponent implements ContextStore.
func (s *MapStore) LookupComponent(ctx ContextID, component string) (Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contexts[s.resolveAliasLocked(ctx)]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	e, bound := c[component]
	if !bound {
		return Entry{}, fmt.Errorf("%q: %w", component, proto.ErrNotFound)
	}
	return e, nil
}

var _ ContextStore = (*MapStore)(nil)
