package core

import (
	"errors"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

func newDomain() *kernel.Kernel {
	return kernel.New(netsim.New(vtime.DefaultModel(), 1))
}

// buildStore makes a store with the shape:
//
//	/            (ctx 0)
//	  users/     (ctx 10)
//	    mann/    (ctx 11)  with object "naming.mss"
//	    cheriton/(ctx 12)  with object "naming.mss"
//	  tmp/       (ctx 20)
//	  elsewhere -> remote (pid 0x00050001, ctx 7)
func buildStore() *MapStore {
	s := NewMapStore()
	for _, ctx := range []ContextID{10, 11, 12, 20} {
		s.AddContext(ctx)
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(s.Bind(CtxDefault, "users", ContextEntry(10)))
	must(s.Bind(CtxDefault, "tmp", ContextEntry(20)))
	must(s.Bind(CtxDefault, "elsewhere", RemoteEntry(ContextPair{Server: kernel.PID(0x00050001), Ctx: 7})))
	must(s.Bind(10, "mann", ContextEntry(11)))
	must(s.Bind(10, "cheriton", ContextEntry(12)))
	must(s.Bind(11, "naming.mss", ObjectEntry(proto.TagFile, 100)))
	must(s.Bind(12, "naming.mss", ObjectEntry(proto.TagFile, 200)))
	s.Alias(CtxHome, 11)
	return s
}

func testProc(t *testing.T) *kernel.Process {
	t.Helper()
	k := newDomain()
	h := k.NewHost("ws")
	p, err := h.NewProcess("interpreter")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInterpretObject(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, fwd, err := Interpret(s, p, "users/mann/naming.mss", 0, CtxDefault)
	if err != nil || fwd != nil {
		t.Fatalf("err=%v fwd=%v", err, fwd)
	}
	if res.Final != 11 || res.Last != "naming.mss" || res.Entry == nil || res.Entry.Object == nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Entry.Object.ID != 100 {
		t.Fatalf("resolved wrong object: %d", res.Entry.Object.ID)
	}
}

// TestInterpretDependsOnContext is the paper's §5.2 example: the same name
// maps to different files depending on the context it is interpreted in.
func TestInterpretDependsOnContext(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	resA, _, err := Interpret(s, p, "naming.mss", 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	resB, _, err := Interpret(s, p, "naming.mss", 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Entry.Object.ID == resB.Entry.Object.ID {
		t.Fatal("the same name must resolve differently in different contexts")
	}
}

func TestInterpretWellKnownContext(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, _, err := Interpret(s, p, "naming.mss", 0, CtxHome)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry == nil || res.Entry.Object == nil || res.Entry.Object.ID != 100 {
		t.Fatalf("well-known home context resolution = %+v", res)
	}
}

func TestInterpretAbsoluteResetsContext(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	// Starting in ctx 20 (tmp), a leading '/' resets to the root.
	res, _, err := Interpret(s, p, "/users/mann", 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry == nil || res.Entry.Local == nil || *res.Entry.Local != 11 {
		t.Fatalf("res = %+v", res)
	}
}

func TestInterpretEmptyNameIsContextItself(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, _, err := Interpret(s, p, "", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, ok := res.ResolvesToContext()
	if !ok || ctx != 10 {
		t.Fatalf("empty name should resolve to the context itself: %+v", res)
	}
}

func TestInterpretTrailingSlash(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, _, err := Interpret(s, p, "users/mann/", 0, CtxDefault)
	if err != nil {
		t.Fatal(err)
	}
	ctx, ok := res.ResolvesToContext()
	if !ok || ctx != 11 {
		t.Fatalf("trailing slash should resolve to the context: %+v", res)
	}
}

func TestInterpretDotComponents(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, _, err := Interpret(s, p, "./users/./mann/naming.mss", 0, CtxDefault)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry == nil || res.Entry.Object == nil || res.Entry.Object.ID != 100 {
		t.Fatalf("dot components mishandled: %+v", res)
	}
}

func TestInterpretDoubleSlashes(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, _, err := Interpret(s, p, "users//mann//naming.mss", 0, CtxDefault)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry == nil || res.Entry.Object == nil {
		t.Fatalf("double separators mishandled: %+v", res)
	}
}

func TestInterpretUnboundFinalComponent(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, fwd, err := Interpret(s, p, "users/mann/newfile", 0, CtxDefault)
	if err != nil || fwd != nil {
		t.Fatalf("unbound final component must not be an interpret error: %v", err)
	}
	if res.Entry != nil || res.Last != "newfile" || res.Final != 11 {
		t.Fatalf("res = %+v", res)
	}
}

func TestInterpretUnboundMiddleComponentFails(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	_, _, err := Interpret(s, p, "users/nobody/naming.mss", 0, CtxDefault)
	if !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpretObjectInMiddleFails(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	_, _, err := Interpret(s, p, "users/mann/naming.mss/deeper", 0, CtxDefault)
	if !errors.Is(err, proto.ErrNotAContext) {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpretBadContext(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	_, _, err := Interpret(s, p, "x", 0, 999)
	if !errors.Is(err, proto.ErrBadContext) {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpretBadIndex(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	if _, _, err := Interpret(s, p, "abc", 7, CtxDefault); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpretForwardToRemote(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	res, fwd, err := Interpret(s, p, "elsewhere/far/away", 0, CtxDefault)
	if err != nil || res != nil && res.Entry != nil {
		t.Fatalf("err=%v", err)
	}
	if fwd == nil {
		t.Fatal("expected a forward")
	}
	if fwd.Pair.Server != kernel.PID(0x00050001) || fwd.Pair.Ctx != 7 {
		t.Fatalf("forward pair = %v", fwd.Pair)
	}
	// Index points at the first character not yet parsed: "far/away".
	if got := "elsewhere/far/away"[fwd.Index:]; got != "far/away" {
		t.Fatalf("forward index leaves %q unparsed", got)
	}
}

func TestInterpretForwardAtFinalComponent(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	_, fwd, err := Interpret(s, p, "elsewhere", 0, CtxDefault)
	if err != nil {
		t.Fatal(err)
	}
	if fwd == nil || fwd.Index != len("elsewhere") {
		t.Fatalf("final remote component must forward with index at end: %+v", fwd)
	}
}

func TestInterpretResumesAtIndex(t *testing.T) {
	// Simulates the second server's half of a forwarded interpretation.
	s := buildStore()
	p := testProc(t)
	full := "prefixjunk/users/mann/naming.mss"
	idx := len("prefixjunk/")
	res, fwd, err := Interpret(s, p, full, idx, CtxDefault)
	if err != nil || fwd != nil {
		t.Fatalf("err=%v fwd=%v", err, fwd)
	}
	if res.Entry == nil || res.Entry.Object == nil || res.Entry.Object.ID != 100 {
		t.Fatalf("res = %+v", res)
	}
}

func TestInterpretChargesVirtualTime(t *testing.T) {
	s := buildStore()
	p := testProc(t)
	before := p.Now()
	if _, _, err := Interpret(s, p, "users/mann/naming.mss", 0, CtxDefault); err != nil {
		t.Fatal(err)
	}
	m := p.Kernel().Model()
	min := m.NameParse(len("users/mann/naming.mss")) + 3*m.ContextLookupCost
	if got := p.Now() - before; got < min {
		t.Fatalf("interpretation charged %v, want ≥ %v", got, min)
	}
}

func TestInterpretPropertyBoundPathsResolve(t *testing.T) {
	// Property: binding a chain of contexts then an object makes the
	// joined path resolve to that object.
	f := func(rawParts []string, objID uint32) bool {
		s := NewMapStore()
		p := testProcQuick()
		ctx := CtxDefault
		var parts []string
		next := ContextID(1000)
		for _, rp := range rawParts {
			name := sanitize(rp)
			if name == "" {
				continue
			}
			if len(parts) >= 6 {
				break
			}
			s.AddContext(next)
			if err := s.Bind(ctx, name, ContextEntry(next)); err != nil {
				continue // duplicate component name at this level
			}
			parts = append(parts, name)
			ctx = next
			next++
		}
		if err := s.Bind(ctx, "obj", ObjectEntry(proto.TagFile, objID)); err != nil {
			return false
		}
		parts = append(parts, "obj")
		res, fwd, err := Interpret(s, p, strings.Join(parts, "/"), 0, CtxDefault)
		if err != nil || fwd != nil || res.Entry == nil || res.Entry.Object == nil {
			return false
		}
		return res.Entry.Object.ID == objID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func testProcQuick() *kernel.Process {
	k := newDomain()
	h := k.NewHost("ws")
	p, err := h.NewProcess("interpreter")
	if err != nil {
		panic(err)
	}
	return p
}

// sanitize turns an arbitrary string into a legal path component (no
// separators, dots or brackets, non-empty handled by caller).
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == Separator || r == '.' || r == '[' || r == ']' {
			continue
		}
		b.WriteRune(r)
		if b.Len() > 12 {
			break
		}
	}
	return b.String()
}

func TestMapStoreBindUnbind(t *testing.T) {
	s := NewMapStore()
	if err := s.Bind(CtxDefault, "x", ObjectEntry(proto.TagFile, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(CtxDefault, "x", ObjectEntry(proto.TagFile, 2)); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("duplicate bind err = %v", err)
	}
	if err := s.Rebind(CtxDefault, "x", ObjectEntry(proto.TagFile, 2)); err != nil {
		t.Fatal(err)
	}
	e, err := s.Lookup(CtxDefault, "x")
	if err != nil || e.Object == nil || e.Object.ID != 2 {
		t.Fatalf("lookup after rebind = %+v, %v", e, err)
	}
	if err := s.Unbind(CtxDefault, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unbind(CtxDefault, "x"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("unbind missing err = %v", err)
	}
}

func TestMapStoreEmptyNameRejected(t *testing.T) {
	s := NewMapStore()
	if err := s.Bind(CtxDefault, "", ObjectEntry(proto.TagFile, 1)); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapStoreNamesSorted(t *testing.T) {
	s := NewMapStore()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := s.Bind(CtxDefault, n, ObjectEntry(proto.TagFile, 1)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.Names(CtxDefault)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestMapStoreBadContextOps(t *testing.T) {
	s := NewMapStore()
	if err := s.Bind(42, "x", ObjectEntry(proto.TagFile, 1)); !errors.Is(err, proto.ErrBadContext) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Names(42); !errors.Is(err, proto.ErrBadContext) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.NormalizeContext(42); !errors.Is(err, proto.ErrBadContext) {
		t.Fatalf("err = %v", err)
	}
}

func TestEntryKinds(t *testing.T) {
	if ObjectEntry(proto.TagFile, 1).Kind() != "object" ||
		ContextEntry(5).Kind() != "context" ||
		RemoteEntry(ContextPair{}).Kind() != "remote-context" ||
		(Entry{}).Kind() != "empty" {
		t.Fatal("Entry.Kind misreports")
	}
}

func TestIsWellKnown(t *testing.T) {
	if !IsWellKnown(CtxHome) || !IsWellKnown(CtxStdPrograms) || IsWellKnown(CtxDefault) || IsWellKnown(17) {
		t.Fatal("IsWellKnown misclassifies")
	}
}

func TestContextPairString(t *testing.T) {
	s := ContextPair{Server: kernel.MakePID(1, 2), Ctx: 3}.String()
	if !strings.Contains(s, "1.2") || !strings.Contains(s, "0x3") {
		t.Fatalf("String = %q", s)
	}
}

func TestMatchName(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"", "anything", true},
		{"*", "", true},
		{"*", "abc", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"*.mss", "naming.mss", true},
		{"*.mss", "naming.txt", false},
		{"?", "a", true},
		{"?", "", false},
		{"?", "ab", false},
		{"v?t*", "vgt12", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXcYb", false},
		{"**", "x", true},
		{"exact", "exact", true},
		{"exact", "exactly", false},
		{"*@su-score.ARPA", "cheriton@su-score.ARPA", true},
		{"*@su-score.ARPA", "mann@v.stanford.edu", false},
	}
	for _, c := range cases {
		if got := MatchName(c.pattern, c.name); got != c.want {
			t.Errorf("MatchName(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestMatchNameAgainstRegexp(t *testing.T) {
	// Property: MatchName agrees with the equivalent anchored regexp.
	f := func(rawPattern, rawName string) bool {
		pattern := sanitize(rawPattern)
		name := sanitize(rawName)
		if pattern == "" {
			// Empty pattern is defined as match-all, unlike the regexp
			// translation below.
			return MatchName(pattern, name)
		}
		// Rebuild a pattern with some wildcards sprinkled in.
		if len(pattern) > 2 {
			pattern = pattern[:1] + "*" + pattern[2:]
		}
		var sb strings.Builder
		sb.WriteString("^")
		for _, r := range pattern {
			switch r {
			case '*':
				sb.WriteString(".*")
			case '?':
				sb.WriteString(".")
			default:
				sb.WriteString(regexp.QuoteMeta(string(r)))
			}
		}
		sb.WriteString("$")
		re, err := regexp.Compile(sb.String())
		if err != nil {
			return true
		}
		return MatchName(pattern, name) == re.MatchString(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterRecords(t *testing.T) {
	records := []proto.Descriptor{
		{Name: "naming.mss"}, {Name: "ipc.mss"}, {Name: "notes.txt"},
	}
	got := FilterRecords(append([]proto.Descriptor(nil), records...), "*.mss")
	if len(got) != 2 || got[0].Name != "naming.mss" || got[1].Name != "ipc.mss" {
		t.Fatalf("filtered = %+v", got)
	}
	all := FilterRecords(records, "")
	if len(all) != 3 {
		t.Fatalf("empty pattern must keep everything: %+v", all)
	}
}

func TestNameErrorFormat(t *testing.T) {
	ne := &NameError{Component: "nobody", Index: 6, Ctx: 3, Server: kernel.MakePID(1, 2), Err: proto.ErrNotFound}
	msg := ne.Error()
	for _, want := range []string{"nobody", "byte 6", "0x3", "1.2", "nonexistent name"} {
		if !strings.Contains(msg, want) {
			t.Errorf("NameError message %q missing %q", msg, want)
		}
	}
	if !errors.Is(ne, proto.ErrNotFound) {
		t.Fatal("NameError must unwrap")
	}
}
