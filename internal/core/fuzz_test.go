package core

import "testing"

// FuzzMatchName: the glob matcher terminates and never panics on
// arbitrary patterns and names, and stays consistent under pattern
// identity cases.
func FuzzMatchName(f *testing.F) {
	f.Add("*.mss", "naming.mss")
	f.Add("a*b*c", "axbyc")
	f.Add("", "")
	f.Add("????", "abcd")
	f.Add("***a***", "aaa")
	f.Fuzz(func(t *testing.T, pattern, name string) {
		got := MatchName(pattern, name)
		// A name always matches itself as a literal pattern when it
		// contains no metacharacters.
		if pattern == name && !containsMeta(name) && !got {
			t.Fatalf("literal %q failed to match itself", name)
		}
		// '*' alone matches everything.
		if pattern == "*" && !got {
			t.Fatal("* must match everything")
		}
	})
}

func containsMeta(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '*' || s[i] == '?' {
			return true
		}
	}
	return false
}
