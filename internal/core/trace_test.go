package core

import (
	"testing"

	"repro/internal/trace"
)

// exitClass boots a traced toy server, stops it via stop, and returns
// the failure classification its server-exit trace event carries.
func exitClass(t *testing.T, stop func(ts *toyServer)) string {
	t.Helper()
	k := newDomain()
	tr := trace.New()
	k.SetTracer(tr)
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	stop(ts)
	waitErr(t, ts.srv)
	for _, sp := range tr.Snapshot() {
		if sp.Kind == trace.KindServerExit {
			return sp.Err
		}
	}
	t.Fatal("no server-exit event in trace")
	return ""
}

// TestServerExitClassFromTraceAlone proves the per-request failure
// classification the serving path used to swallow is now attached to
// the trace: a host crash (kernel.ErrHostDown) and a clean destroy are
// distinguishable from the recorded spans alone, without access to
// Server.Err.
func TestServerExitClassFromTraceAlone(t *testing.T) {
	clean := exitClass(t, func(ts *toyServer) { ts.srv.Proc().Destroy() })
	crash := exitClass(t, func(ts *toyServer) { ts.srv.Proc().Host().Crash() })
	if clean != "process-dead" {
		t.Fatalf("clean destroy classified %q, want process-dead", clean)
	}
	if crash != "host-down" {
		t.Fatalf("host crash classified %q, want host-down", crash)
	}
	if clean == crash {
		t.Fatal("crash and clean destroy indistinguishable from the trace")
	}
}
