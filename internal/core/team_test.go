package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// startToyTeam boots the toy server with a serving team of n (§3.1).
func startToyTeam(t *testing.T, h *kernel.Host, name string, n int) *toyServer {
	t.Helper()
	ts := &toyServer{
		store:   NewMapStore(),
		reg:     vio.NewRegistry(),
		objects: make(map[uint32][]byte),
	}
	proc, err := h.NewProcess(name)
	if err != nil {
		t.Fatal(err)
	}
	ts.srv = NewServer(proc, ts.store, ts, WithTeam(n))
	if err := ts.srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)
	return ts
}

func TestChainOrdersStagesFirstOutermost(t *testing.T) {
	var order []string
	mk := func(tag string) Middleware {
		return func(next HandlerFunc) HandlerFunc {
			return func(req *Request) *proto.Message {
				order = append(order, tag)
				return next(req)
			}
		}
	}
	h := Chain(func(*Request) *proto.Message {
		order = append(order, "terminal")
		return nil
	}, mk("a"), mk("b"))
	h(nil)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "terminal" {
		t.Fatalf("order = %v", order)
	}
}

func TestWithMiddlewareRunsBeforeRoute(t *testing.T) {
	k := newDomain()
	h := k.NewHost("srv")
	ts := &toyServer{store: NewMapStore(), reg: vio.NewRegistry(), objects: make(map[uint32][]byte)}
	proc, err := h.NewProcess("toy")
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	ts.srv = NewServer(proc, ts.store, ts, WithMiddleware(func(next HandlerFunc) HandlerFunc {
		return func(req *Request) *proto.Message {
			seen++
			return next(req)
		}
	}))
	go ts.srv.Run()
	t.Cleanup(proc.Destroy)
	ts.addObject(CtxDefault, "x", []byte("1"))

	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "x")
	if _, err := Transact(client, ts.srv.PID(), req); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("middleware ran %d times", seen)
	}
}

func TestTeamServesAndCountsHandoffs(t *testing.T) {
	k := newDomain()
	h := k.NewHost("srv")
	ts := startToyTeam(t, h, "toy", 3)
	ts.addObject(CtxDefault, "hello.txt", []byte("hello world"))
	client := newClientProc(t, k.NewHost("ws"))

	const trials = 9
	for i := 0; i < trials; i++ {
		req := &proto.Message{Op: proto.OpQueryObject}
		proto.SetCSName(req, uint32(CtxDefault), "hello.txt")
		reply, err := Transact(client, ts.srv.PID(), req)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		d, _, err := proto.DecodeDescriptor(reply.Segment)
		if err != nil || d.Name != "hello.txt" {
			t.Fatalf("trial %d: descriptor = %+v, %v", i, d, err)
		}
	}
	stats := ts.srv.Stats()
	if stats.Requests != trials {
		t.Fatalf("Requests = %d, want %d", stats.Requests, trials)
	}
	if stats.Handoffs != trials {
		t.Fatalf("Handoffs = %d, want %d", stats.Handoffs, trials)
	}
	if ts.srv.TeamSize() != 3 {
		t.Fatalf("TeamSize = %d", ts.srv.TeamSize())
	}
}

func TestTeamSizeOneCountsNoHandoffs(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	ts.addObject(CtxDefault, "x", []byte("1"))
	client := newClientProc(t, k.NewHost("ws"))
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(CtxDefault), "x")
	if _, err := Transact(client, ts.srv.PID(), req); err != nil {
		t.Fatal(err)
	}
	if stats := ts.srv.Stats(); stats.Handoffs != 0 || stats.Requests != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// waitErr polls for the server's recorded termination cause; the run
// loop records it asynchronously after the receptionist dies.
func waitErr(t *testing.T, srv *Server) error {
	t.Helper()
	for i := 0; i < 200; i++ {
		if err := srv.Err(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never recorded a termination cause")
	return nil
}

func TestServerErrNilWhileRunning(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	if err := ts.srv.Err(); err != nil {
		t.Fatalf("running server Err = %v", err)
	}
}

func TestServerErrCleanDestroy(t *testing.T) {
	k := newDomain()
	ts := startToyServer(t, k.NewHost("srv"), "toy")
	ts.srv.Proc().Destroy()
	err := waitErr(t, ts.srv)
	if !errors.Is(err, kernel.ErrProcessDead) {
		t.Fatalf("Err = %v, want ErrProcessDead", err)
	}
	if errors.Is(err, kernel.ErrHostDown) {
		t.Fatalf("clean destroy misclassified as host crash: %v", err)
	}
}

func TestServerErrHostCrash(t *testing.T) {
	k := newDomain()
	h := k.NewHost("srv")
	ts := startToyServer(t, h, "toy")
	h.Crash()
	err := waitErr(t, ts.srv)
	if !errors.Is(err, kernel.ErrHostDown) {
		t.Fatalf("Err = %v, want ErrHostDown", err)
	}
}

func TestTeamErrHostCrash(t *testing.T) {
	k := newDomain()
	h := k.NewHost("srv")
	ts := startToyTeam(t, h, "toy", 4)
	h.Crash()
	err := waitErr(t, ts.srv)
	if !errors.Is(err, kernel.ErrHostDown) {
		t.Fatalf("Err = %v, want ErrHostDown", err)
	}
}

// TestTeamStressCore hammers one toy-server team from many concurrent
// client processes; run with -race this exercises the serving path's
// locking (stats, registry, store) under real parallelism.
func TestTeamStressCore(t *testing.T) {
	k := newDomain()
	h := k.NewHost("srv")
	ts := startToyTeam(t, h, "toy", 4)
	const clients, trials = 8, 25
	for i := 0; i < clients; i++ {
		ts.addObject(CtxDefault, fmt.Sprintf("obj%d", i), []byte("stress"))
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc := newClientProc(t, k.NewHost(fmt.Sprintf("ws%d", i)))
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			for j := 0; j < trials; j++ {
				req := &proto.Message{Op: proto.OpQueryObject}
				proto.SetCSName(req, uint32(CtxDefault), fmt.Sprintf("obj%d", i))
				if _, err := Transact(proc, ts.srv.PID(), req); err != nil {
					errs <- fmt.Errorf("client %d trial %d: %w", i, j, err)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if stats := ts.srv.Stats(); stats.Requests != clients*trials {
		t.Fatalf("Requests = %d, want %d", stats.Requests, clients*trials)
	}
}
