package core

import (
	"errors"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/trace"
)

// Request is one received message being processed by a CSNH server.
type Request struct {
	Msg  *proto.Message
	From kernel.PID
	srv  *Server
	proc *kernel.Process

	// name/res hold the CSname and its resolution once interpretation
	// completed at this server; the name-fault stage reads them.
	name string
	res  *Resolution
}

// Server returns the server processing the request.
func (r *Request) Server() *Server { return r.srv }

// Proc returns the process serving this request — the receptionist for a
// single-process server, the handling worker for a team (§3.1). Move
// operations and clock charges must go through it so one request's waits
// are charged to the process actually serving it.
func (r *Request) Proc() *kernel.Process {
	if r.proc != nil {
		return r.proc
	}
	return r.srv.proc
}

// Handler is the server-specific part of a CSNH server: the operations on
// the objects its store names.
type Handler interface {
	// HandleNamed processes a CSname request whose name interpretation
	// completed at this server (it was not forwarded). It returns the
	// reply message, or nil if the handler already replied or forwarded
	// itself.
	HandleNamed(req *Request, res *Resolution) *proto.Message
	// HandleOp processes a request that carries no CSname (instance
	// operations, inverse mappings, ...). Same reply convention.
	HandleOp(req *Request) *proto.Message
}

// ServerStats counts a CSNH server's protocol activity.
type ServerStats struct {
	// Requests is the number of requests received.
	Requests uint64
	// CSNameRequests is the subset carrying character-string names.
	CSNameRequests uint64
	// Forwarded counts requests passed on to another server
	// mid-interpretation (§5.4).
	Forwarded uint64
	// Failures counts non-OK replies sent.
	Failures uint64
	// Handoffs counts receptionist-to-worker forwards inside the server
	// team (§3.1) — intra-team, unlike the inter-server Forwarded.
	Handoffs uint64
}

// Option configures a Server.
type Option func(*serverOptions)

type serverOptions struct {
	team  int
	extra []Middleware
}

// WithTeam sets the number of serving processes (§3.1). 1 — the default —
// is the single-process server, which serves every request on the
// receptionist process exactly as before teams existed. For n > 1 the
// receptionist receives and forwards each transaction to one of n worker
// processes on the same host, so requests overlap in virtual time.
func WithTeam(n int) Option {
	return func(o *serverOptions) { o.team = n }
}

// WithMiddleware splices extra serving stages between the standard chain
// (dispatch charge, stats, name-fault decoration) and the route to the
// handler. Stages run on the serving process and must be safe for
// concurrent workers.
func WithMiddleware(stages ...Middleware) Option {
	return func(o *serverOptions) { o.extra = append(o.extra, stages...) }
}

// Server is the skeleton every character-string name handling server
// embeds: it runs the serving team, performs the standard processing any
// CSNH server can do on any CSname request — validating the standard
// fields and running the name-mapping procedure, forwarding partially
// interpreted names to other servers — and dispatches what remains to the
// Handler (§5.3-5.4). The standard per-request logic is factored into a
// middleware chain; the team runtime decides which process serves.
type Server struct {
	proc    *kernel.Process
	store   ContextStore
	handler Handler
	team    *Team
	serve   HandlerFunc

	// stats counters are atomics: team workers bump them concurrently on
	// every request, so the serving hot path must not share a mutex.
	stats serverCounters
}

// serverCounters is the lock-free backing store for ServerStats.
type serverCounters struct {
	requests  atomic.Uint64
	csname    atomic.Uint64
	forwarded atomic.Uint64
	failures  atomic.Uint64
	handoffs  atomic.Uint64
}

func (c *serverCounters) load() ServerStats {
	return ServerStats{
		Requests:       c.requests.Load(),
		CSNameRequests: c.csname.Load(),
		Forwarded:      c.forwarded.Load(),
		Failures:       c.failures.Load(),
		Handoffs:       c.handoffs.Load(),
	}
}

// Snapshot returns a torn-read-resistant copy of the counters: each
// field is an atomic load, and the whole set is re-read until two
// consecutive passes agree (bounded, falling back to the last read
// under sustained traffic). A mid-run reader therefore never sees a
// request counted whose CSname/failure classification is not.
func (c *serverCounters) Snapshot() ServerStats {
	prev := c.load()
	for i := 0; i < 3; i++ {
		cur := c.load()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// NewServer assembles a CSNH server from its process, store and handler.
func NewServer(proc *kernel.Process, store ContextStore, handler Handler, opts ...Option) *Server {
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{proc: proc, store: store, handler: handler}
	stages := append([]Middleware{
		s.instrumentServe,
		s.chargeDispatch,
		s.countRequests,
		s.countFailures,
		s.decorateNameFaults,
	}, o.extra...)
	s.serve = Chain(s.route, stages...)
	s.team = NewTeam(proc, o.team, s.serveOne, func() {
		s.stats.handoffs.Add(1)
		s.proc.Kernel().Metrics().
			Counter("server_handoffs_total", metrics.Labels{Server: s.proc.Name()}).Inc()
	})
	return s
}

// Proc returns the server's receptionist process — its public identity.
func (s *Server) Proc() *kernel.Process { return s.proc }

// PID returns the server's public process identifier (the receptionist's;
// clients address the team through it).
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Pair returns the fully-qualified context pair for one of this server's
// contexts.
func (s *Server) Pair(ctx ContextID) ContextPair {
	return ContextPair{Server: s.proc.PID(), Ctx: ctx}
}

// TeamSize returns the number of serving processes.
func (s *Server) TeamSize() int { return s.team.Size() }

// Run is the server main loop; it returns when the server process is
// destroyed. Run it in the receptionist's goroutine (Host.Spawn). Team
// workers, if configured, are spawned first.
func (s *Server) Run() { s.team.Run() }

// Start spawns the team workers and runs the reception loop in its own
// goroutine, returning the worker-spawn error if any.
func (s *Server) Start() error { return s.team.Start() }

// Err reports why the server stopped serving: nil while it is running,
// kernel.ErrProcessDead after a clean Destroy, and an error wrapping
// kernel.ErrHostDown when its host crashed (the Receive error Run used to
// swallow).
func (s *Server) Err() error { return s.team.Err() }

// Exited is closed once the serving team has stopped, after its exit
// cause and trace event are recorded (see Team.Exited).
func (s *Server) Exited() <-chan struct{} { return s.team.Exited() }

// Stats returns a stabilized snapshot of the server's protocol counters
// (see serverCounters.Snapshot).
func (s *Server) Stats() ServerStats {
	return s.stats.Snapshot()
}

// serveOne processes a single request on the serving process p and
// replies or forwards exactly once.
func (s *Server) serveOne(p *kernel.Process, msg *proto.Message, from kernel.PID) {
	tr := p.Tracer()
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.PendingSpan(from), trace.KindServe, msg.Op.String(), p.Now(), p.TraceID())
		p.SetCurrentSpan(sp)
	}
	req := &Request{Msg: msg, From: from, srv: s, proc: p}
	reply := s.serve(req)
	if reply == nil {
		// A stage or the handler replied or forwarded itself.
		if tr != nil {
			tr.End(sp, p.Now())
			p.SetCurrentSpan(0)
		}
		return
	}
	if tr != nil {
		// Attach the per-request failure classification — which the reply
		// path below otherwise swallows — to the serve span, and end it
		// before the Reply unblocks the client, so a snapshot taken the
		// moment the client resumes never sees a half-open serve.
		class := ""
		if reply.Op != proto.ReplyOK {
			class = reply.Op.String()
		}
		tr.Fail(sp, p.Now(), class)
	}
	// A failed reply means the sender died or became unreachable; the
	// transaction is already failed on the sender side (and the reply
	// span carries the transport failure classification).
	_ = p.Reply(reply, from)
	if tr != nil {
		p.SetCurrentSpan(0)
	}
}

// instrumentServe is the outermost stage: when a metrics registry is
// installed it records the per-(server, op) serve-latency histogram and
// request/failure counters for every request this server answers
// itself. Requests that are forwarded or answered inside a handler
// (reply == nil) are deliberately not recorded here: their terminal
// server records them, and any bump after the forward could race the
// resumed client (the counters below always land before serveOne's
// Reply unblocks it). Recording charges zero virtual time.
func (s *Server) instrumentServe(next HandlerFunc) HandlerFunc {
	return func(req *Request) *proto.Message {
		reg := req.Proc().Kernel().Metrics()
		if reg == nil {
			return next(req)
		}
		start := req.Proc().Now()
		reply := next(req)
		if reply != nil {
			lbl := metrics.Labels{Server: s.proc.Name(), Op: req.Msg.Op.String()}
			reg.Histogram("serve_latency", lbl).Record(req.Proc().Now() - start)
			reg.Counter("server_requests_total", lbl).Inc()
			if reply.Op != proto.ReplyOK {
				reg.Counter("server_failures_total", lbl).Inc()
			}
		}
		return reply
	}
}

// chargeDispatch charges the fixed request-dispatch cost to the serving
// process.
func (s *Server) chargeDispatch(next HandlerFunc) HandlerFunc {
	return func(req *Request) *proto.Message {
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().ServerDispatchCost)
		return next(req)
	}
}

// countRequests counts every request, and the CSname subset.
func (s *Server) countRequests(next HandlerFunc) HandlerFunc {
	return func(req *Request) *proto.Message {
		s.stats.requests.Add(1)
		if req.Msg.Op.IsCSNameOp() {
			s.stats.csname.Add(1)
		}
		return next(req)
	}
}

// countFailures counts non-OK replies sent.
func (s *Server) countFailures(next HandlerFunc) HandlerFunc {
	return func(req *Request) *proto.Message {
		reply := next(req)
		if reply != nil && reply.Op != proto.ReplyOK {
			s.stats.failures.Add(1)
		}
		return reply
	}
}

// decorateNameFaults adds name-fault details to failure replies for
// requests whose name interpretation completed here: the handler rejected
// the resolved final component, so report this server as the fault site —
// the client can then explain the failure even after forwarding (§7
// deficiency). Interpretation failures carry their fault details already.
func (s *Server) decorateNameFaults(next HandlerFunc) HandlerFunc {
	return func(req *Request) *proto.Message {
		reply := next(req)
		if reply != nil && reply.Op != proto.ReplyOK && req.res != nil {
			if _, _, _, ok := proto.NameFault(reply); !ok {
				proto.SetNameFault(reply, len(req.name)-len(req.res.Last), uint32(s.PID()), req.res.Last)
			}
		}
		return reply
	}
}

// route is the terminal stage: CSname requests get the standard
// name-mapping treatment, everything else goes to the handler.
func (s *Server) route(req *Request) *proto.Message {
	if req.Msg.Op.IsCSNameOp() {
		return s.serveCSName(req)
	}
	return s.handler.HandleOp(req)
}

// serveCSName performs the standard CSname processing: even if this server
// does not understand the operation code, it can parse the standard fields
// and run the mapping procedure, forwarding if the name leads elsewhere
// (§5.3).
func (s *Server) serveCSName(req *Request) *proto.Message {
	name, index, err := proto.CSName(req.Msg)
	if err != nil {
		return ErrorReplyMsg(err)
	}
	interp := Interpret
	if req.Msg.Op == proto.OpDeleteContextName {
		// Deleting a context name operates on the binding itself; a
		// final component that points into another server must not be
		// forwarded there (§5.7).
		interp = InterpretBinding
	}
	res, fwd, err := interp(s.store, req.Proc(), name, index, ContextID(proto.CSNameContext(req.Msg)))
	if err != nil {
		return s.faultReply(err)
	}
	if fwd != nil {
		s.stats.forwarded.Add(1)
		// Counted before the Forward delivers: the terminal server may
		// serve and unblock the client before this goroutine runs again.
		req.Proc().Kernel().Metrics().
			Counter("server_forwarded_total", metrics.Labels{Server: s.proc.Name(), Op: req.Msg.Op.String()}).Inc()
		proto.RewriteCSName(req.Msg, uint32(fwd.Pair.Ctx), fwd.Index)
		// A failed forward has already failed the sender's transaction.
		_ = req.Proc().Forward(req.Msg, req.From, fwd.Pair.Server)
		return nil
	}
	req.name, req.res = name, res
	// OpMapContext is fully determined by the resolution, so the skeleton
	// implements it for every server (§5.7).
	if req.Msg.Op == proto.OpMapContext {
		return s.mapContextReply(res)
	}
	return s.handler.HandleNamed(req, res)
}

// faultReply builds a failure reply carrying name-fault details when the
// error is a NameError from interpretation.
func (s *Server) faultReply(err error) *proto.Message {
	reply := ErrorReplyMsg(err)
	var ne *NameError
	if errors.As(err, &ne) {
		proto.SetNameFault(reply, ne.Index, uint32(s.PID()), ne.Component)
	}
	return reply
}

// mapContextReply builds the standard OpMapContext reply: the
// (server-pid, context-id) pair the name denotes. The pid is the
// receptionist's — the team's public identity.
func (s *Server) mapContextReply(res *Resolution) *proto.Message {
	ctx, ok := res.ResolvesToContext()
	if !ok {
		if res.Entry == nil {
			return ErrorReplyMsg(proto.ErrNotFound)
		}
		return ErrorReplyMsg(proto.ErrNotAContext)
	}
	reply := proto.NewReply(proto.ReplyOK)
	proto.SetMapContextReply(reply, uint32(s.PID()), uint32(ctx))
	return reply
}

// ErrorReplyMsg builds a failure reply message from an error.
func ErrorReplyMsg(err error) *proto.Message {
	return proto.NewReply(proto.ErrorReply(err))
}

// OkReply builds an empty success reply.
func OkReply() *proto.Message { return proto.NewReply(proto.ReplyOK) }

// Transact is the client side of one protocol exchange: send req to
// server, map failure replies to errors. Failure replies carrying
// name-fault details become NameErrors, telling the user which component
// failed at which server — even when the request was forwarded through a
// series of servers (§7).
func Transact(proc *kernel.Process, server kernel.PID, req *proto.Message) (*proto.Message, error) {
	reply, err := proc.Send(req, server)
	if err != nil {
		return nil, err
	}
	if err := ReplyToError(reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// ReplyToError maps a reply message to an error, decorating failures that
// carry name-fault details.
func ReplyToError(reply *proto.Message) error {
	err := proto.ReplyError(reply.Op)
	if err == nil {
		return nil
	}
	if idx, server, component, ok := proto.NameFault(reply); ok {
		return &NameError{
			Component: component,
			Index:     idx,
			Server:    kernel.PID(server),
			Err:       err,
		}
	}
	return err
}

// MapContext resolves a name to a fully-qualified context pair from the
// client side (§5.7).
func MapContext(proc *kernel.Process, pair ContextPair, name string) (ContextPair, error) {
	req := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(req, uint32(pair.Ctx), name)
	reply, err := Transact(proc, pair.Server, req)
	if err != nil {
		return ContextPair{}, err
	}
	pid, ctx := proto.GetMapContextReply(reply)
	return ContextPair{Server: kernel.PID(pid), Ctx: ContextID(ctx)}, nil
}

// IsNotFound reports whether err denotes an unbound name.
func IsNotFound(err error) bool { return errors.Is(err, proto.ErrNotFound) }
