package core

import (
	"errors"
	"sync"

	"repro/internal/kernel"
	"repro/internal/proto"
)

// Request is one received message being processed by a CSNH server.
type Request struct {
	Msg  *proto.Message
	From kernel.PID
	srv  *Server
}

// Server returns the server processing the request.
func (r *Request) Server() *Server { return r.srv }

// Proc returns the server process, for Move operations and clock charges.
func (r *Request) Proc() *kernel.Process { return r.srv.proc }

// Handler is the server-specific part of a CSNH server: the operations on
// the objects its store names.
type Handler interface {
	// HandleNamed processes a CSname request whose name interpretation
	// completed at this server (it was not forwarded). It returns the
	// reply message, or nil if the handler already replied or forwarded
	// itself.
	HandleNamed(req *Request, res *Resolution) *proto.Message
	// HandleOp processes a request that carries no CSname (instance
	// operations, inverse mappings, ...). Same reply convention.
	HandleOp(req *Request) *proto.Message
}

// ServerStats counts a CSNH server's protocol activity.
type ServerStats struct {
	// Requests is the number of requests received.
	Requests uint64
	// CSNameRequests is the subset carrying character-string names.
	CSNameRequests uint64
	// Forwarded counts requests passed on to another server
	// mid-interpretation (§5.4).
	Forwarded uint64
	// Failures counts non-OK replies sent.
	Failures uint64
}

// Server is the skeleton every character-string name handling server
// embeds: it runs the receive loop, performs the standard processing any
// CSNH server can do on any CSname request — validating the standard
// fields and running the name-mapping procedure, forwarding partially
// interpreted names to other servers — and dispatches what remains to the
// Handler (§5.3-5.4).
type Server struct {
	proc    *kernel.Process
	store   ContextStore
	handler Handler

	statsMu sync.Mutex
	stats   ServerStats
}

// NewServer assembles a CSNH server from its process, store and handler.
func NewServer(proc *kernel.Process, store ContextStore, handler Handler) *Server {
	return &Server{proc: proc, store: store, handler: handler}
}

// Proc returns the server's process.
func (s *Server) Proc() *kernel.Process { return s.proc }

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Pair returns the fully-qualified context pair for one of this server's
// contexts.
func (s *Server) Pair(ctx ContextID) ContextPair {
	return ContextPair{Server: s.proc.PID(), Ctx: ctx}
}

// Run is the server main loop; it returns when the server process is
// destroyed. Run it in the process goroutine (Host.Spawn).
func (s *Server) Run() {
	for {
		msg, from, err := s.proc.Receive()
		if err != nil {
			return
		}
		s.serveOne(msg, from)
	}
}

// Stats returns a snapshot of the server's protocol counters.
func (s *Server) Stats() ServerStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

func (s *Server) count(update func(*ServerStats)) {
	s.statsMu.Lock()
	update(&s.stats)
	s.statsMu.Unlock()
}

// serveOne processes a single request and replies or forwards exactly
// once.
func (s *Server) serveOne(msg *proto.Message, from kernel.PID) {
	model := s.proc.Kernel().Model()
	s.proc.ChargeCompute(model.ServerDispatchCost)
	req := &Request{Msg: msg, From: from, srv: s}
	s.count(func(st *ServerStats) {
		st.Requests++
		if msg.Op.IsCSNameOp() {
			st.CSNameRequests++
		}
	})

	var reply *proto.Message
	if msg.Op.IsCSNameOp() {
		reply = s.serveCSName(req)
	} else {
		reply = s.handler.HandleOp(req)
	}
	if reply == nil {
		return // handler replied or forwarded itself
	}
	if reply.Op != proto.ReplyOK {
		s.count(func(st *ServerStats) { st.Failures++ })
	}
	// A failed reply means the sender died or became unreachable; the
	// transaction is already failed on the sender side.
	_ = s.proc.Reply(reply, from)
}

// serveCSName performs the standard CSname processing: even if this server
// does not understand the operation code, it can parse the standard fields
// and run the mapping procedure, forwarding if the name leads elsewhere
// (§5.3).
func (s *Server) serveCSName(req *Request) *proto.Message {
	name, index, err := proto.CSName(req.Msg)
	if err != nil {
		return ErrorReplyMsg(err)
	}
	interp := Interpret
	if req.Msg.Op == proto.OpDeleteContextName {
		// Deleting a context name operates on the binding itself; a
		// final component that points into another server must not be
		// forwarded there (§5.7).
		interp = InterpretBinding
	}
	res, fwd, err := interp(s.store, s.proc, name, index, ContextID(proto.CSNameContext(req.Msg)))
	if err != nil {
		return s.faultReply(err)
	}
	if fwd != nil {
		s.count(func(st *ServerStats) { st.Forwarded++ })
		proto.RewriteCSName(req.Msg, uint32(fwd.Pair.Ctx), fwd.Index)
		// A failed forward has already failed the sender's transaction.
		_ = s.proc.Forward(req.Msg, req.From, fwd.Pair.Server)
		return nil
	}
	// OpMapContext is fully determined by the resolution, so the skeleton
	// implements it for every server (§5.7).
	var reply *proto.Message
	if req.Msg.Op == proto.OpMapContext {
		reply = s.mapContextReply(res)
	} else {
		reply = s.handler.HandleNamed(req, res)
	}
	if reply != nil && reply.Op != proto.ReplyOK {
		if _, _, _, ok := proto.NameFault(reply); !ok {
			// The handler rejected the resolved final component: report
			// it as the fault site so the client can explain the failure
			// even after forwarding (§7 deficiency).
			proto.SetNameFault(reply, len(name)-len(res.Last), uint32(s.PID()), res.Last)
		}
	}
	return reply
}

// faultReply builds a failure reply carrying name-fault details when the
// error is a NameError from interpretation.
func (s *Server) faultReply(err error) *proto.Message {
	reply := ErrorReplyMsg(err)
	var ne *NameError
	if errors.As(err, &ne) {
		proto.SetNameFault(reply, ne.Index, uint32(s.PID()), ne.Component)
	}
	return reply
}

// mapContextReply builds the standard OpMapContext reply: the
// (server-pid, context-id) pair the name denotes.
func (s *Server) mapContextReply(res *Resolution) *proto.Message {
	ctx, ok := res.ResolvesToContext()
	if !ok {
		if res.Entry == nil {
			return ErrorReplyMsg(proto.ErrNotFound)
		}
		return ErrorReplyMsg(proto.ErrNotAContext)
	}
	reply := proto.NewReply(proto.ReplyOK)
	proto.SetMapContextReply(reply, uint32(s.PID()), uint32(ctx))
	return reply
}

// ErrorReplyMsg builds a failure reply message from an error.
func ErrorReplyMsg(err error) *proto.Message {
	return proto.NewReply(proto.ErrorReply(err))
}

// OkReply builds an empty success reply.
func OkReply() *proto.Message { return proto.NewReply(proto.ReplyOK) }

// Transact is the client side of one protocol exchange: send req to
// server, map failure replies to errors. Failure replies carrying
// name-fault details become NameErrors, telling the user which component
// failed at which server — even when the request was forwarded through a
// series of servers (§7).
func Transact(proc *kernel.Process, server kernel.PID, req *proto.Message) (*proto.Message, error) {
	reply, err := proc.Send(req, server)
	if err != nil {
		return nil, err
	}
	if err := ReplyToError(reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// ReplyToError maps a reply message to an error, decorating failures that
// carry name-fault details.
func ReplyToError(reply *proto.Message) error {
	err := proto.ReplyError(reply.Op)
	if err == nil {
		return nil
	}
	if idx, server, component, ok := proto.NameFault(reply); ok {
		return &NameError{
			Component: component,
			Index:     idx,
			Server:    kernel.PID(server),
			Err:       err,
		}
	}
	return err
}

// MapContext resolves a name to a fully-qualified context pair from the
// client side (§5.7).
func MapContext(proc *kernel.Process, pair ContextPair, name string) (ContextPair, error) {
	req := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(req, uint32(pair.Ctx), name)
	reply, err := Transact(proc, pair.Server, req)
	if err != nil {
		return ContextPair{}, err
	}
	pid, ctx := proto.GetMapContextReply(reply)
	return ContextPair{Server: kernel.PID(pid), Ctx: ContextID(ctx)}, nil
}

// IsNotFound reports whether err denotes an unbound name.
func IsNotFound(err error) bool { return errors.Is(err, proto.ErrNotFound) }
