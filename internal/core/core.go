package core
