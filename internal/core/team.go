package core

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/trace"
)

// HandlerFunc processes one request and returns the reply to send, or nil
// when the request was already answered (the stage replied or forwarded
// itself).
type HandlerFunc func(req *Request) *proto.Message

// Middleware is one composable serving stage wrapped around a
// HandlerFunc. The standard Server chain factors dispatch-cost charging,
// request counting, failure counting and name-fault decoration into such
// stages; WithMiddleware splices additional ones in front of the route.
type Middleware func(next HandlerFunc) HandlerFunc

// Chain composes stages around terminal. The first stage is outermost:
// Chain(h, a, b) serves a(b(h)).
func Chain(terminal HandlerFunc, stages ...Middleware) HandlerFunc {
	h := terminal
	for i := len(stages) - 1; i >= 0; i-- {
		h = stages[i](h)
	}
	return h
}

// serveFunc processes one received message on behalf of the serving
// process p (the receptionist itself, or a team worker).
type serveFunc func(p *kernel.Process, msg *proto.Message, from kernel.PID)

// Team is the multi-process serving runtime (§3.1): V servers are process
// teams in which a receptionist process receives requests and immediately
// Forwards each transaction to a worker process on the same host, so one
// client's disk or compute wait never delays another client's request.
// The kernel Forward primitive makes the handoff invisible to the client:
// the worker appears to have received the request directly and replies to
// the original sender.
//
// Size counts the serving processes. Size 1 is the single-process server:
// the receptionist serves every request inline, exactly reproducing the
// pre-team behavior. For size n > 1 the receptionist only receives,
// charges the dispatch cost, and hands off round-robin to n workers; the
// intra-host hop is charged at LocalHop by the network layer.
type Team struct {
	recept    *kernel.Process
	size      int
	serve     serveFunc
	onHandoff func()

	mu      sync.Mutex
	workers []*kernel.Process
	err     error
	exited  chan struct{}
}

// NewTeam assembles a team around the receptionist process. serve is
// invoked once per request on whichever process handles it; onHandoff (if
// non-nil) is called for every receptionist-to-worker handoff. Sizes
// below 1 mean 1.
func NewTeam(recept *kernel.Process, size int, serve serveFunc, onHandoff func()) *Team {
	if size < 1 {
		size = 1
	}
	return &Team{recept: recept, size: size, serve: serve, onHandoff: onHandoff, exited: make(chan struct{})}
}

// Size returns the number of serving processes.
func (t *Team) Size() int { return t.size }

// Err reports why the team stopped serving: nil while it is running,
// kernel.ErrProcessDead after a clean Destroy, and an error wrapping
// kernel.ErrHostDown when the host crashed under it.
func (t *Team) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Start spawns the worker processes (for sizes above 1) and runs the
// reception loop in its own goroutine. It replaces `go team.Run()` when
// the caller wants the worker-spawn error.
func (t *Team) Start() error {
	if err := t.spawnWorkers(); err != nil {
		return err
	}
	go t.run()
	return nil
}

// Run spawns the workers and runs the reception loop inline; it returns
// when the receptionist process is destroyed. Call it from the
// receptionist's goroutine (Host.Spawn).
func (t *Team) Run() {
	if err := t.spawnWorkers(); err != nil {
		t.recordExit(err)
		return
	}
	t.run()
}

func (t *Team) spawnWorkers() error {
	if t.size <= 1 {
		return nil
	}
	workers, err := t.recept.Host().SpawnTeam(t.recept.Name(), t.size, t.workerLoop)
	if err != nil {
		return fmt.Errorf("spawn team %s: %w", t.recept.Name(), err)
	}
	t.mu.Lock()
	t.workers = workers
	t.mu.Unlock()
	return nil
}

// run is the reception loop. With no workers the receptionist serves each
// request itself; with workers it does only the standard dispatch work
// before handing the transaction off (§3.1).
func (t *Team) run() {
	if t.size <= 1 {
		for {
			msg, from, err := t.recept.Receive()
			if err != nil {
				t.recordExit(err)
				return
			}
			t.serve(t.recept, msg, from)
		}
	}
	model := t.recept.Kernel().Model()
	next := 0
	for {
		msg, from, err := t.recept.Receive()
		if err != nil {
			t.recordExit(err)
			t.stopWorkers()
			return
		}
		// Reception is serialized at the dispatch cost; everything past
		// it runs on the worker's clock.
		t.recept.ChargeCompute(model.ServerDispatchCost)
		if t.onHandoff != nil {
			t.onHandoff()
		}
		w := t.workers[next%len(t.workers)]
		next++
		if tr := t.recept.Tracer(); tr != nil {
			sp := tr.Start(t.recept.PendingSpan(from), trace.KindHandoff, "handoff -> "+w.Name(), t.recept.Now(), t.recept.TraceID())
			// The handoff span covers the dispatch decision and ends before
			// the Forward: a fast worker can unblock the client before this
			// goroutine runs again, and a snapshot then must never see a
			// half-open handoff. The forward hop is recorded as its child.
			tr.End(sp, t.recept.Now())
			t.recept.SetCurrentSpan(sp)
			// A failed forward (worker died mid-crash) has already failed
			// the sender's transaction and classified the forward span.
			_ = t.recept.Forward(msg, from, w.PID())
			t.recept.SetCurrentSpan(0)
			continue
		}
		// A failed forward (worker died mid-crash) has already failed
		// the sender's transaction.
		_ = t.recept.Forward(msg, from, w.PID())
	}
}

func (t *Team) workerLoop(p *kernel.Process) {
	for {
		msg, from, err := p.Receive()
		if err != nil {
			t.recordExit(err)
			return
		}
		t.serve(p, msg, from)
	}
}

// recordExit records the first termination cause, classifying a
// crashed-host shutdown distinctly from a clean destroy.
func (t *Team) recordExit(err error) {
	// CrashKilled, not Host().Alive(): the dying goroutine may run only
	// after the host has already been restarted, and the classification
	// must reflect how this team died, not the host's current state.
	if t.recept.CrashKilled() || !t.recept.Host().Alive() {
		err = fmt.Errorf("%w: host %s under server %s", kernel.ErrHostDown, t.recept.Host().Name(), t.recept.Name())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = err
	// Record why the team stopped, classified: "host-down" for a
	// crash, "process-dead" for a clean destroy — the distinction
	// Err() reports, now visible from the trace alone. Recorded before
	// exited is closed (and before Err can observe the error), so anyone
	// synchronizing on either is guaranteed to see the event in a
	// snapshot — team death is asynchronous real time even though it is
	// instantaneous virtual time.
	t.recept.Tracer().Event(0, trace.KindServerExit, t.recept.Name(),
		t.recept.Now(), t.recept.TraceID(), kernel.FailureClass(err))
	close(t.exited)
}

// Exited is closed once the team has stopped serving, after the exit
// cause and its trace event are recorded. It is the synchronization
// point for observers that need the team's death to be visible —
// chaos restart hooks, trace snapshots — since the serving goroutines
// notice a host crash asynchronously.
func (t *Team) Exited() <-chan struct{} { return t.exited }

// stopWorkers destroys the workers after the receptionist stops; on a
// host crash the kernel has already terminated them.
func (t *Team) stopWorkers() {
	t.mu.Lock()
	workers := t.workers
	t.mu.Unlock()
	for _, w := range workers {
		w.Destroy()
	}
}
