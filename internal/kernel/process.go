package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// mailboxDepth bounds queued, unreceived messages per process.
const mailboxDepth = 1024

// replyEvent completes a blocked Send.
type replyEvent struct {
	msg *proto.Message
	at  vtime.Time
	err error
}

// envelope is an in-flight message transaction. It is created by Send,
// travels through Forward unchanged except for its message and arrival
// time, and is completed exactly once by Reply or by failure.
type envelope struct {
	origin  PID // the original sender, preserved across forwarding (§3.1)
	msg     *proto.Message
	arrival vtime.Time
	replyCh chan replyEvent
	// moveSrc and moveDst are the sender's memory segments readable via
	// MoveFrom and writable via MoveTo while the sender awaits the reply.
	moveSrc []byte
	moveDst []byte
	// span is the send (or, after forwarding, forward) span this
	// transaction currently runs under; servers parent their serve
	// spans on it via PendingSpan.
	span trace.SpanID
	// shared marks an envelope that another goroutine may still touch
	// after the sender's completion event fires, so it must not be
	// recycled: the reply channel was handed to group clones
	// (forwardGroup), or the receiving process was terminated while its
	// goroutine could still be mid-MoveFrom/MoveTo on the envelope.
	// Written only by a goroutine that holds the envelope via the
	// receiver's pending table (the forwarder, or terminate after
	// detaching the table), and read by the sender only after it
	// receives an event through the channel, which orders the write
	// before the read.
	shared bool
}

// envPool recycles unicast envelopes together with their one-slot reply
// channels: a Send on the disabled-tracer path then allocates nothing in
// steady state. An envelope is returned to the pool only by the sender
// that created it, and only when its completion is single-owner — at
// most one of Reply-complete, terminate-fail, drain-fail or a
// sender-side failure ever fires, so the channel is provably empty on
// reuse. Envelopes whose channel was shared with group clones are
// never recycled (see envelope.shared).
var envPool = sync.Pool{
	New: func() any {
		envPoolNews.Add(1)
		return &envelope{replyCh: make(chan replyEvent, 1)}
	},
}

// Envelope-pool telemetry: process-global (the pool is shared by every
// kernel in the process) and wall-clock volatile — sync.Pool eviction
// depends on GC, so the reuse rate is a live diagnostic, never part of
// a deterministic document.
var (
	envPoolGets atomic.Uint64
	envPoolNews atomic.Uint64
	envPoolPuts atomic.Uint64
)

// EnvPoolStats reports the envelope pool's lifetime gets, fresh
// allocations inside those gets, and returns to the pool. The hit rate
// is (gets-news)/gets.
func EnvPoolStats() (gets, news, puts uint64) {
	return envPoolGets.Load(), envPoolNews.Load(), envPoolPuts.Load()
}

func newEnvelope() *envelope {
	envPoolGets.Add(1)
	return envPool.Get().(*envelope)
}

// release resets the envelope and returns it to the pool. Callers must
// hold sole ownership: either the envelope was never delivered, or the
// sender has already consumed its single completion event.
func (e *envelope) release() {
	e.origin = NilPID
	e.msg = nil
	e.arrival = 0
	e.moveSrc = nil
	e.moveDst = nil
	e.span = 0
	envPoolPuts.Add(1)
	envPool.Put(e)
}

// complete and fail deliver at most one event per envelope. The
// non-blocking send matters for group transactions, where several members
// hold clones sharing one reply channel and only the first event is
// consumed.
func (e *envelope) complete(msg *proto.Message, at vtime.Time) {
	select {
	case e.replyCh <- replyEvent{msg: msg, at: at}:
	default:
	}
}

func (e *envelope) fail(err error) {
	select {
	case e.replyCh <- replyEvent{err: err}:
	default:
	}
}

// Process is a simulated V process. A process is the unit of IPC
// addressing: senders name the recipient process directly, not a port or
// mailbox (§4.1).
type Process struct {
	pid  PID
	name string
	host *Host

	clock vtime.Clock
	mbox  chan *envelope
	done  chan struct{}

	mu      sync.Mutex
	dead    bool
	crashed bool              // died with its host, not by clean Destroy
	pending map[PID]*envelope // received but not yet replied, by origin pid
	// curSpan is the span this process's own activity currently nests
	// under (a serve, handoff or client-op span).
	curSpan trace.SpanID
}

// PID returns the process identifier.
func (p *Process) PID() PID { return p.pid }

// Name returns the process's diagnostic name.
func (p *Process) Name() string { return p.name }

// Host returns the logical host the process runs on.
func (p *Process) Host() *Host { return p.host }

// Kernel returns the domain the process belongs to.
func (p *Process) Kernel() *Kernel { return p.host.kernel }

// Clock returns the process's virtual clock.
func (p *Process) Clock() *vtime.Clock { return &p.clock }

// Now returns the process's current virtual time.
func (p *Process) Now() vtime.Time { return p.clock.Now() }

// ChargeCompute advances the process's virtual clock by a computation
// cost.
func (p *Process) ChargeCompute(d time.Duration) { p.clock.Advance(d) }

// Done is closed when the process is destroyed.
func (p *Process) Done() <-chan struct{} { return p.done }

// isDead is the lock-free liveness check on the send hot path. It reads
// the done channel rather than the mutex-guarded dead flag: a send
// racing a concurrent destroy is caught by deliver() either way, and
// the sequential paths the simulation measures see terminate()'s close
// before any later send.
func (p *Process) isDead() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Tracer returns the domain tracer (nil-safe to use when tracing is off).
func (p *Process) Tracer() *trace.Tracer { return p.host.kernel.Tracer() }

// TraceID identifies this process on trace spans.
func (p *Process) TraceID() trace.ProcID {
	return trace.ProcID{Name: p.name, PID: uint32(p.pid), Host: p.host.name}
}

// CurrentSpan returns the span this process's activity currently nests
// under (0 when none).
func (p *Process) CurrentSpan() trace.SpanID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.curSpan
}

// SetCurrentSpan sets (or, with 0, clears) the process's current span.
// Servers set it around serving a request so the kernel primitives they
// invoke parent their spans correctly.
func (p *Process) SetCurrentSpan(id trace.SpanID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.curSpan = id
}

// PendingSpan returns the transaction span of the received-but-unreplied
// message from origin, for servers starting a serve span.
func (p *Process) PendingSpan(origin PID) trace.SpanID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if env := p.pending[origin]; env != nil {
		return env.span
	}
	return 0
}

// Send sends msg to dst and blocks until the receiver (or the process the
// message is forwarded to) replies — one message transaction (Figure 1).
func (p *Process) Send(msg *proto.Message, dst PID) (*proto.Message, error) {
	return p.SendMove(msg, dst, nil, nil)
}

// SendMove is Send with memory segments attached: while the sender is
// blocked, the recipient may read moveSrc via MoveFrom and write moveDst
// via MoveTo (§3.1).
func (p *Process) SendMove(msg *proto.Message, dst PID, moveSrc, moveDst []byte) (*proto.Message, error) {
	if p.isDead() {
		return nil, ErrProcessDead
	}
	if dst.IsGroup() {
		return p.sendGroup(msg, dst, moveSrc, moveDst)
	}
	k := p.host.kernel
	tr := k.Tracer()
	// Span names are built only when tracing is on: the concatenations
	// (and PID.String's formatting) are the dominant allocations on the
	// untraced send path.
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.CurrentSpan(), trace.KindSend, msg.Op.String()+" -> "+dst.String(), p.clock.Now(), p.TraceID())
	}
	// Metrics, like the tracer, charge zero virtual time. The start time
	// is read before any cost accrues so the histogram sees the full
	// transaction latency.
	km := k.metrics.Load()
	var sendStart vtime.Time
	if km != nil {
		km.sends.Inc()
		km.inflight.Add(1)
		sendStart = p.clock.Now()
	}
	target, hostUp := k.findProcess(dst)
	if target == nil {
		p.chargeFailedSend(dst, hostUp)
		var err error
		if !hostUp && dst.Host() != p.host.id {
			err = fmt.Errorf("%w: %v (host down or gone)", ErrNonexistentProcess, dst)
		} else {
			err = fmt.Errorf("%w: %v", ErrNonexistentProcess, dst)
		}
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		km.sendFailed(err)
		return nil, err
	}
	d, det, err := k.net.UnicastDetail(p.host.id, dst.Host(), msg.WireSize(), p.clock.Now())
	if err != nil {
		p.clock.Advance(time.Duration(failedSendRetries) * k.model.RetransmitTimeout)
		err = fmt.Errorf("send to %v: %w", dst, err)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		km.sendFailed(err)
		return nil, err
	}
	tr.Wire(sp, "request", p.clock.Now(), d, msg.WireSize(), det, dst.Host() == p.host.id, false)
	env := newEnvelope()
	env.origin = p.pid
	env.msg = msg
	env.arrival = p.clock.Now() + d
	env.moveSrc = moveSrc
	env.moveDst = moveDst
	env.span = sp
	if !target.deliver(env) {
		// Never delivered: the sender is the sole owner and no completion
		// event can exist.
		env.release()
		p.chargeFailedSend(dst, true)
		err := fmt.Errorf("%w: %v", ErrNonexistentProcess, dst)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		km.sendFailed(err)
		return nil, err
	}
	ev := <-env.replyCh
	// A group-forwarded envelope retires instead of recycling:
	// stragglers may still write to its shared channel.
	if !env.shared {
		env.release()
	}
	if ev.err != nil {
		p.clock.Advance(k.model.RetransmitTimeout)
		err := fmt.Errorf("send to %v: %w", dst, ev.err)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		km.sendFailed(err)
		return nil, err
	}
	p.clock.Observe(ev.at)
	tr.End(sp, p.clock.Now())
	if km != nil {
		km.inflight.Add(-1)
		km.reg.Histogram("send_latency", metrics.Labels{Server: target.name, Op: msg.Op.String()}).
			Record(p.clock.Now() - sendStart)
	}
	return ev.msg, nil
}

// sendFailed records a failed send transaction, labeled by failure
// class. Nil-safe (metrics off).
func (km *kernelMetrics) sendFailed(err error) {
	if km == nil {
		return
	}
	km.inflight.Add(-1)
	km.reg.Counter("kernel_send_failures_total", metrics.Labels{Class: FailureClass(err)}).Inc()
}

// chargeFailedSend charges the virtual cost of discovering that a send
// cannot complete: a quick negative answer if the destination host is up,
// a retransmission timeout sequence if it is down or gone.
func (p *Process) chargeFailedSend(dst PID, hostUp bool) {
	m := p.host.kernel.model
	switch {
	case dst.Host() == p.host.id:
		// The local kernel table answers immediately.
		p.clock.Advance(m.GetPidLocalCost)
	case hostUp:
		// The remote kernel answers "nonexistent process": one round trip.
		p.clock.Advance(2 * m.RemoteHop(proto.HeaderBytes))
	default:
		p.clock.Advance(time.Duration(failedSendRetries) * m.RetransmitTimeout)
	}
}

// deliver enqueues an envelope for the process, failing if it is (or
// becomes) dead.
func (p *Process) deliver(env *envelope) bool {
	select {
	case <-p.done:
		return false
	default:
	}
	select {
	case p.mbox <- env:
		// If the process died between the check and the enqueue, sweep
		// the mailbox so the sender is not stranded.
		select {
		case <-p.done:
			p.drainMailbox()
		default:
		}
		return true
	case <-p.done:
		return false
	}
}

// Receive blocks until a message arrives, returning the message and the
// pid of the (original) sender. The message must eventually be answered
// with Reply or passed on with Forward.
func (p *Process) Receive() (*proto.Message, PID, error) {
	select {
	case env := <-p.mbox:
		p.clock.Observe(env.arrival)
		p.mu.Lock()
		if p.dead {
			p.mu.Unlock()
			env.fail(ErrNonexistentProcess)
			return nil, NilPID, ErrProcessDead
		}
		p.pending[env.origin] = env
		p.mu.Unlock()
		return env.msg, env.origin, nil
	case <-p.done:
		return nil, NilPID, ErrProcessDead
	}
}

// takePending removes and returns the pending envelope from origin.
func (p *Process) takePending(origin PID) *envelope {
	p.mu.Lock()
	defer p.mu.Unlock()
	env := p.pending[origin]
	delete(p.pending, origin)
	return env
}

// peekPending returns the pending envelope from origin without removing
// it, for Move operations that precede the Reply.
func (p *Process) peekPending(origin PID) *envelope {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending[origin]
}

// Reply completes the message transaction with the process `to`, which
// must have a received-but-unreplied message here.
func (p *Process) Reply(msg *proto.Message, to PID) error {
	env := p.takePending(to)
	if env == nil {
		return fmt.Errorf("%w: %v", ErrNoPendingMessage, to)
	}
	k := p.host.kernel
	tr := k.Tracer()
	var sp trace.SpanID
	if tr != nil {
		parent := p.CurrentSpan()
		if parent == 0 {
			parent = env.span
		}
		sp = tr.Start(parent, trace.KindReply, msg.Op.String()+" -> "+env.origin.String(), p.clock.Now(), p.TraceID())
	}
	d, det, err := k.net.UnicastDetail(p.host.id, env.origin.Host(), msg.WireSize(), p.clock.Now())
	if err != nil {
		err = fmt.Errorf("reply to %v: %w", to, err)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		env.fail(err)
		return err
	}
	tr.Wire(sp, "reply", p.clock.Now(), d, msg.WireSize(), det, env.origin.Host() == p.host.id, false)
	// End the span before unblocking the sender, so a snapshot taken
	// the moment the sender resumes never sees a half-open reply. The
	// reply counter bumps before completion for the same reason.
	tr.End(sp, p.clock.Now()+d)
	if km := k.metrics.Load(); km != nil {
		km.replies.Inc()
	}
	env.complete(msg, p.clock.Now()+d)
	return nil
}

// Forward passes the message transaction from `from` on to process `to`:
// it appears to `to` as though the original sender sent to it directly,
// and `to` is expected to receive the message and reply to the original
// sender (§3.1). The forwarder may modify the message first — this is how
// a server rewrites the context id and name index fields before passing a
// partially-interpreted CSname request along (§5.4).
func (p *Process) Forward(msg *proto.Message, from PID, to PID) error {
	env := p.takePending(from)
	if env == nil {
		return fmt.Errorf("%w: %v", ErrNoPendingMessage, from)
	}
	k := p.host.kernel
	tr := k.Tracer()
	var sp trace.SpanID
	if tr != nil {
		parent := p.CurrentSpan()
		if parent == 0 {
			parent = env.span
		}
		sp = tr.Start(parent, trace.KindForward, msg.Op.String()+" -> "+to.String(), p.clock.Now(), p.TraceID())
	}
	if to.IsGroup() {
		return p.forwardGroup(env, msg, to, sp)
	}
	target, _ := k.findProcess(to)
	if target == nil {
		err := fmt.Errorf("forward to %v: %w", to, ErrNonexistentProcess)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		env.fail(err)
		return err
	}
	d, det, err := k.net.UnicastDetail(p.host.id, to.Host(), msg.WireSize(), p.clock.Now())
	if err != nil {
		err = fmt.Errorf("forward to %v: %w", to, err)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		env.fail(err)
		return err
	}
	tr.Wire(sp, "forward", p.clock.Now(), d, msg.WireSize(), det, to.Host() == p.host.id, false)
	// Count before delivering: the recipient may serve and unblock the
	// original sender before this goroutine runs again, and a sample
	// taken then must already include this forward.
	if km := k.metrics.Load(); km != nil {
		km.forwards.Inc()
	}
	env.msg = msg
	env.arrival = p.clock.Now() + d
	env.span = sp
	// End before delivering: the recipient may serve and unblock the
	// original sender before this goroutine runs again, and a snapshot
	// then must not see a half-open forward. If delivery fails below,
	// the failure classification lands on the root send span instead.
	tr.End(sp, env.arrival)
	if !target.deliver(env) {
		err := fmt.Errorf("forward to %v: %w", to, ErrNonexistentProcess)
		env.fail(err)
		return err
	}
	return nil
}

// MoveFrom copies bytes from the memory segment of the blocked sender
// `src` (starting at offset) into dst, returning the count copied. The
// transfer is charged at the bulk-transfer packet rate (§3.1).
func (p *Process) MoveFrom(src PID, dst []byte, offset int) (int, error) {
	env := p.peekPending(src)
	if env == nil {
		return 0, fmt.Errorf("%w: %v", ErrNoPendingMessage, src)
	}
	if env.moveSrc == nil {
		return 0, fmt.Errorf("%w: sender attached no readable segment", proto.ErrBadArgs)
	}
	if offset < 0 || offset > len(env.moveSrc) {
		return 0, fmt.Errorf("%w: MoveFrom offset %d outside segment of %d", proto.ErrBadArgs, offset, len(env.moveSrc))
	}
	n := copy(dst, env.moveSrc[offset:])
	d, det, err := p.host.kernel.net.UnicastDetail(src.Host(), p.host.id, n, p.clock.Now())
	if err != nil {
		return 0, err
	}
	if tr := p.Tracer(); tr != nil {
		parent := p.CurrentSpan()
		if parent == 0 {
			parent = env.span
		}
		tr.Wire(parent, "move-from", p.clock.Now(), d, n, det, src.Host() == p.host.id, false)
	}
	p.clock.Advance(d)
	return n, nil
}

// MoveTo copies data into the memory segment of the blocked sender `dst`
// at the given offset, returning the count copied.
func (p *Process) MoveTo(dst PID, offset int, data []byte) (int, error) {
	env := p.peekPending(dst)
	if env == nil {
		return 0, fmt.Errorf("%w: %v", ErrNoPendingMessage, dst)
	}
	if env.moveDst == nil {
		return 0, fmt.Errorf("%w: sender attached no writable segment", proto.ErrBadArgs)
	}
	if offset < 0 || offset > len(env.moveDst) {
		return 0, fmt.Errorf("%w: MoveTo offset %d outside segment of %d", proto.ErrBadArgs, offset, len(env.moveDst))
	}
	n := copy(env.moveDst[offset:], data)
	d, det, err := p.host.kernel.net.UnicastDetail(p.host.id, dst.Host(), n, p.clock.Now())
	if err != nil {
		return 0, err
	}
	if tr := p.Tracer(); tr != nil {
		parent := p.CurrentSpan()
		if parent == 0 {
			parent = env.span
		}
		tr.Wire(parent, "move-to", p.clock.Now(), d, n, det, dst.Host() == p.host.id, false)
	}
	p.clock.Advance(d)
	return n, nil
}

// SetPid registers pid as providing service on this process's host (§4.2).
func (p *Process) SetPid(service Service, pid PID, vis Scope) error {
	return p.host.SetPid(service, pid, vis)
}

// GetPid returns the pid of a process registered as providing service
// within the given scope (§4.2). The local kernel table is consulted
// first; unless the scope is local, a broadcast query then asks the other
// kernels on the network.
func (p *Process) GetPid(service Service, scope Scope) (PID, error) {
	k := p.host.kernel
	m := k.model
	tr := k.Tracer()
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.CurrentSpan(), trace.KindGetPid, service.String(), p.clock.Now(), p.TraceID())
	}
	if km := k.metrics.Load(); km != nil {
		km.getpids.Inc()
	}
	if scope != ScopeRemote {
		p.clock.Advance(m.GetPidLocalCost)
		if pid, ok := p.host.lookupService(service, false); ok {
			tr.End(sp, p.clock.Now())
			return pid, nil
		}
		if scope == ScopeLocal {
			err := fmt.Errorf("%w: %v (local)", ErrNotFound, service)
			tr.Fail(sp, p.clock.Now(), FailureClass(err))
			return NilPID, err
		}
	}
	// One broadcast frame queries every kernel; the first positive
	// response (lowest host id, deterministically) costs one return hop.
	bcast := k.net.Broadcast(p.host.id, proto.HeaderBytes, p.clock.Now())
	tr.Wire(sp, "getpid-broadcast", p.clock.Now(), bcast, proto.HeaderBytes, netsim.HopDetail{Packets: 1}, false, true)
	for _, h := range k.aliveHostsSorted() {
		if h.id == p.host.id || !k.net.Reachable(p.host.id, h.id) {
			continue
		}
		if pid, ok := h.lookupService(service, true); ok {
			p.clock.Advance(bcast + m.RemoteHop(proto.HeaderBytes))
			tr.End(sp, p.clock.Now())
			return pid, nil
		}
	}
	p.clock.Advance(bcast + m.RetransmitTimeout)
	err := fmt.Errorf("%w: %v", ErrNotFound, service)
	tr.Fail(sp, p.clock.Now(), FailureClass(err))
	return NilPID, err
}

// Destroy terminates the process: blocked senders get
// ErrNonexistentProcess, its service registrations are removed, and it
// leaves all groups.
func (p *Process) Destroy() {
	h := p.host
	h.mu.Lock()
	if (*h.procs.Load())[p.pid.Local()] == p {
		h.storeProcs(p.pid.Local(), nil)
	}
	h.mu.Unlock()
	h.deregisterPid(p.pid)
	h.kernel.leaveAllGroups(p.pid)
	p.terminate(false)
}

// CrashKilled reports whether the process died in a host crash rather
// than a clean Destroy. Unlike Host.Alive it stays true across a host
// Restart, so a server team waking up late can still classify its own
// death correctly (the host may already be back up with a replacement
// server by the time the dying goroutine runs).
func (p *Process) CrashKilled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// terminate marks the process dead and fails every outstanding
// transaction touching it. crashed records the cause for CrashKilled.
func (p *Process) terminate(crashed bool) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.crashed = crashed
	pend := p.pending
	p.pending = make(map[PID]*envelope)
	p.mu.Unlock()
	close(p.done)
	for _, env := range pend {
		// This process's goroutine may still be touching the envelope
		// (mid-MoveFrom/MoveTo); leave it to the GC instead of letting the
		// sender recycle it out from under that access.
		env.shared = true
		env.fail(ErrNonexistentProcess)
	}
	p.drainMailbox()
}

func (p *Process) drainMailbox() {
	for {
		select {
		case env := <-p.mbox:
			env.fail(ErrNonexistentProcess)
		default:
			return
		}
	}
}
