package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Errors returned by kernel operations.
var (
	// ErrNonexistentProcess is returned when a message transaction names
	// a process that does not exist (never created, destroyed, or on a
	// crashed host).
	ErrNonexistentProcess = errors.New("kernel: nonexistent process")
	// ErrProcessDead is returned to a process's own operations after it
	// has been destroyed.
	ErrProcessDead = errors.New("kernel: process destroyed")
	// ErrNotFound is returned by GetPid when no registration matches.
	ErrNotFound = errors.New("kernel: no process registered for service")
	// ErrNoPendingMessage is returned by Reply/Forward/Move operations
	// when there is no received-but-unreplied message from the given pid.
	ErrNoPendingMessage = errors.New("kernel: no pending message from process")
	// ErrHostDown is returned when operating on a crashed host.
	ErrHostDown = errors.New("kernel: host down")
	// ErrNoSuchGroup is returned for operations on unknown group ids.
	ErrNoSuchGroup = errors.New("kernel: no such group")
	// ErrUnreachable wraps network partition failures.
	ErrUnreachable = netsim.ErrUnreachable
)

// failedSendRetries is how many retransmission timeouts a sender burns
// before giving up on an unreachable or dead remote host.
const failedSendRetries = 3

// FailureClass maps a kernel-level error to the short classification
// string attached to failed trace spans. The mapping is checked most
// specific first: a wrapped ErrHostDown stays "host-down" even though
// the wrapping error chain may also carry ErrNonexistentProcess.
func FailureClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrHostDown):
		return "host-down"
	case errors.Is(err, netsim.ErrUnreachable):
		return "unreachable"
	case errors.Is(err, ErrNonexistentProcess):
		return "nonexistent-process"
	case errors.Is(err, ErrProcessDead):
		return "process-dead"
	case errors.Is(err, ErrNoPendingMessage):
		return "no-pending-message"
	case errors.Is(err, ErrNotFound):
		return "service-not-found"
	case errors.Is(err, ErrNoSuchGroup):
		return "no-such-group"
	default:
		return "error"
	}
}

// Kernel is one simulated V domain: the set of logical hosts running the
// distributed V kernel over one local network (§4.1).
type Kernel struct {
	net   *netsim.Network
	model *vtime.CostModel

	// tracer is the observer every IPC primitive reports spans to. A
	// nil tracer (the default) records nothing; tracing never advances
	// a virtual clock either way.
	tracer atomic.Pointer[trace.Tracer]

	mu       sync.Mutex
	hosts    map[netsim.HostID]*Host
	nextHost uint16
	groups   map[uint16]*group
	nextGrp  uint16
}

// New creates a V domain over the given network.
func New(n *netsim.Network) *Kernel {
	return &Kernel{
		net:    n,
		model:  n.Model(),
		hosts:  make(map[netsim.HostID]*Host),
		groups: make(map[uint16]*group),
	}
}

// Network returns the underlying simulated network.
func (k *Kernel) Network() *netsim.Network { return k.net }

// SetTracer installs (or, with nil, removes) the domain's tracer.
func (k *Kernel) SetTracer(t *trace.Tracer) { k.tracer.Store(t) }

// Tracer returns the installed tracer; nil means tracing is off, and a
// nil *trace.Tracer accepts every recording call as a no-op.
func (k *Kernel) Tracer() *trace.Tracer { return k.tracer.Load() }

// Model returns the cost model in force.
func (k *Kernel) Model() *vtime.CostModel { return k.model }

// NewHost boots a new logical host into the domain.
func (k *Kernel) NewHost(name string) *Host {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextHost++
	id := netsim.HostID(k.nextHost)
	h := &Host{
		id:     id,
		name:   name,
		kernel: k,
		procs:  make(map[uint16]*Process),
		// Local pids are allocated from a per-host starting point spread
		// across the 16-bit space, mimicking V's randomized allocation
		// while staying deterministic.
		nextLocal: uint16(id)*2657 + 100,
		services:  make(map[Service]svcEntry),
		alive:     true,
	}
	k.hosts[id] = h
	return h
}

// HostByID returns the host with the given id, or nil.
func (k *Kernel) HostByID(id netsim.HostID) *Host {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.hosts[id]
}

// HostByName returns the host with the given configured name, or nil.
// Host names are unique in the rigs this simulation builds; if several
// hosts share a name the lowest id wins, deterministically.
func (k *Kernel) HostByName(name string) *Host {
	k.mu.Lock()
	defer k.mu.Unlock()
	var found *Host
	for _, h := range k.hosts {
		if h.name == name && (found == nil || h.id < found.id) {
			found = h
		}
	}
	return found
}

// ProcessAlive reports whether pid currently names a live process (its
// host is up and the process exists). For a group pid it reports whether
// the group has at least one live member. It is the cheap liveness probe
// servers use before forwarding a transaction (§5.4): the local kernel
// can answer from its tables without a network exchange in simulation.
func (k *Kernel) ProcessAlive(pid PID) bool {
	if pid == NilPID {
		return false
	}
	if pid.IsGroup() {
		members, err := k.GroupMembers(pid)
		if err != nil {
			return false
		}
		for _, m := range members {
			if p, _ := k.findProcess(m); p != nil {
				return true
			}
		}
		return false
	}
	p, _ := k.findProcess(pid)
	return p != nil
}

// findProcess resolves a pid to its live process. The second result
// reports whether the pid's host exists and is alive (so callers can
// distinguish "host down / partitioned" from "host up, process gone").
func (k *Kernel) findProcess(pid PID) (*Process, bool) {
	k.mu.Lock()
	h := k.hosts[pid.Host()]
	k.mu.Unlock()
	if h == nil {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive {
		return nil, false
	}
	return h.procs[pid.Local()], true
}

// aliveHostsSorted snapshots the alive hosts in id order, for
// deterministic broadcast queries.
func (k *Kernel) aliveHostsSorted() []*Host {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Host, 0, len(k.hosts))
	for _, h := range k.hosts {
		h.mu.Lock()
		alive := h.alive
		h.mu.Unlock()
		if alive {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// svcEntry is one row of a host kernel's service table.
type svcEntry struct {
	pid PID
	vis Scope
}

// Host is one logical host: a set of processes sharing a kernel service
// table and a network station.
type Host struct {
	id     netsim.HostID
	name   string
	kernel *Kernel

	mu        sync.Mutex
	procs     map[uint16]*Process
	nextLocal uint16
	services  map[Service]svcEntry
	alive     bool
}

// ID returns the host's logical-host identifier.
func (h *Host) ID() netsim.HostID { return h.id }

// Name returns the host's configured name.
func (h *Host) Name() string { return h.name }

// Kernel returns the domain this host belongs to.
func (h *Host) Kernel() *Kernel { return h.kernel }

// Alive reports whether the host is up.
func (h *Host) Alive() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alive
}

// NewProcess creates a process on this host. The caller drives it (or
// passes it to a goroutine); see Spawn for the server-loop convenience.
func (h *Host) NewProcess(name string) (*Process, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	if len(h.procs) >= 0xFFFE {
		return nil, errors.New("kernel: host process table full")
	}
	// Find a free local pid, skipping 0 and in-use slots. Allocation
	// starts from a moving point to maximize time before reuse (§4.1).
	for {
		h.nextLocal++
		if h.nextLocal == 0 {
			h.nextLocal = 1
		}
		if _, used := h.procs[h.nextLocal]; !used {
			break
		}
	}
	p := &Process{
		pid:     MakePID(h.id, h.nextLocal),
		name:    name,
		host:    h,
		mbox:    make(chan *envelope, mailboxDepth),
		pending: make(map[PID]*envelope),
		done:    make(chan struct{}),
	}
	h.procs[h.nextLocal] = p
	return p, nil
}

// Spawn creates a process and runs body in its own goroutine; the
// goroutine should loop on Receive until it returns ErrProcessDead. The
// returned process can be stopped with Destroy.
func (h *Host) Spawn(name string, body func(p *Process)) (*Process, error) {
	p, err := h.NewProcess(name)
	if err != nil {
		return nil, err
	}
	go body(p)
	return p, nil
}

// SpawnTeam creates the worker processes of a multi-process server team
// (§3.1): n processes on this host, each running body in its own
// goroutine. Workers are named "<leader>/worker<i>" so traces and
// process listings identify team membership; the leader (receptionist)
// process itself is spawned separately by the caller. On error, any
// workers already created are destroyed.
func (h *Host) SpawnTeam(leader string, n int, body func(p *Process)) ([]*Process, error) {
	workers := make([]*Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := h.Spawn(fmt.Sprintf("%s/worker%d", leader, i), body)
		if err != nil {
			for _, w := range workers {
				w.Destroy()
			}
			return nil, err
		}
		workers = append(workers, p)
	}
	return workers, nil
}

// Crash takes the host down: every process on it is destroyed (pending
// senders get ErrNonexistentProcess) and its kernel service table is
// cleared. The host keeps its logical-host id and can be Restarted.
func (h *Host) Crash() {
	h.mu.Lock()
	if !h.alive {
		h.mu.Unlock()
		return
	}
	h.alive = false
	procs := make([]*Process, 0, len(h.procs))
	for _, p := range h.procs {
		procs = append(procs, p)
	}
	h.procs = make(map[uint16]*Process)
	h.services = make(map[Service]svcEntry)
	h.mu.Unlock()
	for _, p := range procs {
		p.terminate(true)
	}
}

// Restart brings a crashed host back up with empty process and service
// tables. Local pid allocation continues from where it left off, so
// re-created servers get different pids — the §4.2 rebinding scenario.
func (h *Host) Restart() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.alive = true
}

// ProcessByPID returns the live process with the given pid on this host.
func (h *Host) ProcessByPID(pid PID) (*Process, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	p := h.procs[pid.Local()]
	if p == nil || p.pid != pid {
		return nil, fmt.Errorf("%w: %v", ErrNonexistentProcess, pid)
	}
	return p, nil
}

// SetPid registers pid as providing service with the given visibility in
// this host's kernel table (§4.2).
func (h *Host) SetPid(service Service, pid PID, vis Scope) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive {
		return fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	h.services[service] = svcEntry{pid: pid, vis: vis}
	return nil
}

// ClearPid removes a service registration.
func (h *Host) ClearPid(service Service) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.services, service)
}

// lookupService consults this host's kernel table. remoteQuery selects
// whether the query arrived by broadcast from another host.
func (h *Host) lookupService(service Service, remoteQuery bool) (PID, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive {
		return NilPID, false
	}
	e, ok := h.services[service]
	if !ok {
		return NilPID, false
	}
	if remoteQuery {
		if e.vis == ScopeLocal {
			return NilPID, false
		}
	} else if e.vis == ScopeRemote {
		return NilPID, false
	}
	return e.pid, true
}

// deregisterPid removes all service registrations pointing at pid, used
// when a process is destroyed.
func (h *Host) deregisterPid(pid PID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s, e := range h.services {
		if e.pid == pid {
			delete(h.services, s)
		}
	}
}
