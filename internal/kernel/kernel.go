package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Errors returned by kernel operations.
var (
	// ErrNonexistentProcess is returned when a message transaction names
	// a process that does not exist (never created, destroyed, or on a
	// crashed host).
	ErrNonexistentProcess = errors.New("kernel: nonexistent process")
	// ErrProcessDead is returned to a process's own operations after it
	// has been destroyed.
	ErrProcessDead = errors.New("kernel: process destroyed")
	// ErrNotFound is returned by GetPid when no registration matches.
	ErrNotFound = errors.New("kernel: no process registered for service")
	// ErrNoPendingMessage is returned by Reply/Forward/Move operations
	// when there is no received-but-unreplied message from the given pid.
	ErrNoPendingMessage = errors.New("kernel: no pending message from process")
	// ErrHostDown is returned when operating on a crashed host.
	ErrHostDown = errors.New("kernel: host down")
	// ErrNoSuchGroup is returned for operations on unknown group ids.
	ErrNoSuchGroup = errors.New("kernel: no such group")
	// ErrUnreachable wraps network partition failures.
	ErrUnreachable = netsim.ErrUnreachable
)

// failedSendRetries is how many retransmission timeouts a sender burns
// before giving up on an unreachable or dead remote host.
const failedSendRetries = 3

// FailureClass maps a kernel-level error to the short classification
// string attached to failed trace spans. The mapping is checked most
// specific first: a wrapped ErrHostDown stays "host-down" even though
// the wrapping error chain may also carry ErrNonexistentProcess.
func FailureClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrHostDown):
		return "host-down"
	case errors.Is(err, netsim.ErrUnreachable):
		return "unreachable"
	case errors.Is(err, ErrNonexistentProcess):
		return "nonexistent-process"
	case errors.Is(err, ErrProcessDead):
		return "process-dead"
	case errors.Is(err, ErrNoPendingMessage):
		return "no-pending-message"
	case errors.Is(err, ErrNotFound):
		return "service-not-found"
	case errors.Is(err, ErrNoSuchGroup):
		return "no-such-group"
	default:
		return "error"
	}
}

// Kernel is one simulated V domain: the set of logical hosts running the
// distributed V kernel over one local network (§4.1).
type Kernel struct {
	net   *netsim.Network
	model *vtime.CostModel

	// tracer is the observer every IPC primitive reports spans to. A
	// nil tracer (the default) records nothing; tracing never advances
	// a virtual clock either way.
	tracer atomic.Pointer[trace.Tracer]

	// metrics caches the registry and the domain-wide instruments the
	// send path bumps, behind one atomic load — same zero-virtual-cost
	// contract as the tracer.
	metrics atomic.Pointer[kernelMetrics]

	// flight is the always-on flight recorder (PROTOCOL.md §15), under
	// the same observer contract: a nil recorder accepts every Record
	// as a no-op, and recording never advances a virtual clock.
	flight atomic.Pointer[flight.Recorder]

	// hosts is a copy-on-write snapshot: hosts are only ever added, so
	// the send path (findProcess on every message) indexes it without a
	// lock. Writers copy under mu and publish atomically.
	hosts atomic.Pointer[map[netsim.HostID]*Host]

	mu       sync.Mutex
	nextHost uint16
	groups   map[uint16]*group
	nextGrp  uint16
}

// New creates a V domain over the given network.
func New(n *netsim.Network) *Kernel {
	k := &Kernel{
		net:    n,
		model:  n.Model(),
		groups: make(map[uint16]*group),
	}
	hosts := make(map[netsim.HostID]*Host)
	k.hosts.Store(&hosts)
	return k
}

// Network returns the underlying simulated network.
func (k *Kernel) Network() *netsim.Network { return k.net }

// SetTracer installs (or, with nil, removes) the domain's tracer.
func (k *Kernel) SetTracer(t *trace.Tracer) { k.tracer.Store(t) }

// Tracer returns the installed tracer; nil means tracing is off, and a
// nil *trace.Tracer accepts every recording call as a no-op.
func (k *Kernel) Tracer() *trace.Tracer { return k.tracer.Load() }

// SetFlight installs (or, with nil, removes) the domain's flight
// recorder.
func (k *Kernel) SetFlight(r *flight.Recorder) { k.flight.Store(r) }

// Flight returns the installed flight recorder; nil is a valid no-op
// recorder, so call sites record unconditionally.
func (k *Kernel) Flight() *flight.Recorder { return k.flight.Load() }

// kernelMetrics is the pre-resolved instrument set the IPC hot path
// records into, so a send costs one atomic pointer load plus a few
// atomic adds — no registry lookups.
type kernelMetrics struct {
	reg      *metrics.Registry
	sends    *metrics.Counter
	forwards *metrics.Counter
	replies  *metrics.Counter
	getpids  *metrics.Counter
	inflight *metrics.Gauge
}

// SetMetrics installs (or, with nil, removes) the domain's metrics
// registry. Recording charges zero virtual time.
func (k *Kernel) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		k.metrics.Store(nil)
		return
	}
	k.metrics.Store(&kernelMetrics{
		reg:      reg,
		sends:    reg.Counter("kernel_sends_total", metrics.Labels{}),
		forwards: reg.Counter("kernel_forwards_total", metrics.Labels{}),
		replies:  reg.Counter("kernel_replies_total", metrics.Labels{}),
		getpids:  reg.Counter("kernel_getpid_total", metrics.Labels{}),
		inflight: reg.Gauge("kernel_inflight", metrics.Labels{}),
	})
}

// Metrics returns the installed registry, or nil. A nil *Registry (and
// every instrument it hands out) accepts calls as no-ops.
func (k *Kernel) Metrics() *metrics.Registry {
	if km := k.metrics.Load(); km != nil {
		return km.reg
	}
	return nil
}

// Model returns the cost model in force.
func (k *Kernel) Model() *vtime.CostModel { return k.model }

// NewHost boots a new logical host into the domain.
func (k *Kernel) NewHost(name string) *Host {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextHost++
	id := netsim.HostID(k.nextHost)
	h := &Host{
		id:     id,
		name:   name,
		kernel: k,
		// Local pids are allocated from a per-host starting point spread
		// across the 16-bit space, mimicking V's randomized allocation
		// while staying deterministic.
		nextLocal: uint16(id)*2657 + 100,
	}
	h.alive.Store(true)
	h.shard.Store(-1)
	procs := make(map[uint16]*Process)
	h.procs.Store(&procs)
	services := make(map[Service]svcEntry)
	h.services.Store(&services)

	old := *k.hosts.Load()
	hosts := make(map[netsim.HostID]*Host, len(old)+1)
	for hid, hh := range old {
		hosts[hid] = hh
	}
	hosts[id] = h
	k.hosts.Store(&hosts)
	return h
}

// HostByID returns the host with the given id, or nil.
func (k *Kernel) HostByID(id netsim.HostID) *Host {
	return (*k.hosts.Load())[id]
}

// HostByName returns the host with the given configured name, or nil.
// Host names are unique in the rigs this simulation builds; if several
// hosts share a name the lowest id wins, deterministically.
func (k *Kernel) HostByName(name string) *Host {
	var found *Host
	for _, h := range *k.hosts.Load() {
		if h.name == name && (found == nil || h.id < found.id) {
			found = h
		}
	}
	return found
}

// ProcessAlive reports whether pid currently names a live process (its
// host is up and the process exists). For a group pid it reports whether
// the group has at least one live member. It is the cheap liveness probe
// servers use before forwarding a transaction (§5.4): the local kernel
// can answer from its tables without a network exchange in simulation.
func (k *Kernel) ProcessAlive(pid PID) bool {
	if pid == NilPID {
		return false
	}
	if pid.IsGroup() {
		members, err := k.GroupMembers(pid)
		if err != nil {
			return false
		}
		for _, m := range members {
			if p, _ := k.findProcess(m); p != nil {
				return true
			}
		}
		return false
	}
	p, _ := k.findProcess(pid)
	return p != nil
}

// findProcess resolves a pid to its live process. The second result
// reports whether the pid's host exists and is alive (so callers can
// distinguish "host down / partitioned" from "host up, process gone").
func (k *Kernel) findProcess(pid PID) (*Process, bool) {
	h := (*k.hosts.Load())[pid.Host()]
	if h == nil || !h.alive.Load() {
		return nil, false
	}
	return (*h.procs.Load())[pid.Local()], true
}

// aliveHostsSorted snapshots the alive hosts in id order, for
// deterministic broadcast queries.
func (k *Kernel) aliveHostsSorted() []*Host {
	hosts := *k.hosts.Load()
	out := make([]*Host, 0, len(hosts))
	for _, h := range hosts {
		if h.alive.Load() {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// svcEntry is one row of a host kernel's service table.
type svcEntry struct {
	pid PID
	vis Scope
}

// Host is one logical host: a set of processes sharing a kernel service
// table and a network station.
type Host struct {
	id     netsim.HostID
	name   string
	kernel *Kernel

	// procs and services are copy-on-write snapshots: the send path
	// resolves pids and service registrations lock-free; writers copy
	// under mu and publish atomically. alive flips atomically so readers
	// never queue behind a crashing host.
	alive    atomic.Bool
	procs    atomic.Pointer[map[uint16]*Process]
	services atomic.Pointer[map[Service]svcEntry]

	// shard labels the host with the execution-engine lane that owns its
	// local traffic under the sharded workload drivers (PROTOCOL.md §12).
	// Hosts start unsharded (-1): their traffic is never classified as
	// lane-confined.
	shard atomic.Int64

	mu        sync.Mutex // serializes writers of the tables above
	nextLocal uint16
}

// ID returns the host's logical-host identifier.
func (h *Host) ID() netsim.HostID { return h.id }

// Name returns the host's configured name.
func (h *Host) Name() string { return h.name }

// Kernel returns the domain this host belongs to.
func (h *Host) Kernel() *Kernel { return h.kernel }

// Alive reports whether the host is up.
func (h *Host) Alive() bool {
	return h.alive.Load()
}

// SetShard labels the host with the execution-engine lane that owns its
// local traffic (negative clears the label). Sharded topologies label
// each shard's host so operation classifiers can prove co-residency
// instead of assuming it.
func (h *Host) SetShard(lane int) { h.shard.Store(int64(lane)) }

// Shard returns the host's engine-lane label, or -1 when unsharded.
func (h *Host) Shard() int { return int(h.shard.Load()) }

// HostOf returns the host a pid lives on, whether or not the process
// (or the host) is still alive — pids encode their host, so this is a
// pure table lookup. Returns nil for unknown hosts and group pids.
func (k *Kernel) HostOf(pid PID) *Host {
	if pid == NilPID || pid.IsGroup() {
		return nil
	}
	return (*k.hosts.Load())[pid.Host()]
}

// storeProcs publishes a fresh copy of the process table with local pid
// slot set to p (or removed when p is nil). Caller holds h.mu.
func (h *Host) storeProcs(local uint16, p *Process) {
	old := *h.procs.Load()
	procs := make(map[uint16]*Process, len(old)+1)
	for l, q := range old {
		procs[l] = q
	}
	if p == nil {
		delete(procs, local)
	} else {
		procs[local] = p
	}
	h.procs.Store(&procs)
}

// NewProcess creates a process on this host. The caller drives it (or
// passes it to a goroutine); see Spawn for the server-loop convenience.
func (h *Host) NewProcess(name string) (*Process, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive.Load() {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	procs := *h.procs.Load()
	if len(procs) >= 0xFFFE {
		return nil, errors.New("kernel: host process table full")
	}
	// Find a free local pid, skipping 0 and in-use slots. Allocation
	// starts from a moving point to maximize time before reuse (§4.1).
	for {
		h.nextLocal++
		if h.nextLocal == 0 {
			h.nextLocal = 1
		}
		if _, used := procs[h.nextLocal]; !used {
			break
		}
	}
	p := &Process{
		pid:     MakePID(h.id, h.nextLocal),
		name:    name,
		host:    h,
		mbox:    make(chan *envelope, mailboxDepth),
		pending: make(map[PID]*envelope),
		done:    make(chan struct{}),
	}
	h.storeProcs(h.nextLocal, p)
	return p, nil
}

// Spawn creates a process and runs body in its own goroutine; the
// goroutine should loop on Receive until it returns ErrProcessDead. The
// returned process can be stopped with Destroy.
func (h *Host) Spawn(name string, body func(p *Process)) (*Process, error) {
	p, err := h.NewProcess(name)
	if err != nil {
		return nil, err
	}
	go body(p)
	return p, nil
}

// SpawnTeam creates the worker processes of a multi-process server team
// (§3.1): n processes on this host, each running body in its own
// goroutine. Workers are named "<leader>/worker<i>" so traces and
// process listings identify team membership; the leader (receptionist)
// process itself is spawned separately by the caller. On error, any
// workers already created are destroyed.
func (h *Host) SpawnTeam(leader string, n int, body func(p *Process)) ([]*Process, error) {
	workers := make([]*Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := h.Spawn(fmt.Sprintf("%s/worker%d", leader, i), body)
		if err != nil {
			for _, w := range workers {
				w.Destroy()
			}
			return nil, err
		}
		workers = append(workers, p)
	}
	return workers, nil
}

// Crash takes the host down: every process on it is destroyed (pending
// senders get ErrNonexistentProcess) and its kernel service table is
// cleared. The host keeps its logical-host id and can be Restarted.
func (h *Host) Crash() {
	h.mu.Lock()
	if !h.alive.Load() {
		h.mu.Unlock()
		return
	}
	h.alive.Store(false)
	old := *h.procs.Load()
	procs := make([]*Process, 0, len(old))
	for _, p := range old {
		procs = append(procs, p)
	}
	emptyProcs := make(map[uint16]*Process)
	h.procs.Store(&emptyProcs)
	emptySvcs := make(map[Service]svcEntry)
	h.services.Store(&emptySvcs)
	h.mu.Unlock()
	for _, p := range procs {
		p.terminate(true)
	}
}

// Restart brings a crashed host back up with empty process and service
// tables. Local pid allocation continues from where it left off, so
// re-created servers get different pids — the §4.2 rebinding scenario.
func (h *Host) Restart() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.alive.Store(true)
}

// ProcessByPID returns the live process with the given pid on this host.
func (h *Host) ProcessByPID(pid PID) (*Process, error) {
	if !h.alive.Load() {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	p := (*h.procs.Load())[pid.Local()]
	if p == nil || p.pid != pid {
		return nil, fmt.Errorf("%w: %v", ErrNonexistentProcess, pid)
	}
	return p, nil
}

// storeServices publishes a fresh copy of the service table produced by
// mutate. Caller holds h.mu.
func (h *Host) storeServices(mutate func(map[Service]svcEntry)) {
	old := *h.services.Load()
	services := make(map[Service]svcEntry, len(old)+1)
	for s, e := range old {
		services[s] = e
	}
	mutate(services)
	h.services.Store(&services)
}

// SetPid registers pid as providing service with the given visibility in
// this host's kernel table (§4.2).
func (h *Host) SetPid(service Service, pid PID, vis Scope) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive.Load() {
		return fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	h.storeServices(func(m map[Service]svcEntry) {
		m[service] = svcEntry{pid: pid, vis: vis}
	})
	return nil
}

// ClearPid removes a service registration.
func (h *Host) ClearPid(service Service) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.storeServices(func(m map[Service]svcEntry) {
		delete(m, service)
	})
}

// lookupService consults this host's kernel table. remoteQuery selects
// whether the query arrived by broadcast from another host.
func (h *Host) lookupService(service Service, remoteQuery bool) (PID, bool) {
	if !h.alive.Load() {
		return NilPID, false
	}
	e, ok := (*h.services.Load())[service]
	if !ok {
		return NilPID, false
	}
	if remoteQuery {
		if e.vis == ScopeLocal {
			return NilPID, false
		}
	} else if e.vis == ScopeRemote {
		return NilPID, false
	}
	return e.pid, true
}

// deregisterPid removes all service registrations pointing at pid, used
// when a process is destroyed.
func (h *Host) deregisterPid(pid PID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.storeServices(func(m map[Service]svcEntry) {
		for s, e := range m {
			if e.pid == pid {
				delete(m, s)
			}
		}
	})
}
