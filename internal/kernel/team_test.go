package kernel

import (
	"errors"
	"testing"
)

func TestSpawnTeamSpawnsWorkers(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("srv")
	started := make(chan PID, 4)
	workers, err := h.SpawnTeam("fs", 4, func(p *Process) {
		started <- p.PID()
		<-p.Done()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 4 {
		t.Fatalf("spawned %d workers", len(workers))
	}
	seen := make(map[PID]bool)
	for i := 0; i < 4; i++ {
		seen[<-started] = true
	}
	for i, w := range workers {
		if !seen[w.PID()] {
			t.Fatalf("worker %d body never ran", i)
		}
		want := "fs/worker" + string(rune('0'+i))
		if w.Name() != want {
			t.Fatalf("worker %d name = %q, want %q", i, w.Name(), want)
		}
	}
	for _, w := range workers {
		w.Destroy()
	}
}

func TestSpawnTeamOnCrashedHost(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("srv")
	h.Crash()
	if _, err := h.SpawnTeam("fs", 2, func(p *Process) {}); !errors.Is(err, ErrHostDown) {
		t.Fatalf("err = %v, want ErrHostDown", err)
	}
}
