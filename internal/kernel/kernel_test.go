package kernel

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// newDomain builds a kernel over a default-model network.
func newDomain(t *testing.T) *Kernel {
	t.Helper()
	return New(netsim.New(vtime.DefaultModel(), 1))
}

// spawnEcho starts an echo server that replies to every request with the
// same message, with no processing charge (the §3.1 IPC measurement).
func spawnEcho(t *testing.T, h *Host) *Process {
	t.Helper()
	p, err := h.Spawn("echo", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Destroy)
	return p
}

func newClient(t *testing.T, h *Host, name string) *Process {
	t.Helper()
	p, err := h.NewProcess(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Destroy)
	return p
}

func TestPIDSubfields(t *testing.T) {
	p := MakePID(0x0102, 0xA0B0)
	if p.Host() != 0x0102 || p.Local() != 0xA0B0 {
		t.Fatalf("subfields: host=%x local=%x", p.Host(), p.Local())
	}
	if p.IsGroup() {
		t.Fatal("ordinary pid misclassified as group")
	}
	if NilPID.IsGroup() {
		t.Fatal("nil pid misclassified as group")
	}
}

func TestPIDRoundTripProperty(t *testing.T) {
	f := func(host, local uint16) bool {
		p := MakePID(netsim.HostID(host), local)
		return p.Host() == netsim.HostID(host) && p.Local() == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameHost(t *testing.T) {
	a := MakePID(1, 10)
	b := MakePID(1, 11)
	c := MakePID(2, 10)
	if !SameHost(a, b) || SameHost(a, c) {
		t.Fatal("SameHost misjudges locality")
	}
}

func TestPIDUniquePerHost(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("ws1")
	seen := make(map[PID]bool)
	for i := 0; i < 200; i++ {
		p, err := h.NewProcess("p")
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.PID()] {
			t.Fatalf("duplicate pid %v", p.PID())
		}
		seen[p.PID()] = true
	}
}

func TestPIDsDifferAcrossHosts(t *testing.T) {
	// Each logical host independently generates unique pids without
	// conflict because the host subfield differs (§4.1).
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	p1, _ := h1.NewProcess("x")
	p2, _ := h2.NewProcess("x")
	if p1.PID() == p2.PID() {
		t.Fatal("pids collided across hosts")
	}
	if p1.PID().Host() == p2.PID().Host() {
		t.Fatal("hosts share a logical-host id")
	}
}

func TestSendReceiveReplyLocal(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("ws")
	echo := spawnEcho(t, h)
	client := newClient(t, h, "client")

	req := &proto.Message{Op: proto.OpEcho, F: [6]uint32{42}}
	reply, err := client.Send(req, echo.PID())
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != proto.ReplyOK || reply.F[0] != 42 {
		t.Fatalf("reply = %+v", reply)
	}
}

// TestE1RemoteTransactionTiming is the kernel-level E1 experiment: a
// 32-byte Send-Receive-Reply between processes on separate hosts must cost
// the paper's 2.56 ms of virtual time.
func TestE1RemoteTransactionTiming(t *testing.T) {
	k := newDomain(t)
	ws1, ws2 := k.NewHost("ws1"), k.NewHost("ws2")
	echo := spawnEcho(t, ws2)
	client := newClient(t, ws1, "client")

	start := client.Now()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
		t.Fatal(err)
	}
	elapsed := client.Now() - start
	paper := 2560 * time.Microsecond
	if diff := elapsed - paper; diff < -paper/50 || diff > paper/50 {
		t.Fatalf("remote 32-byte transaction = %v, want %v ±2%%", elapsed, paper)
	}
}

func TestLocalTransactionCheaperThanRemote(t *testing.T) {
	k := newDomain(t)
	ws1, ws2 := k.NewHost("ws1"), k.NewHost("ws2")
	echoLocal := spawnEcho(t, ws1)
	echoRemote := spawnEcho(t, ws2)
	client := newClient(t, ws1, "client")

	t0 := client.Now()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echoLocal.PID()); err != nil {
		t.Fatal(err)
	}
	local := client.Now() - t0
	t1 := client.Now()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echoRemote.PID()); err != nil {
		t.Fatal(err)
	}
	remote := client.Now() - t1
	if local >= remote {
		t.Fatalf("local %v should be cheaper than remote %v", local, remote)
	}
}

func TestSendToNonexistentProcess(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("ws")
	client := newClient(t, h, "client")
	_, err := client.Send(&proto.Message{Op: proto.OpEcho}, MakePID(h.ID(), 9999))
	if !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
	_, err = client.Send(&proto.Message{Op: proto.OpEcho}, MakePID(77, 1))
	if !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("unknown host err = %v", err)
	}
}

func TestSendToDestroyedProcessFails(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("ws")
	echo := spawnEcho(t, h)
	client := newClient(t, h, "client")
	pid := echo.PID()
	echo.Destroy()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, pid); !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestDestroyUnblocksPendingSender(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("ws")
	// A server that receives but never replies.
	blackhole, err := h.Spawn("blackhole", func(p *Process) {
		for {
			if _, _, err := p.Receive(); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	client := newClient(t, h, "client")
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Send(&proto.Message{Op: proto.OpEcho}, blackhole.PID())
		errCh <- err
	}()
	// Give the transaction time to be received, then kill the server.
	time.Sleep(10 * time.Millisecond)
	blackhole.Destroy()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrNonexistentProcess) {
			t.Fatalf("sender unblocked with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sender still blocked after receiver destroyed")
	}
}

func TestForwardPreservesOriginalSender(t *testing.T) {
	// §3.1: a forwarded message appears as though the sender originally
	// sent to the third process, which replies directly to the sender.
	k := newDomain(t)
	h1, h2, h3 := k.NewHost("a"), k.NewHost("b"), k.NewHost("c")
	final := spawnEcho(t, h3)
	var sawOrigin PID
	var mu sync.Mutex
	fwd, err := h2.Spawn("fwd", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			mu.Lock()
			sawOrigin = from
			mu.Unlock()
			msg.F[1] = 777 // forwarder may modify the message
			if err := p.Forward(msg, from, final.PID()); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Destroy)

	client := newClient(t, h1, "client")
	reply, err := client.Send(&proto.Message{Op: proto.OpEcho, F: [6]uint32{5}}, fwd.PID())
	if err != nil {
		t.Fatal(err)
	}
	if reply.F[0] != 5 || reply.F[1] != 777 {
		t.Fatalf("reply fields = %v", reply.F)
	}
	mu.Lock()
	defer mu.Unlock()
	if sawOrigin != client.PID() {
		t.Fatalf("forwarder saw sender %v, want original %v", sawOrigin, client.PID())
	}
}

func TestForwardTimingAddsHop(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	final := spawnEcho(t, h2)
	fwd, err := h1.Spawn("fwd", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			if err := p.Forward(msg, from, final.PID()); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Destroy)
	client := newClient(t, h1, "client")

	// Direct: two remote hops. Via forwarder on client's host: local hop +
	// remote hop + remote reply hop.
	t0 := client.Now()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, final.PID()); err != nil {
		t.Fatal(err)
	}
	direct := client.Now() - t0
	t1 := client.Now()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, fwd.PID()); err != nil {
		t.Fatal(err)
	}
	forwarded := client.Now() - t1
	m := k.Model()
	wantExtra := m.LocalHop(proto.HeaderBytes)
	got := forwarded - direct
	if got < wantExtra/2 || got > wantExtra*2 {
		t.Fatalf("forwarding overhead = %v, want ≈ one local hop %v", got, wantExtra)
	}
}

func TestForwardToNonexistentFailsSender(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	fwd, err := h.Spawn("fwd", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			_ = p.Forward(msg, from, MakePID(99, 99))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Destroy)
	client := newClient(t, h, "client")
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, fwd.PID()); !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplyWithoutPending(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	p := newClient(t, h, "p")
	if err := p.Reply(proto.NewReply(proto.ReplyOK), MakePID(1, 1)); !errors.Is(err, ErrNoPendingMessage) {
		t.Fatalf("err = %v", err)
	}
}

func TestMoveFromReadsSenderSegment(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	data := []byte("the quick brown fox jumps over the lazy dog")
	srv, err := h2.Spawn("reader", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			buf := make([]byte, msg.F[0])
			n, err := p.MoveFrom(from, buf, int(msg.F[1]))
			reply := proto.NewReply(proto.ReplyOK)
			if err != nil {
				reply.Op = proto.ReplyBadArgs
			}
			reply.F[0] = uint32(n)
			reply.Segment = buf[:n]
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Destroy)
	client := newClient(t, h1, "client")

	req := &proto.Message{Op: proto.OpEcho, F: [6]uint32{10, 4}}
	reply, err := client.SendMove(req, srv.PID(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Segment) != "quick brow" {
		t.Fatalf("MoveFrom read %q", reply.Segment)
	}
}

func TestMoveToWritesSenderSegment(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	srv, err := h2.Spawn("writer", func(p *Process) {
		for {
			_, from, err := p.Receive()
			if err != nil {
				return
			}
			n, err := p.MoveTo(from, 2, []byte("XYZ"))
			reply := proto.NewReply(proto.ReplyOK)
			if err != nil {
				reply.Op = proto.ReplyBadArgs
			}
			reply.F[0] = uint32(n)
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Destroy)
	client := newClient(t, h1, "client")

	buf := []byte("aaaaaaaa")
	reply, err := client.SendMove(&proto.Message{Op: proto.OpEcho}, srv.PID(), nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if reply.F[0] != 3 || string(buf) != "aaXYZaaa" {
		t.Fatalf("MoveTo wrote %q (n=%d)", buf, reply.F[0])
	}
}

func TestMoveErrors(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	results := make(chan error, 3)
	srv, err := h.Spawn("srv", func(p *Process) {
		for {
			_, from, err := p.Receive()
			if err != nil {
				return
			}
			_, err = p.MoveFrom(from, make([]byte, 4), 0)
			results <- err
			_, err = p.MoveFrom(from, make([]byte, 4), 100)
			results <- err
			_, err = p.MoveFrom(MakePID(9, 9), make([]byte, 4), 0)
			results <- err
			if err := p.Reply(proto.NewReply(proto.ReplyOK), from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Destroy)
	client := newClient(t, h, "client")
	if _, err := client.SendMove(&proto.Message{Op: proto.OpEcho}, srv.PID(), []byte("ab"), nil); err != nil {
		t.Fatal(err)
	}
	if err := <-results; err != nil {
		t.Fatalf("in-range MoveFrom failed: %v", err)
	}
	if err := <-results; !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("out-of-range MoveFrom err = %v", err)
	}
	if err := <-results; !errors.Is(err, ErrNoPendingMessage) {
		t.Fatalf("MoveFrom with no pending err = %v", err)
	}
}

// TestE2MoveTiming: moving 64 KB between hosts costs the paper's 338 ms.
func TestE2MoveTiming(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	payload := make([]byte, 64*1024)
	srv, err := h2.Spawn("loader", func(p *Process) {
		for {
			_, from, err := p.Receive()
			if err != nil {
				return
			}
			if _, err := p.MoveTo(from, 0, payload); err != nil {
				return
			}
			if err := p.Reply(proto.NewReply(proto.ReplyOK), from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Destroy)
	client := newClient(t, h1, "client")
	buf := make([]byte, 64*1024)
	start := client.Now()
	if _, err := client.SendMove(&proto.Message{Op: proto.OpEcho}, srv.PID(), nil, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := client.Now() - start
	paper := 338 * time.Millisecond
	if diff := elapsed - paper; diff < -paper/20 || diff > paper/20 {
		t.Fatalf("64 KB MoveTo transaction = %v, want %v ±5%%", elapsed, paper)
	}
}

func TestSetPidGetPidLocal(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("ws")
	srv := spawnEcho(t, h)
	client := newClient(t, h, "client")
	if err := client.SetPid(ServiceTime, srv.PID(), ScopeLocal); err != nil {
		t.Fatal(err)
	}
	pid, err := client.GetPid(ServiceTime, ScopeLocal)
	if err != nil || pid != srv.PID() {
		t.Fatalf("GetPid = %v, %v", pid, err)
	}
}

func TestGetPidBroadcast(t *testing.T) {
	k := newDomain(t)
	hs, hc := k.NewHost("server-host"), k.NewHost("client-host")
	srv := spawnEcho(t, hs)
	reg, _ := hs.NewProcess("registrar")
	if err := reg.SetPid(ServiceStorage, srv.PID(), ScopeBoth); err != nil {
		t.Fatal(err)
	}
	client := newClient(t, hc, "client")
	pid, err := client.GetPid(ServiceStorage, ScopeBoth)
	if err != nil || pid != srv.PID() {
		t.Fatalf("broadcast GetPid = %v, %v", pid, err)
	}
	// Broadcast query costs more than a local hit.
	c2 := newClient(t, hs, "local-client")
	t0 := c2.Now()
	if _, err := c2.GetPid(ServiceStorage, ScopeBoth); err != nil {
		t.Fatal(err)
	}
	localCost := c2.Now() - t0
	t1 := client.Now()
	if _, err := client.GetPid(ServiceStorage, ScopeBoth); err != nil {
		t.Fatal(err)
	}
	remoteCost := client.Now() - t1
	if localCost >= remoteCost {
		t.Fatalf("local GetPid %v should be cheaper than broadcast %v", localCost, remoteCost)
	}
}

func TestGetPidScopeVisibility(t *testing.T) {
	k := newDomain(t)
	hs, hc := k.NewHost("a"), k.NewHost("b")
	srv := spawnEcho(t, hs)
	reg, _ := hs.NewProcess("registrar")

	// Local-only registration is invisible to remote queries (§4.2).
	if err := reg.SetPid(ServicePrinter, srv.PID(), ScopeLocal); err != nil {
		t.Fatal(err)
	}
	remoteClient := newClient(t, hc, "rc")
	if _, err := remoteClient.GetPid(ServicePrinter, ScopeBoth); !errors.Is(err, ErrNotFound) {
		t.Fatalf("local-only registration leaked to remote query: %v", err)
	}

	// Remote-only registration is invisible to local queries.
	if err := reg.SetPid(ServiceMail, srv.PID(), ScopeRemote); err != nil {
		t.Fatal(err)
	}
	localClient := newClient(t, hs, "lc")
	if _, err := localClient.GetPid(ServiceMail, ScopeLocal); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remote-only registration leaked to local query: %v", err)
	}
	// But it answers a remote client's broadcast.
	if pid, err := remoteClient.GetPid(ServiceMail, ScopeBoth); err != nil || pid != srv.PID() {
		t.Fatalf("remote query = %v, %v", pid, err)
	}
}

func TestGetPidNotFound(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	k.NewHost("b")
	client := newClient(t, h, "client")
	if _, err := client.GetPid(ServiceInternet, ScopeBoth); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestHostCrashKillsProcessesAndServices(t *testing.T) {
	k := newDomain(t)
	hs, hc := k.NewHost("server"), k.NewHost("client")
	srv := spawnEcho(t, hs)
	reg, _ := hs.NewProcess("registrar")
	if err := reg.SetPid(ServiceStorage, srv.PID(), ScopeBoth); err != nil {
		t.Fatal(err)
	}
	client := newClient(t, hc, "client")

	hs.Crash()
	if hs.Alive() {
		t.Fatal("host should be down")
	}
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, srv.PID()); !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("send to crashed host err = %v", err)
	}
	if _, err := client.GetPid(ServiceStorage, ScopeBoth); !errors.Is(err, ErrNotFound) {
		t.Fatalf("crashed host's registrations should vanish: %v", err)
	}
}

func TestHostRestartRebinding(t *testing.T) {
	// §4.2: a storage server re-created after a crash has a different pid
	// but is the same service; GetPid rebinds.
	k := newDomain(t)
	hs, hc := k.NewHost("server"), k.NewHost("client")
	srv1 := spawnEcho(t, hs)
	oldPid := srv1.PID()
	reg, _ := hs.NewProcess("registrar")
	if err := reg.SetPid(ServiceStorage, oldPid, ScopeBoth); err != nil {
		t.Fatal(err)
	}

	hs.Crash()
	hs.Restart()
	srv2 := spawnEcho(t, hs)
	reg2, err := hs.NewProcess("registrar")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg2.SetPid(ServiceStorage, srv2.PID(), ScopeBoth); err != nil {
		t.Fatal(err)
	}
	if srv2.PID() == oldPid {
		t.Fatal("restarted server should get a different pid")
	}
	client := newClient(t, hc, "client")
	pid, err := client.GetPid(ServiceStorage, ScopeBoth)
	if err != nil || pid != srv2.PID() {
		t.Fatalf("rebinding failed: %v, %v", pid, err)
	}
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, pid); err != nil {
		t.Fatal(err)
	}
}

func TestNewProcessOnDeadHost(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	h.Crash()
	if _, err := h.NewProcess("p"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartitionFailsSend(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	echo := spawnEcho(t, h2)
	client := newClient(t, h1, "client")
	k.Network().Partition(h2.ID(), 1)
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	k.Network().Heal()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}

func TestGroupSendFirstReplyWins(t *testing.T) {
	k := newDomain(t)
	h1, h2, h3 := k.NewHost("a"), k.NewHost("b"), k.NewHost("c")
	s1, s2 := spawnEcho(t, h2), spawnEcho(t, h3)
	gid := k.CreateGroup()
	if !gid.IsGroup() {
		t.Fatal("group id not marked as group")
	}
	if err := k.JoinGroup(gid, s1.PID()); err != nil {
		t.Fatal(err)
	}
	if err := k.JoinGroup(gid, s2.PID()); err != nil {
		t.Fatal(err)
	}
	client := newClient(t, h1, "client")
	reply, err := client.Send(&proto.Message{Op: proto.OpEcho, F: [6]uint32{9}}, gid)
	if err != nil {
		t.Fatal(err)
	}
	if reply.F[0] != 9 {
		t.Fatalf("group reply = %+v", reply)
	}
}

func TestGroupSendSurvivesDeadMember(t *testing.T) {
	k := newDomain(t)
	h1, h2, h3 := k.NewHost("a"), k.NewHost("b"), k.NewHost("c")
	dead, _ := h2.NewProcess("dead")
	live := spawnEcho(t, h3)
	gid := k.CreateGroup()
	_ = k.JoinGroup(gid, dead.PID())
	_ = k.JoinGroup(gid, live.PID())
	dead.Destroy()
	client := newClient(t, h1, "client")
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, gid); err != nil {
		t.Fatalf("group send with one dead member: %v", err)
	}
}

func TestGroupSendEmptyGroupFails(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	client := newClient(t, h, "client")
	gid := k.CreateGroup()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, gid); !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupMembership(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	p1, _ := h.NewProcess("p1")
	p2, _ := h.NewProcess("p2")
	gid := k.CreateGroup()
	_ = k.JoinGroup(gid, p1.PID())
	_ = k.JoinGroup(gid, p2.PID())
	members, err := k.GroupMembers(gid)
	if err != nil || len(members) != 2 {
		t.Fatalf("members = %v, %v", members, err)
	}
	_ = k.LeaveGroup(gid, p1.PID())
	members, _ = k.GroupMembers(gid)
	if len(members) != 1 || members[0] != p2.PID() {
		t.Fatalf("after leave: %v", members)
	}
	// Destroying a process removes it from groups.
	p2.Destroy()
	members, _ = k.GroupMembers(gid)
	if len(members) != 0 {
		t.Fatalf("after destroy: %v", members)
	}
}

func TestGroupOpsOnBadID(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	p, _ := h.NewProcess("p")
	if err := k.JoinGroup(p.PID(), p.PID()); !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("join non-group err = %v", err)
	}
	if err := k.JoinGroup(MakePID(groupHostField, 999), p.PID()); !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("join unknown group err = %v", err)
	}
}

func TestConcurrentClientsOneServer(t *testing.T) {
	k := newDomain(t)
	hs := k.NewHost("server")
	echo := spawnEcho(t, hs)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		hc := k.NewHost("client-host")
		c, err := hc.NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Process, n uint32) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				reply, err := c.Send(&proto.Message{Op: proto.OpEcho, F: [6]uint32{n}}, echo.PID())
				if err != nil {
					errs <- err
					return
				}
				if reply.F[0] != n {
					errs <- errors.New("reply payload mismatch")
					return
				}
			}
		}(c, uint32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSendFromDestroyedProcess(t *testing.T) {
	k := newDomain(t)
	h := k.NewHost("a")
	echo := spawnEcho(t, h)
	client, _ := h.NewProcess("client")
	client.Destroy()
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); !errors.Is(err, ErrProcessDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestServiceAndScopeStrings(t *testing.T) {
	if ServiceStorage.String() != "storage" || ScopeBoth.String() != "both" {
		t.Fatal("diagnostic strings wrong")
	}
	if Service(999).String() == "" || Scope(9).String() == "" {
		t.Fatal("unknown values must still print")
	}
}

func TestClockObservationThroughChain(t *testing.T) {
	// A client's clock after a transaction must be at least the sum of
	// the hops — virtual time flows through the causal chain.
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	echo := spawnEcho(t, h2)
	client := newClient(t, h1, "client")
	for i := 1; i <= 5; i++ {
		if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, echo.PID()); err != nil {
			t.Fatal(err)
		}
		min := time.Duration(i) * 2 * k.Model().RemoteHop(proto.HeaderBytes)
		if client.Now() < min {
			t.Fatalf("after %d transactions clock = %v, want ≥ %v", i, client.Now(), min)
		}
	}
}

func TestForwardToGroup(t *testing.T) {
	// §7: a forwarder can pass a transaction to a whole group; the first
	// member to reply completes the original sender's transaction.
	k := newDomain(t)
	h1, h2, h3, h4 := k.NewHost("a"), k.NewHost("b"), k.NewHost("c"), k.NewHost("d")
	s1, s2 := spawnEcho(t, h3), spawnEcho(t, h4)
	gid := k.CreateGroup()
	if err := k.JoinGroup(gid, s1.PID()); err != nil {
		t.Fatal(err)
	}
	if err := k.JoinGroup(gid, s2.PID()); err != nil {
		t.Fatal(err)
	}
	fwd, err := h2.Spawn("fwd", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			if err := p.Forward(msg, from, gid); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Destroy)

	client := newClient(t, h1, "client")
	reply, err := client.Send(&proto.Message{Op: proto.OpEcho, F: [6]uint32{11}}, fwd.PID())
	if err != nil {
		t.Fatal(err)
	}
	if reply.F[0] != 11 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestForwardToGroupSurvivesDeadMember(t *testing.T) {
	k := newDomain(t)
	h1, h2, h3 := k.NewHost("a"), k.NewHost("b"), k.NewHost("c")
	dead, _ := h3.NewProcess("dead")
	live := spawnEcho(t, h3)
	gid := k.CreateGroup()
	_ = k.JoinGroup(gid, dead.PID())
	_ = k.JoinGroup(gid, live.PID())
	dead.Destroy()
	fwd, err := h2.Spawn("fwd", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			if err := p.Forward(msg, from, gid); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Destroy)
	client := newClient(t, h1, "client")
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, fwd.PID()); err != nil {
		t.Fatal(err)
	}
}

func TestForwardToEmptyGroupFailsSender(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	gid := k.CreateGroup()
	fwd, err := h2.Spawn("fwd", func(p *Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			_ = p.Forward(msg, from, gid)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Destroy)
	client := newClient(t, h1, "client")
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, fwd.PID()); !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentGroupSendsWithChurn(t *testing.T) {
	// Group sends race with member destruction: senders either succeed
	// (some member answered) or fail cleanly; nothing hangs or panics.
	k := newDomain(t)
	hosts := make([]*Host, 4)
	for i := range hosts {
		hosts[i] = k.NewHost("h")
	}
	gid := k.CreateGroup()
	var members []*Process
	for i := 0; i < 4; i++ {
		m := spawnEcho(t, hosts[i])
		members = append(members, m)
		if err := k.JoinGroup(gid, m.PID()); err != nil {
			t.Fatal(err)
		}
	}
	// One stable member guarantees availability while others churn.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := members[1+i%3]
			victim.Destroy()
			replacement := spawnEcho(t, hosts[1+i%3])
			if err := k.JoinGroup(gid, replacement.PID()); err != nil {
				return
			}
			members[1+i%3] = replacement
		}
	}()

	clientHost := k.NewHost("clients")
	var cwg sync.WaitGroup
	failures := make(chan error, 8)
	for c := 0; c < 8; c++ {
		p, err := clientHost.NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		cwg.Add(1)
		go func(p *Process) {
			defer cwg.Done()
			for j := 0; j < 50; j++ {
				reply, err := p.Send(&proto.Message{Op: proto.OpEcho, F: [6]uint32{9}}, gid)
				if err != nil {
					continue // a fully-churned instant; acceptable
				}
				if reply.F[0] != 9 {
					failures <- errors.New("corrupted group reply")
					return
				}
			}
		}(p)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}
}

func TestCrashDuringBulkTransferFailsSender(t *testing.T) {
	// The receiver's host crashes while a sender is blocked in a MoveTo
	// transaction: the sender must unblock with an error, never hang.
	k := newDomain(t)
	h1, h2 := k.NewHost("a"), k.NewHost("b")
	started := make(chan struct{})
	srv, err := h2.Spawn("slowloader", func(p *Process) {
		for {
			_, from, err := p.Receive()
			if err != nil {
				return
			}
			close(started)
			// Move a little, then stall until crashed.
			if _, err := p.MoveTo(from, 0, make([]byte, 512)); err != nil {
				return
			}
			<-p.Done()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	client := newClient(t, h1, "client")
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 64*1024)
		_, err := client.SendMove(&proto.Message{Op: proto.OpEcho}, srv.PID(), nil, buf)
		errCh <- err
	}()
	<-started
	h2.Crash()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrNonexistentProcess) {
			t.Fatalf("sender unblocked with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sender hung after receiver host crash")
	}
}
