package kernel

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/proto"
)

// Partition behaviour of the group-IPC paths (groups.go): multicast sends
// reach only the members in the sender's partition, broadcast GetPid
// queries see only kernels in the sender's partition, and Heal restores
// both — the fault-injection surface the chaos engine drives.

func TestSendGroupUnderPartition(t *testing.T) {
	k := newDomain(t)
	h1, h2, h3 := k.NewHost("ws"), k.NewHost("a"), k.NewHost("b")
	cli := newClient(t, h1, "cli")
	ea, eb := spawnEcho(t, h2), spawnEcho(t, h3)
	gid := k.CreateGroup()
	if err := k.JoinGroup(gid, ea.PID()); err != nil {
		t.Fatal(err)
	}
	if err := k.JoinGroup(gid, eb.PID()); err != nil {
		t.Fatal(err)
	}

	if _, err := cli.Send(&proto.Message{Op: proto.OpEcho}, gid); err != nil {
		t.Fatalf("healthy group send: %v", err)
	}

	// One member partitioned away: the multicast still completes via the
	// reachable member.
	k.Network().Partition(h3.ID(), 1)
	if _, err := cli.Send(&proto.Message{Op: proto.OpEcho}, gid); err != nil {
		t.Fatalf("group send with one member partitioned: %v", err)
	}

	// Every member unreachable: a bounded-time failure, charged one
	// retransmission timeout, not a hang.
	k.Network().Partition(h2.ID(), 2)
	before := cli.Now()
	_, err := cli.Send(&proto.Message{Op: proto.OpEcho}, gid)
	if !errors.Is(err, ErrNonexistentProcess) {
		t.Fatalf("fully-partitioned group send err = %v", err)
	}
	if elapsed := cli.Now() - before; elapsed < k.Model().RetransmitTimeout {
		t.Fatalf("failure must cost at least one retransmit timeout, got %v", elapsed)
	}

	k.Network().Heal()
	if _, err := cli.Send(&proto.Message{Op: proto.OpEcho}, gid); err != nil {
		t.Fatalf("group send after heal: %v", err)
	}
}

func TestBroadcastGetPidUnderPartition(t *testing.T) {
	k := newDomain(t)
	h1, h2 := k.NewHost("ws"), k.NewHost("srv")
	cli := newClient(t, h1, "cli")
	srv := spawnEcho(t, h2)
	const svc = Service(42)
	if err := h2.SetPid(svc, srv.PID(), ScopeBoth); err != nil {
		t.Fatal(err)
	}

	if pid, err := cli.GetPid(svc, ScopeBoth); err != nil || pid != srv.PID() {
		t.Fatalf("GetPid = %v, %v", pid, err)
	}

	k.Network().Partition(h2.ID(), 1)
	if _, err := cli.GetPid(svc, ScopeBoth); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetPid across partition err = %v", err)
	}

	k.Network().Heal()
	if pid, err := cli.GetPid(svc, ScopeBoth); err != nil || pid != srv.PID() {
		t.Fatalf("GetPid after heal = %v, %v", pid, err)
	}
}

func TestPartitionHealRacingGroupIPC(t *testing.T) {
	// Partition/Heal flips concurrent with in-flight multicast sends and
	// broadcast GetPid queries: every operation completes (no hang), and
	// the only admissible failures are the partition-shaped ones.
	k := newDomain(t)
	h1, h2, h3 := k.NewHost("ws"), k.NewHost("a"), k.NewHost("b")
	cli := newClient(t, h1, "cli")
	ea, eb := spawnEcho(t, h2), spawnEcho(t, h3)
	gid := k.CreateGroup()
	if err := k.JoinGroup(gid, ea.PID()); err != nil {
		t.Fatal(err)
	}
	if err := k.JoinGroup(gid, eb.PID()); err != nil {
		t.Fatal(err)
	}
	const svc = Service(77)
	if err := h3.SetPid(svc, eb.PID(), ScopeBoth); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			g ^= 1
			k.Network().Partition(h3.ID(), g)
			k.Network().Heal()
		}
	}()

	for i := 0; i < 200; i++ {
		// h2's member stays in the client's partition throughout, so the
		// multicast always has a reachable member; transient send errors
		// must still be partition-shaped, never anything else.
		if _, err := cli.Send(&proto.Message{Op: proto.OpEcho}, gid); err != nil &&
			!errors.Is(err, ErrNonexistentProcess) && !errors.Is(err, ErrUnreachable) {
			t.Fatalf("iteration %d group send err = %v", i, err)
		}
		// The broadcast query races the flip: success or not-found only.
		if _, err := cli.GetPid(svc, ScopeBoth); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("iteration %d GetPid err = %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
