package kernel

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// TestSendZeroAllocUntraced pins the hot-path allocation contract: with
// tracing disabled, a steady-state same-host Send-Receive-Reply
// transaction performs zero heap allocations. Both endpoints reuse a
// preallocated message, so anything this test counts comes from the
// kernel itself — the envelope pool, the mailbox, the pending table, or
// the clock.
func TestSendZeroAllocUntraced(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts the race detector's own allocations")
	}
	k := New(netsim.New(vtime.DefaultModel(), 1))
	h := k.NewHost("alloc")
	echo, err := h.Spawn("echo", func(p *Process) {
		var reply proto.Message
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply = *msg
			reply.Op = proto.ReplyOK
			if err := p.Reply(&reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := h.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpEcho}
	// Warm the envelope pool and the pending table before counting.
	for i := 0; i < 64; i++ {
		if _, err := client.Send(req, echo.PID()); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := client.Send(req, echo.PID()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced same-host Send allocates %v allocs/op, want 0", allocs)
	}
}
