package kernel

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/trace"
)

// group is a process group addressable by a group pid. Groups implement
// the one-to-many Send the paper's §7 proposes for transparent
// multi-server contexts: a Send to a group delivers one multicast frame to
// every member, and the sender unblocks on the first reply.
type group struct {
	id PID

	mu      sync.Mutex
	members map[PID]struct{}
}

// CreateGroup allocates a new, empty process group and returns its group
// identifier, which can be used anywhere a pid can.
func (k *Kernel) CreateGroup() PID {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextGrp++
	g := &group{
		id:      MakePID(groupHostField, k.nextGrp),
		members: make(map[PID]struct{}),
	}
	k.groups[k.nextGrp] = g
	return g.id
}

func (k *Kernel) group(gid PID) (*group, error) {
	if !gid.IsGroup() {
		return nil, fmt.Errorf("%w: %v is not a group id", ErrNoSuchGroup, gid)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	g, ok := k.groups[gid.Local()]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchGroup, gid)
	}
	return g, nil
}

// JoinGroup adds member to the group.
func (k *Kernel) JoinGroup(gid, member PID) error {
	g, err := k.group(gid)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[member] = struct{}{}
	return nil
}

// LeaveGroup removes member from the group.
func (k *Kernel) LeaveGroup(gid, member PID) error {
	g, err := k.group(gid)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.members, member)
	return nil
}

// GroupMembers returns the group's members in deterministic order.
func (k *Kernel) GroupMembers(gid PID) ([]PID, error) {
	g, err := k.group(gid)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PID, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// leaveAllGroups removes a destroyed process from every group.
func (k *Kernel) leaveAllGroups(member PID) {
	k.mu.Lock()
	groups := make([]*group, 0, len(k.groups))
	for _, g := range k.groups {
		groups = append(groups, g)
	}
	k.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		delete(g.members, member)
		g.mu.Unlock()
	}
}

// forwardGroup forwards a transaction to every member of a group with one
// multicast frame; the first member to reply completes the original
// sender's transaction, which is how a context can be implemented
// transparently by a group of servers working in cooperation (§7).
func (p *Process) forwardGroup(env *envelope, msg *proto.Message, gid PID, sp trace.SpanID) error {
	k := p.host.kernel
	tr := k.Tracer()
	tr.SetGroup(sp)
	// The clones below share env.replyCh, and a straggling member may
	// write to it after the sender consumed the winning event — so this
	// envelope must never return to the pool. Set before any completion
	// event can fire; the sender reads the flag only after receiving an
	// event through the channel, which orders this write before it.
	env.shared = true
	members, err := k.GroupMembers(gid)
	if err != nil {
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		env.fail(err)
		return err
	}
	now := p.clock.Now()
	mcast := k.net.Multicast(p.host.id, msg.WireSize(), now)
	tr.Wire(sp, "multicast", now, mcast, msg.WireSize(), netsim.HopDetail{Packets: 1}, false, true)
	// End before delivering clones: a member may serve and unblock the
	// original sender before this goroutine runs again. A zero-delivery
	// failure below is classified on the root send span.
	tr.End(sp, now+mcast)
	delivered := 0
	for _, m := range members {
		target, _ := k.findProcess(m)
		if target == nil || !k.net.Reachable(p.host.id, m.Host()) {
			continue
		}
		arrival := now + mcast
		if m.Host() == p.host.id {
			arrival = now + k.model.LocalHop(msg.WireSize())
		}
		clone := &envelope{
			origin:  env.origin,
			msg:     msg.Clone(),
			arrival: arrival,
			replyCh: env.replyCh, // first reply wins
			moveSrc: env.moveSrc,
			moveDst: env.moveDst,
			span:    sp,
		}
		if target.deliver(clone) {
			delivered++
		}
	}
	if delivered == 0 {
		err := fmt.Errorf("forward to group %v: no reachable members: %w", gid, ErrNonexistentProcess)
		env.fail(err)
		return err
	}
	return nil
}

// sendGroup implements Send to a group id: each live member receives its
// own copy of the message (delivered by a single multicast frame on the
// wire), and the first reply unblocks the sender; later replies are
// discarded.
func (p *Process) sendGroup(msg *proto.Message, gid PID, moveSrc, moveDst []byte) (*proto.Message, error) {
	k := p.host.kernel
	tr := k.Tracer()
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.CurrentSpan(), trace.KindSend, msg.Op.String()+" -> "+gid.String(), p.clock.Now(), p.TraceID())
		tr.SetGroup(sp)
	}
	members, err := k.GroupMembers(gid)
	if err != nil {
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		return nil, err
	}
	// One multicast frame serves every remote member.
	now := p.clock.Now()
	mcast := k.net.Multicast(p.host.id, msg.WireSize(), now)
	tr.Wire(sp, "multicast", now, mcast, msg.WireSize(), netsim.HopDetail{Packets: 1}, false, true)

	replyCh := make(chan replyEvent, len(members)+1)
	delivered := 0
	for _, m := range members {
		target, _ := k.findProcess(m)
		if target == nil {
			continue
		}
		if !k.net.Reachable(p.host.id, m.Host()) {
			continue
		}
		arrival := now + mcast
		if m.Host() == p.host.id {
			arrival = now + k.model.LocalHop(msg.WireSize())
		}
		env := &envelope{
			origin:  p.pid,
			msg:     msg.Clone(),
			arrival: arrival,
			replyCh: replyCh,
			moveSrc: moveSrc,
			moveDst: moveDst,
			span:    sp,
		}
		if target.deliver(env) {
			delivered++
		}
	}
	if delivered == 0 {
		p.clock.Advance(k.model.RetransmitTimeout)
		err := fmt.Errorf("%w: group %v has no reachable members", ErrNonexistentProcess, gid)
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		return nil, err
	}
	var lastErr error
	for i := 0; i < delivered; i++ {
		ev := <-replyCh
		if ev.err == nil {
			p.clock.Observe(ev.at)
			tr.End(sp, p.clock.Now())
			return ev.msg, nil
		}
		lastErr = ev.err
	}
	p.clock.Advance(k.model.RetransmitTimeout)
	err = fmt.Errorf("send to group %v: %w", gid, lastErr)
	tr.Fail(sp, p.clock.Now(), FailureClass(err))
	return nil, err
}

// SendGroupAll multicasts msg to every member of a group and waits for
// EVERY delivered reply, observing the latest reply time. Where sendGroup
// is first-reply-wins (a query answered by whichever member is fastest),
// SendGroupAll is a barrier: when it returns, every member that was alive
// and reachable at send time has received, processed, and replied to the
// message. Lease invalidation uses it so that a name redefinition commits
// only after all reachable cache holders have dropped the stale entry;
// unreachable holders are skipped and bounded by their lease expiry
// instead (PROTOCOL.md §13). Returns the number of members that replied.
// A group with no reachable members is not an error — there is simply
// nobody to wait for.
func (p *Process) SendGroupAll(msg *proto.Message, gid PID) (int, error) {
	k := p.host.kernel
	tr := k.Tracer()
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.CurrentSpan(), trace.KindSend, msg.Op.String()+" ->* "+gid.String(), p.clock.Now(), p.TraceID())
		tr.SetGroup(sp)
	}
	members, err := k.GroupMembers(gid)
	if err != nil {
		tr.Fail(sp, p.clock.Now(), FailureClass(err))
		return 0, err
	}
	if len(members) == 0 {
		// Classified rather than plain-ended: a group send span with no
		// reply in its subtree would otherwise trip the send-termination
		// invariant (check.go #3).
		tr.Fail(sp, p.clock.Now(), "no-holders")
		return 0, nil
	}
	now := p.clock.Now()
	mcast := k.net.Multicast(p.host.id, msg.WireSize(), now)
	tr.Wire(sp, "multicast", now, mcast, msg.WireSize(), netsim.HopDetail{Packets: 1}, false, true)

	replyCh := make(chan replyEvent, len(members)+1)
	delivered := 0
	for _, m := range members {
		target, _ := k.findProcess(m)
		if target == nil {
			continue
		}
		if !k.net.Reachable(p.host.id, m.Host()) {
			continue
		}
		arrival := now + mcast
		if m.Host() == p.host.id {
			arrival = now + k.model.LocalHop(msg.WireSize())
		}
		env := &envelope{
			origin:  p.pid,
			msg:     msg.Clone(),
			arrival: arrival,
			replyCh: replyCh,
			span:    sp,
		}
		if target.deliver(env) {
			delivered++
		}
	}
	replies := 0
	for i := 0; i < delivered; i++ {
		ev := <-replyCh
		if ev.err == nil {
			p.clock.Observe(ev.at)
			replies++
		}
	}
	// Members that died mid-transaction surface as errored events; they
	// are equivalent to unreachable members — bounded by lease expiry.
	if replies == 0 {
		tr.Fail(sp, p.clock.Now(), "no-holders")
	} else {
		tr.End(sp, p.clock.Now())
	}
	return replies, nil
}
