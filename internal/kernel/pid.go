// Package kernel simulates the distributed V kernel (§3-4 of the paper):
// processes identified by structured 32-bit pids, synchronous
// Send-Receive-Reply message transactions, message forwarding, MoveTo and
// MoveFrom bulk transfer, the SetPid/GetPid service naming facility, and
// process groups with multicast Send (the §7 group-send extension).
//
// Every process carries a virtual clock; message deliveries stamp arrival
// times computed from the netsim cost model, so experiments read latencies
// off the clocks deterministically.
package kernel

import (
	"fmt"

	"repro/internal/netsim"
)

// PID is a V process identifier: a 32-bit value unique within one V
// domain, structured as a 16-bit logical-host field and a 16-bit local
// process identifier (Figure 2). Process identifiers are the only absolute
// names in a V domain (§4.1).
type PID uint32

// NilPID is the zero process identifier, which never names a process.
const NilPID PID = 0

// groupHostField is the reserved logical-host value marking group
// identifiers, so that a group can be addressed by Send exactly like a
// process (§7).
const groupHostField = 0xFFFF

// MakePID assembles a pid from its logical-host and local subfields.
func MakePID(host netsim.HostID, local uint16) PID {
	return PID(uint32(host)<<16 | uint32(local))
}

// Host extracts the logical-host subfield, which maps to a host address —
// the structuring that makes locating a process efficient (§4.1).
func (p PID) Host() netsim.HostID { return netsim.HostID(p >> 16) }

// Local extracts the local process identifier subfield.
func (p PID) Local() uint16 { return uint16(p) }

// IsGroup reports whether p names a process group rather than a single
// process.
func (p PID) IsGroup() bool { return p.Host() == groupHostField && p != NilPID }

// String renders the pid as host.local for diagnostics.
func (p PID) String() string {
	if p == NilPID {
		return "pid(nil)"
	}
	if p.IsGroup() {
		return fmt.Sprintf("group(%d)", p.Local())
	}
	return fmt.Sprintf("pid(%d.%d)", p.Host(), p.Local())
}

// SameHost reports whether two pids name processes on the same logical
// host — the locality test some servers depend on (§4.1).
func SameHost(a, b PID) bool { return a.Host() == b.Host() }

// Service is a V service code: programs are written in terms of services,
// with the binding of service to server process occurring at time of use
// via GetPid (§4.2).
type Service uint32

// Standard V-System service codes.
const (
	ServiceStorage Service = iota + 1
	ServiceContextPrefix
	ServiceTerminal
	ServicePrinter
	ServiceInternet
	ServiceExec
	ServiceMail
	ServiceTime
	ServicePipe
	// ServiceNameServer is the baseline centralized name server used only
	// by the §2.2 comparison experiments.
	ServiceNameServer
)

// String names standard services for diagnostics.
func (s Service) String() string {
	switch s {
	case ServiceStorage:
		return "storage"
	case ServiceContextPrefix:
		return "context-prefix"
	case ServiceTerminal:
		return "terminal"
	case ServicePrinter:
		return "printer"
	case ServiceInternet:
		return "internet"
	case ServiceExec:
		return "exec"
	case ServiceMail:
		return "mail"
	case ServiceTime:
		return "time"
	case ServicePipe:
		return "pipe"
	case ServiceNameServer:
		return "name-server"
	default:
		return fmt.Sprintf("service(%d)", uint32(s))
	}
}

// Scope qualifies service registration visibility and GetPid searches
// (§4.2): local to this machine, remote ("public"), or both.
type Scope uint8

const (
	// ScopeLocal restricts a registration to its own host, or a GetPid
	// search to the local kernel table.
	ScopeLocal Scope = iota + 1
	// ScopeRemote makes a registration visible only to other hosts'
	// broadcast queries, or restricts a GetPid search to remote hosts.
	ScopeRemote
	// ScopeBoth makes a registration visible locally and remotely, or
	// lets a GetPid search try the local table first and then broadcast.
	ScopeBoth
)

// String names the scope for diagnostics.
func (s Scope) String() string {
	switch s {
	case ScopeLocal:
		return "local"
	case ScopeRemote:
		return "remote"
	case ScopeBoth:
		return "both"
	default:
		return fmt.Sprintf("scope(%d)", uint8(s))
	}
}
