// Package namemodel is the "concise semantic model of the V-System
// naming" the paper's §7 says the authors were hoping to develop: a pure,
// centralized reference model of the naming forest, used to check the
// distributed implementation.
//
// The model views the whole V domain the way §2.3 describes it — a
// distributed database of (name, object) tuples — as one flat map from
// *rooted names* to object values. A rooted name is (tree, path): the
// tree identifies a server's forest tree (Figure 4), the path is the
// component sequence from its root. Cross-server links collapse to
// aliases: interpretation of a path that traverses a link continues in
// the target tree, exactly like the protocol's forwarding, but with no
// messages, servers, or failures.
//
// The model is deliberately tiny: contexts are path prefixes, objects
// are leaves, links are (tree, path) pointers. The namemodel tests drive
// the real rig and the model with the same random operation sequences
// and require identical outcomes — an executable semantics for the
// protocol.
package namemodel

import (
	"fmt"
	"sort"
	"strings"
)

// Tree identifies one tree of the naming forest (one server's name
// space).
type Tree string

// Path is a rooted component sequence within a tree.
type Path []string

// String renders a path.
func (p Path) String() string { return "/" + strings.Join(p, "/") }

// clone copies a path.
func (p Path) clone() Path { return append(Path(nil), p...) }

// node is one vertex of the model forest.
type node struct {
	// kind discriminates the three §5 binding kinds.
	isContext bool
	link      *Target // non-nil: alias to a context in another tree
	object    []byte  // contents for leaf objects
	children  map[string]*node
}

// Target is a (tree, path) pointer — the model's rendering of a
// (server-pid, context-id) pair.
type Target struct {
	Tree Tree
	Path Path
}

// Model is the reference naming forest.
type Model struct {
	trees map[Tree]*node
}

// New returns an empty model.
func New() *Model { return &Model{trees: make(map[Tree]*node)} }

// AddTree creates an empty tree (a server's root context).
func (m *Model) AddTree(t Tree) {
	if _, ok := m.trees[t]; !ok {
		m.trees[t] = &node{isContext: true, children: make(map[string]*node)}
	}
}

// Outcome is the model's answer for a resolution: exactly one field set.
type Outcome struct {
	// Object is the contents of the resolved leaf object.
	Object []byte
	// Context is the canonical (tree, path) of the resolved context.
	Context *Target
	// Err is the standard failure: "notfound", "notacontext".
	Err string
}

// errOutcome builds a failure outcome.
func errOutcome(code string) Outcome { return Outcome{Err: code} }

const (
	ErrNotFound     = "notfound"
	ErrNotAContext  = "notacontext"
	ErrDuplicate    = "duplicate"
	ErrNotEmpty     = "notempty"
	ErrBadOperation = "badoperation"
)

// walk resolves (tree, path), following links mid-path the way the
// protocol forwards mid-interpretation. It returns the canonical
// location (the tree and node reached) and the final node, or a failure.
// followFinalLink controls whether a link at the *final* component is
// traversed (true for object operations, false for binding operations —
// mirroring Interpret vs. InterpretBinding).
func (m *Model) walk(t Tree, p Path, followFinalLink bool) (Tree, Path, *node, string) {
	cur, ok := m.trees[t]
	if !ok {
		return t, nil, nil, ErrNotFound
	}
	canonical := Path{}
	for i, comp := range p {
		if !cur.isContext {
			return t, canonical, nil, ErrNotAContext
		}
		child, ok := cur.children[comp]
		if !ok {
			return t, canonical, nil, ErrNotFound
		}
		last := i == len(p)-1
		if child.link != nil {
			if last && !followFinalLink {
				return t, append(canonical, comp), child, ""
			}
			// Interpretation continues in the target tree.
			rest := p[i+1:]
			full := append(child.link.Path.clone(), rest...)
			return m.walk(child.link.Tree, full, followFinalLink)
		}
		canonical = append(canonical, comp)
		cur = child
		if last {
			return t, canonical, cur, ""
		}
	}
	return t, canonical, cur, ""
}

// Resolve is the model's name interpretation: the §5.4 procedure with all
// distribution removed.
func (m *Model) Resolve(t Tree, p Path) Outcome {
	tree, canon, n, errCode := m.walk(t, p, true)
	if errCode != "" {
		return errOutcome(errCode)
	}
	if n.isContext {
		return Outcome{Context: &Target{Tree: tree, Path: canon}}
	}
	out := make([]byte, len(n.object))
	copy(out, n.object)
	return Outcome{Object: out}
}

// parentOf resolves the containing context of (tree, path) and the final
// component, following links through the *prefix* only.
func (m *Model) parentOf(t Tree, p Path) (*node, string, string) {
	if len(p) == 0 {
		return nil, "", ErrBadOperation
	}
	if len(p) == 1 {
		root, ok := m.trees[t]
		if !ok {
			return nil, "", ErrNotFound
		}
		return root, p[0], ""
	}
	tree, canon, n, errCode := m.walk(t, p[:len(p)-1], true)
	_ = tree
	_ = canon
	if errCode != "" {
		return nil, "", errCode
	}
	if !n.isContext {
		return nil, "", ErrNotAContext
	}
	return n, p[len(p)-1], ""
}

// Create binds a new leaf object at (tree, path) with contents.
func (m *Model) Create(t Tree, p Path, contents []byte) string {
	parent, name, errCode := m.parentOf(t, p)
	if errCode != "" {
		return errCode
	}
	if _, dup := parent.children[name]; dup {
		return ErrDuplicate
	}
	parent.children[name] = &node{object: append([]byte(nil), contents...)}
	return ""
}

// Mkdir binds a new context at (tree, path), matching the protocol's
// directory-mode create: an existing context (or a link to one) simply
// opens, an existing object is a duplicate-name failure.
func (m *Model) Mkdir(t Tree, p Path) string {
	parent, name, errCode := m.parentOf(t, p)
	if errCode != "" {
		return errCode
	}
	if existing, dup := parent.children[name]; dup {
		if existing.isContext || existing.link != nil {
			return ""
		}
		return ErrDuplicate
	}
	parent.children[name] = &node{isContext: true, children: make(map[string]*node)}
	return ""
}

// Link binds (tree, path) as a pointer to target — the Figure 4 curved
// arrow.
func (m *Model) Link(t Tree, p Path, target Target) string {
	parent, name, errCode := m.parentOf(t, p)
	if errCode != "" {
		return errCode
	}
	if _, dup := parent.children[name]; dup {
		return ErrDuplicate
	}
	tgt := target
	tgt.Path = target.Path.clone()
	parent.children[name] = &node{link: &tgt}
	return ""
}

// Remove unbinds the object or (empty) context at (tree, path). Links in
// the path prefix are followed, as in interpretation. A *final* link is
// only removable as a binding (unbindLink true, the protocol's
// delete-context-name); removing *through* it lands on the target
// context itself, which the protocol refuses (§5.7 semantics, reproduced
// by the implementation's remove-through-link behaviour).
func (m *Model) Remove(t Tree, p Path, unbindLink bool) string {
	parent, name, errCode := m.parentOf(t, p)
	if errCode != "" {
		return errCode
	}
	child, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if child.link != nil && !unbindLink {
		return ErrBadOperation
	}
	if child.isContext && len(child.children) > 0 {
		return ErrNotEmpty
	}
	delete(parent.children, name)
	return ""
}

// List returns the sorted names bound in the context at (tree, path).
func (m *Model) List(t Tree, p Path) ([]string, string) {
	_, _, n, errCode := m.walk(t, p, true)
	if errCode != "" {
		return nil, errCode
	}
	if !n.isContext {
		return nil, ErrNotAContext
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, ""
}

// WriteObject replaces the contents of the object at (tree, path).
func (m *Model) WriteObject(t Tree, p Path, contents []byte) string {
	_, _, n, errCode := m.walk(t, p, true)
	if errCode != "" {
		return errCode
	}
	if n.isContext {
		return ErrNotAContext
	}
	n.object = append([]byte(nil), contents...)
	return ""
}

// Rename moves the binding at oldPath to newPath within the same tree.
func (m *Model) Rename(t Tree, oldPath, newPath Path) string {
	oldParent, oldName, errCode := m.parentOf(t, oldPath)
	if errCode != "" {
		return errCode
	}
	child, ok := oldParent.children[oldName]
	if !ok {
		return ErrNotFound
	}
	newParent, newName, errCode := m.parentOf(t, newPath)
	if errCode != "" {
		return errCode
	}
	if _, dup := newParent.children[newName]; dup {
		return ErrDuplicate
	}
	delete(oldParent.children, oldName)
	newParent.children[newName] = child
	return ""
}

// Objects enumerates every (tree, canonical path) of leaf objects — the
// model's global census, used to check reachability invariants.
func (m *Model) Objects() []string {
	var out []string
	for t, root := range m.trees {
		m.census(t, root, nil, &out)
	}
	sort.Strings(out)
	return out
}

func (m *Model) census(t Tree, n *node, prefix Path, out *[]string) {
	for name, child := range n.children {
		p := append(prefix.clone(), name)
		switch {
		case child.link != nil:
			// Links are names, not objects; their targets are counted in
			// their own tree.
		case child.isContext:
			m.census(t, child, p, out)
		default:
			*out = append(*out, fmt.Sprintf("%s:%s", t, p))
		}
	}
}

// MatchPattern is the model's definition of the §5.6 glob semantics: '*'
// matches any run, '?' any single byte. It is intentionally an
// independent implementation from core.MatchName, so the conformance
// tests cross-check the two.
func MatchPattern(pattern, name string) bool {
	if pattern == "" {
		return true
	}
	return matchAt(pattern, name)
}

func matchAt(p, n string) bool {
	if p == "" {
		return n == ""
	}
	switch p[0] {
	case '*':
		for i := 0; i <= len(n); i++ {
			if matchAt(p[1:], n[i:]) {
				return true
			}
		}
		return false
	case '?':
		return n != "" && matchAt(p[1:], n[1:])
	default:
		return n != "" && n[0] == p[0] && matchAt(p[1:], n[1:])
	}
}
