package namemodel_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/namemodel"
	"repro/internal/proto"
	"repro/internal/rig"
)

// The conformance harness drives the distributed implementation (through
// the public client library, with real forwarding between two file
// servers) and the §7 reference model with identical random operation
// sequences, requiring identical outcomes at every step and identical
// final object censuses. The model is the executable semantics; any
// divergence is a bug in one of the two.

const (
	tree1 = namemodel.Tree("fs1")
	tree2 = namemodel.Tree("fs2")
)

// world pairs the implementation with the model.
type world struct {
	t *testing.T
	r *rig.Rig
	s *client.Session
	m *namemodel.Model
	// portals created so far in tree1 (top level), pointing into tree2.
	portals int
}

func newWorld(t *testing.T) *world {
	t.Helper()
	r, err := rig.New(rig.Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true})
	if err != nil {
		t.Fatal(err)
	}
	s := r.WS[0].Session
	m := namemodel.New()
	m.AddTree(tree1)
	m.AddTree(tree2)
	w := &world{t: t, r: r, s: s, m: m}
	// Mirror the rig's seeded state into the model so the censuses agree.
	w.mirrorSeed()

	// A standing portal for the random stepper: operations through it
	// exercise forwarding on every op kind.
	target, err := s.MapContext("[storage2]/")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddLink("[storage]portal0", target); err != nil {
		t.Fatal(err)
	}
	if code := m.Link(tree1, namemodel.Path{"portal0"},
		namemodel.Target{Tree: tree2, Path: namemodel.Path{}}); code != "" {
		t.Fatal(code)
	}
	return w
}

// mirrorSeed replays the rig's boot-time file system contents into the
// model.
func (w *world) mirrorSeed() {
	seed := []struct {
		tree namemodel.Tree
		path string
	}{
		{tree1, "bin/hello"},
		{tree1, "bin/editor"},
		{tree1, "bin/compiler"},
		{tree1, "users/mann/welcome.txt"},
		{tree1, "users/mann/notes/todo.txt"},
		{tree2, "archive/2026/paper.mss"},
	}
	mkdirAll := func(tr namemodel.Tree, p namemodel.Path) {
		for i := 1; i < len(p); i++ {
			w.m.Mkdir(tr, p[:i])
		}
	}
	for _, s := range seed {
		p := namemodel.Path(strings.Split(s.path, "/"))
		mkdirAll(s.tree, p)
		// Mirror the implementation's actual seeded contents.
		data, err := w.s.ReadFile(name(s.tree, p))
		if err != nil {
			w.t.Fatalf("reading seeded %s: %v", s.path, err)
		}
		if code := w.m.Create(s.tree, p, data); code != "" {
			w.t.Fatalf("seeding model: %s at %v", code, p)
		}
	}
	w.m.Mkdir(tree1, namemodel.Path{"shared"})
	if code := w.m.Link(tree1, namemodel.Path{"shared", "archive"},
		namemodel.Target{Tree: tree2, Path: namemodel.Path{"archive"}}); code != "" {
		w.t.Fatalf("seeding model link: %s", code)
	}
}

// name renders a (tree, path) as the client-side CSname.
func name(tr namemodel.Tree, p namemodel.Path) string {
	pfx := "[storage]"
	if tr == tree2 {
		pfx = "[storage2]"
	}
	return pfx + strings.Join(p, "/")
}

// code maps implementation errors onto the model's outcome codes.
func code(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, proto.ErrNotFound):
		return namemodel.ErrNotFound
	case errors.Is(err, proto.ErrNotAContext):
		return namemodel.ErrNotAContext
	case errors.Is(err, proto.ErrDuplicateName):
		return namemodel.ErrDuplicate
	case errors.Is(err, proto.ErrNotEmpty):
		return namemodel.ErrNotEmpty
	default:
		return namemodel.ErrBadOperation
	}
}

// check compares implementation and model outcome codes.
func (w *world) check(op string, tr namemodel.Tree, p namemodel.Path, implErr error, modelCode string) {
	w.t.Helper()
	if got := code(implErr); got != modelCode {
		w.t.Fatalf("%s %s: implementation %q (%v) vs model %q", op, name(tr, p), got, implErr, modelCode)
	}
}

// randPath builds a random path from a tiny alphabet, depth 1..3.
func randPath(rng *rand.Rand) namemodel.Path {
	alphabet := []string{"a", "b", "c", "d"}
	depth := 1 + rng.Intn(3)
	p := make(namemodel.Path, depth)
	for i := range p {
		p[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return p
}

func randTree(rng *rand.Rand) namemodel.Tree {
	if rng.Intn(2) == 0 {
		return tree1
	}
	return tree2
}

// step performs one random operation on both systems.
func (w *world) step(rng *rand.Rand) {
	tr := randTree(rng)
	p := randPath(rng)
	op := rng.Intn(9)
	// A fifth of non-rename operations go through the portal, exercising
	// the forwarding path for every operation kind.
	if op != 6 && rng.Intn(5) == 0 {
		tr = tree1
		p = append(namemodel.Path{"portal0"}, p...)
	}
	switch op {
	case 0: // mkdir
		err := w.s.MakeContext(name(tr, p))
		modelCode := w.m.Mkdir(tr, p)
		w.check("mkdir", tr, p, err, modelCode)

	case 1: // write (create or replace)
		data := []byte(fmt.Sprintf("data-%d", rng.Intn(1000)))
		err := w.s.WriteFile(name(tr, p), data)
		modelCode := w.modelWriteFile(tr, p, data)
		w.check("write", tr, p, err, modelCode)

	case 2: // read / resolve
		data, err := w.s.ReadFile(name(tr, p))
		out := w.m.Resolve(tr, p)
		switch {
		case out.Err != "":
			w.check("read", tr, p, err, out.Err)
		case out.Context != nil:
			// Opening a context without directory mode is a mode error.
			w.check("read", tr, p, err, namemodel.ErrBadOperation)
		default:
			if err != nil {
				w.t.Fatalf("read %s: implementation failed (%v), model has object", name(tr, p), err)
			}
			if string(data) != string(out.Object) {
				w.t.Fatalf("read %s: contents %q vs model %q", name(tr, p), data, out.Object)
			}
		}

	case 3: // list
		records, err := w.s.List(name(tr, p))
		names, modelCode := w.m.List(tr, p)
		w.check("list", tr, p, err, modelCode)
		if modelCode == "" {
			got := make([]string, 0, len(records))
			for _, d := range records {
				got = append(got, d.Name)
			}
			sort.Strings(got)
			if strings.Join(got, ",") != strings.Join(names, ",") {
				w.t.Fatalf("list %s: %v vs model %v", name(tr, p), got, names)
			}
		}

	case 4: // remove (through interpretation)
		err := w.s.Remove(name(tr, p))
		modelCode := w.m.Remove(tr, p, false)
		w.check("remove", tr, p, err, modelCode)

	case 5: // unlink (remove the binding)
		err := w.s.Unlink(name(tr, p))
		modelCode := w.m.Remove(tr, p, true)
		w.check("unlink", tr, p, err, modelCode)

	case 6: // rename within one tree, avoiding the portal namespace
		if tr == tree2 {
			tr = tree1
		}
		q := randPath(rng)
		err := w.s.Rename(name(tr, p), name(tr, q))
		modelCode := w.modelRename(tr, p, q)
		w.check("rename", tr, p, err, modelCode)

	case 7: // pattern listing (§5.6 extension): implementation filter
		// must equal model names filtered client-side.
		pattern := []string{"*", "a*", "?", "*c"}[rng.Intn(4)]
		records, err := w.s.ListPattern(name(tr, p), pattern)
		names, modelCode := w.m.List(tr, p)
		w.check("listpattern", tr, p, err, modelCode)
		if modelCode == "" {
			var want []string
			for _, n := range names {
				if namemodel.MatchPattern(pattern, n) {
					want = append(want, n)
				}
			}
			got := make([]string, 0, len(records))
			for _, d := range records {
				got = append(got, d.Name)
			}
			sort.Strings(got)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				w.t.Fatalf("listpattern %s %q: %v vs model %v", name(tr, p), pattern, got, want)
			}
		}

	case 8: // query type
		d, err := w.s.Query(name(tr, p))
		out := w.m.Resolve(tr, p)
		switch {
		case out.Err != "":
			w.check("query", tr, p, err, out.Err)
		case out.Context != nil:
			if err != nil {
				w.t.Fatalf("query %s: %v, model has context", name(tr, p), err)
			}
			if d.Tag != proto.TagDirectory {
				w.t.Fatalf("query %s: tag %v, model has context", name(tr, p), d.Tag)
			}
		default:
			if err != nil {
				w.t.Fatalf("query %s: %v, model has object", name(tr, p), err)
			}
			if d.Tag != proto.TagFile || int(d.Size) != len(out.Object) {
				w.t.Fatalf("query %s: tag %v size %d, model object %d bytes", name(tr, p), d.Tag, d.Size, len(out.Object))
			}
		}
	}
}

// modelWriteFile mirrors client.Session.WriteFile semantics
// (create-or-truncate) onto the model.
func (w *world) modelWriteFile(tr namemodel.Tree, p namemodel.Path, data []byte) string {
	out := w.m.Resolve(tr, p)
	switch {
	case out.Err == namemodel.ErrNotFound:
		return w.m.Create(tr, p, data)
	case out.Err != "":
		return out.Err
	case out.Context != nil:
		return namemodel.ErrBadOperation
	default:
		return w.m.WriteObject(tr, p, data)
	}
}

// modelRename mirrors the implementation's same-server rename.
func (w *world) modelRename(tr namemodel.Tree, oldP, newP namemodel.Path) string {
	return w.m.Rename(tr, oldP, newP)
}

// censusImpl walks both trees through the protocol, collecting canonical
// object paths the same way the model's census does (descending into
// directories only, not links).
func (w *world) censusImpl() []string {
	var out []string
	var walk func(tr namemodel.Tree, p namemodel.Path)
	walk = func(tr namemodel.Tree, p namemodel.Path) {
		records, err := w.s.List(name(tr, p))
		if err != nil {
			w.t.Fatalf("census list %s: %v", name(tr, p), err)
		}
		for _, d := range records {
			child := append(append(namemodel.Path(nil), p...), d.Name)
			switch d.Tag {
			case proto.TagDirectory:
				walk(tr, child)
			case proto.TagFile:
				out = append(out, fmt.Sprintf("%s:%s", tr, child))
			case proto.TagLink:
				// Names, not objects; the target tree counts its own.
			}
		}
	}
	walk(tree1, nil)
	walk(tree2, nil)
	sort.Strings(out)
	return out
}

// TestConformanceRandomOps is the main semantic check: 400 random
// operations, every outcome compared, plus a final census and content
// comparison.
func TestConformanceRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newWorld(t)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				w.step(rng)
			}
			got := w.censusImpl()
			want := w.m.Objects()
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("census mismatch:\nimpl:\n%s\nmodel:\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
			// Contents agree for every surviving object.
			for _, entry := range want {
				parts := strings.SplitN(entry, ":", 2)
				tr := namemodel.Tree(parts[0])
				p := namemodel.Path(strings.Split(strings.TrimPrefix(parts[1], "/"), "/"))
				out := w.m.Resolve(tr, p)
				if out.Object == nil {
					t.Fatalf("model census entry %q does not resolve to an object", entry)
				}
				data, err := w.s.ReadFile(name(tr, p))
				if err != nil {
					t.Fatalf("read %s: %v", name(tr, p), err)
				}
				if string(data) != string(out.Object) {
					t.Fatalf("contents of %s diverge", name(tr, p))
				}
			}
		})
	}
}

// TestConformanceThroughPortal adds cross-tree links and checks that
// operations through them agree with the model's alias semantics.
func TestConformanceThroughPortal(t *testing.T) {
	w := newWorld(t)
	s := w.s

	// Create a portal: tree1:/portal1 -> tree2:/archive. (portal0 is the
	// random stepper's standing link to tree2's root.)
	target, err := s.MapContext("[storage2]/archive")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddLink("[storage]portal1", target); err != nil {
		t.Fatal(err)
	}
	if code := w.m.Link(tree1, namemodel.Path{"portal1"},
		namemodel.Target{Tree: tree2, Path: namemodel.Path{"archive"}}); code != "" {
		t.Fatal(code)
	}

	// Write through the portal; read directly (and vice versa).
	p := namemodel.Path{"portal1", "draft.mss"}
	if err := s.WriteFile(name(tree1, p), []byte("through the portal")); err != nil {
		t.Fatal(err)
	}
	if code := w.modelWriteFile(tree1, p, []byte("through the portal")); code != "" {
		t.Fatal(code)
	}
	direct, err := s.ReadFile("[storage2]/archive/draft.mss")
	if err != nil {
		t.Fatal(err)
	}
	out := w.m.Resolve(tree2, namemodel.Path{"archive", "draft.mss"})
	if out.Object == nil || string(direct) != string(out.Object) {
		t.Fatalf("portal write invisible directly: %q vs %+v", direct, out)
	}

	// Remove through the portal.
	if err := s.Remove(name(tree1, p)); err != nil {
		t.Fatal(err)
	}
	if code := w.m.Remove(tree1, p, false); code != "" {
		t.Fatal(code)
	}
	if _, err := s.ReadFile("[storage2]/archive/draft.mss"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("object survived removal through portal: %v", err)
	}

	// Removing the portal through interpretation refuses; unbinding works.
	if err := s.Remove(name(tree1, namemodel.Path{"portal1"})); code(err) != w.m.Remove(tree1, namemodel.Path{"portal1"}, false) {
		t.Fatalf("remove-portal divergence: %v", err)
	}
	if err := s.Unlink(name(tree1, namemodel.Path{"portal1"})); code(err) != w.m.Remove(tree1, namemodel.Path{"portal1"}, true) {
		t.Fatalf("unlink-portal divergence: %v", err)
	}
	// Target tree untouched.
	if _, err := s.List("[storage2]/archive"); err != nil {
		t.Fatal(err)
	}
}
