package namemodel

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzPath turns a fuzzed string into a model path: split on '/',
// dropping empty components (the model has no notion of "." or empty
// names; the distributed servers reject them at the wire).
func fuzzPath(s string) Path {
	var p Path
	for _, c := range strings.Split(s, "/") {
		if c != "" {
			p = append(p, c)
		}
	}
	return p
}

// FuzzModelPaths drives the reference naming model with arbitrary
// context-directory paths: build the context chain for dir, create an
// object under it, and check the model's own semantics — Mkdir of every
// prefix succeeds, Create→Resolve returns the exact contents, the
// parent List contains the leaf, Remove unbinds it, and a second
// Resolve reports notfound. The model must never panic, whatever the
// component strings contain.
func FuzzModelPaths(f *testing.F) {
	f.Add("users/mann", "paper.mss", []byte("contents"))
	f.Add("", "top", []byte{})
	f.Add("a/b/c/d/e", "leaf", []byte("x"))
	f.Add("weird/..//comp", "\x00\xff", []byte("binary"))
	f.Add("same", "same", []byte("collide"))
	f.Fuzz(func(t *testing.T, dir, leaf string, contents []byte) {
		m := New()
		m.AddTree("fs")
		dirPath := fuzzPath(dir)
		for i := range dirPath {
			if code := m.Mkdir("fs", dirPath[:i+1].clone()); code != "" {
				t.Fatalf("mkdir %v: %s", dirPath[:i+1], code)
			}
		}
		leafPath := fuzzPath(leaf)
		if len(leafPath) == 0 {
			// The leaf string had no usable component; resolving the
			// directory itself must still answer a context.
			out := m.Resolve("fs", dirPath)
			if out.Err != "" || out.Context == nil {
				t.Fatalf("resolve %v: %+v", dirPath, out)
			}
			return
		}
		full := append(dirPath.clone(), leafPath...)
		// Intermediate leaf components need their own contexts.
		for i := 0; i < len(leafPath)-1; i++ {
			if code := m.Mkdir("fs", full[:len(dirPath)+i+1].clone()); code != "" {
				t.Fatalf("mkdir %v: %s", full[:len(dirPath)+i+1], code)
			}
		}
		if code := m.Create("fs", full, contents); code != "" {
			t.Fatalf("create %v: %s", full, code)
		}
		out := m.Resolve("fs", full)
		if out.Err != "" || !bytes.Equal(out.Object, contents) {
			t.Fatalf("resolve %v after create: %+v", full, out)
		}
		names, code := m.List("fs", full[:len(full)-1])
		if code != "" {
			t.Fatalf("list parent: %s", code)
		}
		found := false
		for _, n := range names {
			if n == full[len(full)-1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("created name %q missing from parent listing %v", full[len(full)-1], names)
		}
		if code := m.Remove("fs", full, false); code != "" {
			t.Fatalf("remove %v: %s", full, code)
		}
		if out := m.Resolve("fs", full); out.Err != ErrNotFound {
			t.Fatalf("resolve after remove: %+v", out)
		}
	})
}
