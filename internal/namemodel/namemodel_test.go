package namemodel

import (
	"testing"
	"testing/quick"
)

func demo() *Model {
	m := New()
	m.AddTree("t1")
	m.AddTree("t2")
	m.Mkdir("t1", Path{"dir"})
	m.Create("t1", Path{"dir", "obj"}, []byte("one"))
	m.Mkdir("t2", Path{"shared"})
	m.Create("t2", Path{"shared", "far"}, []byte("two"))
	m.Link("t1", Path{"portal"}, Target{Tree: "t2", Path: Path{"shared"}})
	return m
}

func TestResolveObjectAndContext(t *testing.T) {
	m := demo()
	out := m.Resolve("t1", Path{"dir", "obj"})
	if string(out.Object) != "one" {
		t.Fatalf("out = %+v", out)
	}
	out = m.Resolve("t1", Path{"dir"})
	if out.Context == nil || out.Context.Tree != "t1" {
		t.Fatalf("out = %+v", out)
	}
	out = m.Resolve("t1", Path{"ghost"})
	if out.Err != ErrNotFound {
		t.Fatalf("out = %+v", out)
	}
}

func TestResolveThroughLinkIsCanonical(t *testing.T) {
	m := demo()
	out := m.Resolve("t1", Path{"portal", "far"})
	if string(out.Object) != "two" {
		t.Fatalf("out = %+v", out)
	}
	ctx := m.Resolve("t1", Path{"portal"})
	if ctx.Context == nil || ctx.Context.Tree != "t2" || ctx.Context.Path.String() != "/shared" {
		t.Fatalf("link context = %+v", ctx)
	}
}

func TestCreateThroughLink(t *testing.T) {
	m := demo()
	if code := m.Create("t1", Path{"portal", "new"}, []byte("x")); code != "" {
		t.Fatal(code)
	}
	if out := m.Resolve("t2", Path{"shared", "new"}); string(out.Object) != "x" {
		t.Fatalf("out = %+v", out)
	}
}

func TestRemoveSemantics(t *testing.T) {
	m := demo()
	if code := m.Remove("t1", Path{"dir"}, false); code != ErrNotEmpty {
		t.Fatalf("remove non-empty = %q", code)
	}
	if code := m.Remove("t1", Path{"portal"}, false); code != ErrBadOperation {
		t.Fatalf("remove through link = %q", code)
	}
	if code := m.Remove("t1", Path{"portal"}, true); code != "" {
		t.Fatalf("unlink = %q", code)
	}
	// The target tree survives unlinking.
	if out := m.Resolve("t2", Path{"shared", "far"}); out.Object == nil {
		t.Fatalf("target lost: %+v", out)
	}
	if code := m.Remove("t1", Path{"dir", "obj"}, false); code != "" {
		t.Fatalf("remove obj = %q", code)
	}
	if code := m.Remove("t1", Path{"dir"}, false); code != "" {
		t.Fatalf("remove now-empty dir = %q", code)
	}
}

func TestRenameMovesSubtree(t *testing.T) {
	m := demo()
	if code := m.Rename("t1", Path{"dir"}, Path{"renamed"}); code != "" {
		t.Fatal(code)
	}
	if out := m.Resolve("t1", Path{"renamed", "obj"}); string(out.Object) != "one" {
		t.Fatalf("out = %+v", out)
	}
	if out := m.Resolve("t1", Path{"dir"}); out.Err != ErrNotFound {
		t.Fatalf("old name survives: %+v", out)
	}
	if code := m.Rename("t1", Path{"ghost"}, Path{"x"}); code != ErrNotFound {
		t.Fatalf("rename missing = %q", code)
	}
	if code := m.Rename("t1", Path{"renamed"}, Path{"portal"}); code != ErrDuplicate {
		t.Fatalf("rename onto existing = %q", code)
	}
}

func TestMkdirSemantics(t *testing.T) {
	m := demo()
	if code := m.Mkdir("t1", Path{"dir"}); code != "" {
		t.Fatalf("mkdir existing dir = %q (mkdir-or-open)", code)
	}
	if code := m.Mkdir("t1", Path{"dir", "obj"}); code != ErrDuplicate {
		t.Fatalf("mkdir over object = %q", code)
	}
	if code := m.Mkdir("t1", Path{"missing", "sub"}); code != ErrNotFound {
		t.Fatalf("mkdir under missing parent = %q", code)
	}
}

func TestListAndObjects(t *testing.T) {
	m := demo()
	names, code := m.List("t1", nil)
	if code != "" || len(names) != 2 || names[0] != "dir" || names[1] != "portal" {
		t.Fatalf("list = %v (%q)", names, code)
	}
	objs := m.Objects()
	if len(objs) != 2 {
		t.Fatalf("objects = %v", objs)
	}
	// Links are names, not objects: the portal is not counted, its target
	// is counted once, under t2.
	for _, o := range objs {
		if o == "t1:/portal" {
			t.Fatalf("link counted as object: %v", objs)
		}
	}
}

func TestWriteObject(t *testing.T) {
	m := demo()
	if code := m.WriteObject("t1", Path{"dir", "obj"}, []byte("updated")); code != "" {
		t.Fatal(code)
	}
	if out := m.Resolve("t1", Path{"dir", "obj"}); string(out.Object) != "updated" {
		t.Fatalf("out = %+v", out)
	}
	if code := m.WriteObject("t1", Path{"dir"}, nil); code != ErrNotAContext {
		t.Fatalf("write to context = %q", code)
	}
}

func TestMatchPatternAgainstCore(t *testing.T) {
	// The model's independent matcher must agree with core.MatchName on a
	// fixed oracle set (the conformance tests cross-check them further).
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything", true},
		{"*.mss", "a.mss", true},
		{"*.mss", "a.txt", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"", "x", true},
		{"*a*", "bab", true},
	}
	for _, c := range cases {
		if got := MatchPattern(c.pattern, c.name); got != c.want {
			t.Errorf("MatchPattern(%q, %q) = %v", c.pattern, c.name, got)
		}
	}
}

func TestMatchPatternTerminationProperty(t *testing.T) {
	f := func(pattern, name string) bool {
		if len(pattern) > 12 {
			pattern = pattern[:12]
		}
		if len(name) > 24 {
			name = name[:24]
		}
		_ = MatchPattern(pattern, name) // must terminate without panicking
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
