// Lease granting and callback invalidation (PROTOCOL.md §13).
//
// A lease-enabled prefix server (WithLease) answers OpMapContext requests
// that carry proto.FlagLeaseRequest directly — instead of forwarding the
// "[p]"-only request to the target server — stamping the reply with an
// absolute virtual-time expiry and remembering the requester's callback
// pid in a per-name kernel group. When a binding is defined, deleted or
// modified, the server multicasts OpCacheInvalidate to that name's
// holder group and waits for every reachable holder to apply it
// (kernel.SendGroupAll), so the mutation's reply is a coherence barrier:
// holders the invalidation cannot reach (crashed or partitioned hosts)
// are bounded by their lease expiry instead — the provable staleness
// bound the trace checker enforces.
//
// Unknown prefixes are granted *negative* leases on the ReplyNotFound:
// the client answers repeated lookups of the absent name locally until
// the name is defined (which invalidates the negative holders) or the
// lease lapses.
package prefix

import (
	"time"

	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/trace"
)

// WithLease enables lease granting with the given lease length. Zero
// (the default) disables the lease protocol entirely: lease-flagged
// requests are then served exactly like plain ones, and the server's
// behaviour is byte-identical to the pre-lease code.
func WithLease(d time.Duration) Option {
	return func(s *Server) { s.leaseLen = d }
}

// LeaseLength returns the configured lease length (0 when disabled).
func (s *Server) LeaseLength() time.Duration { return s.leaseLen }

// LeaseStats counts the server's lease activity.
type LeaseStats struct {
	// Grants counts positive lease-stamped MapContext replies.
	Grants uint64
	// Negatives counts negative (NotFound) lease stamps.
	Negatives uint64
	// Invalidations counts invalidation commits (per name changed, not
	// per holder notified).
	Invalidations uint64
	// HoldersNotified counts holder callbacks that acknowledged an
	// invalidation.
	HoldersNotified uint64
}

// LeaseStats returns a snapshot of the lease counters.
func (s *Server) LeaseStats() LeaseStats {
	return LeaseStats{
		Grants:          s.leaseCtr.grants.Load(),
		Negatives:       s.leaseCtr.negatives.Load(),
		Invalidations:   s.leaseCtr.invalidations.Load(),
		HoldersNotified: s.leaseCtr.notified.Load(),
	}
}

// leaseWanted reports whether msg is a grantable lease request: the
// server has leases enabled, the request asks for one, and it is a
// MapContext of the bare prefix (rest empty) — the only shape the server
// can answer from its own table without forwarding.
func (s *Server) leaseWanted(msg *proto.Message, name string, rest int) (kernel.PID, bool) {
	if s.leaseLen <= 0 || msg.Op != proto.OpMapContext || rest < len(name) {
		return kernel.NilPID, false
	}
	cb, ok := proto.LeaseRequest(msg)
	return kernel.PID(cb), ok
}

// stampLease stamps reply with a lease expiring leaseLen from p's
// current clock and registers the callback as a holder of pfx. negative
// marks a NotFound stamp. hint is the holder group read off the index
// node during the resolution descent (NilPID when the node has none
// yet, or on a negative stamp): when set, the grant needs no second
// table lookup — grant+lookup is one descent.
func (s *Server) stampLease(p *kernel.Process, reply *proto.Message, pfx string, cb kernel.PID, negative bool, hint kernel.PID) {
	now := p.Now()
	length := s.leaseLen
	if s.tuner != nil && !negative {
		// Auto-tuned per-name length (tuner.go); negative leases stay at
		// the floor — an absent name's definition is the churn event the
		// tuner has no estimator for yet.
		length = s.tuner.leaseFor(pfx, s.rates)
	}
	expire := now + length
	proto.SetLeaseGrant(reply, int64(expire))
	s.joinHolders(p, pfx, cb, hint)
	if negative {
		s.leaseCtr.negatives.Add(1)
		s.leaseMetric(p, "prefix_lease_negatives_total").Inc()
		p.Kernel().Flight().Record(now, flight.KindLeaseGrant, pfx, s.proc.Name(), "negative")
	} else {
		s.leaseCtr.grants.Add(1)
		s.leaseMetric(p, "prefix_lease_grants_total").Inc()
		if hint != kernel.NilPID {
			// The holder group predates this grant: some holder leased the
			// name before, so this grant re-validates — the closest the
			// granting side comes to seeing a renewal.
			s.rates.ObserveRenewal(pfx, now)
			p.Kernel().Flight().Record(now, flight.KindLeaseRenew, pfx, s.proc.Name(), "")
		} else {
			p.Kernel().Flight().Record(now, flight.KindLeaseGrant, pfx, s.proc.Name(), "")
		}
	}
	if tr := p.Tracer(); tr != nil {
		sp := tr.Event(p.CurrentSpan(), trace.KindLease, "grant "+pfx, now, p.TraceID(), "")
		tr.SetLease(sp, now, expire)
	}
}

// joinHolders adds cb to pfx's holder group, creating the group on first
// use. Membership is idempotent and survives invalidations: a holder
// that re-leases after a callback is already in the group, and destroyed
// processes leave every group via the kernel's destroy path. With a
// non-nil hint (the group read off the index node during resolution)
// the fast path takes no lock; the slow path creates the group on the
// node — or in the orphan map when the name has no binding — under mu.
func (s *Server) joinHolders(p *kernel.Process, pfx string, cb kernel.PID, hint kernel.PID) {
	k := p.Kernel()
	gid := hint
	if gid == kernel.NilPID {
		s.mu.Lock()
		if e, ok := s.index.Get(pfx); ok {
			if e.holders == kernel.NilPID {
				e.holders = k.CreateGroup()
				s.index.Insert(pfx, e)
			}
			gid = e.holders
		} else {
			g, ok := s.orphans[pfx]
			if !ok {
				g = k.CreateGroup()
				s.orphans[pfx] = g
			}
			gid = g
		}
		s.mu.Unlock()
	}
	_ = k.JoinGroup(gid, cb)
}

// invalidateName is the invalidation commit for one name: it records the
// commit point in the trace (the instant the staleness invariant keys
// on), then multicasts OpCacheInvalidate to the name's holders and waits
// for every reachable holder to apply it. Called from the serving
// process after the binding mutation, before its reply — so when the
// mutating client's operation returns, every reachable cache has dropped
// the name.
func (s *Server) invalidateName(p *kernel.Process, name string) {
	// The redefinition is journaled and estimated whether or not leases
	// are on — churn analytics do not depend on the coherence protocol.
	s.rates.ObserveRedefinition(name, p.Now())
	s.tuner.observeRedefinition(name)
	p.Kernel().Flight().Record(p.Now(), flight.KindRedefine, name, s.proc.Name(), "")
	if s.leaseLen <= 0 {
		return
	}
	commit := p.Now()
	s.leaseCtr.invalidations.Add(1)
	s.leaseMetric(p, "prefix_lease_invalidations_total").Inc()
	if tr := p.Tracer(); tr != nil {
		tr.Event(p.CurrentSpan(), trace.KindLease, "invalidate "+name, commit, p.TraceID(), "")
	}
	s.mu.Lock()
	gid := kernel.NilPID
	if e, ok := s.index.Get(name); ok && e.holders != kernel.NilPID {
		gid = e.holders
	} else if g, ok := s.orphans[name]; ok {
		gid = g
	}
	s.mu.Unlock()
	if gid == kernel.NilPID {
		return
	}
	msg := &proto.Message{}
	proto.SetCacheInvalidate(msg, name, int64(commit))
	if n, err := p.SendGroupAll(msg, gid); err == nil && n > 0 {
		s.leaseCtr.notified.Add(uint64(n))
		s.leaseMetric(p, "prefix_lease_holders_notified_total").Add(uint64(n))
		s.rates.ObserveInvalidation(name, commit, n)
	}
}

// drainDirty invalidates every name a directory-record write marked
// dirty (modifyFromRecord runs inside the vio instance's write handler,
// which has no process context — the serve loop drains it before the
// write's reply).
func (s *Server) drainDirty(p *kernel.Process) {
	s.mu.Lock()
	dirty := s.dirty
	s.dirty = nil
	s.mu.Unlock()
	for _, name := range dirty {
		s.invalidateName(p, name)
	}
}

func (s *Server) leaseMetric(p *kernel.Process, name string) *metrics.Counter {
	return p.Kernel().Metrics().Counter(name, metrics.Labels{Server: s.proc.Name(), Class: "prefix"})
}
