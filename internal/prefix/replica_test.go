package prefix

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/replica"
	"repro/internal/vtime"
)

// startReplicatedPrefix boots an n-member prefix replication group (each
// member a New-built server whose serving process is its replica front)
// plus a client process.
func startReplicatedPrefix(t *testing.T, n int) (*replica.Group, []*Server, []*replica.Replica, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	g, err := replica.NewGroup(k.NewHost("mon"), replica.Config{Name: "prefix", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvs := make([]*Server, n)
	reps := make([]*replica.Replica, n)
	for i := 0; i < n; i++ {
		host := k.NewHost(string(rune('a' + i)))
		rep, err := replica.Start(host, "front", func(p *kernel.Process) replica.Service {
			srv := New(p, "mann")
			srvs[i] = srv
			return NewReplicaService(srv)
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(host.Name(), rep); err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	if err := g.Bootstrap(0); err != nil {
		t.Fatal(err)
	}
	client, err := k.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	return g, srvs, reps, client
}

// TestReplicatedPrefixTable drives the replicated prefix front: table
// mutations commit on every member, reads are served member-locally,
// and followers redirect mutations with a leader hint.
func TestReplicatedPrefixTable(t *testing.T) {
	_, srvs, reps, client := startReplicatedPrefix(t, 3)

	// A bracket-less add through the leader front defines the prefix on
	// every member's table.
	add := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(add, 0, "storage")
	proto.SetAddContextTarget(add, 42, 7)
	rep, err := client.Send(add, reps[0].PID())
	if err != nil || rep.Op != proto.ReplyOK {
		t.Fatalf("add reply = %v, %v", rep, err)
	}
	dyn := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(dyn, 0, "bin")
	proto.SetAddContextDynamicTarget(dyn, uint32(kernel.ServiceStorage), uint32(core.CtxStdPrograms))
	if rep, err = client.Send(dyn, reps[0].PID()); err != nil || rep.Op != proto.ReplyOK {
		t.Fatalf("dynamic add reply = %v, %v", rep, err)
	}
	want := map[string]Binding{
		"storage": {Pair: core.ContextPair{Server: 42, Ctx: 7}},
		"bin":     {Dynamic: true, Service: kernel.ServiceStorage, WellKnown: core.CtxStdPrograms},
	}
	for i, s := range srvs {
		if got := s.Bindings(); !reflect.DeepEqual(got, want) {
			t.Fatalf("member %d table = %+v, want %+v", i, got, want)
		}
	}

	// A table mutation sent to a follower is refused with a leader hint —
	// tiny tables make redirect cheaper than forwarding here.
	del := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del, 0, "storage")
	rep, err = client.Send(del, reps[1].PID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op != proto.ReplyNotLeader {
		t.Fatalf("follower mutation reply = %v, want NotLeader", rep.Op)
	}
	if hint := proto.LeaderHint(rep); hint != uint32(reps[0].PID()) {
		t.Fatalf("leader hint = %d, want %d", hint, reps[0].PID())
	}

	// Redirected to the leader, the delete commits everywhere.
	if rep, err = client.Send(del, reps[0].PID()); err != nil || rep.Op != proto.ReplyOK {
		t.Fatalf("leader delete reply = %v, %v", rep, err)
	}
	for i, s := range srvs {
		if _, ok := s.Bindings()["storage"]; ok {
			t.Fatalf("member %d still holds the deleted prefix", i)
		}
	}

	// Non-mutating requests are served by any member's local table.
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, 0, "[bin")
	rep, err = client.Send(q, reps[2].PID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op == proto.ReplyNotLeader {
		t.Fatalf("follower redirected a read")
	}
}

// TestPrefixSnapshotRoundTrip pins the table codec: snapshot and
// restore reproduce static and dynamic bindings exactly, and corrupt
// images are rejected whole.
func TestPrefixSnapshotRoundTrip(t *testing.T) {
	_, srvs, _, _ := startReplicatedPrefix(t, 2)
	src := NewReplicaService(srvs[0])
	if err := srvs[0].Define("storage", core.ContextPair{Server: 42, Ctx: 7}); err != nil {
		t.Fatal(err)
	}
	if err := srvs[0].DefineDynamic("bin", kernel.ServiceStorage, core.CtxStdPrograms); err != nil {
		t.Fatal(err)
	}
	img := src.Snapshot()

	dst := NewReplicaService(srvs[1])
	if err := srvs[1].Define("stale", core.ContextPair{Server: 9, Ctx: 9}); err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(nil, img); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srvs[1].Bindings(), srvs[0].Bindings()) {
		t.Fatalf("restored table %+v != source %+v", srvs[1].Bindings(), srvs[0].Bindings())
	}
	if !bytes.Equal(dst.Snapshot(), img) {
		t.Fatalf("restored table re-encodes differently")
	}
	for _, cut := range []int{1, len(img) - 1} {
		if err := dst.Restore(nil, img[:cut]); err == nil {
			t.Fatalf("Restore accepted a %d-byte truncation", cut)
		}
	}
	if err := dst.Restore(nil, append(append([]byte(nil), img...), 0)); err == nil {
		t.Fatalf("Restore accepted trailing garbage")
	}
}
