package prefix_test

import (
	"fmt"

	"repro/internal/prefix"
)

// ExampleParse shows the context-prefix syntax: any CSname starting with
// '[', with the prefix terminated by ']' (§5.8).
func ExampleParse() {
	name := "[storage]/users/mann/naming.mss"
	pfx, rest, _ := prefix.Parse(name, 0)
	fmt.Printf("prefix %q, remainder %q\n", pfx, name[rest:])
	fmt.Println(prefix.HasPrefix(name), prefix.HasPrefix("welcome.txt"))
	// Output:
	// prefix "storage", remainder "users/mann/naming.mss"
	// true false
}
