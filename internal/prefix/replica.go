package prefix

// Replication adapter (ISSUE 6; PROTOCOL.md §11): a prefix server becomes
// a replication-group member by fronting it with a ReplicaService. Prefix
// tables are tiny and read-mostly, so the routing is simple: table
// mutations (bracket-less add/delete-context-name, §5.7) are proposed
// through the group log and applied on every member; every other request —
// prefix forwards, directory reads, inverse queries — is served by the
// member-local table directly, on any member, since all members hold the
// same committed table. Directory-record writebacks (redefining a prefix
// through an open context directory) stay member-local, like open
// instances themselves; the replicated invariant is the define/delete
// stream.

import (
	"encoding/binary"
	"errors"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/replica"
)

// ReplicaService fronts a member-local prefix server (built with New, not
// Start — the replica process is the serving process) as a
// replication-group state machine.
type ReplicaService struct {
	s *Server
}

// NewReplicaService builds the front over the member-local server.
func NewReplicaService(s *Server) *ReplicaService { return &ReplicaService{s: s} }

// Server returns the member-local prefix server behind the front.
func (rs *ReplicaService) Server() *Server { return rs.s }

// tableMutation reports whether msg defines or deletes a prefix in this
// server's own table — the operations that must go through the group log.
// Bracketed add/delete requests are destined for another server's name
// space and are forwarded along the binding like any other CSname.
func tableMutation(msg *proto.Message) bool {
	if msg.Op != proto.OpAddContextName && msg.Op != proto.OpDeleteContextName {
		return false
	}
	name, index, err := proto.CSName(msg)
	if err != nil {
		return false
	}
	return index >= len(name) || name[index] != Marker
}

// Serve implements replica.Service.
func (rs *ReplicaService) Serve(p *kernel.Process, r *replica.Replica, msg *proto.Message, from kernel.PID) {
	if tableMutation(msg) {
		if !r.Leading() {
			_ = p.Reply(r.NotLeaderReply(), from)
			return
		}
		cmd, err := msg.Marshal()
		if err != nil {
			_ = p.Reply(core.ErrorReplyMsg(err), from)
			return
		}
		rep, err := r.Propose(p, cmd)
		switch {
		case errors.Is(err, proto.ErrNotLeader):
			_ = p.Reply(r.NotLeaderReply(), from)
		case err != nil:
			_ = p.Reply(core.ErrorReplyMsg(err), from)
		default:
			_ = p.Reply(rep, from)
		}
		return
	}
	rs.s.serveOne(p, msg, from)
}

// Apply implements replica.Service: commands are the marshaled mutation
// messages, applied straight to the member-local table (no transaction
// needed — the handlers only touch the table).
func (rs *ReplicaService) Apply(p *kernel.Process, cmd []byte) *proto.Message {
	m, err := proto.Unmarshal(cmd)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	switch m.Op {
	case proto.OpAddContextName:
		return rs.s.handleAdd(p, m)
	case proto.OpDeleteContextName:
		return rs.s.handleDelete(p, m)
	}
	return core.ErrorReplyMsg(proto.ErrBadArgs)
}

// Snapshot implements replica.Service: the prefix table, canonically
// encoded in sorted name order. Runtime state (open instances, rebind
// tracking, stats) is member-local and not part of the replicated state.
func (rs *ReplicaService) Snapshot() []byte {
	// The radix walk visits one immutable snapshot in sorted name order,
	// so the canonical encoding falls straight out — no lock, no sort.
	s := rs.s
	names := make([]string, 0, s.index.Len())
	binds := make([]Binding, 0, s.index.Len())
	s.index.Walk(func(n string, e tableEntry) bool {
		names = append(names, n)
		binds = append(binds, e.b)
		return true
	})
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	u64 := func(x uint64) { buf = append(buf, tmp[:binary.PutUvarint(tmp[:], x)]...) }
	str := func(v string) { u64(uint64(len(v))); buf = append(buf, v...) }
	u64(uint64(len(names)))
	for i, n := range names {
		b := binds[i]
		str(n)
		if b.Dynamic {
			u64(1)
			u64(uint64(b.Service))
			u64(uint64(b.WellKnown))
		} else {
			u64(0)
			u64(uint64(b.Pair.Server))
			u64(uint64(b.Pair.Ctx))
		}
	}
	return buf
}

// Restore implements replica.Service.
func (rs *ReplicaService) Restore(p *kernel.Process, data []byte) error {
	bad := errors.New("prefix: corrupt table snapshot")
	u64 := func() (uint64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	str := func() (string, bool) {
		n, ok := u64()
		if !ok || uint64(len(data)) < n {
			return "", false
		}
		v := string(data[:n])
		data = data[n:]
		return v, true
	}
	cnt, ok := u64()
	if !ok {
		return bad
	}
	names := make([]string, 0, cnt)
	binds := make([]Binding, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		name, ok1 := str()
		dyn, ok2 := u64()
		a, ok3 := u64()
		b, ok4 := u64()
		if !(ok1 && ok2 && ok3 && ok4) {
			return bad
		}
		bind := Binding{}
		if dyn == 1 {
			bind.Dynamic = true
			bind.Service = kernel.Service(a)
			bind.WellKnown = core.ContextID(b)
		} else {
			bind.Pair = core.ContextPair{Server: kernel.PID(a), Ctx: core.ContextID(b)}
		}
		names = append(names, name)
		binds = append(binds, bind)
	}
	if len(data) != 0 {
		return bad
	}
	s := rs.s
	s.mu.Lock()
	defer s.mu.Unlock()
	// Drop the current table in place (the index pointer itself is
	// stable for lock-free readers), parking holder groups so
	// invalidation identity survives the install.
	var oldNames []string
	s.index.Walk(func(n string, e tableEntry) bool {
		if e.holders != kernel.NilPID {
			s.orphans[n] = e.holders
		}
		if !e.b.Dynamic {
			s.reverse.Remove(e.b.Pair, n)
		}
		oldNames = append(oldNames, n)
		return true
	})
	for _, n := range oldNames {
		s.index.Delete(n)
	}
	for i, name := range names {
		gid := kernel.NilPID
		if g, ok := s.orphans[name]; ok {
			gid = g
			delete(s.orphans, name)
		}
		s.index.Insert(name, tableEntry{b: binds[i], holders: gid})
		if !binds[i].Dynamic {
			s.reverse.Add(binds[i].Pair, name)
		}
	}
	s.lastResolved = make(map[string]kernel.PID)
	return nil
}

var _ replica.Service = (*ReplicaService)(nil)
