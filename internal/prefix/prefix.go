// Package prefix implements the V-System context prefix server (§5.8, §6):
// a per-user CSNH server that gives locally-defined character-string names
// to contexts on servers of interest.
//
// A context prefix is the part of a CSname the prefix server parses to
// decide where to forward the request: any CSname starting with '[', with
// the prefix terminated by a closing ']'. Prefixes bind either statically
// to a (server-pid, context-id) pair, or dynamically to a
// (service, well-known-context-id) pair for which the server performs a
// GetPid operation each time the name is used — this is how generic
// services get character-string names (§6).
//
// The prefix server demonstrates the protocol's flexibility: it is a
// conforming CSNH server with a completely different name syntax and
// interpretation from the hierarchical file servers, unified only by the
// standard CSname request fields and forwarding conventions.
package prefix

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/namestat"
	"repro/internal/nametree"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/vio"
)

// Marker is the character that introduces a context prefix. The standard
// run-time routines check for it in a single common routine (§6).
const Marker = '['

// closer terminates a context prefix.
const closer = ']'

// HasPrefix reports whether a CSname starts with a context prefix — the
// client-side check localized in one routine (§6).
func HasPrefix(name string) bool {
	return len(name) > 0 && name[0] == Marker
}

// Parse splits a CSname of the form "[prefix]rest" starting at index,
// returning the prefix and the index of the first byte after the closing
// bracket.
func Parse(name string, index int) (pfx string, rest int, err error) {
	if index < 0 || index >= len(name) || name[index] != Marker {
		return "", 0, fmt.Errorf("%w: name does not start with a context prefix", proto.ErrBadArgs)
	}
	end := strings.IndexByte(name[index:], closer)
	if end < 0 {
		return "", 0, fmt.Errorf("%w: unterminated context prefix", proto.ErrBadArgs)
	}
	pfx = name[index+1 : index+end]
	if pfx == "" {
		return "", 0, fmt.Errorf("%w: empty context prefix", proto.ErrBadArgs)
	}
	rest = index + end + 1
	// A separator directly after the bracket is part of the syntax, not
	// of the remaining name.
	for rest < len(name) && name[rest] == core.Separator {
		rest++
	}
	return pfx, rest, nil
}

// Quote renders a prefix name in its bracketed syntax.
func Quote(pfx string) string { return string(Marker) + pfx + string(closer) }

// Binding is the definition of one context prefix.
type Binding struct {
	// Dynamic selects between the two arms below.
	Dynamic bool
	// Pair is the static (server-pid, context-id) target.
	Pair core.ContextPair
	// Service and WellKnown are the dynamic target, re-resolved with
	// GetPid on every use.
	Service   kernel.Service
	WellKnown core.ContextID
}

// Stats counts the prefix server's forwarding and recovery activity —
// the per-session resilience record the chaos experiments read (§2.2's
// reliability argument, measured during faults rather than after them).
type Stats struct {
	// Forwards counts CSname requests rewritten and passed on.
	Forwards uint64
	// Rebinds counts uses of a dynamic binding that resolved to a
	// different pid than its previous use: the service failed over to a
	// replica or was re-implemented by a new process (§4.2).
	Rebinds uint64
	// DeadTargets counts requests answered with a bounded-time failure
	// because no live target could be resolved for the binding.
	DeadTargets uint64
}

// Option configures a prefix server.
type Option func(*Server)

// WithTeam sets the server-team size — the number of serving processes
// (§3.1). The default 1 preserves the calibrated single-process behavior.
func WithTeam(n int) Option {
	return func(s *Server) { s.teamSize = n }
}

// Server is one user's context prefix server. It normally runs on the
// user's workstation, so the request that reaches it always pays only a
// local hop (§6).
type Server struct {
	proc     *kernel.Process
	owner    string
	reg      *vio.Registry
	team     *core.Team
	teamSize int

	// index is the prefix table: a COW radix tree (PROTOCOL.md §14)
	// whose reads — resolution, classifier probes, directory walks,
	// table snapshots — are lock-free against one immutable root. Each
	// entry carries the binding and the name's lease-holder group, so a
	// lease grant stamps off the same node the resolution descended:
	// grant+lookup is one descent. mu serializes mutations of the index
	// and guards the plain maps below; it is never taken on the
	// resolution hit path.
	index *nametree.Tree[tableEntry]
	mu    sync.Mutex
	// reverse answers the inverse (binding→name) query with the sorted
	// first-match semantics the linear scan used to give (§6).
	reverse *nametree.Reverse[core.ContextPair]
	// lastResolved remembers, per dynamic prefix, the pid its last use
	// resolved to, so rebinds (§4.2) are observable in Stats.
	lastResolved map[string]kernel.PID

	// Lease state (lease.go). leaseLen > 0 enables lease granting;
	// orphans holds the holder groups of names with no current binding
	// (negative leases, and groups parked across a delete so identity
	// survives a redefine); dirty queues names a directory-record write
	// modified, invalidated by the serve loop before the write's reply.
	leaseLen time.Duration
	orphans  map[string]kernel.PID
	dirty    []string

	// stats counters are atomics: team workers bump them concurrently.
	stats    statsCounters
	leaseCtr leaseCounters

	// Observability (PROTOCOL.md §15): always-on hot-name sketch and
	// per-name churn estimators — observers, zero virtual cost — plus
	// the optional lease auto-tuner they feed (tuner.go).
	topk  *namestat.TopK
	rates *namestat.Rates
	tuner *autoTuner
}

// leaseCounters is the lock-free backing store for LeaseStats.
type leaseCounters struct {
	grants        atomic.Uint64
	negatives     atomic.Uint64
	invalidations atomic.Uint64
	notified      atomic.Uint64
}

// statsCounters is the lock-free backing store for Stats.
type statsCounters struct {
	forwards    atomic.Uint64
	rebinds     atomic.Uint64
	deadTargets atomic.Uint64
}

func (c *statsCounters) load() Stats {
	return Stats{
		Forwards:    c.forwards.Load(),
		Rebinds:     c.rebinds.Load(),
		DeadTargets: c.deadTargets.Load(),
	}
}

// Snapshot returns a torn-read-resistant copy of the counters: each
// field is an atomic load, re-read until two consecutive passes agree
// (bounded, falling back to the last read under sustained traffic).
func (c *statsCounters) Snapshot() Stats {
	prev := c.load()
	for i := 0; i < 3; i++ {
		cur := c.load()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// tableEntry is one prefix table slot: the binding plus the name's
// lease-holder group (NilPID until the first grant), co-located on the
// index node so resolution and lease stamping share one descent.
type tableEntry struct {
	b       Binding
	holders kernel.PID
}

// New creates a prefix server for the given user on proc. Call Run in the
// process goroutine.
func New(proc *kernel.Process, owner string, opts ...Option) *Server {
	s := &Server{
		proc:         proc,
		owner:        owner,
		reg:          vio.NewRegistry(),
		teamSize:     1,
		index:        nametree.New[tableEntry](),
		reverse:      nametree.NewReverse[core.ContextPair](),
		lastResolved: make(map[string]kernel.PID),
		orphans:      make(map[string]kernel.PID),
		topk:         namestat.NewTopK(32),
		rates:        namestat.NewRates(0),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.team = core.NewTeam(proc, s.teamSize, s.serveOne, nil)
	return s
}

// Start spawns a prefix server process on host and runs it.
func Start(host *kernel.Host, owner string, opts ...Option) (*Server, error) {
	proc, err := host.NewProcess("context-prefix[" + owner + "]")
	if err != nil {
		return nil, err
	}
	s := New(proc, owner, opts...)
	if err := s.team.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServiceContextPrefix, proc.PID(), kernel.ScopeLocal); err != nil {
		return nil, err
	}
	return s, nil
}

// Err reports why the server stopped serving: nil while it is running,
// kernel.ErrProcessDead after a clean destroy, an error wrapping
// kernel.ErrHostDown after a host crash.
func (s *Server) Err() error { return s.team.Err() }

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Proc returns the server process.
func (s *Server) Proc() *kernel.Process { return s.proc }

// Owner returns the user the server belongs to.
func (s *Server) Owner() string { return s.owner }

// Define creates a static prefix binding (boot-time convenience; clients
// use OpAddContextName).
func (s *Server) Define(name string, pair core.ContextPair) error {
	return s.define(name, Binding{Pair: pair})
}

// DefineDynamic creates a dynamic (service, well-known-context) binding.
func (s *Server) DefineDynamic(name string, service kernel.Service, wellKnown core.ContextID) error {
	return s.define(name, Binding{Dynamic: true, Service: service, WellKnown: wellKnown})
}

func (s *Server) define(name string, b Binding) error {
	name = strings.Trim(name, "[]")
	if name == "" || strings.ContainsAny(name, "[]/") {
		return fmt.Errorf("%w: bad prefix name %q", proto.ErrBadArgs, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index.Get(name); dup {
		return fmt.Errorf("%q: %w", name, proto.ErrDuplicateName)
	}
	// A holder group parked by a negative lease or an earlier delete
	// moves onto the new node, so the define's invalidation (and every
	// later grant) keeps the group identity.
	gid := kernel.NilPID
	if g, ok := s.orphans[name]; ok {
		gid = g
		delete(s.orphans, name)
	}
	s.index.Insert(name, tableEntry{b: b, holders: gid})
	if !b.Dynamic {
		s.reverse.Add(b.Pair, name)
	}
	return nil
}

// Bindings returns a snapshot of the prefix table, read from the
// immutable radix root — no copy is made under the server mutex, so a
// monitor calling this at population scale never stalls resolution.
func (s *Server) Bindings() map[string]Binding {
	out := make(map[string]Binding, s.index.Len())
	s.index.Walk(func(name string, e tableEntry) bool {
		out[name] = e.b
		return true
	})
	return out
}

// TableBytes approximates the in-memory size of the prefix table — the
// figure reported against the paper's 2.6 KB of MC68000 data (§6). Two
// atomic counter loads; the old implementation scanned the table under
// the server mutex.
func (s *Server) TableBytes() int {
	return s.index.KeyBytes() + s.index.Len()*int(unsafe.Sizeof(Binding{}))
}

// Run is the server main loop; team workers, if configured, are spawned
// first.
func (s *Server) Run() { s.team.Run() }

// serveOne processes one request on the serving process p (the
// receptionist, or a team worker after a §3.1 handoff).
func (s *Server) serveOne(p *kernel.Process, msg *proto.Message, from kernel.PID) {
	tr := p.Tracer()
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.PendingSpan(from), trace.KindServe, msg.Op.String(), p.Now(), p.TraceID())
		p.SetCurrentSpan(sp)
	}
	model := p.Kernel().Model()
	reg := p.Kernel().Metrics()
	serveStart := p.Now()
	p.ChargeCompute(model.ServerDispatchCost)

	var reply *proto.Message
	switch {
	case msg.Op.IsCSNameOp():
		reply = s.handleCSName(p, msg, from)
	case msg.Op == proto.OpGetContextName:
		reply = s.handleInverse(msg)
	default:
		if r := s.reg.HandleOp(p, msg); r != nil {
			reply = r
		} else {
			reply = proto.NewReply(proto.ReplyIllegalRequest)
		}
	}
	// A directory-record write may have redefined prefixes: invalidate
	// their lease holders before the write's reply commits it.
	s.drainDirty(p)
	if reply == nil {
		// The request was forwarded along a prefix binding.
		if tr != nil {
			tr.End(sp, p.Now())
			p.SetCurrentSpan(0)
		}
		return
	}
	if tr != nil {
		// Classify non-OK replies on the serve span and end it before the
		// Reply unblocks the client (snapshot consistency — see core).
		class := ""
		if reply.Op != proto.ReplyOK {
			class = reply.Op.String()
		}
		tr.Fail(sp, p.Now(), class)
	}
	if reg != nil {
		// Mirrors core.Server.instrumentServe: recorded before the Reply
		// unblocks the client, only for requests answered here.
		lbl := metrics.Labels{Server: s.proc.Name(), Op: msg.Op.String()}
		reg.Histogram("serve_latency", lbl).Record(p.Now() - serveStart)
		reg.Counter("server_requests_total", lbl).Inc()
		if reply.Op != proto.ReplyOK {
			reg.Counter("server_failures_total", lbl).Inc()
		}
	}
	_ = p.Reply(reply, from)
	if tr != nil {
		p.SetCurrentSpan(0)
	}
}

// handleCSName routes any CSname request: a bracketed prefix selects a
// binding and the request is rewritten and forwarded (§6) — including
// add/delete-context-name requests destined for another server's name
// space. Bracket-less names address the prefix server's own context: its
// prefix table, where the optional add/delete operations are implemented
// (§5.7).
func (s *Server) handleCSName(p *kernel.Process, msg *proto.Message, from kernel.PID) *proto.Message {
	model := p.Kernel().Model()
	name, index, err := proto.CSName(msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}

	if index >= len(name) || name[index] != Marker {
		switch msg.Op {
		case proto.OpAddContextName:
			return s.handleAdd(p, msg)
		case proto.OpDeleteContextName:
			return s.handleDelete(p, msg)
		default:
			return s.handleOwnName(p, msg, name[index:])
		}
	}

	// The calibrated per-request processing cost of the MC68000 prefix
	// server: re-validating the request, parsing the prefix, scanning the
	// table and rewriting the message (§6).
	p.ChargeCompute(model.PrefixRewriteCost)

	pfx, rest, err := Parse(name, index)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	// Observers only — neither the sketch, the estimator nor the flight
	// recorder charges virtual time.
	s.topk.Observe(pfx)
	s.rates.ObserveResolution(pfx, p.Now())
	p.Kernel().Flight().Record(p.Now(), flight.KindResolution, pfx, s.proc.Name(), "")
	// The resolution fast path: one lock-free descent of the radix index
	// yields the binding and the node's holder group together.
	e, ok := s.index.Get(pfx)
	b := e.b
	cb, wantLease := s.leaseWanted(msg, name, rest)
	if !ok {
		reply := core.ErrorReplyMsg(fmt.Errorf("prefix %q: %w", pfx, proto.ErrNotFound))
		if wantLease {
			// Unknown prefix, lease requested: grant a negative lease so
			// the holder answers repeated lookups locally until a define
			// invalidates it (lease.go).
			s.stampLease(p, reply, pfx, cb, true, kernel.NilPID)
		}
		return reply
	}
	pair, err := s.resolveBinding(p, b)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	// Dynamic bindings recover at time of use (§4.2): GetPid just
	// re-resolved the service, so a replica or re-created server takes
	// over transparently — count the rebind when the answer moved. If the
	// resolution points at a dead process (a stale registration left in
	// another kernel's service table), answer with a bounded-time failure
	// instead of forwarding into a dead transaction, charging the
	// retransmit budget the discovery would have cost.
	if b.Dynamic {
		if !p.Kernel().ProcessAlive(pair.Server) {
			p.ChargeCompute(model.RetransmitTimeout)
			s.stats.deadTargets.Add(1)
			p.Kernel().Metrics().
				Counter("prefix_dead_targets_total", metrics.Labels{Server: s.proc.Name()}).Inc()
			p.Kernel().Flight().Record(p.Now(), flight.KindFailover, pfx, s.proc.Name(), "dead-target")
			return core.ErrorReplyMsg(fmt.Errorf("prefix %q: no live server for service %v: %w",
				pfx, b.Service, proto.ErrTimeout))
		}
		s.mu.Lock()
		rebound := false
		if prev, ok := s.lastResolved[pfx]; ok && prev != pair.Server {
			s.stats.rebinds.Add(1)
			rebound = true
		}
		s.lastResolved[pfx] = pair.Server
		s.mu.Unlock()
		if rebound {
			p.Kernel().Metrics().
				Counter("prefix_rebinds_total", metrics.Labels{Server: s.proc.Name()}).Inc()
			p.Kernel().Flight().Record(p.Now(), flight.KindFailover, pfx, s.proc.Name(), "rebind")
		}
	}
	if wantLease {
		// A bare-prefix MapContext asking for a lease is answered directly
		// from the table — the server knows the pair and must be the one
		// stamping the expiry and tracking the holder — where the plain
		// protocol would forward it to the target server (lease.go).
		reply := core.OkReply()
		proto.SetMapContextReply(reply, uint32(pair.Server), uint32(pair.Ctx))
		s.stampLease(p, reply, pfx, cb, false, e.holders)
		return reply
	}
	proto.RewriteCSName(msg, uint32(pair.Ctx), rest)
	s.stats.forwards.Add(1)
	p.Kernel().Flight().Record(p.Now(), flight.KindForward, pfx, s.proc.Name(), "")
	// Counted before the Forward delivers (see core.serveCSName).
	p.Kernel().Metrics().
		Counter("prefix_forwards_total", metrics.Labels{Server: s.proc.Name()}).Inc()
	// A failed forward already failed the client's transaction.
	_ = p.Forward(msg, from, pair.Server)
	return nil
}

// Stats returns a stabilized snapshot of the forwarding and recovery
// counters (see statsCounters.Snapshot).
func (s *Server) Stats() Stats {
	return s.stats.Snapshot()
}

// TopNames returns the server's hot-name sketch, count-descending.
func (s *Server) TopNames() []namestat.Item { return s.topk.Snapshot() }

// NameRates returns the server's per-name churn estimators.
func (s *Server) NameRates() []namestat.RateItem { return s.rates.Snapshot() }

// Rates exposes the estimator table (read-only use: experiments and the
// tuner verification suite probe individual names).
func (s *Server) Rates() *namestat.Rates { return s.rates }

// PublishNamestat copies the sketch and estimator state into reg as
// volatile gauges — on demand, so deterministic metrics documents never
// see them (namestat.Publish).
func (s *Server) PublishNamestat(reg *metrics.Registry) {
	namestat.Publish(reg, s.proc.Name(), s.topk, s.rates)
}

// resolveBinding maps a binding to a concrete context pair; dynamic
// bindings perform GetPid at time of use, so the name keeps working after
// the service is re-implemented by a new process (§6).
func (s *Server) resolveBinding(p *kernel.Process, b Binding) (core.ContextPair, error) {
	if !b.Dynamic {
		return b.Pair, nil
	}
	pid, err := p.GetPid(b.Service, kernel.ScopeBoth)
	if err != nil {
		return core.ContextPair{}, fmt.Errorf("service %v: %w", b.Service, proto.ErrNotFound)
	}
	return core.ContextPair{Server: pid, Ctx: b.WellKnown}, nil
}

// handleOwnName serves requests on the prefix server's own (single)
// context: its context directory and per-prefix queries.
func (s *Server) handleOwnName(p *kernel.Process, msg *proto.Message, rest string) *proto.Message {
	rest = strings.TrimLeft(rest, string(core.Separator))
	switch msg.Op {
	case proto.OpCreateInstance:
		if proto.OpenMode(msg)&proto.ModeDirectory == 0 || rest != "" {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		return s.openDirectory(p, msg)
	case proto.OpQueryObject:
		e, ok := s.index.Get(rest)
		if !ok {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		p.ChargeCompute(p.Kernel().Model().DescriptorFabricateCost)
		reply := core.OkReply()
		d := s.describe(rest, e.b)
		reply.Segment = d.AppendEncoded(nil)
		return reply
	case proto.OpMapContext:
		if rest == "" {
			reply := core.OkReply()
			proto.SetMapContextReply(reply, uint32(s.proc.PID()), uint32(core.CtxDefault))
			return reply
		}
		return core.ErrorReplyMsg(proto.ErrNotFound)
	default:
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
}

// describe fabricates the description record of one prefix (§5.6).
// ObjectID 1 marks a dynamic binding; TypeSpecific carries the target
// pair (static) or the (service, well-known-context) pair (dynamic).
func (s *Server) describe(name string, b Binding) proto.Descriptor {
	d := proto.Descriptor{
		Tag:   proto.TagContextPrefix,
		Name:  name,
		Owner: s.owner,
		Perms: proto.PermRead | proto.PermWrite,
	}
	if b.Dynamic {
		d.ObjectID = 1
		d.TypeSpecific = [2]uint32{uint32(b.Service), uint32(b.WellKnown)}
	} else {
		d.TypeSpecific = [2]uint32{uint32(b.Pair.Server), uint32(b.Pair.Ctx)}
	}
	return d
}

// openDirectory fabricates the prefix table's context directory; writing
// a record back redefines the corresponding prefix (§5.6).
func (s *Server) openDirectory(p *kernel.Process, msg *proto.Message) *proto.Message {
	pattern, err := proto.DirPattern(msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	model := p.Kernel().Model()
	// Walk one immutable snapshot in sorted order — no lock, no re-sort.
	records := make([]proto.Descriptor, 0, s.index.Len())
	s.index.Walk(func(n string, e tableEntry) bool {
		records = append(records, s.describe(n, e.b))
		return true
	})
	records = core.FilterRecords(records, pattern)
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)

	inst := vio.NewDirectoryInstance(records, func(d proto.Descriptor) error {
		return s.modifyFromRecord(d)
	})
	id, err := s.reg.Open(inst, Quote(""))
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	info := inst.Info()
	info.ID = id
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// modifyFromRecord applies a written directory record as a modification
// of the named prefix.
func (s *Server) modifyFromRecord(d proto.Descriptor) error {
	if d.Tag != proto.TagContextPrefix {
		return fmt.Errorf("%w: record tag %v", proto.ErrBadArgs, d.Tag)
	}
	b := Binding{}
	if d.ObjectID == 1 {
		b.Dynamic = true
		b.Service = kernel.Service(d.TypeSpecific[0])
		b.WellKnown = core.ContextID(d.TypeSpecific[1])
	} else {
		b.Pair = core.ContextPair{
			Server: kernel.PID(d.TypeSpecific[0]),
			Ctx:    core.ContextID(d.TypeSpecific[1]),
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index.Get(d.Name)
	if !ok {
		return fmt.Errorf("prefix %q: %w", d.Name, proto.ErrNotFound)
	}
	if !e.b.Dynamic {
		s.reverse.Remove(e.b.Pair, d.Name)
	}
	e.b = b
	s.index.Insert(d.Name, e)
	if !b.Dynamic {
		s.reverse.Add(b.Pair, d.Name)
	}
	// The vio write handler has no process context: queue the name and
	// let the serve loop invalidate holders before the write's reply.
	s.dirty = append(s.dirty, d.Name)
	return nil
}

// handleAdd implements OpAddContextName, one of the optional operations
// ordinarily implemented only by context prefix servers (§5.7). Defining
// a name invalidates its lease holders — negative caches of the
// previously-absent name — before the reply, so the define commits as a
// coherence barrier (lease.go).
func (s *Server) handleAdd(p *kernel.Process, msg *proto.Message) *proto.Message {
	name, index, err := proto.CSName(msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	dyn, pidOrService, ctx := proto.AddContextTarget(msg)
	b := Binding{}
	if dyn {
		b.Dynamic = true
		b.Service = kernel.Service(pidOrService)
		b.WellKnown = core.ContextID(ctx)
	} else {
		b.Pair = core.ContextPair{Server: kernel.PID(pidOrService), Ctx: core.ContextID(ctx)}
	}
	key := strings.Trim(name[index:], "[]")
	if err := s.define(key, b); err != nil {
		return core.ErrorReplyMsg(err)
	}
	s.invalidateName(p, key)
	return core.OkReply()
}

// handleDelete implements OpDeleteContextName. Deleting a name
// invalidates its lease holders before the reply (lease.go).
func (s *Server) handleDelete(p *kernel.Process, msg *proto.Message) *proto.Message {
	name, index, err := proto.CSName(msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	key := strings.Trim(name[index:], "[]")
	s.mu.Lock()
	e, ok := s.index.Get(key)
	if !ok {
		s.mu.Unlock()
		return core.ErrorReplyMsg(fmt.Errorf("prefix %q: %w", key, proto.ErrNotFound))
	}
	s.index.Delete(key)
	if e.holders != kernel.NilPID {
		// Park the holder group so the delete's invalidation reaches it
		// and a later redefine re-adopts the same group.
		s.orphans[key] = e.holders
	}
	if !e.b.Dynamic {
		s.reverse.Remove(e.b.Pair, key)
	}
	delete(s.lastResolved, key)
	s.mu.Unlock()
	s.invalidateName(p, key)
	return core.OkReply()
}

// handleInverse implements OpGetContextName for the prefix server: given
// a (server-pid, context-id) pair (F[1], F[0]), return a prefix that
// names it, in bracketed syntax. As §6 observes this inverts a
// many-to-one mapping: the first matching (non-dynamic) prefix in sorted
// order is returned, and there may be none. The reverse index answers
// with that exact tie-break in O(1) where the old code scanned the
// sorted name table.
func (s *Server) handleInverse(msg *proto.Message) *proto.Message {
	target := core.ContextPair{Server: kernel.PID(msg.F[1]), Ctx: core.ContextID(msg.F[0])}
	s.mu.Lock()
	found, ok := s.reverse.First(target)
	s.mu.Unlock()
	if !ok {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	reply := core.OkReply()
	reply.Segment = []byte(Quote(found))
	return reply
}
