package prefix

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
)

// TestTraceInvariantsPrefixServer drives prefixed queries through a
// prefix-server team in a traced domain: each transaction's span tree
// must show the prefix rewrite as a forward hop into the target server,
// and the invariant checker must accept the whole trace.
func TestTraceInvariantsPrefixServer(t *testing.T) {
	d := tracetest.New()
	target, err := d.K.NewHost("srv").Spawn("target", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := proto.NewReply(proto.ReplyOK)
			reply.F[0] = msg.F[0]
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Destroy)

	ps, err := Start(d.K.NewHost("ws"), "mann", WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Proc().Destroy() })
	if err := ps.Define("tgt", core.ContextPair{Server: target.PID(), Ctx: 42}); err != nil {
		t.Fatal(err)
	}

	proc, err := d.K.NewHost("remote").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	const trials = 4
	for j := 0; j < trials; j++ {
		req := &proto.Message{Op: proto.OpQueryObject}
		proto.SetCSName(req, 0, fmt.Sprintf("[tgt]q%d", j))
		reply, err := proc.Send(req, ps.PID())
		if err != nil || reply.Op != proto.ReplyOK {
			t.Fatalf("trial %d: %v, %v", j, reply, err)
		}
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, trials)
	tracetest.Require(t, spans, trace.KindServe, trials)
	tracetest.Require(t, spans, trace.KindReply, trials)
	// Team handoff plus the prefix rewrite: at least two forwards per
	// query (receptionist → worker, worker → target server).
	tracetest.Require(t, spans, trace.KindHandoff, trials)
	tracetest.Require(t, spans, trace.KindForward, trials*2)
	// The reply comes from the rewrite target, not the prefix server:
	// every successful reply span must name the target's host.
	for _, s := range spans {
		if s.Kind == trace.KindReply && s.Err == "" && s.Host != "srv" {
			t.Fatalf("reply span %d served from host %q, want the rewrite target", s.ID, s.Host)
		}
	}
}
