package prefix

import "testing"

// FuzzParse: arbitrary names never panic the prefix parser; successful
// parses are consistent with Quote.
func FuzzParse(f *testing.F) {
	f.Add("[storage]/users/mann", 0)
	f.Add("[p]", 0)
	f.Add("xx[tty]vgt1", 2)
	f.Add("[unterminated", 0)
	f.Add("", 0)
	f.Fuzz(func(t *testing.T, name string, index int) {
		pfx, rest, err := Parse(name, index)
		if err != nil {
			return
		}
		if pfx == "" {
			t.Fatal("parsed an empty prefix without error")
		}
		if rest < index || rest > len(name) {
			t.Fatalf("rest %d out of range", rest)
		}
	})
}
