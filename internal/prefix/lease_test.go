package prefix

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// newLeaseRig boots a lease-enabled prefix server, a toy target server,
// a client process, and a callback process that acknowledges every
// OpCacheInvalidate it receives and records the invalidated names.
func newLeaseRig(t *testing.T) (*Server, *kernel.Process, *kernel.Process, chan string) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	ws := k.NewHost("ws")
	srvHost := k.NewHost("srv")

	target, err := srvHost.Spawn("target", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := proto.NewReply(proto.ReplyOK)
			reply.F[0] = msg.F[0]
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	invalidated := make(chan string, 16)
	callback, err := ws.Spawn("callback", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			if name, _, err := proto.CacheInvalidate(msg); err == nil {
				invalidated <- name
			}
			if err := p.Reply(proto.NewReply(proto.ReplyOK), from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	ps, err := Start(ws, "mann", WithLease(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	client, err := ws.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ps.Proc().Destroy()
		target.Destroy()
		callback.Destroy()
		client.Destroy()
	})
	if err := ps.Define("tgt", core.ContextPair{Server: target.PID(), Ctx: 42}); err != nil {
		t.Fatal(err)
	}
	return ps, client, callback, invalidated
}

// leaseMap sends a bare-prefix MapContext with a lease request and
// returns the reply.
func leaseMap(t *testing.T, client *kernel.Process, ps *Server, cb kernel.PID, name string) *proto.Message {
	t.Helper()
	req := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(req, 0, name)
	proto.SetLeaseRequest(req, uint32(cb))
	reply, err := client.Send(req, ps.PID())
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestLeaseGrantAndInvalidate walks the whole holder-group life cycle
// through the radix index: grant onto the node (slow path creating the
// group, then the descent-hint fast path), deletion parking the group
// in the orphan map with the callback barrier reaching the holder, and
// redefinition re-adopting the orphan group so the re-grant reuses it.
func TestLeaseGrantAndInvalidate(t *testing.T) {
	ps, client, callback, invalidated := newLeaseRig(t)

	reply := leaseMap(t, client, ps, callback.PID(), "[tgt]")
	if reply.Op != proto.ReplyOK {
		t.Fatalf("MapContext ret %v", reply.Op)
	}
	if _, ok := proto.LeaseGrant(reply); !ok {
		t.Fatal("reply not lease-stamped")
	}
	// Second grant: the holder group now lives on the index node, so the
	// stamp takes the descent-hint fast path.
	leaseMap(t, client, ps, callback.PID(), "[tgt]")
	if st := ps.LeaseStats(); st.Grants != 2 {
		t.Fatalf("grants = %d, want 2", st.Grants)
	}

	// Deleting the binding must run the callback barrier before the
	// reply: the holder hears the invalidation, and the group is parked
	// for the name's next life.
	del := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del, 0, "tgt")
	if reply, err := client.Send(del, ps.PID()); err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("delete: op=%v err=%v", reply.Op, err)
	}
	select {
	case name := <-invalidated:
		if name != "tgt" {
			t.Fatalf("invalidated %q, want tgt", name)
		}
	default:
		t.Fatal("holder never heard the invalidation")
	}
	st := ps.LeaseStats()
	if st.Invalidations == 0 || st.HoldersNotified == 0 {
		t.Fatalf("lease stats after delete: %+v", st)
	}

	// Redefine and re-grant: the parked group is re-adopted, so the
	// holder (still a member) hears the next invalidation too.
	add := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(add, 0, "tgt")
	proto.SetAddContextTarget(add, uint32(ps.PID()), 7)
	if reply, err := client.Send(add, ps.PID()); err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("add: op=%v err=%v", reply.Op, err)
	}
	leaseMap(t, client, ps, callback.PID(), "[tgt]")
	del2 := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del2, 0, "tgt")
	if _, err := client.Send(del2, ps.PID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-invalidated:
	default:
		t.Fatal("re-adopted group lost the holder")
	}
}

// TestNegativeLeaseOrphans pins the orphan path: a lease request for an
// undefined name is answered NotFound with a negative stamp, the holder
// group lives in the orphan map, and defining the name both adopts the
// group and fires the callback barrier at the negative holders.
func TestNegativeLeaseOrphans(t *testing.T) {
	ps, client, callback, invalidated := newLeaseRig(t)

	reply := leaseMap(t, client, ps, callback.PID(), "[ghost]")
	if reply.Op != proto.ReplyNotFound {
		t.Fatalf("undefined name ret %v", reply.Op)
	}
	if _, ok := proto.LeaseGrant(reply); !ok {
		t.Fatal("NotFound reply not negatively stamped")
	}
	// Second negative: the orphan group already exists.
	leaseMap(t, client, ps, callback.PID(), "[ghost]")
	if st := ps.LeaseStats(); st.Negatives != 2 {
		t.Fatalf("negatives = %d, want 2", st.Negatives)
	}

	add := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(add, 0, "ghost")
	proto.SetAddContextTarget(add, uint32(ps.PID()), 9)
	if reply, err := client.Send(add, ps.PID()); err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("define ghost: op=%v err=%v", reply.Op, err)
	}
	select {
	case name := <-invalidated:
		if name != "ghost" {
			t.Fatalf("invalidated %q, want ghost", name)
		}
	default:
		t.Fatal("negative holders never heard the definition")
	}

	// The adopted group serves the positive grant now.
	if reply := leaseMap(t, client, ps, callback.PID(), "[ghost]"); reply.Op != proto.ReplyOK {
		t.Fatalf("post-define MapContext ret %v", reply.Op)
	}
}

// TestInvalidateWithoutHolders covers the commit path for names nobody
// leased: the mutation commits, the invalidation counter ticks, and no
// callback is attempted.
func TestInvalidateWithoutHolders(t *testing.T) {
	ps, client, _, invalidated := newLeaseRig(t)
	del := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del, 0, "tgt")
	if reply, err := client.Send(del, ps.PID()); err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("delete: op=%v err=%v", reply.Op, err)
	}
	if st := ps.LeaseStats(); st.Invalidations != 1 || st.HoldersNotified != 0 {
		t.Fatalf("lease stats: %+v", st)
	}
	select {
	case name := <-invalidated:
		t.Fatalf("unexpected callback for %q", name)
	default:
	}
}
