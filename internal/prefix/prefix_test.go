package prefix

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

func TestHasPrefix(t *testing.T) {
	if !HasPrefix("[storage]/x") || HasPrefix("plain") || HasPrefix("") {
		t.Fatal("HasPrefix misclassifies")
	}
}

func TestParse(t *testing.T) {
	pfx, rest, err := Parse("[storage]/users/mann", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pfx != "storage" || "[storage]/users/mann"[rest:] != "users/mann" {
		t.Fatalf("pfx=%q rest=%d", pfx, rest)
	}
}

func TestParseNoSeparatorAfterBracket(t *testing.T) {
	pfx, rest, err := Parse("[home]welcome.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pfx != "home" || "[home]welcome.txt"[rest:] != "welcome.txt" {
		t.Fatalf("pfx=%q rest=%d", pfx, rest)
	}
}

func TestParseBareBrackets(t *testing.T) {
	pfx, rest, err := Parse("[print]", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pfx != "print" || rest != len("[print]") {
		t.Fatalf("pfx=%q rest=%d", pfx, rest)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "noprefix", "[unterminated", "[]empty"} {
		if _, _, err := Parse(bad, 0); !errors.Is(err, proto.ErrBadArgs) {
			t.Errorf("Parse(%q) err = %v", bad, err)
		}
	}
}

func TestParseAtIndex(t *testing.T) {
	name := "xxx[tty]vgt1"
	pfx, rest, err := Parse(name, 3)
	if err != nil || pfx != "tty" || name[rest:] != "vgt1" {
		t.Fatalf("pfx=%q rest=%d err=%v", pfx, rest, err)
	}
}

func TestQuoteParseRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		name := strings.Map(func(r rune) rune {
			if r == '[' || r == ']' || r == '/' {
				return -1
			}
			return r
		}, raw)
		if name == "" {
			return true
		}
		pfx, _, err := Parse(Quote(name)+"rest", 0)
		return err == nil && pfx == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// newPrefixRig builds a minimal domain: one workstation with a prefix
// server, plus a toy target server that records what reaches it.
func newPrefixRig(t *testing.T) (*Server, *kernel.Process, *kernel.Process, chan *proto.Message) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	ws := k.NewHost("ws")
	srvHost := k.NewHost("srv")

	seen := make(chan *proto.Message, 16)
	target, err := srvHost.Spawn("target", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			seen <- msg.Clone()
			reply := proto.NewReply(proto.ReplyOK)
			reply.F[0] = msg.F[0] // echo context id back
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	ps, err := Start(ws, "mann")
	if err != nil {
		t.Fatal(err)
	}
	client, err := ws.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ps.Proc().Destroy()
		target.Destroy()
		client.Destroy()
	})
	if err := ps.Define("tgt", core.ContextPair{Server: target.PID(), Ctx: 42}); err != nil {
		t.Fatal(err)
	}
	return ps, client, target, seen
}

func TestForwardRewritesContextAndIndex(t *testing.T) {
	ps, client, _, seen := newPrefixRig(t)
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 0, "[tgt]a/b")
	reply, err := client.Send(req, ps.PID())
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v", reply.Op)
	}
	got := <-seen
	name, idx, err := proto.CSName(got)
	if err != nil {
		t.Fatal(err)
	}
	if proto.CSNameContext(got) != 42 {
		t.Fatalf("forwarded context = %d", proto.CSNameContext(got))
	}
	if name[idx:] != "a/b" {
		t.Fatalf("forwarded name remainder = %q", name[idx:])
	}
}

func TestUnknownPrefixNotFound(t *testing.T) {
	ps, client, _, _ := newPrefixRig(t)
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 0, "[nope]x")
	reply, err := client.Send(req, ps.PID())
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestDynamicBindingUsesGetPid(t *testing.T) {
	ps, client, target, seen := newPrefixRig(t)
	if err := ps.DefineDynamic("svc", kernel.ServiceTime, core.CtxDefault); err != nil {
		t.Fatal(err)
	}
	// Service not yet registered: use fails.
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 0, "[svc]x")
	reply, err := client.Send(req, ps.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	// Register the service; the same name now works.
	if err := target.SetPid(kernel.ServiceTime, target.PID(), kernel.ScopeBoth); err != nil {
		t.Fatal(err)
	}
	req2 := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req2, 0, "[svc]x")
	reply, err = client.Send(req2, ps.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	<-seen
}

func TestAddDeleteViaProtocol(t *testing.T) {
	ps, client, target, _ := newPrefixRig(t)
	add := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(add, 0, "added")
	proto.SetAddContextTarget(add, uint32(target.PID()), 7)
	reply, err := client.Send(add, ps.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("add reply = %v, %v", reply, err)
	}
	if _, ok := ps.Bindings()["added"]; !ok {
		t.Fatal("binding missing after add")
	}
	del := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del, 0, "added")
	reply, err = client.Send(del, ps.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("delete reply = %v, %v", reply, err)
	}
	if _, ok := ps.Bindings()["added"]; ok {
		t.Fatal("binding still present after delete")
	}
	// Deleting again fails.
	del2 := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del2, 0, "added")
	reply, err = client.Send(del2, ps.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("second delete reply = %v, %v", reply, err)
	}
}

func TestDefineValidation(t *testing.T) {
	ps, _, _, _ := newPrefixRig(t)
	if err := ps.Define("has/slash", core.ContextPair{}); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
	if err := ps.Define("", core.ContextPair{}); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
	if err := ps.Define("tgt", core.ContextPair{}); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapContextOfPrefixServerItself(t *testing.T) {
	ps, client, _, _ := newPrefixRig(t)
	req := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(req, 0, "")
	reply, err := client.Send(req, ps.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	pid, ctx := proto.GetMapContextReply(reply)
	if kernel.PID(pid) != ps.PID() || ctx != uint32(core.CtxDefault) {
		t.Fatalf("pair = %#x, %d", pid, ctx)
	}
}

func TestQueryPrefixDescriptor(t *testing.T) {
	ps, client, target, _ := newPrefixRig(t)
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 0, "tgt") // no bracket: the server's own name space
	reply, err := client.Send(req, ps.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tag != proto.TagContextPrefix || d.Name != "tgt" || d.Owner != "mann" {
		t.Fatalf("descriptor = %+v", d)
	}
	if kernel.PID(d.TypeSpecific[0]) != target.PID() || d.TypeSpecific[1] != 42 {
		t.Fatalf("target = %v", d.TypeSpecific)
	}
}

func TestInverseMapping(t *testing.T) {
	ps, client, target, _ := newPrefixRig(t)
	req := &proto.Message{Op: proto.OpGetContextName}
	req.F[0] = 42
	req.F[1] = uint32(target.PID())
	reply, err := client.Send(req, ps.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	if string(reply.Segment) != "[tgt]" {
		t.Fatalf("inverse = %q", reply.Segment)
	}
	// Unknown pair: not found.
	req2 := &proto.Message{Op: proto.OpGetContextName}
	req2.F[0] = 99
	req2.F[1] = uint32(target.PID())
	reply, err = client.Send(req2, ps.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}

func TestModifyThroughDirectoryRecord(t *testing.T) {
	ps, _, target, _ := newPrefixRig(t)
	rec := proto.Descriptor{
		Tag:          proto.TagContextPrefix,
		Name:         "tgt",
		TypeSpecific: [2]uint32{uint32(target.PID()), 77},
	}
	if err := ps.modifyFromRecord(rec); err != nil {
		t.Fatal(err)
	}
	b := ps.Bindings()["tgt"]
	if b.Pair.Ctx != 77 {
		t.Fatalf("binding after modify = %+v", b)
	}
	// Unknown prefix rejected.
	rec.Name = "ghost"
	if err := ps.modifyFromRecord(rec); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Wrong tag rejected.
	rec.Name = "tgt"
	rec.Tag = proto.TagFile
	if err := ps.modifyFromRecord(rec); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestTableBytesGrows(t *testing.T) {
	ps, _, _, _ := newPrefixRig(t)
	before := ps.TableBytes()
	if err := ps.Define("another", core.ContextPair{}); err != nil {
		t.Fatal(err)
	}
	if ps.TableBytes() <= before {
		t.Fatal("TableBytes should grow with the table")
	}
}

func TestPrefixProcessingChargesCalibratedCost(t *testing.T) {
	ps, client, _, _ := newPrefixRig(t)
	model := client.Kernel().Model()
	start := client.Now()
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 0, "[tgt]x")
	if _, err := client.Send(req, ps.PID()); err != nil {
		t.Fatal(err)
	}
	elapsed := client.Now() - start
	if elapsed < model.PrefixRewriteCost {
		t.Fatalf("prefixed request cost %v, must include the %v prefix processing", elapsed, model.PrefixRewriteCost)
	}
}
