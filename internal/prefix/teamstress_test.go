package prefix

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// TestTeamStressPrefixServer forwards prefixed queries from many
// concurrent client processes through one prefix-server team.
func TestTeamStressPrefixServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	ws := k.NewHost("ws")
	target, err := k.NewHost("srv").Spawn("target", func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := proto.NewReply(proto.ReplyOK)
			reply.F[0] = msg.F[0]
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Destroy)

	ps, err := Start(ws, "mann", WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Proc().Destroy() })
	if err := ps.Define("tgt", core.ContextPair{Server: target.PID(), Ctx: 42}); err != nil {
		t.Fatal(err)
	}

	const clients, trials = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("remote%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			for j := 0; j < trials; j++ {
				req := &proto.Message{Op: proto.OpQueryObject}
				proto.SetCSName(req, 0, fmt.Sprintf("[tgt]c%d/q%d", i, j))
				reply, err := proc.Send(req, ps.PID())
				if err != nil {
					errs <- fmt.Errorf("client %d trial %d: %w", i, j, err)
					return
				}
				if reply.Op != proto.ReplyOK {
					errs <- fmt.Errorf("client %d trial %d: reply %v", i, j, reply.Op)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := ps.Stats(); st.Forwards != clients*trials {
		t.Fatalf("forwards = %d, want %d", st.Forwards, clients*trials)
	}
}
