package prefix

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// The prefix server's recovery behaviour for dynamic bindings: a stale
// registration pointing at a dead process gets a bounded-time failure
// (no forward into a dead transaction), and a resolution that moves to a
// different pid is counted as a §4.2 rebind.

func TestDynamicBindingDeadTargetBoundedFailure(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	ws := k.NewHost("ws")
	regHost := k.NewHost("registry")
	victimHost := k.NewHost("victim")

	victim, err := victimHost.Spawn("svc", func(p *kernel.Process) {
		for {
			if _, _, err := p.Receive(); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The registration lives in a kernel table that survives the crash —
	// the stale-registration hazard of §4.2.
	if err := regHost.SetPid(kernel.ServiceTime, victim.PID(), kernel.ScopeBoth); err != nil {
		t.Fatal(err)
	}

	ps, err := Start(ws, "mann")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Proc().Destroy()
	if err := ps.DefineDynamic("svc", kernel.ServiceTime, core.CtxDefault); err != nil {
		t.Fatal(err)
	}
	cli, err := ws.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Destroy()

	victimHost.Crash()

	before := cli.Now()
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, 0, "[svc]x")
	reply, err := cli.Send(req, ps.PID())
	if err != nil {
		t.Fatal(err)
	}
	if rerr := core.ReplyToError(reply); !errors.Is(rerr, proto.ErrTimeout) {
		t.Fatalf("stale-registration use err = %v", rerr)
	}
	// The failure is bounded and charged: the reply's timestamp carries
	// the prefix server's retransmit-budget charge back to the client.
	if elapsed := cli.Now() - before; elapsed < k.Model().RetransmitTimeout {
		t.Fatalf("dead-target discovery must cost a retransmit budget, took %v", elapsed)
	}
	st := ps.Stats()
	if st.DeadTargets != 1 || st.Forwards != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDynamicBindingRebindCounted(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	ws := k.NewHost("ws")
	srvHost := k.NewHost("srv")

	echo := func(p *kernel.Process) {
		for {
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			reply := proto.NewReply(proto.ReplyOK)
			reply.F[0] = msg.F[0]
			if err := p.Reply(reply, from); err != nil {
				return
			}
		}
	}
	first, err := srvHost.Spawn("svc-1", echo)
	if err != nil {
		t.Fatal(err)
	}
	if err := srvHost.SetPid(kernel.ServiceTime, first.PID(), kernel.ScopeBoth); err != nil {
		t.Fatal(err)
	}

	ps, err := Start(ws, "mann")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Proc().Destroy()
	if err := ps.DefineDynamic("svc", kernel.ServiceTime, core.CtxDefault); err != nil {
		t.Fatal(err)
	}
	cli, err := ws.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Destroy()

	use := func() proto.Code {
		t.Helper()
		req := &proto.Message{Op: proto.OpQueryObject}
		proto.SetCSName(req, 0, "[svc]x")
		reply, err := cli.Send(req, ps.PID())
		if err != nil {
			t.Fatal(err)
		}
		return reply.Op
	}

	if op := use(); op != proto.ReplyOK {
		t.Fatalf("first use reply = %v", op)
	}
	if st := ps.Stats(); st.Rebinds != 0 || st.Forwards != 1 {
		t.Fatalf("after first use stats = %+v", st)
	}

	// The service is re-implemented by a new process (§4.2): the next use
	// resolves to a different pid, and the move is counted as a rebind.
	first.Destroy()
	second, err := srvHost.Spawn("svc-2", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Destroy()
	if err := srvHost.SetPid(kernel.ServiceTime, second.PID(), kernel.ScopeBoth); err != nil {
		t.Fatal(err)
	}
	if op := use(); op != proto.ReplyOK {
		t.Fatalf("post-rebind use reply = %v", op)
	}
	if st := ps.Stats(); st.Rebinds != 1 || st.Forwards != 2 || st.DeadTargets != 0 {
		t.Fatalf("after rebind stats = %+v", st)
	}
}
