// Per-prefix lease-length auto-tuning (PROTOCOL.md §15).
//
// The fixed lease length of PROTOCOL.md §13 trades hit rate against
// staleness globally; the tuner makes the trade per name, driven by the
// namestat redefinition estimator:
//
//   - Multiplicative increase: each positive grant of a name whose
//     observed redefinition rate is below redefLowHz doubles the name's
//     next lease, up to the configured cap. Stable names converge on
//     the cap in log₂(max/min) grants.
//
//   - Sharp decrease: an observed redefinition resets the name's lease
//     to the floor immediately. And because the redefinition-rate EWMA
//     does not decay between events, a name that churned recently keeps
//     a high estimate and is not re-grown until enough quiet grants
//     have diluted it.
//
// The staleness argument (trace invariant #7): a granted lease never
// exceeds the cap, so every stale window is still bounded by
// invalidation-commit + cap — exactly the §13 bound with max in place
// of the fixed length. The tuner changes how often the worst case is
// risked, not the worst case itself.
package prefix

import (
	"sync"
	"time"

	"repro/internal/namestat"
)

// redefLowHz is the redefinition-rate threshold below which a name's
// lease is allowed to grow: under one redefinition per virtual second.
const redefLowHz = 1.0

// WithLeaseAutoTune enables lease granting with per-name auto-tuned
// lengths in [min, max]. Negative leases and brand-new names start at
// min; see the package comment for the control rule. Implies WithLease:
// min is also the fixed fallback for paths the tuner does not touch.
func WithLeaseAutoTune(min, max time.Duration) Option {
	return func(s *Server) {
		if max < min {
			max = min
		}
		s.leaseLen = min
		s.tuner = &autoTuner{
			min: min,
			max: max,
			cur: make(map[string]time.Duration),
		}
	}
}

// autoTuner holds the per-name lease lengths. Mutations happen on the
// serving process — ordered by the engine's shared-commit order — so
// tuned lengths are deterministic for a deterministic schedule.
type autoTuner struct {
	mu  sync.Mutex
	min time.Duration
	max time.Duration
	cur map[string]time.Duration
}

// leaseFor returns the lease to grant for name now, and grows the
// name's next lease when its observed redefinition rate is low.
func (t *autoTuner) leaseFor(name string, rates *namestat.Rates) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.cur[name]
	if !ok {
		cur = t.min
	}
	if rates.RedefRateHz(name) < redefLowHz {
		next := 2 * cur
		if next > t.max {
			next = t.max
		}
		t.cur[name] = next
	}
	return cur
}

// observeRedefinition is the sharp decrease: the name's lease drops to
// the floor the moment a redefinition commits.
func (t *autoTuner) observeRedefinition(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cur[name] = t.min
	t.mu.Unlock()
}

// TunedLease returns the lease length the next positive grant of name
// would use (the configured fixed length when auto-tuning is off).
func (s *Server) TunedLease(name string) time.Duration {
	if s.tuner == nil {
		return s.leaseLen
	}
	s.tuner.mu.Lock()
	defer s.tuner.mu.Unlock()
	if cur, ok := s.tuner.cur[name]; ok {
		return cur
	}
	return s.tuner.min
}

// AutoTuneBounds returns the tuner's [min, max] (zeros when off).
func (s *Server) AutoTuneBounds() (min, max time.Duration) {
	if s.tuner == nil {
		return 0, 0
	}
	return s.tuner.min, s.tuner.max
}
