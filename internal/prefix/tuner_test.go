package prefix

import (
	"testing"
	"time"

	"repro/internal/namestat"
)

// TestAutoTunerGrowth: quiet names double per grant from min to max and
// stay capped there.
func TestAutoTunerGrowth(t *testing.T) {
	s := &Server{}
	WithLeaseAutoTune(20*time.Millisecond, 320*time.Millisecond)(s)
	rates := namestat.NewRates(0)

	want := []time.Duration{20, 40, 80, 160, 320, 320, 320}
	for i, w := range want {
		got := s.tuner.leaseFor("[a]", rates)
		if got != w*time.Millisecond {
			t.Fatalf("grant %d: lease = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := s.TunedLease("[a]"); got != 320*time.Millisecond {
		t.Fatalf("TunedLease after growth = %v, want 320ms", got)
	}
	// A name never granted sits at the floor.
	if got := s.TunedLease("[b]"); got != 20*time.Millisecond {
		t.Fatalf("TunedLease of fresh name = %v, want 20ms", got)
	}
}

// TestAutoTunerSharpDecrease: a redefinition resets the name to the
// floor, and the non-decaying EWMA keeps it there while churn is recent.
func TestAutoTunerSharpDecrease(t *testing.T) {
	s := &Server{}
	WithLeaseAutoTune(20*time.Millisecond, 320*time.Millisecond)(s)
	rates := namestat.NewRates(0)

	for i := 0; i < 5; i++ {
		s.tuner.leaseFor("[a]", rates)
	}
	if got := s.TunedLease("[a]"); got != 320*time.Millisecond {
		t.Fatalf("pre-churn lease = %v, want 320ms", got)
	}

	// Two redefinitions 10ms apart: instantaneous rate 100 Hz >> 1 Hz.
	rates.ObserveRedefinition("[a]", 500*time.Millisecond)
	s.tuner.observeRedefinition("[a]")
	rates.ObserveRedefinition("[a]", 510*time.Millisecond)
	s.tuner.observeRedefinition("[a]")

	if got := s.TunedLease("[a]"); got != 20*time.Millisecond {
		t.Fatalf("post-churn lease = %v, want floor 20ms", got)
	}
	// While the churn estimate is hot the lease is granted at the floor
	// and not re-grown.
	for i := 0; i < 3; i++ {
		if got := s.tuner.leaseFor("[a]", rates); got != 20*time.Millisecond {
			t.Fatalf("hot grant %d = %v, want 20ms", i, got)
		}
	}
}

// TestAutoTunerBoundsAndFallback: bounds are exposed, max is clamped to
// min, and a tuner-less server reports its fixed length.
func TestAutoTunerBoundsAndFallback(t *testing.T) {
	s := &Server{}
	WithLeaseAutoTune(80*time.Millisecond, 20*time.Millisecond)(s)
	min, max := s.AutoTuneBounds()
	if min != 80*time.Millisecond || max != 80*time.Millisecond {
		t.Fatalf("bounds = [%v, %v], want clamped [80ms, 80ms]", min, max)
	}

	fixed := &Server{}
	WithLease(50 * time.Millisecond)(fixed)
	if got := fixed.TunedLease("[x]"); got != 50*time.Millisecond {
		t.Fatalf("fixed TunedLease = %v, want 50ms", got)
	}
	if a, b := fixed.AutoTuneBounds(); a != 0 || b != 0 {
		t.Fatalf("fixed AutoTuneBounds = [%v, %v], want zeros", a, b)
	}
	if s.tuner.leaseFor("[a]", nil) != 80*time.Millisecond {
		t.Fatalf("nil rates should still grant the current lease")
	}
}
