package nameserver

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *Client, *fileserver.FileServer) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	nsHost := k.NewHost("ns")
	ns, err := Start(nsHost)
	if err != nil {
		t.Fatal(err)
	}
	fsHost := k.NewHost("fs")
	fs, err := fileserver.Start(fsHost, "fs")
	if err != nil {
		t.Fatal(err)
	}
	wsHost := k.NewHost("ws")
	proc, err := wsHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)
	return ns, NewClient(proc, ns.PID()), fs
}

// registerFile creates a file on fs and registers it, returning its uid.
func registerFile(t *testing.T, nc *Client, fs *fileserver.FileServer, path string) uint32 {
	t.Helper()
	if err := fs.WriteFile(path, "o", []byte("data of "+path)); err != nil {
		t.Fatal(err)
	}
	d, err := fs.Describe(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Register("fs:"+path, fs.PID(), d.ObjectID); err != nil {
		t.Fatal(err)
	}
	return d.ObjectID
}

func TestRegisterLookupUnregister(t *testing.T) {
	ns, nc, fs := startRig(t)
	uid := registerFile(t, nc, fs, "/a/f")
	b, err := nc.Lookup("fs:/a/f")
	if err != nil || b.UID != uid || b.Server != fs.PID() {
		t.Fatalf("lookup = %+v, %v", b, err)
	}
	if ns.Size() != 1 {
		t.Fatalf("size = %d", ns.Size())
	}
	if err := nc.Unregister("fs:/a/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Lookup("fs:/a/f"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("lookup after unregister err = %v", err)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	_, nc, fs := startRig(t)
	registerFile(t, nc, fs, "/a/f")
	if err := nc.Register("fs:/a/f", fs.PID(), 999); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterEmptyName(t *testing.T) {
	_, nc, fs := startRig(t)
	if err := nc.Register("", fs.PID(), 1); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenThroughNameServer(t *testing.T) {
	_, nc, fs := startRig(t)
	registerFile(t, nc, fs, "/a/f")
	info, server, err := nc.Open("fs:/a/f", proto.ModeRead)
	if err != nil || server != fs.PID() {
		t.Fatalf("open = %+v, %v, %v", info, server, err)
	}
	if info.SizeBytes != uint32(len("data of /a/f")) {
		t.Fatalf("size = %d", info.SizeBytes)
	}
}

func TestOpenUnknownName(t *testing.T) {
	_, nc, _ := startRig(t)
	if _, _, err := nc.Open("ghost", proto.ModeRead); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveCleanly(t *testing.T) {
	ns, nc, fs := startRig(t)
	registerFile(t, nc, fs, "/a/f")
	if err := nc.Remove("fs:/a/f", false); err != nil {
		t.Fatal(err)
	}
	if ns.Size() != 0 {
		t.Fatal("name not unregistered")
	}
	dangling, err := nc.Verify()
	if err != nil || len(dangling) != 0 {
		t.Fatalf("dangling = %v, %v", dangling, err)
	}
}

func TestRemoveWithCrashLeavesDanglingName(t *testing.T) {
	// The §2.2 consistency failure: the object dies, the name survives.
	ns, nc, fs := startRig(t)
	registerFile(t, nc, fs, "/a/f")
	if err := nc.Remove("fs:/a/f", true); err != nil {
		t.Fatal(err)
	}
	if ns.Size() != 1 {
		t.Fatal("name should still be registered after the crash window")
	}
	dangling, err := nc.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(dangling) != 1 || dangling[0] != "fs:/a/f" {
		t.Fatalf("dangling = %v", dangling)
	}
}

func TestListSorted(t *testing.T) {
	_, nc, fs := startRig(t)
	for _, p := range []string{"/z", "/a", "/m"} {
		registerFile(t, nc, fs, p)
	}
	entries, err := nc.List()
	if err != nil || len(entries) != 3 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	want := []string{"fs:/a", "fs:/m", "fs:/z"}
	for i := range want {
		if entries[i].Name != want[i] {
			t.Fatalf("entries[%d] = %q", i, entries[i].Name)
		}
	}
}

func TestLookupAfterServerCrashStillAnswers(t *testing.T) {
	// The name server happily resolves names whose objects are gone — the
	// inconsistency is only discovered at use time.
	_, nc, fs := startRig(t)
	registerFile(t, nc, fs, "/a/f")
	fs.Proc().Host().Crash()
	if _, err := nc.Lookup("fs:/a/f"); err != nil {
		t.Fatalf("lookup should still answer: %v", err)
	}
	if _, _, err := nc.Open("fs:/a/f", proto.ModeRead); err == nil {
		t.Fatal("open must fail with the file server down")
	}
}

func TestNameServerDownFailsEverything(t *testing.T) {
	ns, nc, fs := startRig(t)
	registerFile(t, nc, fs, "/a/f")
	ns.Proc().Host().Crash()
	if _, _, err := nc.Open("fs:/a/f", proto.ModeRead); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestIllegalOp(t *testing.T) {
	ns, nc, _ := startRig(t)
	_ = nc
	k := ns.Proc().Kernel()
	h := k.HostByID(ns.PID().Host())
	p, err := h.NewProcess("poker")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Destroy()
	reply, err := p.Send(&proto.Message{Op: proto.OpEcho}, ns.PID())
	if err != nil || reply.Op != proto.ReplyIllegalRequest {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}

func TestManyRegistrations(t *testing.T) {
	ns, nc, fs := startRig(t)
	for i := 0; i < 200; i++ {
		registerFile(t, nc, fs, fmt.Sprintf("/dir/f%03d", i))
	}
	if ns.Size() != 200 {
		t.Fatalf("size = %d", ns.Size())
	}
	entries, err := nc.List()
	if err != nil || len(entries) != 200 {
		t.Fatalf("list = %d, %v", len(entries), err)
	}
}
