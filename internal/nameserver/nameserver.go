// Package nameserver implements the *baseline* the paper argues against
// (§2.1-2.2): a logically centralized name server that maps full
// character-string names to low-level globally-unique identifiers plus
// the pid of the server holding the object. It exists so the experiments
// can compare the centralized and distributed models on efficiency,
// consistency and reliability.
//
// It is deliberately NOT a CSNH server: names are opaque keys in one flat
// table, objects are reached by UID, and keeping the table consistent
// with the objects is the client's problem — exactly the failure mode §2.2
// describes.
package nameserver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/kernel"
	"repro/internal/proto"
)

// Binding is one name-server table entry: a global name bound to a
// (server-pid, low-level-uid) pair.
type Binding struct {
	Server kernel.PID
	UID    uint32
}

// Server is the centralized name server.
type Server struct {
	proc *kernel.Process

	mu    sync.Mutex
	table map[string]Binding
}

// Start spawns a name server on host and registers it as the name
// service.
func Start(host *kernel.Host) (*Server, error) {
	proc, err := host.NewProcess("name-server")
	if err != nil {
		return nil, err
	}
	s := &Server{proc: proc, table: make(map[string]Binding)}
	go s.run()
	if err := proc.SetPid(kernel.ServiceNameServer, proc.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Proc returns the server process.
func (s *Server) Proc() *kernel.Process { return s.proc }

// Size returns the number of registered names.
func (s *Server) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// Entries returns a sorted snapshot of the table (experiment support).
func (s *Server) Entries() map[string]Binding {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Binding, len(s.table))
	for k, v := range s.table {
		out[k] = v
	}
	return out
}

func (s *Server) run() {
	model := s.proc.Kernel().Model()
	for {
		msg, from, err := s.proc.Receive()
		if err != nil {
			return
		}
		s.proc.ChargeCompute(model.ServerDispatchCost + model.ContextLookupCost)
		_ = s.proc.Reply(s.serve(msg), from)
	}
}

func (s *Server) serve(msg *proto.Message) *proto.Message {
	switch msg.Op {
	case proto.OpNSRegister:
		name := string(msg.Segment)
		if name == "" {
			return proto.NewReply(proto.ReplyBadArgs)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, dup := s.table[name]; dup {
			return proto.NewReply(proto.ReplyDuplicateName)
		}
		s.table[name] = Binding{Server: kernel.PID(msg.F[4]), UID: msg.F[3]}
		return proto.NewReply(proto.ReplyOK)

	case proto.OpNSLookup:
		s.mu.Lock()
		b, ok := s.table[string(msg.Segment)]
		s.mu.Unlock()
		if !ok {
			return proto.NewReply(proto.ReplyNotFound)
		}
		reply := proto.NewReply(proto.ReplyOK)
		reply.F[3] = b.UID
		reply.F[4] = uint32(b.Server)
		return reply

	case proto.OpNSUnregister:
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.table[string(msg.Segment)]; !ok {
			return proto.NewReply(proto.ReplyNotFound)
		}
		delete(s.table, string(msg.Segment))
		return proto.NewReply(proto.ReplyOK)

	case proto.OpNSList:
		s.mu.Lock()
		names := make([]string, 0, len(s.table))
		for n := range s.table {
			names = append(names, n)
		}
		sort.Strings(names)
		records := make([]proto.Descriptor, 0, len(names))
		for _, n := range names {
			b := s.table[n]
			records = append(records, proto.Descriptor{
				Tag:          proto.TagServiceBinding,
				Name:         n,
				ObjectID:     b.UID,
				TypeSpecific: [2]uint32{uint32(b.Server), 0},
			})
		}
		s.mu.Unlock()
		reply := proto.NewReply(proto.ReplyOK)
		reply.Segment = proto.EncodeDescriptors(records)
		return reply

	default:
		return proto.NewReply(proto.ReplyIllegalRequest)
	}
}

// Client is the baseline client library: every reference to a named
// object goes through the name server first (one extra server
// interaction per reference, §2.2), then to the owning server by UID.
type Client struct {
	proc *kernel.Process
	ns   kernel.PID
}

// NewClient builds a baseline client talking to the given name server.
func NewClient(proc *kernel.Process, ns kernel.PID) *Client {
	return &Client{proc: proc, ns: ns}
}

func (c *Client) transact(dst kernel.PID, req *proto.Message) (*proto.Message, error) {
	c.proc.ChargeCompute(c.proc.Kernel().Model().ClientStubCost)
	reply, err := c.proc.Send(req, dst)
	if err != nil {
		return nil, err
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		return nil, err
	}
	return reply, nil
}

// Register binds a global name to (server, uid).
func (c *Client) Register(name string, server kernel.PID, uid uint32) error {
	req := &proto.Message{Op: proto.OpNSRegister, Segment: []byte(name)}
	req.F[3] = uid
	req.F[4] = uint32(server)
	_, err := c.transact(c.ns, req)
	return err
}

// Lookup resolves a global name.
func (c *Client) Lookup(name string) (Binding, error) {
	req := &proto.Message{Op: proto.OpNSLookup, Segment: []byte(name)}
	reply, err := c.transact(c.ns, req)
	if err != nil {
		return Binding{}, fmt.Errorf("%q: %w", name, err)
	}
	return Binding{UID: reply.F[3], Server: kernel.PID(reply.F[4])}, nil
}

// Unregister removes a global name.
func (c *Client) Unregister(name string) error {
	req := &proto.Message{Op: proto.OpNSUnregister, Segment: []byte(name)}
	_, err := c.transact(c.ns, req)
	return err
}

// List returns the name server's whole table.
func (c *Client) List() ([]proto.Descriptor, error) {
	reply, err := c.transact(c.ns, &proto.Message{Op: proto.OpNSList})
	if err != nil {
		return nil, err
	}
	return proto.DecodeDescriptors(reply.Segment)
}

// Open opens a named object the centralized way: name-server lookup, then
// open-by-UID at the owning server.
func (c *Client) Open(name string, mode uint32) (proto.InstanceInfo, kernel.PID, error) {
	b, err := c.Lookup(name)
	if err != nil {
		return proto.InstanceInfo{}, kernel.NilPID, err
	}
	req := &proto.Message{Op: proto.OpOpenByUID}
	proto.SetOpenMode(req, mode)
	req.F[3] = b.UID
	reply, err := c.transact(b.Server, req)
	if err != nil {
		return proto.InstanceInfo{}, kernel.NilPID, fmt.Errorf("%q: %w", name, err)
	}
	return proto.GetInstanceInfo(reply), b.Server, nil
}

// Remove deletes a named object the centralized way: look the name up,
// delete the object at its server, then unregister the name. The
// non-atomic two-server window is inherent to the model (§2.2);
// crashBetween injects the §2.2 failure — the client dies after the
// object is destroyed but before the name server learns.
func (c *Client) Remove(name string, crashBetween bool) error {
	b, err := c.Lookup(name)
	if err != nil {
		return err
	}
	req := &proto.Message{Op: proto.OpRemoveByUID}
	req.F[3] = b.UID
	if _, err := c.transact(b.Server, req); err != nil {
		return fmt.Errorf("%q: %w", name, err)
	}
	if crashBetween {
		// The deleting client crashes here: the object is gone but the
		// name server still advertises its name.
		return nil
	}
	return c.Unregister(name)
}

// Verify checks every table entry against the owning server, returning
// the names whose objects no longer exist (dangling) — the inconsistency
// the distributed model avoids by construction.
func (c *Client) Verify() (dangling []string, err error) {
	entries, err := c.List()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		req := &proto.Message{Op: proto.OpOpenByUID}
		proto.SetOpenMode(req, proto.ModeRead)
		req.F[3] = e.ObjectID
		server := kernel.PID(e.TypeSpecific[0])
		reply, err := c.transact(server, req)
		if err != nil {
			dangling = append(dangling, e.Name)
			continue
		}
		// Close the probe instance.
		rel := &proto.Message{Op: proto.OpReleaseInstance}
		rel.F[0] = reply.F[0]
		if _, err := c.transact(server, rel); err != nil {
			return dangling, err
		}
	}
	return dangling, nil
}
