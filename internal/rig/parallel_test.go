package rig

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
)

// buildShards boots a fresh sharded topology and optionally wires a
// per-lane chaos schedule into the clients' ops: lanes 1 and 3 crash
// their own shard host mid-workload, pumped from that lane's clients
// only, so the fault stays lane-local and the parallel driver's
// equivalence guarantee holds under it.
func buildShards(t *testing.T, team int, withChaos bool) *ShardedWorkload {
	t.Helper()
	sw, err := NewShardedWorkload(ShardConfig{
		Shards:          4,
		ClientsPerShard: 4,
		Requests:        12,
		Team:            team,
		Seed:            7,
	})
	if err != nil {
		t.Fatalf("build sharded workload: %v", err)
	}
	if !withChaos {
		return sw
	}
	engines := make(map[int]*chaos.Engine)
	for _, lane := range []int{1, 3} {
		engines[lane] = chaos.New(sw.Kernel, []chaos.Event{
			{At: 10 * time.Millisecond, Action: chaos.Crash, Host: sw.Hosts[lane].Name()},
		})
	}
	for _, c := range sw.Clients {
		eng := engines[c.Lane]
		if eng == nil {
			continue
		}
		op := c.Op
		c.Op = func(s *client.Session, iter int) error {
			eng.AdvanceTo(s.Proc().Now())
			return op(s, iter)
		}
	}
	return sw
}

// TestParallelDriverEquivalence asserts the tentpole guarantee: the
// parallel driver's WorkloadResult — per-client stats, makespan,
// throughput — is deeply equal to the sequential driver's, across team
// sizes and worker-pool sizes.
func TestParallelDriverEquivalence(t *testing.T) {
	for _, team := range []int{1, 2, 4} {
		seq := RunWorkload(buildShards(t, team, false).Clients)
		if seq.Requests != 4*4*12 {
			t.Fatalf("team %d: sequential driver issued %d requests, want %d", team, seq.Requests, 4*4*12)
		}
		for _, c := range seq.Clients {
			if c.Errors != 0 || c.Completed != 12 {
				t.Fatalf("team %d: sequential client stats %+v, want 12 completions", team, c)
			}
		}
		for _, workers := range []int{1, 2, 4, 0} {
			par := RunWorkloadParallel(buildShards(t, team, false).Clients, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("team %d workers %d: parallel result differs\nseq: %+v\npar: %+v",
					team, workers, seq, par)
			}
			if seq.Throughput() != par.Throughput() {
				t.Fatalf("team %d workers %d: throughput differs: %v vs %v",
					team, workers, seq.Throughput(), par.Throughput())
			}
		}
	}
}

// TestParallelDriverEquivalenceUnderChaos repeats the equivalence check
// with lane-local host crashes firing mid-workload: crashed lanes'
// clients die with their shard and their remaining iterations fail, and
// the parallel driver must report the exact same outcome.
func TestParallelDriverEquivalenceUnderChaos(t *testing.T) {
	for _, team := range []int{1, 2, 4} {
		seq := RunWorkload(buildShards(t, team, true).Clients)
		errs := 0
		for _, c := range seq.Clients {
			errs += c.Errors
		}
		if errs == 0 {
			t.Fatalf("team %d: chaos schedule never fired (no errors recorded)", team)
		}
		for _, workers := range []int{2, 4} {
			par := RunWorkloadParallel(buildShards(t, team, true).Clients, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("team %d workers %d: parallel result differs under chaos\nseq: %+v\npar: %+v",
					team, workers, seq, par)
			}
		}
	}
}
