package rig

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
)

// TestPacketLossMaskedByRetransmission: the kernel IPC masks moderate
// packet loss by retransmission (§3.1's IPC is "entirely adequate as a
// transport level"); operations succeed, just slower.
func TestPacketLossMaskedByRetransmission(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session

	base := s.Proc().Now()
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	cleanTime := s.Proc().Now() - base

	r.Net.SetDropRate(0.05)
	defer r.Net.SetDropRate(0)
	ok, failed := 0, 0
	start := s.Proc().Now()
	for i := 0; i < 50; i++ {
		if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
			failed++
			continue
		}
		ok++
	}
	lossyAvg := (s.Proc().Now() - start) / 50
	if ok < 45 {
		t.Fatalf("only %d/50 reads survived 5%% loss", ok)
	}
	if lossyAvg <= cleanTime {
		t.Fatalf("loss should cost retransmission latency: %v vs clean %v", lossyAvg, cleanTime)
	}
}

func TestPartitionDuringForwardChain(t *testing.T) {
	// The client can reach FS1 but FS1 cannot reach FS2: a name crossing
	// the link fails cleanly; direct FS1 names keep working.
	r := boot(t)
	s := r.WS[0].Session
	// Put FS2 in its own partition.
	r.Net.Partition(r.FS2Host.ID(), 1)
	defer r.Net.Heal()

	if _, err := s.ReadFile("[storage]/shared/archive/2026/paper.mss"); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("cross-partition traversal err = %v", err)
	}
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatalf("unrelated names must keep working: %v", err)
	}
	r.Net.Heal()
	if _, err := s.ReadFile("[storage]/shared/archive/2026/paper.mss"); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestCrashDuringOpenInstanceInvalidated(t *testing.T) {
	// Instances die with the server; subsequent instance operations fail
	// with nonexistent process, and a fresh open on the re-created server
	// works.
	r := boot(t)
	s := r.WS[0].Session
	f, err := s.Open("[home]welcome.txt", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	r.FS1Host.Crash()
	if _, err := f.ReadBlock(0); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("read on dead server err = %v", err)
	}
	r.FS1Host.Restart()
	if _, err := restartFS1(r); err != nil {
		t.Fatal(err)
	}
	// The home prefix is static and now dangles; the dynamic [bin] works.
	if _, err := s.ReadFile("[bin]hello"); err != nil {
		t.Fatalf("dynamic binding after restart: %v", err)
	}
}

func TestPrefixServerCrashIsolatedPerUser(t *testing.T) {
	// One user's prefix server dies: only that user's bracketed names
	// break; the other user and current-context names are unaffected —
	// no central failure point (§2.2).
	r := boot(t)
	victim, other := r.WS[0], r.WS[1]

	victim.Prefix.Proc().Destroy()
	if _, err := victim.Session.ReadFile("[home]welcome.txt"); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("victim's prefixed name err = %v", err)
	}
	// Current-context access does not involve the prefix server at all.
	if _, err := victim.Session.ReadFile("welcome.txt"); err != nil {
		t.Fatalf("victim's current-context name: %v", err)
	}
	if _, err := other.Session.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatalf("other user's names: %v", err)
	}
}

func TestConcurrentSessionsMixedWorkload(t *testing.T) {
	// Eight concurrent sessions per user hammer the servers with mixed
	// operations; everything stays consistent and race-free.
	r := boot(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for w, ws := range r.WS {
		for i := 0; i < 4; i++ {
			sess, err := r.NewSession(ws)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(w, i int) {
				defer wg.Done()
				base := fmt.Sprintf("[home]stress-%d-%d", w, i)
				for j := 0; j < 20; j++ {
					name := fmt.Sprintf("%s-%d.txt", base, j)
					payload := fmt.Sprintf("payload %d %d %d", w, i, j)
					if err := sess.WriteFile(name, []byte(payload)); err != nil {
						errCh <- err
						return
					}
					got, err := sess.ReadFile(name)
					if err != nil || string(got) != payload {
						errCh <- fmt.Errorf("read back %q: %q, %v", name, got, err)
						return
					}
					if j%3 == 0 {
						if err := sess.Remove(name); err != nil {
							errCh <- err
							return
						}
					}
					if _, err := sess.List("[home]"); err != nil {
						errCh <- err
						return
					}
				}
			}(w, i)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every surviving file is intact.
	records, err := r.WS[0].Session.List("[home]")
	if err != nil {
		t.Fatal(err)
	}
	survivors := 0
	for _, d := range records {
		if strings.HasPrefix(d.Name, "stress-") {
			survivors++
		}
	}
	// 4 sessions × 20 files × (2/3 kept, j%3!=0 → 13 of 20).
	if survivors != 4*13 {
		t.Fatalf("survivors = %d, want %d", survivors, 4*13)
	}
}

func TestConcurrentTerminalCreation(t *testing.T) {
	// Transient-object id generation stays unique under concurrency.
	r := boot(t)
	ws := r.WS[0]
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		sess, err := r.NewSession(ws)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := sess.Open("[tty]new", proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
			if err != nil {
				errCh <- err
				return
			}
			if _, err := f.Write([]byte("x")); err != nil {
				errCh <- err
				return
			}
			errCh <- f.Close()
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if ws.Term.Count() != 8 {
		t.Fatalf("terminals = %d", ws.Term.Count())
	}
	records, err := ws.Session.List("[tty]")
	if err != nil || len(records) != 8 {
		t.Fatalf("listing = %d records, %v", len(records), err)
	}
	seen := map[string]bool{}
	for _, d := range records {
		if seen[d.Name] {
			t.Fatalf("duplicate terminal name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestForwardToDeadServerBoundedTime(t *testing.T) {
	// A CSname request forwarded along the chain prefix -> FS1 -> FS2
	// when FS2 is dead must fail in bounded virtual time — no hang, and
	// the client is charged the retransmit budget the discovery costs
	// (satellite regression for the §5.4 forwarding path).
	r := boot(t)
	s := r.WS[0].Session
	r.FS2Host.Crash()

	start := s.Proc().Now()
	done := make(chan error, 1)
	go func() {
		_, err := s.ReadFile("[storage]/shared/archive/2026/paper.mss")
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("forward to dead server hung")
	}
	if !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("read through dead forward target err = %v", err)
	}
	elapsed := s.Proc().Now() - start
	if elapsed < r.Model.RetransmitTimeout {
		t.Fatalf("failure must cost at least one retransmit timeout, got %v", elapsed)
	}
	if elapsed > 10*r.Model.RetransmitTimeout {
		t.Fatalf("failure took %v, want bounded by the retransmit budget", elapsed)
	}
}

func TestCrashWhileRequestInFlightNoHang(t *testing.T) {
	// A server crash landing while transactions are mid-flight fails the
	// pending senders instead of leaving them blocked forever.
	r := boot(t)
	s := r.WS[0].Session
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := s.ReadFile("[storage2]/archive/2026/paper.mss"); err != nil {
				return // the crash landed; erroring out is the point
			}
		}
	}()
	time.Sleep(time.Millisecond) // real time: let reads get in flight
	r.FS2Host.Crash()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("request in flight at crash time hung")
	}
}

func TestTotalLossEventuallyFails(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	r.Net.SetDropRate(1.0)
	defer r.Net.SetDropRate(0)
	if _, err := s.ReadFile("[home]welcome.txt"); err == nil {
		t.Fatal("total loss should exhaust retransmissions")
	}
}
