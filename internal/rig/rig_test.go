package rig

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/timeserver"
)

func boot(t *testing.T) *Rig {
	t.Helper()
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBootTopology(t *testing.T) {
	r := boot(t)
	if len(r.WS) != 2 {
		t.Fatalf("workstations = %d", len(r.WS))
	}
	for _, ws := range r.WS {
		if ws.Session == nil || ws.Prefix == nil || ws.Term == nil || ws.Exec == nil {
			t.Fatalf("workstation %s incomplete", ws.User)
		}
	}
	if r.NS != nil {
		t.Fatal("baseline name server must be off by default")
	}
}

func TestOpenThroughPrefix(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	data, err := s.ReadFile("[storage]/users/mann/welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Welcome to the V-System, mann.") {
		t.Fatalf("read %q", data)
	}
}

func TestOpenInCurrentContext(t *testing.T) {
	// The current context starts at the user's home directory, so plain
	// relative names work without the prefix server (§6).
	r := boot(t)
	s := r.WS[0].Session
	data, err := s.ReadFile("welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "mann") {
		t.Fatalf("read %q", data)
	}
}

func TestPerUserInterpretation(t *testing.T) {
	// The same relative name resolves per user: each workstation's
	// session starts in its own home context.
	r := boot(t)
	a, err := r.WS[0].Session.ReadFile("welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.WS[1].Session.ReadFile("welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Fatal("different users must see different files under the same name")
	}
}

func TestHomePrefixPerUser(t *testing.T) {
	r := boot(t)
	a, err := r.WS[0].Session.ReadFile("[home]welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.WS[1].Session.ReadFile("[home]welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(a), "cheriton") || !strings.Contains(string(b), "cheriton") {
		t.Fatalf("per-user [home] wrong: %q / %q", a, b)
	}
}

func TestChangeContext(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if err := s.ChangeContext("[storage]/users/cheriton"); err != nil {
		t.Fatal(err)
	}
	data, err := s.ReadFile("welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "cheriton") {
		t.Fatalf("after chdir read %q", data)
	}
	// Relative navigation with dot-dot.
	if err := s.ChangeContext("../mann/notes"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("todo.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCreateReadRemove(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if err := s.WriteFile("[home]draft.mss", []byte("naming is hard\n")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("[home]draft.mss")
	if err != nil || string(got) != "naming is hard\n" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := s.Remove("[home]draft.mss"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[home]draft.mss"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("after remove err = %v", err)
	}
}

func TestRename(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if err := s.WriteFile("[home]a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("[home]a.txt", "[home]b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[home]b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[home]a.txt"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("old name still bound: %v", err)
	}
	// Rename into a subdirectory (different context, same server).
	if err := s.Rename("[home]b.txt", "[home]notes/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[home]notes/b.txt"); err != nil {
		t.Fatal(err)
	}
	// Cross-prefix rename is rejected.
	if err := s.Rename("[home]notes/b.txt", "[storage2]b.txt"); !errors.Is(err, proto.ErrIllegalRequest) {
		t.Fatalf("cross-prefix rename err = %v", err)
	}
}

func TestQueryAndModify(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	d, err := s.Query("[home]welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if d.Tag != proto.TagFile || d.Owner != "mann" || d.Size == 0 {
		t.Fatalf("descriptor = %+v", d)
	}
	d.Perms = proto.PermRead // drop write permission
	if err := s.Modify("[home]welcome.txt", d); err != nil {
		t.Fatal(err)
	}
	d2, err := s.Query("[home]welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Perms != proto.PermRead {
		t.Fatalf("perms after modify = %#x", d2.Perms)
	}
}

func TestQueryDirectoryDescriptor(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	d, err := s.Query("[home]notes")
	if err != nil {
		t.Fatal(err)
	}
	if d.Tag != proto.TagDirectory {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestListContextDirectory(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	records, err := s.List("[home]")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]proto.DescriptorTag{}
	for _, d := range records {
		names[d.Name] = d.Tag
	}
	if names["welcome.txt"] != proto.TagFile || names["notes"] != proto.TagDirectory {
		t.Fatalf("listing = %v", names)
	}
}

func TestModifyThroughContextDirectory(t *testing.T) {
	// §5.6: writing a description record back into a context directory is
	// the modification operation.
	r := boot(t)
	s := r.WS[0].Session
	f, err := s.OpenDirectory("[home]")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil {
		t.Fatal(err)
	}
	var rec proto.Descriptor
	for _, d := range records {
		if d.Name == "welcome.txt" {
			rec = d
		}
	}
	rec.Perms = proto.PermRead
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec.AppendEncoded(nil)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := s.Query("[home]welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if d.Perms != proto.PermRead {
		t.Fatalf("perms = %#x", d.Perms)
	}
}

func TestCrossServerLink(t *testing.T) {
	// Figure 4: a name that starts on FS1 and crosses into FS2's tree
	// through a directory entry pointing at a remote context.
	r := boot(t)
	s := r.WS[0].Session
	data, err := s.ReadFile("[storage]/shared/archive/2026/paper.mss")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Uniform Access") {
		t.Fatalf("read %q", data)
	}
	// The same file is reachable directly on FS2.
	direct, err := s.ReadFile("[storage2]/archive/2026/paper.mss")
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(data) {
		t.Fatal("link traversal and direct access disagree")
	}
}

func TestCrossServerLinkListing(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	records, err := s.List("[storage]/shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Tag != proto.TagLink || records[0].Name != "archive" {
		t.Fatalf("listing = %+v", records)
	}
}

func TestMapContextAcrossServers(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	pair, err := s.MapContext("[storage]/shared/archive/2026")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Server != r.FS2.PID() {
		t.Fatalf("context resolved to %v, want FS2 %v", pair.Server, r.FS2.PID())
	}
}

func TestAddAndDeletePrefix(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	pair, err := s.MapContext("[storage]/users/cheriton")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddName("dave", pair); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[dave]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddName("dave", pair); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("duplicate prefix err = %v", err)
	}
	if err := s.DeleteName("dave"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[dave]welcome.txt"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("deleted prefix err = %v", err)
	}
}

func TestPrefixDirectoryListing(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	records, err := s.ListPrefixes()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]proto.Descriptor{}
	for _, d := range records {
		byName[d.Name] = d
	}
	for _, want := range []string{"storage", "storage2", "home", "bin", "tty", "print", "tcp", "mail", "exec"} {
		d, ok := byName[want]
		if !ok {
			t.Fatalf("prefix %q missing from listing %v", want, byName)
		}
		if d.Tag != proto.TagContextPrefix {
			t.Fatalf("prefix %q tag = %v", want, d.Tag)
		}
	}
	if byName["bin"].ObjectID != 1 {
		t.Fatal("bin should be a dynamic binding")
	}
	if byName["storage"].ObjectID != 0 {
		t.Fatal("storage should be a static binding")
	}
}

func TestUnknownPrefix(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if _, err := s.ReadFile("[nosuch]x"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedPrefix(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if _, err := s.ReadFile("[unterminated"); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestDynamicBindingRebindsAfterCrash(t *testing.T) {
	// A5/§4.2: the storage service crashes and is re-created with a
	// different pid. The dynamic [bin] binding re-resolves via GetPid and
	// keeps working; a static binding to the old pid dangles.
	r := boot(t)
	s := r.WS[0].Session
	if _, err := s.ReadFile("[bin]hello"); err != nil {
		t.Fatal(err)
	}
	oldPid := r.FS1.PID()
	if err := s.AddName("oldfs", core.ContextPair{Server: oldPid, Ctx: core.CtxDefault}); err != nil {
		t.Fatal(err)
	}

	r.FS1Host.Crash()
	r.FS1Host.Restart()
	fsNew, err := restartFS1(r)
	if err != nil {
		t.Fatal(err)
	}
	if fsNew.PID() == oldPid {
		t.Fatal("restarted server must get a new pid")
	}

	// Dynamic binding recovers.
	if _, err := s.ReadFile("[bin]hello"); err != nil {
		t.Fatalf("dynamic binding did not rebind: %v", err)
	}
	// Static binding to the dead pid dangles.
	if _, err := s.ReadFile("[oldfs]bin/hello"); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("static binding should dangle: %v", err)
	}
}

// restartFS1 re-creates the fs1 file server after a crash, reseeding the
// program directory, as the operations staff would restore a server.
func restartFS1(r *Rig) (*fileserver.FileServer, error) {
	fs, err := bootReplacementFS(r)
	if err != nil {
		return nil, err
	}
	r.FS1 = fs
	return fs, nil
}

func TestInverseMappingCurrentName(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	name, err := s.CurrentName()
	if err != nil {
		t.Fatal(err)
	}
	// Home is reachable as [storage]/users/mann; the prefix server names
	// the server root [storage] (first static match in sorted order may
	// be home itself if it matches exactly — both are legitimate inverse
	// mappings, §6).
	if !strings.Contains(name, "users/mann") && !strings.Contains(name, "[home]") {
		t.Fatalf("CurrentName = %q", name)
	}
	if err := s.ChangeContext("[storage]/users/mann/notes"); err != nil {
		t.Fatal(err)
	}
	name, err = s.CurrentName()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(name, "/notes") {
		t.Fatalf("CurrentName after chdir = %q", name)
	}
}

func TestInverseMappingManyToOne(t *testing.T) {
	// §6: the reverse mapping returns *a* name, not necessarily the one
	// used — and can dangle once the prefix is deleted.
	r := boot(t)
	s := r.WS[0].Session
	if err := s.ChangeContext("[storage2]/archive"); err != nil {
		t.Fatal(err)
	}
	name, err := s.CurrentName()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "[storage2]") {
		t.Fatalf("CurrentName = %q", name)
	}
	// Delete the prefix: the inverse mapping degrades to the
	// server-relative path.
	if err := s.DeleteName("storage2"); err != nil {
		t.Fatal(err)
	}
	name, err = s.CurrentName()
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(name, "[storage2]") {
		t.Fatalf("CurrentName still uses the deleted prefix: %q", name)
	}
	if !strings.HasSuffix(name, "/archive") {
		t.Fatalf("CurrentName = %q", name)
	}
}

func TestLoadProgram(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	buf := make([]byte, 64*1024)
	n, err := s.LoadProgram("[bin]editor", buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64*1024 {
		t.Fatalf("loaded %d bytes", n)
	}
	if !strings.HasPrefix(string(buf), "V-PROGRAM:editor") {
		t.Fatalf("image header = %q", buf[:20])
	}
}

func TestTerminalLifecycle(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	f, err := s.Open("[tty]new", proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello, workstation\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := s.List("[tty]")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Tag != proto.TagTerminal {
		t.Fatalf("terminal listing = %+v", records)
	}
	screen, err := r.WS[0].Term.Screen(records[0].Name)
	if err != nil || string(screen) != "hello, workstation\n" {
		t.Fatalf("screen = %q, %v", screen, err)
	}
	if err := s.Remove("[tty]" + records[0].Name); err != nil {
		t.Fatal(err)
	}
	if r.WS[0].Term.Count() != 0 {
		t.Fatal("terminal not destroyed")
	}
}

func TestPrintQueue(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	for _, jobName := range []string{"paper.ps", "slides.ps"} {
		f, err := s.Open("[print]"+jobName, proto.ModeWrite|proto.ModeCreate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("PS:" + jobName)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	records, err := s.List("[print]")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].Tag != proto.TagPrintJob {
		t.Fatalf("queue = %+v", records)
	}
	if records[0].TypeSpecific[0] != 1 || records[1].TypeSpecific[0] != 2 {
		t.Fatalf("queue positions = %v %v", records[0].TypeSpecific, records[1].TypeSpecific)
	}
	// Cancel the second job by removing its name.
	if err := s.Remove("[print]slides.ps"); err != nil {
		t.Fatal(err)
	}
	if r.Print.QueueLength() != 1 {
		t.Fatalf("queue length = %d", r.Print.QueueLength())
	}
	if name := r.Print.AdvanceQueue(); name != "paper.ps" {
		t.Fatalf("printed %q", name)
	}
	printed := r.Print.Printed()
	if len(printed) != 1 || string(printed[0]) != "PS:paper.ps" {
		t.Fatalf("printed = %q", printed)
	}
}

func TestTCPConnection(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	f, err := s.Open("[tcp]tcp/su-score.arpa:23", proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("login cheriton")); err != nil {
		t.Fatal(err)
	}
	// A connection is a stream: reads drain the inbox from the start.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "login cheriton" {
		t.Fatalf("echo read %q, %v", buf[:n], err)
	}
	records, err := s.List("[tcp]tcp")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Tag != proto.TagTCPConnection || records[0].Name != "su-score.arpa:23" {
		t.Fatalf("connections = %+v", records)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("[tcp]tcp/su-score.arpa:23"); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxes(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	// Deliver to the pre-existing foreign-syntax mailbox.
	f, err := s.Open("[mail]cheriton@su-score.ARPA", proto.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("paper accepted at ICDCS")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := r.Mail.MessageCount("cheriton@su-score.ARPA")
	if err != nil || n != 1 {
		t.Fatalf("messages = %d, %v", n, err)
	}
	// Read it back through the protocol.
	got, err := s.ReadFile("[mail]cheriton@su-score.ARPA")
	if err != nil || !strings.Contains(string(got), "ICDCS") {
		t.Fatalf("mailbox read %q, %v", got, err)
	}
	// Query returns a typed descriptor.
	d, err := s.Query("[mail]mann@v.stanford.edu")
	if err != nil || d.Tag != proto.TagMailbox {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
}

func TestExecProgram(t *testing.T) {
	r := boot(t)
	ws := r.WS[0]
	s := ws.Session

	ran := make(chan struct{})
	ws.Exec.RegisterBody("hello", func(p *kernel.Process) {
		close(ran)
		<-p.Done()
	})

	req := &proto.Message{Op: proto.OpExecProgram}
	proto.SetCSName(req, uint32(core.CtxDefault), "hello")
	reply, err := s.Proc().Send(req, ws.Exec.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("program body never ran")
	}

	records, err := s.List("[exec]")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Tag != proto.TagProgram {
		t.Fatalf("programs = %+v", records)
	}
	progName := records[0].Name
	if !strings.HasPrefix(progName, "hello.") {
		t.Fatalf("program name = %q", progName)
	}
	// Kill it by removing its name from the context.
	if err := s.Remove("[exec]" + progName); err != nil {
		t.Fatal(err)
	}
	if ws.Exec.Running() != 0 {
		t.Fatal("program still running")
	}
}

// TestT1OpenLatencyQuadrants is the shape check for the §6 Open
// measurements: local < remote; prefixed costs more than current-context;
// and the prefix overhead is (nearly) identical whether the final server
// is local or remote, because the prefix server is always local.
func TestT1OpenLatencyQuadrants(t *testing.T) {
	r := boot(t)
	ws := r.WS[0]
	s := ws.Session

	// A local file server on the workstation, as §3 describes (adding a
	// local server changes nothing else).
	localFS, err := bootLocalFS(r, ws)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Prefix.Define("local", localFS.RootPair()); err != nil {
		t.Fatal(err)
	}

	open := func(name string, pair core.ContextPair) time.Duration {
		t.Helper()
		if pair != (core.ContextPair{}) {
			s.SetCurrent(pair)
		}
		start := s.Proc().Now()
		f, err := s.Open(name, proto.ModeRead)
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		elapsed := s.Proc().Now() - start
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}

	localCtx, err := s.MapContext("[local]")
	if err != nil {
		t.Fatal(err)
	}
	if err := localFS.WriteFile("/f.txt", "mann", []byte("local")); err != nil {
		t.Fatal(err)
	}

	currentLocal := open("f.txt", localCtx)
	currentRemote := open("welcome.txt", ws.HomeCtx)
	prefixLocal := open("[local]f.txt", core.ContextPair{})
	prefixRemote := open("[home]welcome.txt", core.ContextPair{})

	if currentLocal >= currentRemote {
		t.Fatalf("local open %v should beat remote %v", currentLocal, currentRemote)
	}
	if prefixLocal <= currentLocal || prefixRemote <= currentRemote {
		t.Fatal("prefixed opens must cost more than current-context opens")
	}
	deltaLocal := prefixLocal - currentLocal
	deltaRemote := prefixRemote - currentRemote
	diff := deltaLocal - deltaRemote
	if diff < 0 {
		diff = -diff
	}
	if diff > deltaLocal/10 {
		t.Fatalf("prefix overhead differs: local %v vs remote %v", deltaLocal, deltaRemote)
	}
	// Magnitudes against the paper (±35%): 1.21 / 3.70 / 5.14 / 7.69 ms.
	checks := []struct {
		name  string
		got   time.Duration
		paper time.Duration
	}{
		{"open local current", currentLocal, 1210 * time.Microsecond},
		{"open remote current", currentRemote, 3700 * time.Microsecond},
		{"open local prefix", prefixLocal, 5140 * time.Microsecond},
		{"open remote prefix", prefixRemote, 7690 * time.Microsecond},
	}
	for _, c := range checks {
		lo, hi := c.paper*65/100, c.paper*135/100
		if c.got < lo || c.got > hi {
			t.Errorf("%s = %v, paper %v (allowed %v..%v)", c.name, c.got, c.paper, lo, hi)
		}
	}
}

// TestE3SequentialReadRate checks the §3.1 streaming file access: with
// read-ahead, the per-page time approaches the disk's 15 ms rate; the
// paper measured 17.13 ms/page.
func TestE3SequentialReadRate(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	const pages = 64
	payload := make([]byte, pages*512)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := r.FS1.WriteFile("/users/mann/big.dat", "mann", payload); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("[home]big.dat", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	start := s.Proc().Now()
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := s.Proc().Now() - start
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes", len(got))
	}
	perPage := elapsed / pages
	if perPage < 14*time.Millisecond || perPage > 20*time.Millisecond {
		t.Fatalf("per-page = %v, want near the disk's 15 ms (paper 17.13 ms)", perPage)
	}
}

// --- helpers that extend the rig for individual tests ---

func bootReplacementFS(r *Rig) (*fileserver.FileServer, error) {
	return r.RecreateFS1()
}

func bootLocalFS(r *Rig, ws *Workstation) (*fileserver.FileServer, error) {
	return fileserver.Start(ws.Host, "local-"+ws.User)
}

func TestNameFaultDiagnostics(t *testing.T) {
	// Extension for the §7 deficiency: when a lookup fails after the name
	// was forwarded through a series of servers, the failure reply says
	// which component failed and at which server.
	r := boot(t)
	s := r.WS[0].Session

	// Fails on FS2, two forwards away from the client (prefix -> FS1 -> FS2).
	_, err := s.ReadFile("[storage]/shared/archive/2026/ghost.mss")
	var ne *core.NameError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want a NameError", err)
	}
	if ne.Component != "ghost.mss" {
		t.Fatalf("component = %q", ne.Component)
	}
	if ne.Server != r.FS2.PID() {
		t.Fatalf("fault server = %v, want FS2 %v", ne.Server, r.FS2.PID())
	}
	if !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("fault must unwrap to the standard error: %v", err)
	}

	// Fails mid-path on FS1: the index points at the failing component.
	_, err = s.ReadFile("[storage]/users/nobody/f")
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v", err)
	}
	if ne.Component != "nobody" || ne.Server != r.FS1.PID() {
		t.Fatalf("fault = %+v", ne)
	}
	full := "[storage]/users/nobody/f"
	// The index is within the rewritten name as the file server saw it;
	// the component at that index is "nobody".
	if !strings.Contains(full[ne.Index:], "nobody") {
		t.Fatalf("index %d does not locate the component in %q", ne.Index, full)
	}
}

func TestGroupImplementedContextViaPrefix(t *testing.T) {
	// §7 future work, end to end: a prefix bound to a process *group*;
	// the prefix server forwards by multicast and the first member
	// replies. With one member down the name still works.
	r := boot(t)
	ws := r.WS[0]
	s := ws.Session

	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		t.Fatal(err)
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", []byte("replica image")); err != nil {
		t.Fatal(err)
	}
	gid := r.Kernel.CreateGroup()
	if err := r.Kernel.JoinGroup(gid, r.FS1.PID()); err != nil {
		t.Fatal(err)
	}
	if err := r.Kernel.JoinGroup(gid, r.FS2.PID()); err != nil {
		t.Fatal(err)
	}
	if err := ws.Prefix.Define("gbin", core.ContextPair{Server: gid, Ctx: core.CtxStdPrograms}); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Query("[gbin]hello"); err != nil {
		t.Fatalf("group-context query: %v", err)
	}
	// One replica down: the group name keeps working.
	r.FS1Host.Crash()
	if _, err := s.Query("[gbin]hello"); err != nil {
		t.Fatalf("group-context query with FS1 down: %v", err)
	}
}

func TestPatternDirectories(t *testing.T) {
	// §5.6's proposed extension: the server includes only the objects
	// matching a pattern in the returned context directory.
	r := boot(t)
	s := r.WS[0].Session
	for _, name := range []string{"naming.mss", "ipc.mss", "notes.txt", "draft.txt"} {
		if err := s.WriteFile("[home]"+name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	records, err := s.ListPattern("[home]", "*.mss")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("filtered listing = %+v", records)
	}
	for _, d := range records {
		if !strings.HasSuffix(d.Name, ".mss") {
			t.Fatalf("record %q does not match", d.Name)
		}
	}
	// Works uniformly on other context types, e.g. mailboxes.
	boxes, err := s.ListPattern("[mail]", "*@su-score.ARPA")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 || boxes[0].Name != "cheriton@su-score.ARPA" {
		t.Fatalf("mail listing = %+v", boxes)
	}
	// And forwards intact across servers.
	arch, err := s.ListPattern("[storage]/shared/archive/2026", "*.mss")
	if err != nil {
		t.Fatal(err)
	}
	if len(arch) != 1 || arch[0].Name != "paper.mss" {
		t.Fatalf("archive listing = %+v", arch)
	}
}

func TestTimeService(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	// Per-use GetPid binding, the paper's example of a simple service
	// (§4.2).
	t1, err := timeserver.GetTime(s.Proc())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := timeserver.GetTime(s.Proc())
	if err != nil || t2 <= t1 {
		t.Fatalf("time did not advance: %d, %d (%v)", t1, t2, err)
	}
	// The clock is also reachable by name through the [time] prefix.
	d, err := s.Query("[time]clock")
	if err != nil || d.Name != "clock" {
		t.Fatalf("query clock = %+v, %v", d, err)
	}
}

func TestExecInheritsCurrentContext(t *testing.T) {
	// §6: an executed program is passed its current context; a
	// naming-aware program body gets a session carrying it, plus the
	// user's prefix server.
	r := boot(t)
	ws := r.WS[0]
	s := ws.Session

	type result struct {
		welcome []byte
		pwd     string
		err     error
	}
	done := make(chan result, 1)
	ws.Exec.RegisterSessionBody("hello", func(prog *client.Session) {
		data, err := prog.ReadFile("welcome.txt") // relative: inherited context
		if err != nil {
			done <- result{err: err}
			return
		}
		pwd, err := prog.CurrentName()
		if err != nil {
			done <- result{err: err}
			return
		}
		// The program can also use the user's prefixes.
		if _, err := prog.Query("[bin]editor"); err != nil {
			done <- result{err: err}
			return
		}
		done <- result{welcome: data, pwd: pwd}
	})

	// Run with the notes directory as current context.
	if err := s.ChangeContext("[storage]/users/cheriton"); err != nil {
		t.Fatal(err)
	}
	progName, pid, err := s.Exec("[exec]hello")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(progName, "hello.") || pid == kernel.NilPID {
		t.Fatalf("exec returned %q, %v", progName, pid)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if !strings.Contains(string(res.welcome), "cheriton") {
			t.Fatalf("program read %q — inherited context wrong", res.welcome)
		}
		if !strings.HasSuffix(res.pwd, "/users/cheriton") {
			t.Fatalf("program pwd = %q", res.pwd)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("program never reported")
	}
}

func TestPipeBetweenUsers(t *testing.T) {
	// Two users on different workstations communicate through a named
	// pipe on the services machine — pipes are just one more file-like
	// object under the I/O protocol (§3.2).
	r := boot(t)
	mann, dave := r.WS[0].Session, r.WS[1].Session

	w, err := mann.Open("[pipe]results", proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dave.Open("[pipe]results", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("benchmarks done: T1 matches\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	n, err := rd.ReadRetry(buf, 3)
	if err != nil || !strings.Contains(string(buf[:n]), "T1 matches") {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	// The pipe is a typed, listable object like everything else.
	records, err := dave.List("[pipe]")
	if err != nil || len(records) != 1 || records[0].Tag != proto.TagPipe {
		t.Fatalf("pipe listing = %+v, %v", records, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadRetry(buf, 3); err == nil {
		t.Fatal("drained closed pipe should hit EOF")
	}
}

func TestSevenFileServerForest(t *testing.T) {
	// The paper's installation ran 7 file servers (§6). Build seven, give
	// the user a prefix for each, chain them with cross-server links, and
	// resolve one name that traverses the whole forest.
	r := boot(t)
	s := r.WS[0].Session

	servers := make([]*fileserver.FileServer, 7)
	for i := range servers {
		host := r.Kernel.NewHost(fmt.Sprintf("vax%d", i))
		fs, err := fileserver.Start(host, fmt.Sprintf("vax%d", i))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = fs
		if err := r.WS[0].Prefix.Define(fmt.Sprintf("vax%d", i), fs.RootPair()); err != nil {
			t.Fatal(err)
		}
	}
	// vax6 holds the payload; vax_i links to vax_{i+1}: a 7-hop chain.
	if err := servers[6].WriteFile("/depths/treasure.txt", "system", []byte("found it")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		nextRoot := servers[i+1].RootPair()
		if err := servers[i].AddLink("/", "next", nextRoot); err != nil {
			t.Fatal(err)
		}
	}

	// One request from the client; six forwards between servers; the
	// final server replies directly.
	data, err := s.ReadFile("[vax0]next/next/next/next/next/next/depths/treasure.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "found it" {
		t.Fatalf("read %q", data)
	}

	// Each additional hop costs roughly one more remote transaction leg.
	t0 := s.Proc().Now()
	if _, err := s.Query("[vax6]depths/treasure.txt"); err != nil {
		t.Fatal(err)
	}
	direct := s.Proc().Now() - t0
	t1 := s.Proc().Now()
	if _, err := s.Query("[vax0]next/next/next/next/next/next/depths/treasure.txt"); err != nil {
		t.Fatal(err)
	}
	chained := s.Proc().Now() - t1
	if chained <= direct {
		t.Fatalf("chained traversal (%v) must cost more than direct (%v)", chained, direct)
	}
	perHop := (chained - direct) / 6
	// Each forward is one remote hop plus interpretation; it must be far
	// cheaper than a full round trip per hop (the §5.4 design point:
	// forwarding, not iterating back through the client).
	if perHop >= direct {
		t.Fatalf("per-hop forward cost %v should be below a full round trip %v", perHop, direct)
	}

	// All 7 roots are listable through their prefixes.
	for i := range servers {
		if _, err := s.List(fmt.Sprintf("[vax%d]", i)); err != nil {
			t.Fatalf("list vax%d: %v", i, err)
		}
	}
}

func TestGroupOpenLeaksAtLosers(t *testing.T) {
	// The practical caveat of §7 group contexts: a non-idempotent request
	// (open) multicast to a group performs its side effect at every
	// member, but the client learns only the winner's result — the losing
	// member is left with an orphaned open instance.
	r := boot(t)
	s := r.WS[0].Session
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		t.Fatal(err)
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", []byte("replica")); err != nil {
		t.Fatal(err)
	}
	gid := r.Kernel.CreateGroup()
	if err := r.Kernel.JoinGroup(gid, r.FS1.PID()); err != nil {
		t.Fatal(err)
	}
	if err := r.Kernel.JoinGroup(gid, r.FS2.PID()); err != nil {
		t.Fatal(err)
	}

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxStdPrograms), "hello")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := s.Proc().Send(req, gid)
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatal(err)
	}
	winner := kernel.PID(proto.InstanceOwner(reply))
	rel := &proto.Message{Op: proto.OpReleaseInstance}
	rel.F[0] = reply.F[0]
	if _, err := s.Proc().Send(rel, winner); err != nil {
		t.Fatal(err)
	}
	// Fence: servers process requests serially, so one answered request
	// per server guarantees the group clones have been handled.
	if _, err := s.Query("[storage]/bin/hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("[storage2]/bin/hello"); err != nil {
		t.Fatal(err)
	}
	// One orphaned instance remains at the loser.
	total := r.FS1.OpenInstances() + r.FS2.OpenInstances()
	if total != 1 {
		t.Fatalf("open instances after group open+release = %d, want exactly the loser's orphan", total)
	}
}

func TestHardLinksManyToOneInverse(t *testing.T) {
	// Same-server aliases (OpLinkObject): two names for one object. §6:
	// "this is the inverse mapping of a many-to-one function so the
	// CSname may not be the one that was in fact used."
	r := boot(t)
	s := r.WS[0].Session
	if err := s.WriteFile("[home]original.txt", []byte("shared contents")); err != nil {
		t.Fatal(err)
	}
	if err := s.Link("[home]original.txt", "[home]alias.txt"); err != nil {
		t.Fatal(err)
	}

	// Both names read the same object.
	a, err := s.ReadFile("[home]original.txt")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ReadFile("[home]alias.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("alias reads different contents")
	}
	// Same low-level object, link count 2.
	d1, err := s.Query("[home]original.txt")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Query("[home]alias.txt")
	if err != nil {
		t.Fatal(err)
	}
	if d1.ObjectID != d2.ObjectID {
		t.Fatalf("ids differ: %d vs %d", d1.ObjectID, d2.ObjectID)
	}
	if d1.TypeSpecific[0] != 2 {
		t.Fatalf("nlink = %d", d1.TypeSpecific[0])
	}
	// A write through one name is visible through the other.
	if err := s.WriteFile("[home]alias.txt", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.ReadFile("[home]original.txt"); err != nil || string(got) != "updated" {
		t.Fatalf("through original after alias write: %q, %v", got, err)
	}
	// The inverse mapping reports the name each instance was opened by —
	// two different answers for one object.
	f1, err := s.Open("[home]original.txt", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := s.Open("[home]alias.txt", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	n1, _ := f1.InstanceName()
	n2, _ := f2.InstanceName()
	if n1 == n2 {
		t.Fatalf("inverse mapping should differ per open name: %q vs %q", n1, n2)
	}
	// Removing one name leaves the object reachable by the other;
	// removing the last destroys it.
	if err := s.Remove("[home]original.txt"); err != nil {
		t.Fatal(err)
	}
	if got, err := s.ReadFile("[home]alias.txt"); err != nil || string(got) != "updated" {
		t.Fatalf("object died with first name: %q, %v", got, err)
	}
	if err := s.Remove("[home]alias.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("[home]alias.txt"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("object survived last name: %v", err)
	}
}

func TestLinkErrors(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if err := s.Link("[home]ghost", "[home]x"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("link of missing err = %v", err)
	}
	if err := s.Link("[home]notes", "[home]notes2"); !errors.Is(err, proto.ErrIllegalRequest) {
		t.Fatalf("link of directory err = %v", err)
	}
	if err := s.Link("[home]welcome.txt", "[home]notes"); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("link onto existing err = %v", err)
	}
	if err := s.Link("[home]welcome.txt", "[storage2]w"); !errors.Is(err, proto.ErrIllegalRequest) {
		t.Fatalf("cross-prefix link err = %v", err)
	}
}
