package rig

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/proto"
	"repro/internal/replica"
	"repro/internal/vtime"
)

// replicaRetryPolicy is the fast recovery policy replicated runs use:
// elections complete within tens of virtual milliseconds, so short
// backoffs keep the leaderless window — the only client-visible
// downtime — small (EXPERIMENTS.md A15).
func replicaRetryPolicy() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
}

func TestReplicatedBoot(t *testing.T) {
	r := MustNew(Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true, Replicas: 3})
	host, pid := r.FSR.Group.Leader()
	if host != "fs1" || pid != r.FSR.Members[0].Rep.PID() {
		t.Fatalf("bootstrap leader = %s/%v, want fs1 slot 0", host, pid)
	}
	if got := len(r.FSR.Members); got != 3 {
		t.Fatalf("fs members = %d, want 3", got)
	}
	if r.WS[0].PrefixRep == nil || len(r.WS[0].PrefixRep.Members) != 3 {
		t.Fatalf("prefix group missing or wrong size")
	}

	s := r.WS[0].Session
	data, err := s.ReadFile("[home]welcome.txt")
	if err != nil {
		t.Fatalf("ReadFile via replicated fronts: %v", err)
	}
	if !bytes.Contains(data, []byte("mann")) {
		t.Fatalf("welcome.txt = %q", data)
	}
	if _, err := s.Open("[bin]hello", proto.ModeRead); err != nil {
		t.Fatalf("Open [bin]hello: %v", err)
	}

	// A name-space mutation must commit on a majority before the reply.
	if err := s.Remove("[home]notes/todo.txt"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	for i, st := range r.FSR.Group.Statuses() {
		if st.Commit == 0 {
			t.Errorf("member %d commit = 0 after replicated Remove", i)
		}
	}
}

// TestReplicatedFailoverInFlight crashes the leader in the middle of a
// closed-loop workload: every operation must still succeed (retry +
// leader-hint rebinding), and the committed mutations must survive on
// the failed-over leader.
func TestReplicatedFailoverInFlight(t *testing.T) {
	policy := replicaRetryPolicy()
	r := MustNew(Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true, Replicas: 3, Retry: &policy})
	s := r.WS[0].Session
	s.EnableNameCache(true)

	eng := r.NewChaos([]chaos.Event{
		{At: 60 * time.Millisecond, Action: chaos.Crash, Host: "fs1"},
		{At: 400 * time.Millisecond, Action: chaos.Restart, Host: "fs1"},
	})
	pump := func(now vtime.Time) {
		eng.AdvanceTo(now)
		r.PumpGroups(now)
	}
	s.SetRetryObserver(pump)

	// Pre-crash replicated mutation: the failed-over leader must have it.
	if err := s.Remove("[home]notes/todo.txt"); err != nil {
		t.Fatalf("Remove: %v", err)
	}

	const ops = 60
	for i := 0; i < ops; i++ {
		if i > 0 && i%10 == 0 {
			s.FlushNameCache()
		}
		pump(s.Proc().Now())
		f, err := s.Open("[bin]hello", proto.ModeRead)
		if err != nil {
			t.Fatalf("op %d: Open failed across failover: %v", i, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("op %d: Close: %v", i, err)
		}
		s.Proc().ChargeCompute(10 * time.Millisecond)
	}
	pump(s.Proc().Now())

	sum := r.ResilienceSummary()
	if sum.Client.OpsFailed != 0 {
		t.Fatalf("OpsFailed = %d, want 0", sum.Client.OpsFailed)
	}
	if len(r.FSR.Group.Failovers()) == 0 {
		t.Fatalf("no failover recorded; events:\n%v", r.FSR.Group.Events())
	}
	// The schedule's restart rejoined fs1 and transferred leadership back
	// to slot 0 (lowest live slot = the kernel's GetPid preference).
	if host, _ := r.FSR.Group.Leader(); host != "fs1" {
		t.Fatalf("post-rejoin leader = %s, want fs1", host)
	}
	// The pre-crash Remove survived the crash via the group log.
	if _, err := s.Open("[home]notes/todo.txt", proto.ModeRead); err == nil {
		t.Fatalf("todo.txt still opens after replicated Remove + failover")
	}
}

// replicatedScenario runs a fixed crash/restart schedule against a
// replicated rig and returns everything determinism can be judged by.
func replicatedScenario(t *testing.T) (events []string, statuses []replica.Status, failed int) {
	t.Helper()
	policy := replicaRetryPolicy()
	r := MustNew(Config{Users: []string{"mann"}, Seed: 1, ReadAhead: true, Replicas: 3, Retry: &policy})
	s := r.WS[0].Session
	s.EnableNameCache(true)
	eng := r.NewChaos([]chaos.Event{
		{At: 50 * time.Millisecond, Action: chaos.Crash, Host: "fs1"},
		{At: 300 * time.Millisecond, Action: chaos.Restart, Host: "fs1"},
		{At: 500 * time.Millisecond, Action: chaos.Crash, Host: "fs1b"},
		{At: 700 * time.Millisecond, Action: chaos.Restart, Host: "fs1b"},
	})
	pump := func(now vtime.Time) {
		eng.AdvanceTo(now)
		r.PumpGroups(now)
	}
	s.SetRetryObserver(pump)
	for i := 0; i < 80; i++ {
		if i > 0 && i%10 == 0 {
			s.FlushNameCache()
		}
		pump(s.Proc().Now())
		if f, err := s.Open("[bin]hello", proto.ModeRead); err == nil {
			_ = f.Close()
		}
		s.Proc().ChargeCompute(10 * time.Millisecond)
	}
	pump(s.Proc().Now())
	return r.FSR.Group.Events(), r.FSR.Group.Statuses(), r.ResilienceSummary().Client.OpsFailed
}

// TestReplicaDeterministic pins the replication machinery to the
// virtual clock: the same seed and schedule must produce byte-identical
// group event logs and identical member statuses, run after run.
func TestReplicaDeterministic(t *testing.T) {
	ev1, st1, failed1 := replicatedScenario(t)
	ev2, st2, failed2 := replicatedScenario(t)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("group event logs differ between runs:\n%v\n---\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("member statuses differ: %+v vs %+v", st1, st2)
	}
	if failed1 != failed2 {
		t.Fatalf("failed-op counts differ: %d vs %d", failed1, failed2)
	}
	if failed1 != 0 {
		t.Fatalf("scenario failed %d ops, want 0", failed1)
	}
	if len(ev1) == 0 {
		t.Fatalf("scenario produced no group events")
	}
}
