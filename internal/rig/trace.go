package rig

import "repro/internal/trace"

// CheckTrace runs the protocol invariant checker (trace.Check) over the
// rig's recorded trace: no span leaks, every send terminated by exactly
// one reply or a classified failure, bounded forward chains, monotone
// per-process clocks, and wire packet counts matching the cost model.
// A rig built without Config.Trace passes trivially.
func (r *Rig) CheckTrace() error {
	if r.Tracer == nil {
		return nil
	}
	return trace.Check(r.Tracer.Snapshot(), trace.CheckOptions{Model: r.Model})
}
