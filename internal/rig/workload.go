// Multi-client closed-loop workload driver.
//
// The driver models N concurrent clients against the rig's servers while
// keeping every run bit-for-bit reproducible: clients issue requests one
// at a time in real execution, stepped in virtual-time order, so there
// are no goroutine races in the driver, while the per-process virtual
// clocks let a server team's workers overlap service in virtual time
// (the §3.1 concurrency this repo's A11 experiment measures).
//
// RunWorkloadParallel extends this to real concurrency: clients are
// partitioned into lanes, each lane runs the same deterministic
// virtual-time-ordered loop, and lanes execute on real goroutines. When
// lanes do not share substrate state whose outcome depends on real
// execution order (the shared-wire ledger, the loss RNG, a common
// server's clock), the per-lane schedules compose into exactly the
// sequential driver's result — see DESIGN.md.
package rig

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

// WorkloadClient is one closed-loop client: it issues Requests
// iterations of Op back to back (plus optional think time), modelling a
// program in a closed loop against the servers.
type WorkloadClient struct {
	// Session is the client's naming session; its process clock is the
	// client's time base.
	Session *client.Session
	// Op performs one request cycle; iter counts from 0.
	Op func(s *client.Session, iter int) error
	// Requests is the client's quota of Op iterations.
	Requests int
	// Think is virtual think time charged before each iteration.
	Think time.Duration
	// Lane assigns the client to a parallel execution lane
	// (RunWorkloadParallel). Clients in the same lane are stepped
	// sequentially in virtual-time order relative to each other; distinct
	// lanes run on real goroutines. The sequential driver ignores it.
	Lane int
	// Tick, when non-nil, is called after each completed iteration with
	// the client's virtual clock — the hook workloads use to pump
	// virtual-time observers (the metrics sampler, the chaos engine).
	Tick func(now time.Duration)
}

// ClientStats reports one client's outcome.
type ClientStats struct {
	Completed int
	Errors    int
	// TotalLatency is the sum of per-iteration virtual latencies
	// (excluding think time).
	TotalLatency time.Duration
	// Finish is the client's virtual clock after its last iteration.
	Finish time.Duration
}

// MeanLatency returns the average per-request virtual latency.
func (c ClientStats) MeanLatency() time.Duration {
	if c.Completed == 0 {
		return 0
	}
	return c.TotalLatency / time.Duration(c.Completed)
}

// WorkloadResult is the outcome of a RunWorkload call.
type WorkloadResult struct {
	Clients  []ClientStats
	Requests int
	// Makespan is the virtual time from the earliest client start to the
	// latest client finish.
	Makespan time.Duration
}

// Throughput returns aggregate requests per virtual second.
func (w *WorkloadResult) Throughput() float64 {
	if w.Makespan <= 0 {
		return 0
	}
	return float64(w.Requests) / w.Makespan.Seconds()
}

// RunWorkload drives the clients as a deterministic closed loop: at each
// step the unfinished client with the smallest virtual clock (ties
// broken by lowest index) issues its next request and runs it to
// completion. Real execution is strictly sequential — one request in
// flight at a time — so runs are reproducible; concurrency is modelled
// in virtual time, where a later client's request reaches the server at
// its own (earlier or overlapping) virtual arrival and a server team's
// per-worker clocks overlap service where a single-process server's one
// clock serializes it.
func RunWorkload(clients []*WorkloadClient) *WorkloadResult {
	res := &WorkloadResult{Clients: make([]ClientStats, len(clients))}
	start := workloadStart(clients)
	all := make([]int, len(clients))
	for i := range clients {
		all[i] = i
	}
	res.Requests = runLane(clients, all, res.Clients)
	finishResult(res, start)
	return res
}

// RunWorkloadParallel drives the clients with real concurrency: each
// lane's clients are stepped by the identical deterministic loop the
// sequential driver uses, and lanes run concurrently on a worker pool of
// the given size (<=0 means GOMAXPROCS). Per-client stats, makespan and
// throughput are identical to RunWorkload whenever the lanes are
// substrate-disjoint — no shared servers and no shared-wire traffic —
// because every virtual-time outcome is then a function of lane-local
// state only, and the global virtual-time-ordered schedule restricted to
// one lane is exactly that lane's own schedule.
func RunWorkloadParallel(clients []*WorkloadClient, workers int) *WorkloadResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &WorkloadResult{Clients: make([]ClientStats, len(clients))}
	start := workloadStart(clients)

	// Partition into lanes, preserving original client order within each
	// lane so the in-lane tie-break (lowest index) matches the sequential
	// driver's.
	laneOf := make(map[int][]int)
	var laneOrder []int
	for i, c := range clients {
		if _, ok := laneOf[c.Lane]; !ok {
			laneOrder = append(laneOrder, c.Lane)
		}
		laneOf[c.Lane] = append(laneOf[c.Lane], i)
	}

	var wg sync.WaitGroup
	var requests atomic.Int64
	sem := make(chan struct{}, workers)
	for _, lane := range laneOrder {
		idxs := laneOf[lane]
		wg.Add(1)
		sem <- struct{}{}
		go func(idxs []int) {
			defer wg.Done()
			defer func() { <-sem }()
			requests.Add(int64(runLane(clients, idxs, res.Clients)))
		}(idxs)
	}
	wg.Wait()
	res.Requests = int(requests.Load())
	finishResult(res, start)
	return res
}

// workloadStart is the earliest client clock — the makespan origin.
func workloadStart(clients []*WorkloadClient) time.Duration {
	var start time.Duration
	for i, c := range clients {
		now := c.Session.Proc().Now()
		if i == 0 || now < start {
			start = now
		}
	}
	return start
}

// finishResult computes the makespan from the per-client finish times.
func finishResult(res *WorkloadResult, start time.Duration) {
	for _, st := range res.Clients {
		if st.Finish-start > res.Makespan {
			res.Makespan = st.Finish - start
		}
	}
}

// runLane steps the clients selected by idxs with the deterministic
// closed loop: the unfinished client with the smallest virtual clock
// (ties broken by lowest position in idxs) issues its next request and
// runs it to completion. out is indexed by original client index; the
// lane writes only its own clients' slots. Returns the number of
// requests issued.
func runLane(clients []*WorkloadClient, idxs []int, out []ClientStats) int {
	iters := make([]int, len(idxs))
	requests := 0
	for {
		pick := -1
		var best time.Duration
		for j, i := range idxs {
			c := clients[i]
			if iters[j] >= c.Requests {
				continue
			}
			now := c.Session.Proc().Now()
			if pick == -1 || now < best {
				pick, best = j, now
			}
		}
		if pick == -1 {
			break
		}
		i := idxs[pick]
		c := clients[i]
		if c.Think > 0 {
			c.Session.Proc().ChargeCompute(c.Think)
		}
		before := c.Session.Proc().Now()
		err := c.Op(c.Session, iters[pick])
		after := c.Session.Proc().Now()
		st := &out[i]
		if err != nil {
			st.Errors++
		} else {
			st.Completed++
		}
		st.TotalLatency += after - before
		st.Finish = after
		if c.Tick != nil {
			c.Tick(after)
		}
		iters[pick]++
		requests++
	}
	return requests
}
