// Multi-client closed-loop workload driver.
//
// The driver models N concurrent clients against the rig's servers while
// keeping every run bit-for-bit reproducible: clients issue requests one
// at a time in real execution, stepped in virtual-time order, so there
// are no goroutine races in the driver, while the per-process virtual
// clocks let a server team's workers overlap service in virtual time
// (the §3.1 concurrency this repo's A11 experiment measures).
package rig

import (
	"time"

	"repro/internal/client"
)

// WorkloadClient is one closed-loop client: it issues Requests
// iterations of Op back to back (plus optional think time), modelling a
// program in a closed loop against the servers.
type WorkloadClient struct {
	// Session is the client's naming session; its process clock is the
	// client's time base.
	Session *client.Session
	// Op performs one request cycle; iter counts from 0.
	Op func(s *client.Session, iter int) error
	// Requests is the client's quota of Op iterations.
	Requests int
	// Think is virtual think time charged before each iteration.
	Think time.Duration
}

// ClientStats reports one client's outcome.
type ClientStats struct {
	Completed int
	Errors    int
	// TotalLatency is the sum of per-iteration virtual latencies
	// (excluding think time).
	TotalLatency time.Duration
	// Finish is the client's virtual clock after its last iteration.
	Finish time.Duration
}

// MeanLatency returns the average per-request virtual latency.
func (c ClientStats) MeanLatency() time.Duration {
	if c.Completed == 0 {
		return 0
	}
	return c.TotalLatency / time.Duration(c.Completed)
}

// WorkloadResult is the outcome of a RunWorkload call.
type WorkloadResult struct {
	Clients  []ClientStats
	Requests int
	// Makespan is the virtual time from the earliest client start to the
	// latest client finish.
	Makespan time.Duration
}

// Throughput returns aggregate requests per virtual second.
func (w *WorkloadResult) Throughput() float64 {
	if w.Makespan <= 0 {
		return 0
	}
	return float64(w.Requests) / w.Makespan.Seconds()
}

// RunWorkload drives the clients as a deterministic closed loop: at each
// step the unfinished client with the smallest virtual clock (ties
// broken by lowest index) issues its next request and runs it to
// completion. Real execution is strictly sequential — one request in
// flight at a time — so runs are reproducible; concurrency is modelled
// in virtual time, where a later client's request reaches the server at
// its own (earlier or overlapping) virtual arrival and a server team's
// per-worker clocks overlap service where a single-process server's one
// clock serializes it.
func RunWorkload(clients []*WorkloadClient) *WorkloadResult {
	res := &WorkloadResult{Clients: make([]ClientStats, len(clients))}
	iters := make([]int, len(clients))
	var start time.Duration
	for i, c := range clients {
		now := c.Session.Proc().Now()
		if i == 0 || now < start {
			start = now
		}
	}
	for {
		pick := -1
		var best time.Duration
		for i, c := range clients {
			if iters[i] >= c.Requests {
				continue
			}
			now := c.Session.Proc().Now()
			if pick == -1 || now < best {
				pick, best = i, now
			}
		}
		if pick == -1 {
			break
		}
		c := clients[pick]
		if c.Think > 0 {
			c.Session.Proc().ChargeCompute(c.Think)
		}
		before := c.Session.Proc().Now()
		err := c.Op(c.Session, iters[pick])
		after := c.Session.Proc().Now()
		st := &res.Clients[pick]
		if err != nil {
			st.Errors++
		} else {
			st.Completed++
		}
		st.TotalLatency += after - before
		st.Finish = after
		iters[pick]++
		res.Requests++
	}
	for _, st := range res.Clients {
		if st.Finish-start > res.Makespan {
			res.Makespan = st.Finish - start
		}
	}
	return res
}
