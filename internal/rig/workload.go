// Multi-client closed-loop workload driver.
//
// The driver models N concurrent clients against the rig's servers while
// keeping every run bit-for-bit reproducible: clients issue requests one
// at a time in real execution, stepped in virtual-time order, so there
// are no goroutine races in the driver, while the per-process virtual
// clocks let a server team's workers overlap service in virtual time
// (the §3.1 concurrency this repo's A11 experiment measures).
//
// RunWorkloadParallel extends this to real concurrency: clients are
// partitioned into lanes, each lane runs the same deterministic
// virtual-time-ordered loop, and lanes execute on real goroutines,
// synchronized by the conservative engine (internal/engine, PROTOCOL.md
// §12). Operations that touch execution-order-sensitive substrate state
// (the shared-wire ledger, the loss RNG, a server another lane also
// talks to) commit in global key order — exactly the sequential
// driver's order — while lane-confined operations run ahead freely, so
// the result is deeply equal to RunWorkload's on any topology, not just
// substrate-disjoint ones.
package rig

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
)

// WorkloadClient is one closed-loop client: it issues Requests
// iterations of Op back to back (plus optional think time), modelling a
// program in a closed loop against the servers.
type WorkloadClient struct {
	// Session is the client's naming session; its process clock is the
	// client's time base.
	Session *client.Session
	// Op performs one request cycle; iter counts from 0.
	Op func(s *client.Session, iter int) error
	// Requests is the client's quota of Op iterations.
	Requests int
	// Think is virtual think time charged before each iteration.
	Think time.Duration
	// Arrive, when non-nil, makes the client open-loop: iteration iter
	// is not eligible to start before the absolute virtual time
	// Arrive(iter), independent of when earlier operations completed —
	// arrivals model offered load, not a closed think loop, so queueing
	// delay shows up in observed latency instead of throttling the
	// arrival process. The driver advances the client's clock to the
	// arrival time before Think/Op when the client is idle at arrival.
	// Arrive must be non-decreasing in iter (the drivers' pick-min order
	// and the engine's non-decreasing key promise depend on it). Nil
	// preserves the closed-loop behavior exactly.
	Arrive func(iter int) time.Duration
	// Lane assigns the client to a parallel execution lane
	// (RunWorkloadParallel). Clients in the same lane are stepped
	// sequentially in virtual-time order relative to each other; distinct
	// lanes run on real goroutines. The sequential driver ignores it.
	Lane int
	// Classify, when non-nil, classifies the client's next operation for
	// the conservative engine before it runs: engine.Confined operations
	// touch only lane-local substrate state (plus order-independent
	// atomics) and run ahead of other lanes; engine.Shared operations
	// commit in global virtual-time order. Nil means every operation is
	// Shared — always safe, fully serialized. The sequential driver
	// ignores it.
	Classify func(s *client.Session, iter int) engine.Class
	// Tick, when non-nil, is called after each completed iteration with
	// the client's virtual clock — the hook workloads use to pump
	// virtual-time observers (the metrics sampler, the chaos engine).
	Tick func(now time.Duration)
}

// ClientStats reports one client's outcome.
type ClientStats struct {
	Completed int
	Errors    int
	// TotalLatency is the sum of per-iteration virtual latencies
	// (excluding think time).
	TotalLatency time.Duration
	// Finish is the client's virtual clock after its last iteration.
	Finish time.Duration
}

// MeanLatency returns the average per-request virtual latency.
func (c ClientStats) MeanLatency() time.Duration {
	if c.Completed == 0 {
		return 0
	}
	return c.TotalLatency / time.Duration(c.Completed)
}

// WorkloadResult is the outcome of a RunWorkload call.
type WorkloadResult struct {
	Clients  []ClientStats
	Requests int
	// Makespan is the virtual time from the earliest client start to the
	// latest client finish.
	Makespan time.Duration
}

// Throughput returns aggregate requests per virtual second.
func (w *WorkloadResult) Throughput() float64 {
	if w.Makespan <= 0 {
		return 0
	}
	return float64(w.Requests) / w.Makespan.Seconds()
}

// RunWorkload drives the clients as a deterministic closed loop: at each
// step the unfinished client with the smallest virtual clock (ties
// broken by lowest index) issues its next request and runs it to
// completion. Real execution is strictly sequential — one request in
// flight at a time — so runs are reproducible; concurrency is modelled
// in virtual time, where a later client's request reaches the server at
// its own (earlier or overlapping) virtual arrival and a server team's
// per-worker clocks overlap service where a single-process server's one
// clock serializes it.
func RunWorkload(clients []*WorkloadClient) *WorkloadResult {
	res := &WorkloadResult{Clients: make([]ClientStats, len(clients))}
	start := workloadStart(clients)
	all := make([]int, len(clients))
	for i := range clients {
		all[i] = i
	}
	res.Requests = runLane(clients, all, res.Clients)
	finishResult(res, start)
	return res
}

// RunWorkloadParallel drives the clients with real concurrency through
// the conservative engine: lanes run on real goroutines, shared-substrate
// operations commit in global virtual-time order, lane-confined ones run
// ahead. The result is deeply equal to RunWorkload's on any topology —
// the disjointness precondition the pre-engine driver carried is retired
// (unclassified operations are simply serialized). workers is retained
// for call-site compatibility and treated as a hint: the engine runs one
// goroutine per lane (a bounded pool could hold a runnable lane out of
// the schedule while a pooled lane blocks on it), and real parallelism
// is bounded by GOMAXPROCS.
func RunWorkloadParallel(clients []*WorkloadClient, workers int) *WorkloadResult {
	_ = workers
	return RunWorkloadEngine(clients, EngineOptions{})
}

// RunWorkloadLanes is the pre-engine parallel driver, kept for the
// wall-clock benchmark's engine comparison: lanes run the deterministic
// loop on a worker pool of the given size (<=0 means GOMAXPROCS) with no
// cross-lane synchronization at all. Its equivalence guarantee therefore
// still carries the PR 4 precondition: lanes must be substrate-disjoint
// (no shared servers, no shared-wire traffic), or results depend on real
// execution order. New callers want RunWorkloadParallel.
func RunWorkloadLanes(clients []*WorkloadClient, workers int) *WorkloadResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &WorkloadResult{Clients: make([]ClientStats, len(clients))}
	start := workloadStart(clients)

	var wg sync.WaitGroup
	var requests atomic.Int64
	sem := make(chan struct{}, workers)
	for _, idxs := range partitionLanes(clients) {
		wg.Add(1)
		sem <- struct{}{}
		go func(idxs []int) {
			defer wg.Done()
			defer func() { <-sem }()
			requests.Add(int64(runLane(clients, idxs, res.Clients)))
		}(idxs)
	}
	wg.Wait()
	res.Requests = int(requests.Load())
	finishResult(res, start)
	return res
}

// EngineOptions parameterizes RunWorkloadEngine.
type EngineOptions struct {
	// Fences is the global fence schedule (chaos event times, sampler
	// ticks) fired at quiescent cuts between operations; see
	// rig.EngineFences for the standard chaos → groups → sampler wiring.
	Fences engine.Fences
	// Lookahead overrides the conservative lookahead bound. Zero derives
	// it from the clients' own network (netsim.Network.Lookahead); the
	// engine demotes Confined operations to Shared if the bound is not
	// positive.
	Lookahead time.Duration
}

// RunWorkloadEngine is the conservative-engine driver with explicit
// options. Each lane is one engine owning its clients' virtual clocks
// and run queue; before every operation the lane gates on the shared
// Sync with the operation's key (virtual start time, client index) and
// class. See internal/engine and PROTOCOL.md §12 for the protocol and
// the equivalence argument.
func RunWorkloadEngine(clients []*WorkloadClient, opts EngineOptions) *WorkloadResult {
	res := &WorkloadResult{Clients: make([]ClientStats, len(clients))}
	if len(clients) == 0 {
		return res
	}
	start := workloadStart(clients)
	if opts.Lookahead == 0 {
		opts.Lookahead = clients[0].Session.Proc().Kernel().Network().Lookahead()
	}
	lanes := partitionLanes(clients)
	es := engine.NewSync(len(lanes), opts.Lookahead, opts.Fences)

	var wg sync.WaitGroup
	var requests atomic.Int64
	for laneID, idxs := range lanes {
		wg.Add(1)
		go func(laneID int, idxs []int) {
			defer wg.Done()
			requests.Add(int64(runLaneGated(clients, idxs, res.Clients, es, laneID)))
		}(laneID, idxs)
	}
	wg.Wait()
	res.Requests = int(requests.Load())
	finishResult(res, start)
	return res
}

// partitionLanes splits clients into lanes by their Lane field,
// preserving original client order within each lane (so the in-lane
// tie-break, lowest index, matches the sequential driver's) and first
// appearance order across lanes.
func partitionLanes(clients []*WorkloadClient) [][]int {
	laneOf := make(map[int]int)
	var lanes [][]int
	for i, c := range clients {
		li, ok := laneOf[c.Lane]
		if !ok {
			li = len(lanes)
			laneOf[c.Lane] = li
			lanes = append(lanes, nil)
		}
		lanes[li] = append(lanes[li], i)
	}
	return lanes
}

// effectiveStart is the virtual time client c's iteration iter can
// start: its clock, or its open-loop arrival time if that is later.
func effectiveStart(c *WorkloadClient, iter int) time.Duration {
	now := c.Session.Proc().Now()
	if c.Arrive != nil {
		if arr := c.Arrive(iter); arr > now {
			return arr
		}
	}
	return now
}

// waitForArrival advances an idle open-loop client's clock to the picked
// operation's effective start, so Think/Op (and the classifier, and the
// engine key) all see the arrival instant as "now".
func waitForArrival(c *WorkloadClient, start time.Duration) {
	if c.Arrive == nil {
		return
	}
	if proc := c.Session.Proc(); start > proc.Now() {
		proc.ChargeCompute(start - proc.Now())
	}
}

// workloadStart is the earliest client clock — the makespan origin.
func workloadStart(clients []*WorkloadClient) time.Duration {
	var start time.Duration
	for i, c := range clients {
		now := c.Session.Proc().Now()
		if i == 0 || now < start {
			start = now
		}
	}
	return start
}

// finishResult computes the makespan from the per-client finish times.
func finishResult(res *WorkloadResult, start time.Duration) {
	for _, st := range res.Clients {
		if st.Finish-start > res.Makespan {
			res.Makespan = st.Finish - start
		}
	}
}

// runLane steps the clients selected by idxs with the deterministic
// closed loop: the unfinished client with the smallest virtual clock
// (ties broken by lowest position in idxs) issues its next request and
// runs it to completion. out is indexed by original client index; the
// lane writes only its own clients' slots. Returns the number of
// requests issued.
func runLane(clients []*WorkloadClient, idxs []int, out []ClientStats) int {
	iters := make([]int, len(idxs))
	requests := 0
	for {
		pick := -1
		var best time.Duration
		for j, i := range idxs {
			c := clients[i]
			if iters[j] >= c.Requests {
				continue
			}
			now := effectiveStart(c, iters[j])
			if pick == -1 || now < best {
				pick, best = j, now
			}
		}
		if pick == -1 {
			break
		}
		i := idxs[pick]
		c := clients[i]
		waitForArrival(c, best)
		if c.Think > 0 {
			c.Session.Proc().ChargeCompute(c.Think)
		}
		before := c.Session.Proc().Now()
		err := c.Op(c.Session, iters[pick])
		after := c.Session.Proc().Now()
		st := &out[i]
		if err != nil {
			st.Errors++
		} else {
			st.Completed++
		}
		st.TotalLatency += after - before
		st.Finish = after
		if c.Tick != nil {
			c.Tick(after)
		}
		iters[pick]++
		requests++
	}
	return requests
}

// runLaneGated is runLane with every operation gated through the
// conservative engine: the lane publishes the picked operation's key
// (its client's pre-think clock, the same instant the pick compared,
// plus the client's global index as the deterministic tie-break) and its
// class, and blocks until the engine clears it. The pick-min loop makes
// successive keys non-decreasing, which is what lets the published key
// stand as the lane's promise of no earlier future activity.
//
// Tick hooks are not called here: under concurrent lanes a per-op pump
// would observe nondeterministic interleavings, so virtual-time
// observers are pumped by the engine's fences instead (EngineOptions).
func runLaneGated(clients []*WorkloadClient, idxs []int, out []ClientStats, es *engine.Sync, lane int) int {
	iters := make([]int, len(idxs))
	requests := 0
	for {
		pick := -1
		var best time.Duration
		for j, i := range idxs {
			c := clients[i]
			if iters[j] >= c.Requests {
				continue
			}
			now := effectiveStart(c, iters[j])
			if pick == -1 || now < best {
				pick, best = j, now
			}
		}
		if pick == -1 {
			break
		}
		i := idxs[pick]
		c := clients[i]
		waitForArrival(c, best)
		key := engine.Key{T: best, Seq: i}
		cls := engine.Shared
		fseen := 0
		if c.Classify != nil {
			fseen = es.FencesFired()
			cls = c.Classify(c.Session, iters[pick])
		}
		fired := es.Gate(lane, key, cls)
		if cls == engine.Confined && fired != fseen {
			// A fence fired between classification and clearance. Fence
			// actions mutate cross-lane substrate at the quiescent cut —
			// a chaos redefinition revokes leases by callback barrier —
			// so the Confined proof may no longer hold. Re-prove it; if
			// the operation now needs the shared wire, re-gate it Shared
			// so it commits in global key order instead of racing the
			// other woken lanes for wire slots (PROTOCOL.md §12).
			if c.Classify(c.Session, iters[pick]) == engine.Shared {
				es.Gate(lane, key, engine.Shared)
			}
		}
		if c.Think > 0 {
			c.Session.Proc().ChargeCompute(c.Think)
		}
		before := c.Session.Proc().Now()
		err := c.Op(c.Session, iters[pick])
		after := c.Session.Proc().Now()
		st := &out[i]
		if err != nil {
			st.Errors++
		} else {
			st.Completed++
		}
		st.TotalLatency += after - before
		st.Finish = after
		iters[pick]++
		requests++
	}
	es.Done(lane)
	return requests
}
