// Replicated topology (PROTOCOL.md §11): with Config.Replicas > 1 the
// fs1 file service and every workstation's prefix table are
// consensus-replicated, so no single host owns a name. Member hosts
// fs1, fs1b, fs1c, … each run a member-local file server plus a replica
// front; the fronts register the storage service, so the kernel's
// lowest-live-host GetPid selection (§4.2) and the group's
// transfer-on-rejoin rule agree on the same steady-state leader (slot
// 0). Prefix members live on the workstation itself plus the services
// and fs2 machines. The groups have no clocks of their own: workloads
// pump them — chaos engine first, then PumpGroups, then the samplers
// (§11.4) — and crash/restart instants reach them through the chaos
// hooks NewChaos wires up.
package rig

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/prefix"
	"repro/internal/replica"
	"repro/internal/vtime"
)

// FSMember is one slot of the replicated fs1 service: the member host,
// the member-local file server behind the front, and the replica front
// clients address.
type FSMember struct {
	Name string
	Host *kernel.Host
	FS   *fileserver.FileServer
	Svc  *fileserver.ReplicaService
	Rep  *replica.Replica
}

// ReplicatedFS is the consensus-replicated fs1 service.
type ReplicatedFS struct {
	Group   *replica.Group
	Members []*FSMember // slot order: fs1, fs1b, fs1c, …

	fsOpts []fileserver.Option
}

// Member returns the member on the named host, or nil.
func (rf *ReplicatedFS) Member(host string) *FSMember {
	for _, m := range rf.Members {
		if m.Name == host {
			return m
		}
	}
	return nil
}

// PrefixMember is one slot of a replicated prefix group.
type PrefixMember struct {
	Name string
	Host *kernel.Host
	Srv  *prefix.Server
	Rep  *replica.Replica
}

// ReplicatedPrefix is one workstation's consensus-replicated prefix
// table.
type ReplicatedPrefix struct {
	Group   *replica.Group
	Members []*PrefixMember // slot order: workstation, services, fs2
}

// Member returns the member on the named host, or nil.
func (rp *ReplicatedPrefix) Member(host string) *PrefixMember {
	for _, m := range rp.Members {
		if m.Name == host {
			return m
		}
	}
	return nil
}

// fsMemberHost names slot i's host: fs1, fs1b, fs1c, …
func fsMemberHost(i int) string {
	if i == 0 {
		return "fs1"
	}
	return fmt.Sprintf("fs1%c", 'a'+i)
}

// bootReplicatedFileServers is bootFileServers for Replicas > 1: the
// member hosts come first (so the fronts win GetPid's lowest-host
// preference over fs2), every member volume is seeded identically in a
// deterministic order, and the group bootstraps with slot 0 leading.
func (r *Rig) bootReplicatedFileServers(cfg Config) error {
	fsOpts := []fileserver.Option{fileserver.WithReadAhead(cfg.ReadAhead)}
	if cfg.FileServerTeam > 1 {
		fsOpts = append(fsOpts, fileserver.WithTeam(cfg.FileServerTeam))
	}
	r.FSR = &ReplicatedFS{fsOpts: fsOpts}
	for i := 0; i < cfg.Replicas; i++ {
		m, err := r.startFSMember(r.Kernel.NewHost(fsMemberHost(i)))
		if err != nil {
			return err
		}
		r.FSR.Members = append(r.FSR.Members, m)
	}
	r.FS1Host = r.FSR.Members[0].Host
	r.FS1 = r.FSR.Members[0].FS

	var err error
	r.FS2Host = r.Kernel.NewHost("fs2")
	r.FS2, err = fileserver.Start(r.FS2Host, "fs2", fsOpts...)
	if err != nil {
		return err
	}
	if err := r.FS2.Proc().SetPid(kernel.ServiceStorage, r.FS2.PID(), kernel.ScopeBoth); err != nil {
		return err
	}
	if err := r.FS2.WriteFile("/archive/2026/paper.mss", "system",
		[]byte("Uniform Access to Distributed Name Interpretation\n")); err != nil {
		return err
	}
	archiveCtx, err := r.FS2.MkdirAll("/archive", "system")
	if err != nil {
		return err
	}

	// Seed every member volume with the identical helper sequence:
	// i-node allocation is deterministic, so the volumes — and the
	// context ids they hand out — are byte-identical across members.
	binCtx := core.CtxDefault
	for i, m := range r.FSR.Members {
		ctx, err := seedFS1Volume(m.FS, cfg.Users, r.FS2.PID(), archiveCtx)
		if err != nil {
			return fmt.Errorf("seed %s: %w", m.Name, err)
		}
		if i == 0 {
			binCtx = ctx
		} else if ctx != binCtx {
			return fmt.Errorf("seed %s: /bin context %d diverged from slot 0's %d", m.Name, ctx, binCtx)
		}
	}
	r.BinCtx = core.ContextPair{Server: r.FSR.Members[0].Rep.PID(), Ctx: binCtx}

	// The group monitor lives on fs2 — a host the fault schedules never
	// take down.
	g, err := replica.NewGroup(r.FS2Host, replica.Config{Name: "fs1", Seed: cfg.Seed})
	if err != nil {
		return err
	}
	for _, m := range r.FSR.Members {
		if err := g.Add(m.Name, m.Rep); err != nil {
			return err
		}
	}
	if err := g.Bootstrap(0); err != nil {
		return err
	}
	r.FSR.Group = g
	return nil
}

// startFSMember boots one member: the local file server plus the
// replica front, which registers as the storage service.
func (r *Rig) startFSMember(host *kernel.Host) (*FSMember, error) {
	fs, err := fileserver.Start(host, host.Name(), r.FSR.fsOpts...)
	if err != nil {
		return nil, err
	}
	svc := fileserver.NewReplicaService(fs)
	rep, err := replica.Start(host, "fs-replica["+host.Name()+"]",
		func(p *kernel.Process) replica.Service { return svc })
	if err != nil {
		return nil, err
	}
	if err := rep.Proc().SetPid(kernel.ServiceStorage, rep.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return &FSMember{Name: host.Name(), Host: host, FS: fs, Svc: svc, Rep: rep}, nil
}

// seedFS1Volume writes the standard fs1 contents (bootFileServers'
// sequence, in a fixed order) into one member volume and returns the
// /bin context.
func seedFS1Volume(fs *fileserver.FileServer, users []string, fs2 kernel.PID, archiveCtx core.ContextID) (core.ContextID, error) {
	binCtx, err := fs.MkdirAll("/bin", "system")
	if err != nil {
		return 0, err
	}
	if err := fs.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return 0, err
	}
	if err := fs.SetWellKnown(core.CtxPublic, "/"); err != nil {
		return 0, err
	}
	progs := []struct {
		name string
		size int
	}{{"compiler", 64 * 1024}, {"editor", 64 * 1024}, {"hello", 2 * 1024}}
	for _, pr := range progs {
		if err := fs.WriteFile("/bin/"+pr.name, "system", programImage(pr.name, pr.size)); err != nil {
			return 0, err
		}
	}
	for _, user := range users {
		base := "/users/" + user
		if err := fs.WriteFile(base+"/welcome.txt", user,
			[]byte(fmt.Sprintf("Welcome to the V-System, %s.\n", user))); err != nil {
			return 0, err
		}
		if err := fs.WriteFile(base+"/notes/todo.txt", user,
			[]byte("- finish the naming paper\n- measure Open latency\n")); err != nil {
			return 0, err
		}
	}
	if err := fs.SetWellKnown(core.CtxHome, "/users/"+users[0]); err != nil {
		return 0, err
	}
	if err := fs.AddLink("/shared", "archive",
		core.ContextPair{Server: fs2, Ctx: archiveCtx}); err != nil {
		return 0, err
	}
	return binCtx, nil
}

// bootReplicatedPrefix builds the workstation's replicated prefix group:
// slot 0 on the workstation itself (the member its session addresses),
// the standbys on the services and fs2 machines. Prefix replication is
// capped at those three hosts.
func (r *Rig) bootReplicatedPrefix(cfg Config, ws *Workstation) error {
	hosts := []*kernel.Host{ws.Host, r.ServicesHost, r.FS2Host}
	n := cfg.Replicas
	if n > len(hosts) {
		n = len(hosts)
	}
	pr := &ReplicatedPrefix{}
	for i := 0; i < n; i++ {
		m, err := startPrefixMember(hosts[i], ws.User, i == 0)
		if err != nil {
			return err
		}
		pr.Members = append(pr.Members, m)
	}
	g, err := replica.NewGroup(r.ServicesHost, replica.Config{Name: "prefix-" + ws.User, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	for _, m := range pr.Members {
		if err := g.Add(m.Name, m.Rep); err != nil {
			return err
		}
	}
	if err := g.Bootstrap(0); err != nil {
		return err
	}
	pr.Group = g
	ws.PrefixRep = pr
	ws.Prefix = pr.Members[0].Srv
	return nil
}

// startPrefixMember boots one prefix member: the replica front process
// is the serving process (prefix.New, not Start — the front calls the
// member-local table directly). Only the workstation's own member
// registers the local context-prefix service.
func startPrefixMember(host *kernel.Host, user string, local bool) (*PrefixMember, error) {
	var srv *prefix.Server
	rep, err := replica.Start(host, "prefix-replica["+user+"]",
		func(p *kernel.Process) replica.Service {
			srv = prefix.New(p, user)
			return prefix.NewReplicaService(srv)
		})
	if err != nil {
		return nil, err
	}
	if local {
		if err := rep.Proc().SetPid(kernel.ServiceContextPrefix, rep.PID(), kernel.ScopeLocal); err != nil {
			return nil, err
		}
	}
	return &PrefixMember{Name: host.Name(), Host: host, Srv: srv, Rep: rep}, nil
}

// prefixServers lists the prefix tables to boot-seed: every replica
// member, or just the single server.
func (ws *Workstation) prefixServers() []*prefix.Server {
	if ws.PrefixRep == nil {
		return []*prefix.Server{ws.Prefix}
	}
	out := make([]*prefix.Server, len(ws.PrefixRep.Members))
	for i, m := range ws.PrefixRep.Members {
		out[i] = m.Srv
	}
	return out
}

// fs1PID returns the pid clients should address for the fs1 service:
// the current leader front when replicated (slot 0 at boot and in
// steady state), the single server otherwise.
func (r *Rig) fs1PID() kernel.PID {
	if r.FSR != nil {
		if _, pid := r.FSR.Group.Leader(); pid != kernel.NilPID {
			return pid
		}
		return r.FSR.Members[0].Rep.PID()
	}
	return r.FS1.PID()
}

// fs1RootPair is RootPair for the fs1 service, naming the front when
// replicated.
func (r *Rig) fs1RootPair() core.ContextPair {
	pair := r.FS1.RootPair()
	if r.FSR != nil {
		pair.Server = r.fs1PID()
	}
	return pair
}

// fs1MkdirAll applies MkdirAll to the fs1 service: every member volume
// when replicated (the deterministic i-node allocator keeps the
// returned context identical across members), the single server
// otherwise.
func (r *Rig) fs1MkdirAll(path, owner string) (core.ContextID, error) {
	if r.FSR == nil {
		return r.FS1.MkdirAll(path, owner)
	}
	ctx := core.CtxDefault
	for i, m := range r.FSR.Members {
		c, err := m.FS.MkdirAll(path, owner)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", m.Name, err)
		}
		if i == 0 {
			ctx = c
		} else if c != ctx {
			return 0, fmt.Errorf("%s: context %d diverged from slot 0's %d", m.Name, c, ctx)
		}
	}
	return ctx, nil
}

// PumpGroups drives every replication group's election timer from a
// workload clock. Pump order is fixed — the fs group, then each
// workstation's prefix group in creation order — and callers pump the
// chaos engine before and the samplers after (§11.4).
func (r *Rig) PumpGroups(now vtime.Time) {
	if r.FSR != nil {
		r.FSR.Group.Pump(now)
	}
	for _, ws := range r.WS {
		if ws.PrefixRep != nil {
			ws.PrefixRep.Group.Pump(now)
		}
	}
}

// wireReplicaHooks connects a chaos engine to the replication groups:
// crashes turn into NoteDown at their exact virtual instant (after the
// dying teams' exits are recorded, so traces stay deterministic), and
// restarts re-create the member and rejoin it — snapshot-sync plus the
// transfer election that restores slot order.
func (r *Rig) wireReplicaHooks(e *chaos.Engine) {
	e.CrashHook = func(host string, at vtime.Time) {
		if m := r.FSR.Member(host); m != nil {
			<-m.FS.Exited()
			<-m.Rep.Exited()
			r.FSR.Group.NoteDown(host, at)
		}
		for _, ws := range r.WS {
			if ws.PrefixRep == nil {
				continue
			}
			if m := ws.PrefixRep.Member(host); m != nil {
				<-m.Rep.Exited()
				ws.PrefixRep.Group.NoteDown(host, at)
			}
		}
	}
	e.RestartedHook = func(host string, at vtime.Time) error {
		if m := r.FSR.Member(host); m != nil {
			if err := r.RecreateServer(host, ServerFile); err != nil {
				return err
			}
			if err := r.FSR.Group.Rejoin(host, m.Rep, at); err != nil {
				return err
			}
		}
		for _, ws := range r.WS {
			if ws.PrefixRep == nil {
				continue
			}
			if m := ws.PrefixRep.Member(host); m != nil {
				if err := r.RecreateServer(host, ServerPrefix); err != nil {
					return err
				}
				if err := ws.PrefixRep.Group.Rejoin(host, m.Rep, at); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// recreateFSMember replaces a crashed member in place: a cold local
// file server (its volume arrives with the rejoin snapshot-sync) and a
// fresh front registered as the storage service.
func (r *Rig) recreateFSMember(m *FSMember) error {
	nm, err := r.startFSMember(m.Host)
	if err != nil {
		return err
	}
	m.FS, m.Svc, m.Rep = nm.FS, nm.Svc, nm.Rep
	if m == r.FSR.Members[0] {
		r.FS1 = m.FS
	}
	return nil
}

// recreatePrefixMember replaces a crashed prefix member in place; its
// table arrives with the rejoin snapshot-sync.
func (r *Rig) recreatePrefixMember(ws *Workstation, m *PrefixMember) error {
	nm, err := startPrefixMember(m.Host, ws.User, m == ws.PrefixRep.Members[0])
	if err != nil {
		return err
	}
	m.Srv, m.Rep = nm.Srv, nm.Rep
	if m == ws.PrefixRep.Members[0] {
		ws.Prefix = m.Srv
	}
	return nil
}
