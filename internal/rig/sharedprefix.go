// Shared-prefix-server workload topology: the rig PR 4's parallel
// driver could not go wide on, and the conservative engine's reason to
// exist.
//
// Every shard keeps its file server and clients co-resident (as in
// shards.go), but name resolution is centralized: one prefix server on
// its own host maps every shard's context prefix. A client's first use
// of its prefix walks the shared wire to that server — substrate state
// whose outcome depends on operation order, so those requests are
// classified Shared and commit in global virtual-time order. Once the
// client's name cache holds the resolution, requests route directly to
// the co-resident shard server — provably lane-confined (the classifier
// checks the cached route's host shard label rather than assuming
// co-residency) — and the lanes genuinely overlap. The topology thereby
// exercises both halves of the conservative protocol in one workload,
// with the paper's own mechanism (the §2.3 per-client name cache)
// deciding which half each request falls in.
package rig

import (
	"fmt"

	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fileserver"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/ncache"
	"repro/internal/netsim"
	"repro/internal/prefix"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// SharedPrefixConfig shapes a shared-prefix workload.
type SharedPrefixConfig struct {
	// Shards is the number of file-server shards (= engine lanes).
	Shards int
	// ClientsPerShard is the number of co-resident clients per shard.
	ClientsPerShard int
	// Requests is each client's quota of Query iterations.
	Requests int
	// Team is each shard file server's team size (0/1 = single process).
	Team int
	// Seed drives the network's deterministic RNG.
	Seed int64
	// FlushEvery, when positive, flushes each client's name cache every
	// FlushEvery iterations (fresh program instances start cold, §2.3),
	// forcing periodic Shared re-resolutions through the prefix server.
	// Zero means only iteration 0 misses. It is the pre-lease compat
	// knob: with Lease set, flushes are skipped — lease coherence makes
	// the blind flush redundant (PROTOCOL.md §13).
	FlushEvery int
	// Lease, when positive, replaces the invalidate-and-retry name cache
	// with the lease-coherent hierarchy: the prefix server grants leases
	// of this length, clients run the lease cache with callback
	// invalidation, and expired entries revalidate instead of flushing.
	Lease time.Duration
	// CacheTier, when true (requires Lease), interposes a shared ncache
	// tier co-resident with the prefix host: clients address the tier,
	// which holds upstream leases and re-grants bounded sub-leases.
	CacheTier bool
	// AutoTuneMax, when positive (requires Lease, which becomes the
	// floor), replaces the fixed lease length with the per-name
	// auto-tuner (PROTOCOL.md §15): grants grow from Lease toward this
	// cap while a name's redefinition rate stays low, and reset to the
	// floor when it churns.
	AutoTuneMax time.Duration
	// Trace installs a domain tracer on the kernel and network. Tracing
	// charges zero virtual time, so traced runs measure identically.
	Trace bool
	// TraceSample, when non-nil, installs the tracer in sampled mode
	// (PROTOCOL.md §15). Implies Trace.
	TraceSample *trace.SampleConfig
}

// SharedPrefixWorkload is the booted topology.
type SharedPrefixWorkload struct {
	Kernel     *kernel.Kernel
	Net        *netsim.Network
	PrefixHost *kernel.Host
	Prefix     *prefix.Server
	// Tier is the shared intermediate cache (nil unless CacheTier).
	Tier *ncache.Tier
	// Tracer is the installed tracer (nil unless Trace).
	Tracer *trace.Tracer
	// Flight is the workload's always-on flight recorder (PROTOCOL.md
	// §15); seal it at fences with SealFlightAtFences.
	Flight  *flight.Recorder
	Hosts   []*kernel.Host
	Shards  []*fileserver.FileServer
	Clients []*WorkloadClient
}

// NewSharedPrefixWorkload boots the topology: one prefix host, Shards
// file-server hosts with ClientsPerShard co-resident clients each, every
// shard's root bound to the context prefix [shard<i>] on the central
// prefix server, and every client running the invalidate-and-retry name
// cache. Clients carry Lane = shard index and a classifier that proves
// cache-hit queries lane-confined via the host shard labels.
func NewSharedPrefixWorkload(cfg SharedPrefixConfig) (*SharedPrefixWorkload, error) {
	if cfg.Shards <= 0 || cfg.ClientsPerShard <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("shared-prefix workload: shards, clients and requests must be positive")
	}
	net := netsim.New(vtime.DefaultModel(), cfg.Seed)
	k := kernel.New(net)
	sw := &SharedPrefixWorkload{Kernel: k, Net: net}
	sw.Flight = flight.New(1 << 14)
	k.SetFlight(sw.Flight)
	if cfg.TraceSample != nil {
		sw.Tracer = trace.NewSampled(*cfg.TraceSample)
		k.SetTracer(sw.Tracer)
		net.SetRecorder(sw.Tracer)
	} else if cfg.Trace {
		sw.Tracer = trace.New()
		k.SetTracer(sw.Tracer)
		net.SetRecorder(sw.Tracer)
	}

	sw.PrefixHost = k.NewHost("nexus")
	var popts []prefix.Option
	if cfg.Lease > 0 && cfg.AutoTuneMax > 0 {
		popts = append(popts, prefix.WithLeaseAutoTune(cfg.Lease, cfg.AutoTuneMax))
	} else if cfg.Lease > 0 {
		popts = append(popts, prefix.WithLease(cfg.Lease))
	}
	ps, err := prefix.Start(sw.PrefixHost, "bench", popts...)
	if err != nil {
		return nil, fmt.Errorf("prefix server: %w", err)
	}
	sw.Prefix = ps

	// Clients address the resolver: the prefix server itself, or — with
	// the cache tier interposed — the co-resident ncache front, which
	// forwards everything it cannot answer from its own leases.
	resolver := ps.PID()
	if cfg.CacheTier {
		if cfg.Lease <= 0 {
			return nil, fmt.Errorf("shared-prefix workload: CacheTier requires Lease")
		}
		tier, err := ncache.Start(sw.PrefixHost, "ncache", ps.PID(), cfg.Lease)
		if err != nil {
			return nil, fmt.Errorf("cache tier: %w", err)
		}
		sw.Tier = tier
		resolver = tier.PID()
	}

	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for s := 0; s < cfg.Shards; s++ {
		host := k.NewHost(fmt.Sprintf("shard%d", s))
		host.SetShard(s)
		opts := []fileserver.Option{}
		if cfg.Team > 1 {
			opts = append(opts, fileserver.WithTeam(cfg.Team))
		}
		fs, err := fileserver.Start(host, fmt.Sprintf("fs%d", s), opts...)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if _, err := fs.MkdirAll("/deep/a/b/c/d/e/f", "bench"); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := fs.WriteFile("/"+ShardHotPath, "bench", payload); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := ps.Define(fmt.Sprintf("shard%d", s), fs.RootPair()); err != nil {
			return nil, fmt.Errorf("shard %d prefix: %w", s, err)
		}
		sw.Hosts = append(sw.Hosts, host)
		sw.Shards = append(sw.Shards, fs)

		name := fmt.Sprintf("[shard%d]%s", s, ShardHotPath)
		for c := 0; c < cfg.ClientsPerShard; c++ {
			proc, err := host.NewProcess(fmt.Sprintf("bench%d-%d", s, c))
			if err != nil {
				return nil, fmt.Errorf("shard %d client %d: %w", s, c, err)
			}
			sess := client.New(proc, resolver, fs.RootPair(), "bench")
			sess.EnableNameCache(true)
			flush := cfg.FlushEvery
			classify := confinedOnCachedLocalRoute(k, host, name, flush)
			if cfg.Lease > 0 {
				if err := sess.EnableLeaseCache(); err != nil {
					return nil, fmt.Errorf("shard %d client %d lease cache: %w", s, c, err)
				}
				// Lease coherence retires the blind flush: expiry and
				// callbacks bound staleness instead (PROTOCOL.md §13).
				flush = 0
				classify = confinedOnLeasedLocalRoute(k, host, name)
			}
			sw.Clients = append(sw.Clients, &WorkloadClient{
				Session:  sess,
				Requests: cfg.Requests,
				Lane:     s,
				Op: func(s *client.Session, iter int) error {
					if flush > 0 && iter > 0 && iter%flush == 0 {
						s.FlushNameCache()
					}
					_, err := s.Query(name)
					return err
				},
				Classify: classify,
			})
		}
	}
	return sw, nil
}

// confinedOnCachedLocalRoute classifies a client's next query of `name`:
// Confined exactly when the name cache will route it to a server whose
// host carries the same shard label as the client's own host (a local
// hop touching no cross-lane substrate), Shared otherwise — including
// every iteration that will first flush its cache and therefore walk the
// prefix server. The shard-label proof keeps the classifier honest if
// the topology is ever rewired: an unlabeled or foreign host never
// classifies as confined.
// confinedOnLeasedLocalRoute is the lease-cache analogue of
// confinedOnCachedLocalRoute: Confined exactly when the client holds a
// positive lease on the name's prefix that will still be valid when the
// operation runs, routing to a co-shard server. The probe time is the
// client's clock at classification — the engine publishes that instant
// as the operation's key and the session re-checks validity at the same
// clock on entry (client.LeasedRoute), so classifier and operation agree
// on expiry exactly. A lapsed or absent lease classifies Shared: the
// revalidation walks the shared wire to the resolver.
func confinedOnLeasedLocalRoute(k *kernel.Kernel, clientHost *kernel.Host, name string) func(*client.Session, int) engine.Class {
	return func(s *client.Session, iter int) engine.Class {
		pair, ok := s.LeasedRoute(name, s.Proc().Now())
		if !ok {
			return engine.Shared
		}
		h := k.HostOf(pair.Server)
		if h == nil || h.Shard() < 0 || h.Shard() != clientHost.Shard() {
			return engine.Shared
		}
		return engine.Confined
	}
}

func confinedOnCachedLocalRoute(k *kernel.Kernel, clientHost *kernel.Host, name string, flushEvery int) func(*client.Session, int) engine.Class {
	return func(s *client.Session, iter int) engine.Class {
		if flushEvery > 0 && iter > 0 && iter%flushEvery == 0 {
			return engine.Shared // this iteration flushes, then re-resolves
		}
		pair, ok := s.CachedRoute(name)
		if !ok {
			return engine.Shared
		}
		h := k.HostOf(pair.Server)
		if h == nil || h.Shard() < 0 || h.Shard() != clientHost.Shard() {
			return engine.Shared
		}
		return engine.Confined
	}
}
