package rig

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/popgen"
)

func zipfTestConfig() ZipfConfig {
	return ZipfConfig{
		Population:      500,
		Skew:            0.99,
		PopSeed:         1,
		Shards:          3,
		ClientsPerShard: 2,
		Arrivals:        40,
		Interarrival:    2 * time.Millisecond,
		Lease:           80 * time.Millisecond,
		Seed:            42,
	}
}

// TestZipfWorkloadSmoke boots the population topology and runs it
// sequentially: every arrival resolves (the whole population is bound),
// latencies are positive and completions respect the arrival schedule.
func TestZipfWorkloadSmoke(t *testing.T) {
	zw, err := NewZipfWorkload(zipfTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := RunWorkload(zw.Clients)
	if res.Requests != 3*2*40 {
		t.Fatalf("ran %d requests, want %d", res.Requests, 3*2*40)
	}
	for i, st := range res.Clients {
		if st.Errors != 0 {
			t.Fatalf("client %d: %d errors", i, st.Errors)
		}
		if st.Completed != 40 {
			t.Fatalf("client %d completed %d, want 40", i, st.Completed)
		}
	}
	hits := 0
	for _, s := range zw.Sessions() {
		st := s.LeaseCacheStats()
		hits += st.Hits + st.NegativeHits
		if st.NegativeHits != 0 {
			t.Fatalf("negative hits on a fully-bound population: %+v", st)
		}
	}
	if hits == 0 {
		t.Fatal("zipf head never hit the lease cache")
	}
	for c := range zw.Latencies {
		for i, lat := range zw.Latencies[c] {
			if lat <= 0 {
				t.Fatalf("client %d op %d: non-positive open-loop latency %v", c, i, lat)
			}
		}
	}
	first, last := zw.OpenLoopSpan()
	if first <= 0 || last <= first {
		t.Fatalf("bad open-loop span [%v, %v]", first, last)
	}
}

// TestOpenLoopEquivalence is the sharded-equivalence gate for the
// open-loop Zipf workload: the conservative-engine run is deeply equal
// to the sequential run — same per-client stats and the same per-op
// open-loop latencies.
func TestOpenLoopEquivalence(t *testing.T) {
	cfg := zipfTestConfig()
	seq, err := NewZipfWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqRes := RunWorkload(seq.Clients)

	par, err := NewZipfWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parRes := RunWorkloadEngine(par.Clients, EngineOptions{})

	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("engine result differs from sequential:\nseq: %+v\npar: %+v", seqRes, parRes)
	}
	if !reflect.DeepEqual(seq.Latencies, par.Latencies) {
		for c := range seq.Latencies {
			for i := range seq.Latencies[c] {
				if seq.Latencies[c][i] != par.Latencies[c][i] {
					t.Fatalf("latency[%d][%d]: seq %v, engine %v", c, i, seq.Latencies[c][i], par.Latencies[c][i])
				}
			}
		}
		t.Fatal("latency matrices differ")
	}
}

// TestOpenLoopEquivalenceTiered repeats the equivalence check with the
// ncache tier interposed.
func TestOpenLoopEquivalenceTiered(t *testing.T) {
	cfg := zipfTestConfig()
	cfg.CacheTier = true
	seq, err := NewZipfWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqRes := RunWorkload(seq.Clients)
	par, err := NewZipfWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parRes := RunWorkloadEngine(par.Clients, EngineOptions{})
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("tiered engine result differs from sequential:\nseq: %+v\npar: %+v", seqRes, parRes)
	}
	if !reflect.DeepEqual(seq.Latencies, par.Latencies) {
		t.Fatal("tiered latency matrices differ")
	}
}

// TestOpenLoopArriveHonored pins the driver contract for open-loop
// clients: an operation never starts before its scheduled arrival, so
// completion is always at or after arrival + service, and a client left
// idle between sparse arrivals does not compress the schedule.
func TestOpenLoopArriveHonored(t *testing.T) {
	cfg := zipfTestConfig()
	cfg.Shards = 1
	cfg.ClientsPerShard = 1
	cfg.Arrivals = 10
	cfg.Interarrival = 50 * time.Millisecond // far sparser than service time
	zw, err := NewZipfWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RunWorkload(zw.Clients)
	sched, lats := zw.Schedule[0], zw.Latencies[0]
	for i := range sched {
		if lats[i] <= 0 {
			t.Fatalf("op %d: latency %v", i, lats[i])
		}
		// With arrivals far apart the client is idle at each arrival:
		// latency is pure service time, far below the interarrival gap.
		if lats[i] >= cfg.Interarrival {
			t.Fatalf("op %d: latency %v should be far below the %v gap", i, lats[i], cfg.Interarrival)
		}
	}
}

// TestZipfConfigValidation pins the constructor's error contract.
func TestZipfConfigValidation(t *testing.T) {
	base := zipfTestConfig()
	bad := func(name string, mutate func(*ZipfConfig)) {
		cfg := base
		mutate(&cfg)
		if _, err := NewZipfWorkload(cfg); err == nil {
			t.Fatalf("%s: config accepted", name)
		}
	}
	bad("zero population", func(c *ZipfConfig) { c.Population = 0 })
	bad("population below shards", func(c *ZipfConfig) { c.Population = 2 })
	bad("zero lease", func(c *ZipfConfig) { c.Lease = 0 })
	bad("zero interarrival", func(c *ZipfConfig) { c.Interarrival = 0 })
	bad("mismatched shared population", func(c *ZipfConfig) {
		c.Pop = popgen.NewPopulation(10, c.Skew, c.PopSeed)
	})
}

// TestZipfStats covers the result accessors on a real run.
func TestZipfStats(t *testing.T) {
	zw, err := NewZipfWorkload(zipfTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := RunWorkload(zw.Clients)
	if res.Throughput() <= 0 {
		t.Fatalf("throughput %v", res.Throughput())
	}
	for _, st := range res.Clients {
		if st.MeanLatency() <= 0 {
			t.Fatalf("mean latency %v", st.MeanLatency())
		}
	}
	if (ClientStats{}).MeanLatency() != 0 {
		t.Fatal("mean latency of an empty client")
	}
	if (&WorkloadResult{}).Throughput() != 0 {
		t.Fatal("throughput of an empty result")
	}
}
